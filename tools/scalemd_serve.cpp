// scalemd-serve: the multi-simulation service CLI. Reads a batch spec file
// (see src/serve/job.hpp for the schema), expands replicas, schedules every
// job across the worker slots with priority + round-robin + preemption, and
// writes one scalemd-bench JSON v1 artifact with a record per job plus batch
// summary records (jobs/hour, aggregate steps/sec, cache hit rate).
//
//   scalemd-serve examples/serve_sweep.txt --workers 4 --out SERVE.json
//
// Flags:
//   --workers N     concurrent job slots (default 2)
//   --slice N       run_cycle calls per scheduling slice (default 1)
//   --preempt N     force-preempt a job after N consecutive slices (default 0)
//   --seed S        scheduler decision seed (default 1)
//   --no-cache      disable the shared derived-topology artifact cache
//   --virtual-time  deterministic tick source instead of the wall clock
//                   (timestamps and throughput figures become synthetic)
//   --out PATH      artifact path (default SERVE_<batch-stem>.json)
//   --quiet         suppress the per-event progress stream

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>

#include "perf/bench_runner.hpp"
#include "perf/report.hpp"
#include "serve/scheduler.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s BATCH.txt [--workers N] [--slice N] [--preempt N]\n"
               "       [--seed S] [--no-cache] [--virtual-time] [--out PATH]\n"
               "       [--quiet]\n",
               argv0);
  return 2;
}

std::string batch_stem(const std::string& path) {
  std::string stem = path;
  const std::size_t slash = stem.find_last_of('/');
  if (slash != std::string::npos) stem.erase(0, slash + 1);
  const std::size_t dot = stem.find_last_of('.');
  if (dot != std::string::npos && dot > 0) stem.erase(dot);
  return stem.empty() ? "batch" : stem;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scalemd;

  std::string batch_path;
  std::string out;
  ServeOptions sopts;
  bool quiet = false;
  bool virtual_time = false;

  for (int i = 1; i < argc; ++i) {
    const auto next_val = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (std::strcmp(argv[i], "--workers") == 0) {
      if ((v = next_val()) == nullptr) return usage(argv[0]);
      sopts.workers = std::atoi(v);
    } else if (std::strcmp(argv[i], "--slice") == 0) {
      if ((v = next_val()) == nullptr) return usage(argv[0]);
      sopts.slice_cycles = std::atoi(v);
    } else if (std::strcmp(argv[i], "--preempt") == 0) {
      if ((v = next_val()) == nullptr) return usage(argv[0]);
      sopts.preempt_every = std::atoi(v);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      if ((v = next_val()) == nullptr) return usage(argv[0]);
      sopts.seed = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--no-cache") == 0) {
      sopts.use_cache = false;
    } else if (std::strcmp(argv[i], "--virtual-time") == 0) {
      virtual_time = true;
    } else if (std::strcmp(argv[i], "--out") == 0) {
      if ((v = next_val()) == nullptr) return usage(argv[0]);
      out = v;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown argument '%s'\n", argv[i]);
      return usage(argv[0]);
    } else if (batch_path.empty()) {
      batch_path = argv[i];
    } else {
      return usage(argv[0]);
    }
  }
  if (batch_path.empty()) return usage(argv[0]);
  if (sopts.workers < 1 || sopts.slice_cycles < 1 || sopts.preempt_every < 0) {
    std::fprintf(stderr, "invalid --workers/--slice/--preempt value\n");
    return 2;
  }

  std::ifstream in(batch_path);
  if (!in) {
    std::fprintf(stderr, "scalemd-serve: cannot open '%s'\n",
                 batch_path.c_str());
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();

  BatchSpec batch;
  BatchParseError perr;
  if (!parse_batch(text.str(), batch_path, batch, perr)) {
    std::fprintf(stderr, "scalemd-serve: %s\n", perr.render().c_str());
    return 2;
  }

  try {
    WallTickSource wall;
    if (!virtual_time) sopts.ticks = &wall;  // default member = virtual
    BatchScheduler sched(sopts);
    if (!quiet) {
      sched.set_progress([](const JobEvent& e) {
        std::printf("[%12.3f] round %3d  %-9s %-24s cycles %d\n", e.at,
                    e.round, job_event_kind_name(e.kind), e.name.c_str(),
                    e.cycles_done);
        std::fflush(stdout);
      });
    }
    sched.submit_batch(batch);
    const ServeReport report = sched.run();

    int complete = 0;
    for (const JobResult& r : report.results) complete += r.complete ? 1 : 0;
    const double secs = report.wall_seconds > 0.0 ? report.wall_seconds : 1e-9;
    const double jobs_per_hour = 3600.0 * complete / secs;
    const double steps_per_sec = static_cast<double>(report.total_steps) / secs;
    const std::uint64_t lookups = report.cache_hits + report.cache_misses;
    const double hit_rate =
        lookups > 0 ? static_cast<double>(report.cache_hits) / lookups : 0.0;

    std::printf("batch %s: %d/%zu jobs complete in %.3fs over %d rounds\n",
                batch_path.c_str(), complete, report.results.size(), secs,
                report.rounds);
    std::printf("  %.1f jobs/hour, %.0f steps/sec aggregate, "
                "cache hit rate %.0f%% (%llu/%llu)\n",
                jobs_per_hour, steps_per_sec, 100.0 * hit_rate,
                static_cast<unsigned long long>(report.cache_hits),
                static_cast<unsigned long long>(lookups));

    perf::BenchRunner runner;
    for (const JobResult& r : report.results) {
      runner.record_value("serve/job/" + r.name, "steps",
                          static_cast<double>(r.steps))
          .param("priority", r.priority)
          .param("complete", r.complete ? 1 : 0)
          .param("preemptions", r.preemptions)
          .param("cache_hit", r.cache_hit ? 1 : 0)
          .param("completion_seq", r.completion_seq);
    }
    runner.record_value("serve/summary/jobs_per_hour", "jobs/hour",
                        jobs_per_hour);
    runner.record_value("serve/summary/steps_per_sec", "steps/s",
                        steps_per_sec);
    runner.record_value("serve/summary/cache_hit_rate", "ratio", hit_rate);
    runner
        .record_value("serve/summary/batch_seconds", "seconds",
                      report.wall_seconds)
        .param("jobs", static_cast<double>(report.results.size()))
        .param("workers", sopts.workers)
        .param("rounds", report.rounds);

    perf::BenchReport artifact = perf::make_report("serve");
    artifact.benchmarks = runner.take_records();
    if (out.empty()) out = "SERVE_" + batch_stem(batch_path) + ".json";
    perf::save_report(artifact, out);
    std::printf("wrote %s (%zu records)\n", out.c_str(),
                artifact.benchmarks.size());

    return complete == static_cast<int>(report.results.size()) ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "scalemd-serve: %s\n", e.what());
    return 1;
  }
}
