// scalemd-bench: the top-level driver for the curated benchmark suites.
//
//   scalemd-bench --suite smoke --out BENCH_smoke.json
//   scalemd-bench --suite smoke --suite paper --out BENCH_all.json
//
// Runs each requested suite in-process and merges the records into one
// versioned scalemd-bench JSON artifact (default path BENCH_<suite>.json in
// the current directory, BENCH_merged.json when several suites are merged).
//
// Flags:
//   --suite NAME    smoke | paper (repeatable; default smoke)
//   --out PATH      artifact path (default BENCH_<suite>.json)
//   --reps N        timed repetitions per wall-clock benchmark (default 7)
//   --warmup N      untimed warmup iterations (default 2)
//   --threads N     workers for threaded kernels/backends (default 2)
//   --scale X       problem-size scale in (0, 1]; also SCALEMD_BENCH_SCALE
//   --list          print suite names and exit
//
// Mutation mode, for exercising the regression gate without a third run:
//   scalemd-bench --from BENCH_smoke.json --slowdown 2 --out slow.json
// loads an existing artifact and multiplies every sample by the factor —
// CI uses this to prove bench_compare fails on a synthetic 2x slowdown.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "perf/compare.hpp"
#include "perf/report.hpp"
#include "perf/suites.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--suite smoke|paper]... [--out PATH] [--reps N] [--warmup N]\n"
      "       [--threads N] [--scale X] [--list]\n"
      "       %s --from IN.json --slowdown FACTOR [--out PATH]\n",
      argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scalemd::perf;

  std::vector<std::string> suites;
  std::string out;
  std::string from;
  double slowdown = 1.0;
  SuiteOptions opts = default_suite_options();

  for (int i = 1; i < argc; ++i) {
    const auto next_val = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (std::strcmp(argv[i], "--list") == 0) {
      for (const std::string& s : suite_names()) std::printf("%s\n", s.c_str());
      return 0;
    } else if (std::strcmp(argv[i], "--suite") == 0) {
      if ((v = next_val()) == nullptr) return usage(argv[0]);
      suites.emplace_back(v);
    } else if (std::strcmp(argv[i], "--out") == 0) {
      if ((v = next_val()) == nullptr) return usage(argv[0]);
      out = v;
    } else if (std::strcmp(argv[i], "--from") == 0) {
      if ((v = next_val()) == nullptr) return usage(argv[0]);
      from = v;
    } else if (std::strcmp(argv[i], "--slowdown") == 0) {
      if ((v = next_val()) == nullptr) return usage(argv[0]);
      slowdown = std::atof(v);
    } else if (std::strcmp(argv[i], "--reps") == 0) {
      if ((v = next_val()) == nullptr) return usage(argv[0]);
      opts.reps = std::atoi(v);
    } else if (std::strcmp(argv[i], "--warmup") == 0) {
      if ((v = next_val()) == nullptr) return usage(argv[0]);
      opts.warmup = std::atoi(v);
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      if ((v = next_val()) == nullptr) return usage(argv[0]);
      opts.threads = std::atoi(v);
    } else if (std::strcmp(argv[i], "--scale") == 0) {
      if ((v = next_val()) == nullptr) return usage(argv[0]);
      opts.scale = std::atof(v);
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", argv[i]);
      return usage(argv[0]);
    }
  }

  try {
    if (!from.empty()) {
      // Mutation mode: scale every sample of an existing artifact.
      if (slowdown <= 0.0) {
        std::fprintf(stderr, "--slowdown must be positive\n");
        return 2;
      }
      BenchReport report = load_report(from);
      for (BenchRecord& rec : report.benchmarks) {
        for (double& s : rec.samples) s *= slowdown;
        rec.finalize();
      }
      if (out.empty()) out = "BENCH_mutated.json";
      save_report(report, out);
      std::printf("wrote %s (%s scaled by %gx)\n", out.c_str(), from.c_str(),
                  slowdown);
      return 0;
    }

    if (suites.empty()) suites.emplace_back("smoke");
    if (opts.reps < 1 || opts.warmup < 0 || opts.threads < 1 ||
        opts.scale <= 0.0) {
      std::fprintf(stderr, "invalid --reps/--warmup/--threads/--scale value\n");
      return 2;
    }

    BenchReport merged;
    bool first = true;
    for (const std::string& name : suites) {
      std::printf("running suite '%s' (reps=%d warmup=%d threads=%d scale=%g)\n",
                  name.c_str(), opts.reps, opts.warmup, opts.threads, opts.scale);
      BenchReport r = run_suite(name, opts);
      if (first) {
        merged = std::move(r);
        first = false;
      } else {
        merged.suite += "+" + r.suite;
        merged.merge(std::move(r));
      }
    }
    if (out.empty()) {
      out = suites.size() == 1 ? "BENCH_" + suites.front() + ".json"
                               : "BENCH_merged.json";
    }
    save_report(merged, out);
    std::printf("wrote %s (%zu benchmarks)\n", out.c_str(),
                merged.benchmarks.size());
    for (const BenchRecord& r : merged.benchmarks) {
      std::printf("  %-40s median %.6g %s%s\n", r.name.c_str(), r.median,
                  r.unit.c_str(), r.deterministic ? " (deterministic)" : "");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "scalemd-bench: %s\n", e.what());
    return 1;
  }
  return 0;
}
