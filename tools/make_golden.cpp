// Regenerates the golden trajectory references in tests/golden/ from the
// scalar sequential path (cell list, single thread) — the reference
// configuration every other kernel / engine-path / thread-count combination
// is validated against.
//
// Usage:
//   make_golden <output-dir> [spec ...]
//
// With no spec names, every registered golden preset is regenerated.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "check/golden.hpp"

int main(int argc, char** argv) {
  using namespace scalemd;

  if (argc < 2 || std::strcmp(argv[1], "--help") == 0) {
    std::fprintf(stderr, "usage: %s <output-dir> [spec ...]\n", argv[0]);
    std::fprintf(stderr, "available specs:");
    for (const GoldenSpec& s : golden_specs()) std::fprintf(stderr, " %s", s.name);
    std::fprintf(stderr, "\n");
    return 2;
  }
  const std::string dir = argv[1];

  std::vector<const GoldenSpec*> specs;
  if (argc == 2) {
    for (const GoldenSpec& s : golden_specs()) specs.push_back(&s);
  } else {
    for (int i = 2; i < argc; ++i) {
      const GoldenSpec* s = find_golden_spec(argv[i]);
      if (s == nullptr) {
        std::fprintf(stderr, "unknown golden spec '%s'\n", argv[i]);
        return 2;
      }
      specs.push_back(s);
    }
  }

  for (const GoldenSpec* s : specs) {
    const std::string path = golden_path(dir, *s);
    try {
      const Trajectory t = record_trajectory(*s);
      write_trajectory(t, path);
      // Read-back verification: the file on disk must parse and round-trip
      // bit-exactly, or the golden is useless as a reference.
      const Trajectory back = read_trajectory(path);
      CompareOptions bitwise;
      bitwise.mode = CompareMode::kUlp;
      bitwise.max_ulps = 0;
      const CompareResult r = compare_trajectories(back, t, bitwise);
      if (!r.match) {
        std::fprintf(stderr, "error: %s did not round-trip: %s\n", path.c_str(),
                     r.message.c_str());
        return 1;
      }
      std::printf("%s: %d atoms, %zu frames, %d steps -> %s\n", s->name,
                  t.atom_count, t.frames.size(), s->steps, path.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  return 0;
}
