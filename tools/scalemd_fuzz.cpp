// scalemd-fuzz: the scenario-fuzzing driver (see EXPERIMENTS.md "Scenario
// fuzzing"). Three modes:
//
//   scalemd-fuzz --cases 200 --seed 1 [--out-dir DIR] [--time-budget S]
//       run a campaign; exit 0 iff every case passes. Each failure is
//       shrunk and written as a standalone repro file.
//
//   scalemd-fuzz --repro FILE
//       replay one repro; exit 0 iff the recorded oracle fires again.
//
//   scalemd-fuzz --self-test [--seed S] [--cases N]
//       arm the hidden arrival-order defect and assert the fuzzer catches
//       it, shrinks it, and the repro replays. Exit 0 iff all three hold.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "fuzz/fuzzer.hpp"

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: scalemd-fuzz [--cases N] [--seed S] [--time-budget SECONDS]\n"
      "                    [--out-dir DIR] [--verbose]\n"
      "       scalemd-fuzz --repro FILE\n"
      "       scalemd-fuzz --self-test [--seed S] [--cases N]\n");
}

bool parse_int(const char* text, long long& out) {
  char* end = nullptr;
  out = std::strtoll(text, &end, 10);
  return end != text && *end == '\0';
}

bool parse_double(const char* text, double& out) {
  char* end = nullptr;
  out = std::strtod(text, &end);
  return end != text && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  scalemd::FuzzOptions opts;
  opts.cases = 100;
  bool self_test = false;
  bool cases_given = false;
  std::string repro_file;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "scalemd-fuzz: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--cases") {
      long long v = 0;
      if (!parse_int(next(), v) || v < 1) {
        std::fprintf(stderr, "scalemd-fuzz: bad --cases\n");
        return 2;
      }
      opts.cases = static_cast<int>(v);
      cases_given = true;
    } else if (arg == "--seed") {
      long long v = 0;
      if (!parse_int(next(), v) || v < 0) {
        std::fprintf(stderr, "scalemd-fuzz: bad --seed\n");
        return 2;
      }
      opts.seed = static_cast<std::uint64_t>(v);
    } else if (arg == "--time-budget") {
      if (!parse_double(next(), opts.time_budget_s) ||
          opts.time_budget_s < 0.0) {
        std::fprintf(stderr, "scalemd-fuzz: bad --time-budget\n");
        return 2;
      }
    } else if (arg == "--out-dir") {
      opts.out_dir = next();
    } else if (arg == "--repro") {
      repro_file = next();
    } else if (arg == "--self-test") {
      self_test = true;
    } else if (arg == "--verbose") {
      opts.verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "scalemd-fuzz: unknown option '%s'\n", arg.c_str());
      usage();
      return 2;
    }
  }

  if (!repro_file.empty()) {
    std::ifstream f(repro_file);
    if (!f) {
      std::fprintf(stderr, "scalemd-fuzz: cannot open %s\n",
                   repro_file.c_str());
      return 2;
    }
    std::ostringstream content;
    content << f.rdbuf();
    std::string message;
    const bool ok =
        scalemd::replay_repro(content.str(), repro_file, message);
    std::printf("%s\n", message.c_str());
    return ok ? 0 : 1;
  }

  if (self_test) {
    std::string message;
    const int rc = scalemd::run_self_test(
        opts.seed, cases_given ? opts.cases : 60, message);
    std::printf("%s\n", message.c_str());
    return rc;
  }

  const scalemd::FuzzReport report = scalemd::run_fuzz(opts);
  std::printf("scalemd-fuzz: %d case(s) run, %zu failure(s)\n",
              report.cases_run, report.failures.size());
  for (const scalemd::FuzzFailure& failure : report.failures) {
    std::printf("case %d: %s\n", failure.case_index, failure.oracle.c_str());
    std::printf("%s", failure.detail.c_str());
    if (!failure.repro_path.empty()) {
      std::printf("  repro: %s\n", failure.repro_path.c_str());
    }
  }
  return report.ok() ? 0 : 1;
}
