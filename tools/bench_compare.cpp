// bench_compare: the noise-aware regression gate over two scalemd-bench
// artifacts.
//
//   bench_compare baseline.json candidate.json [--rel-min F] [--mad-k F]
//                 [--allow-missing]
//
// A benchmark regresses only when candidate_median - baseline_median exceeds
// max(rel_min * baseline_median, mad_k * baseline_MAD): the relative floor
// (default 5%) absorbs calibration drift, the MAD term (default 3x) scales
// the gate with the baseline's own measured noise. Deterministic records
// have MAD 0, so any delta beyond the relative floor is flagged.
//
// Exit codes: 0 = no confirmed regressions; 1 = regressions (each offender
// named on stderr); 2 = usage or unreadable/invalid input.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "perf/compare.hpp"
#include "perf/report.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s baseline.json candidate.json [--rel-min F] "
               "[--mad-k F] [--allow-missing]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scalemd::perf;

  std::vector<std::string> paths;
  CompareOptions opts;
  for (int i = 1; i < argc; ++i) {
    const auto next_val = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (std::strcmp(argv[i], "--rel-min") == 0) {
      if ((v = next_val()) == nullptr) return usage(argv[0]);
      opts.rel_min = std::atof(v);
    } else if (std::strcmp(argv[i], "--mad-k") == 0) {
      if ((v = next_val()) == nullptr) return usage(argv[0]);
      opts.mad_k = std::atof(v);
    } else if (std::strcmp(argv[i], "--allow-missing") == 0) {
      opts.allow_missing = true;
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr, "unknown argument '%s'\n", argv[i]);
      return usage(argv[0]);
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (paths.size() != 2) return usage(argv[0]);

  try {
    const BenchReport baseline = load_report(paths[0]);
    const BenchReport candidate = load_report(paths[1]);
    const CompareResult result = compare_reports(baseline, candidate, opts);
    std::printf("%s", render_comparison(result).c_str());
    if (result.failed) {
      for (const std::string& name : result.offenders()) {
        std::fprintf(stderr, "REGRESSION: %s\n", name.c_str());
      }
      return 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_compare: %s\n", e.what());
    return 2;
  }
  return 0;
}
