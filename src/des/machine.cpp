#include "des/machine.hpp"

namespace scalemd {

namespace {

/// Scales the CPU-side costs of `m` by 1/speed (speed > 1 = faster CPU).
MachineModel scale_cpu(MachineModel m, double speed) {
  m.pair_cost /= speed;
  m.pair_test_cost /= speed;
  m.bonded_cost /= speed;
  m.integrate_cost /= speed;
  m.pack_byte_cost /= speed;
  return m;
}

/// Baseline CPU constants (ASCI-Red class). pair/test costs are calibrated
/// against the apoa1_like work counts so that one ApoA-I step costs ~57 s on
/// one PE (see tests/test_calibration.cpp, which pins this).
MachineModel base() {
  // Calibrated against the apoa1_like work counts (29.96M pairs inside the
  // cutoff, 310M rejected distance tests, 110k bonded terms, 92,224 atoms)
  // so the single-PE step splits exactly as the paper's Table 1 ideal row:
  // 52.44 s non-bonded + 3.16 s bonds + 1.44 s integration = 57.04 s.
  // pair_test_cost is small because NAMD amortizes distance rejection over
  // a pairlist rebuilt every cycle; in-cutoff pairs carry the full kernel.
  MachineModel m;
  m.pair_cost = 1.705e-6;
  m.pair_test_cost = 4.0e-9;
  m.bonded_cost = 2.88e-5;
  m.integrate_cost = 1.56e-5;
  // Era-realistic MPP software communication costs: tens of microseconds of
  // per-message overhead plus tens of nanoseconds per byte of 1999-vintage
  // copy/allocate/unpack work on a 333 MHz CPU.
  m.send_overhead = 35e-6;
  m.recv_overhead = 45e-6;
  m.latency = 30e-6;
  m.byte_time = 3.2e-9;
  m.pack_byte_cost = 8.0e-9;
  m.unpack_byte_cost = 32.0e-9;
  m.local_overhead = 1.5e-6;
  m.task_noise = 0.05;
  return m;
}

}  // namespace

MachineModel MachineModel::asci_red() {
  MachineModel m = base();
  m.name = "ASCI-Red";
  return m;
}

MachineModel MachineModel::t3e900() {
  // ~1.33x the per-processor speed of ASCI-Red on this code (paper: better
  // per-processor performance and scalability), with a much lower-latency
  // torus network.
  MachineModel m = scale_cpu(base(), 1.33);
  m.name = "T3E-900";
  m.send_overhead = 8e-6;
  m.recv_overhead = 10e-6;
  m.latency = 6e-6;
  m.byte_time = 2.9e-9;
  m.unpack_byte_cost = 10.0e-9;
  m.local_overhead = 1.0e-6;
  m.task_noise = 0.04;
  return m;
}

MachineModel MachineModel::origin2000() {
  // Fastest per processor (250 MHz R10000, big caches): the paper's ApoA-I
  // step is 24.4 s vs ASCI-Red's 57.1 s. ccNUMA interconnect: very low
  // latency, moderate bandwidth.
  MachineModel m = scale_cpu(base(), 57.1 / 24.4);
  m.name = "Origin2000";
  m.send_overhead = 6e-6;
  m.recv_overhead = 8e-6;
  m.latency = 3e-6;
  m.byte_time = 6.0e-9;
  m.unpack_byte_cost = 8.0e-9;
  m.local_overhead = 0.8e-6;
  m.task_noise = 0.05;
  return m;
}

}  // namespace scalemd
