#include "des/fault.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "des/trace_sink.hpp"

namespace scalemd {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kMessageDrop:   return "message-drop";
    case FaultKind::kMessageDup:    return "message-dup";
    case FaultKind::kMessageDelay:  return "message-delay";
    case FaultKind::kPeSlowdown:    return "pe-slowdown";
    case FaultKind::kPeFailure:     return "pe-failure";
    case FaultKind::kRetry:         return "retry";
    case FaultKind::kDupSuppressed: return "dup-suppressed";
    case FaultKind::kMessageLost:   return "message-lost";
    case FaultKind::kCheckpoint:    return "checkpoint";
    case FaultKind::kRestart:       return "restart";
    case FaultKind::kEvacuation:    return "evacuation";
  }
  return "unknown";
}

bool is_injected_fault(FaultKind k) {
  switch (k) {
    case FaultKind::kMessageDrop:
    case FaultKind::kMessageDup:
    case FaultKind::kMessageDelay:
    case FaultKind::kPeSlowdown:
    case FaultKind::kPeFailure:
      return true;
    default:
      return false;
  }
}

FaultPlan FaultPlan::chaos(std::uint64_t seed, double delay) {
  FaultPlan p;
  p.seed = seed;
  p.drop_prob = 0.02;
  p.dup_prob = 0.01;
  p.delay_prob = 0.05;
  p.delay_max = delay;
  return p;
}

std::string FaultPlanParseError::render() const {
  std::string out = file;
  if (line > 0) {
    out += ':';
    out += std::to_string(line);
  }
  out += ": ";
  out += reason;
  return out;
}

namespace {

bool fail_at(FaultPlanParseError& error, const std::string& file, int line,
             std::string reason) {
  error.file = file;
  error.line = line;
  error.reason = std::move(reason);
  return false;
}

bool in_unit_interval(double p) { return p >= 0.0 && p <= 1.0; }

}  // namespace

bool parse_fault_plan_text(const std::string& text, const std::string& file,
                           FaultPlan& plan, FaultPlanParseError& error) {
  FaultPlan out;
  std::istringstream stream(text);
  std::string raw;
  int lineno = 0;
  while (std::getline(stream, raw)) {
    ++lineno;
    // Strip comments and skip blank lines.
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream line(raw);
    std::string key;
    if (!(line >> key)) continue;

    auto want_number = [&](const char* what, double& value) {
      if (!(line >> value)) {
        return fail_at(error, file, lineno,
                       std::string("'") + key + "' needs a numeric " + what);
      }
      return true;
    };

    if (key == "seed") {
      double s = 0.0;
      if (!want_number("seed", s)) return false;
      if (s < 0.0) return fail_at(error, file, lineno, "seed must be >= 0");
      out.seed = static_cast<std::uint64_t>(s);
    } else if (key == "drop" || key == "dup") {
      double p = 0.0;
      if (!want_number("probability", p)) return false;
      if (!in_unit_interval(p)) {
        return fail_at(error, file, lineno,
                       "'" + key + "' probability must be in [0, 1]");
      }
      (key == "drop" ? out.drop_prob : out.dup_prob) = p;
    } else if (key == "delay") {
      double p = 0.0, max = 0.0;
      if (!want_number("probability", p) || !want_number("max seconds", max)) {
        return false;
      }
      if (!in_unit_interval(p)) {
        return fail_at(error, file, lineno, "'delay' probability must be in [0, 1]");
      }
      if (max < 0.0) {
        return fail_at(error, file, lineno, "'delay' max seconds must be >= 0");
      }
      out.delay_prob = p;
      out.delay_max = max;
    } else if (key == "slowdown") {
      double pe = 0.0, factor = 0.0, from = 0.0;
      if (!want_number("pe", pe) || !want_number("factor", factor)) return false;
      line >> from;  // optional from_time, defaults to 0
      if (pe < 0.0) return fail_at(error, file, lineno, "'slowdown' pe must be >= 0");
      if (factor < 1.0) {
        return fail_at(error, file, lineno, "'slowdown' factor must be >= 1");
      }
      out.slowdowns.push_back({static_cast<int>(pe), factor, from});
    } else if (key == "fail") {
      double pe = 0.0, at = 0.0;
      if (!want_number("pe", pe) || !want_number("time", at)) return false;
      if (pe < 0.0) return fail_at(error, file, lineno, "'fail' pe must be >= 0");
      if (at < 0.0) return fail_at(error, file, lineno, "'fail' time must be >= 0");
      out.failures.push_back({static_cast<int>(pe), at});
    } else {
      return fail_at(error, file, lineno, "unknown directive '" + key + "'");
    }
  }
  plan = out;
  return true;
}

std::string render_fault_plan(const FaultPlan& plan) {
  std::string out;
  char buf[160];
  const auto line = [&](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof(buf), fmt, args...);
    out += buf;
    out += '\n';
  };
  if (plan.seed != 0) line("seed %llu", static_cast<unsigned long long>(plan.seed));
  if (plan.drop_prob != 0.0) line("drop %.17g", plan.drop_prob);
  if (plan.dup_prob != 0.0) line("dup %.17g", plan.dup_prob);
  if (plan.delay_prob != 0.0 || plan.delay_max != 0.0) {
    line("delay %.17g %.17g", plan.delay_prob, plan.delay_max);
  }
  for (const PeSlowdown& s : plan.slowdowns) {
    line("slowdown %d %.17g %.17g", s.pe, s.factor, s.from_time);
  }
  for (const PeFailure& f : plan.failures) {
    line("fail %d %.17g", f.pe, f.at_time);
  }
  return out;
}

bool parse_fault_plan(const std::string& path, FaultPlan& plan,
                      FaultPlanParseError& error) {
  std::ifstream f(path);
  if (!f) {
    return fail_at(error, path, 0, "cannot open fault-plan file");
  }
  std::ostringstream content;
  content << f.rdbuf();
  if (f.bad()) {
    return fail_at(error, path, 0, "read error on fault-plan file");
  }
  return parse_fault_plan_text(content.str(), path, plan, error);
}

}  // namespace scalemd
