#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace scalemd {

/// A scheduled multiplicative slowdown of one virtual processor: from
/// `from_time` on, every task on `pe` takes `factor` times as long
/// (a persistent straggler — thermal throttling, a noisy neighbor).
struct PeSlowdown {
  int pe = 0;
  double factor = 1.0;
  double from_time = 0.0;
};

/// A scheduled full failure of one virtual processor: from `at_time` on,
/// `pe` executes nothing and every message addressed to it is discarded.
struct PeFailure {
  int pe = 0;
  double at_time = 0.0;
};

/// Deterministic, seeded chaos schedule for the discrete-event machine.
/// Message faults are decided per remote message by a counter-based hash of
/// (seed, message sequence number), so a given plan replays identically on
/// identical inputs; PE faults fire at fixed virtual times. An
/// empty/default plan makes the fault engine a structural no-op: the
/// simulator's behavior is bit-identical to a build without it.
struct FaultPlan {
  std::uint64_t seed = 0;

  // --- per-remote-message faults (probabilities in [0, 1]) -------------
  double drop_prob = 0.0;   ///< message vanishes on the wire
  double dup_prob = 0.0;    ///< message is delivered twice
  double delay_prob = 0.0;  ///< message suffers a latency spike
  double delay_max = 0.0;   ///< spike magnitude: uniform in (0, delay_max]

  // --- scheduled PE faults ---------------------------------------------
  std::vector<PeSlowdown> slowdowns;
  std::vector<PeFailure> failures;

  bool has_message_faults() const {
    return drop_prob > 0.0 || dup_prob > 0.0 || delay_prob > 0.0;
  }
  bool empty() const {
    return !has_message_faults() && slowdowns.empty() && failures.empty();
  }

  /// A generic chaos mix keyed off one seed, for --fault-seed style use:
  /// 2% drops, 1% duplicates, 5% latency spikes of up to `delay` seconds.
  static FaultPlan chaos(std::uint64_t seed, double delay = 1e-3);
};

/// Parse failure of a fault-plan file: carries the offending file, line
/// number and reason so tools can report exactly what was wrong.
struct FaultPlanParseError {
  std::string file;
  int line = 0;        ///< 1-based line of the offending directive; 0 = file-level
  std::string reason;  ///< human-readable explanation

  /// "file:line: reason" (or "file: reason" for file-level errors).
  std::string render() const;
};

/// Reads a fault plan from the line-oriented text schema (see
/// EXPERIMENTS.md):
///
///   # comments and blank lines are ignored
///   seed 42
///   drop 0.02
///   dup 0.01
///   delay 0.05 2e-4        # probability, max spike seconds
///   slowdown 3 2.5 0.0     # pe, factor, from_time (from_time optional)
///   fail 2 0.5             # pe, at_time
///
/// Returns true and fills `plan` on success; returns false and fills `error`
/// (file, line, reason) on any I/O or format problem. Never throws.
bool parse_fault_plan(const std::string& path, FaultPlan& plan,
                      FaultPlanParseError& error);

/// Same schema from an in-memory string (`file` only labels errors).
bool parse_fault_plan_text(const std::string& text, const std::string& file,
                           FaultPlan& plan, FaultPlanParseError& error);

/// Serializes `plan` in the text schema parse_fault_plan_text reads, with
/// full-precision (%.17g) numbers so plans round-trip exactly. Directives
/// at their defaults are omitted; an empty plan renders as the empty
/// string (which parses back to an empty plan).
std::string render_fault_plan(const FaultPlan& plan);

/// Counters of what the fault engine actually injected (and discarded) in a
/// run. Exposed by the simulator and folded into the resilience audit.
struct FaultStats {
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_duplicated = 0;
  std::uint64_t messages_delayed = 0;
  std::uint64_t discarded_dead_pe = 0;  ///< deliveries to an already-failed PE
  int pe_failures = 0;
  double last_failure_time = 0.0;

  std::uint64_t injected() const {
    return messages_dropped + messages_duplicated + messages_delayed +
           static_cast<std::uint64_t>(pe_failures);
  }
};

}  // namespace scalemd
