#pragma once

#include <cstdint>
#include <limits>
#include <queue>
#include <vector>

#include "des/fault.hpp"
#include "des/machine.hpp"
#include "des/trace_sink.hpp"
#include "rts/exec_backend.hpp"
#include "util/random.hpp"

namespace scalemd {

class DesContext;

/// Discrete-event simulator of a message-passing machine running a
/// data-driven (Charm++-style) scheduler on every virtual processor:
/// each PE repeatedly picks the best-priority *arrived* message and runs its
/// task to completion; task costs and message delivery times follow the
/// MachineModel. Deterministic: identical inputs give identical schedules.
/// This is the ExecBackend used when ParallelSim models the machine instead
/// of running on it (BackendKind::kSimulated).
///
/// A FaultPlan (set_fault_plan) arms the built-in fault engine: remote
/// messages may be dropped, duplicated or delayed (seeded, per-message
/// deterministic), PEs may slow down by a factor or fail outright at a
/// scheduled virtual time. With the default (empty) plan every fault path
/// is skipped and the schedule is identical to a fault-free build.
class Simulator final : public ExecBackend {
 public:
  Simulator(int num_pes, const MachineModel& machine);

  int num_pes() const override { return static_cast<int>(pes_.size()); }
  const MachineModel& machine() const override { return machine_; }
  EntryRegistry& entries() override { return entries_; }
  const EntryRegistry& entries() const override { return entries_; }

  /// Attaches an instrumentation sink (may be null to disable).
  void set_sink(TraceSink* sink) override { sink_ = sink; }

  /// Injects a message arriving at `pe` at absolute virtual time `time`
  /// (no send-side cost is charged; use for bootstrap messages).
  void inject(int pe, TaskMsg msg, double time = 0.0) override;

  /// Processes events until none remain.
  void run() override { run(std::numeric_limits<double>::infinity()); }
  /// Processes events until none remain or virtual time exceeds `until`.
  void run(double until);

  /// True if no undelivered or unprocessed messages remain.
  bool idle() const override;

  /// Virtual time of the latest task completion so far.
  double time() const override { return horizon_; }

  /// Total busy (executing) virtual seconds of `pe` so far.
  double pe_busy(int pe) const { return pes_[static_cast<std::size_t>(pe)].busy_sum; }

  /// Per-PE busy times (for utilization and imbalance metrics).
  std::vector<double> busy_times() const override;

  /// Number of tasks executed so far (all PEs).
  std::uint64_t tasks_executed() const override { return tasks_executed_; }
  /// Number of remote messages delivered so far.
  std::uint64_t remote_messages() const { return remote_messages_; }
  /// Total bytes carried by remote messages so far.
  std::uint64_t remote_bytes() const { return remote_bytes_; }

  /// Times are modeled virtual seconds, not measured.
  bool wall_clock() const override { return false; }
  BackendKind kind() const override { return BackendKind::kSimulated; }

  // --- fault engine ---------------------------------------------------
  /// Arms the fault engine (replaces any previous plan). Call before run();
  /// installing a non-empty plan mid-run applies from the next event on.
  void set_fault_plan(const FaultPlan& plan);
  const FaultPlan& fault_plan() const { return plan_; }
  const FaultStats& fault_stats() const { return fault_stats_; }

  /// True once `pe` has reached its scheduled failure time (it executes
  /// nothing and receives nothing from then on).
  bool pe_failed(int pe) const {
    return pes_[static_cast<std::size_t>(pe)].failed;
  }
  /// PEs that have failed so far, ascending.
  std::vector<int> failed_pes() const;

  /// Message accounting so far (see MessageAccounting).
  const MessageAccounting& accounting() const override { return acct_; }

  /// Emits a fault/recovery record to the attached sink (used by the
  /// recovery layers — reliable delivery, checkpointing, evacuation — so
  /// every recovery action lands in the same trace as the faults).
  void record_fault(const FaultRecord& r) {
    if (sink_ != nullptr) sink_->on_fault(r);
  }

 private:
  friend class DesContext;

  // Initialized so a dispatch Event's unused payload copies without reading
  // indeterminate values (UBSan flags the bool load in the copy otherwise).
  struct Ready {
    int priority = 0;
    std::uint64_t seq = 0;
    TaskMsg msg;
    int src_pe = -1;
    bool remote = false;
    double sent_at = 0.0;
  };
  struct ReadyOrder {
    bool operator()(const Ready& a, const Ready& b) const {
      if (a.priority != b.priority) return a.priority > b.priority;  // min-heap
      return a.seq > b.seq;                                          // FIFO ties
    }
  };
  struct Processor {
    double busy_until = 0.0;
    double busy_sum = 0.0;
    bool dispatch_pending = false;
    bool failed = false;        ///< scheduled failure has taken effect
    double slowdown = 1.0;      ///< active task-time multiplier (fault engine)
    double out_nic_free = 0.0;  ///< when this PE's outgoing link frees up
    double in_nic_free = 0.0;   ///< when this PE's incoming link frees up
    std::priority_queue<Ready, std::vector<Ready>, ReadyOrder> ready;
  };
  enum class EventKind : std::uint8_t { kArrival = 0, kDispatch = 1 };
  struct Event {
    double time;
    EventKind kind;
    std::uint64_t seq;
    int pe;
    // Arrival payload (unused for dispatch events).
    Ready ready;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.kind != b.kind) return a.kind > b.kind;  // arrivals before dispatch
      return a.seq > b.seq;
    }
  };

  void schedule_dispatch(int pe, double time);
  void deliver(int src_pe, int dst_pe, TaskMsg msg, double send_time,
               double arrive_time, bool remote);
  void execute(int pe, Ready ready, double start);
  /// Applies every scheduled PE fault whose time has come (<= now).
  void apply_pe_faults(double now);

  MachineModel machine_;
  EntryRegistry entries_;
  TraceSink* sink_ = nullptr;
  std::vector<Processor> pes_;
  std::priority_queue<Event, std::vector<Event>, EventOrder> events_;
  std::uint64_t seq_ = 0;
  double horizon_ = 0.0;
  std::uint64_t tasks_executed_ = 0;
  std::uint64_t remote_messages_ = 0;
  std::uint64_t remote_bytes_ = 0;

  // Fault engine state. `pe_faults_` holds the not-yet-applied scheduled
  // faults sorted by time; `fault_rng_` drives the per-message decisions.
  struct ScheduledPeFault {
    double time;
    int pe;
    bool failure;    ///< true = failure, false = slowdown
    double factor;   ///< slowdown factor (unused for failures)
  };
  FaultPlan plan_;
  std::vector<ScheduledPeFault> pe_faults_;
  std::size_t next_pe_fault_ = 0;
  Rng fault_rng_{0};
  FaultStats fault_stats_;
  MessageAccounting acct_;
};

/// The DES machine under its seam name (see rts/exec_backend.hpp).
using SimulatedBackend = Simulator;

}  // namespace scalemd
