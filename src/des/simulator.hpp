#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <string>
#include <vector>

#include "des/fault.hpp"
#include "des/machine.hpp"
#include "des/trace_sink.hpp"
#include "util/random.hpp"

namespace scalemd {

class ExecContext;

/// The body of an entry-method invocation. It runs to completion
/// (non-preemptive, Charm++-style) and reports its cost by calling
/// ExecContext::charge with the virtual seconds consumed.
using TaskFn = std::function<void(ExecContext&)>;

/// A message carrying an entry-method invocation to a virtual processor.
struct TaskMsg {
  EntryId entry = 0;
  std::uint64_t object = 0;  ///< target object id, for load measurement
  int priority = 0;          ///< lower runs first among available messages
  std::size_t bytes = 0;     ///< payload size for the network model
  TaskFn fn;
};

/// Names and audit categories of entry methods. The registry is what makes
/// summary profiles readable ("dozens of entry methods" vs thousands of
/// functions, as the paper argues).
class EntryRegistry {
 public:
  EntryId add(std::string name, WorkCategory category);
  const std::string& name(EntryId id) const { return names_[static_cast<std::size_t>(id)]; }
  WorkCategory category(EntryId id) const {
    return categories_[static_cast<std::size_t>(id)];
  }
  int count() const { return static_cast<int>(names_.size()); }

 private:
  std::vector<std::string> names_;
  std::vector<WorkCategory> categories_;
};

/// End-of-run message accounting: where every message handed to the machine
/// ended up. The conservation identity
///   offered + duplicated ==
///       dropped_fault + discarded_dead_pe + executed + pending()
/// holds at every instant; at a clean quiesce pending() is zero, and any
/// nonzero dropped/discarded terms are attributable to the fault engine.
/// This is what lets the invariant checker distinguish "dropped by fault"
/// from "still queued at termination".
struct MessageAccounting {
  std::uint64_t offered = 0;           ///< deliver attempts (sends + injects)
  std::uint64_t duplicated = 0;        ///< extra arrivals forged by duplication
  std::uint64_t dropped_fault = 0;     ///< vanished on the wire (fault engine)
  std::uint64_t discarded_dead_pe = 0; ///< addressed to / queued on a failed PE
  std::uint64_t executed = 0;          ///< ran to completion
  std::uint64_t pending_network = 0;   ///< arrival events not yet processed
  std::uint64_t pending_ready = 0;     ///< queued on a PE, not yet executed

  std::uint64_t pending() const { return pending_network + pending_ready; }
  bool conserved() const {
    return offered + duplicated == dropped_fault + discarded_dead_pe +
                                       executed + pending_network + pending_ready;
  }
};

/// Discrete-event simulator of a message-passing machine running a
/// data-driven (Charm++-style) scheduler on every virtual processor:
/// each PE repeatedly picks the best-priority *arrived* message and runs its
/// task to completion; task costs and message delivery times follow the
/// MachineModel. Deterministic: identical inputs give identical schedules.
///
/// A FaultPlan (set_fault_plan) arms the built-in fault engine: remote
/// messages may be dropped, duplicated or delayed (seeded, per-message
/// deterministic), PEs may slow down by a factor or fail outright at a
/// scheduled virtual time. With the default (empty) plan every fault path
/// is skipped and the schedule is identical to a fault-free build.
class Simulator {
 public:
  Simulator(int num_pes, const MachineModel& machine);

  int num_pes() const { return static_cast<int>(pes_.size()); }
  const MachineModel& machine() const { return machine_; }
  EntryRegistry& entries() { return entries_; }
  const EntryRegistry& entries() const { return entries_; }

  /// Attaches an instrumentation sink (may be null to disable).
  void set_sink(TraceSink* sink) { sink_ = sink; }

  /// Injects a message arriving at `pe` at absolute virtual time `time`
  /// (no send-side cost is charged; use for bootstrap messages).
  void inject(int pe, TaskMsg msg, double time = 0.0);

  /// Processes events until none remain or virtual time exceeds `until`.
  void run(double until = std::numeric_limits<double>::infinity());

  /// True if no undelivered or unprocessed messages remain.
  bool idle() const;

  /// Virtual time of the latest task completion so far.
  double time() const { return horizon_; }

  /// Total busy (executing) virtual seconds of `pe` so far.
  double pe_busy(int pe) const { return pes_[static_cast<std::size_t>(pe)].busy_sum; }

  /// Per-PE busy times (for utilization and imbalance metrics).
  std::vector<double> busy_times() const;

  /// Number of tasks executed so far (all PEs).
  std::uint64_t tasks_executed() const { return tasks_executed_; }
  /// Number of remote messages delivered so far.
  std::uint64_t remote_messages() const { return remote_messages_; }
  /// Total bytes carried by remote messages so far.
  std::uint64_t remote_bytes() const { return remote_bytes_; }

  // --- fault engine ---------------------------------------------------
  /// Arms the fault engine (replaces any previous plan). Call before run();
  /// installing a non-empty plan mid-run applies from the next event on.
  void set_fault_plan(const FaultPlan& plan);
  const FaultPlan& fault_plan() const { return plan_; }
  const FaultStats& fault_stats() const { return fault_stats_; }

  /// True once `pe` has reached its scheduled failure time (it executes
  /// nothing and receives nothing from then on).
  bool pe_failed(int pe) const {
    return pes_[static_cast<std::size_t>(pe)].failed;
  }
  /// PEs that have failed so far, ascending.
  std::vector<int> failed_pes() const;

  /// Message accounting so far (see MessageAccounting).
  const MessageAccounting& accounting() const { return acct_; }

  /// Emits a fault/recovery record to the attached sink (used by the
  /// recovery layers — reliable delivery, checkpointing, evacuation — so
  /// every recovery action lands in the same trace as the faults).
  void record_fault(const FaultRecord& r) {
    if (sink_ != nullptr) sink_->on_fault(r);
  }

 private:
  friend class ExecContext;

  struct Ready {
    int priority;
    std::uint64_t seq;
    TaskMsg msg;
    int src_pe;
    bool remote;
    double sent_at;
  };
  struct ReadyOrder {
    bool operator()(const Ready& a, const Ready& b) const {
      if (a.priority != b.priority) return a.priority > b.priority;  // min-heap
      return a.seq > b.seq;                                          // FIFO ties
    }
  };
  struct Processor {
    double busy_until = 0.0;
    double busy_sum = 0.0;
    bool dispatch_pending = false;
    bool failed = false;        ///< scheduled failure has taken effect
    double slowdown = 1.0;      ///< active task-time multiplier (fault engine)
    double out_nic_free = 0.0;  ///< when this PE's outgoing link frees up
    double in_nic_free = 0.0;   ///< when this PE's incoming link frees up
    std::priority_queue<Ready, std::vector<Ready>, ReadyOrder> ready;
  };
  enum class EventKind : std::uint8_t { kArrival = 0, kDispatch = 1 };
  struct Event {
    double time;
    EventKind kind;
    std::uint64_t seq;
    int pe;
    // Arrival payload (unused for dispatch events).
    Ready ready;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.kind != b.kind) return a.kind > b.kind;  // arrivals before dispatch
      return a.seq > b.seq;
    }
  };

  void schedule_dispatch(int pe, double time);
  void deliver(int src_pe, int dst_pe, TaskMsg msg, double send_time,
               double arrive_time, bool remote);
  void execute(int pe, Ready ready, double start);
  /// Applies every scheduled PE fault whose time has come (<= now).
  void apply_pe_faults(double now);

  MachineModel machine_;
  EntryRegistry entries_;
  TraceSink* sink_ = nullptr;
  std::vector<Processor> pes_;
  std::priority_queue<Event, std::vector<Event>, EventOrder> events_;
  std::uint64_t seq_ = 0;
  double horizon_ = 0.0;
  std::uint64_t tasks_executed_ = 0;
  std::uint64_t remote_messages_ = 0;
  std::uint64_t remote_bytes_ = 0;

  // Fault engine state. `pe_faults_` holds the not-yet-applied scheduled
  // faults sorted by time; `fault_rng_` drives the per-message decisions.
  struct ScheduledPeFault {
    double time;
    int pe;
    bool failure;    ///< true = failure, false = slowdown
    double factor;   ///< slowdown factor (unused for failures)
  };
  FaultPlan plan_;
  std::vector<ScheduledPeFault> pe_faults_;
  std::size_t next_pe_fault_ = 0;
  Rng fault_rng_{0};
  FaultStats fault_stats_;
  MessageAccounting acct_;
};

/// Handle given to a running task: lets it consume virtual CPU time and send
/// messages. Valid only during the task's execution.
class ExecContext {
 public:
  /// PE executing the task.
  int pe() const { return pe_; }
  /// Virtual time at which the task started.
  double start() const { return start_; }
  /// Current virtual time (start + charged so far).
  double now() const { return start_ + charged_; }
  /// Virtual seconds consumed so far by this task.
  double charged() const { return charged_; }
  const MachineModel& machine() const { return sim_->machine(); }
  Simulator& sim() { return *sim_; }

  /// Consumes `seconds` of CPU time at the current point in the task.
  void charge(double seconds) { charged_ += seconds; }

  /// Adds to the pack-cost attribution (for the audit's overhead column);
  /// also charges the time.
  void charge_pack(double seconds) {
    charged_ += seconds;
    pack_cost_ += seconds;
  }

  /// Sends `msg` to `dest` at the current point in the task. Charges the
  /// machine's send (or local enqueue) overhead; delivery time follows the
  /// network model. Message payload travel cost is based on msg.bytes.
  void send(int dest, TaskMsg msg);

  /// Schedules `msg` to run on this PE `delay` virtual seconds from now
  /// without charging the task (a timer). Delivered locally, so it is
  /// exempt from the fault engine and always fires.
  void post(TaskMsg msg, double delay);

 private:
  friend class Simulator;
  ExecContext(Simulator* sim, int pe, double start)
      : sim_(sim), pe_(pe), start_(start) {}

  Simulator* sim_;
  int pe_;
  double start_;
  double charged_ = 0.0;
  double recv_cost_ = 0.0;
  double pack_cost_ = 0.0;
  double send_cost_ = 0.0;
};

}  // namespace scalemd
