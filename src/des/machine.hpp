#pragma once

#include <string>

namespace scalemd {

/// Cost model of one parallel machine: per-work-unit CPU costs and a
/// LogGP-style communication model. All times are in seconds of *virtual*
/// time. The three factory profiles model the paper's machines; the CPU
/// constants are calibrated so the ApoA-I-class benchmark reproduces the
/// paper's single-processor step times (57.1 s on ASCI-Red, 24.4 s on the
/// Origin 2000), and the network constants are era-plausible MPP numbers
/// tuned to reproduce the published scaling shape. See EXPERIMENTS.md.
struct MachineModel {
  std::string name;

  // --- CPU cost model -------------------------------------------------
  double pair_cost = 2.5e-6;       ///< s per non-bonded pair inside cutoff
  double pair_test_cost = 2.0e-7;  ///< s per distance test outside cutoff
  double bonded_cost = 1.0e-6;     ///< s per bonded term evaluated
  double integrate_cost = 1.0e-6;  ///< s per atom integrated (incl. patch work)

  // --- PME cost model (full-electrostatics runs only) -------------------
  /// s per complex grid point per radix-2 butterfly stage (the slab FFTs
  /// and the influence-function pass charge points * stages * this).
  double fft_point_cost = 6e-9;
  /// s per (atom, stencil point) touched while spreading charges onto the
  /// mesh or gathering forces back off it.
  double pme_spread_cost = 2.5e-8;

  // --- Communication model (LogGP-ish) --------------------------------
  double send_overhead = 15e-6;   ///< CPU s per remote message sent
  double recv_overhead = 10e-6;   ///< CPU s per remote message received
  double latency = 20e-6;         ///< wire latency per message, s
  double byte_time = 3e-9;        ///< s per byte on the wire (1/bandwidth)
  double pack_byte_cost = 2e-9;   ///< CPU s per byte packed/allocated at send
  double unpack_byte_cost = 2e-9; ///< CPU s per byte processed at receive
  double local_overhead = 1e-6;   ///< CPU s to enqueue a same-PE message

  /// Relative standard deviation of multiplicative task-time noise (cache
  /// effects, OS interference). Applied deterministically (seeded) by the
  /// workloads when charging compute/integration costs; the DES itself stays
  /// exact. Real MPPs of the era showed a few percent.
  double task_noise = 0.04;

  /// Sandia ASCI-Red: 333 MHz Pentium II Xeon, custom mesh network,
  /// -proc 1 coprocessor mode (the paper's primary platform).
  static MachineModel asci_red();

  /// PSC Cray T3E-900: 450 MHz Alpha 21164, very low-latency torus.
  static MachineModel t3e900();

  /// NCSA SGI Origin 2000: 250 MHz R10000, ccNUMA (fastest per-processor).
  static MachineModel origin2000();
};

}  // namespace scalemd
