#pragma once

#include <cstddef>
#include <cstdint>

namespace scalemd {

/// Identifier of a registered entry method (see EntryRegistry).
using EntryId = int;

/// Coarse classification of entry methods, used by the performance audit
/// (Table 1) to fold entry-method times into the paper's columns.
enum class WorkCategory : std::uint8_t {
  kNonbonded,    ///< non-bonded pair/self compute objects
  kBonded,       ///< bonded compute objects
  kIntegration,  ///< patch integration + coordinate distribution
  kComm,         ///< runtime communication helpers (reductions, migration)
  kOther,
};

/// One executed task (entry-method invocation) on a virtual processor.
struct TaskRecord {
  int pe = 0;
  EntryId entry = 0;
  std::uint64_t object = 0;  ///< chare/object id for load measurement (0 = none)
  double start = 0.0;        ///< virtual seconds
  double duration = 0.0;     ///< total task time including recv overhead
  double recv_cost = 0.0;    ///< receive-overhead part of duration
  double pack_cost = 0.0;    ///< message pack/alloc part of duration
  double send_cost = 0.0;    ///< send/enqueue-overhead part of duration
};

/// One message delivery between virtual processors.
struct MsgRecord {
  int src_pe = 0;
  int dst_pe = 0;
  EntryId entry = 0;
  std::size_t bytes = 0;
  double send_time = 0.0;
  double recv_time = 0.0;
};

/// Instrumentation interface of the simulator. Implementations live in
/// trace/ (summary profiles, full event logs) and lb/ (load database).
/// The paper's three instrumentation levels map to: no sink (step times
/// only), SummaryProfile, and EventLog.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_task(const TaskRecord&) {}
  virtual void on_message(const MsgRecord&) {}
};

/// Fans one stream of records out to several sinks.
class MultiSink final : public TraceSink {
 public:
  void add(TraceSink* sink) { sinks_[count_++] = sink; }

  /// Removes a previously added sink (callers must remove sinks whose
  /// lifetime ends before the simulation's). No-op if absent.
  void remove(const TraceSink* sink) {
    for (int i = 0; i < count_; ++i) {
      if (sinks_[i] == sink) {
        sinks_[i] = sinks_[count_ - 1];
        --count_;
        return;
      }
    }
  }

  void on_task(const TaskRecord& r) override {
    for (int i = 0; i < count_; ++i) sinks_[i]->on_task(r);
  }
  void on_message(const MsgRecord& r) override {
    for (int i = 0; i < count_; ++i) sinks_[i]->on_message(r);
  }

 private:
  TraceSink* sinks_[8] = {};
  int count_ = 0;
};

}  // namespace scalemd
