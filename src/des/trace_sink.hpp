#pragma once

#include <cstddef>
#include <cstdint>

namespace scalemd {

/// Identifier of a registered entry method (see EntryRegistry).
using EntryId = int;

/// Coarse classification of entry methods, used by the performance audit
/// (Table 1) to fold entry-method times into the paper's columns.
enum class WorkCategory : std::uint8_t {
  kNonbonded,    ///< non-bonded pair/self compute objects
  kBonded,       ///< bonded compute objects
  kIntegration,  ///< patch integration + coordinate distribution
  kComm,         ///< runtime communication helpers (reductions, migration)
  kOther,
};

/// One executed task (entry-method invocation) on a virtual processor.
struct TaskRecord {
  int pe = 0;
  EntryId entry = 0;
  std::uint64_t object = 0;  ///< chare/object id for load measurement (0 = none)
  double start = 0.0;        ///< virtual seconds
  double duration = 0.0;     ///< total task time including recv overhead
  double recv_cost = 0.0;    ///< receive-overhead part of duration
  double pack_cost = 0.0;    ///< message pack/alloc part of duration
  double send_cost = 0.0;    ///< send/enqueue-overhead part of duration
};

/// One message delivery between virtual processors.
struct MsgRecord {
  int src_pe = 0;
  int dst_pe = 0;
  EntryId entry = 0;
  std::size_t bytes = 0;
  double send_time = 0.0;
  double recv_time = 0.0;
};

/// What happened to the machine or the runtime outside normal execution:
/// either an injected fault (FaultPlan, src/des/fault.hpp) or a recovery
/// action the fault-tolerant runtime took in response. Both flow through the
/// same record so the timeline and the audit can show them side by side.
enum class FaultKind : std::uint8_t {
  // Injected faults.
  kMessageDrop,     ///< a remote message vanished on the wire
  kMessageDup,      ///< a remote message was delivered twice
  kMessageDelay,    ///< a remote message suffered a latency spike
  kPeSlowdown,      ///< a PE started running slower by `magnitude`x
  kPeFailure,       ///< a PE died; nothing on it runs from `time` on
  // Recovery actions.
  kRetry,           ///< an unacked reliable message was resent
  kDupSuppressed,   ///< dedup filtered an already-delivered message
  kMessageLost,     ///< a reliable send was abandoned (dead PE / max attempts)
  kCheckpoint,      ///< coordinated checkpoint taken
  kRestart,         ///< state restored from the last checkpoint
  kEvacuation,      ///< a failed PE's objects were redistributed
};

const char* fault_kind_name(FaultKind k);
/// True for the injected-fault kinds, false for recovery actions.
bool is_injected_fault(FaultKind k);

/// One fault or recovery event, as seen by instrumentation sinks.
struct FaultRecord {
  FaultKind kind = FaultKind::kMessageDrop;
  int pe = -1;             ///< affected PE (destination for message faults)
  int src_pe = -1;         ///< sender for message faults, -1 otherwise
  double time = 0.0;       ///< virtual time of the event
  double magnitude = 0.0;  ///< delay s, slowdown factor, restart latency, ...
};

/// Instrumentation interface of the simulator. Implementations live in
/// trace/ (summary profiles, full event logs) and lb/ (load database).
/// The paper's three instrumentation levels map to: no sink (step times
/// only), SummaryProfile, and EventLog.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_task(const TaskRecord&) {}
  virtual void on_message(const MsgRecord&) {}
  virtual void on_fault(const FaultRecord&) {}
};

/// Fans one stream of records out to several sinks.
class MultiSink final : public TraceSink {
 public:
  void add(TraceSink* sink) { sinks_[count_++] = sink; }

  /// Removes a previously added sink (callers must remove sinks whose
  /// lifetime ends before the simulation's). No-op if absent.
  void remove(const TraceSink* sink) {
    for (int i = 0; i < count_; ++i) {
      if (sinks_[i] == sink) {
        sinks_[i] = sinks_[count_ - 1];
        --count_;
        return;
      }
    }
  }

  void on_task(const TaskRecord& r) override {
    for (int i = 0; i < count_; ++i) sinks_[i]->on_task(r);
  }
  void on_message(const MsgRecord& r) override {
    for (int i = 0; i < count_; ++i) sinks_[i]->on_message(r);
  }
  void on_fault(const FaultRecord& r) override {
    for (int i = 0; i < count_; ++i) sinks_[i]->on_fault(r);
  }

 private:
  TraceSink* sinks_[8] = {};
  int count_ = 0;
};

}  // namespace scalemd
