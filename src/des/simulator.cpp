#include "des/simulator.hpp"

#include <algorithm>
#include <cassert>

namespace scalemd {

EntryId EntryRegistry::add(std::string name, WorkCategory category) {
  names_.push_back(std::move(name));
  categories_.push_back(category);
  return static_cast<EntryId>(names_.size()) - 1;
}

Simulator::Simulator(int num_pes, const MachineModel& machine)
    : machine_(machine), pes_(static_cast<std::size_t>(num_pes)) {
  assert(num_pes > 0);
}

void Simulator::inject(int pe, TaskMsg msg, double time) {
  deliver(/*src_pe=*/pe, pe, std::move(msg), time, time, /*remote=*/false);
}

void Simulator::deliver(int src_pe, int dst_pe, TaskMsg msg, double send_time,
                        double arrive_time, bool remote) {
  assert(dst_pe >= 0 && dst_pe < num_pes());
  Event ev;
  ev.time = arrive_time;
  ev.kind = EventKind::kArrival;
  ev.seq = seq_++;
  ev.pe = dst_pe;
  ev.ready = Ready{msg.priority, ev.seq, std::move(msg), src_pe, remote, send_time};
  events_.push(std::move(ev));
}

void Simulator::schedule_dispatch(int pe, double time) {
  Event ev;
  ev.time = time;
  ev.kind = EventKind::kDispatch;
  ev.seq = seq_++;
  ev.pe = pe;
  events_.push(std::move(ev));
}

void Simulator::run(double until) {
  while (!events_.empty()) {
    if (events_.top().time > until) break;
    Event ev = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    Processor& p = pes_[static_cast<std::size_t>(ev.pe)];
    if (ev.kind == EventKind::kArrival) {
      if (sink_ != nullptr) {
        sink_->on_message({ev.ready.src_pe, ev.pe, ev.ready.msg.entry,
                           ev.ready.msg.bytes, ev.ready.sent_at, ev.time});
      }
      if (ev.ready.remote) {
        ++remote_messages_;
        remote_bytes_ += ev.ready.msg.bytes;
      }
      p.ready.push(std::move(ev.ready));
      if (!p.dispatch_pending) {
        p.dispatch_pending = true;
        schedule_dispatch(ev.pe, std::max(ev.time, p.busy_until));
      }
    } else {
      p.dispatch_pending = false;
      if (p.ready.empty()) continue;
      Ready ready = std::move(const_cast<Ready&>(p.ready.top()));
      p.ready.pop();
      execute(ev.pe, std::move(ready), ev.time);
      if (!p.ready.empty()) {
        p.dispatch_pending = true;
        schedule_dispatch(ev.pe, p.busy_until);
      }
    }
  }
}

void Simulator::execute(int pe, Ready ready, double start) {
  Processor& p = pes_[static_cast<std::size_t>(pe)];
  assert(start >= p.busy_until);

  ExecContext ctx(this, pe, start);
  if (ready.remote) {
    ctx.charge(machine_.recv_overhead);
    ctx.recv_cost_ = machine_.recv_overhead;
  }
  ready.msg.fn(ctx);

  const double duration = ctx.charged();
  p.busy_until = start + duration;
  p.busy_sum += duration;
  horizon_ = std::max(horizon_, p.busy_until);
  ++tasks_executed_;

  if (sink_ != nullptr) {
    sink_->on_task({pe, ready.msg.entry, ready.msg.object, start, duration,
                    ctx.recv_cost_, ctx.pack_cost_, ctx.send_cost_});
  }
}

bool Simulator::idle() const {
  if (!events_.empty()) return false;
  for (const Processor& p : pes_) {
    if (!p.ready.empty() || p.dispatch_pending) return false;
  }
  return true;
}

std::vector<double> Simulator::busy_times() const {
  std::vector<double> out;
  out.reserve(pes_.size());
  for (const Processor& p : pes_) out.push_back(p.busy_sum);
  return out;
}

void ExecContext::send(int dest, TaskMsg msg) {
  const MachineModel& m = sim_->machine();
  if (dest == pe_) {
    charge(m.local_overhead);
    send_cost_ += m.local_overhead;
    sim_->deliver(pe_, dest, std::move(msg), now(), now(), /*remote=*/false);
  } else {
    charge(m.send_overhead);
    send_cost_ += m.send_overhead;
    // Link (LogGP gap) serialization at both endpoints: a PE's outgoing and
    // incoming links each carry one message at a time at 1/byte_time.
    const double transfer = static_cast<double>(msg.bytes) * m.byte_time;
    auto& src = sim_->pes_[static_cast<std::size_t>(pe_)];
    const double tx_start = std::max(now(), src.out_nic_free);
    src.out_nic_free = tx_start + transfer;
    const double wire_arrival = tx_start + transfer + m.latency;
    auto& dst = sim_->pes_[static_cast<std::size_t>(dest)];
    const double deliver = std::max(wire_arrival, dst.in_nic_free);
    dst.in_nic_free = deliver + transfer;
    sim_->deliver(pe_, dest, std::move(msg), now(), deliver, /*remote=*/true);
  }
}

}  // namespace scalemd
