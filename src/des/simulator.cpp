#include "des/simulator.hpp"

#include <algorithm>
#include <cassert>

namespace scalemd {

/// DES implementation of ExecContext: charges advance the virtual clock,
/// sends go through the network model (LogGP link serialization at both
/// endpoints) and post() is a genuine virtual-time timer.
class DesContext final : public ExecContext {
 public:
  DesContext(Simulator* sim, int pe, double start)
      : ExecContext(pe, start), sim_(sim) {}

  const MachineModel& machine() const override { return sim_->machine(); }

  void send(int dest, TaskMsg msg) override {
    const MachineModel& m = sim_->machine();
    if (dest == pe_) {
      charge(m.local_overhead);
      send_cost_ += m.local_overhead;
      sim_->deliver(pe_, dest, std::move(msg), now(), now(), /*remote=*/false);
    } else {
      charge(m.send_overhead);
      send_cost_ += m.send_overhead;
      // Link (LogGP gap) serialization at both endpoints: a PE's outgoing and
      // incoming links each carry one message at a time at 1/byte_time.
      const double transfer = static_cast<double>(msg.bytes) * m.byte_time;
      auto& src = sim_->pes_[static_cast<std::size_t>(pe_)];
      const double tx_start = std::max(now(), src.out_nic_free);
      src.out_nic_free = tx_start + transfer;
      const double wire_arrival = tx_start + transfer + m.latency;
      auto& dst = sim_->pes_[static_cast<std::size_t>(dest)];
      const double deliver = std::max(wire_arrival, dst.in_nic_free);
      dst.in_nic_free = deliver + transfer;
      sim_->deliver(pe_, dest, std::move(msg), now(), deliver, /*remote=*/true);
    }
  }

  void post(TaskMsg msg, double delay) override {
    // Uncharged local self-message after `delay` virtual seconds: the timer
    // primitive of the reliable-delivery layer. Exempt from message faults
    // (local delivery), so a pending timer always eventually fires.
    sim_->deliver(pe_, pe_, std::move(msg), now(), now() + delay, /*remote=*/false);
  }

 private:
  friend class Simulator;

  Simulator* sim_;
};

Simulator::Simulator(int num_pes, const MachineModel& machine)
    : machine_(machine), pes_(static_cast<std::size_t>(num_pes)) {
  assert(num_pes > 0);
}

void Simulator::set_fault_plan(const FaultPlan& plan) {
  plan_ = plan;
  fault_rng_ = Rng(plan.seed);
  pe_faults_.clear();
  next_pe_fault_ = 0;
  for (const PeSlowdown& s : plan.slowdowns) {
    if (s.pe < 0 || s.pe >= num_pes()) continue;  // out-of-range: ignore
    pe_faults_.push_back({s.from_time, s.pe, /*failure=*/false, s.factor});
  }
  for (const PeFailure& f : plan.failures) {
    if (f.pe < 0 || f.pe >= num_pes()) continue;
    pe_faults_.push_back({f.at_time, f.pe, /*failure=*/true, 0.0});
  }
  std::sort(pe_faults_.begin(), pe_faults_.end(),
            [](const ScheduledPeFault& a, const ScheduledPeFault& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.pe != b.pe) return a.pe < b.pe;
              return a.failure < b.failure;  // slowdown before failure
            });
}

std::vector<int> Simulator::failed_pes() const {
  std::vector<int> out;
  for (int pe = 0; pe < num_pes(); ++pe) {
    if (pes_[static_cast<std::size_t>(pe)].failed) out.push_back(pe);
  }
  return out;
}

void Simulator::apply_pe_faults(double now) {
  while (next_pe_fault_ < pe_faults_.size() &&
         pe_faults_[next_pe_fault_].time <= now) {
    const ScheduledPeFault& f = pe_faults_[next_pe_fault_++];
    Processor& p = pes_[static_cast<std::size_t>(f.pe)];
    if (p.failed) continue;  // already dead: nothing further can happen to it
    if (f.failure) {
      p.failed = true;
      // Everything queued on the dying PE is lost with it.
      const auto lost = static_cast<std::uint64_t>(p.ready.size());
      while (!p.ready.empty()) p.ready.pop();
      acct_.pending_ready -= lost;
      acct_.discarded_dead_pe += lost;
      fault_stats_.discarded_dead_pe += lost;
      ++fault_stats_.pe_failures;
      fault_stats_.last_failure_time =
          std::max(fault_stats_.last_failure_time, f.time);
      record_fault({FaultKind::kPeFailure, f.pe, -1, f.time, 0.0});
    } else {
      p.slowdown = f.factor;
      record_fault({FaultKind::kPeSlowdown, f.pe, -1, f.time, f.factor});
    }
  }
}

void Simulator::inject(int pe, TaskMsg msg, double time) {
  deliver(/*src_pe=*/pe, pe, std::move(msg), time, time, /*remote=*/false);
}

void Simulator::deliver(int src_pe, int dst_pe, TaskMsg msg, double send_time,
                        double arrive_time, bool remote) {
  assert(dst_pe >= 0 && dst_pe < num_pes());
  ++acct_.offered;
  bool duplicate = false;
  // Message faults hit only the network: local sends, injected bootstrap
  // messages and timer self-messages are exempt, so recovery timers are
  // guaranteed to fire.
  if (remote && plan_.has_message_faults()) {
    if (plan_.drop_prob > 0.0 && fault_rng_.uniform() < plan_.drop_prob) {
      ++fault_stats_.messages_dropped;
      ++acct_.dropped_fault;
      record_fault({FaultKind::kMessageDrop, dst_pe, src_pe, send_time, 0.0});
      return;
    }
    if (plan_.dup_prob > 0.0 && fault_rng_.uniform() < plan_.dup_prob) {
      duplicate = true;
      ++fault_stats_.messages_duplicated;
      ++acct_.duplicated;
      record_fault({FaultKind::kMessageDup, dst_pe, src_pe, send_time, 0.0});
    }
    if (plan_.delay_prob > 0.0 && fault_rng_.uniform() < plan_.delay_prob) {
      const double spike = fault_rng_.uniform() * plan_.delay_max;
      arrive_time += spike;
      ++fault_stats_.messages_delayed;
      record_fault({FaultKind::kMessageDelay, dst_pe, src_pe, send_time, spike});
    }
  }
  Event ev;
  ev.time = arrive_time;
  ev.kind = EventKind::kArrival;
  ev.seq = seq_++;
  ev.pe = dst_pe;
  ev.ready = Ready{msg.priority, ev.seq, std::move(msg), src_pe, remote, send_time};
  if (duplicate) {
    Event copy = ev;
    copy.seq = seq_++;
    copy.ready.seq = copy.seq;
    events_.push(std::move(copy));
    ++acct_.pending_network;
  }
  events_.push(std::move(ev));
  ++acct_.pending_network;
}

void Simulator::schedule_dispatch(int pe, double time) {
  Event ev;
  ev.time = time;
  ev.kind = EventKind::kDispatch;
  ev.seq = seq_++;
  ev.pe = pe;
  events_.push(std::move(ev));
}

void Simulator::run(double until) {
  while (!events_.empty()) {
    if (events_.top().time > until) break;
    if (next_pe_fault_ < pe_faults_.size()) apply_pe_faults(events_.top().time);
    Event ev = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    Processor& p = pes_[static_cast<std::size_t>(ev.pe)];
    if (ev.kind == EventKind::kArrival) {
      --acct_.pending_network;
      if (p.failed) {
        ++acct_.discarded_dead_pe;
        ++fault_stats_.discarded_dead_pe;
        continue;
      }
      if (sink_ != nullptr) {
        sink_->on_message({ev.ready.src_pe, ev.pe, ev.ready.msg.entry,
                           ev.ready.msg.bytes, ev.ready.sent_at, ev.time});
      }
      if (ev.ready.remote) {
        ++remote_messages_;
        remote_bytes_ += ev.ready.msg.bytes;
      }
      p.ready.push(std::move(ev.ready));
      ++acct_.pending_ready;
      if (!p.dispatch_pending) {
        p.dispatch_pending = true;
        schedule_dispatch(ev.pe, std::max(ev.time, p.busy_until));
      }
    } else {
      p.dispatch_pending = false;
      if (p.failed || p.ready.empty()) continue;
      Ready ready = std::move(const_cast<Ready&>(p.ready.top()));
      p.ready.pop();
      --acct_.pending_ready;
      execute(ev.pe, std::move(ready), ev.time);
      if (!p.ready.empty()) {
        p.dispatch_pending = true;
        schedule_dispatch(ev.pe, p.busy_until);
      }
    }
  }
}

void Simulator::execute(int pe, Ready ready, double start) {
  Processor& p = pes_[static_cast<std::size_t>(pe)];
  assert(start >= p.busy_until);

  DesContext ctx(this, pe, start);
  if (ready.remote) {
    ctx.charge(machine_.recv_overhead);
    ctx.recv_cost_ = machine_.recv_overhead;
  }
  ready.msg.fn(ctx);

  // A slowdown factor of exactly 1.0 leaves the duration bit-identical
  // (IEEE multiplication by one is exact), so fault-free schedules match
  // a build without the fault engine.
  const double duration = ctx.charged() * p.slowdown;
  p.busy_until = start + duration;
  p.busy_sum += duration;
  horizon_ = std::max(horizon_, p.busy_until);
  ++tasks_executed_;
  ++acct_.executed;

  if (sink_ != nullptr) {
    sink_->on_task({pe, ready.msg.entry, ready.msg.object, start, duration,
                    ctx.recv_cost_, ctx.pack_cost_, ctx.send_cost_});
  }
}

bool Simulator::idle() const {
  if (!events_.empty()) return false;
  for (const Processor& p : pes_) {
    if (!p.ready.empty() || p.dispatch_pending) return false;
  }
  return true;
}

std::vector<double> Simulator::busy_times() const {
  std::vector<double> out;
  out.reserve(pes_.size());
  for (const Processor& p : pes_) out.push_back(p.busy_sum);
  return out;
}

}  // namespace scalemd
