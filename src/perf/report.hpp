#pragma once

// The versioned BENCH_<suite>.json artifact: schema magic + version,
// environment provenance, and one BenchRecord per benchmark. Schema
// evolution is additive-only — tests/perf/bench_schema_v1.json pins the
// v1 field set, and tests/test_perf.cpp enforces that emitted reports stay
// a superset of it.

#include <stdexcept>
#include <string>
#include <vector>

#include "perf/bench_runner.hpp"
#include "perf/env.hpp"

namespace scalemd::perf {

inline constexpr const char* kBenchSchemaName = "scalemd-bench";
inline constexpr int kBenchSchemaVersion = 1;

/// Thrown by from_json/load_report on a wrong magic, an unsupported schema
/// version, or structurally invalid content.
class BenchSchemaError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct BenchReport {
  std::string suite;
  BenchEnvironment environment;
  std::vector<BenchRecord> benchmarks;

  /// Appends `other`'s records; the receiving report's suite/environment
  /// win (suites merged into one artifact share one process environment).
  void merge(BenchReport other);

  const BenchRecord* find(const std::string& name) const;

  JsonValue to_json() const;
  static BenchReport from_json(const JsonValue& v);
};

/// A report for `suite` with the current environment captured.
BenchReport make_report(const std::string& suite);

void save_report(const BenchReport& report, const std::string& path);
BenchReport load_report(const std::string& path);

}  // namespace scalemd::perf
