#pragma once

// Build/host environment capture for benchmark artifacts: every BENCH_*.json
// records enough provenance to tell whether two runs are comparable at all
// (same code? same flags? sanitized build?) before any statistics run.

#include <string>

#include "perf/json.hpp"

namespace scalemd::perf {

struct BenchEnvironment {
  std::string git_sha = "unknown";    ///< HEAD commit, "unknown" outside a repo
  std::string compiler = "unknown";   ///< e.g. "g++ 12.2.0"
  std::string cxx_flags = "unknown";  ///< configure-time flags (build type folded in)
  std::string build_type = "unknown";
  std::string cpu_model = "unknown";  ///< /proc/cpuinfo "model name"
  int hardware_threads = 0;
  std::string sanitizer = "none";  ///< "none", "address" or "thread"
  std::string hostname = "unknown";

  JsonValue to_json() const;
  /// Tolerant reader: absent members keep their defaults so newer readers
  /// accept older artifacts.
  static BenchEnvironment from_json(const JsonValue& v);
};

/// Captures the current build and host. Sanitizer state and compile flags
/// come from configure-time macros; the git SHA is resolved at run time
/// (SCALEMD_GIT_SHA overrides, then `git rev-parse HEAD`, else "unknown").
BenchEnvironment capture_environment();

}  // namespace scalemd::perf
