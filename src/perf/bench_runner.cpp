#include "perf/bench_runner.hpp"

#include <chrono>

#include "util/stats.hpp"

namespace scalemd::perf {

BenchRecord& BenchRecord::param(std::string key, double value) {
  params.emplace_back(std::move(key), value);
  return *this;
}

BenchRecord& BenchRecord::label(std::string key, std::string value) {
  labels.emplace_back(std::move(key), std::move(value));
  return *this;
}

void BenchRecord::finalize() {
  const RobustSummary r = robust_summarize(samples);
  min = r.min;
  median = r.median;
  mad = r.mad;
  reps = static_cast<int>(samples.size());
}

JsonValue BenchRecord::to_json() const {
  JsonValue v = JsonValue::object();
  v.set("name", name);
  v.set("metric", metric);
  v.set("unit", unit);
  v.set("deterministic", deterministic);
  v.set("reps", reps);
  v.set("warmup", warmup);
  JsonValue s = JsonValue::array();
  for (double x : samples) s.push_back(x);
  v.set("samples", std::move(s));
  v.set("min", min);
  v.set("median", median);
  v.set("mad", mad);
  JsonValue p = JsonValue::object();
  for (const auto& [k, x] : params) p.set(k, x);
  for (const auto& [k, x] : labels) p.set(k, x);
  v.set("params", std::move(p));
  return v;
}

BenchRecord BenchRecord::from_json(const JsonValue& v) {
  BenchRecord r;
  r.name = v.at("name").as_string();
  r.metric = v.at("metric").as_string();
  r.unit = v.at("unit").as_string();
  if (const JsonValue* d = v.find("deterministic")) r.deterministic = d->as_bool();
  if (const JsonValue* w = v.find("warmup")) r.warmup = static_cast<int>(w->as_number());
  for (const JsonValue& s : v.at("samples").items()) {
    r.samples.push_back(s.as_number());
  }
  if (const JsonValue* p = v.find("params")) {
    for (const auto& [k, x] : p->members()) {
      if (x.is_number()) {
        r.params.emplace_back(k, x.as_number());
      } else if (x.is_string()) {
        r.labels.emplace_back(k, x.as_string());
      }
    }
  }
  // Statistics are rederived from the samples rather than trusted from the
  // file, so a hand-edited artifact cannot carry inconsistent medians.
  r.finalize();
  return r;
}

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

BenchRecord& BenchRunner::time(const std::string& name, const std::string& metric,
                               const std::function<void()>& fn) {
  return time_batch(name, metric, 1, fn);
}

BenchRecord& BenchRunner::time_batch(const std::string& name,
                                     const std::string& metric, int iters_per_rep,
                                     const std::function<void()>& fn) {
  if (iters_per_rep < 1) iters_per_rep = 1;
  for (int i = 0; i < opts_.warmup; ++i) fn();
  BenchRecord rec;
  rec.name = name;
  rec.metric = metric;
  rec.warmup = opts_.warmup;
  for (int r = 0; r < opts_.reps; ++r) {
    const double t0 = now_seconds();
    for (int i = 0; i < iters_per_rep; ++i) fn();
    const double t1 = now_seconds();
    rec.samples.push_back((t1 - t0) / iters_per_rep);
  }
  rec.finalize();
  records_.push_back(std::move(rec));
  return records_.back();
}

BenchRecord& BenchRunner::record_value(const std::string& name,
                                       const std::string& metric, double value) {
  BenchRecord rec;
  rec.name = name;
  rec.metric = metric;
  rec.deterministic = true;
  rec.samples = {value};
  rec.finalize();
  records_.push_back(std::move(rec));
  return records_.back();
}

BenchRecord& BenchRunner::record_samples(const std::string& name,
                                         const std::string& metric,
                                         std::vector<double> samples, int warmup) {
  BenchRecord rec;
  rec.name = name;
  rec.metric = metric;
  rec.warmup = warmup;
  rec.samples = std::move(samples);
  rec.finalize();
  records_.push_back(std::move(rec));
  return records_.back();
}

}  // namespace scalemd::perf
