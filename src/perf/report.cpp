#include "perf/report.hpp"

#include <fstream>
#include <sstream>

namespace scalemd::perf {

void BenchReport::merge(BenchReport other) {
  for (BenchRecord& r : other.benchmarks) {
    benchmarks.push_back(std::move(r));
  }
}

const BenchRecord* BenchReport::find(const std::string& name) const {
  for (const BenchRecord& r : benchmarks) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

JsonValue BenchReport::to_json() const {
  JsonValue v = JsonValue::object();
  v.set("schema", kBenchSchemaName);
  v.set("schema_version", kBenchSchemaVersion);
  v.set("suite", suite);
  v.set("environment", environment.to_json());
  JsonValue arr = JsonValue::array();
  for (const BenchRecord& r : benchmarks) arr.push_back(r.to_json());
  v.set("benchmarks", std::move(arr));
  return v;
}

BenchReport BenchReport::from_json(const JsonValue& v) {
  try {
    const std::string& magic = v.at("schema").as_string();
    if (magic != kBenchSchemaName) {
      throw BenchSchemaError("not a " + std::string(kBenchSchemaName) +
                             " artifact (schema: \"" + magic + "\")");
    }
    const int version = static_cast<int>(v.at("schema_version").as_number());
    if (version > kBenchSchemaVersion) {
      throw BenchSchemaError("schema_version " + std::to_string(version) +
                             " is newer than supported version " +
                             std::to_string(kBenchSchemaVersion));
    }
    BenchReport report;
    report.suite = v.at("suite").as_string();
    report.environment = BenchEnvironment::from_json(v.at("environment"));
    for (const JsonValue& b : v.at("benchmarks").items()) {
      report.benchmarks.push_back(BenchRecord::from_json(b));
    }
    return report;
  } catch (const JsonError& e) {
    throw BenchSchemaError(std::string("malformed bench report: ") + e.what());
  }
}

BenchReport make_report(const std::string& suite) {
  BenchReport report;
  report.suite = suite;
  report.environment = capture_environment();
  return report;
}

void save_report(const BenchReport& report, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_report: cannot open " + path);
  os << report.to_json().dump();
  if (!os) throw std::runtime_error("save_report: write failed for " + path);
}

BenchReport load_report(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_report: cannot open " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  try {
    return BenchReport::from_json(JsonValue::parse(buf.str()));
  } catch (const JsonError& e) {
    throw BenchSchemaError(path + ": " + e.what());
  }
}

}  // namespace scalemd::perf
