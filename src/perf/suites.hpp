#pragma once

// Curated benchmark suites behind the `scalemd-bench` driver and the CI
// perf-smoke gate.
//
//   smoke  micro force-kernel variants + runtime substrate + a serve-layer
//          batch, sized to finish in seconds; the per-PR regression gate
//          runs this twice and diffs.
//   paper  the Table 2 / Table 3 scaling sweeps (virtual machine-model
//          seconds — deterministic, so any delta is a real model change).

#include <string>
#include <vector>

#include "perf/report.hpp"

namespace scalemd {
struct ScalingRow;
}

namespace scalemd::perf {

struct SuiteOptions {
  int reps = 7;     ///< timed repetitions per wall-clock benchmark
  int warmup = 2;   ///< untimed warmup iterations
  int threads = 2;  ///< workers for threaded kernels / the threaded backend
  /// Problem-size scale in (0, 1]: shrinks boxes (by cbrt) and clips PE
  /// ladders. Defaults from SCALEMD_BENCH_SCALE when constructed via
  /// default_suite_options().
  double scale = 1.0;
};

/// SuiteOptions with `scale` initialized from SCALEMD_BENCH_SCALE.
SuiteOptions default_suite_options();

std::vector<std::string> suite_names();

/// Runs a named suite; throws std::invalid_argument for unknown names.
BenchReport run_suite(const std::string& name, const SuiteOptions& opts);

BenchReport run_smoke_suite(const SuiteOptions& opts);
BenchReport run_paper_suite(const SuiteOptions& opts);

/// Appends one deterministic record per ScalingRow as
/// "<prefix>/pes=<P>" with metric virtual_seconds_per_step — shared by the
/// paper suite and the bench_table* binaries' --json mode.
void append_scaling_records(BenchReport& report, const std::string& prefix,
                            const std::vector<ScalingRow>& rows);

/// Keeps the first max(2, size * scale) entries of a PE ladder (scale >= 1
/// keeps all) — the smoke-run clipping rule the bench binaries share.
std::vector<int> clip_ladder(std::vector<int> pes, double scale);

}  // namespace scalemd::perf
