#pragma once

// The shared benchmark harness: every bench binary and curated suite runs
// its measurements through a BenchRunner so warmup/repetition policy, robust
// statistics (min/median/MAD — never mean, which a single scheduler stall
// corrupts) and the JSON record layout are defined in exactly one place.

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "perf/json.hpp"

namespace scalemd::perf {

/// One benchmark's result: raw samples plus derived robust statistics.
/// `deterministic` marks model-clock results (virtual seconds from the DES)
/// that are exactly reproducible; their MAD is zero by construction and any
/// nonzero delta between runs is a real change, not noise.
struct BenchRecord {
  std::string name;
  std::string metric = "seconds";
  std::string unit = "s";
  bool deterministic = false;
  int reps = 0;
  int warmup = 0;
  std::vector<double> samples;
  // Derived by finalize() from samples:
  double min = 0.0;
  double median = 0.0;
  double mad = 0.0;
  /// Free-form numeric/string problem parameters (atoms, pes, kernel, ...).
  std::vector<std::pair<std::string, double>> params;
  std::vector<std::pair<std::string, std::string>> labels;

  BenchRecord& param(std::string key, double value);
  BenchRecord& label(std::string key, std::string value);
  /// Recomputes min/median/mad from samples.
  void finalize();

  JsonValue to_json() const;
  static BenchRecord from_json(const JsonValue& v);
};

struct BenchOptions {
  int reps = 7;    ///< timed repetitions per benchmark
  int warmup = 2;  ///< untimed warmup iterations before the first sample
};

/// Collects BenchRecords. Timing uses a monotonic wall clock; one sample is
/// one `fn()` call (or the per-iteration average with `time_batch`).
class BenchRunner {
 public:
  explicit BenchRunner(BenchOptions opts = {}) : opts_(opts) {}

  const BenchOptions& options() const { return opts_; }

  /// Runs `fn` options().warmup times untimed, then options().reps times
  /// timed; each timed call becomes one seconds-valued sample.
  BenchRecord& time(const std::string& name, const std::string& metric,
                    const std::function<void()>& fn);

  /// Like time(), but each sample is the average of `iters_per_rep`
  /// back-to-back calls — for sub-millisecond bodies where a single call
  /// disappears into clock jitter.
  BenchRecord& time_batch(const std::string& name, const std::string& metric,
                          int iters_per_rep, const std::function<void()>& fn);

  /// Records one exactly-reproducible value (model output, virtual clock).
  BenchRecord& record_value(const std::string& name, const std::string& metric,
                            double value);

  /// Records externally produced samples (already in seconds or the stated
  /// metric's unit).
  BenchRecord& record_samples(const std::string& name, const std::string& metric,
                              std::vector<double> samples, int warmup = 0);

  std::vector<BenchRecord>& records() { return records_; }
  const std::vector<BenchRecord>& records() const { return records_; }
  std::vector<BenchRecord> take_records() { return std::move(records_); }

 private:
  BenchOptions opts_;
  std::vector<BenchRecord> records_;
};

}  // namespace scalemd::perf
