#pragma once

// Minimal JSON value model with a writer and a recursive-descent parser —
// just enough for the benchmark subsystem's machine-readable artifacts
// (BENCH_*.json) without an external dependency. Objects preserve insertion
// order so emitted files diff cleanly; parse errors carry line:column.

#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace scalemd::perf {

/// Thrown on malformed JSON text (with "line:col:" prefix) and on kind
/// mismatches when reading a JsonValue as the wrong type.
class JsonError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  ///< null
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  JsonValue(double d) : kind_(Kind::kNumber), num_(d) {}
  JsonValue(int i) : kind_(Kind::kNumber), num_(i) {}
  JsonValue(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  JsonValue(const char* s) : kind_(Kind::kString), str_(s) {}

  static JsonValue array();
  static JsonValue object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw JsonError on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;

  // --- arrays ----------------------------------------------------------
  /// Appends to an array (throws unless is_array()).
  void push_back(JsonValue v);
  const std::vector<JsonValue>& items() const;

  // --- objects ---------------------------------------------------------
  /// Sets `key` in an object: replaces an existing member, appends
  /// otherwise (throws unless is_object()).
  void set(std::string key, JsonValue v);
  /// Member lookup; nullptr when absent (throws unless is_object()).
  const JsonValue* find(const std::string& key) const;
  /// Member lookup; throws JsonError naming the key when absent.
  const JsonValue& at(const std::string& key) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  std::size_t size() const;  ///< element/member count (0 for scalars)

  /// Serializes with 2-space indentation and a trailing newline at the
  /// top level. Numbers use the shortest round-trip representation.
  std::string dump() const;

  /// Parses one JSON document; trailing non-whitespace is an error.
  static JsonValue parse(const std::string& text);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::vector<std::pair<std::string, JsonValue>> obj_;
};

}  // namespace scalemd::perf
