#include "perf/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace scalemd::perf {

namespace {

[[noreturn]] void kind_fail(const char* want, JsonValue::Kind got) {
  static const char* names[] = {"null", "bool", "number", "string", "array",
                                "object"};
  throw JsonError(std::string("JSON value is ") +
                  names[static_cast<int>(got)] + ", expected " + want);
}

void write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void write_number(std::string& out, double d) {
  if (!std::isfinite(d)) {
    // JSON has no Inf/NaN; null is the conventional stand-in.
    out += "null";
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, d);
  out.append(buf, res.ptr);
}

}  // namespace

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) kind_fail("bool", kind_);
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) kind_fail("number", kind_);
  return num_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) kind_fail("string", kind_);
  return str_;
}

void JsonValue::push_back(JsonValue v) {
  if (kind_ != Kind::kArray) kind_fail("array", kind_);
  arr_.push_back(std::move(v));
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (kind_ != Kind::kArray) kind_fail("array", kind_);
  return arr_;
}

void JsonValue::set(std::string key, JsonValue v) {
  if (kind_ != Kind::kObject) kind_fail("object", kind_);
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  obj_.emplace_back(std::move(key), std::move(v));
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) kind_fail("object", kind_);
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) throw JsonError("missing JSON member '" + key + "'");
  return *v;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members() const {
  if (kind_ != Kind::kObject) kind_fail("object", kind_);
  return obj_;
}

std::size_t JsonValue::size() const {
  if (kind_ == Kind::kArray) return arr_.size();
  if (kind_ == Kind::kObject) return obj_.size();
  return 0;
}

namespace {

void dump_value(std::string& out, const JsonValue& v, int depth) {
  const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  const std::string pad_in(static_cast<std::size_t>(depth + 1) * 2, ' ');
  switch (v.kind()) {
    case JsonValue::Kind::kNull: out += "null"; break;
    case JsonValue::Kind::kBool: out += v.as_bool() ? "true" : "false"; break;
    case JsonValue::Kind::kNumber: write_number(out, v.as_number()); break;
    case JsonValue::Kind::kString: write_escaped(out, v.as_string()); break;
    case JsonValue::Kind::kArray: {
      const auto& items = v.items();
      if (items.empty()) {
        out += "[]";
        break;
      }
      // Scalar-only arrays (e.g. samples) stay on one line.
      bool scalars = true;
      for (const auto& e : items) {
        scalars = scalars && !e.is_array() && !e.is_object();
      }
      out += '[';
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (!scalars) {
          out += '\n';
          out += pad_in;
        }
        dump_value(out, items[i], depth + 1);
        if (i + 1 < items.size()) out += scalars ? ", " : ",";
      }
      if (!scalars) {
        out += '\n';
        out += pad;
      }
      out += ']';
      break;
    }
    case JsonValue::Kind::kObject: {
      const auto& members = v.members();
      if (members.empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      for (std::size_t i = 0; i < members.size(); ++i) {
        out += pad_in;
        write_escaped(out, members[i].first);
        out += ": ";
        dump_value(out, members[i].second, depth + 1);
        if (i + 1 < members.size()) out += ',';
        out += '\n';
      }
      out += pad;
      out += '}';
      break;
    }
  }
}

/// Recursive-descent parser over the whole text, tracking line/column.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& reason) const {
    throw JsonError(std::to_string(line_) + ":" + std::to_string(col_) + ": " +
                    reason);
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  char take() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        take();
      } else {
        break;
      }
    }
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    take();
  }

  void expect_word(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (peek() != *p) fail(std::string("invalid literal (expected '") + word + "')");
      take();
    }
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't': expect_word("true"); return JsonValue(true);
      case 'f': expect_word("false"); return JsonValue(false);
      case 'n': expect_word("null"); return JsonValue();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue obj = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      take();
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value());
      skip_ws();
      const char next = peek();
      if (next == ',') {
        take();
      } else if (next == '}') {
        take();
        return obj;
      } else {
        fail("expected ',' or '}' in object");
      }
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue arr = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      take();
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char next = peek();
      if (next == ',') {
        take();
      } else if (next == ']') {
        take();
        return arr;
      } else {
        fail("expected ',' or ']' in array");
      }
    }
  }

  std::string parse_string() {
    if (peek() != '"') fail("expected string");
    take();
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = take();
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape");
          }
          // ASCII-only decoding; everything the writer emits.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else {
            out += '?';
          }
          break;
        }
        default: fail("invalid escape sequence");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') take();
    if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("invalid number");
    while (std::isdigit(static_cast<unsigned char>(peek()))) take();
    if (peek() == '.') {
      take();
      if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("invalid number");
      while (std::isdigit(static_cast<unsigned char>(peek()))) take();
    }
    if (peek() == 'e' || peek() == 'E') {
      take();
      if (peek() == '+' || peek() == '-') take();
      if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("invalid number");
      while (std::isdigit(static_cast<unsigned char>(peek()))) take();
    }
    double value = 0.0;
    const auto res = std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (res.ec != std::errc{} || res.ptr != text_.data() + pos_) {
      fail("invalid number");
    }
    return JsonValue(value);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

std::string JsonValue::dump() const {
  std::string out;
  dump_value(out, *this, 0);
  out += '\n';
  return out;
}

JsonValue JsonValue::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace scalemd::perf
