#pragma once

// Noise-aware regression gating between two BENCH_*.json artifacts. All
// recorded metrics are time-like (lower is better); a candidate regresses a
// benchmark only when its median exceeds the baseline median by more than
// max(rel_min * baseline_median, mad_k * baseline_MAD) — the relative floor
// absorbs calibration-level drift, the MAD term scales the gate with the
// measured noise of the baseline itself.

#include <string>
#include <vector>

#include "perf/report.hpp"

namespace scalemd::perf {

struct CompareOptions {
  double rel_min = 0.05;  ///< minimum relative delta to flag (5%)
  double mad_k = 3.0;     ///< noise gate: baseline MADs a delta must exceed
  /// When false (default), a baseline benchmark missing from the candidate
  /// is itself a failure — silently dropped coverage must not pass a gate.
  bool allow_missing = false;
};

struct BenchDelta {
  enum class Verdict { kOk, kImproved, kRegressed, kMissing, kNew };

  std::string name;
  double base_median = 0.0;
  double cand_median = 0.0;
  double base_mad = 0.0;
  double delta = 0.0;      ///< cand_median - base_median
  double threshold = 0.0;  ///< the gate the delta was held against
  Verdict verdict = Verdict::kOk;
};

struct CompareResult {
  std::vector<BenchDelta> deltas;
  bool failed = false;  ///< any regression (or missing benchmark, per options)

  /// Names of the offending benchmarks, for error messages and CI logs.
  std::vector<std::string> offenders() const;
};

CompareResult compare_reports(const BenchReport& baseline,
                              const BenchReport& candidate,
                              const CompareOptions& opts = {});

/// Human-readable comparison table plus a PASS/FAIL verdict line.
std::string render_comparison(const CompareResult& result);

}  // namespace scalemd::perf
