#include "perf/env.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>

#ifndef _WIN32
#include <unistd.h>
#endif

namespace scalemd::perf {

namespace {

std::string detect_git_sha() {
  if (const char* sha = std::getenv("SCALEMD_GIT_SHA")) {
    return sha;
  }
#ifndef _WIN32
  if (std::FILE* p = ::popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buf[64] = {};
    const std::size_t n = std::fread(buf, 1, sizeof buf - 1, p);
    const int status = ::pclose(p);
    std::string sha(buf, n);
    while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
      sha.pop_back();
    }
    if (status == 0 && sha.size() >= 7) return sha;
  }
#endif
  return "unknown";
}

std::string detect_cpu_model() {
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    if (line.rfind("model name", 0) == 0) {
      const std::size_t colon = line.find(':');
      if (colon != std::string::npos) {
        std::size_t start = colon + 1;
        while (start < line.size() && line[start] == ' ') ++start;
        return line.substr(start);
      }
    }
  }
  return "unknown";
}

std::string detect_sanitizer() {
#if defined(__SANITIZE_ADDRESS__)
  return "address";
#elif defined(__SANITIZE_THREAD__)
  return "thread";
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  return "address";
#elif __has_feature(thread_sanitizer)
  return "thread";
#else
  return "none";
#endif
#else
  return "none";
#endif
}

std::string detect_hostname() {
#ifndef _WIN32
  char buf[256] = {};
  if (::gethostname(buf, sizeof buf - 1) == 0 && buf[0] != '\0') return buf;
#endif
  return "unknown";
}

}  // namespace

BenchEnvironment capture_environment() {
  BenchEnvironment env;
  env.git_sha = detect_git_sha();
#if defined(__clang__)
  env.compiler = std::string("clang++ ") + __VERSION__;
#elif defined(__GNUC__)
  env.compiler = std::string("g++ ") + __VERSION__;
#else
  env.compiler = "unknown";
#endif
#ifdef SCALEMD_CXX_FLAGS
  env.cxx_flags = SCALEMD_CXX_FLAGS;
#endif
#ifdef SCALEMD_BUILD_TYPE
  env.build_type = SCALEMD_BUILD_TYPE;
#endif
  env.cpu_model = detect_cpu_model();
  env.hardware_threads = static_cast<int>(std::thread::hardware_concurrency());
  env.sanitizer = detect_sanitizer();
  env.hostname = detect_hostname();
  return env;
}

JsonValue BenchEnvironment::to_json() const {
  JsonValue v = JsonValue::object();
  v.set("git_sha", git_sha);
  v.set("compiler", compiler);
  v.set("cxx_flags", cxx_flags);
  v.set("build_type", build_type);
  v.set("cpu_model", cpu_model);
  v.set("hardware_threads", hardware_threads);
  v.set("sanitizer", sanitizer);
  v.set("hostname", hostname);
  return v;
}

BenchEnvironment BenchEnvironment::from_json(const JsonValue& v) {
  BenchEnvironment env;
  const auto str = [&](const char* key, std::string& out) {
    if (const JsonValue* m = v.find(key)) out = m->as_string();
  };
  str("git_sha", env.git_sha);
  str("compiler", env.compiler);
  str("cxx_flags", env.cxx_flags);
  str("build_type", env.build_type);
  str("cpu_model", env.cpu_model);
  str("sanitizer", env.sanitizer);
  str("hostname", env.hostname);
  if (const JsonValue* m = v.find("hardware_threads")) {
    env.hardware_threads = static_cast<int>(m->as_number());
  }
  return env;
}

}  // namespace scalemd::perf
