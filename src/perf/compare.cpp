#include "perf/compare.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/table.hpp"

namespace scalemd::perf {

std::vector<std::string> CompareResult::offenders() const {
  std::vector<std::string> names;
  for (const BenchDelta& d : deltas) {
    if (d.verdict == BenchDelta::Verdict::kRegressed ||
        d.verdict == BenchDelta::Verdict::kMissing) {
      names.push_back(d.name);
    }
  }
  return names;
}

CompareResult compare_reports(const BenchReport& baseline,
                              const BenchReport& candidate,
                              const CompareOptions& opts) {
  CompareResult result;
  for (const BenchRecord& base : baseline.benchmarks) {
    BenchDelta d;
    d.name = base.name;
    d.base_median = base.median;
    d.base_mad = base.mad;
    const BenchRecord* cand = candidate.find(base.name);
    if (cand == nullptr) {
      d.verdict = BenchDelta::Verdict::kMissing;
      result.failed = result.failed || !opts.allow_missing;
      result.deltas.push_back(d);
      continue;
    }
    d.cand_median = cand->median;
    d.delta = cand->median - base.median;
    d.threshold = std::max(opts.rel_min * std::fabs(base.median),
                           opts.mad_k * base.mad);
    if (d.delta > d.threshold) {
      d.verdict = BenchDelta::Verdict::kRegressed;
      result.failed = true;
    } else if (d.delta < -d.threshold) {
      d.verdict = BenchDelta::Verdict::kImproved;
    } else {
      d.verdict = BenchDelta::Verdict::kOk;
    }
    result.deltas.push_back(d);
  }
  for (const BenchRecord& cand : candidate.benchmarks) {
    if (baseline.find(cand.name) == nullptr) {
      BenchDelta d;
      d.name = cand.name;
      d.cand_median = cand.median;
      d.verdict = BenchDelta::Verdict::kNew;
      result.deltas.push_back(d);
    }
  }
  return result;
}

namespace {

const char* verdict_name(BenchDelta::Verdict v) {
  switch (v) {
    case BenchDelta::Verdict::kOk: return "ok";
    case BenchDelta::Verdict::kImproved: return "improved";
    case BenchDelta::Verdict::kRegressed: return "REGRESSED";
    case BenchDelta::Verdict::kMissing: return "MISSING";
    case BenchDelta::Verdict::kNew: return "new";
  }
  return "?";
}

std::string fmt_pct(double frac) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(1);
  os << (frac >= 0 ? "+" : "") << 100.0 * frac << "%";
  return os.str();
}

}  // namespace

std::string render_comparison(const CompareResult& result) {
  Table t({"benchmark", "base median", "cand median", "delta", "gate", "verdict"});
  for (const BenchDelta& d : result.deltas) {
    std::string delta_s = "-";
    std::string gate_s = "-";
    if (d.verdict != BenchDelta::Verdict::kMissing &&
        d.verdict != BenchDelta::Verdict::kNew) {
      delta_s = d.base_median != 0.0 ? fmt_pct(d.delta / std::fabs(d.base_median))
                                     : fmt_sig(d.delta, 3);
      gate_s = d.base_median != 0.0
                   ? fmt_pct(d.threshold / std::fabs(d.base_median))
                   : fmt_sig(d.threshold, 3);
    }
    t.add_row({d.name, fmt_sig(d.base_median, 4), fmt_sig(d.cand_median, 4),
               delta_s, gate_s, verdict_name(d.verdict)});
  }
  std::ostringstream os;
  os << t.render();
  if (result.failed) {
    os << "FAIL:";
    for (const std::string& name : result.offenders()) os << ' ' << name;
    os << '\n';
  } else {
    os << "PASS: no confirmed regressions\n";
  }
  return os.str();
}

}  // namespace scalemd::perf
