#include "perf/suites.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "core/driver.hpp"
#include "core/parallel_sim.hpp"
#include "des/simulator.hpp"
#include "gen/presets.hpp"
#include "gen/water_box.hpp"
#include "seq/engine.hpp"
#include "serve/scheduler.hpp"

namespace scalemd::perf {

SuiteOptions default_suite_options() {
  SuiteOptions opts;
  opts.scale = bench_scale_from_env();
  return opts;
}

std::vector<std::string> suite_names() { return {"smoke", "paper"}; }

BenchReport run_suite(const std::string& name, const SuiteOptions& opts) {
  if (name == "smoke") return run_smoke_suite(opts);
  if (name == "paper") return run_paper_suite(opts);
  throw std::invalid_argument("unknown suite '" + name + "' (want smoke|paper)");
}

std::vector<int> clip_ladder(std::vector<int> pes, double scale) {
  if (scale >= 1.0) return pes;
  const std::size_t keep =
      std::max<std::size_t>(2, static_cast<std::size_t>(pes.size() * scale));
  pes.resize(std::min(keep, pes.size()));
  return pes;
}

void append_scaling_records(BenchReport& report, const std::string& prefix,
                            const std::vector<ScalingRow>& rows) {
  BenchRunner runner;
  for (const ScalingRow& r : rows) {
    runner
        .record_value(prefix + "/pes=" + std::to_string(r.pes),
                      "virtual_seconds_per_step", r.seconds_per_step)
        .param("pes", r.pes)
        .param("speedup", r.speedup)
        .param("gflops", r.gflops);
  }
  for (BenchRecord& r : runner.take_records()) {
    report.benchmarks.push_back(std::move(r));
  }
}

namespace {

/// One force evaluation per sample, per kernel variant, on a smoke-sized
/// water box. The variants share one Molecule so work counters line up.
void smoke_forces(BenchRunner& runner, const SuiteOptions& opts) {
  const double side = 30.0 * std::cbrt(std::min(opts.scale, 1.0));
  const Molecule mol = make_water_box({side, side, side}, /*seed=*/42);

  const struct {
    NonbondedKernel kernel;
    const char* name;
  } variants[] = {
      {NonbondedKernel::kScalar, "scalar"},
      {NonbondedKernel::kTiled, "tiled"},
      {NonbondedKernel::kTiledThreads, "tiled_threads"},
  };
  for (const auto& v : variants) {
    EngineOptions eng_opts;
    eng_opts.nonbonded.kernel = v.kernel;
    eng_opts.nonbonded.threads = opts.threads;
    SequentialEngine eng(mol, eng_opts);  // ctor primes forces once

    // Calibrate a batch size so each sample spans a few milliseconds of
    // work: a single microsecond-scale evaluation is dominated by scheduler
    // jitter, and the gate's MAD estimate needs honest samples.
    const auto t0 = std::chrono::steady_clock::now();
    eng.compute_forces();
    const double est =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const int iters = static_cast<int>(
        std::clamp(std::ceil(5e-3 / std::max(est, 1e-9)), 1.0, 128.0));

    runner
        .time_batch(std::string("forces/") + v.name, "seconds_per_eval", iters,
                    [&eng] { eng.compute_forces(); })
        .param("atoms", mol.atom_count())
        .param("batch", iters)
        .param("threads",
               v.kernel == NonbondedKernel::kTiledThreads ? opts.threads : 1)
        .label("kernel", v.name);
  }
}

/// DES substrate throughput: wall seconds to schedule-and-drain a fixed
/// batch of null tasks across 8 virtual PEs.
void smoke_des_events(BenchRunner& runner) {
  constexpr int kTasks = 20000;
  constexpr int kPes = 8;
  runner
      .time("runtime/des_events", "seconds_per_run",
            [] {
              Simulator sim(kPes, MachineModel::asci_red());
              for (int i = 0; i < kTasks; ++i) {
                sim.inject(i % kPes, {.fn = [](ExecContext& c) { c.charge(1e-6); }});
              }
              sim.run();
            })
      .param("tasks", kTasks)
      .param("pes", kPes);
}

/// The parallel runtime end to end on both backends: the DES machine's
/// virtual s/step (deterministic) and the threaded backend's measured
/// wall-clock s/step.
void smoke_runtime(BenchRunner& runner, const SuiteOptions& opts) {
  const double side = 30.0 * std::cbrt(std::min(opts.scale, 1.0));
  Molecule mol = make_water_box({side, side, side}, /*seed=*/42);
  mol.assign_velocities(300.0, /*seed=*/7);
  const Workload wl(mol, MachineModel::asci_red());
  constexpr int kPes = 2;
  constexpr int kSteps = 2;

  {
    ParallelOptions popts;
    popts.num_pes = 8;
    ParallelSim sim(wl, popts);
    runner
        .record_value("runtime/sim_step", "virtual_seconds_per_step",
                      sim.run_benchmark(2, 3))
        .param("pes", 8)
        .param("atoms", mol.atom_count());
  }

  {
    ParallelOptions popts;
    popts.num_pes = kPes;
    popts.numeric = true;
    popts.dt_fs = 1.0;
    popts.backend = BackendKind::kThreaded;
    popts.threads = opts.threads;
    ParallelSim sim(wl, popts);
    // LB warm-up as the paper runs it, then repeated timed cycles: each
    // rep's sample is the wall-clock window of one cycle over its steps.
    sim.run_cycle(2);
    sim.load_balance(/*refine_only=*/false);
    sim.run_cycle(2);
    sim.load_balance(/*refine_only=*/true);
    std::vector<double> samples;
    const int reps = std::max(1, runner.options().reps);
    for (int r = 0; r < reps; ++r) {
      const double t0 = sim.backend().time();
      sim.run_cycle(kSteps);
      samples.push_back((sim.backend().time() - t0) / kSteps);
    }
    runner
        .record_samples("runtime/threads_step", "seconds_per_step",
                        std::move(samples))
        .param("pes", kPes)
        .param("threads", opts.threads)
        .param("steps", kSteps)
        .param("atoms", mol.atom_count());
  }
}

/// The serve layer end to end: a fixed 4-job dt sweep (shared topology, so
/// the artifact cache is hot after the first job) scheduled on 2 workers
/// with forced preemption every slice. One sample = one whole batch run, so
/// the gated metric is time-valued; the throughput figures ride along as
/// params and the (deterministic) cache hit rate as its own record.
void smoke_serve(BenchRunner& runner) {
  BatchSpec batch;
  for (int j = 0; j < 4; ++j) {
    JobSpec job;
    job.name = "sweep" + std::to_string(j);
    job.priority = j % 2;
    job.scenario.seed = 42;  // one topology across the whole sweep
    job.scenario.box = 10.0;
    job.scenario.num_pes = 2;
    job.scenario.dt_fs = 0.5 + 0.5 * (j % 2);  // the swept axis
    job.scenario.cycles = 2;
    job.scenario.steps = 2;
    batch.jobs.push_back(job);
  }

  double jobs_per_hour = 0.0, steps_per_sec = 0.0, hit_rate = 0.0;
  runner
      .time("serve/batch", "seconds_per_batch",
            [&] {
              ServeOptions sopts;
              sopts.workers = 2;
              sopts.preempt_every = 1;
              WallTickSource wall;
              sopts.ticks = &wall;
              BatchScheduler sched(sopts);
              sched.submit_batch(batch);
              const ServeReport rep = sched.run();
              const double secs =
                  rep.wall_seconds > 0.0 ? rep.wall_seconds : 1e-9;
              jobs_per_hour = 3600.0 * static_cast<double>(rep.results.size()) / secs;
              steps_per_sec = static_cast<double>(rep.total_steps) / secs;
              const std::uint64_t lookups = rep.cache_hits + rep.cache_misses;
              hit_rate = lookups > 0
                             ? static_cast<double>(rep.cache_hits) / lookups
                             : 0.0;
            })
      .param("jobs", 4)
      .param("workers", 2)
      .param("jobs_per_hour", jobs_per_hour)
      .param("steps_per_sec", steps_per_sec);
  runner.record_value("serve/cache_hit_rate", "ratio", hit_rate);
}

}  // namespace

BenchReport run_smoke_suite(const SuiteOptions& opts) {
  BenchReport report = make_report("smoke");
  BenchRunner runner({.reps = opts.reps, .warmup = opts.warmup});
  smoke_forces(runner, opts);
  smoke_des_events(runner);
  smoke_runtime(runner, opts);
  smoke_serve(runner);
  report.benchmarks = runner.take_records();
  return report;
}

BenchReport run_paper_suite(const SuiteOptions& opts) {
  BenchReport report = make_report("paper");

  {
    const Molecule mol = apoa1_like();
    const Workload wl(mol, MachineModel::asci_red());
    BenchmarkConfig cfg;
    cfg.machine = MachineModel::asci_red();
    cfg.pe_counts = clip_ladder(asci_ladder(1, 2048), opts.scale);
    append_scaling_records(report, "table2", run_scaling(wl, cfg));
  }
  {
    const Molecule mol = bc1_like();
    const Workload wl(mol, MachineModel::asci_red());
    BenchmarkConfig cfg;
    cfg.machine = MachineModel::asci_red();
    cfg.pe_counts = clip_ladder(asci_ladder(2, 2048), opts.scale);
    cfg.speedup_base = 2.0;
    append_scaling_records(report, "table3", run_scaling(wl, cfg));
  }
  return report;
}

}  // namespace scalemd::perf
