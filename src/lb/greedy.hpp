#pragma once

#include "lb/problem.hpp"

namespace scalemd {

/// The paper's centralized greedy strategy (section 3.2): objects are
/// assigned largest-first; for each, the destination must not be overloaded
/// beyond `overload` times the average, should already hold as many of the
/// object's patches as possible (home or previously created proxy), should
/// create as few new proxies as possible, and among equals the least-loaded
/// processor wins. Proxies created by earlier assignments are recorded so
/// later objects can reuse them.
LbAssignment greedy_comm_map(const LbProblem& p, double overload = 1.10);

/// Ablation variant: same greedy order and overload rule but completely
/// communication-blind — destination is simply the least-loaded processor.
/// Used by bench_ablation_loadbalance to show why proxy-awareness matters.
LbAssignment greedy_nocomm_map(const LbProblem& p);

}  // namespace scalemd
