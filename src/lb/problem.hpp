#pragma once

#include <array>
#include <vector>

namespace scalemd {

/// One migratable object as the load-balancing strategies see it: a measured
/// load, its current processor and the (at most two) patches whose data it
/// consumes. Non-migratable work appears in LbProblem::background instead.
struct LbObject {
  double load = 0.0;
  int current_pe = 0;
  int patch_a = -1;  ///< first patch dependency (-1 = none)
  int patch_b = -1;  ///< second patch dependency (-1 = none)

  int patch_count() const { return (patch_a >= 0 ? 1 : 0) + (patch_b >= 0 ? 1 : 0); }
};

/// Input to a load-balancing strategy (the "object communication graph" of
/// the paper, reduced to the patch-dependency form NAMD's strategy uses).
struct LbProblem {
  int num_pes = 1;
  std::vector<LbObject> objects;
  std::vector<double> background;  ///< per-PE non-migratable load
  std::vector<int> patch_home;     ///< patch id -> home PE
};

/// A strategy's output: the new processor of every object.
using LbAssignment = std::vector<int>;

/// Per-PE total load implied by an assignment (background + object loads).
std::vector<double> pe_loads(const LbProblem& p, const LbAssignment& map);

/// Number of (patch, pe) proxy pairs implied by an assignment: a patch needs
/// a proxy on every non-home PE hosting an object that reads it.
int count_proxies(const LbProblem& p, const LbAssignment& map);

}  // namespace scalemd
