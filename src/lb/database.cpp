#include "lb/database.hpp"

namespace scalemd {

LoadDatabase::LoadDatabase(std::size_t num_objects, int num_pes)
    : object_loads_(num_objects, 0.0),
      background_(static_cast<std::size_t>(num_pes), 0.0) {}

void LoadDatabase::on_task(const TaskRecord& r) {
  if (r.object != 0 && r.object <= object_loads_.size()) {
    object_loads_[static_cast<std::size_t>(r.object - 1)] += r.duration;
  } else {
    background_[static_cast<std::size_t>(r.pe)] += r.duration;
  }
}

void LoadDatabase::reset() {
  std::fill(object_loads_.begin(), object_loads_.end(), 0.0);
  std::fill(background_.begin(), background_.end(), 0.0);
}

}  // namespace scalemd
