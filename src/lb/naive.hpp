#pragma once

#include <cstdint>

#include "lb/problem.hpp"

namespace scalemd {

/// Ablation strategy: uniform-random placement of every object. A floor for
/// what any real strategy must beat.
LbAssignment random_map(const LbProblem& p, std::uint64_t seed = 1);

/// Ablation strategy: keep every object where it is (the static initial
/// placement). Models running with load balancing disabled.
LbAssignment identity_map(const LbProblem& p);

}  // namespace scalemd
