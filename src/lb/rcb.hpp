#pragma once

#include <span>
#include <vector>

#include "util/vec3.hpp"

namespace scalemd {

/// Initial patch placement by recursive coordinate bisection: splits the
/// processor range and the patch set (weighted by atom count) along the
/// longest spatial axis so each processor receives a compact group of
/// neighboring patches. "When there are more processors than patches, this
/// method reduces to a simple round-robin distribution" (paper section 3.2):
/// patch i goes to processor floor(i * P / n), leaving the rest idle until
/// compute objects are balanced onto them.
std::vector<int> rcb_patch_map(std::span<const Vec3> centers,
                               std::span<const double> weights, int num_pes);

}  // namespace scalemd
