#include "lb/rcb.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace scalemd {

namespace {

struct Item {
  Vec3 center;
  double weight;
  int id;
};

double axis_coord(const Vec3& v, int axis) {
  return axis == 0 ? v.x : axis == 1 ? v.y : v.z;
}

void bisect(std::vector<Item>& items, std::size_t lo, std::size_t hi, int pe_lo,
            int pe_count, std::vector<int>& out) {
  if (pe_count == 1 || hi - lo <= 1) {
    for (std::size_t i = lo; i < hi; ++i) out[static_cast<std::size_t>(items[i].id)] = pe_lo;
    return;
  }
  // Longest axis of the item bounding box.
  Vec3 min = items[lo].center;
  Vec3 max = items[lo].center;
  for (std::size_t i = lo; i < hi; ++i) {
    const Vec3& c = items[i].center;
    min = {std::min(min.x, c.x), std::min(min.y, c.y), std::min(min.z, c.z)};
    max = {std::max(max.x, c.x), std::max(max.y, c.y), std::max(max.z, c.z)};
  }
  const Vec3 ext = max - min;
  const int axis = ext.x >= ext.y && ext.x >= ext.z ? 0 : ext.y >= ext.z ? 1 : 2;

  std::sort(items.begin() + static_cast<std::ptrdiff_t>(lo),
            items.begin() + static_cast<std::ptrdiff_t>(hi),
            [axis](const Item& a, const Item& b) {
              return axis_coord(a.center, axis) < axis_coord(b.center, axis);
            });

  // Split weight in proportion to the processor split.
  const int pe_left = pe_count / 2;
  double total = 0.0;
  for (std::size_t i = lo; i < hi; ++i) total += items[i].weight;
  const double want_left = total * pe_left / pe_count;

  double acc = 0.0;
  std::size_t cut = lo + 1;  // both sides non-empty
  for (std::size_t i = lo; i + 1 < hi; ++i) {
    acc += items[i].weight;
    if (acc >= want_left) {
      cut = i + 1;
      break;
    }
    cut = i + 2;
  }
  cut = std::min(cut, hi - 1);

  bisect(items, lo, cut, pe_lo, pe_left, out);
  bisect(items, cut, hi, pe_lo + pe_left, pe_count - pe_left, out);
}

}  // namespace

std::vector<int> rcb_patch_map(std::span<const Vec3> centers,
                               std::span<const double> weights, int num_pes) {
  assert(centers.size() == weights.size());
  const std::size_t n = centers.size();
  std::vector<int> out(n, 0);
  if (n == 0 || num_pes <= 1) return out;

  if (static_cast<std::size_t>(num_pes) >= n) {
    // Spread the patches evenly over the machine.
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = static_cast<int>(i * static_cast<std::size_t>(num_pes) / n);
    }
    return out;
  }

  std::vector<Item> items;
  items.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    items.push_back({centers[i], weights[i], static_cast<int>(i)});
  }
  bisect(items, 0, n, 0, num_pes, out);
  return out;
}

}  // namespace scalemd
