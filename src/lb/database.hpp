#pragma once

#include <cstdint>
#include <vector>

#include "des/trace_sink.hpp"

namespace scalemd {

/// The measurement half of the Charm++ load-balancing framework: a TraceSink
/// that "automatically instruments all objects, collects their timing data
/// at runtime (in a database)". Task records whose object field is nonzero
/// accumulate into that object's load (convention: object = id + 1);
/// everything else — integration, proxies, non-migratable computes, runtime
/// work — is recorded as per-PE background load, exactly as the paper
/// describes.
class LoadDatabase final : public TraceSink {
 public:
  LoadDatabase(std::size_t num_objects, int num_pes);

  void on_task(const TaskRecord& r) override;

  /// Clears the measurement window.
  void reset();

  const std::vector<double>& object_loads() const { return object_loads_; }
  const std::vector<double>& background() const { return background_; }

  double object_load(std::uint32_t id) const { return object_loads_[id]; }

 private:
  std::vector<double> object_loads_;
  std::vector<double> background_;
};

}  // namespace scalemd
