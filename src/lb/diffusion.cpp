#include "lb/diffusion.hpp"

#include "lb/naive.hpp"

#include <algorithm>
#include <vector>

namespace scalemd {

namespace {

/// Ring neighbors plus hypercube partners: a small, well-connected
/// neighborhood so load can traverse the machine in O(log P) sweeps.
std::vector<int> neighbors_of(int pe, int npes) {
  std::vector<int> out;
  if (npes <= 1) return out;
  out.push_back((pe + 1) % npes);
  out.push_back((pe + npes - 1) % npes);
  for (int bit = 1; bit < npes; bit <<= 1) {
    const int partner = pe ^ bit;
    if (partner < npes && partner != pe) out.push_back(partner);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

LbAssignment diffusion_map(const LbProblem& p, int sweeps) {
  const std::size_t npes = static_cast<std::size_t>(p.num_pes);
  LbAssignment map = identity_map(p);
  if (npes <= 1) return map;

  std::vector<double> load = pe_loads(p, map);
  // Objects on each PE, maintained across sweeps.
  std::vector<std::vector<std::size_t>> objects(npes);
  for (std::size_t i = 0; i < p.objects.size(); ++i) {
    objects[static_cast<std::size_t>(map[i])].push_back(i);
  }
  // Patch presence for proxy-aware tie-breaking.
  std::vector<std::vector<char>> present(p.patch_home.size(),
                                         std::vector<char>(npes, 0));
  for (std::size_t patch = 0; patch < p.patch_home.size(); ++patch) {
    present[patch][static_cast<std::size_t>(p.patch_home[patch])] = 1;
  }
  for (std::size_t i = 0; i < p.objects.size(); ++i) {
    const auto pe = static_cast<std::size_t>(map[i]);
    if (p.objects[i].patch_a >= 0)
      present[static_cast<std::size_t>(p.objects[i].patch_a)][pe] = 1;
    if (p.objects[i].patch_b >= 0)
      present[static_cast<std::size_t>(p.objects[i].patch_b)][pe] = 1;
  }

  std::vector<std::vector<int>> hood(npes);
  for (std::size_t pe = 0; pe < npes; ++pe) {
    hood[pe] = neighbors_of(static_cast<int>(pe), p.num_pes);
  }

  for (int sweep = 0; sweep < sweeps; ++sweep) {
    bool moved = false;
    for (std::size_t pe = 0; pe < npes; ++pe) {
      // Push to the least-loaded neighbor while the gap is significant.
      for (;;) {
        int target = -1;
        double target_load = load[pe];
        for (int nb : hood[pe]) {
          if (load[static_cast<std::size_t>(nb)] < target_load) {
            target_load = load[static_cast<std::size_t>(nb)];
            target = nb;
          }
        }
        if (target < 0) break;
        const double gap = load[pe] - target_load;
        // Pick the best object to move: fits in half the gap (so the move
        // helps), largest first, preferring patches already on the target.
        std::size_t best = SIZE_MAX;
        double best_key = -1.0;
        for (std::size_t idx : objects[pe]) {
          const double l = p.objects[idx].load;
          if (l > 0.5 * gap || l <= 0.0) continue;
          int here = 0;
          if (p.objects[idx].patch_a >= 0)
            here += present[static_cast<std::size_t>(p.objects[idx].patch_a)]
                           [static_cast<std::size_t>(target)];
          if (p.objects[idx].patch_b >= 0)
            here += present[static_cast<std::size_t>(p.objects[idx].patch_b)]
                           [static_cast<std::size_t>(target)];
          const double key = l * (1.0 + here);
          if (key > best_key) {
            best_key = key;
            best = idx;
          }
        }
        if (best == SIZE_MAX) break;

        // Move it.
        auto& bag = objects[pe];
        bag.erase(std::find(bag.begin(), bag.end(), best));
        objects[static_cast<std::size_t>(target)].push_back(best);
        map[best] = target;
        load[pe] -= p.objects[best].load;
        load[static_cast<std::size_t>(target)] += p.objects[best].load;
        if (p.objects[best].patch_a >= 0)
          present[static_cast<std::size_t>(p.objects[best].patch_a)]
                 [static_cast<std::size_t>(target)] = 1;
        if (p.objects[best].patch_b >= 0)
          present[static_cast<std::size_t>(p.objects[best].patch_b)]
                 [static_cast<std::size_t>(target)] = 1;
        moved = true;
      }
    }
    if (!moved) break;
  }
  return map;
}

}  // namespace scalemd
