#include "lb/evacuate.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "lb/refine.hpp"

namespace scalemd {

LbAssignment evacuate_map(const LbProblem& problem, const LbAssignment& start,
                          const std::vector<int>& dead_pes, double overload) {
  const std::size_t npes = static_cast<std::size_t>(problem.num_pes);
  std::vector<char> dead(npes, 0);
  for (int pe : dead_pes) {
    if (pe >= 0 && static_cast<std::size_t>(pe) < npes) {
      dead[static_cast<std::size_t>(pe)] = 1;
    }
  }

  // Renumber the survivors so the refine machinery sees a dense PE range.
  std::vector<int> live;                      // live index -> real pe
  std::vector<int> live_of(npes, -1);         // real pe -> live index
  for (std::size_t pe = 0; pe < npes; ++pe) {
    if (!dead[pe]) {
      live_of[pe] = static_cast<int>(live.size());
      live.push_back(static_cast<int>(pe));
    }
  }
  assert(!live.empty());

  // Total load and live-PE loads under `start`, counting evacuees as
  // homeless (they contribute to the average the survivors must absorb).
  std::vector<double> load(live.size(), 0.0);
  double total = 0.0;
  for (std::size_t pe = 0; pe < npes; ++pe) {
    const double bg =
        pe < problem.background.size() ? problem.background[pe] : 0.0;
    if (!dead[pe]) load[static_cast<std::size_t>(live_of[pe])] += bg;
    if (!dead[pe]) total += bg;
  }
  for (std::size_t i = 0; i < problem.objects.size(); ++i) {
    total += problem.objects[i].load;
    const int pe = start[i];
    if (!dead[static_cast<std::size_t>(pe)]) {
      load[static_cast<std::size_t>(live_of[static_cast<std::size_t>(pe)])] +=
          problem.objects[i].load;
    }
  }
  const double limit = overload * total / static_cast<double>(live.size());

  // Patch presence on live PEs: homes plus proxies implied by survivors.
  std::vector<std::vector<char>> present(
      problem.patch_home.size(), std::vector<char>(live.size(), 0));
  for (std::size_t patch = 0; patch < problem.patch_home.size(); ++patch) {
    const int home = problem.patch_home[patch];
    assert(!dead[static_cast<std::size_t>(home)]);
    present[patch][static_cast<std::size_t>(live_of[static_cast<std::size_t>(
        home)])] = 1;
  }
  LbAssignment map = start;
  std::vector<std::size_t> evacuees;
  for (std::size_t i = 0; i < problem.objects.size(); ++i) {
    const LbObject& o = problem.objects[i];
    if (dead[static_cast<std::size_t>(start[i])]) {
      evacuees.push_back(i);
      continue;
    }
    const std::size_t pe =
        static_cast<std::size_t>(live_of[static_cast<std::size_t>(start[i])]);
    if (o.patch_a >= 0) present[static_cast<std::size_t>(o.patch_a)][pe] = 1;
    if (o.patch_b >= 0) present[static_cast<std::size_t>(o.patch_b)][pe] = 1;
  }

  // Greedy largest-first placement of the evacuees (the paper's rule:
  // patches-present beats load when anything fits under the limit).
  std::stable_sort(evacuees.begin(), evacuees.end(),
                   [&](std::size_t a, std::size_t b) {
                     return problem.objects[a].load > problem.objects[b].load;
                   });
  for (std::size_t idx : evacuees) {
    const LbObject& o = problem.objects[idx];
    bool any_fits = false;
    for (std::size_t pe = 0; pe < live.size() && !any_fits; ++pe) {
      any_fits = load[pe] + o.load <= limit;
    }
    int best = -1;
    int best_present = -1;
    double best_load = 0.0;
    for (std::size_t pe = 0; pe < live.size(); ++pe) {
      if (any_fits && load[pe] + o.load > limit) continue;
      int here = 0;
      if (o.patch_a >= 0) here += present[static_cast<std::size_t>(o.patch_a)][pe];
      if (o.patch_b >= 0) here += present[static_cast<std::size_t>(o.patch_b)][pe];
      bool better;
      if (any_fits) {
        better = here > best_present ||
                 (here == best_present && load[pe] < best_load);
      } else {
        better = load[pe] < best_load ||
                 (load[pe] == best_load && here > best_present);
      }
      if (best < 0 || better) {
        best = static_cast<int>(pe);
        best_present = here;
        best_load = load[pe];
      }
    }
    map[idx] = live[static_cast<std::size_t>(best)];
    load[static_cast<std::size_t>(best)] += o.load;
    if (o.patch_a >= 0) {
      present[static_cast<std::size_t>(o.patch_a)][static_cast<std::size_t>(
          best)] = 1;
    }
    if (o.patch_b >= 0) {
      present[static_cast<std::size_t>(o.patch_b)][static_cast<std::size_t>(
          best)] = 1;
    }
  }

  // Refinement over the survivors only: build the renumbered sub-problem,
  // refine from the evacuated assignment, map PE ids back.
  LbProblem sub;
  sub.num_pes = static_cast<int>(live.size());
  sub.objects = problem.objects;
  sub.background.assign(live.size(), 0.0);
  for (std::size_t pe = 0; pe < npes && pe < problem.background.size(); ++pe) {
    if (!dead[pe]) {
      sub.background[static_cast<std::size_t>(live_of[pe])] =
          problem.background[pe];
    }
  }
  sub.patch_home.resize(problem.patch_home.size());
  for (std::size_t patch = 0; patch < problem.patch_home.size(); ++patch) {
    sub.patch_home[patch] =
        live_of[static_cast<std::size_t>(problem.patch_home[patch])];
  }
  LbAssignment sub_start(map.size());
  for (std::size_t i = 0; i < map.size(); ++i) {
    sub_start[i] = live_of[static_cast<std::size_t>(map[i])];
    sub.objects[i].current_pe = sub_start[i];
  }
  LbAssignment refined = refine_map(sub, std::move(sub_start), overload);
  for (std::size_t i = 0; i < refined.size(); ++i) {
    map[i] = live[static_cast<std::size_t>(refined[i])];
  }
  return map;
}

}  // namespace scalemd
