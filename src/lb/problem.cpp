#include "lb/problem.hpp"

#include <set>

namespace scalemd {

std::vector<double> pe_loads(const LbProblem& p, const LbAssignment& map) {
  std::vector<double> loads = p.background;
  loads.resize(static_cast<std::size_t>(p.num_pes), 0.0);
  for (std::size_t i = 0; i < p.objects.size(); ++i) {
    loads[static_cast<std::size_t>(map[i])] += p.objects[i].load;
  }
  return loads;
}

int count_proxies(const LbProblem& p, const LbAssignment& map) {
  std::set<std::pair<int, int>> proxies;  // (patch, pe)
  auto need = [&](int patch, int pe) {
    if (patch < 0) return;
    if (p.patch_home[static_cast<std::size_t>(patch)] == pe) return;
    proxies.insert({patch, pe});
  };
  for (std::size_t i = 0; i < p.objects.size(); ++i) {
    need(p.objects[i].patch_a, map[i]);
    need(p.objects[i].patch_b, map[i]);
  }
  return static_cast<int>(proxies.size());
}

}  // namespace scalemd
