#pragma once

#include "lb/problem.hpp"

namespace scalemd {

/// The paper's refinement pass: starting from `start`, repeatedly take
/// objects off processors loaded above `overload` times the average and move
/// them to underloaded processors, preferring destinations that already hold
/// the object's patches (tolerating new proxies when needed). Used both
/// immediately after the greedy pass (with a smaller threshold) and alone in
/// later load-balancing cycles, exactly as section 3.2 describes.
LbAssignment refine_map(const LbProblem& p, LbAssignment start,
                        double overload = 1.03, int max_moves = 1 << 20);

/// Number of positions where two assignments differ (object migrations a
/// transition would require).
int migration_count(const LbAssignment& from, const LbAssignment& to);

}  // namespace scalemd
