#pragma once

#include <vector>

#include "lb/problem.hpp"

namespace scalemd {

/// Graceful-degradation remapping after processor loss: every object that
/// `start` places on a PE in `dead_pes` is re-placed onto a surviving PE
/// using the paper's greedy rule (prefer PEs that already hold the object's
/// patches, then the lightest), and the result is polished with refine_map
/// restricted to the survivors. Objects already on live PEs may move too
/// (the refinement pass), so the returned map is a full assignment.
///
/// `problem.patch_home` must already name live PEs only (the runtime
/// re-homes orphaned patches before evacuating their computes); the strategy
/// never assigns anything to a dead PE.
LbAssignment evacuate_map(const LbProblem& problem, const LbAssignment& start,
                          const std::vector<int>& dead_pes,
                          double overload = 1.05);

}  // namespace scalemd
