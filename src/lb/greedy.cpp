#include "lb/greedy.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace scalemd {

namespace {

double average_load(const LbProblem& p) {
  double total = std::accumulate(p.background.begin(), p.background.end(), 0.0);
  for (const LbObject& o : p.objects) total += o.load;
  return total / p.num_pes;
}

/// Objects sorted by decreasing load ("select the biggest compute object").
std::vector<std::size_t> by_decreasing_load(const LbProblem& p) {
  std::vector<std::size_t> order(p.objects.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return p.objects[a].load > p.objects[b].load;
  });
  return order;
}

}  // namespace

LbAssignment greedy_comm_map(const LbProblem& p, double overload) {
  const std::size_t npes = static_cast<std::size_t>(p.num_pes);
  std::vector<double> load = p.background;
  load.resize(npes, 0.0);
  const double avg = average_load(p);
  const double limit = overload * avg;

  // present[patch][pe]: patch data already on pe (home patch or a proxy
  // created by an earlier assignment in this pass).
  std::vector<std::vector<char>> present(p.patch_home.size(),
                                         std::vector<char>(npes, 0));
  for (std::size_t patch = 0; patch < p.patch_home.size(); ++patch) {
    present[patch][static_cast<std::size_t>(p.patch_home[patch])] = 1;
  }

  LbAssignment map(p.objects.size(), 0);
  for (std::size_t idx : by_decreasing_load(p)) {
    const LbObject& o = p.objects[idx];
    // Does any processor accept this object under the overload limit? When
    // none does (an object bigger than the average PE load, common when
    // P >> objects-per-PE), communication awareness must yield to balance:
    // fall back to least-loaded-first or the big objects pile up on the few
    // home PEs.
    bool any_fits = false;
    for (std::size_t pe = 0; pe < npes && !any_fits; ++pe) {
      any_fits = load[pe] + o.load <= limit;
    }
    int best_pe = -1;
    int best_present = -1;
    double best_load = 0.0;
    for (std::size_t pe = 0; pe < npes; ++pe) {
      if (any_fits && load[pe] + o.load > limit) continue;
      int here = 0;
      if (o.patch_a >= 0) here += present[static_cast<std::size_t>(o.patch_a)][pe];
      if (o.patch_b >= 0) here += present[static_cast<std::size_t>(o.patch_b)][pe];
      bool better;
      if (any_fits) {
        // More patches present (fewer new proxies) first, then lighter load.
        better = here > best_present ||
                 (here == best_present && load[pe] < best_load);
      } else {
        // Balance first, proxies as tie-break.
        better = load[pe] < best_load ||
                 (load[pe] == best_load && here > best_present);
      }
      if (best_pe < 0 || better) {
        best_pe = static_cast<int>(pe);
        best_present = here;
        best_load = load[pe];
      }
    }
    map[idx] = best_pe;
    load[static_cast<std::size_t>(best_pe)] += o.load;
    if (o.patch_a >= 0)
      present[static_cast<std::size_t>(o.patch_a)][static_cast<std::size_t>(best_pe)] = 1;
    if (o.patch_b >= 0)
      present[static_cast<std::size_t>(o.patch_b)][static_cast<std::size_t>(best_pe)] = 1;
  }
  return map;
}

LbAssignment greedy_nocomm_map(const LbProblem& p) {
  const std::size_t npes = static_cast<std::size_t>(p.num_pes);
  std::vector<double> load = p.background;
  load.resize(npes, 0.0);
  LbAssignment map(p.objects.size(), 0);
  for (std::size_t idx : by_decreasing_load(p)) {
    const std::size_t pe = static_cast<std::size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    map[idx] = static_cast<int>(pe);
    load[pe] += p.objects[idx].load;
  }
  return map;
}

}  // namespace scalemd
