#pragma once

#include "lb/problem.hpp"

namespace scalemd {

/// A *distributed* strategy in the paper's taxonomy (section 2.2: "a
/// distributed strategy does not collect all information in one place;
/// instead it may choose to communicate with neighboring processors, to
/// exchange information and then to exchange objects"). This is a classic
/// load-diffusion scheme over a ring+hypercube neighborhood, emulated
/// centrally: in each sweep every overloaded PE pushes objects to its
/// least-loaded neighbor until level, preferring objects whose patches are
/// already present there. Converges to a local (not global) balance, which
/// is the trade-off versus the centralized greedy.
LbAssignment diffusion_map(const LbProblem& p, int sweeps = 16);

}  // namespace scalemd
