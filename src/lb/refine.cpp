#include "lb/refine.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <vector>

namespace scalemd {

LbAssignment refine_map(const LbProblem& p, LbAssignment start, double overload,
                        int max_moves) {
  const std::size_t npes = static_cast<std::size_t>(p.num_pes);
  std::vector<double> load = pe_loads(p, start);
  const double avg =
      std::accumulate(load.begin(), load.end(), 0.0) / static_cast<double>(npes);
  const double limit = overload * avg;

  // Patch presence under the current assignment (homes + implied proxies).
  std::vector<std::vector<char>> present(p.patch_home.size(),
                                         std::vector<char>(npes, 0));
  for (std::size_t patch = 0; patch < p.patch_home.size(); ++patch) {
    present[patch][static_cast<std::size_t>(p.patch_home[patch])] = 1;
  }
  for (std::size_t i = 0; i < p.objects.size(); ++i) {
    const LbObject& o = p.objects[i];
    const auto pe = static_cast<std::size_t>(start[i]);
    if (o.patch_a >= 0) present[static_cast<std::size_t>(o.patch_a)][pe] = 1;
    if (o.patch_b >= 0) present[static_cast<std::size_t>(o.patch_b)][pe] = 1;
  }

  // Objects per PE, heaviest first, rebuilt lazily per overloaded PE visit.
  auto objects_on = [&](int pe) {
    std::vector<std::size_t> ids;
    for (std::size_t i = 0; i < p.objects.size(); ++i) {
      if (start[i] == pe) ids.push_back(i);
    }
    std::sort(ids.begin(), ids.end(), [&](std::size_t a, std::size_t b) {
      return p.objects[a].load > p.objects[b].load;
    });
    return ids;
  };

  int moves = 0;
  bool progress = true;
  while (progress && moves < max_moves) {
    progress = false;
    // Most-overloaded PE first.
    const std::size_t src = static_cast<std::size_t>(
        std::max_element(load.begin(), load.end()) - load.begin());
    if (load[src] <= limit) break;

    for (std::size_t idx : objects_on(static_cast<int>(src))) {
      const LbObject& o = p.objects[idx];
      // Choose an underloaded destination: prefer patches-present, then
      // least loaded. Moving must help (destination stays under the limit).
      int best_pe = -1;
      int best_present = -1;
      double best_load = 0.0;
      for (std::size_t pe = 0; pe < npes; ++pe) {
        if (pe == src) continue;
        // Accept a destination under the limit, or — when the object is too
        // big for any PE to stay under it — any move that still shrinks the
        // makespan contribution of this processor.
        if (load[pe] + o.load > limit && load[pe] + o.load >= load[src] - 1e-12) {
          continue;
        }
        int here = 0;
        if (o.patch_a >= 0) here += present[static_cast<std::size_t>(o.patch_a)][pe];
        if (o.patch_b >= 0) here += present[static_cast<std::size_t>(o.patch_b)][pe];
        const bool better =
            here > best_present || (here == best_present && load[pe] < best_load);
        if (best_pe < 0 || better) {
          best_pe = static_cast<int>(pe);
          best_present = here;
          best_load = load[pe];
        }
      }
      if (best_pe < 0) continue;
      start[idx] = best_pe;
      load[src] -= o.load;
      load[static_cast<std::size_t>(best_pe)] += o.load;
      if (o.patch_a >= 0)
        present[static_cast<std::size_t>(o.patch_a)][static_cast<std::size_t>(best_pe)] = 1;
      if (o.patch_b >= 0)
        present[static_cast<std::size_t>(o.patch_b)][static_cast<std::size_t>(best_pe)] = 1;
      ++moves;
      progress = true;
      if (moves >= max_moves || load[src] <= limit) break;
    }
  }
  return start;
}

int migration_count(const LbAssignment& from, const LbAssignment& to) {
  int count = 0;
  for (std::size_t i = 0; i < from.size() && i < to.size(); ++i) {
    count += from[i] != to[i];
  }
  return count;
}

}  // namespace scalemd
