#include "lb/naive.hpp"

#include "util/random.hpp"

namespace scalemd {

LbAssignment random_map(const LbProblem& p, std::uint64_t seed) {
  Rng rng(seed);
  LbAssignment map(p.objects.size());
  for (auto& pe : map) {
    pe = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(p.num_pes)));
  }
  return map;
}

LbAssignment identity_map(const LbProblem& p) {
  LbAssignment map(p.objects.size());
  for (std::size_t i = 0; i < p.objects.size(); ++i) map[i] = p.objects[i].current_pe;
  return map;
}

}  // namespace scalemd
