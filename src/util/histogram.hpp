#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace scalemd {

/// Fixed-width binned histogram over [lo, hi). Samples outside the range are
/// clamped into the first/last bin so that nothing is silently dropped; the
/// number of clamped samples is reported separately. Used for the grain-size
/// distributions of Figures 1 and 2 and for load-distribution diagnostics.
class Histogram {
 public:
  /// Creates `bins` equal-width bins covering [lo, hi). Throws
  /// std::invalid_argument unless lo < hi (both finite) and bins >= 1.
  Histogram(double lo, double hi, std::size_t bins);

  /// Adds one sample.
  void add(double value);

  /// Adds one sample with an integer weight (e.g. "count of tasks").
  /// Non-finite values count toward total() and clamped() and land in an
  /// edge bin (first for NaN/-inf, last for +inf), but are excluded from
  /// mean_sample() and max_sample() so those stay finite.
  void add(double value, std::size_t weight);

  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_[bin]; }
  /// Inclusive lower edge of bin `i`.
  double bin_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
  double bin_width() const { return width_; }

  /// Total number of samples added.
  std::size_t total() const { return total_; }
  /// Samples that fell below `lo` or at/above `hi` and were clamped.
  std::size_t clamped() const { return clamped_; }
  /// Largest sample value seen (not clamped), or 0 if empty.
  double max_sample() const { return max_sample_; }
  /// Mean of the added samples, or 0 if empty.
  double mean_sample() const;

  /// Renders an ASCII bar chart, one line per bin, bars scaled to `width`
  /// characters. Empty leading/trailing bins are trimmed.
  std::string render(std::size_t width = 60) const;

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t clamped_ = 0;
  std::size_t nonfinite_ = 0;
  double max_sample_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace scalemd
