#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace scalemd {

Summary summarize(std::span<const double> values) {
  Summary s;
  if (values.empty()) return s;
  s.n = values.size();
  s.min = values.front();
  s.max = values.front();
  for (double v : values) {
    s.sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = s.sum / static_cast<double>(s.n);
  double var = 0.0;
  for (double v : values) var += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(s.n));
  return s;
}

double imbalance_ratio(std::span<const double> loads) {
  const Summary s = summarize(loads);
  if (s.n == 0 || s.mean <= 0.0) return 1.0;
  return s.max / s.mean;
}

}  // namespace scalemd
