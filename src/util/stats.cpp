#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace scalemd {

Summary summarize(std::span<const double> values) {
  Summary s;
  if (values.empty()) return s;
  s.n = values.size();
  s.min = values.front();
  s.max = values.front();
  for (double v : values) {
    s.sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = s.sum / static_cast<double>(s.n);
  double var = 0.0;
  for (double v : values) var += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(s.n));
  return s;
}

namespace {

/// Median of an already-sorted non-empty vector.
double sorted_median(const std::vector<double>& v) {
  const std::size_t n = v.size();
  const std::size_t mid = n / 2;
  if (n % 2 == 1) return v[mid];
  return 0.5 * (v[mid - 1] + v[mid]);
}

}  // namespace

double median(std::span<const double> values) {
  if (values.empty()) return 0.0;
  std::vector<double> v(values.begin(), values.end());
  std::sort(v.begin(), v.end());
  return sorted_median(v);
}

double mad(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = median(values);
  std::vector<double> dev;
  dev.reserve(values.size());
  for (double v : values) dev.push_back(std::fabs(v - m));
  std::sort(dev.begin(), dev.end());
  return sorted_median(dev);
}

double percentile(std::span<const double> values, double pct) {
  if (values.empty()) return 0.0;
  std::vector<double> v(values.begin(), values.end());
  std::sort(v.begin(), v.end());
  if (v.size() == 1) return v.front();
  pct = std::clamp(pct, 0.0, 100.0);
  const double rank = pct / 100.0 * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

RobustSummary robust_summarize(std::span<const double> values) {
  RobustSummary r;
  if (values.empty()) return r;
  std::vector<double> v(values.begin(), values.end());
  std::sort(v.begin(), v.end());
  r.n = v.size();
  r.min = v.front();
  r.max = v.back();
  r.median = sorted_median(v);
  if (r.n >= 2) {
    std::vector<double> dev;
    dev.reserve(v.size());
    for (double x : v) dev.push_back(std::fabs(x - r.median));
    std::sort(dev.begin(), dev.end());
    r.mad = sorted_median(dev);
  }
  return r;
}

double imbalance_ratio(std::span<const double> loads) {
  const Summary s = summarize(loads);
  if (s.n == 0 || s.mean <= 0.0) return 1.0;
  return s.max / s.mean;
}

}  // namespace scalemd
