#pragma once

#include <cstdint>

#include "util/vec3.hpp"

namespace scalemd {

/// Deterministic, seedable xoshiro256** PRNG. Used everywhere randomness is
/// needed (synthetic system generation, initial velocities, LB tie-breaking
/// in ablation strategies) so that every experiment in the repository is
/// reproducible from a seed.
class Rng {
 public:
  /// Seeds the four words of state from `seed` via SplitMix64 so that nearby
  /// seeds give uncorrelated streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal variate (Box-Muller; caches the second deviate).
  double normal();

  /// Normal variate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Uniformly distributed point inside the axis-aligned box [0,b.x)x...
  Vec3 point_in_box(const Vec3& b);

  /// Uniformly distributed unit vector (direction on the sphere).
  Vec3 unit_vector();

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace scalemd
