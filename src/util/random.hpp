#pragma once

#include <cstdint>
#include <string_view>

#include "util/vec3.hpp"

namespace scalemd {

/// Deterministic, seedable xoshiro256** PRNG. Used everywhere randomness is
/// needed (synthetic system generation, initial velocities, LB tie-breaking
/// in ablation strategies) so that every experiment in the repository is
/// reproducible from a seed.
///
/// Stream splitting: one root seed fans out into any number of uncorrelated
/// named substreams via derive()/split(), so a module draws all its
/// randomness from a single seed without ad-hoc `seed + k` offsets (which
/// collide: the system built from seed 2 must not share a stream with the
/// velocities drawn from seed 1 + 1). Derivation is pure SplitMix64 mixing
/// of (root, stream tag), stable across platforms and releases — the fuzzer
/// depends on it for byte-for-byte scenario replay.
class Rng {
 public:
  /// Seeds the four words of state from `seed` via SplitMix64 so that nearby
  /// seeds give uncorrelated streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Child seed for substream `stream` of `root`: SplitMix64-mixes both
  /// words, so derive(r, 0), derive(r, 1), ... and derive(r0, s) vs
  /// derive(r1, s) are all decorrelated. Pure function of its arguments.
  static std::uint64_t derive(std::uint64_t root, std::uint64_t stream);

  /// Named substream: hashes `tag` (FNV-1a) into a stream id first, so call
  /// sites read as derive(seed, "velocities") instead of magic indices.
  static std::uint64_t derive(std::uint64_t root, std::string_view tag);

  /// Independent child generator for substream `stream`, keyed off this
  /// generator's original seed — NOT its current position, so splitting is
  /// insensitive to how many draws happened before it.
  Rng split(std::uint64_t stream) const { return Rng(derive(seed_, stream)); }
  Rng split(std::string_view tag) const { return Rng(derive(seed_, tag)); }

  /// The seed this generator was constructed from.
  std::uint64_t seed() const { return seed_; }

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal variate (Box-Muller; caches the second deviate).
  double normal();

  /// Normal variate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Uniformly distributed point inside the axis-aligned box [0,b.x)x...
  Vec3 point_in_box(const Vec3& b);

  /// Uniformly distributed unit vector (direction on the sphere).
  Vec3 unit_vector();

  /// Full generator state, for checkpoint serialization: restoring it
  /// resumes the stream exactly (including a cached Box-Muller deviate).
  struct State {
    std::uint64_t s[4];
    std::uint64_t seed;
    bool has_cached_normal;
    double cached_normal;
  };
  State state() const {
    return State{{s_[0], s_[1], s_[2], s_[3]}, seed_, has_cached_normal_,
                 cached_normal_};
  }
  void set_state(const State& st) {
    for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
    seed_ = st.seed;
    has_cached_normal_ = st.has_cached_normal;
    cached_normal_ = st.cached_normal;
  }

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_ = 0;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace scalemd
