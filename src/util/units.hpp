#pragma once

namespace scalemd::units {

// ScaleMD uses the AKMA-style unit system common to CHARMM-family codes:
//   length  : angstrom (A)
//   energy  : kcal/mol
//   mass    : atomic mass unit (amu)
//   charge  : elementary charge (e)
//   time    : femtosecond (fs) at the API surface; internally the integrator
//             converts with kAkmaTimeFs (1 AKMA time unit = 48.88821 fs) so
//             that kinetic energy in kcal/mol is (1/2) m v^2 without factors.

/// Coulomb constant in kcal*A/(mol*e^2): energy = kCoulomb * q1*q2 / r.
inline constexpr double kCoulomb = 332.0636;

/// Boltzmann constant in kcal/(mol*K).
inline constexpr double kBoltzmann = 0.001987191;

/// One AKMA time unit expressed in femtoseconds.
inline constexpr double kAkmaTimeFs = 48.88821;

}  // namespace scalemd::units
