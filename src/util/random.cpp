#include "util/random.hpp"

#include <cmath>

namespace scalemd {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t s = seed;
  for (auto& w : s_) w = splitmix64(s);
}

std::uint64_t Rng::derive(std::uint64_t root, std::uint64_t stream) {
  // Mix the root through one SplitMix64 step, add the stream id, and mix
  // again: two full avalanche rounds, so adjacent roots and adjacent stream
  // ids both land on unrelated child seeds.
  std::uint64_t x = root;
  std::uint64_t mixed = splitmix64(x);
  x = mixed ^ (stream + 0x9e3779b97f4a7c15ull);
  return splitmix64(x);
}

std::uint64_t Rng::derive(std::uint64_t root, std::string_view tag) {
  // FNV-1a over the tag bytes -> stream id. The hash only has to separate
  // the handful of tags a module uses; derive()'s mixing does the rest.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : tag) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return derive(root, h);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  // Rejection-free for our purposes; bias is negligible for n << 2^64.
  return next_u64() % n;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

Vec3 Rng::point_in_box(const Vec3& b) {
  return {uniform() * b.x, uniform() * b.y, uniform() * b.z};
}

Vec3 Rng::unit_vector() {
  // Marsaglia rejection on the unit disc.
  for (;;) {
    const double a = uniform(-1.0, 1.0);
    const double b = uniform(-1.0, 1.0);
    const double s = a * a + b * b;
    if (s >= 1.0 || s == 0.0) continue;
    const double m = 2.0 * std::sqrt(1.0 - s);
    return {a * m, b * m, 1.0 - 2.0 * s};
  }
}

}  // namespace scalemd
