#pragma once

#include <string>
#include <vector>

namespace scalemd {

/// Right-aligned plain-text table printer used by the bench binaries to emit
/// rows in the same layout as the paper's tables. Cells are strings; numeric
/// formatting is the caller's choice (helpers below).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have the same number of cells as the header.
  void add_row(std::vector<std::string> row);

  /// Renders the table with a separator line under the header.
  std::string render() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `v` with `digits` significant digits, the style the paper uses
/// (e.g. 57.1, 0.0822, 3.9).
std::string fmt_sig(double v, int digits = 3);

/// Formats `v` with fixed `decimals` decimal places.
std::string fmt_fixed(double v, int decimals = 2);

}  // namespace scalemd
