#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace scalemd {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::render() const {
  std::vector<std::size_t> w(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) w[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c) w[c] = std::max(w[c], r[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << std::string(w[c] - r[c].size() + (c ? 2 : 0), ' ') << r[c];
    }
    os << '\n';
  };
  emit(header_);
  std::size_t line = 0;
  for (std::size_t c = 0; c < w.size(); ++c) line += w[c] + (c ? 2 : 0);
  os << std::string(line, '-') << '\n';
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::string fmt_sig(double v, int digits) {
  if (v == 0.0) return "0";
  std::ostringstream os;
  const int order = static_cast<int>(std::floor(std::log10(std::fabs(v))));
  const int decimals = std::max(0, digits - 1 - order);
  os.setf(std::ios::fixed);
  os.precision(decimals);
  os << v;
  return os.str();
}

std::string fmt_fixed(double v, int decimals) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(decimals);
  os << v;
  return os.str();
}

}  // namespace scalemd
