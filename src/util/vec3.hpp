#pragma once

#include <cmath>
#include <ostream>

namespace scalemd {

/// Minimal 3-component double vector used for positions, velocities and
/// forces throughout the library. All operations are constexpr-friendly and
/// inline; there is deliberately no SIMD cleverness here — the hot kernels in
/// ff/ operate on flat arrays and let the compiler vectorize.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  constexpr Vec3& operator*=(double s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }

  friend constexpr Vec3 operator+(Vec3 a, const Vec3& b) { return a += b; }
  friend constexpr Vec3 operator-(Vec3 a, const Vec3& b) { return a -= b; }
  friend constexpr Vec3 operator*(Vec3 a, double s) { return a *= s; }
  friend constexpr Vec3 operator*(double s, Vec3 a) { return a *= s; }
  friend constexpr Vec3 operator/(Vec3 a, double s) { return a *= (1.0 / s); }
  friend constexpr Vec3 operator-(const Vec3& a) { return {-a.x, -a.y, -a.z}; }

  friend constexpr bool operator==(const Vec3& a, const Vec3& b) {
    return a.x == b.x && a.y == b.y && a.z == b.z;
  }
};

/// Dot product.
constexpr double dot(const Vec3& a, const Vec3& b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

/// Cross product.
constexpr Vec3 cross(const Vec3& a, const Vec3& b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
}

/// Squared Euclidean norm (preferred in cutoff tests; avoids the sqrt).
constexpr double norm2(const Vec3& a) { return dot(a, a); }

/// Euclidean norm.
inline double norm(const Vec3& a) { return std::sqrt(norm2(a)); }

/// Unit vector in the direction of `a`; undefined for the zero vector.
inline Vec3 normalized(const Vec3& a) { return a / norm(a); }

/// Rotates `v` by `angle` radians around the unit vector `axis` (Rodrigues'
/// formula). `axis` must be normalized.
inline Vec3 rotate(const Vec3& v, const Vec3& axis, double angle) {
  const double c = std::cos(angle);
  const double s = std::sin(angle);
  return v * c + cross(axis, v) * s + axis * (dot(axis, v) * (1.0 - c));
}

inline std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
}

}  // namespace scalemd
