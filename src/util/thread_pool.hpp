#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace scalemd {

/// Fixed-size pool of worker threads for data-parallel force evaluation.
///
/// Work is distributed *statically*: run(n, fn) invokes fn(task, worker) for
/// every task in [0, n), where worker == task % size(). The static schedule
/// makes every run deterministic for a fixed pool size — callers give each
/// worker its own accumulators and reduce them in worker (or task) order to
/// obtain bitwise-reproducible sums, which the kernel-equivalence and
/// determinism tests rely on.
///
/// The calling thread participates as worker 0, so ThreadPool(1) spawns no
/// threads and runs everything inline.
class ThreadPool {
 public:
  /// Creates a pool of `threads` workers total (clamped to >= 1); the
  /// constructor spawns `threads - 1` std::threads.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return size_; }

  /// Runs fn(task, worker) for every task in [0, n); returns once all tasks
  /// have completed. Not reentrant: fn must not call run() on this pool.
  ///
  /// If fn throws, the worker abandons its remaining tasks, the other
  /// workers still finish theirs, and run() rethrows the throwing worker
  /// with the lowest index (deterministic when several throw). The pool
  /// stays usable for subsequent run() calls.
  void run(std::size_t n, const std::function<void(std::size_t, int)>& fn);

  /// Worker count to use when the caller asked for "whatever the machine
  /// has" (options.threads == 0).
  static int default_threads();

 private:
  void worker_loop(int worker);

  int size_ = 1;  ///< total worker count, fixed before any thread starts
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t, int)>* job_ = nullptr;
  std::size_t job_n_ = 0;
  std::vector<std::exception_ptr> errors_;  ///< one slot per worker, per run
  std::uint64_t generation_ = 0;
  int running_ = 0;
  bool stop_ = false;
};

}  // namespace scalemd
