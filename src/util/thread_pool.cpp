#include "util/thread_pool.hpp"

#include <algorithm>

namespace scalemd {

ThreadPool::ThreadPool(int threads) : size_(std::max(1, threads)) {
  const int n = size_;
  workers_.reserve(static_cast<std::size_t>(n - 1));
  for (int w = 1; w < n; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::run(std::size_t n, const std::function<void(std::size_t, int)>& fn) {
  const auto stride = static_cast<std::size_t>(size());
  if (workers_.empty()) {
    for (std::size_t t = 0; t < n; ++t) fn(t, 0);  // throws propagate directly
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    job_n_ = n;
    errors_.assign(static_cast<std::size_t>(size()), nullptr);
    running_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  cv_start_.notify_all();
  // The calling thread is worker 0.
  try {
    for (std::size_t t = 0; t < n; t += stride) fn(t, 0);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    errors_[0] = std::current_exception();
  }
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return running_ == 0; });
  job_ = nullptr;
  for (auto& err : errors_) {
    if (err != nullptr) {
      std::exception_ptr e = err;
      errors_.clear();  // the pool stays usable after a throwing run
      std::rethrow_exception(e);
    }
  }
}

void ThreadPool::worker_loop(int worker) {
  const auto stride = static_cast<std::size_t>(size());
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t, int)>* job = nullptr;
    std::size_t n = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [this, seen] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
      n = job_n_;
    }
    std::exception_ptr err;
    try {
      for (std::size_t t = static_cast<std::size_t>(worker); t < n; t += stride) {
        (*job)(t, worker);
      }
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (err != nullptr) errors_[static_cast<std::size_t>(worker)] = err;
      --running_;
    }
    cv_done_.notify_one();
  }
}

int ThreadPool::default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::clamp(hw, 1u, 16u));
}

}  // namespace scalemd
