#pragma once

#include <cstddef>
#include <span>

namespace scalemd {

/// Summary statistics over a sample, computed in one pass by `summarize`.
struct Summary {
  std::size_t n = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< population standard deviation
  double sum = 0.0;
};

/// Computes min/max/mean/stddev/sum of `values`. An empty span yields a
/// zero-initialized Summary.
Summary summarize(std::span<const double> values);

/// Robust order statistics, the benchmark subsystem's preferred summary
/// (median/MAD resist the long right tail of wall-clock timing noise where
/// mean/stddev do not). Well defined for every input size: empty gives
/// n == 0 with all fields zero, a single sample has median == min == max
/// and mad == 0, and an all-equal sample has mad == 0. Never NaN for
/// finite input.
struct RobustSummary {
  std::size_t n = 0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double mad = 0.0;  ///< median absolute deviation from the median
};

RobustSummary robust_summarize(std::span<const double> values);

/// Median of `values` (average of the two middle elements for even n).
/// Returns 0.0 for an empty sample.
double median(std::span<const double> values);

/// Median absolute deviation from the median. Returns 0.0 for samples of
/// fewer than two elements and for all-equal samples.
double mad(std::span<const double> values);

/// Percentile in [0, 100] with linear interpolation between order
/// statistics (pct is clamped into range). Returns 0.0 for an empty
/// sample; a single-element sample returns that element for every pct.
double percentile(std::span<const double> values, double pct);

/// Load-imbalance ratio max/mean of `loads`; 1.0 means perfectly balanced.
/// Returns 1.0 for empty or all-zero input.
double imbalance_ratio(std::span<const double> loads);

}  // namespace scalemd
