#pragma once

#include <cstddef>
#include <span>

namespace scalemd {

/// Summary statistics over a sample, computed in one pass by `summarize`.
struct Summary {
  std::size_t n = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< population standard deviation
  double sum = 0.0;
};

/// Computes min/max/mean/stddev/sum of `values`. An empty span yields a
/// zero-initialized Summary.
Summary summarize(std::span<const double> values);

/// Load-imbalance ratio max/mean of `loads`; 1.0 means perfectly balanced.
/// Returns 1.0 for empty or all-zero input.
double imbalance_ratio(std::span<const double> loads);

}  // namespace scalemd
