#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace scalemd {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  if (bins < 1) throw std::invalid_argument("Histogram: bins must be >= 1");
  if (!(std::isfinite(lo) && std::isfinite(hi) && hi > lo)) {
    throw std::invalid_argument("Histogram: range requires finite lo < hi");
  }
}

void Histogram::add(double value) { add(value, 1); }

void Histogram::add(double value, std::size_t weight) {
  if (!std::isfinite(value)) {
    // Counted so nothing is silently dropped, but kept out of the running
    // sum/max so mean_sample()/max_sample() stay finite.
    counts_[value > 0.0 ? counts_.size() - 1 : 0] += weight;
    clamped_ += weight;
    total_ += weight;
    nonfinite_ += weight;
    return;
  }
  double idx = std::floor((value - lo_) / width_);
  if (idx < 0.0 || idx >= static_cast<double>(counts_.size())) {
    clamped_ += weight;
    idx = std::clamp(idx, 0.0, static_cast<double>(counts_.size() - 1));
  }
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
  sum_ += value * static_cast<double>(weight);
  max_sample_ = std::max(max_sample_, value);
}

double Histogram::mean_sample() const {
  const std::size_t finite = total_ - nonfinite_;
  return finite == 0 ? 0.0 : sum_ / static_cast<double>(finite);
}

std::string Histogram::render(std::size_t width) const {
  std::size_t first = 0;
  std::size_t last = counts_.size();
  while (first < last && counts_[first] == 0) ++first;
  while (last > first && counts_[last - 1] == 0) --last;

  std::size_t peak = 1;
  for (std::size_t i = first; i < last; ++i) peak = std::max(peak, counts_[i]);

  std::ostringstream os;
  for (std::size_t i = first; i < last; ++i) {
    const double lo = bin_lo(i);
    os.setf(std::ios::fixed);
    os.precision(2);
    os << '[' << lo << ", " << lo + width_ << ") ";
    const std::size_t bar = counts_[i] * width / peak;
    for (std::size_t b = 0; b < bar; ++b) os << '#';
    os << ' ' << counts_[i] << '\n';
  }
  return os.str();
}

}  // namespace scalemd
