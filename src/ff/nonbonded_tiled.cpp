#include "ff/nonbonded_tiled.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/units.hpp"

#if defined(__AVX512F__) && defined(__AVX512VL__)
#define SCALEMD_TILED_AVX512 1
#include <immintrin.h>
#endif

namespace scalemd {

void GlobalLocalMap::begin(int atom_count) {
  const auto n = static_cast<std::size_t>(atom_count);
  if (loc_.size() < n) {
    loc_.resize(n, -1);
    stamp_.resize(n, 0);
  }
  if (++epoch_ == 0) {  // epoch wrapped: old stamps would alias
    std::fill(stamp_.begin(), stamp_.end(), 0u);
    epoch_ = 1;
  }
}

void TileSoA::gather(const NonbondedContext& ctx, std::span<const int> idx,
                     std::span<const Vec3> pos) {
  n = idx.size();
  x.resize(n);
  y.resize(n);
  z.resize(n);
  q.resize(n);
  type.resize(n);
  global.assign(idx.begin(), idx.end());
  for (std::size_t k = 0; k < n; ++k) {
    x[k] = pos[k].x;
    y[k] = pos[k].y;
    z[k] = pos[k].z;
    q[k] = ctx.charge(idx[k]);
    type[k] = ctx.lj_type(idx[k]);
  }
}

void TilePair::build_self(const NonbondedContext& ctx, std::span<const int> idx,
                          std::span<const Vec3> pos, GlobalLocalMap& map) {
  self_ = true;
  a_.gather(ctx, idx, pos);
  build_masks(ctx, map);
}

void TilePair::build_ab(const NonbondedContext& ctx, std::span<const int> idx_a,
                        std::span<const Vec3> pos_a, std::span<const int> idx_b,
                        std::span<const Vec3> pos_b, GlobalLocalMap& map) {
  self_ = false;
  a_.gather(ctx, idx_a, pos_a);
  b_.gather(ctx, idx_b, pos_b);
  build_masks(ctx, map);
}

void TilePair::build_masks(const NonbondedContext& ctx, GlobalLocalMap& map) {
  const TileSoA& bt = b();
  words_ = (bt.n + 63) / 64;
  full_.assign(a_.n * words_, 0u);
  mod_.assign(a_.n * words_, 0u);
  row_masked_.assign(a_.n, 0);

  map.begin(ctx.exclusions().atom_count());
  for (std::size_t j = 0; j < bt.n; ++j) map.set(bt.global[j], static_cast<int>(j));

  for (std::size_t i = 0; i < a_.n; ++i) {
    const int gi = a_.global[i];
    bool any = false;
    for (int g : ctx.exclusions().excluded(gi)) {
      const int j = map.find(g);
      if (j >= 0) {
        full_[i * words_ + static_cast<std::size_t>(j) / 64] |=
            std::uint64_t{1} << (static_cast<std::size_t>(j) & 63);
        any = true;
      }
    }
    for (int g : ctx.exclusions().modified(gi)) {
      const int j = map.find(g);
      if (j >= 0) {
        mod_[i * words_ + static_cast<std::size_t>(j) / 64] |=
            std::uint64_t{1} << (static_cast<std::size_t>(j) & 63);
        any = true;
      }
    }
    row_masked_[i] = any ? 1 : 0;
  }
}

namespace {

/// Switching/shift constants hoisted out of the inner loop. Built from the
/// same inputs as SwitchFunction / ElecShift so values match the scalar
/// kernel's bit for bit.
struct KernelConsts {
  double cutoff2, rs2, rc2, inv_denom, inv_rc2;
  bool fe;               ///< full-elec mode: erfc screen instead of shift
  double fe_alpha, fe_alpha_spi;

  explicit KernelConsts(const NonbondedContext& ctx) {
    const SwitchFunction& sw = ctx.switching();
    cutoff2 = ctx.cutoff2();
    rs2 = sw.switch_dist() * sw.switch_dist();
    rc2 = sw.cutoff() * sw.cutoff();
    const double d = rc2 - rs2;
    inv_denom = 1.0 / (d * d * d);
    inv_rc2 = 1.0 / rc2;
    fe = ctx.full_elec();
    fe_alpha = ctx.fe_alpha();
    fe_alpha_spi = ctx.fe_alpha_over_sqrt_pi();
  }
};

/// Pass 2 of the filtered loop: full force/energy math over the packed pairs
/// that survived the cutoff/exclusion filter. Purely elementwise (no
/// reductions, no branches beyond the clamp blends), so the compiler turns
/// it into vector divisions and square roots. The arithmetic is identical to
/// the scalar eval_pair(), so results agree to summation-order rounding.
/// `scale` is 1 for plain pairs and scale14 for modified 1-4 pairs.
/// Templated on full-elec mode so the cutoff path keeps its branch-free
/// vector body and the erfc path evaluates the exact expressions of the
/// scalar eval_pair() (bitwise kernel equivalence is a pinned contract).
template <bool FE>
inline void pair_math_impl(std::size_t np, const double* __restrict pr2,
                      const double* __restrict pdx, const double* __restrict pdy,
                      const double* __restrict pdz, const double* __restrict pqj,
                      const double* __restrict plja, const double* __restrict pljb,
                      const double* __restrict pscale, double qi_c,
                      const KernelConsts& kc, double* __restrict pfx,
                      double* __restrict pfy, double* __restrict pfz,
                      double* __restrict pelj, double* __restrict peel) {
  for (std::size_t k = 0; k < np; ++k) {
    const double r2 = pr2[k];
    const double scale = pscale[k];
    const double inv_r2 = 1.0 / r2;
    const double inv_r6 = inv_r2 * inv_r2 * inv_r2;
    const double inv_r12 = inv_r6 * inv_r6;
    const double a = plja[k];
    const double b = pljb[k];
    const double u_lj = a * inv_r12 - b * inv_r6;

    // Branch-free switching: clamping r^2 into [rs^2, rc^2] reproduces the
    // piecewise S (1 below the window, 0 above) and makes dS vanish outside.
    // min/max (not ternaries) so the clamp compiles to vector min/max ops.
    const double rcl = std::min(std::max(r2, kc.rs2), kc.rc2);
    const double am = kc.rc2 - rcl;
    const double s = am * am * (kc.rc2 + 2.0 * rcl - 3.0 * kc.rs2) * kc.inv_denom;
    const double ds = 6.0 * am * (kc.rs2 - rcl) * kc.inv_denom;
    const double du = (-6.0 * a * inv_r12 + 3.0 * b * inv_r6) * inv_r2;
    double de = scale * (s * du + ds * u_lj);

    const double qq = qi_c * pqj[k];
    const double inv_r = std::sqrt(inv_r2);
    double t, dt;
    if constexpr (FE) {
      t = std::erfc(kc.fe_alpha * r2 * inv_r);
      dt = -kc.fe_alpha_spi * std::exp(-kc.fe_alpha * kc.fe_alpha * r2) * inv_r;
    } else {
      const double t1 = 1.0 - r2 * kc.inv_rc2;
      t = t1 * t1;
      dt = -2.0 * t1 * kc.inv_rc2;
    }
    de += scale * qq * (-0.5 * inv_r * inv_r2 * t + inv_r * dt);

    pelj[k] = scale * s * u_lj;
    peel[k] = scale * qq * inv_r * t;
    const double g = -2.0 * de;
    pfx[k] = pdx[k] * g;
    pfy[k] = pdy[k] * g;
    pfz[k] = pdz[k] * g;
  }
}

inline void pair_math(std::size_t np, const double* __restrict pr2,
                      const double* __restrict pdx, const double* __restrict pdy,
                      const double* __restrict pdz, const double* __restrict pqj,
                      const double* __restrict plja, const double* __restrict pljb,
                      const double* __restrict pscale, double qi_c,
                      const KernelConsts& kc, double* __restrict pfx,
                      double* __restrict pfy, double* __restrict pfz,
                      double* __restrict pelj, double* __restrict peel) {
  if (kc.fe) {
    pair_math_impl<true>(np, pr2, pdx, pdy, pdz, pqj, plja, pljb, pscale, qi_c,
                         kc, pfx, pfy, pfz, pelj, peel);
  } else {
    pair_math_impl<false>(np, pr2, pdx, pdy, pdz, pqj, plja, pljb, pscale, qi_c,
                          kc, pfx, pfy, pfz, pelj, peel);
  }
}

/// Compacts the indices j in [jb, jn) with rr[j] < cutoff2 and (for masked
/// rows) full-exclusion bit clear into pj, preserving ascending order.
/// Returns the survivor count. This is the hot filter over every tested
/// pair; on AVX-512 hosts it runs 8 candidates per step with a compress
/// store, elsewhere as a branchless conditional-increment loop.
inline std::size_t compact_row(const double* rr, std::size_t jb, std::size_t jn,
                               double cutoff2, const std::uint64_t* fr, bool masked,
                               int* pj) {
  std::size_t np = 0;
  std::size_t j = jb;
#if SCALEMD_TILED_AVX512
  const auto keep1 = [&](std::size_t jj) {
    pj[np] = static_cast<int>(jj);
    const bool keep = rr[jj] < cutoff2 &&
                      (!masked || ((fr[jj >> 6] >> (jj & 63)) & 1u) == 0);
    np += static_cast<std::size_t>(keep);
  };
  for (; j < jn && (j & 7) != 0; ++j) keep1(j);
  const __m512d vc2 = _mm512_set1_pd(cutoff2);
  __m256i vj = _mm256_add_epi32(
      _mm256_set1_epi32(static_cast<int>(j)),
      _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7));
  const __m256i v8 = _mm256_set1_epi32(8);
  for (; j + 8 <= jn; j += 8) {
    const __m512d vr = _mm512_loadu_pd(rr + j);
    __mmask8 k = _mm512_cmp_pd_mask(vr, vc2, _CMP_LT_OQ);
    if (masked) {
      // j is 8-aligned, so the row's 8 exclusion bits sit in one mask byte.
      k &= static_cast<__mmask8>(~((fr[j >> 6] >> (j & 63)) & 0xFFu));
    }
    _mm256_mask_compressstoreu_epi32(pj + np, k, vj);
    np += static_cast<unsigned>(__builtin_popcount(k));
    vj = _mm256_add_epi32(vj, v8);
  }
  for (; j < jn; ++j) keep1(j);
#else
  if (masked) {
    for (; j < jn; ++j) {
      pj[np] = static_cast<int>(j);
      const bool keep =
          rr[j] < cutoff2 && ((fr[j >> 6] >> (j & 63)) & 1u) == 0;
      np += static_cast<std::size_t>(keep);
    }
  } else {
    for (; j < jn; ++j) {
      pj[np] = static_cast<int>(j);
      np += static_cast<std::size_t>(rr[j] < cutoff2);
    }
  }
#endif
  return np;
}

/// Neighbor-list analogue of compact_row: keeps slots k with rr[k] < cutoff2
/// whose exclusion code is not kFull.
inline std::size_t compact_codes(const double* rr, std::size_t m, double cutoff2,
                                 const std::uint8_t* codes, int* pj) {
  std::size_t np = 0;
  std::size_t k = 0;
  constexpr std::uint8_t kFullCode = static_cast<std::uint8_t>(ExclusionKind::kFull);
#if SCALEMD_TILED_AVX512
  const __m512d vc2 = _mm512_set1_pd(cutoff2);
  const __m128i vfull = _mm_set1_epi8(static_cast<char>(kFullCode));
  __m256i vk = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const __m256i v8 = _mm256_set1_epi32(8);
  for (; k + 8 <= m; k += 8) {
    const __m512d vr = _mm512_loadu_pd(rr + k);
    __mmask8 keep = _mm512_cmp_pd_mask(vr, vc2, _CMP_LT_OQ);
    const __m128i c8 = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(codes + k));
    const int excl = _mm_movemask_epi8(_mm_cmpeq_epi8(c8, vfull)) & 0xFF;
    keep &= static_cast<__mmask8>(~excl);
    _mm256_mask_compressstoreu_epi32(pj + np, keep, vk);
    np += static_cast<unsigned>(__builtin_popcount(keep));
    vk = _mm256_add_epi32(vk, v8);
  }
#endif
  for (; k < m; ++k) {
    pj[np] = static_cast<int>(k);
    const bool keep = rr[k] < cutoff2 && codes[k] != kFullCode;
    np += static_cast<std::size_t>(keep);
  }
  return np;
}

}  // namespace

void RowScratch::ensure(std::size_t n) {
  if (rr.size() >= n) return;
  for (auto* v : {&rr, &pdx, &pdy, &pdz, &pr2, &pqj, &plja, &pljb, &pscale, &pfx,
                  &pfy, &pfz, &pelj, &peel}) {
    v->resize(n);
  }
  pj.resize(n);
}

EnergyTerms TilePair::eval_rows(const NonbondedContext& ctx, std::size_t i0,
                                std::size_t i1, double* fax, double* fay, double* faz,
                                double* fbx, double* fby, double* fbz, RowScratch& rs,
                                WorkCounters& work) const {
  const TileSoA& at = a_;
  const TileSoA& bt = b();
  const KernelConsts kc(ctx);
  const double s14 = ctx.params().scale14;
  rs.ensure(bt.n);
  const double* __restrict bx = bt.x.data();
  const double* __restrict by = bt.y.data();
  const double* __restrict bz = bt.z.data();
  const double* bq = bt.q.data();
  const int* btype = bt.type.data();
  double* __restrict rr = rs.rr.data();
  int* __restrict pj = rs.pj.data();

  EnergyTerms e;
  std::uint64_t tested = 0;
  std::uint64_t computed = 0;
  for (std::size_t i = i0; i < i1; ++i) {
    const std::size_t jb = self_ ? i + 1 : 0;
    const std::size_t jn = bt.n;
    if (jb >= jn) continue;
    tested += jn - jb;

    const double xi = at.x[i];
    const double yi = at.y[i];
    const double zi = at.z[i];
    const double qi_c = units::kCoulomb * at.q[i];
    const LJPair* lj_row = ctx.params().lj_pair_row(at.type[i]);

    // Pass 1a: squared distance for every candidate, full width (vectorizes).
    for (std::size_t j = jb; j < jn; ++j) {
      const double dx = xi - bx[j];
      const double dy = yi - by[j];
      const double dz = zi - bz[j];
      rr[j] = dx * dx + dy * dy + dz * dz;
    }

    // Pass 1b: compaction of the surviving partner indices — a compress
    // store (or, without AVX-512, a conditional increment) instead of a
    // 15%-taken branch the predictor would keep missing.
    const bool masked = row_masked_[i] != 0;
    const std::size_t np = compact_row(rr, jb, jn, kc.cutoff2,
                                       full_.data() + i * words_, masked, pj);
    computed += np;

    // Pass 1c: gather the survivors' pair data into packed SoA.
    const std::uint64_t* mr = mod_.data() + i * words_;
    for (std::size_t k = 0; k < np; ++k) {
      const auto j = static_cast<std::size_t>(pj[k]);
      rs.pdx[k] = xi - bx[j];
      rs.pdy[k] = yi - by[j];
      rs.pdz[k] = zi - bz[j];
      rs.pr2[k] = rr[j];
      rs.pqj[k] = bq[j];
      const LJPair& lj = lj_row[btype[j]];
      rs.plja[k] = lj.a;
      rs.pljb[k] = lj.b;
      rs.pscale[k] =
          masked && ((mr[j >> 6] >> (j & 63)) & 1u) != 0 ? s14 : 1.0;
    }

    // Pass 2: vectorized force/energy math on the packed pairs.
    pair_math(np, rs.pr2.data(), rs.pdx.data(), rs.pdy.data(), rs.pdz.data(),
              rs.pqj.data(), rs.plja.data(), rs.pljb.data(), rs.pscale.data(), qi_c,
              kc, rs.pfx.data(), rs.pfy.data(), rs.pfz.data(), rs.pelj.data(),
              rs.peel.data());

    // Pass 3: reduce the row and scatter partner reactions (j ascending, so
    // accumulation order matches the scalar kernel's).
    double fxs = 0.0, fys = 0.0, fzs = 0.0, elj = 0.0, eel = 0.0;
    for (std::size_t k = 0; k < np; ++k) {
      const auto j = static_cast<std::size_t>(rs.pj[k]);
      fxs += rs.pfx[k];
      fys += rs.pfy[k];
      fzs += rs.pfz[k];
      fbx[j] -= rs.pfx[k];
      fby[j] -= rs.pfy[k];
      fbz[j] -= rs.pfz[k];
      elj += rs.pelj[k];
      eel += rs.peel[k];
    }
    fax[i] += fxs;
    fay[i] += fys;
    faz[i] += fzs;
    e.lj += elj;
    e.elec += eel;
  }
  work.pairs_tested += tested;
  work.pairs_computed += computed;
  return e;
}

namespace {

void zero3(std::vector<double>& x, std::vector<double>& y, std::vector<double>& z,
           std::size_t n) {
  x.assign(n, 0.0);
  y.assign(n, 0.0);
  z.assign(n, 0.0);
}

void scatter3(std::span<Vec3> f, const std::vector<double>& x,
              const std::vector<double>& y, const std::vector<double>& z) {
  for (std::size_t j = 0; j < f.size(); ++j) {
    f[j] += Vec3{x[j], y[j], z[j]};
  }
}

}  // namespace

EnergyTerms nonbonded_self_tiled(const NonbondedContext& ctx, std::span<const int> idx,
                                 std::span<const Vec3> pos, std::span<Vec3> f,
                                 WorkCounters& work, TiledWorkspace& ws) {
  return nonbonded_self_range_tiled(ctx, idx, pos, f, 0, idx.size(), work, ws);
}

EnergyTerms nonbonded_self_range_tiled(const NonbondedContext& ctx,
                                       std::span<const int> idx,
                                       std::span<const Vec3> pos, std::span<Vec3> f,
                                       std::size_t i_begin, std::size_t i_end,
                                       WorkCounters& work, TiledWorkspace& ws) {
  assert(i_end <= idx.size());
  ws.pair.build_self(ctx, idx, pos, ws.map);
  zero3(ws.fax, ws.fay, ws.faz, idx.size());
  const EnergyTerms e =
      ws.pair.eval_rows(ctx, i_begin, i_end, ws.fax.data(), ws.fay.data(),
                        ws.faz.data(), ws.fax.data(), ws.fay.data(), ws.faz.data(),
                        ws.row, work);
  scatter3(f, ws.fax, ws.fay, ws.faz);
  return e;
}

EnergyTerms nonbonded_ab_tiled(const NonbondedContext& ctx, std::span<const int> idx_a,
                               std::span<const Vec3> pos_a, std::span<Vec3> f_a,
                               std::span<const int> idx_b,
                               std::span<const Vec3> pos_b, std::span<Vec3> f_b,
                               WorkCounters& work, TiledWorkspace& ws) {
  return nonbonded_ab_range_tiled(ctx, idx_a, pos_a, f_a, idx_b, pos_b, f_b, 0,
                                  idx_a.size(), work, ws);
}

EnergyTerms nonbonded_ab_range_tiled(const NonbondedContext& ctx,
                                     std::span<const int> idx_a,
                                     std::span<const Vec3> pos_a, std::span<Vec3> f_a,
                                     std::span<const int> idx_b,
                                     std::span<const Vec3> pos_b, std::span<Vec3> f_b,
                                     std::size_t a_begin, std::size_t a_end,
                                     WorkCounters& work, TiledWorkspace& ws) {
  assert(a_end <= idx_a.size());
  ws.pair.build_ab(ctx, idx_a, pos_a, idx_b, pos_b, ws.map);
  zero3(ws.fax, ws.fay, ws.faz, idx_a.size());
  zero3(ws.fbx, ws.fby, ws.fbz, idx_b.size());
  const EnergyTerms e =
      ws.pair.eval_rows(ctx, a_begin, a_end, ws.fax.data(), ws.fay.data(),
                        ws.faz.data(), ws.fbx.data(), ws.fby.data(), ws.fbz.data(),
                        ws.row, work);
  scatter3(f_a, ws.fax, ws.fay, ws.faz);
  scatter3(f_b, ws.fbx, ws.fby, ws.fbz);
  return e;
}

namespace {

/// Outer rows handed to one pool task. Small enough to balance triangular
/// self workloads via the round-robin schedule, large enough to amortize
/// task dispatch.
constexpr std::size_t kChunkRows = 32;

}  // namespace

EnergyTerms nonbonded_self_range_tiled_mt(const NonbondedContext& ctx,
                                          std::span<const int> idx,
                                          std::span<const Vec3> pos, std::span<Vec3> f,
                                          std::size_t i_begin, std::size_t i_end,
                                          WorkCounters& work, TiledThreadWorkspace& ws,
                                          ThreadPool& pool) {
  assert(i_end <= idx.size());
  ws.shared.pair.build_self(ctx, idx, pos, ws.shared.map);
  const std::size_t n = idx.size();
  const std::size_t rows = i_end > i_begin ? i_end - i_begin : 0;
  const std::size_t nchunks = (rows + kChunkRows - 1) / kChunkRows;
  ws.workers.resize(static_cast<std::size_t>(pool.size()));
  ws.chunk_energy.assign(nchunks, EnergyTerms{});
  for (auto& w : ws.workers) {
    zero3(w.fax, w.fay, w.faz, n);
    w.work = {};
  }
  pool.run(nchunks, [&](std::size_t task, int worker) {
    auto& pw = ws.workers[static_cast<std::size_t>(worker)];
    const std::size_t b = i_begin + task * kChunkRows;
    const std::size_t e = std::min(i_end, b + kChunkRows);
    ws.chunk_energy[task] =
        ws.shared.pair.eval_rows(ctx, b, e, pw.fax.data(), pw.fay.data(),
                                 pw.faz.data(), pw.fax.data(), pw.fay.data(),
                                 pw.faz.data(), pw.row, pw.work);
  });
  // Deterministic reduction: energies in chunk order, forces/counters in
  // worker order (the static schedule fixes the chunk -> worker mapping).
  EnergyTerms e;
  for (const EnergyTerms& ce : ws.chunk_energy) e += ce;
  for (const auto& pw : ws.workers) {
    work += pw.work;
    scatter3(f, pw.fax, pw.fay, pw.faz);
  }
  return e;
}

EnergyTerms nonbonded_ab_range_tiled_mt(const NonbondedContext& ctx,
                                        std::span<const int> idx_a,
                                        std::span<const Vec3> pos_a, std::span<Vec3> f_a,
                                        std::span<const int> idx_b,
                                        std::span<const Vec3> pos_b, std::span<Vec3> f_b,
                                        std::size_t a_begin, std::size_t a_end,
                                        WorkCounters& work, TiledThreadWorkspace& ws,
                                        ThreadPool& pool) {
  assert(a_end <= idx_a.size());
  ws.shared.pair.build_ab(ctx, idx_a, pos_a, idx_b, pos_b, ws.shared.map);
  const std::size_t rows = a_end > a_begin ? a_end - a_begin : 0;
  const std::size_t nchunks = (rows + kChunkRows - 1) / kChunkRows;
  ws.workers.resize(static_cast<std::size_t>(pool.size()));
  ws.chunk_energy.assign(nchunks, EnergyTerms{});
  for (auto& w : ws.workers) {
    zero3(w.fax, w.fay, w.faz, idx_a.size());
    zero3(w.fbx, w.fby, w.fbz, idx_b.size());
    w.work = {};
  }
  pool.run(nchunks, [&](std::size_t task, int worker) {
    auto& pw = ws.workers[static_cast<std::size_t>(worker)];
    const std::size_t b = a_begin + task * kChunkRows;
    const std::size_t e = std::min(a_end, b + kChunkRows);
    ws.chunk_energy[task] =
        ws.shared.pair.eval_rows(ctx, b, e, pw.fax.data(), pw.fay.data(),
                                 pw.faz.data(), pw.fbx.data(), pw.fby.data(),
                                 pw.fbz.data(), pw.row, pw.work);
  });
  EnergyTerms e;
  for (const EnergyTerms& ce : ws.chunk_energy) e += ce;
  for (const auto& pw : ws.workers) {
    work += pw.work;
    scatter3(f_a, pw.fax, pw.fay, pw.faz);
    scatter3(f_b, pw.fbx, pw.fby, pw.fbz);
  }
  return e;
}

EnergyTerms nonbonded_neighbors_tiled(const NonbondedContext& ctx, int gi,
                                      std::span<const Vec3> pos,
                                      std::span<const int> nbrs,
                                      std::span<const std::uint8_t> codes,
                                      std::span<Vec3> f, WorkCounters& work,
                                      TiledWorkspace& ws) {
  assert(codes.size() == nbrs.size());
  const std::size_t m = nbrs.size();
  work.pairs_tested += m;
  EnergyTerms e;
  if (m == 0) return e;

  const double s14 = ctx.params().scale14;
  const KernelConsts kc(ctx);
  RowScratch& rs = ws.row;
  rs.ensure(m);
  const Vec3 ri = pos[static_cast<std::size_t>(gi)];
  const double qi_c = units::kCoulomb * ctx.charge(gi);
  const LJPair* lj_row = ctx.params().lj_pair_row(ctx.lj_type(gi));

  // Pass 1a: squared distance to every cached neighbor (vectorizes).
  double* __restrict rr = rs.rr.data();
  int* __restrict pj = rs.pj.data();
  for (std::size_t k = 0; k < m; ++k) {
    const auto j = static_cast<std::size_t>(nbrs[k]);
    const double dx = ri.x - pos[j].x;
    const double dy = ri.y - pos[j].y;
    const double dz = ri.z - pos[j].z;
    rr[k] = dx * dx + dy * dy + dz * dz;
  }

  // Pass 1b: compaction of surviving candidate slots.
  const std::size_t np = compact_codes(rr, m, kc.cutoff2, codes.data(), pj);
  work.pairs_computed += np;

  // Pass 1c: gather survivor pair data; pj[k] becomes the global partner id
  // (safe in place: slot k is read before it is overwritten).
  for (std::size_t k = 0; k < np; ++k) {
    const auto c = static_cast<std::size_t>(pj[k]);
    const auto j = static_cast<std::size_t>(nbrs[c]);
    rs.pdx[k] = ri.x - pos[j].x;
    rs.pdy[k] = ri.y - pos[j].y;
    rs.pdz[k] = ri.z - pos[j].z;
    rs.pr2[k] = rr[c];
    rs.pqj[k] = ctx.charge(nbrs[c]);
    const LJPair& lj = lj_row[ctx.lj_type(nbrs[c])];
    rs.plja[k] = lj.a;
    rs.pljb[k] = lj.b;
    rs.pscale[k] =
        codes[c] == static_cast<std::uint8_t>(ExclusionKind::kModified14) ? s14 : 1.0;
    pj[k] = nbrs[c];
  }

  // Pass 2: vectorized math on the survivors.
  pair_math(np, rs.pr2.data(), rs.pdx.data(), rs.pdy.data(), rs.pdz.data(),
            rs.pqj.data(), rs.plja.data(), rs.pljb.data(), rs.pscale.data(), qi_c, kc,
            rs.pfx.data(), rs.pfy.data(), rs.pfz.data(), rs.pelj.data(),
            rs.peel.data());

  // Pass 3: accumulate atom i, scatter neighbor reactions, sum energies.
  double fxs = 0.0, fys = 0.0, fzs = 0.0, elj = 0.0, eel = 0.0;
  for (std::size_t k = 0; k < np; ++k) {
    const auto j = static_cast<std::size_t>(rs.pj[k]);
    fxs += rs.pfx[k];
    fys += rs.pfy[k];
    fzs += rs.pfz[k];
    f[j] -= Vec3{rs.pfx[k], rs.pfy[k], rs.pfz[k]};
    elj += rs.pelj[k];
    eel += rs.peel[k];
  }
  f[static_cast<std::size_t>(gi)] += Vec3{fxs, fys, fzs};
  e.lj += elj;
  e.elec += eel;
  return e;
}

const char* kernel_name(NonbondedKernel k) {
  switch (k) {
    case NonbondedKernel::kScalar:
      return "scalar";
    case NonbondedKernel::kTiled:
      return "tiled";
    case NonbondedKernel::kTiledThreads:
      return "tiled+threads";
  }
  return "?";
}

bool kernel_from_name(std::string_view name, NonbondedKernel& out) {
  if (name == "scalar") {
    out = NonbondedKernel::kScalar;
  } else if (name == "tiled") {
    out = NonbondedKernel::kTiled;
  } else if (name == "tiled+threads" || name == "tiled-threads") {
    out = NonbondedKernel::kTiledThreads;
  } else {
    return false;
  }
  return true;
}

}  // namespace scalemd
