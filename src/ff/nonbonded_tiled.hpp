#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "ff/nonbonded.hpp"
#include "util/thread_pool.hpp"

namespace scalemd {

// ---------------------------------------------------------------------------
// Tiled SoA non-bonded kernel.
//
// The scalar kernel in ff/nonbonded.cpp walks AoS Vec3 arrays and performs
// two binary searches per in-cutoff pair to classify exclusions. This file
// implements the layout GROMACS-style cluster kernels use instead: positions,
// charges and LJ parameters are gathered once per invocation into contiguous
// per-set SoA tiles, exclusion/1-4 classification is precomputed once per
// tile build into per-row bitmasks, and the i x j inner loop is branch-free
// (no early exits; excluded and out-of-cutoff pairs are multiplied by zero)
// so the compiler can vectorize it. Forces accumulate into local SoA buffers
// and are scattered back at the end.
//
// Every entry point matches its scalar counterpart's forces and energies to
// summation-order rounding and reproduces WorkCounters *exactly* — the DES
// cost model and grain-size histograms depend on those counts.
// ---------------------------------------------------------------------------

/// Epoch-stamped global->local index map used while translating per-atom
/// exclusion lists (global atom ids) into tile-local bit positions. Clearing
/// is O(1): bump the epoch instead of wiping the arrays.
class GlobalLocalMap {
 public:
  /// Starts a new mapping over `atom_count` global ids.
  void begin(int atom_count);
  void set(int global, int local) {
    const auto g = static_cast<std::size_t>(global);
    loc_[g] = local;
    stamp_[g] = epoch_;
  }
  /// Local index of `global` in the current epoch, or -1.
  int find(int global) const {
    const auto g = static_cast<std::size_t>(global);
    return stamp_[g] == epoch_ ? loc_[g] : -1;
  }

 private:
  std::vector<int> loc_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 0;
};

/// One atom set gathered into SoA arrays: coordinates, charge, LJ type and
/// the per-atom row pointer into the mixed LJ pair table.
struct TileSoA {
  std::size_t n = 0;
  std::vector<double> x, y, z, q;
  std::vector<int> type;
  std::vector<int> global;

  void gather(const NonbondedContext& ctx, std::span<const int> idx,
              std::span<const Vec3> pos);
};

/// Per-row scratch for the filtered two-pass inner loop: full-width distance
/// buffers plus packed SoA arrays holding only the pairs that survive the
/// cutoff/exclusion filter (the expensive math runs on those alone, as a
/// branch-free elementwise map the compiler vectorizes).
struct RowScratch {
  std::vector<double> rr;  // full partner width: squared distances
  std::vector<int> pj;     // packed: surviving partner index
  std::vector<double> pdx, pdy, pdz, pr2, pqj, plja, pljb, pscale;
  std::vector<double> pfx, pfy, pfz, pelj, peel;  // packed outputs

  void ensure(std::size_t n);
};

/// Gathered tiles plus per-row exclusion bitmasks for one kernel invocation:
/// either a self set (all i < j pairs) or an ordered (a, b) set pair. Bit j
/// of full/mod row i marks atom pair (i, j) as fully excluded / 1-4 scaled.
/// Masks depend only on set membership, so they are built once per tile
/// build (i.e. once per cell sweep or pairlist build), replacing the scalar
/// kernel's per-pair binary searches with a branch-free mask lookup.
class TilePair {
 public:
  void build_self(const NonbondedContext& ctx, std::span<const int> idx,
                  std::span<const Vec3> pos, GlobalLocalMap& map);
  void build_ab(const NonbondedContext& ctx, std::span<const int> idx_a,
                std::span<const Vec3> pos_a, std::span<const int> idx_b,
                std::span<const Vec3> pos_b, GlobalLocalMap& map);

  bool self() const { return self_; }
  const TileSoA& a() const { return a_; }
  const TileSoA& b() const { return self_ ? a_ : b_; }

  /// Evaluates outer rows [i0, i1) against the partner set (j > i for self
  /// pairs, the full b set otherwise). Forces accumulate into the SoA
  /// buffers fa*/fb* (pass the same pointers for both in self mode); energy
  /// is returned and work counters are updated to match the scalar kernel
  /// exactly.
  EnergyTerms eval_rows(const NonbondedContext& ctx, std::size_t i0, std::size_t i1,
                        double* fax, double* fay, double* faz, double* fbx,
                        double* fby, double* fbz, RowScratch& rs,
                        WorkCounters& work) const;

 private:
  void build_masks(const NonbondedContext& ctx, GlobalLocalMap& map);

  TileSoA a_, b_;
  bool self_ = false;
  std::size_t words_ = 0;  ///< 64-bit words per mask row
  std::vector<std::uint64_t> full_, mod_;
  std::vector<std::uint8_t> row_masked_;  ///< row i has any exclusion bits
};

/// Reusable scratch for the single-threaded tiled entry points: tiles, the
/// global->local scratch map, SoA force accumulators and neighbor-gather
/// buffers. Create one per evaluation thread and reuse it across calls to
/// amortize allocations.
struct TiledWorkspace {
  TilePair pair;
  GlobalLocalMap map;
  RowScratch row;
  std::vector<double> fax, fay, faz, fbx, fby, fbz;
};

/// Per-pool-worker scratch for the multithreaded entry points. The shared
/// TilePair is built once per call; each worker accumulates forces into its
/// own SoA buffers, reduced in worker order afterwards (deterministic for a
/// fixed thread count).
struct TiledThreadWorkspace {
  TiledWorkspace shared;
  struct Worker {
    RowScratch row;
    std::vector<double> fax, fay, faz, fbx, fby, fbz;
    WorkCounters work;
  };
  std::vector<Worker> workers;
  std::vector<EnergyTerms> chunk_energy;
};

// --- drop-in tiled counterparts of the scalar entry points -----------------

EnergyTerms nonbonded_self_tiled(const NonbondedContext& ctx, std::span<const int> idx,
                                 std::span<const Vec3> pos, std::span<Vec3> f,
                                 WorkCounters& work, TiledWorkspace& ws);

EnergyTerms nonbonded_self_range_tiled(const NonbondedContext& ctx,
                                       std::span<const int> idx,
                                       std::span<const Vec3> pos, std::span<Vec3> f,
                                       std::size_t i_begin, std::size_t i_end,
                                       WorkCounters& work, TiledWorkspace& ws);

EnergyTerms nonbonded_ab_tiled(const NonbondedContext& ctx, std::span<const int> idx_a,
                               std::span<const Vec3> pos_a, std::span<Vec3> f_a,
                               std::span<const int> idx_b,
                               std::span<const Vec3> pos_b, std::span<Vec3> f_b,
                               WorkCounters& work, TiledWorkspace& ws);

EnergyTerms nonbonded_ab_range_tiled(const NonbondedContext& ctx,
                                     std::span<const int> idx_a,
                                     std::span<const Vec3> pos_a, std::span<Vec3> f_a,
                                     std::span<const int> idx_b,
                                     std::span<const Vec3> pos_b, std::span<Vec3> f_b,
                                     std::size_t a_begin, std::size_t a_end,
                                     WorkCounters& work, TiledWorkspace& ws);

// --- thread-pool variants: outer rows chunked across the pool --------------

EnergyTerms nonbonded_self_range_tiled_mt(const NonbondedContext& ctx,
                                          std::span<const int> idx,
                                          std::span<const Vec3> pos, std::span<Vec3> f,
                                          std::size_t i_begin, std::size_t i_end,
                                          WorkCounters& work, TiledThreadWorkspace& ws,
                                          ThreadPool& pool);

EnergyTerms nonbonded_ab_range_tiled_mt(const NonbondedContext& ctx,
                                        std::span<const int> idx_a,
                                        std::span<const Vec3> pos_a, std::span<Vec3> f_a,
                                        std::span<const int> idx_b,
                                        std::span<const Vec3> pos_b, std::span<Vec3> f_b,
                                        std::size_t a_begin, std::size_t a_end,
                                        WorkCounters& work, TiledThreadWorkspace& ws,
                                        ThreadPool& pool);

// --- pairlist (Verlet) path -------------------------------------------------

/// Evaluates atom `gi` against its cached neighbor list. `codes` classifies
/// each neighbor (0 = plain, 1 = fully excluded, 2 = 1-4 scaled) and is
/// precomputed once per pairlist build — see ExclusionKind for the values.
/// Neighbor coordinates are gathered into SoA scratch and the inner loop is
/// the same branch-free body as the tile kernel. Forces accumulate into the
/// global-indexed span `f`.
EnergyTerms nonbonded_neighbors_tiled(const NonbondedContext& ctx, int gi,
                                      std::span<const Vec3> pos,
                                      std::span<const int> nbrs,
                                      std::span<const std::uint8_t> codes,
                                      std::span<Vec3> f, WorkCounters& work,
                                      TiledWorkspace& ws);

// --- option helpers ---------------------------------------------------------

/// "scalar", "tiled" or "tiled+threads".
const char* kernel_name(NonbondedKernel k);

/// Parses a kernel name (accepts "tiled+threads" and "tiled-threads").
/// Returns false and leaves `out` untouched on unknown names.
bool kernel_from_name(std::string_view name, NonbondedKernel& out);

}  // namespace scalemd
