#include "ff/switching.hpp"

#include <cassert>

namespace scalemd {

SwitchFunction::SwitchFunction(double switch_dist, double cutoff)
    : rs_(switch_dist),
      rc_(cutoff),
      rs2_(switch_dist * switch_dist),
      rc2_(cutoff * cutoff) {
  assert(switch_dist > 0.0 && switch_dist < cutoff);
  const double d = rc2_ - rs2_;
  inv_denom_ = 1.0 / (d * d * d);
}

double SwitchFunction::value(double r2) const {
  if (r2 <= rs2_) return 1.0;
  if (r2 >= rc2_) return 0.0;
  const double a = rc2_ - r2;
  return a * a * (rc2_ + 2.0 * r2 - 3.0 * rs2_) * inv_denom_;
}

double SwitchFunction::dvalue_dr2(double r2) const {
  if (r2 <= rs2_ || r2 >= rc2_) return 0.0;
  // d/dr2 [ (rc2-r2)^2 (rc2 + 2 r2 - 3 rs2) ]
  //   = -2 (rc2-r2)(rc2 + 2 r2 - 3 rs2) + 2 (rc2-r2)^2
  //   = 2 (rc2-r2) [ (rc2-r2) - (rc2 + 2 r2 - 3 rs2) ]
  //   = 2 (rc2-r2) (3 rs2 - 3 r2) = 6 (rc2-r2)(rs2-r2)
  const double a = rc2_ - r2;
  return 6.0 * a * (rs2_ - r2) * inv_denom_;
}

ElecShift::ElecShift(double cutoff) : inv_rc2_(1.0 / (cutoff * cutoff)) {
  assert(cutoff > 0.0);
}

}  // namespace scalemd
