#pragma once

#include <span>

#include "ff/nonbonded.hpp"
#include "topo/molecule.hpp"
#include "util/vec3.hpp"

namespace scalemd {

/// Single-term kernels. Each returns the term's potential energy and
/// *accumulates* forces on the participating atoms. Positions and forces are
/// passed by explicit reference so the kernels are usable both from the
/// sequential engine (global arrays) and from patch-local compute objects.

/// Harmonic bond E = k (r - r0)^2.
double bond_energy_force(const Vec3& ra, const Vec3& rb, const BondParam& p, Vec3& fa,
                         Vec3& fb);

/// Harmonic angle E = k (theta - theta0)^2 over a-b-c.
double angle_energy_force(const Vec3& ra, const Vec3& rb, const Vec3& rc,
                          const AngleParam& p, Vec3& fa, Vec3& fb, Vec3& fc);

/// Cosine dihedral E = k (1 + cos(n phi - delta)) over a-b-c-d.
double dihedral_energy_force(const Vec3& ra, const Vec3& rb, const Vec3& rc,
                             const Vec3& rd, const DihedralParam& p, Vec3& fa,
                             Vec3& fb, Vec3& fc, Vec3& fd);

/// Harmonic improper E = k (psi - psi0)^2 where psi is the a-b-c-d dihedral
/// angle.
double improper_energy_force(const Vec3& ra, const Vec3& rb, const Vec3& rc,
                             const Vec3& rd, const ImproperParam& p, Vec3& fa,
                             Vec3& fb, Vec3& fc, Vec3& fd);

/// Batch evaluation over term lists with positions/forces indexed by global
/// atom id. Used by the sequential engine and by bonded compute objects
/// (which pass the molecule's term subsets they own). Forces are accumulated;
/// energies are summed into the returned EnergyTerms; each term evaluated
/// increments work.bonded_terms.
EnergyTerms evaluate_bonds(const ParameterTable& params, std::span<const Bond> terms,
                           std::span<const Vec3> pos, std::span<Vec3> f,
                           WorkCounters& work);
EnergyTerms evaluate_angles(const ParameterTable& params, std::span<const Angle> terms,
                            std::span<const Vec3> pos, std::span<Vec3> f,
                            WorkCounters& work);
EnergyTerms evaluate_dihedrals(const ParameterTable& params,
                               std::span<const Dihedral> terms,
                               std::span<const Vec3> pos, std::span<Vec3> f,
                               WorkCounters& work);
EnergyTerms evaluate_impropers(const ParameterTable& params,
                               std::span<const Improper> terms,
                               std::span<const Vec3> pos, std::span<Vec3> f,
                               WorkCounters& work);

}  // namespace scalemd
