#include "ff/nonbonded.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/units.hpp"

namespace scalemd {

NonbondedContext::NonbondedContext(const ParameterTable& params,
                                   const ExclusionTable& excl,
                                   std::span<const double> charge,
                                   std::span<const int> lj_type,
                                   const NonbondedOptions& opts)
    : params_(&params),
      excl_(&excl),
      charge_(charge),
      type_(lj_type),
      opts_(opts),
      switch_(opts.switch_dist, opts.cutoff),
      shift_(opts.cutoff),
      cutoff2_(opts.cutoff * opts.cutoff),
      fe_enabled_(opts.full_elec.enabled),
      fe_alpha_(opts.full_elec.alpha),
      fe_alpha_spi_(opts.full_elec.alpha / std::sqrt(M_PI)) {
  assert(!fe_enabled_ || full_elec_error(opts.full_elec) == nullptr);
}

const char* full_elec_error(const FullElecOptions& fe) {
  if (!fe.enabled) return nullptr;
  const auto pow2 = [](int n) { return n > 0 && (n & (n - 1)) == 0; };
  if (!(fe.alpha > 0.0) || fe.alpha > 10.0)
    return "full-elec alpha must be in (0, 10]";
  if (!pow2(fe.grid_x) || fe.grid_x < 4 || fe.grid_x > 256)
    return "full-elec grid_x must be a power of two in [4, 256]";
  if (!pow2(fe.grid_y) || fe.grid_y < 4 || fe.grid_y > 256)
    return "full-elec grid_y must be a power of two in [4, 256]";
  if (!pow2(fe.grid_z) || fe.grid_z < 4 || fe.grid_z > 256)
    return "full-elec grid_z must be a power of two in [4, 256]";
  if (fe.order < 2 || fe.order > 8) return "full-elec order must be in [2, 8]";
  if (fe.order > fe.grid_x || fe.order > fe.grid_y || fe.order > fe.grid_z)
    return "full-elec order must not exceed any grid dimension";
  return nullptr;
}

namespace {

/// Full force/energy math for one in-cutoff pair. Adds the pair force to
/// `fi` / `fj` and the energies to `e`. `scale` is 1 for normal pairs and
/// params.scale14 for modified 1-4 pairs.
inline void eval_pair(const NonbondedContext& ctx, int gi, int gj, const Vec3& dr,
                      double r2, double scale, Vec3& fi, Vec3& fj, EnergyTerms& e) {
  const LJPair& lj = ctx.params().lj_pair(ctx.lj_type(gi), ctx.lj_type(gj));
  const double inv_r2 = 1.0 / r2;
  const double inv_r6 = inv_r2 * inv_r2 * inv_r2;
  const double inv_r12 = inv_r6 * inv_r6;

  // Lennard-Jones with switching: E = S(r2) * U(r), U = A r^-12 - B r^-6.
  const double u_lj = lj.a * inv_r12 - lj.b * inv_r6;
  const double s = ctx.switching().value(r2);
  const double ds_dr2 = ctx.switching().dvalue_dr2(r2);
  // dU/d(r2) = (-6 A r^-12 + 3 B r^-6) / r2
  const double du_dr2 = (-6.0 * lj.a * inv_r12 + 3.0 * lj.b * inv_r6) * inv_r2;
  double de_dr2 = scale * (s * du_dr2 + ds_dr2 * u_lj);
  double e_lj = scale * s * u_lj;

  // Electrostatics: E = C q_i q_j / r * T(r2). Cutoff mode uses the NAMD
  // shift T = (1 - r2/rc2)^2; full-elec mode uses the Ewald real-space
  // screen T = erfc(alpha r) (the reciprocal remainder is the PME stage's
  // job). Only the (T, dT/dr2) pair differs between the modes.
  const double qq = units::kCoulomb * ctx.charge(gi) * ctx.charge(gj);
  const double inv_r = std::sqrt(inv_r2);
  double t, dt_dr2;
  if (ctx.full_elec()) {
    const double a = ctx.fe_alpha();
    t = std::erfc(a * r2 * inv_r);
    dt_dr2 = -ctx.fe_alpha_over_sqrt_pi() * std::exp(-a * a * r2) * inv_r;
  } else {
    t = ctx.elec_shift().shift_factor(r2);
    dt_dr2 = ctx.elec_shift().dshift_factor_dr2(r2);
  }
  // d/d(r2) [ qq * r^-1 * T ] = qq * ( -0.5 r^-3 T + r^-1 dT/dr2 )
  const double e_elec = scale * qq * inv_r * t;
  de_dr2 += scale * qq * (-0.5 * inv_r * inv_r2 * t + inv_r * dt_dr2);

  // F_i = -dE/d(r_i); with dr = r_i - r_j, dE/dr_i = 2 * de_dr2 * dr.
  const Vec3 f = dr * (-2.0 * de_dr2);
  fi += f;
  fj -= f;
  e.lj += e_lj;
  e.elec += e_elec;
}

/// Shared inner loop: one outer atom (ai/global gi) against a span of inner
/// atoms starting at `j_begin`.
inline void inner_loop(const NonbondedContext& ctx, int gi, const Vec3& ri, Vec3& fi,
                       std::span<const int> idx_b, std::span<const Vec3> pos_b,
                       std::span<Vec3> f_b, std::size_t j_begin, EnergyTerms& e,
                       WorkCounters& work) {
  const double cutoff2 = ctx.cutoff2();
  const auto excl = ctx.exclusions().excluded(gi);
  const auto mod = ctx.exclusions().modified(gi);
  const bool has_excl = !excl.empty() || !mod.empty();
  for (std::size_t j = j_begin; j < idx_b.size(); ++j) {
    ++work.pairs_tested;
    const Vec3 dr = ri - pos_b[j];
    const double r2 = norm2(dr);
    if (r2 >= cutoff2) continue;
    const int gj = idx_b[j];
    double scale = 1.0;
    if (has_excl) {
      // The vast majority of pairs are unexcluded; the binary searches are
      // over short per-atom lists (< 32 entries for biomolecules).
      if (std::binary_search(excl.begin(), excl.end(), gj)) continue;
      if (std::binary_search(mod.begin(), mod.end(), gj))
        scale = ctx.params().scale14;
    }
    ++work.pairs_computed;
    eval_pair(ctx, gi, gj, dr, r2, scale, fi, f_b[j], e);
  }
}

}  // namespace

bool nonbonded_pair_eval(const NonbondedContext& ctx, int gi, int gj,
                         const Vec3& ri, const Vec3& rj, Vec3& fi, Vec3& fj,
                         EnergyTerms& energy, WorkCounters& work) {
  ++work.pairs_tested;
  const Vec3 dr = ri - rj;
  const double r2 = norm2(dr);
  if (r2 >= ctx.cutoff2()) return false;
  double scale = 1.0;
  switch (ctx.exclusions().check(gi, gj)) {
    case ExclusionKind::kFull:
      return false;
    case ExclusionKind::kModified14:
      scale = ctx.params().scale14;
      break;
    case ExclusionKind::kNone:
      break;
  }
  ++work.pairs_computed;
  eval_pair(ctx, gi, gj, dr, r2, scale, fi, fj, energy);
  return true;
}

EnergyTerms nonbonded_ab(const NonbondedContext& ctx, std::span<const int> idx_a,
                         std::span<const Vec3> pos_a, std::span<Vec3> f_a,
                         std::span<const int> idx_b, std::span<const Vec3> pos_b,
                         std::span<Vec3> f_b, WorkCounters& work) {
  return nonbonded_ab_range(ctx, idx_a, pos_a, f_a, idx_b, pos_b, f_b, 0,
                            idx_a.size(), work);
}

EnergyTerms nonbonded_ab_range(const NonbondedContext& ctx, std::span<const int> idx_a,
                               std::span<const Vec3> pos_a, std::span<Vec3> f_a,
                               std::span<const int> idx_b,
                               std::span<const Vec3> pos_b, std::span<Vec3> f_b,
                               std::size_t a_begin, std::size_t a_end,
                               WorkCounters& work) {
  assert(a_end <= idx_a.size());
  EnergyTerms e;
  for (std::size_t i = a_begin; i < a_end; ++i) {
    inner_loop(ctx, idx_a[i], pos_a[i], f_a[i], idx_b, pos_b, f_b, 0, e, work);
  }
  return e;
}

EnergyTerms nonbonded_self(const NonbondedContext& ctx, std::span<const int> idx,
                           std::span<const Vec3> pos, std::span<Vec3> f,
                           WorkCounters& work) {
  return nonbonded_self_range(ctx, idx, pos, f, 0, idx.size(), work);
}

EnergyTerms nonbonded_self_range(const NonbondedContext& ctx, std::span<const int> idx,
                                 std::span<const Vec3> pos, std::span<Vec3> f,
                                 std::size_t i_begin, std::size_t i_end,
                                 WorkCounters& work) {
  assert(i_end <= idx.size());
  EnergyTerms e;
  for (std::size_t i = i_begin; i < i_end; ++i) {
    inner_loop(ctx, idx[i], pos[i], f[i], idx, pos, f, i + 1, e, work);
  }
  return e;
}

}  // namespace scalemd
