#pragma once

namespace scalemd {

/// NAMD-style smooth switching applied to the Lennard-Jones potential so that
/// energy and force both go to zero exactly at the cutoff. For
/// switch_dist <= r <= cutoff:
///   S(r) = (rc^2 - r^2)^2 (rc^2 + 2 r^2 - 3 rs^2) / (rc^2 - rs^2)^3
/// with S = 1 below switch_dist and S = 0 beyond the cutoff. The derivative
/// is continuous at both ends.
class SwitchFunction {
 public:
  /// Requires 0 < switch_dist < cutoff.
  SwitchFunction(double switch_dist, double cutoff);

  double switch_dist() const { return rs_; }
  double cutoff() const { return rc_; }

  /// S as a function of squared distance (kernels already have r^2).
  double value(double r2) const;

  /// dS/d(r^2); with the chain rule dS/dr = 2 r * dvalue_dr2.
  double dvalue_dr2(double r2) const;

 private:
  double rs_;
  double rc_;
  double rs2_;
  double rc2_;
  double inv_denom_;  ///< 1 / (rc^2 - rs^2)^3
};

/// Shifted electrostatics: E(r) = C q1 q2 / r * (1 - r^2/rc^2)^2, which is the
/// standard cutoff-electrostatics shift NAMD uses; both E and dE/dr vanish at
/// the cutoff. `shift_factor` returns the (1 - r^2/rc^2)^2 part and
/// `dshift_factor_dr2` its derivative with respect to r^2.
class ElecShift {
 public:
  explicit ElecShift(double cutoff);

  double shift_factor(double r2) const {
    const double t = 1.0 - r2 * inv_rc2_;
    return t * t;
  }
  double dshift_factor_dr2(double r2) const {
    return -2.0 * (1.0 - r2 * inv_rc2_) * inv_rc2_;
  }

 private:
  double inv_rc2_;
};

}  // namespace scalemd
