#pragma once

#include <cstdint>
#include <span>

#include "ff/switching.hpp"
#include "topo/exclusions.hpp"
#include "topo/parameters.hpp"
#include "util/vec3.hpp"

namespace scalemd {

/// Which implementation evaluates the cutoff non-bonded interactions. All
/// variants produce the same forces/energies (within summation-order
/// rounding) and identical WorkCounters; they differ only in layout and
/// parallelism (see ff/nonbonded_tiled.hpp).
enum class NonbondedKernel {
  kScalar,        ///< reference AoS loop, per-pair exclusion binary search
  kTiled,         ///< SoA tiles + precomputed exclusion bitmasks
  kTiledThreads,  ///< tiled kernel fanned across a thread pool
};

/// Full-electrostatics (smooth particle-mesh Ewald) parameters. When
/// `enabled`, the pairwise kernels swap the shifted-Coulomb factor for the
/// erfc(alpha r) Ewald screen and the engines add the grid-based reciprocal
/// sum, the self-energy, and the exclusion corrections (see src/ewald/).
/// Lives here (not in src/ewald/) so the option flows through
/// NonbondedOptions to every engine without a layering inversion.
struct FullElecOptions {
  bool enabled = false;
  double alpha = 0.35;  ///< Ewald splitting parameter, 1/A
  int grid_x = 32;      ///< PME grid dims; must be powers of two (radix-2 FFT)
  int grid_y = 32;
  int grid_z = 32;
  int order = 4;  ///< cardinal B-spline interpolation order, 2..8
};

/// Validates `fe` (when enabled): returns nullptr if usable, else a static
/// string naming the offending field. Used by scenario parsing and engine
/// setup so bad parameters become named errors, never asserts deep in the
/// FFT.
const char* full_elec_error(const FullElecOptions& fe);

/// Cutoff scheme parameters. The paper's benchmarks use a 12 A cutoff; we
/// default the switch distance to 10 A as NAMD does for that cutoff.
struct NonbondedOptions {
  double cutoff = 12.0;       ///< A
  double switch_dist = 10.0;  ///< A
  NonbondedKernel kernel = NonbondedKernel::kScalar;
  /// Worker count for kTiledThreads; 0 means ThreadPool::default_threads().
  int threads = 0;
  FullElecOptions full_elec;
};

/// Work performed by a kernel invocation, fed into the DES cost model.
/// `pairs_tested` counts distance evaluations; `pairs_computed` counts pairs
/// that fell inside the cutoff and had full force math applied.
struct WorkCounters {
  std::uint64_t pairs_tested = 0;
  std::uint64_t pairs_computed = 0;
  std::uint64_t bonded_terms = 0;
  std::uint64_t atoms_integrated = 0;

  WorkCounters& operator+=(const WorkCounters& o) {
    pairs_tested += o.pairs_tested;
    pairs_computed += o.pairs_computed;
    bonded_terms += o.bonded_terms;
    atoms_integrated += o.atoms_integrated;
    return *this;
  }
};

/// Accumulated potential-energy components of one evaluation.
struct EnergyTerms {
  double lj = 0.0;
  double elec = 0.0;
  double bond = 0.0;
  double angle = 0.0;
  double dihedral = 0.0;
  double improper = 0.0;

  double total() const { return lj + elec + bond + angle + dihedral + improper; }

  EnergyTerms& operator+=(const EnergyTerms& o) {
    lj += o.lj;
    elec += o.elec;
    bond += o.bond;
    angle += o.angle;
    dihedral += o.dihedral;
    improper += o.improper;
    return *this;
  }
};

/// Immutable per-system inputs shared by every non-bonded kernel call:
/// force-field parameters, exclusion table, per-atom charge/type arrays
/// (indexed by *global* atom id), and the cutoff scheme.
class NonbondedContext {
 public:
  /// All referenced objects must outlive the context. `params` must be
  /// finalized.
  NonbondedContext(const ParameterTable& params, const ExclusionTable& excl,
                   std::span<const double> charge, std::span<const int> lj_type,
                   const NonbondedOptions& opts);

  const ParameterTable& params() const { return *params_; }
  const ExclusionTable& exclusions() const { return *excl_; }
  double charge(int global) const { return charge_[static_cast<std::size_t>(global)]; }
  int lj_type(int global) const { return type_[static_cast<std::size_t>(global)]; }
  const NonbondedOptions& options() const { return opts_; }
  const SwitchFunction& switching() const { return switch_; }
  const ElecShift& elec_shift() const { return shift_; }
  double cutoff2() const { return cutoff2_; }

  /// Full-electrostatics mode: pairwise elec term is qq erfc(alpha r)/r
  /// instead of the shifted Coulomb. The reciprocal/self/exclusion pieces are
  /// the engines' responsibility (seq: SequentialEngine, parallel: PME slabs).
  bool full_elec() const { return fe_enabled_; }
  double fe_alpha() const { return fe_alpha_; }
  /// alpha/sqrt(pi), the d(erfc(alpha r))/d(r2) prefactor.
  double fe_alpha_over_sqrt_pi() const { return fe_alpha_spi_; }

 private:
  const ParameterTable* params_;
  const ExclusionTable* excl_;
  std::span<const double> charge_;
  std::span<const int> type_;
  NonbondedOptions opts_;
  SwitchFunction switch_;
  ElecShift shift_;
  double cutoff2_;
  bool fe_enabled_;
  double fe_alpha_;
  double fe_alpha_spi_;
};

/// Computes switched LJ + shifted electrostatic interactions between every
/// atom of set A and every atom of set B (the sets must be disjoint).
/// `idx_*` are global atom ids parallel to `pos_*`; forces are accumulated
/// into `f_*` (not zeroed). Returns the energy contribution.
EnergyTerms nonbonded_ab(const NonbondedContext& ctx, std::span<const int> idx_a,
                         std::span<const Vec3> pos_a, std::span<Vec3> f_a,
                         std::span<const int> idx_b, std::span<const Vec3> pos_b,
                         std::span<Vec3> f_b, WorkCounters& work);

/// As nonbonded_ab but restricted to outer-loop atoms a in [a_begin, a_end).
/// This is the unit of grain-size splitting for face-pair computes
/// (paper section 4.2.1).
EnergyTerms nonbonded_ab_range(const NonbondedContext& ctx, std::span<const int> idx_a,
                               std::span<const Vec3> pos_a, std::span<Vec3> f_a,
                               std::span<const int> idx_b,
                               std::span<const Vec3> pos_b, std::span<Vec3> f_b,
                               std::size_t a_begin, std::size_t a_end,
                               WorkCounters& work);

/// Interactions among all i < j pairs within one atom set.
EnergyTerms nonbonded_self(const NonbondedContext& ctx, std::span<const int> idx,
                           std::span<const Vec3> pos, std::span<Vec3> f,
                           WorkCounters& work);

/// Evaluates one candidate pair (global ids gi/gj at ri/rj): applies the
/// cutoff and exclusion checks, accumulates forces and energies on hit.
/// Returns true if the pair was inside the cutoff and unexcluded. The
/// pairlist evaluation path (seq/pairlist) drives the kernels pair-by-pair
/// through this entry.
bool nonbonded_pair_eval(const NonbondedContext& ctx, int gi, int gj,
                         const Vec3& ri, const Vec3& rj, Vec3& fi, Vec3& fj,
                         EnergyTerms& energy, WorkCounters& work);

/// As nonbonded_self but restricted to outer-loop atoms i in
/// [i_begin, i_end); pairs are (i, j) with j > i, so the union over a
/// partition of [0, n) covers every pair exactly once. This is the unit of
/// grain-size splitting for within-cube computes.
EnergyTerms nonbonded_self_range(const NonbondedContext& ctx, std::span<const int> idx,
                                 std::span<const Vec3> pos, std::span<Vec3> f,
                                 std::size_t i_begin, std::size_t i_end,
                                 WorkCounters& work);

}  // namespace scalemd
