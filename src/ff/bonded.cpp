#include "ff/bonded.hpp"

#include <algorithm>
#include <cmath>

namespace scalemd {

double bond_energy_force(const Vec3& ra, const Vec3& rb, const BondParam& p, Vec3& fa,
                         Vec3& fb) {
  const Vec3 dr = ra - rb;
  const double r = norm(dr);
  const double diff = r - p.r0;
  const double de_dr = 2.0 * p.k * diff;
  const Vec3 f = dr * (-de_dr / r);
  fa += f;
  fb -= f;
  return p.k * diff * diff;
}

double angle_energy_force(const Vec3& ra, const Vec3& rb, const Vec3& rc,
                          const AngleParam& p, Vec3& fa, Vec3& fb, Vec3& fc) {
  const Vec3 u = ra - rb;
  const Vec3 v = rc - rb;
  const double nu = norm(u);
  const double nv = norm(v);
  double cos_t = dot(u, v) / (nu * nv);
  cos_t = std::clamp(cos_t, -1.0, 1.0);
  const double theta = std::acos(cos_t);
  const double sin_t = std::max(std::sqrt(1.0 - cos_t * cos_t), 1e-8);

  const double diff = theta - p.theta0;
  const double de_dt = 2.0 * p.k * diff;

  const Vec3 u_hat = u / nu;
  const Vec3 v_hat = v / nv;
  // dtheta/dra = (cos(theta) u_hat - v_hat) / (|u| sin(theta)), symmetric in c.
  const Vec3 dt_da = (u_hat * cos_t - v_hat) * (1.0 / (nu * sin_t));
  const Vec3 dt_dc = (v_hat * cos_t - u_hat) * (1.0 / (nv * sin_t));
  const Vec3 f_a = dt_da * (-de_dt);
  const Vec3 f_c = dt_dc * (-de_dt);
  fa += f_a;
  fc += f_c;
  fb -= f_a + f_c;
  return p.k * diff * diff;
}

namespace {

/// Dihedral angle of the chain a-b-c-d and its gradient with respect to the
/// four positions (Blondel-Karplus construction). Returns phi in (-pi, pi].
struct DihedralGeometry {
  double phi = 0.0;
  Vec3 dphi_da, dphi_db, dphi_dc, dphi_dd;
};

DihedralGeometry dihedral_geometry(const Vec3& ra, const Vec3& rb, const Vec3& rc,
                                   const Vec3& rd) {
  const Vec3 b1 = rb - ra;
  const Vec3 b2 = rc - rb;
  const Vec3 b3 = rd - rc;
  const Vec3 m = cross(b1, b2);
  const Vec3 n = cross(b2, b3);
  const double nb2 = norm(b2);

  DihedralGeometry g;
  g.phi = std::atan2(dot(cross(m, n), b2) / nb2, dot(m, n));

  const double m2 = std::max(norm2(m), 1e-12);
  const double n2 = std::max(norm2(n), 1e-12);
  const Vec3 da = m * (-nb2 / m2);
  const Vec3 dd = n * (nb2 / n2);
  const double s12 = dot(b1, b2) / (nb2 * nb2);
  const double s32 = dot(b3, b2) / (nb2 * nb2);
  g.dphi_da = da;
  g.dphi_dd = dd;
  g.dphi_db = da * (-1.0 - s12) + dd * s32;
  g.dphi_dc = da * s12 - dd * (1.0 + s32);
  return g;
}

/// Applies -g_phi * dphi/dr to the four force accumulators.
void apply_dihedral_force(const DihedralGeometry& g, double de_dphi, Vec3& fa,
                          Vec3& fb, Vec3& fc, Vec3& fd) {
  fa += g.dphi_da * (-de_dphi);
  fb += g.dphi_db * (-de_dphi);
  fc += g.dphi_dc * (-de_dphi);
  fd += g.dphi_dd * (-de_dphi);
}

/// Wraps an angle difference into (-pi, pi].
double wrap_angle(double a) {
  while (a > M_PI) a -= 2.0 * M_PI;
  while (a <= -M_PI) a += 2.0 * M_PI;
  return a;
}

}  // namespace

double dihedral_energy_force(const Vec3& ra, const Vec3& rb, const Vec3& rc,
                             const Vec3& rd, const DihedralParam& p, Vec3& fa,
                             Vec3& fb, Vec3& fc, Vec3& fd) {
  const DihedralGeometry g = dihedral_geometry(ra, rb, rc, rd);
  const double arg = p.n * g.phi - p.delta;
  const double e = p.k * (1.0 + std::cos(arg));
  const double de_dphi = -p.k * p.n * std::sin(arg);
  apply_dihedral_force(g, de_dphi, fa, fb, fc, fd);
  return e;
}

double improper_energy_force(const Vec3& ra, const Vec3& rb, const Vec3& rc,
                             const Vec3& rd, const ImproperParam& p, Vec3& fa,
                             Vec3& fb, Vec3& fc, Vec3& fd) {
  const DihedralGeometry g = dihedral_geometry(ra, rb, rc, rd);
  const double diff = wrap_angle(g.phi - p.psi0);
  const double e = p.k * diff * diff;
  const double de_dphi = 2.0 * p.k * diff;
  apply_dihedral_force(g, de_dphi, fa, fb, fc, fd);
  return e;
}

EnergyTerms evaluate_bonds(const ParameterTable& params, std::span<const Bond> terms,
                           std::span<const Vec3> pos, std::span<Vec3> f,
                           WorkCounters& work) {
  EnergyTerms e;
  for (const auto& t : terms) {
    e.bond += bond_energy_force(pos[t.a], pos[t.b], params.bond(t.param), f[t.a],
                                f[t.b]);
  }
  work.bonded_terms += terms.size();
  return e;
}

EnergyTerms evaluate_angles(const ParameterTable& params, std::span<const Angle> terms,
                            std::span<const Vec3> pos, std::span<Vec3> f,
                            WorkCounters& work) {
  EnergyTerms e;
  for (const auto& t : terms) {
    e.angle += angle_energy_force(pos[t.a], pos[t.b], pos[t.c],
                                  params.angle(t.param), f[t.a], f[t.b], f[t.c]);
  }
  work.bonded_terms += terms.size();
  return e;
}

EnergyTerms evaluate_dihedrals(const ParameterTable& params,
                               std::span<const Dihedral> terms,
                               std::span<const Vec3> pos, std::span<Vec3> f,
                               WorkCounters& work) {
  EnergyTerms e;
  for (const auto& t : terms) {
    e.dihedral += dihedral_energy_force(pos[t.a], pos[t.b], pos[t.c], pos[t.d],
                                        params.dihedral(t.param), f[t.a], f[t.b],
                                        f[t.c], f[t.d]);
  }
  work.bonded_terms += terms.size();
  return e;
}

EnergyTerms evaluate_impropers(const ParameterTable& params,
                               std::span<const Improper> terms,
                               std::span<const Vec3> pos, std::span<Vec3> f,
                               WorkCounters& work) {
  EnergyTerms e;
  for (const auto& t : terms) {
    e.improper += improper_energy_force(pos[t.a], pos[t.b], pos[t.c], pos[t.d],
                                        params.improper(t.param), f[t.a], f[t.b],
                                        f[t.c], f[t.d]);
  }
  work.bonded_terms += terms.size();
  return e;
}

}  // namespace scalemd
