#include "trace/audit.hpp"

#include <algorithm>

#include "util/stats.hpp"
#include "util/table.hpp"

namespace scalemd {

AuditRow ideal_audit(double nonbonded_s, double bonds_s, double integration_s,
                     int num_pes, int steps) {
  const double scale = 1e3 / (static_cast<double>(num_pes) * steps);
  AuditRow r;
  r.nonbonded = nonbonded_s * scale;
  r.bonds = bonds_s * scale;
  r.integration = integration_s * scale;
  r.total = r.nonbonded + r.bonds + r.integration;
  return r;
}

AuditRow actual_audit(const SummaryProfile& profile, double window_seconds,
                      int num_pes, int steps) {
  const double per = 1e3 / (static_cast<double>(num_pes) * steps);  // ms/PE/step
  const auto busy = profile.busy_times();
  const Summary s = summarize(busy);

  AuditRow r;
  r.total = window_seconds * 1e3 / steps;
  r.receives = profile.total_recv_cost() * per;
  // Overhead: parallel-only CPU work — packing, send/enqueue overheads and
  // runtime communication entries (reductions, migration bookkeeping).
  r.overhead = (profile.total_pack_cost() + profile.total_send_cost() +
                profile.category_total(WorkCategory::kComm) +
                profile.category_total(WorkCategory::kOther)) *
               per;
  // Category totals include the send/pack/recv costs charged inside their
  // tasks; those seconds are already reported in the overhead and receives
  // columns, so remove them from the category split proportionally to avoid
  // double counting.
  const double nb = profile.category_total(WorkCategory::kNonbonded) * per;
  const double bonds = profile.category_total(WorkCategory::kBonded) * per;
  const double integ = profile.category_total(WorkCategory::kIntegration) * per;
  const double embedded =
      (profile.total_pack_cost() + profile.total_send_cost() +
       profile.total_recv_cost()) *
      per;
  const double cat_sum = std::max(nb + bonds + integ, 1e-12);
  const double keep = std::max(0.0, cat_sum - embedded) / cat_sum;
  r.nonbonded = nb * keep;
  r.bonds = bonds * keep;
  r.integration = integ * keep;

  const double avg_busy_ms = s.mean * 1e3 / steps;
  const double max_busy_ms = s.max * 1e3 / steps;
  r.imbalance = max_busy_ms - avg_busy_ms;
  r.idle = std::max(0.0, r.total - max_busy_ms);
  return r;
}

namespace {

std::vector<std::string> audit_table_row(const char* name, const AuditRow& r) {
  return {name,
          fmt_fixed(r.total, 2),
          fmt_fixed(r.nonbonded, 2),
          fmt_fixed(r.bonds, 2),
          fmt_fixed(r.integration, 2),
          fmt_fixed(r.overhead, 2),
          fmt_fixed(r.imbalance, 2),
          fmt_fixed(r.idle, 2),
          fmt_fixed(r.receives, 2)};
}

Table audit_table() {
  return Table({"", "Total", "Non-bonded", "Bonds", "Integration", "Overhead",
                "Imbalance", "Idle", "Receives"});
}

constexpr const char* kAuditHeader =
    "Time (milliseconds) per step, per processor\n";

}  // namespace

std::string render_audit(const AuditRow& ideal, const AuditRow& actual) {
  Table t = audit_table();
  t.add_row(audit_table_row("Ideal", ideal));
  t.add_row(audit_table_row("Actual", actual));
  return kAuditHeader + t.render();
}

std::string render_audit(const AuditRow& ideal, const AuditRow& modeled,
                         const AuditRow& measured) {
  Table t = audit_table();
  t.add_row(audit_table_row("Ideal", ideal));
  t.add_row(audit_table_row("Modeled", modeled));
  t.add_row(audit_table_row("Measured", measured));
  return kAuditHeader + t.render();
}

ResilienceStats resilience_stats(const FaultStats& faults,
                                 const ReliableStats* reliable,
                                 int checkpoints_taken, int restarts,
                                 double restart_latency) {
  ResilienceStats r;
  r.messages_dropped = faults.messages_dropped;
  r.messages_duplicated = faults.messages_duplicated;
  r.messages_delayed = faults.messages_delayed;
  r.pe_failures = faults.pe_failures;
  if (reliable != nullptr) {
    r.retries = reliable->retries;
    r.duplicates_suppressed = reliable->duplicates_suppressed;
    r.messages_abandoned = reliable->abandoned;
    r.abandoned_dead_pe = reliable->abandoned_dead_pe;
    r.abandoned_delivered = reliable->abandoned_delivered;
    r.abandoned_lost = reliable->abandoned_lost;
  }
  r.checkpoints_taken = checkpoints_taken;
  r.restarts = restarts;
  r.restart_latency = restart_latency;
  return r;
}

std::string render_resilience(const ResilienceStats& r) {
  Table t({"Recovery metric", "Value"});
  auto count = [&](const char* name, std::uint64_t v) {
    t.add_row({name, std::to_string(v)});
  };
  count("faults injected", r.faults_injected());
  count("  messages dropped", r.messages_dropped);
  count("  messages duplicated", r.messages_duplicated);
  count("  messages delayed", r.messages_delayed);
  count("  pe failures", static_cast<std::uint64_t>(r.pe_failures));
  count("retries", r.retries);
  count("duplicates suppressed", r.duplicates_suppressed);
  count("messages abandoned", r.messages_abandoned);
  count("  dest pe dead", r.abandoned_dead_pe);
  count("  delivered, acks lost", r.abandoned_delivered);
  count("  lost at live pe", r.abandoned_lost);
  count("checkpoints taken", static_cast<std::uint64_t>(r.checkpoints_taken));
  count("restarts", static_cast<std::uint64_t>(r.restarts));
  t.add_row({"restart latency (virtual s)", fmt_fixed(r.restart_latency, 6)});
  return t.render();
}

}  // namespace scalemd
