#pragma once

#include <string>
#include <vector>

namespace scalemd {

/// One failed physical or runtime invariant, reported by the validation
/// subsystem (src/check/). Carries everything a failure message needs: the
/// step it happened on, which invariant ("term") tripped, the measured
/// magnitude and the bound it exceeded.
struct ViolationRecord {
  int step = -1;           ///< simulation step / DES round; -1 = not step-bound
  std::string term;        ///< invariant name, e.g. "net-force", "energy-drift"
  double magnitude = 0.0;  ///< measured value that tripped the bound
  double bound = 0.0;      ///< configured bound
  std::string detail;      ///< human-readable context (what was compared)
};

/// Collector for invariant violations — the validation subsystem's analogue
/// of trace/event_log: checks append records here instead of aborting, so a
/// run can report every violated invariant (step, term, magnitude) at once.
class ViolationLog {
 public:
  void add(ViolationRecord r) { records_.push_back(std::move(r)); }

  bool empty() const { return records_.empty(); }
  std::size_t size() const { return records_.size(); }
  void clear() { records_.clear(); }

  const std::vector<ViolationRecord>& records() const { return records_; }

  /// All violations of one invariant term.
  std::vector<ViolationRecord> of_term(const std::string& term) const;

  /// Multi-line report, one violation per line:
  ///   step 12  net-force       |sum F| = 3.2e-04 exceeds 1.0e-08  (...)
  /// Empty string when no violations were recorded.
  std::string render() const;

 private:
  std::vector<ViolationRecord> records_;
};

}  // namespace scalemd
