#include "trace/grainsize.hpp"

#include <algorithm>
#include <cmath>

namespace scalemd {

Histogram grainsize_histogram(const EventLog& log, const EntryRegistry& registry,
                              WorkCategory category, int steps, double bin_ms,
                              double max_ms) {
  Histogram h(0.0, max_ms, static_cast<std::size_t>(std::ceil(max_ms / bin_ms)));
  // Accumulate counts per bin, then scale to per-step averages. Because the
  // Histogram stores integer counts we divide instance counts by `steps`
  // when adding, rounding by accumulating each task with weight 1 and
  // rebuilding. Simpler: build a raw histogram and divide at render time —
  // instead we add every task and divide counts via a second pass below.
  Histogram raw(0.0, max_ms, static_cast<std::size_t>(std::ceil(max_ms / bin_ms)));
  for (const TaskRecord& r : log.tasks()) {
    if (r.entry < registry.count() && registry.category(r.entry) == category) {
      raw.add(r.duration * 1e3);
    }
  }
  for (std::size_t b = 0; b < raw.bin_count(); ++b) {
    const std::size_t per_step =
        (raw.count(b) + static_cast<std::size_t>(steps) / 2) /
        static_cast<std::size_t>(std::max(1, steps));
    if (per_step > 0) {
      h.add(raw.bin_lo(b) + 0.5 * raw.bin_width(), per_step);
    }
  }
  return h;
}

}  // namespace scalemd
