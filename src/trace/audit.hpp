#pragma once

#include <string>

#include "trace/summary.hpp"

namespace scalemd {

/// One row of the paper's Table 1 performance audit. All values are
/// per-step, per-processor milliseconds.
struct AuditRow {
  double total = 0.0;
  double nonbonded = 0.0;
  double bonds = 0.0;
  double integration = 0.0;
  double overhead = 0.0;   ///< parallel-only CPU work: packing, sends, runtime
  double imbalance = 0.0;  ///< max PE load - average PE load
  double idle = 0.0;       ///< time even the busiest PE waits on dependencies
  double receives = 0.0;   ///< message receive overhead
};

/// The "Ideal" row: single-processor category times divided by P, assuming
/// perfect scaling and zero parallel overhead (exactly how the paper
/// computes it).
AuditRow ideal_audit(double nonbonded_s, double bonds_s, double integration_s,
                     int num_pes, int steps);

/// The "Actual" row, from a measurement window of `profile` spanning
/// `window_seconds` of virtual time over `steps` timesteps on `num_pes`
/// processors. Decomposition: total = avg busy (split into work categories +
/// overhead + receives) + imbalance + idle.
AuditRow actual_audit(const SummaryProfile& profile, double window_seconds,
                      int num_pes, int steps);

/// Renders the two rows as a Table 1-style text table (milliseconds).
std::string render_audit(const AuditRow& ideal, const AuditRow& actual);

}  // namespace scalemd
