#pragma once

#include <cstdint>
#include <string>

#include "des/fault.hpp"
#include "rts/reliable.hpp"
#include "trace/summary.hpp"

namespace scalemd {

/// One row of the paper's Table 1 performance audit. All values are
/// per-step, per-processor milliseconds.
struct AuditRow {
  double total = 0.0;
  double nonbonded = 0.0;
  double bonds = 0.0;
  double integration = 0.0;
  double overhead = 0.0;   ///< parallel-only CPU work: packing, sends, runtime
  double imbalance = 0.0;  ///< max PE load - average PE load
  double idle = 0.0;       ///< time even the busiest PE waits on dependencies
  double receives = 0.0;   ///< message receive overhead
};

/// The "Ideal" row: single-processor category times divided by P, assuming
/// perfect scaling and zero parallel overhead (exactly how the paper
/// computes it).
AuditRow ideal_audit(double nonbonded_s, double bonds_s, double integration_s,
                     int num_pes, int steps);

/// The "Actual" row, from a measurement window of `profile` spanning
/// `window_seconds` of virtual time over `steps` timesteps on `num_pes`
/// processors. Decomposition: total = avg busy (split into work categories +
/// overhead + receives) + imbalance + idle.
AuditRow actual_audit(const SummaryProfile& profile, double window_seconds,
                      int num_pes, int steps);

/// Renders the two rows as a Table 1-style text table (milliseconds).
std::string render_audit(const AuditRow& ideal, const AuditRow& actual);

/// Three-row variant for the modeled-vs-measured methodology: the ideal
/// bound, the DES-modeled run ("Modeled") and the threaded backend's
/// wall-clock run ("Measured"). Same columns, same units; the audit of a
/// measured run uses real seconds wherever the modeled one uses virtual.
std::string render_audit(const AuditRow& ideal, const AuditRow& modeled,
                         const AuditRow& measured);

/// Recovery metrics for a (possibly) faulted run: what the chaos engine
/// injected and what the resilient runtime did about it.
struct ResilienceStats {
  // Injected by the fault engine.
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_duplicated = 0;
  std::uint64_t messages_delayed = 0;
  int pe_failures = 0;
  // Recovery activity.
  std::uint64_t retries = 0;
  std::uint64_t duplicates_suppressed = 0;
  std::uint64_t messages_abandoned = 0;  ///< retry budget/dead-PE give-ups
  // Abandonment classification (sums to messages_abandoned): destination
  // dead (expected under PE failure), payload delivered but acks lost
  // (benign), or genuinely lost at a live PE (needs a restart to explain).
  std::uint64_t abandoned_dead_pe = 0;
  std::uint64_t abandoned_delivered = 0;
  std::uint64_t abandoned_lost = 0;
  int checkpoints_taken = 0;
  int restarts = 0;
  double restart_latency = 0.0;  ///< virtual seconds of re-executed work

  std::uint64_t faults_injected() const {
    return messages_dropped + messages_duplicated + messages_delayed +
           static_cast<std::uint64_t>(pe_failures);
  }
};

/// Assembles the recovery metrics from the fault engine's counters, the
/// reliable-delivery layer (nullptr when disabled) and the checkpoint
/// bookkeeping kept by the parallel runtime.
ResilienceStats resilience_stats(const FaultStats& faults,
                                 const ReliableStats* reliable,
                                 int checkpoints_taken, int restarts,
                                 double restart_latency);

/// Renders the recovery metrics as a two-column text table.
std::string render_resilience(const ResilienceStats& r);

}  // namespace scalemd
