#include "trace/timeline.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

namespace scalemd {

namespace {

char category_char(WorkCategory c) {
  switch (c) {
    case WorkCategory::kNonbonded:
      return 'N';
    case WorkCategory::kBonded:
      return 'B';
    case WorkCategory::kIntegration:
      return 'I';
    case WorkCategory::kComm:
      return 'c';
    case WorkCategory::kOther:
      return 'o';
  }
  return '?';
}

/// Priority when several categories overlap one slice: prefer showing the
/// rarer/most-informative work.
int category_rank(char c) {
  switch (c) {
    case 'I':
      return 5;
    case 'B':
      return 4;
    case 'c':
      return 3;
    case 'N':
      return 2;
    case 'o':
      return 1;
    default:
      return 0;
  }
}

/// Marker for fault/recovery overlays; '\0' = don't draw.
char fault_char(FaultKind k) {
  switch (k) {
    case FaultKind::kPeFailure:
      return 'X';
    case FaultKind::kMessageDrop:
    case FaultKind::kMessageDup:
    case FaultKind::kMessageDelay:
    case FaultKind::kPeSlowdown:
      return '!';
    case FaultKind::kRetry:
    case FaultKind::kCheckpoint:
    case FaultKind::kRestart:
    case FaultKind::kEvacuation:
      return '+';
    default:
      return '\0';  // dedup-suppress / message-lost: too chatty to draw
  }
}

int fault_rank(char c) { return c == 'X' ? 3 : c == '!' ? 2 : c == '+' ? 1 : 0; }

}  // namespace

std::string render_timeline(const EventLog& log, const EntryRegistry& registry,
                            const TimelineOptions& opts) {
  double t1 = opts.t1;
  if (t1 <= opts.t0) {
    for (const TaskRecord& r : log.tasks()) {
      t1 = std::max(t1, r.start + r.duration);
    }
  }
  const double span = std::max(t1 - opts.t0, 1e-12);
  const double slice = span / opts.width;

  std::vector<std::string> rows(static_cast<std::size_t>(opts.num_pes),
                                std::string(static_cast<std::size_t>(opts.width), '.'));

  for (const TaskRecord& r : log.tasks()) {
    if (r.pe < opts.first_pe || r.pe >= opts.first_pe + opts.num_pes) continue;
    const double a = std::max(r.start, opts.t0);
    const double b = std::min(r.start + r.duration, t1);
    if (b <= a) continue;
    const char ch =
        r.entry < registry.count() ? category_char(registry.category(r.entry)) : 'o';
    auto& row = rows[static_cast<std::size_t>(r.pe - opts.first_pe)];
    const int c0 = std::clamp(static_cast<int>((a - opts.t0) / slice), 0, opts.width - 1);
    const int c1 =
        std::clamp(static_cast<int>((b - opts.t0) / slice), c0, opts.width - 1);
    for (int c = c0; c <= c1; ++c) {
      auto& cell = row[static_cast<std::size_t>(c)];
      if (category_rank(ch) > category_rank(cell)) cell = ch;
    }
  }

  // Faults and recovery actions overlay the work: a failed PE is marked at
  // the instant it dies; injected message faults and recovery events are
  // point markers on the affected PE's row.
  std::size_t faults_drawn = 0;
  for (const FaultRecord& r : log.faults()) {
    if (r.pe < opts.first_pe || r.pe >= opts.first_pe + opts.num_pes) continue;
    if (r.time < opts.t0 || r.time > t1) continue;
    const char ch = fault_char(r.kind);
    if (ch == '\0') continue;
    ++faults_drawn;
    auto& row = rows[static_cast<std::size_t>(r.pe - opts.first_pe)];
    const int c =
        std::clamp(static_cast<int>((r.time - opts.t0) / slice), 0, opts.width - 1);
    auto& cell = row[static_cast<std::size_t>(c)];
    if (fault_rank(ch) >= fault_rank(cell)) cell = ch;
  }

  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(1);
  os << "timeline" << (opts.wall_clock ? " (wall clock)" : "") << " "
     << opts.t0 * 1e3 << " ms .. " << t1 * 1e3 << " ms  (" << slice * 1e3
     << " ms/char)\n";
  os << "legend: N non-bonded  B bonded  I integration  c comm  o other  . idle\n";
  if (faults_drawn > 0) {
    os << "faults: X pe-failure  ! injected fault  + recovery\n";
  }
  for (int pe = 0; pe < opts.num_pes; ++pe) {
    os << "pe" << (opts.first_pe + pe);
    const int label = opts.first_pe + pe;
    // Pad to fixed label width.
    for (int pad = label >= 1000 ? 0 : label >= 100 ? 1 : label >= 10 ? 2 : 3;
         pad > 0; --pad) {
      os << ' ';
    }
    os << '|' << rows[static_cast<std::size_t>(pe)] << "|\n";
  }
  return os.str();
}

}  // namespace scalemd
