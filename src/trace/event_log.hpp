#pragma once

#include <vector>

#include "des/trace_sink.hpp"
#include "util/histogram.hpp"

namespace scalemd {

/// The paper's third instrumentation level (the Projections trace): every
/// task execution and message delivery, kept in memory. Intended for short
/// runs ("shorter runs with tens of timesteps are used when full traces are
/// desired"). Source for the grain-size histograms (Figures 1-2) and the
/// timeline views (Figures 3-4).
class EventLog final : public TraceSink {
 public:
  void on_task(const TaskRecord& r) override { tasks_.push_back(r); }
  void on_message(const MsgRecord& r) override { messages_.push_back(r); }
  void on_fault(const FaultRecord& r) override { faults_.push_back(r); }

  void clear() {
    tasks_.clear();
    messages_.clear();
    faults_.clear();
  }

  const std::vector<TaskRecord>& tasks() const { return tasks_; }
  const std::vector<MsgRecord>& messages() const { return messages_; }
  /// Injected faults and recovery actions, in emission order.
  const std::vector<FaultRecord>& faults() const { return faults_; }

  /// Tasks of one entry within [t0, t1).
  std::vector<TaskRecord> tasks_of(EntryId entry, double t0, double t1) const;

  /// Faults/recoveries of one kind (e.g. all checkpoints).
  std::vector<FaultRecord> faults_of(FaultKind kind) const;

 private:
  std::vector<TaskRecord> tasks_;
  std::vector<MsgRecord> messages_;
  std::vector<FaultRecord> faults_;
};

}  // namespace scalemd
