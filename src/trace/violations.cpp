#include "trace/violations.hpp"

#include <cstdio>

namespace scalemd {

std::vector<ViolationRecord> ViolationLog::of_term(const std::string& term) const {
  std::vector<ViolationRecord> out;
  for (const ViolationRecord& r : records_) {
    if (r.term == term) out.push_back(r);
  }
  return out;
}

std::string ViolationLog::render() const {
  std::string out;
  char line[256];
  for (const ViolationRecord& r : records_) {
    std::snprintf(line, sizeof(line), "step %-6d %-20s magnitude %.6e exceeds %.6e",
                  r.step, r.term.c_str(), r.magnitude, r.bound);
    out += line;
    if (!r.detail.empty()) {
      out += "  (";
      out += r.detail;
      out += ')';
    }
    out += '\n';
  }
  return out;
}

}  // namespace scalemd
