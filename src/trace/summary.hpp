#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "des/simulator.hpp"
#include "des/trace_sink.hpp"

namespace scalemd {

/// The paper's second instrumentation level: per-entry-method accumulated
/// times plus per-PE busy time, with negligible overhead ("summary profiles
/// are smaller, since there are typically only dozens ... of entry methods").
/// Supports windowed measurement via reset() so the load balancer and the
/// audit can look at a span of steps.
class SummaryProfile final : public TraceSink {
 public:
  /// `registry` must outlive the profile; `num_pes` sizes per-PE arrays.
  SummaryProfile(const EntryRegistry& registry, int num_pes);

  void on_task(const TaskRecord& r) override;
  void on_message(const MsgRecord& r) override;

  /// Clears all accumulated data (start of a measurement window).
  void reset();

  struct EntryStats {
    std::uint64_t count = 0;
    double total = 0.0;
    double max_duration = 0.0;
  };

  /// Stats for one entry; zeros if it never ran in this window.
  EntryStats entry(EntryId id) const {
    return static_cast<std::size_t>(id) < entries_.size()
               ? entries_[static_cast<std::size_t>(id)]
               : EntryStats{};
  }

  /// Sum of task time whose entry belongs to `cat`, across all PEs.
  double category_total(WorkCategory cat) const;

  /// Busy time of `pe` within the window.
  double pe_busy(int pe) const { return pe_busy_[static_cast<std::size_t>(pe)]; }
  std::vector<double> busy_times() const { return pe_busy_; }

  double total_recv_cost() const { return recv_cost_; }
  double total_pack_cost() const { return pack_cost_; }
  double total_send_cost() const { return send_cost_; }
  std::uint64_t messages() const { return messages_; }
  std::uint64_t message_bytes() const { return message_bytes_; }

  /// Marks this profile as holding measured wall-clock durations (threaded
  /// backend) rather than DES-modeled virtual time; render() labels its
  /// output accordingly. The accumulators are clock-agnostic either way.
  void set_wall_clock(bool wall) { wall_clock_ = wall; }
  bool wall_clock() const { return wall_clock_; }

  /// Human-readable profile: one line per entry method, sorted by total
  /// time descending.
  std::string render() const;

 private:
  const EntryRegistry* registry_;
  bool wall_clock_ = false;
  std::vector<EntryStats> entries_;
  std::vector<double> pe_busy_;
  double recv_cost_ = 0.0;
  double pack_cost_ = 0.0;
  double send_cost_ = 0.0;
  std::uint64_t messages_ = 0;
  std::uint64_t message_bytes_ = 0;
};

}  // namespace scalemd
