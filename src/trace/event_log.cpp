#include "trace/event_log.hpp"

namespace scalemd {

std::vector<TaskRecord> EventLog::tasks_of(EntryId entry, double t0, double t1) const {
  std::vector<TaskRecord> out;
  for (const TaskRecord& r : tasks_) {
    if (r.entry == entry && r.start >= t0 && r.start < t1) out.push_back(r);
  }
  return out;
}

std::vector<FaultRecord> EventLog::faults_of(FaultKind kind) const {
  std::vector<FaultRecord> out;
  for (const FaultRecord& r : faults_) {
    if (r.kind == kind) out.push_back(r);
  }
  return out;
}

}  // namespace scalemd
