#pragma once

#include <string>

#include "des/simulator.hpp"
#include "trace/event_log.hpp"

namespace scalemd {

/// Options for the ASCII timeline view (our stand-in for the Projections
/// "Upshot-style" timeline of Figures 3 and 4).
struct TimelineOptions {
  double t0 = 0.0;        ///< window start (virtual seconds)
  double t1 = 0.0;        ///< window end; 0 means "until the last task"
  int first_pe = 0;       ///< first PE row
  int num_pes = 8;        ///< number of PE rows
  int width = 100;        ///< characters across the time window
  /// Label the window as measured wall-clock time (threaded backend traces)
  /// instead of DES virtual time. Purely cosmetic: the record timestamps are
  /// already in whichever clock the backend runs on.
  bool wall_clock = false;
};

/// Renders one character column per time slice for each PE row. The
/// character encodes the dominant work category in the slice:
/// 'N' non-bonded, 'B' bonded, 'I' integration/coordinates, 'c' runtime
/// communication, 'o' other, '.' idle. A header with the window bounds and a
/// legend are included.
std::string render_timeline(const EventLog& log, const EntryRegistry& registry,
                            const TimelineOptions& opts);

}  // namespace scalemd
