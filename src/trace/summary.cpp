#include "trace/summary.hpp"

#include <algorithm>
#include <sstream>

namespace scalemd {

SummaryProfile::SummaryProfile(const EntryRegistry& registry, int num_pes)
    : registry_(&registry), pe_busy_(static_cast<std::size_t>(num_pes), 0.0) {}

void SummaryProfile::on_task(const TaskRecord& r) {
  if (static_cast<std::size_t>(r.entry) >= entries_.size()) {
    entries_.resize(static_cast<std::size_t>(r.entry) + 1);
  }
  EntryStats& e = entries_[static_cast<std::size_t>(r.entry)];
  ++e.count;
  e.total += r.duration;
  e.max_duration = std::max(e.max_duration, r.duration);
  pe_busy_[static_cast<std::size_t>(r.pe)] += r.duration;
  recv_cost_ += r.recv_cost;
  pack_cost_ += r.pack_cost;
  send_cost_ += r.send_cost;
}

void SummaryProfile::on_message(const MsgRecord& r) {
  ++messages_;
  message_bytes_ += r.bytes;
}

void SummaryProfile::reset() {
  entries_.clear();
  std::fill(pe_busy_.begin(), pe_busy_.end(), 0.0);
  recv_cost_ = 0.0;
  pack_cost_ = 0.0;
  send_cost_ = 0.0;
  messages_ = 0;
  message_bytes_ = 0;
}

double SummaryProfile::category_total(WorkCategory cat) const {
  double sum = 0.0;
  for (std::size_t id = 0; id < entries_.size(); ++id) {
    if (static_cast<int>(id) < registry_->count() &&
        registry_->category(static_cast<EntryId>(id)) == cat) {
      sum += entries_[id].total;
    }
  }
  return sum;
}

std::string SummaryProfile::render() const {
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].count > 0) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return entries_[a].total > entries_[b].total;
  });
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(6);
  if (wall_clock_) os << "summary (wall clock)\n";
  for (std::size_t i : order) {
    const std::string& name = static_cast<int>(i) < registry_->count()
                                  ? registry_->name(static_cast<EntryId>(i))
                                  : "<unregistered>";
    os << name << ": count " << entries_[i].count << ", total " << entries_[i].total
       << " s, max " << entries_[i].max_duration << " s\n";
  }
  return os.str();
}

}  // namespace scalemd
