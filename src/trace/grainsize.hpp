#pragma once

#include "des/simulator.hpp"
#include "trace/event_log.hpp"
#include "util/histogram.hpp"

namespace scalemd {

/// Builds the grain-size distribution of task durations (Figures 1 and 2):
/// how many task instances of the given work category ran with each
/// duration, averaged per timestep. Durations are binned in milliseconds.
///
/// `steps` divides the raw instance counts so the histogram reads "tasks per
/// average timestep" exactly as the paper's figures do.
Histogram grainsize_histogram(const EventLog& log, const EntryRegistry& registry,
                              WorkCategory category, int steps,
                              double bin_ms = 2.0, double max_ms = 60.0);

}  // namespace scalemd
