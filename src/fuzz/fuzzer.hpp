#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/differential.hpp"
#include "fuzz/scenario.hpp"
#include "fuzz/shrink.hpp"

namespace scalemd {

struct FuzzOptions {
  int cases = 100;
  std::uint64_t seed = 1;
  /// Stop starting new cases after this much wall time (0 = no budget).
  double time_budget_s = 0.0;
  /// Arm the hidden arrival-order defect in every generated spec (self-test).
  bool inject_defect = false;
  /// Where failing repro files are written ("" = don't write files).
  std::string out_dir = ".";
  /// Evaluation budget for shrinking each failure.
  int shrink_evals = 80;
  /// Progress lines to stderr.
  bool verbose = false;
};

/// One caught failure: the spec as generated, its greedy minimization, the
/// oracle both of them trip, and the repro file (if written).
struct FuzzFailure {
  int case_index = 0;
  ScenarioSpec original;
  ScenarioSpec shrunk;
  std::string oracle;
  std::string detail;       ///< shrunk spec's failure detail
  int shrink_evals = 0;
  std::string repro_path;   ///< "" when out_dir was empty or writing failed
};

struct FuzzReport {
  int cases_run = 0;
  std::vector<FuzzFailure> failures;
  bool ok() const { return failures.empty(); }
};

/// The campaign: generate spec i, evaluate, shrink failures, write repros.
FuzzReport run_fuzz(const FuzzOptions& opts);

/// A standalone repro file: the shrunk scenario serialization plus an
/// `expect <oracle>` line recording which oracle must re-fire, with the
/// original spec retained in comments for context.
std::string render_repro(const FuzzFailure& failure);

/// Replays a repro file: parses it (including the expected oracle),
/// re-evaluates, and reports. Returns true when the recorded oracle fires
/// again (the repro reproduces); `message` explains either way. A repro
/// that parses but now passes, or fails with a different oracle, returns
/// false.
bool replay_repro(const std::string& text, const std::string& file,
                  std::string& message);

/// Self-test of the whole harness: runs a campaign with the hidden
/// arrival-order defect injected and asserts (a) at least one case fails,
/// (b) its shrunk spec still fails with the same oracle, (c) the rendered
/// repro replays to that oracle. Returns 0 on success, 1 with a diagnostic
/// on `message` otherwise.
int run_self_test(std::uint64_t seed, int max_cases, std::string& message);

}  // namespace scalemd
