#include "fuzz/scenario.hpp"

#include <cstdio>
#include <sstream>

#include "util/random.hpp"

namespace scalemd {

const char* lb_strategy_name(LbStrategyKind kind) {
  switch (kind) {
    case LbStrategyKind::kNone:         return "none";
    case LbStrategyKind::kRandom:       return "random";
    case LbStrategyKind::kGreedyNoComm: return "greedy-nocomm";
    case LbStrategyKind::kGreedy:       return "greedy";
    case LbStrategyKind::kGreedyRefine: return "greedy-refine";
    case LbStrategyKind::kDiffusion:    return "diffusion";
  }
  return "unknown";
}

const char* nonbonded_kernel_name(NonbondedKernel kernel) {
  switch (kernel) {
    case NonbondedKernel::kScalar:       return "scalar";
    case NonbondedKernel::kTiled:        return "tiled";
    case NonbondedKernel::kTiledThreads: return "tiled-threads";
  }
  return "unknown";
}

namespace {

bool lb_from_name(const std::string& name, LbStrategyKind& out) {
  for (LbStrategyKind k :
       {LbStrategyKind::kNone, LbStrategyKind::kRandom,
        LbStrategyKind::kGreedyNoComm, LbStrategyKind::kGreedy,
        LbStrategyKind::kGreedyRefine, LbStrategyKind::kDiffusion}) {
    if (name == lb_strategy_name(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

bool kernel_from_name(const std::string& name, NonbondedKernel& out) {
  for (NonbondedKernel k :
       {NonbondedKernel::kScalar, NonbondedKernel::kTiled,
        NonbondedKernel::kTiledThreads}) {
    if (name == nonbonded_kernel_name(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

bool kind_from_name(const std::string& name, TestSystemKind& out) {
  for (TestSystemKind k :
       {TestSystemKind::kWaterBox, TestSystemKind::kSolvatedChain,
        TestSystemKind::kMembranePatch}) {
    if (name == test_system_kind_name(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

std::string g17(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

ScenarioSpec generate_scenario(std::uint64_t master_seed, int index) {
  Rng rng(Rng::derive(master_seed, static_cast<std::uint64_t>(index) + 1));
  ScenarioSpec s;
  s.seed = rng.split("system").seed();

  constexpr TestSystemKind kKinds[] = {TestSystemKind::kWaterBox,
                                       TestSystemKind::kSolvatedChain,
                                       TestSystemKind::kMembranePatch};
  s.kind = kKinds[rng.uniform_index(3)];
  s.box = 10.0 + rng.uniform() * 8.0;  // [10, 18): 2-4 patches per side
  s.chain_beads = 8 + static_cast<int>(rng.uniform_index(25));

  constexpr int kPes[] = {2, 4, 6, 8};
  s.num_pes = kPes[rng.uniform_index(4)];
  constexpr int kThreads[] = {1, 2, 4};
  s.threads = kThreads[rng.uniform_index(3)];

  constexpr LbStrategyKind kLbs[] = {
      LbStrategyKind::kNone,   LbStrategyKind::kRandom,
      LbStrategyKind::kGreedyNoComm, LbStrategyKind::kGreedy,
      LbStrategyKind::kGreedyRefine, LbStrategyKind::kDiffusion};
  s.lb = kLbs[rng.uniform_index(6)];

  // kTiledThreads is excluded: every spec also runs on the threaded backend,
  // where the runtime forbids it (nested thread pools; see the ParallelSim
  // constructor assert). validate_scenario enforces the same rule.
  constexpr NonbondedKernel kKernels[] = {NonbondedKernel::kScalar,
                                          NonbondedKernel::kTiled};
  s.kernel = kKernels[rng.uniform_index(2)];

  s.dt_fs = rng.uniform() < 0.5 ? 0.5 : 1.0;
  s.cycles = 1 + static_cast<int>(rng.uniform_index(3));
  s.steps = 1 + static_cast<int>(rng.uniform_index(3));

  // About half the cases get message chaos; PE failures additionally need
  // enough survivors for evacuation, and always a checkpoint to restart from.
  if (rng.uniform() < 0.5) {
    s.drop_prob = rng.uniform() * 0.03;
    s.dup_prob = rng.uniform() * 0.02;
    s.delay_prob = rng.uniform() * 0.06;
    s.delay_max = s.delay_prob > 0.0 ? 1e-4 + rng.uniform() * 2e-4 : 0.0;
  }
  if (s.num_pes >= 4 && rng.uniform() < 0.35) {
    ScenarioFailure f;
    f.pe = static_cast<int>(rng.uniform_index(static_cast<std::size_t>(s.num_pes)));
    f.at_frac = 0.2 + rng.uniform() * 0.6;
    s.failures.push_back(f);
  }
  if (s.has_faults()) {
    s.checkpoint_every =
        s.failures.empty() ? static_cast<int>(rng.uniform_index(3)) : 1;
  }

  // A quarter of the campaign also crosses the forked-process backend.
  // Drawn last so the axis does not reshuffle the draws above (existing
  // repro seeds keep their system/fault shape).
  if (rng.uniform() < 0.25) {
    constexpr int kWorkers[] = {1, 2, 3};
    s.process_workers = kWorkers[rng.uniform_index(3)];
  }

  // A fifth of the campaign also crosses the serve layer: the spec becomes a
  // small replica batch scheduled on a few workers with forced preemption.
  // Drawn after the process axis, same rationale: older repro seeds keep
  // their shape.
  if (rng.uniform() < 0.2) {
    s.serve_jobs = 2 + static_cast<int>(rng.uniform_index(3));
    s.serve_workers = 1 + static_cast<int>(rng.uniform_index(3));
    s.serve_preempt_every = static_cast<int>(rng.uniform_index(3));
  }

  // Roughly a third of the campaign runs with full electrostatics, crossing
  // the parallel-PME pipeline with whatever faults/backends the draws above
  // produced. Drawn last, same rationale: older repro seeds keep their shape.
  if (rng.uniform() < 0.3) {
    s.full_elec = true;
    s.pme_slabs = 1 + static_cast<int>(rng.uniform_index(4));
    if (rng.uniform() < 0.25) s.pme_dedicated = 1;
  }
  return s;
}

std::string validate_scenario(const ScenarioSpec& s) {
  // Double ranges are written as negated conjunctions so a NaN smuggled in
  // through a parsed file fails the check instead of slipping past both
  // one-sided comparisons.
  if (!(s.box >= 8.0 && s.box <= 40.0)) return "box must be in [8, 40] A";
  if (s.chain_beads < 4 || s.chain_beads > 200) {
    return "chain-beads must be in [4, 200]";
  }
  if (s.num_pes < 1 || s.num_pes > 64) return "pes must be in [1, 64]";
  if (s.kernel == NonbondedKernel::kTiledThreads) {
    return "kernel tiled-threads nests thread pools under the threaded "
           "backend; use tiled";
  }
  if (s.threads < 1 || s.threads > 16) return "threads must be in [1, 16]";
  if (s.process_workers < 0 || s.process_workers > 8) {
    return "process-workers must be in [0, 8]";
  }
  if (!(s.dt_fs > 0.0 && s.dt_fs <= 2.0)) return "dt must be in (0, 2] fs";
  if (s.cycles < 1 || s.cycles > 10) return "cycles must be in [1, 10]";
  if (s.steps < 1 || s.steps > 10) return "steps must be in [1, 10]";
  if (!(s.drop_prob >= 0.0 && s.drop_prob <= 0.2)) {
    return "drop must be in [0, 0.2]";
  }
  if (!(s.dup_prob >= 0.0 && s.dup_prob <= 0.2)) {
    return "dup must be in [0, 0.2]";
  }
  if (!(s.delay_prob >= 0.0 && s.delay_prob <= 0.2)) {
    return "delay probability must be in [0, 0.2]";
  }
  if (!(s.delay_max >= 0.0 && s.delay_max <= 1.0)) {
    return "delay max must be in [0, 1] s";
  }
  if (s.checkpoint_every < 0 || s.checkpoint_every > 10) {
    return "checkpoint must be in [0, 10]";
  }
  if (s.serve_jobs != 0 && (s.serve_jobs < 2 || s.serve_jobs > 8)) {
    return "serve-jobs must be 0 or in [2, 8]";
  }
  if (s.serve_workers < 1 || s.serve_workers > 8) {
    return "serve-workers must be in [1, 8]";
  }
  if (s.serve_preempt_every < 0 || s.serve_preempt_every > 8) {
    return "serve-preempt must be in [0, 8]";
  }
  if (s.pme_slabs < 1 || s.pme_slabs > 8) {
    return "pme-slabs must be in [1, 8]";
  }
  if (s.pme_dedicated < 0 || s.pme_dedicated > s.num_pes) {
    return "pme-dedicated must be in [0, pes]";
  }
  for (const ScenarioFailure& f : s.failures) {
    if (f.pe < 0 || f.pe >= s.num_pes) return "failure pe out of range";
    if (!(f.at_frac > 0.0 && f.at_frac < 1.0)) {
      return "failure time fraction must be in (0, 1)";
    }
  }
  if (!s.failures.empty()) {
    if (s.num_pes < 4) return "failures need at least 4 pes to evacuate onto";
    if (s.checkpoint_every < 1) return "failures need checkpoint >= 1";
  }
  return "";
}

std::string serialize_scenario(const ScenarioSpec& s) {
  std::string out;
  const auto line = [&out](const std::string& text) {
    out += text;
    out += '\n';
  };
  line("seed " + std::to_string(s.seed));
  line(std::string("system ") + test_system_kind_name(s.kind));
  line("box " + g17(s.box));
  line("chain-beads " + std::to_string(s.chain_beads));
  line("pes " + std::to_string(s.num_pes));
  line("threads " + std::to_string(s.threads));
  if (s.process_workers > 0) {
    line("process-workers " + std::to_string(s.process_workers));
  }
  line(std::string("lb ") + lb_strategy_name(s.lb));
  line(std::string("kernel ") + nonbonded_kernel_name(s.kernel));
  line("dt " + g17(s.dt_fs));
  line("cycles " + std::to_string(s.cycles));
  line("steps " + std::to_string(s.steps));
  if (s.has_message_faults()) {
    line("drop " + g17(s.drop_prob));
    line("dup " + g17(s.dup_prob));
    line("delay " + g17(s.delay_prob) + " " + g17(s.delay_max));
  }
  for (const ScenarioFailure& f : s.failures) {
    line("fail " + std::to_string(f.pe) + " " + g17(f.at_frac));
  }
  if (s.checkpoint_every > 0) {
    line("checkpoint " + std::to_string(s.checkpoint_every));
  }
  if (s.serve_jobs > 0) {
    line("serve-jobs " + std::to_string(s.serve_jobs));
    line("serve-workers " + std::to_string(s.serve_workers));
    line("serve-preempt " + std::to_string(s.serve_preempt_every));
  }
  if (s.full_elec) line("full-elec 1");
  if (s.pme_slabs != 4) line("pme-slabs " + std::to_string(s.pme_slabs));
  if (s.pme_dedicated != 0) {
    line("pme-dedicated " + std::to_string(s.pme_dedicated));
  }
  if (s.inject_defect) line("defect arrival-order");
  return out;
}

DirectiveStatus apply_scenario_directive(const std::string& raw_in,
                                         ScenarioSpec& out,
                                         std::string& reason) {
  std::string raw = raw_in;
  const std::size_t hash = raw.find('#');
  if (hash != std::string::npos) raw.erase(hash);
  std::istringstream line(raw);
  std::string key;
  if (!(line >> key)) return DirectiveStatus::kApplied;

  bool bad = false;
  const auto fail = [&](std::string why) {
    reason = std::move(why);
    bad = true;
    return false;
  };
  const auto want_number = [&](const char* what, double& value) {
    if (!(line >> value)) {
      return fail(std::string("'") + key + "' needs a numeric " + what);
    }
    return true;
  };
  const auto want_count = [&](const char* what, int& value) {
    double v = 0.0;
    if (!want_number(what, v)) return false;
    value = static_cast<int>(v);
    return true;
  };
  const auto want_word = [&](const char* what, std::string& value) {
    if (!(line >> value)) {
      return fail(std::string("'") + key + "' needs a " + what);
    }
    return true;
  };

  if (key == "seed") {
    // Read as an integer, not via want_number: a 64-bit seed does not
    // round-trip through a double.
    std::uint64_t v = 0;
    if (!(line >> v)) {
      fail("'seed' needs a non-negative integer");
    } else {
      out.seed = v;
    }
  } else if (key == "system") {
    std::string name;
    if (want_word("system name", name) && !kind_from_name(name, out.kind)) {
      fail("unknown system '" + name + "'");
    }
  } else if (key == "box") {
    want_number("edge length", out.box);
  } else if (key == "chain-beads") {
    want_count("count", out.chain_beads);
  } else if (key == "pes") {
    want_count("count", out.num_pes);
  } else if (key == "threads") {
    want_count("count", out.threads);
  } else if (key == "process-workers") {
    want_count("count", out.process_workers);
  } else if (key == "serve-jobs") {
    want_count("count", out.serve_jobs);
  } else if (key == "serve-workers") {
    want_count("count", out.serve_workers);
  } else if (key == "serve-preempt") {
    want_count("cadence", out.serve_preempt_every);
  } else if (key == "lb") {
    std::string name;
    if (want_word("strategy name", name) && !lb_from_name(name, out.lb)) {
      fail("unknown lb strategy '" + name + "'");
    }
  } else if (key == "kernel") {
    std::string name;
    if (want_word("kernel name", name) && !kernel_from_name(name, out.kernel)) {
      fail("unknown kernel '" + name + "'");
    }
  } else if (key == "dt") {
    want_number("femtoseconds", out.dt_fs);
  } else if (key == "cycles") {
    want_count("count", out.cycles);
  } else if (key == "steps") {
    want_count("count", out.steps);
  } else if (key == "drop" || key == "dup") {
    double p = 0.0;
    if (want_number("probability", p)) {
      (key == "drop" ? out.drop_prob : out.dup_prob) = p;
    }
  } else if (key == "delay") {
    if (want_number("probability", out.delay_prob)) {
      want_number("max seconds", out.delay_max);
    }
  } else if (key == "fail") {
    double pe = 0.0, frac = 0.0;
    if (want_number("pe", pe) && want_number("time fraction", frac)) {
      out.failures.push_back({static_cast<int>(pe), frac});
    }
  } else if (key == "checkpoint") {
    want_count("cadence", out.checkpoint_every);
  } else if (key == "full-elec") {
    int v = 0;
    if (want_count("0/1 flag", v)) out.full_elec = v != 0;
  } else if (key == "pme-slabs") {
    want_count("count", out.pme_slabs);
  } else if (key == "pme-dedicated") {
    want_count("count", out.pme_dedicated);
  } else if (key == "defect") {
    std::string name;
    if (want_word("defect name", name)) {
      if (name != "arrival-order") {
        fail("unknown defect '" + name + "'");
      } else {
        out.inject_defect = true;
      }
    }
  } else {
    reason = key;
    return DirectiveStatus::kUnknownKey;
  }
  return bad ? DirectiveStatus::kBadValue : DirectiveStatus::kApplied;
}

bool parse_scenario(const std::string& text, const std::string& file,
                    ScenarioSpec& spec, FaultPlanParseError& error) {
  ScenarioSpec out;
  out.lb = LbStrategyKind::kNone;  // schema default, as in a fresh spec
  std::istringstream stream(text);
  std::string raw;
  int lineno = 0;

  const auto fail = [&](int line, std::string reason) {
    error.file = file;
    error.line = line;
    error.reason = std::move(reason);
    return false;
  };

  while (std::getline(stream, raw)) {
    ++lineno;
    std::string reason;
    switch (apply_scenario_directive(raw, out, reason)) {
      case DirectiveStatus::kApplied:
        break;
      case DirectiveStatus::kBadValue:
        return fail(lineno, reason);
      case DirectiveStatus::kUnknownKey:
        // `expect <oracle>` is consumed by the repro replayer (fuzzer.cpp);
        // transparent here so a repro file is itself a parseable scenario.
        if (reason != "expect") {
          return fail(lineno, "unknown directive '" + reason + "'");
        }
        break;
    }
  }

  const std::string invalid = validate_scenario(out);
  if (!invalid.empty()) return fail(lineno, invalid);
  spec = out;
  return true;
}

}  // namespace scalemd
