#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/parallel_sim.hpp"
#include "des/fault.hpp"
#include "ff/nonbonded.hpp"
#include "gen/test_systems.hpp"

namespace scalemd {

/// One scheduled PE failure, with its firing time expressed as a *fraction*
/// of the scenario's fault-free end time (virtual seconds). The differential
/// executor measures the clean run first and converts fractions to absolute
/// times, so a spec replays identically however long the run happens to be.
struct ScenarioFailure {
  int pe = 0;
  double at_frac = 0.5;  ///< in (0, 1)
};

/// Everything one fuzz case varies: the generated system, the machine shape,
/// the runtime configuration and the fault schedule. A spec is pure data —
/// serialize/parse round-trip exactly — and evaluating it is deterministic,
/// which is what makes shrinking and repro files possible.
struct ScenarioSpec {
  std::uint64_t seed = 1;  ///< system geometry + velocity + fault seed
  TestSystemKind kind = TestSystemKind::kWaterBox;
  double box = 12.0;       ///< cubic box edge, Angstrom
  int chain_beads = 16;    ///< kSolvatedChain only

  int num_pes = 4;
  int threads = 2;         ///< threaded-backend worker count
  /// When > 0, the differential harness additionally runs the clean scenario
  /// on the forked-process backend with this many workers and requires the
  /// result to match the DES reference bitwise (oracle "process-divergence").
  /// 0 skips the leg — fork-per-case is expensive, so generation arms it on
  /// only a fraction of the campaign.
  int process_workers = 0;
  LbStrategyKind lb = LbStrategyKind::kNone;
  NonbondedKernel kernel = NonbondedKernel::kScalar;
  double dt_fs = 1.0;
  int cycles = 2;          ///< run_cycle calls
  int steps = 2;           ///< timesteps per cycle

  // --- fault schedule (all zero / empty = fault-free scenario) ---------
  double drop_prob = 0.0;
  double dup_prob = 0.0;
  double delay_prob = 0.0;
  double delay_max = 0.0;
  std::vector<ScenarioFailure> failures;
  int checkpoint_every = 0;  ///< required >= 1 whenever failures exist

  // --- serve axis (all zero = no multi-job serve leg) -------------------
  /// When > 0, the differential harness additionally expands this spec into
  /// `serve_jobs` fault-free replica jobs (derived seeds, mixed priorities)
  /// and runs them through the BatchScheduler on `serve_workers` workers
  /// with forced preemption every `serve_preempt_every` slices; every job's
  /// trajectory must match its solo run bitwise (oracle "serve-divergence").
  /// Like the process axis, generation arms it on a fraction of the
  /// campaign; 0 skips the leg.
  int serve_jobs = 0;
  int serve_workers = 1;
  int serve_preempt_every = 0;

  // --- full-electrostatics axis (off = cutoff electrostatics only) ------
  /// When set, every leg of the differential harness runs with the PME
  /// reciprocal stage armed (erfc-screened direct space + slab-decomposed
  /// reciprocal solve in the parallel runtime), and one extra clean DES run
  /// with the alternate slab placement policy must match the reference
  /// bitwise (oracle "pme-divergence"). The backend/process legs then also
  /// cross the PME transpose and force-return wire paths for free.
  bool full_elec = false;
  int pme_slabs = 4;      ///< reciprocal slab count (part of the numerics)
  int pme_dedicated = 0;  ///< dedicated PME ranks (placement policy only)

  /// Arms ParallelOptions::debug_fold_arrival_order on every run of this
  /// spec. Set only by --self-test (and recorded in its repro files so they
  /// replay the defective build path byte-for-byte).
  bool inject_defect = false;

  bool has_message_faults() const {
    return drop_prob > 0.0 || dup_prob > 0.0 || delay_prob > 0.0;
  }
  bool has_faults() const { return has_message_faults() || !failures.empty(); }
};

/// Draws a random valid spec: case `index` of the campaign keyed by
/// `master_seed`. Pure — same (seed, index) always yields the same spec.
ScenarioSpec generate_scenario(std::uint64_t master_seed, int index);

/// "" when `spec` is runnable; otherwise the first broken structural rule
/// (PE counts, fault/checkpoint coupling, ranges). Both the parser and the
/// shrinker gate on this.
std::string validate_scenario(const ScenarioSpec& spec);

/// Line-oriented text form ("key value" per line, # comments). Full
/// precision: parse(serialize(spec)) == spec bit-for-bit.
std::string serialize_scenario(const ScenarioSpec& spec);

/// Outcome of applying one text directive to a spec.
enum class DirectiveStatus {
  kApplied,     ///< consumed (blank/comment-only lines count as applied)
  kUnknownKey,  ///< not a scenario key; `reason` holds the key itself
  kBadValue,    ///< recognized key, malformed value; `reason` explains
};

/// Parses one raw line of the scenario schema ("key value...", optional
/// `#` comment) and applies it to `spec`. This is the single-directive core
/// that parse_scenario loops over; layered schemas reuse it so their error
/// reporting can add context a lone scenario parser cannot know — the serve
/// batch parser (src/serve/job.*) wraps it to tag every error with the
/// enclosing job's index and name, fixing the old assumption that a spec
/// file only ever holds one job.
DirectiveStatus apply_scenario_directive(const std::string& raw,
                                         ScenarioSpec& spec,
                                         std::string& reason);

/// Parses serialize_scenario's schema. Returns true and fills `spec` on
/// success; false with a located error (reusing the fault-plan error type:
/// file, 1-based line, reason) otherwise. `spec` is untouched on failure.
bool parse_scenario(const std::string& text, const std::string& file,
                    ScenarioSpec& spec, FaultPlanParseError& error);

const char* lb_strategy_name(LbStrategyKind kind);
const char* nonbonded_kernel_name(NonbondedKernel kernel);

}  // namespace scalemd
