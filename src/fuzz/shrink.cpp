#include "fuzz/shrink.hpp"

#include <algorithm>
#include <functional>
#include <vector>

namespace scalemd {

namespace {

bool specs_equal(const ScenarioSpec& a, const ScenarioSpec& b) {
  return serialize_scenario(a) == serialize_scenario(b);
}

}  // namespace

ShrinkResult shrink_scenario(const ScenarioSpec& failing,
                             const FuzzVerdict& original, int max_evals) {
  ShrinkResult result;
  result.spec = failing;
  result.verdict = original;

  // Each transformation edits one axis toward "smaller". Ordered so the big
  // wins (fewer cycles, no faults, fewer PEs) are tried before cosmetic ones.
  using Edit = std::function<void(ScenarioSpec&)>;
  const std::vector<Edit> edits = {
      [](ScenarioSpec& s) { s.cycles = 1; },
      [](ScenarioSpec& s) { s.cycles = std::max(1, s.cycles - 1); },
      [](ScenarioSpec& s) { s.steps = 1; },
      [](ScenarioSpec& s) { s.steps = std::max(1, s.steps - 1); },
      [](ScenarioSpec& s) { s.failures.clear(); },
      [](ScenarioSpec& s) {
        if (!s.failures.empty()) s.failures.resize(s.failures.size() - 1);
      },
      [](ScenarioSpec& s) {
        s.drop_prob = s.dup_prob = s.delay_prob = s.delay_max = 0.0;
      },
      [](ScenarioSpec& s) {
        if (s.failures.empty()) s.checkpoint_every = 0;
      },
      [](ScenarioSpec& s) {
        if (s.num_pes > 2) s.num_pes = std::max(2, s.num_pes / 2);
      },
      [](ScenarioSpec& s) {
        if (s.num_pes > 2) s.num_pes -= 2;
      },
      [](ScenarioSpec& s) { s.threads = 1; },
      // Dropping the process leg only sticks for non-process oracles (the
      // oracle must re-fire); shrinking to one worker keeps the leg alive
      // while removing cross-worker wire traffic from the repro.
      [](ScenarioSpec& s) { s.process_workers = 0; },
      [](ScenarioSpec& s) {
        if (s.process_workers > 1) s.process_workers = 1;
      },
      // Same shape for the serve leg: dropping it sticks only for
      // non-serve oracles; otherwise shrink the batch toward the minimal
      // 2-job, 1-worker, no-preemption form.
      [](ScenarioSpec& s) {
        s.serve_jobs = 0;
        s.serve_workers = 1;
        s.serve_preempt_every = 0;
      },
      [](ScenarioSpec& s) {
        if (s.serve_jobs > 2) --s.serve_jobs;
      },
      [](ScenarioSpec& s) { s.serve_preempt_every = 0; },
      [](ScenarioSpec& s) {
        if (s.serve_workers > 1) s.serve_workers = 1;
      },
      // Dropping full electrostatics sticks only for non-pme oracles;
      // otherwise shrink toward one slab and the default placement.
      [](ScenarioSpec& s) {
        s.full_elec = false;
        s.pme_slabs = 4;
        s.pme_dedicated = 0;
      },
      [](ScenarioSpec& s) {
        if (s.pme_slabs > 1) --s.pme_slabs;
      },
      [](ScenarioSpec& s) { s.pme_dedicated = 0; },
      [](ScenarioSpec& s) { s.kind = TestSystemKind::kWaterBox; },
      [](ScenarioSpec& s) { s.chain_beads = 8; },
      [](ScenarioSpec& s) { s.box = 10.0; },
      [](ScenarioSpec& s) { s.box = (s.box + 10.0) / 2.0; },
      [](ScenarioSpec& s) { s.lb = LbStrategyKind::kNone; },
      [](ScenarioSpec& s) { s.kernel = NonbondedKernel::kScalar; },
      [](ScenarioSpec& s) { s.dt_fs = 1.0; },
  };

  bool improved = true;
  while (improved && result.evals < max_evals) {
    improved = false;
    for (const Edit& edit : edits) {
      if (result.evals >= max_evals) break;
      ScenarioSpec candidate = result.spec;
      edit(candidate);
      if (specs_equal(candidate, result.spec)) continue;
      if (!validate_scenario(candidate).empty()) continue;
      const FuzzVerdict v = evaluate_scenario(candidate);
      ++result.evals;
      if (!v.ok && v.oracle == original.oracle) {
        result.spec = candidate;
        result.verdict = v;
        ++result.accepted;
        improved = true;
      }
    }
  }
  return result;
}

}  // namespace scalemd
