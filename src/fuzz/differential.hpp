#pragma once

#include <string>

#include "fuzz/scenario.hpp"

namespace scalemd {

/// Outcome of running one scenario through the differential harness. On
/// failure, `oracle` is a stable identity string — the shrinker only accepts
/// a smaller spec when the SAME oracle re-fires, and a repro file records it
/// as the expected outcome:
///
///   "invariant:<term>"      physics/runtime invariant (InvariantChecker)
///   "des-invariant:<term>"  DES machine invariant (DesInvariantSink)
///   "clean-incomplete"      fault-free run failed to finish its last cycle
///   "backend-divergence"    simulated vs threaded state not bit-identical
///   "process-incomplete"    forked-process run failed to finish its last cycle
///   "process-divergence"    simulated vs forked-process state not bit-identical
///   "chaos-incomplete"      faulted run did not recover to completion
///   "chaos-divergence"      recovered state does not match the clean run
///   "serve-incomplete"      a batch-scheduled job did not run to completion
///   "serve-divergence"      a batch-scheduled job's state not bit-identical
///                           to the same job run alone
struct FuzzVerdict {
  bool ok = true;
  std::string oracle;  ///< empty when ok
  std::string detail;  ///< first offending location / violation one-liners
};

/// Runs `spec` three ways and scores every oracle:
///  A. clean run on the simulated (DES) backend, with the spec's LB strategy
///     applied between cycles, physics invariants and DES invariants armed;
///  B. the same scenario on the threaded backend — state must match A
///     bitwise (the canonical fold makes trajectories backend-independent);
///  B'. (only when spec.process_workers > 0) the same scenario on the
///     forked-process backend — again bitwise against A;
///  C. (only when the spec schedules faults) a chaos run on the DES backend
///     with the reliable layer and checkpointing armed; it must complete and
///     recover to A's state — bitwise without PE failures, to 1e-9 relative
///     when evacuation changed the placement;
///  D. (only when spec.serve_jobs > 0) the spec expanded into serve_jobs
///     fault-free replica jobs with derived seeds and mixed priorities,
///     scheduled by the serve-layer BatchScheduler on serve_workers workers
///     with forced preemption every serve_preempt_every slices — every job
///     must complete and match its run_job_alone reference bitwise.
/// Deterministic: same spec, same verdict, every time.
FuzzVerdict evaluate_scenario(const ScenarioSpec& spec);

}  // namespace scalemd
