#include "fuzz/differential.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "check/des_invariants.hpp"
#include "check/invariants.hpp"
#include "check/violation_report.hpp"
#include "core/parallel_sim.hpp"
#include "gen/test_systems.hpp"
#include "serve/scheduler.hpp"

namespace scalemd {

namespace {

struct RunOutcome {
  std::vector<Vec3> positions;
  std::vector<Vec3> velocities;
  double end_time = 0.0;
  bool complete = false;
  ViolationLog physics;  ///< InvariantChecker findings
  ViolationLog machine;  ///< DesInvariantSink findings (DES runs only)
};

std::string violations_detail(const std::string& run, const ViolationLog& log) {
  std::string out;
  for (const ViolationRecord& r : log.records()) {
    out += "[" + run + "] " + violation_one_line(r) + "\n";
  }
  return out;
}

ParallelOptions base_parallel_options(const ScenarioSpec& spec) {
  ParallelOptions opts;
  opts.num_pes = spec.num_pes;
  opts.numeric = true;
  opts.dt_fs = spec.dt_fs;
  opts.lb.kind = spec.lb;
  opts.pme.slabs = spec.pme_slabs;
  opts.pme.dedicated_ranks = spec.pme_dedicated;
  opts.debug_fold_arrival_order = spec.inject_defect;
  return opts;
}

RunOutcome run_scenario(const Workload& workload, const ScenarioSpec& spec,
                        const ParallelOptions& opts, bool apply_lb) {
  ParallelSim sim(workload, opts);
  InvariantOptions iopts;
  iopts.check_energy = false;  // a handful of steps; the drift bound is for runs
  if (spec.full_elec) {
    // PME mesh interpolation breaks exact force antisymmetry: the net force
    // residual sits at the interpolation-error scale (~1e-4 of sum |F| on a
    // 16^3 / order-4 grid), not at rounding, and the momentum drift
    // integrates it. Loosened bounds still catch sign/assembly bugs, which
    // blow past them immediately.
    iopts.net_force_rel = 1e-3;
    iopts.momentum_rel = 1e-2;
  }
  InvariantChecker checker(iopts);
  checker.attach(sim);
  RunOutcome out;
  DesInvariantSink machine_sink(&out.machine);
  const bool des = opts.backend == BackendKind::kSimulated;
  if (des) sim.attach_sink(&machine_sink);

  for (int c = 0; c < spec.cycles; ++c) {
    if (c > 0 && apply_lb && spec.lb != LbStrategyKind::kNone) {
      sim.load_balance();
    }
    sim.run_cycle(spec.steps);
  }

  out.positions = sim.gather_positions();
  out.velocities = sim.gather_velocities();
  out.end_time = sim.backend().time();
  out.complete = sim.last_cycle_complete();
  out.physics = checker.log();
  if (des) sim.detach_sink(&machine_sink);
  return out;
}

/// First bitwise difference between two state arrays, or "" when identical.
std::string first_bitwise_diff(const RunOutcome& got, const RunOutcome& ref) {
  if (got.positions.size() != ref.positions.size()) {
    return "atom count mismatch: " + std::to_string(got.positions.size()) +
           " vs " + std::to_string(ref.positions.size());
  }
  const auto diff_at = [](const char* what, std::size_t i, double g, double r) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%s[%zu]: %.17g vs %.17g", what, i, g, r);
    return std::string(buf);
  };
  for (std::size_t i = 0; i < ref.positions.size(); ++i) {
    const Vec3& g = got.positions[i];
    const Vec3& r = ref.positions[i];
    if (g.x != r.x) return diff_at("pos.x", i, g.x, r.x);
    if (g.y != r.y) return diff_at("pos.y", i, g.y, r.y);
    if (g.z != r.z) return diff_at("pos.z", i, g.z, r.z);
  }
  for (std::size_t i = 0; i < ref.velocities.size(); ++i) {
    const Vec3& g = got.velocities[i];
    const Vec3& r = ref.velocities[i];
    if (g.x != r.x) return diff_at("vel.x", i, g.x, r.x);
    if (g.y != r.y) return diff_at("vel.y", i, g.y, r.y);
    if (g.z != r.z) return diff_at("vel.z", i, g.z, r.z);
  }
  return "";
}

/// Max relative deviation (array-scale) between two position/velocity sets.
double max_rel_deviation(const std::vector<Vec3>& got,
                         const std::vector<Vec3>& ref) {
  double scale = 1.0;
  for (const Vec3& v : ref) {
    scale = std::max({scale, std::fabs(v.x), std::fabs(v.y), std::fabs(v.z)});
  }
  double worst = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    worst = std::max(worst, norm(got[i] - ref[i]) / scale);
  }
  return worst;
}

/// Scores one run's own oracles; fills `verdict` and returns true on failure.
bool score_run(const std::string& label, const RunOutcome& run,
               FuzzVerdict& verdict) {
  if (!run.machine.empty()) {
    verdict.ok = false;
    verdict.oracle = "des-invariant:" + run.machine.records().front().term;
    verdict.detail = violations_detail(label, run.machine);
    return true;
  }
  if (!run.physics.empty()) {
    verdict.ok = false;
    verdict.oracle = "invariant:" + run.physics.records().front().term;
    verdict.detail = violations_detail(label, run.physics);
    return true;
  }
  return false;
}

}  // namespace

FuzzVerdict evaluate_scenario(const ScenarioSpec& spec) {
  FuzzVerdict verdict;

  TestSystemOptions sys;
  sys.kind = spec.kind;
  sys.box = {spec.box, spec.box, spec.box};
  sys.chain_beads = spec.chain_beads;
  sys.temperature = 300.0;
  sys.seed = spec.seed;
  const Molecule mol = make_test_system(sys);

  NonbondedOptions nb;
  nb.kernel = spec.kernel;
  const double patch = mol.suggested_patch_size;
  nb.cutoff = std::clamp(patch - 1.0, 3.5, 6.5);
  nb.switch_dist = nb.cutoff - 1.0;
  if (spec.full_elec) {
    // Fixed splitting/grid: the axis varies placement and slab structure,
    // not PME accuracy, and a 16^3 grid covers the whole box range.
    nb.full_elec.enabled = true;
    nb.full_elec.alpha = 0.46;
    nb.full_elec.grid_x = nb.full_elec.grid_y = nb.full_elec.grid_z = 16;
    nb.full_elec.order = 4;
  }
  const Workload workload(mol, MachineModel::asci_red(), nb);

  // --- A: clean simulated run (the reference for both comparisons) -------
  const ParallelOptions clean_opts = base_parallel_options(spec);
  const RunOutcome clean = run_scenario(workload, spec, clean_opts, true);
  if (score_run("clean", clean, verdict)) return verdict;
  if (!clean.complete) {
    verdict.ok = false;
    verdict.oracle = "clean-incomplete";
    verdict.detail = "[clean] fault-free run did not finish its last cycle";
    return verdict;
  }

  // --- B: same scenario on real threads; must match A bitwise ------------
  ParallelOptions threaded_opts = base_parallel_options(spec);
  threaded_opts.backend = BackendKind::kThreaded;
  threaded_opts.threads = spec.threads;
  const RunOutcome threaded = run_scenario(workload, spec, threaded_opts, true);
  if (score_run("threaded", threaded, verdict)) return verdict;
  const std::string backend_diff = first_bitwise_diff(threaded, clean);
  if (!backend_diff.empty()) {
    verdict.ok = false;
    verdict.oracle = "backend-divergence";
    verdict.detail = "[threaded vs clean] " + backend_diff;
    return verdict;
  }

  // --- B': same scenario on forked worker processes; must match A bitwise.
  // State crosses the wire as raw IEEE bits and the canonical fold fixes the
  // summation order, so out-of-process execution is held to the same standard
  // as in-process threads.
  if (spec.process_workers > 0) {
    ParallelOptions process_opts = base_parallel_options(spec);
    process_opts.backend = BackendKind::kProcess;
    process_opts.process.workers = spec.process_workers;
    const RunOutcome process = run_scenario(workload, spec, process_opts, true);
    if (score_run("process", process, verdict)) return verdict;
    if (!process.complete) {
      verdict.ok = false;
      verdict.oracle = "process-incomplete";
      verdict.detail = "[process] run did not finish its last cycle";
      return verdict;
    }
    const std::string process_diff = first_bitwise_diff(process, clean);
    if (!process_diff.empty()) {
      verdict.ok = false;
      verdict.oracle = "process-divergence";
      verdict.detail = "[process vs clean] " + process_diff;
      return verdict;
    }
  }

  // --- B'': alternate PME slab placement; must match A bitwise -----------
  // Dedicated ranks (or spreading slabs back out) only move slab objects
  // between PEs; the reciprocal sums and the canonical fold are placement-
  // free, so flipping the policy must not move a single bit.
  if (spec.full_elec) {
    ParallelOptions placed_opts = base_parallel_options(spec);
    placed_opts.pme.dedicated_ranks = spec.pme_dedicated > 0 ? 0 : 1;
    const RunOutcome placed = run_scenario(workload, spec, placed_opts, true);
    if (score_run("pme-placement", placed, verdict)) return verdict;
    const std::string pme_diff = first_bitwise_diff(placed, clean);
    if (!pme_diff.empty()) {
      verdict.ok = false;
      verdict.oracle = "pme-divergence";
      verdict.detail = "[pme-placement vs clean] " + pme_diff;
      return verdict;
    }
  }

  // --- C: chaos run with recovery armed; must converge back to A ---------
  if (spec.has_faults()) {
    ParallelOptions chaos_opts = base_parallel_options(spec);
    chaos_opts.lb.kind = LbStrategyKind::kNone;  // evacuation owns remapping
    chaos_opts.reliable = true;
    chaos_opts.checkpoint_every = spec.checkpoint_every;
    chaos_opts.fault.seed = Rng::derive(spec.seed, "faults");
    chaos_opts.fault.drop_prob = spec.drop_prob;
    chaos_opts.fault.dup_prob = spec.dup_prob;
    chaos_opts.fault.delay_prob = spec.delay_prob;
    chaos_opts.fault.delay_max = spec.delay_max;
    for (const ScenarioFailure& f : spec.failures) {
      chaos_opts.fault.failures.push_back({f.pe, f.at_frac * clean.end_time});
    }
    const RunOutcome chaos = run_scenario(workload, spec, chaos_opts, false);
    if (score_run("chaos", chaos, verdict)) return verdict;
    if (!chaos.complete) {
      verdict.ok = false;
      verdict.oracle = "chaos-incomplete";
      verdict.detail = "[chaos] run did not recover to completion";
      return verdict;
    }
    if (spec.failures.empty()) {
      // Placement never changed: dedup + retry must reproduce A bit-for-bit.
      const std::string diff = first_bitwise_diff(chaos, clean);
      if (!diff.empty()) {
        verdict.ok = false;
        verdict.oracle = "chaos-divergence";
        verdict.detail = "[chaos vs clean] " + diff;
        return verdict;
      }
    } else {
      // Evacuation re-homes objects, changing summation grouping: compare to
      // the same tolerance the chaos soak uses.
      const double dp = max_rel_deviation(chaos.positions, clean.positions);
      const double dv = max_rel_deviation(chaos.velocities, clean.velocities);
      if (dp > 1e-9 || dv > 1e-9) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "rel deviation pos=%.3e vel=%.3e exceeds 1e-9", dp, dv);
        verdict.ok = false;
        verdict.oracle = "chaos-divergence";
        verdict.detail = std::string("[chaos vs clean] ") + buf;
        return verdict;
      }
    }
  }

  // --- D: the spec as a replica batch through the serve layer ------------
  // Each replica (derived seed, so a genuinely different system) is run
  // solo first, then the whole set goes through the BatchScheduler with
  // mixed priorities and forced preemption. Scheduling, preemption through
  // export/import_state and shared topology artifacts must all be
  // trajectory-invisible: every job bitwise equals its solo run.
  if (spec.serve_jobs > 0) {
    ScenarioSpec base = spec;
    base.drop_prob = base.dup_prob = base.delay_prob = base.delay_max = 0.0;
    base.failures.clear();
    base.checkpoint_every = 0;
    base.process_workers = 0;
    base.serve_jobs = 0;
    base.serve_workers = 1;
    base.serve_preempt_every = 0;
    base.inject_defect = false;

    BatchSpec bs;
    JobSpec root;
    root.name = "replica";
    root.scenario = base;
    root.replicas = spec.serve_jobs;
    bs.jobs.push_back(root);
    std::vector<JobSpec> jobs = expand_batch(bs);
    for (std::size_t k = 0; k < jobs.size(); ++k) {
      jobs[k].priority = static_cast<int>(k % 3);
    }

    ServeOptions sopts;
    sopts.workers = spec.serve_workers;
    sopts.preempt_every = spec.serve_preempt_every;
    sopts.seed = spec.seed;
    BatchScheduler sched(sopts);

    // Solo references first, sharing the scheduler's cache so the scheduled
    // runs exercise the artifact-hit path too.
    std::vector<JobResult> solo;
    for (const JobSpec& job : jobs) {
      solo.push_back(run_job_alone(job, &sched.cache()));
      sched.submit(job);
    }
    const ServeReport served = sched.run();
    for (std::size_t k = 0; k < jobs.size(); ++k) {
      const JobResult& got = served.results[k];
      const std::string tag = "[serve " + jobs[k].name + "] ";
      if (!got.complete) {
        verdict.ok = false;
        verdict.oracle = "serve-incomplete";
        verdict.detail = tag + "job did not run to completion";
        return verdict;
      }
      RunOutcome a, b;
      a.positions = got.positions;
      a.velocities = got.velocities;
      b.positions = solo[k].positions;
      b.velocities = solo[k].velocities;
      const std::string diff = first_bitwise_diff(a, b);
      if (!diff.empty()) {
        verdict.ok = false;
        verdict.oracle = "serve-divergence";
        verdict.detail = tag + diff;
        return verdict;
      }
    }
  }
  return verdict;
}

}  // namespace scalemd
