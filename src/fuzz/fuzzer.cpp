#include "fuzz/fuzzer.hpp"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

namespace scalemd {

namespace {

/// The `expect` directive is transparent to parse_scenario; the replayer
/// reads it separately so a repro file is one self-contained artifact.
std::string extract_expected_oracle(const std::string& text) {
  std::istringstream stream(text);
  std::string raw;
  while (std::getline(stream, raw)) {
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream line(raw);
    std::string key, oracle;
    if ((line >> key) && key == "expect" && (line >> oracle)) return oracle;
  }
  return "";
}

std::string comment_block(const std::string& text) {
  std::string out;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) out += "#   " + line + "\n";
  return out;
}

}  // namespace

std::string render_repro(const FuzzFailure& failure) {
  std::string out;
  out += "# scalemd-fuzz repro (case " + std::to_string(failure.case_index) +
         ")\n";
  out += "# oracle: " + failure.oracle + "\n";
  std::istringstream detail(failure.detail);
  std::string line;
  while (std::getline(detail, line)) out += "# " + line + "\n";
  out += "# original spec before shrinking:\n";
  out += comment_block(serialize_scenario(failure.original));
  out += serialize_scenario(failure.shrunk);
  out += "expect " + failure.oracle + "\n";
  return out;
}

bool replay_repro(const std::string& text, const std::string& file,
                  std::string& message) {
  ScenarioSpec spec;
  FaultPlanParseError error;
  if (!parse_scenario(text, file, spec, error)) {
    message = "repro does not parse: " + error.render();
    return false;
  }
  const std::string expected = extract_expected_oracle(text);
  if (expected.empty()) {
    message = "repro has no 'expect <oracle>' line";
    return false;
  }
  const FuzzVerdict v = evaluate_scenario(spec);
  if (v.ok) {
    message = "expected oracle '" + expected +
              "' did not fire: the scenario now passes";
    return false;
  }
  if (v.oracle != expected) {
    message = "expected oracle '" + expected + "' but got '" + v.oracle +
              "':\n" + v.detail;
    return false;
  }
  message = "reproduced '" + expected + "':\n" + v.detail;
  return true;
}

FuzzReport run_fuzz(const FuzzOptions& opts) {
  FuzzReport report;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < opts.cases; ++i) {
    if (opts.time_budget_s > 0.0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - t0;
      if (elapsed.count() >= opts.time_budget_s) break;
    }
    ScenarioSpec spec = generate_scenario(opts.seed, i);
    spec.inject_defect = opts.inject_defect;
    const FuzzVerdict v = evaluate_scenario(spec);
    ++report.cases_run;
    if (opts.verbose) {
      std::fprintf(stderr, "case %d: %s\n", i,
                   v.ok ? "ok" : v.oracle.c_str());
    }
    if (v.ok) continue;

    FuzzFailure failure;
    failure.case_index = i;
    failure.original = spec;
    const ShrinkResult shrunk = shrink_scenario(spec, v, opts.shrink_evals);
    failure.shrunk = shrunk.spec;
    failure.oracle = shrunk.verdict.oracle;
    failure.detail = shrunk.verdict.detail;
    failure.shrink_evals = shrunk.evals;

    if (!opts.out_dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(opts.out_dir, ec);
      const std::string path =
          opts.out_dir + "/repro-case" + std::to_string(i) + ".txt";
      std::ofstream f(path);
      if (f) {
        f << render_repro(failure);
        if (f.good()) failure.repro_path = path;
      }
    }
    report.failures.push_back(std::move(failure));
  }
  return report;
}

int run_self_test(std::uint64_t seed, int max_cases, std::string& message) {
  // The defect makes clean-DES trajectories depend on message-arrival order,
  // so the backend-divergence / chaos-divergence oracles must catch it in a
  // small campaign. Repros stay in memory: the round-trip through
  // render_repro / replay_repro is itself part of what is being tested.
  FuzzOptions opts;
  opts.cases = max_cases;
  opts.seed = seed;
  opts.inject_defect = true;
  opts.out_dir = "";
  const FuzzReport report = run_fuzz(opts);

  if (report.failures.empty()) {
    message = "self-test FAILED: injected arrival-order defect survived " +
              std::to_string(report.cases_run) + " cases undetected";
    return 1;
  }
  const FuzzFailure& failure = report.failures.front();
  if (failure.oracle != "backend-divergence" &&
      failure.oracle != "chaos-divergence") {
    message = "self-test FAILED: defect was caught by unexpected oracle '" +
              failure.oracle + "'\n" + failure.detail;
    return 1;
  }
  // The shrunk spec must be no larger than the original on the axes the
  // shrinker works: total steps and faults.
  const int orig_steps = failure.original.cycles * failure.original.steps;
  const int shrunk_steps = failure.shrunk.cycles * failure.shrunk.steps;
  if (shrunk_steps > orig_steps ||
      failure.shrunk.failures.size() > failure.original.failures.size()) {
    message = "self-test FAILED: shrunk spec is larger than the original";
    return 1;
  }
  std::string replay_message;
  if (!replay_repro(render_repro(failure), "<self-test>", replay_message)) {
    message = "self-test FAILED: repro did not replay: " + replay_message;
    return 1;
  }
  message = "self-test OK: caught '" + failure.oracle + "' in case " +
            std::to_string(failure.case_index) + " of " +
            std::to_string(report.cases_run) + ", shrunk to " +
            std::to_string(shrunk_steps) + " total step(s) after " +
            std::to_string(failure.shrink_evals) +
            " shrink evaluation(s); repro replays";
  return 0;
}

}  // namespace scalemd
