#pragma once

#include "fuzz/differential.hpp"
#include "fuzz/scenario.hpp"

namespace scalemd {

/// Result of minimizing a failing scenario.
struct ShrinkResult {
  ScenarioSpec spec;    ///< smallest spec found that still fails
  FuzzVerdict verdict;  ///< its verdict — same oracle as the input failure
  int evals = 0;        ///< evaluate_scenario calls spent
  int accepted = 0;     ///< shrink steps that kept the failure alive
};

/// Greedy shrink: repeatedly tries size-reducing transformations of `failing`
/// (fewer cycles/steps, no faults, fewer PEs, smaller/simpler system, plainer
/// runtime configuration) and keeps a candidate only when evaluate_scenario
/// still fails with the SAME oracle as `original` — a different failure is a
/// different bug and must not hijack the repro. Stops at a fixpoint or after
/// `max_evals` evaluations. Deterministic: no randomness, candidates are
/// tried in a fixed order.
ShrinkResult shrink_scenario(const ScenarioSpec& failing,
                             const FuzzVerdict& original, int max_evals);

}  // namespace scalemd
