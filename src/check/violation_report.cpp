#include "check/violation_report.hpp"

#include <cstdio>

namespace scalemd {

namespace {

std::string shortest(double v) {
  char buf[64];
  // %.17g always round-trips; prefer the shortest representation that does.
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    double back = 0.0;
    std::sscanf(buf, "%lf", &back);
    if (back == v) break;
  }
  return buf;
}

}  // namespace

perf::JsonValue violation_to_json(const ViolationRecord& r) {
  perf::JsonValue obj = perf::JsonValue::object();
  obj.set("step", r.step);
  obj.set("term", r.term);
  obj.set("magnitude", r.magnitude);
  obj.set("bound", r.bound);
  obj.set("detail", r.detail);
  return obj;
}

perf::JsonValue violation_log_to_json(const ViolationLog& log) {
  perf::JsonValue root = perf::JsonValue::object();
  root.set("count", static_cast<int>(log.size()));
  perf::JsonValue arr = perf::JsonValue::array();
  for (const ViolationRecord& r : log.records()) {
    arr.push_back(violation_to_json(r));
  }
  root.set("violations", std::move(arr));
  return root;
}

std::string violation_one_line(const ViolationRecord& r) {
  std::string out = "term=" + r.term;
  out += " step=" + std::to_string(r.step);
  out += " magnitude=" + shortest(r.magnitude);
  out += " bound=" + shortest(r.bound);
  out += " detail=\"" + r.detail + "\"";
  return out;
}

}  // namespace scalemd
