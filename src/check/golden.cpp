#include "check/golden.hpp"

#include <bit>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "check/invariants.hpp"
#include "gen/presets.hpp"
#include "gen/test_systems.hpp"
#include "gen/water_box.hpp"
#include "seq/integrator.hpp"

namespace scalemd {

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

namespace {

constexpr const char* kMagic = "scalemd-golden";
constexpr int kVersion = 1;

// Plausibility ceilings for header counts: a corrupt header must fail with a
// parse error, not drive a multi-gigabyte resize.
constexpr int kMaxAtoms = 50'000'000;
constexpr std::size_t kMaxFrames = 1'000'000;

void write_vec_array(std::FILE* f, const std::vector<Vec3>& a) {
  for (const Vec3& v : a) {
    std::fprintf(f, "%.17g %.17g %.17g\n", v.x, v.y, v.z);
  }
}

/// Line-at-a-time reader that owns the FILE and tracks the current line
/// number, so every failure can name its exact location.
class LineReader {
 public:
  explicit LineReader(const std::string& path)
      : path_(path), f_(std::fopen(path.c_str(), "r")) {
    if (f_ == nullptr) {
      throw GoldenParseError(
          path_, 0,
          "cannot open (regenerate with tools/make_golden if it is missing)");
    }
  }
  ~LineReader() {
    if (f_ != nullptr) std::fclose(f_);
  }
  LineReader(const LineReader&) = delete;
  LineReader& operator=(const LineReader&) = delete;

  /// Next line (without requiring the trailing newline); throws on EOF or
  /// read error with `expect` as the reason.
  const char* line(const char* expect) {
    ++line_no_;
    if (std::fgets(buf_, sizeof(buf_), f_) == nullptr) {
      fail(std::ferror(f_) != 0 ? std::string("read error") + " — expected " + expect
                                : std::string("unexpected end of file — expected ") + expect);
    }
    return buf_;
  }

  [[noreturn]] void fail(const std::string& reason) const {
    throw GoldenParseError(path_, line_no_, reason);
  }

  int line_no() const { return line_no_; }

 private:
  std::string path_;
  std::FILE* f_;
  int line_no_ = 0;
  char buf_[512];
};

}  // namespace

GoldenParseError::GoldenParseError(std::string file, int line,
                                   std::string reason)
    : std::runtime_error("golden file " + file + ":" + std::to_string(line) +
                         ": " + reason),
      file_(std::move(file)),
      line_(line),
      reason_(std::move(reason)) {}

void write_trajectory(const Trajectory& t, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    throw std::runtime_error("cannot open golden file for writing: " + path);
  }
  std::fprintf(f, "%s %d\n", kMagic, kVersion);
  std::fprintf(f, "system %s\n", t.system.c_str());
  std::fprintf(f, "atoms %d\n", t.atom_count);
  std::fprintf(f, "dt_fs %.17g\n", t.dt_fs);
  std::fprintf(f, "frames %zu\n", t.frames.size());
  for (const TrajectoryFrame& fr : t.frames) {
    std::fprintf(f, "frame %d\n", fr.step);
    std::fprintf(f, "energy %.17g %.17g %.17g %.17g %.17g %.17g %.17g\n",
                 fr.potential.lj, fr.potential.elec, fr.potential.bond,
                 fr.potential.angle, fr.potential.dihedral, fr.potential.improper,
                 fr.kinetic);
    write_vec_array(f, fr.positions);
    write_vec_array(f, fr.velocities);
    write_vec_array(f, fr.forces);
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) throw std::runtime_error("write failed for golden file: " + path);
}

Trajectory read_trajectory(const std::string& path) {
  LineReader in(path);
  Trajectory t;

  char magic[64];
  int version = 0;
  if (std::sscanf(in.line("magic header"), "%63s %d", magic, &version) != 2 ||
      std::strcmp(magic, kMagic) != 0) {
    in.fail("bad magic (not a scalemd golden file)");
  }
  if (version != kVersion) {
    in.fail("unsupported version " + std::to_string(version) + " (expected " +
            std::to_string(kVersion) + ")");
  }
  char name[128];
  if (std::sscanf(in.line("system line"), "system %127s", name) != 1) {
    in.fail("missing system header");
  }
  t.system = name;
  if (std::sscanf(in.line("atoms line"), "atoms %d", &t.atom_count) != 1) {
    in.fail("missing atom count");
  }
  if (t.atom_count < 0 || t.atom_count > kMaxAtoms) {
    in.fail("implausible atom count " + std::to_string(t.atom_count));
  }
  if (std::sscanf(in.line("dt_fs line"), "dt_fs %lf", &t.dt_fs) != 1) {
    in.fail("missing dt_fs");
  }
  std::size_t frame_count = 0;
  if (std::sscanf(in.line("frames line"), "frames %zu", &frame_count) != 1) {
    in.fail("missing frame count");
  }
  if (frame_count > kMaxFrames) {
    in.fail("implausible frame count " + std::to_string(frame_count));
  }

  const auto n = static_cast<std::size_t>(t.atom_count);
  auto read_vec_array = [&](std::vector<Vec3>& a, const char* field) {
    a.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      Vec3& v = a[i];
      if (std::sscanf(in.line(field), "%lf %lf %lf", &v.x, &v.y, &v.z) != 3) {
        in.fail(std::string("malformed ") + field + " triple (atom " +
                std::to_string(i) + ")");
      }
    }
  };
  t.frames.resize(frame_count);
  for (std::size_t k = 0; k < frame_count; ++k) {
    TrajectoryFrame& fr = t.frames[k];
    if (std::sscanf(in.line("frame header"), "frame %d", &fr.step) != 1) {
      in.fail("missing frame header (frame " + std::to_string(k) + " of " +
              std::to_string(frame_count) + ")");
    }
    if (std::sscanf(in.line("energy line"), "energy %lf %lf %lf %lf %lf %lf %lf",
                    &fr.potential.lj, &fr.potential.elec, &fr.potential.bond,
                    &fr.potential.angle, &fr.potential.dihedral,
                    &fr.potential.improper, &fr.kinetic) != 7) {
      in.fail("malformed energy line (expected 7 values)");
    }
    read_vec_array(fr.positions, "position");
    read_vec_array(fr.velocities, "velocity");
    read_vec_array(fr.forces, "force");
  }
  return t;
}

// ---------------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------------

std::uint64_t ulp_distance(double a, double b) {
  if (a == b) return 0;  // covers +0 vs -0
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  // Map the IEEE bit pattern to a monotone unsigned key so the magnitude of
  // the key difference is the number of representable doubles between them.
  auto key = [](double x) {
    const auto u = std::bit_cast<std::uint64_t>(x);
    return (u >> 63) != 0 ? ~u : u | 0x8000000000000000ull;
  };
  const std::uint64_t ka = key(a);
  const std::uint64_t kb = key(b);
  return ka > kb ? ka - kb : kb - ka;
}

namespace {

/// Magnitude scale of a reference array for kRelative mode.
double array_scale(const std::vector<Vec3>& ref) {
  double s = 1.0;
  for (const Vec3& v : ref) {
    s = std::max(s, std::max(std::fabs(v.x), std::max(std::fabs(v.y),
                                                      std::fabs(v.z))));
  }
  return s;
}

/// Tracks the worst deviation and the first out-of-tolerance location.
struct Comparator {
  const CompareOptions& opts;
  CompareResult result;

  /// Deviation of one scalar pair in the mode's units and its bound.
  void value(double got, double ref, double scale, const std::string& where) {
    double dev = 0.0;
    double limit = 0.0;
    switch (opts.mode) {
      case CompareMode::kAbsolute:
        dev = std::fabs(got - ref);
        limit = opts.tol;
        break;
      case CompareMode::kRelative:
        dev = std::fabs(got - ref);
        limit = opts.tol * scale;
        break;
      case CompareMode::kUlp:
        dev = static_cast<double>(ulp_distance(got, ref));
        limit = static_cast<double>(opts.max_ulps);
        break;
    }
    if (dev > result.worst) {
      result.worst = dev;
      result.where = where;
    }
    if (dev > limit && result.match) {
      result.match = false;
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    ": got %.17g, reference %.17g (deviation %.3e, bound %.3e)",
                    got, ref, dev, limit);
      result.message = where + buf;
    }
  }

  void vec_array(const std::vector<Vec3>& got, const std::vector<Vec3>& ref,
                 const char* field, int frame_step) {
    const double scale = array_scale(ref);
    for (std::size_t i = 0; i < ref.size(); ++i) {
      char where[96];
      std::snprintf(where, sizeof(where), "frame %d %s atom %zu", frame_step,
                    field, i);
      value(got[i].x, ref[i].x, scale, where);
      value(got[i].y, ref[i].y, scale, where);
      value(got[i].z, ref[i].z, scale, where);
    }
  }

  void energy(double got, double ref, const char* field, int frame_step) {
    char where[96];
    std::snprintf(where, sizeof(where), "frame %d energy %s", frame_step, field);
    value(got, ref, std::max(1.0, std::fabs(ref)), where);
  }
};

}  // namespace

CompareResult compare_trajectories(const Trajectory& got, const Trajectory& ref,
                                   const CompareOptions& opts) {
  CompareResult structural;
  auto mismatch = [&structural](std::string msg) {
    structural.match = false;
    structural.message = std::move(msg);
    return structural;
  };
  if (got.system != ref.system) {
    return mismatch("system mismatch: got '" + got.system + "', reference '" +
                    ref.system + "'");
  }
  if (got.atom_count != ref.atom_count) {
    return mismatch("atom count mismatch: got " + std::to_string(got.atom_count) +
                    ", reference " + std::to_string(ref.atom_count));
  }
  if (got.frames.size() != ref.frames.size()) {
    return mismatch("frame count mismatch: got " +
                    std::to_string(got.frames.size()) + ", reference " +
                    std::to_string(ref.frames.size()));
  }

  Comparator cmp{opts, {}};
  for (std::size_t k = 0; k < ref.frames.size(); ++k) {
    const TrajectoryFrame& g = got.frames[k];
    const TrajectoryFrame& r = ref.frames[k];
    if (g.step != r.step) {
      return mismatch("frame " + std::to_string(k) + " records step " +
                      std::to_string(g.step) + ", reference step " +
                      std::to_string(r.step));
    }
    cmp.energy(g.potential.lj, r.potential.lj, "lj", r.step);
    cmp.energy(g.potential.elec, r.potential.elec, "elec", r.step);
    cmp.energy(g.potential.bond, r.potential.bond, "bond", r.step);
    cmp.energy(g.potential.angle, r.potential.angle, "angle", r.step);
    cmp.energy(g.potential.dihedral, r.potential.dihedral, "dihedral", r.step);
    cmp.energy(g.potential.improper, r.potential.improper, "improper", r.step);
    cmp.energy(g.kinetic, r.kinetic, "kinetic", r.step);
    cmp.vec_array(g.positions, r.positions, "pos", r.step);
    cmp.vec_array(g.velocities, r.velocities, "vel", r.step);
    cmp.vec_array(g.forces, r.forces, "frc", r.step);
  }
  return cmp.result;
}

// ---------------------------------------------------------------------------
// Validation presets
// ---------------------------------------------------------------------------

namespace {

Molecule make_golden_waterbox() {
  Molecule m = make_water_box({16.0, 16.0, 16.0}, /*seed=*/11);
  m.assign_velocities(300.0, /*seed=*/101);
  return m;
}

Molecule make_golden_chain() {
  Molecule m = small_solvated_chain(600, /*seed=*/19);
  m.assign_velocities(300.0, /*seed=*/103);
  return m;
}

Molecule make_golden_waterbox_ions() {
  // Salty water: net-neutral, but with bare +1/-1 ions the shifted-Coulomb
  // truncation error is large enough that full electrostatics visibly
  // matters — this is the preset behind every PME golden and differential.
  TestSystemOptions o;
  o.kind = TestSystemKind::kWaterBox;
  o.box = {13.0, 13.0, 13.0};
  o.ion_pairs = 4;
  o.temperature = 300.0;
  o.seed = 23;
  return make_test_system(o);
}

EngineOptions waterbox_engine() {
  EngineOptions o;
  o.nonbonded.cutoff = 6.5;
  o.nonbonded.switch_dist = 5.5;
  o.dt_fs = 1.0;
  return o;
}

EngineOptions chain_engine() {
  EngineOptions o;
  o.nonbonded.cutoff = 7.5;
  o.nonbonded.switch_dist = 6.5;
  o.dt_fs = 0.5;
  return o;
}

EngineOptions waterbox_ions_engine() {
  EngineOptions o;
  o.nonbonded.cutoff = 6.5;
  o.nonbonded.switch_dist = 5.5;
  // erfc(alpha * cutoff) ~ 1e-5 at alpha = 0.46: the real-space sum is
  // converged at the cutoff, the usual PME operating point.
  o.nonbonded.full_elec.enabled = true;
  o.nonbonded.full_elec.alpha = 0.46;
  o.nonbonded.full_elec.grid_x = 16;
  o.nonbonded.full_elec.grid_y = 16;
  o.nonbonded.full_elec.grid_z = 16;
  o.nonbonded.full_elec.order = 4;
  o.dt_fs = 1.0;
  return o;
}

const GoldenSpec kSpecs[] = {
    {"waterbox", /*steps=*/4, /*record_every=*/2, waterbox_engine(),
     &make_golden_waterbox},
    {"chain", /*steps=*/4, /*record_every=*/2, chain_engine(),
     &make_golden_chain},
    {"waterbox_ions", /*steps=*/4, /*record_every=*/2, waterbox_ions_engine(),
     &make_golden_waterbox_ions},
};

}  // namespace

std::span<const GoldenSpec> golden_specs() { return kSpecs; }

const GoldenSpec* find_golden_spec(std::string_view name) {
  for (const GoldenSpec& s : kSpecs) {
    if (name == s.name) return &s;
  }
  return nullptr;
}

Trajectory record_trajectory(const GoldenSpec& spec, NonbondedKernel kernel,
                             bool use_pairlist, int threads) {
  Molecule mol = spec.make();
  EngineOptions opts = spec.engine;
  opts.nonbonded.kernel = kernel;
  opts.nonbonded.threads = threads;
  opts.use_pairlist = use_pairlist;
  SequentialEngine engine(mol, opts);

  Trajectory t;
  t.system = spec.name;
  t.atom_count = mol.atom_count();
  t.dt_fs = opts.dt_fs;
  auto record = [&](int step) {
    TrajectoryFrame fr;
    fr.step = step;
    fr.potential = engine.potential();
    fr.kinetic = engine.kinetic();
    fr.positions.assign(engine.positions().begin(), engine.positions().end());
    fr.velocities.assign(engine.velocities().begin(), engine.velocities().end());
    fr.forces.assign(engine.forces().begin(), engine.forces().end());
    t.frames.push_back(std::move(fr));
  };
  record(0);
  for (int s = 1; s <= spec.steps; ++s) {
    engine.step();
    if (s % spec.record_every == 0) record(s);
  }
  return t;
}

Trajectory record_parallel_trajectory(const GoldenSpec& spec,
                                      const ParallelGoldenOptions& popts,
                                      InvariantChecker* checker) {
  Molecule mol = spec.make();
  NonbondedOptions nb = spec.engine.nonbonded;
  nb.kernel = popts.kernel;

  ParallelOptions opts;
  opts.num_pes = popts.num_pes;
  opts.backend = popts.backend;
  opts.threads = popts.threads;
  opts.lb.kind = popts.lb;
  opts.numeric = true;
  opts.dt_fs = spec.engine.dt_fs;
  opts.process.workers = popts.process_workers;
  opts.process.kill_worker = popts.kill_worker;
  opts.process.kill_after_frames = popts.kill_after_frames;
  opts.checkpoint_every = popts.checkpoint_every;
  if (!popts.checkpoint_path.empty()) opts.checkpoint_path = popts.checkpoint_path;
  opts.pme.slabs = popts.pme_slabs;
  opts.pme.dedicated_ranks = popts.pme_dedicated_ranks;

  Workload wl(mol, opts.machine, nb);
  ParallelSim sim(wl, opts);
  if (checker != nullptr) checker->attach(sim);

  std::vector<double> mass;
  mass.reserve(static_cast<std::size_t>(mol.atom_count()));
  for (const Atom& a : mol.atoms()) mass.push_back(a.mass);

  Trajectory t;
  t.system = spec.name;
  t.atom_count = mol.atom_count();
  t.dt_fs = spec.engine.dt_fs;
  const int cycles = spec.steps / spec.record_every;
  for (int c = 0; c < cycles; ++c) {
    // Remap between recording cycles so LB (object migration, proxy-set
    // changes) happens mid-trajectory — the equivalence claim covers it.
    if (c > 0 && popts.lb != LbStrategyKind::kNone) sim.load_balance();
    sim.run_cycle(spec.record_every);

    TrajectoryFrame fr;
    fr.step = (c + 1) * spec.record_every;
    // The cycle's closing force round is its last global step index.
    fr.potential = sim.potential_terms_at_step(
        static_cast<int>(sim.step_completion().size()) - 1);
    fr.positions = sim.gather_positions();
    fr.velocities = sim.gather_velocities();
    fr.forces = sim.gather_forces();
    fr.kinetic = kinetic_energy(fr.velocities, mass);
    t.frames.push_back(std::move(fr));
  }
  return t;
}

std::string golden_path(const std::string& dir, const GoldenSpec& spec) {
  return dir + "/" + spec.name + ".golden";
}

}  // namespace scalemd
