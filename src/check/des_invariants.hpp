#pragma once

#include <cstdint>
#include <vector>

#include "des/trace_sink.hpp"
#include "trace/violations.hpp"

namespace scalemd {

/// Online validator of the discrete-event machine itself, attached like any
/// other instrumentation sink (Simulator::set_sink / ParallelSim::attach_sink).
/// Asserts the runtime-side invariants the paper's optimizations must never
/// break:
///
///  * per-PE clock monotonicity — tasks on one virtual processor are
///    non-preemptive and must never overlap or run backwards in time;
///  * non-negative task and communication costs;
///  * message causality — a delivery never precedes its send.
///
/// Violations are appended to the ViolationLog with the PE as the "step" and
/// virtual time in the detail, matching the physical checks' reporting.
class DesInvariantSink final : public TraceSink {
 public:
  explicit DesInvariantSink(ViolationLog* log);

  void on_task(const TaskRecord& r) override;
  void on_message(const MsgRecord& r) override;

  std::uint64_t tasks_seen() const { return tasks_seen_; }
  std::uint64_t messages_seen() const { return messages_seen_; }
  bool ok() const { return log_->empty(); }
  const ViolationLog& log() const { return *log_; }

 private:
  ViolationLog* log_;
  /// Virtual completion time of the last task seen per PE (grown on demand).
  std::vector<double> pe_clock_;
  std::uint64_t tasks_seen_ = 0;
  std::uint64_t messages_seen_ = 0;
};

}  // namespace scalemd
