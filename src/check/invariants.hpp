#pragma once

#include <cstdint>
#include <span>

#include "ff/nonbonded.hpp"
#include "trace/violations.hpp"
#include "util/vec3.hpp"

namespace scalemd {

class BondConstraints;
class ExclusionTable;
class Molecule;
class ParallelSim;
class SequentialEngine;

/// Bounds and switches for the physical invariants the checker asserts.
/// Relative tolerances are against a magnitude scale computed from the data
/// being checked (sum of |force| components, |E0|, ...), so they hold across
/// system sizes and are insensitive to summation order.
struct InvariantOptions {
  /// Check cadence: invariants run every `every`-th observed step/cycle.
  int every = 1;

  /// NVE total-energy drift: |E(step) - E(first observed)| must stay below
  /// energy_drift_rel * max(1, |E0|). The default admits the O(dt^2)
  /// oscillation of velocity Verlet with flexible bonds at sub-fs timesteps
  /// (about 0.2% of |E| on the validation presets at 0.5 fs) while catching
  /// force/integration bugs, which blow past it within a step or two.
  bool check_energy = true;
  double energy_drift_rel = 1e-2;

  /// Newton's third law: |sum of forces| <= net_force_rel * sum |f_i| + eps.
  /// Every pair/bonded kernel adds equal-and-opposite contributions, so the
  /// residual is pure rounding (~sqrt(N) ulps of the largest cancellation).
  bool check_net_force = true;
  double net_force_rel = 1e-9;

  /// Momentum conservation: |sum m_i v_i| <= momentum_rel * sum |m_i v_i|
  /// + eps. Holds for NVE when the net force stays ~0 (each kick adds
  /// dt * sum F); generators zero the net momentum at velocity assignment.
  bool check_momentum = true;
  double momentum_rel = 1e-9;

  /// Exclusion completeness: pairs_computed must equal an independent
  /// brute-force O(N^2) count of in-cutoff, non-excluded pairs — no excluded
  /// pair contributed, no interacting pair was missed. Off by default (cost);
  /// enable on the small validation presets.
  bool check_exclusions = false;

  /// SHAKE convergence: max relative squared-bond-length violation after the
  /// constraint solve.
  double constraint_tol = 1e-8;

  /// Reduction completeness cross-check (ParallelSim numeric mode): the last
  /// round's kinetic-energy reduction must match the kinetic energy of the
  /// gathered global state to this relative tolerance (different summation
  /// order than the per-patch tree reduction).
  double reduction_rel = 1e-9;

  /// Absolute floor added to relative bounds, for near-zero scales.
  double abs_floor = 1e-12;
};

/// Asserts configurable physical invariants against a running simulation.
///
/// Hook it to the sequential engine (attach(SequentialEngine&)) or to the
/// parallel core (attach(ParallelSim&)); every violation is appended to a
/// ViolationLog (src/trace/) recording the step, the invariant term and the
/// magnitude, so a failing run reports *all* broken physics, not just the
/// first assert. The direct check_* entry points are public so tests and
/// tools can drive them against arbitrary state.
class InvariantChecker {
 public:
  /// Uses `log` for violations when non-null; otherwise an internal log
  /// (accessible via log()).
  explicit InvariantChecker(const InvariantOptions& opts = {},
                            ViolationLog* log = nullptr);

  // --- hooks -----------------------------------------------------------
  /// Registers this checker as the engine's step observer (replaces any
  /// previous observer). The checker must outlive the engine's stepping.
  void attach(SequentialEngine& engine);
  /// Registers this checker as the sim's cycle observer.
  void attach(ParallelSim& sim);

  /// One observation of the sequential engine (called by the attached hook;
  /// callable directly after manual stepping). Honors `every`.
  void observe(const SequentialEngine& engine, int step);
  /// One observation of the parallel core at a cycle boundary: message
  /// conservation (the fault-aware accounting identity plus quiescence —
  /// distinguishes "dropped by the fault engine" from "leaked by the
  /// runtime"), recovery completeness, reduction completeness, and net
  /// force / momentum of the gathered state (numeric mode).
  void observe_cycle(const ParallelSim& sim);

  // --- direct checks (each returns pass/fail and logs on fail) ---------
  bool check_net_force(std::span<const Vec3> forces, int step);
  bool check_momentum(std::span<const Vec3> velocities,
                      std::span<const double> masses, int step);
  /// First call records the reference energy; later calls check drift.
  bool check_energy(double total_energy, int step);
  bool check_exclusions(const Molecule& mol, const ExclusionTable& excl,
                        const NonbondedOptions& nb, const WorkCounters& work,
                        int step);
  bool check_constraints(const BondConstraints& constraints,
                         std::span<const Vec3> positions, int step);

  /// When set, observe() additionally asserts constraint tolerance at each
  /// checked step (the caller owns the BondConstraints).
  void set_constraints(const BondConstraints* constraints) {
    constraints_ = constraints;
  }

  // --- results ---------------------------------------------------------
  bool ok() const { return log_->empty(); }
  const ViolationLog& log() const { return *log_; }
  ViolationLog& log() { return *log_; }
  /// Individual invariant evaluations performed (for "did it actually run").
  std::uint64_t checks_run() const { return checks_run_; }
  /// Resets the energy reference so the next check_energy re-anchors.
  void reset_energy_reference() { have_reference_energy_ = false; }

 private:
  bool fail(int step, const char* term, double magnitude, double bound,
            std::string detail);

  InvariantOptions opts_;
  ViolationLog owned_log_;
  ViolationLog* log_;
  const BondConstraints* constraints_ = nullptr;
  double reference_energy_ = 0.0;
  bool have_reference_energy_ = false;
  std::uint64_t checks_run_ = 0;
};

}  // namespace scalemd
