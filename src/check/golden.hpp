#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/parallel_sim.hpp"
#include "seq/engine.hpp"
#include "topo/molecule.hpp"
#include "util/vec3.hpp"

namespace scalemd {

class InvariantChecker;

/// One recorded instant of a simulation: full dynamic state plus the energy
/// breakdown at that step.
struct TrajectoryFrame {
  int step = 0;
  EnergyTerms potential;
  double kinetic = 0.0;
  std::vector<Vec3> positions;
  std::vector<Vec3> velocities;
  std::vector<Vec3> forces;
};

/// A compact trajectory snapshot: a few frames of a short run, written by the
/// scalar sequential reference path and compared against by every other
/// kernel / engine-path / thread-count combination. The on-disk format is a
/// line-oriented text file with full-precision (%.17g) floats, so goldens
/// round-trip bit-exactly and diff cleanly under git.
struct Trajectory {
  std::string system;  ///< preset name, e.g. "waterbox"
  int atom_count = 0;
  double dt_fs = 0.0;
  std::vector<TrajectoryFrame> frames;
};

/// Writes `t` to `path`; throws std::runtime_error on I/O failure.
void write_trajectory(const Trajectory& t, const std::string& path);

/// Structured failure from read_trajectory: the file, the 1-based line and
/// what was wrong with it. Derives std::runtime_error (what() renders all
/// three) so pre-existing catch sites keep working.
class GoldenParseError : public std::runtime_error {
 public:
  GoldenParseError(std::string file, int line, std::string reason);

  const std::string& file() const { return file_; }
  int line() const { return line_; }  ///< 0 when the file could not be opened
  const std::string& reason() const { return reason_; }

 private:
  std::string file_;
  int line_;
  std::string reason_;
};

/// Reads a trajectory written by write_trajectory. Throws GoldenParseError
/// (an std::runtime_error) naming file, line and reason on I/O failure,
/// malformed syntax, truncation, or implausible header counts — never
/// asserts or reads uninitialized values on bad input.
Trajectory read_trajectory(const std::string& path);

/// How the comparator measures a deviation.
enum class CompareMode {
  kAbsolute,  ///< |got - ref| <= tol
  kRelative,  ///< |got - ref| <= tol * scale(ref array) — summation-order aware
  kUlp,       ///< ulp_distance(got, ref) <= max_ulps — bitwise-determinism checks
};

struct CompareOptions {
  CompareMode mode = CompareMode::kRelative;
  /// kAbsolute: absolute bound. kRelative: fraction of the reference array's
  /// magnitude scale (max |component|, floored at 1), which is what makes the
  /// comparison robust to summation order: kernel variants accumulate the
  /// same pair terms in different orders, so per-element deviations are
  /// bounded by rounding at the *array* scale, not the element's own value
  /// (forces on an atom can be a near-zero difference of large terms).
  double tol = 1e-8;
  /// kUlp: maximum units-in-the-last-place distance (0 = bit-identical).
  std::uint64_t max_ulps = 0;
};

/// Outcome of a trajectory comparison; on mismatch, `where`/`message` name
/// the first offending frame, field and atom with the measured deviation.
struct CompareResult {
  bool match = true;
  double worst = 0.0;  ///< largest deviation seen, in the mode's units
  std::string where;   ///< location of the largest deviation
  std::string message;  ///< empty when matching; first structural/tolerance error
};

CompareResult compare_trajectories(const Trajectory& got, const Trajectory& ref,
                                   const CompareOptions& opts);

/// Units-in-the-last-place distance between two doubles (0 iff bitwise equal
/// up to +0/-0; huge across sign changes or NaN).
std::uint64_t ulp_distance(double a, double b);

/// A golden preset: how to build the system, how to configure the engine,
/// and which steps to record. The same spec drives the make_golden tool
/// (scalar reference) and the regression tests (every kernel variant), so a
/// golden is always compared against an identically-built run.
struct GoldenSpec {
  const char* name;       ///< basename of the golden file ("<name>.golden")
  int steps;              ///< total MD steps to run
  int record_every;       ///< record a frame at step 0 and every N-th after
  EngineOptions engine;   ///< kernel/threads/path are overridden per run
  Molecule (*make)();     ///< deterministic builder, velocities assigned
};

/// The validation presets: a small water box (pure non-bonded + water
/// geometry) and a solvated chain (bonded terms, exclusions and 1-4 pairs).
std::span<const GoldenSpec> golden_specs();

/// Spec lookup by name; nullptr if unknown.
const GoldenSpec* find_golden_spec(std::string_view name);

/// Runs the sequential engine per `spec` with the given kernel overrides and
/// returns the recorded trajectory. The scalar / cell-list / single-thread
/// configuration is the reference that generates goldens.
Trajectory record_trajectory(const GoldenSpec& spec,
                             NonbondedKernel kernel = NonbondedKernel::kScalar,
                             bool use_pairlist = false, int threads = 0);

/// How to run a golden spec through the parallel runtime instead of the
/// sequential engine: processor count, execution backend, LB strategy and
/// force kernel. Every combination must reproduce the same trajectory —
/// that is the differential test matrix of the backend-equivalence suite.
struct ParallelGoldenOptions {
  int num_pes = 4;
  BackendKind backend = BackendKind::kSimulated;
  int threads = 0;  ///< threaded backend worker count (0 = hardware)
  LbStrategyKind lb = LbStrategyKind::kNone;
  NonbondedKernel kernel = NonbondedKernel::kScalar;
  // Process-backend knobs (ignored by the other backends). A non-empty
  // checkpoint_path with checkpoint_every > 0 arms disk checkpointing, and
  // kill_worker >= 0 arms the one-shot SIGKILL chaos injection — together
  // they drive the real crash-recovery differential tests.
  int process_workers = 2;
  int checkpoint_every = 0;
  std::string checkpoint_path;
  int kill_worker = -1;
  std::uint64_t kill_after_frames = 0;
  // Parallel-PME knobs (full-electrostatics specs only). The slab count is
  // part of the numerics contract, so differential runs hold it fixed while
  // sweeping everything else.
  int pme_slabs = 4;
  int pme_dedicated_ranks = 0;
};

/// Runs `spec` through ParallelSim (numeric mode) and records one frame at
/// the end of every recording cycle. Unlike record_trajectory there is no
/// step-0 frame: the parallel runtime cannot observe pre-step state, so
/// compare against a reference with its first frame dropped. With lb !=
/// kNone, load_balance() runs between recording cycles, exercising object
/// migration mid-trajectory. If `checker` is non-null it is attached to
/// the sim before any cycle runs (per-cycle physics invariants).
Trajectory record_parallel_trajectory(const GoldenSpec& spec,
                                      const ParallelGoldenOptions& popts,
                                      InvariantChecker* checker = nullptr);

/// "<dir>/<spec name>.golden".
std::string golden_path(const std::string& dir, const GoldenSpec& spec);

}  // namespace scalemd
