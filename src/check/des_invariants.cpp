#include "check/des_invariants.hpp"

#include <algorithm>
#include <cstdio>

namespace scalemd {

namespace {

/// Slack for comparing virtual timestamps that were produced by the same
/// arithmetic: scheduler times are assigned, not accumulated, so equality is
/// exact; the epsilon only guards against representation noise near zero.
constexpr double kTimeEps = 1e-12;

std::string at_time(const char* what, double a, double b) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s (%.9e vs %.9e virtual s)", what, a, b);
  return buf;
}

}  // namespace

DesInvariantSink::DesInvariantSink(ViolationLog* log) : log_(log) {}

void DesInvariantSink::on_task(const TaskRecord& r) {
  ++tasks_seen_;
  if (r.pe >= static_cast<int>(pe_clock_.size())) {
    pe_clock_.resize(static_cast<std::size_t>(r.pe) + 1, 0.0);
  }
  double& clock = pe_clock_[static_cast<std::size_t>(r.pe)];
  if (r.start + kTimeEps < clock) {
    log_->add({r.pe, "pe-clock-monotonicity", clock - r.start, 0.0,
               at_time("task starts before the previous task on this PE ended",
                       r.start, clock)});
  }
  if (r.duration < 0.0 || r.recv_cost < 0.0 || r.pack_cost < 0.0 ||
      r.send_cost < 0.0) {
    log_->add({r.pe, "negative-task-cost",
               std::min(std::min(r.duration, r.recv_cost),
                        std::min(r.pack_cost, r.send_cost)),
               0.0, "task reported a negative duration or cost component"});
  }
  clock = std::max(clock, r.start + r.duration);
}

void DesInvariantSink::on_message(const MsgRecord& r) {
  ++messages_seen_;
  if (r.recv_time + kTimeEps < r.send_time) {
    log_->add({r.dst_pe, "message-causality", r.send_time - r.recv_time, 0.0,
               at_time("message delivered before it was sent", r.recv_time,
                       r.send_time)});
  }
}

}  // namespace scalemd
