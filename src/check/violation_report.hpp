#pragma once

#include <string>

#include "perf/json.hpp"
#include "trace/violations.hpp"

namespace scalemd {

/// Machine-readable form of one violation: an object with "step", "term",
/// "magnitude", "bound" and "detail" members, suitable for CI artifacts and
/// for the fuzzer's repro files.
perf::JsonValue violation_to_json(const ViolationRecord& r);

/// The whole log as {"count": N, "violations": [...]}; count is present
/// even when zero so consumers need no existence checks.
perf::JsonValue violation_log_to_json(const ViolationLog& log);

/// Stable single-line summary of one violation for greppable logs:
///   term=net-force step=12 magnitude=3.2e-04 bound=1e-08 detail="..."
/// Field order and names are part of the format; tools key off them.
std::string violation_one_line(const ViolationRecord& r);

}  // namespace scalemd
