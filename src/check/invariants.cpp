#include "check/invariants.hpp"

#include <cmath>
#include <cstdio>
#include <utility>

#include "core/parallel_sim.hpp"
#include "seq/constraints.hpp"
#include "seq/engine.hpp"
#include "seq/integrator.hpp"
#include "topo/exclusions.hpp"
#include "topo/molecule.hpp"

namespace scalemd {

namespace {

std::string describe(const char* fmt, double a, double b) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), fmt, a, b);
  return buf;
}

}  // namespace

InvariantChecker::InvariantChecker(const InvariantOptions& opts, ViolationLog* log)
    : opts_(opts), log_(log != nullptr ? log : &owned_log_) {}

bool InvariantChecker::fail(int step, const char* term, double magnitude,
                            double bound, std::string detail) {
  log_->add({step, term, magnitude, bound, std::move(detail)});
  return false;
}

void InvariantChecker::attach(SequentialEngine& engine) {
  engine.set_step_observer(
      [this](const SequentialEngine& e, int step) { observe(e, step); });
}

void InvariantChecker::attach(ParallelSim& sim) {
  sim.set_cycle_observer(
      [this](const ParallelSim& s, int /*steps*/) { observe_cycle(s); });
}

void InvariantChecker::observe(const SequentialEngine& engine, int step) {
  if (opts_.every > 1 && step % opts_.every != 0) return;
  if (opts_.check_net_force) check_net_force(engine.forces(), step);
  if (opts_.check_momentum) {
    check_momentum(engine.velocities(), engine.masses(), step);
  }
  if (opts_.check_energy) check_energy(engine.total_energy(), step);
  if (opts_.check_exclusions) {
    check_exclusions(engine.molecule(), engine.exclusions(),
                     engine.options().nonbonded, engine.work(), step);
  }
  if (constraints_ != nullptr) {
    check_constraints(*constraints_, engine.positions(), step);
  }
}

bool InvariantChecker::check_net_force(std::span<const Vec3> forces, int step) {
  ++checks_run_;
  Vec3 net;
  double scale = 0.0;
  for (const Vec3& f : forces) {
    net += f;
    scale += std::fabs(f.x) + std::fabs(f.y) + std::fabs(f.z);
  }
  const double magnitude = norm(net);
  const double bound = opts_.net_force_rel * scale + opts_.abs_floor;
  if (magnitude <= bound) return true;
  return fail(step, "net-force", magnitude, bound,
              describe("|sum F| = %.3e, sum |F| = %.3e", magnitude, scale));
}

bool InvariantChecker::check_momentum(std::span<const Vec3> velocities,
                                      std::span<const double> masses, int step) {
  ++checks_run_;
  Vec3 net;
  double scale = 0.0;
  for (std::size_t i = 0; i < velocities.size(); ++i) {
    const Vec3 p = velocities[i] * masses[i];
    net += p;
    scale += std::fabs(p.x) + std::fabs(p.y) + std::fabs(p.z);
  }
  const double magnitude = norm(net);
  const double bound = opts_.momentum_rel * scale + opts_.abs_floor;
  if (magnitude <= bound) return true;
  return fail(step, "net-momentum", magnitude, bound,
              describe("|sum p| = %.3e, sum |p| = %.3e", magnitude, scale));
}

bool InvariantChecker::check_energy(double total_energy, int step) {
  ++checks_run_;
  if (!have_reference_energy_) {
    reference_energy_ = total_energy;
    have_reference_energy_ = true;
    return true;
  }
  const double magnitude = std::fabs(total_energy - reference_energy_);
  const double bound =
      opts_.energy_drift_rel * std::max(1.0, std::fabs(reference_energy_));
  if (magnitude <= bound) return true;
  return fail(step, "energy-drift", magnitude, bound,
              describe("E = %.10e, E0 = %.10e", total_energy, reference_energy_));
}

bool InvariantChecker::check_exclusions(const Molecule& mol,
                                        const ExclusionTable& excl,
                                        const NonbondedOptions& nb,
                                        const WorkCounters& work, int step) {
  ++checks_run_;
  // Independent O(N^2) reference: the count of pairs any correct kernel must
  // evaluate — inside the cutoff and not fully excluded (1-4 pairs are
  // evaluated, scaled). A kernel that let an excluded pair contribute, or
  // dropped an interacting one, disagrees with this count.
  const auto& pos = mol.positions();
  const double cutoff2 = nb.cutoff * nb.cutoff;
  std::uint64_t expected = 0;
  const int n = mol.atom_count();
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (norm2(pos[static_cast<std::size_t>(i)] -
                pos[static_cast<std::size_t>(j)]) >= cutoff2) {
        continue;
      }
      if (excl.check(i, j) == ExclusionKind::kFull) continue;
      ++expected;
    }
  }
  if (work.pairs_computed == expected) return true;
  const double diff = std::fabs(static_cast<double>(work.pairs_computed) -
                                static_cast<double>(expected));
  return fail(step, "exclusion-completeness", diff, 0.0,
              describe("pairs computed = %.0f, brute-force reference = %.0f",
                       static_cast<double>(work.pairs_computed),
                       static_cast<double>(expected)));
}

bool InvariantChecker::check_constraints(const BondConstraints& constraints,
                                         std::span<const Vec3> positions,
                                         int step) {
  ++checks_run_;
  const double magnitude = constraints.max_violation(positions);
  if (magnitude <= opts_.constraint_tol) return true;
  return fail(step, "constraint-tolerance", magnitude, opts_.constraint_tol,
              describe("max |r2 - d2| / d2 = %.3e over %.0f constraints",
                       magnitude,
                       static_cast<double>(constraints.constraint_count())));
}

void InvariantChecker::observe_cycle(const ParallelSim& sim) {
  const int step = sim.total_steps();
  if (opts_.every > 1 && step % opts_.every != 0) return;

  // Message conservation, in two parts. First the accounting identity: every
  // message the machine was offered is either executed, still pending, or was
  // removed *by the fault engine* (dropped / discarded at a dead PE). A
  // message the runtime loses without the fault engine's involvement breaks
  // the balance.
  ++checks_run_;
  const MessageAccounting& acct = sim.backend().accounting();
  if (!acct.conserved()) {
    fail(step, "message-conservation",
         static_cast<double>(acct.offered + acct.duplicated),
         static_cast<double>(acct.dropped_fault + acct.discarded_dead_pe +
                             acct.executed + acct.pending()),
         describe("offered+dup = %.0f, accounted = %.0f",
                  static_cast<double>(acct.offered + acct.duplicated),
                  static_cast<double>(acct.dropped_fault +
                                      acct.discarded_dead_pe + acct.executed +
                                      acct.pending())));
  }

  // Second, quiescence: a finished cycle must leave nothing in flight. With
  // the identity above, anything still queued here is a genuine leak, not a
  // fault-engine drop (those are already accounted).
  ++checks_run_;
  if (!sim.backend().idle() || acct.pending() != 0) {
    fail(step, "message-conservation", static_cast<double>(acct.pending()), 0.0,
         "messages still queued at run_cycle quiesce");
  }

  // Recovery completeness: every patch must have finished the cycle's last
  // step. False means faults ate work the runtime did not win back (no
  // checkpoint, retry budget exhausted, or the restart cap was hit); the
  // remaining checks would read mid-step state, so stop here.
  ++checks_run_;
  if (!sim.last_cycle_complete()) {
    fail(step, "cycle-completion", 1.0, 0.0,
         "cycle stalled by unrecovered faults (work lost, no restart)");
    return;
  }

  // Abandonment accountability: the reliable layer may give up on a send,
  // but every give-up must be explained. A send abandoned because its
  // destination died, or one whose payload executed (only the acks were
  // lost), needs no repair. A send lost at a *live* PE removed real work,
  // so the run is only sound if a checkpoint restart replayed it — reaching
  // this point (cycle complete) with such losses and zero restarts means
  // the runtime silently dropped work and still claimed success.
  if (const ReliableComm* rel = sim.reliable()) {
    ++checks_run_;
    const ReliableStats& rs = rel->stats();
    if (rs.abandoned_lost > 0 && sim.restarts() == 0) {
      fail(step, "abandonment-accountability",
           static_cast<double>(rs.abandoned_lost), 0.0,
           describe("%.0f send(s) abandoned at live PEs with %.0f restarts",
                    static_cast<double>(rs.abandoned_lost),
                    static_cast<double>(sim.restarts())));
    }
  }

  // Reduction completeness: one reduction round per completed global step
  // (each cycle contributes steps + 1 rounds, including its bootstrap step),
  // which is exactly the step-completion history length.
  ++checks_run_;
  const double rounds = static_cast<double>(sim.reduction_results().size());
  const double want = static_cast<double>(sim.step_completion().size());
  if (rounds != want) {
    fail(step, "reduction-completeness", rounds, want,
         describe("reduction rounds = %.0f, step records = %.0f", rounds, want));
  }

  if (!sim.options().numeric) return;

  // Physics of the gathered global state.
  const std::vector<Vec3> forces = sim.gather_forces();
  const std::vector<Vec3> velocities = sim.gather_velocities();
  std::vector<double> masses;
  masses.reserve(static_cast<std::size_t>(sim.molecule().atom_count()));
  for (const Atom& a : sim.molecule().atoms()) masses.push_back(a.mass);
  if (opts_.check_net_force) check_net_force(forces, step);
  if (opts_.check_momentum) check_momentum(velocities, masses, step);

  // Reduction correctness: the final round's tree-reduced kinetic energy
  // must equal the kinetic energy of the gathered state (summed in a
  // different order).
  if (!sim.reduction_results().empty()) {
    ++checks_run_;
    const double reduced = sim.reduction_results().back();
    const double direct = kinetic_energy(velocities, masses);
    const double magnitude = std::fabs(reduced - direct);
    const double bound =
        opts_.reduction_rel * std::max(1.0, std::fabs(direct)) + opts_.abs_floor;
    if (magnitude > bound) {
      fail(step, "reduction-kinetic", magnitude, bound,
           describe("reduced = %.10e, gathered = %.10e", reduced, direct));
    }
  }
}

}  // namespace scalemd
