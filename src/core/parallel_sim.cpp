#include "core/parallel_sim.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <map>
#include <cmath>

#include <fcntl.h>
#include <unistd.h>

#include "ewald/full_elec.hpp"
#include "ff/bonded.hpp"
#include "lb/diffusion.hpp"
#include "lb/evacuate.hpp"
#include "lb/greedy.hpp"
#include "lb/naive.hpp"
#include "lb/problem.hpp"
#include "lb/rcb.hpp"
#include "lb/refine.hpp"
#include "rts/multicast.hpp"
#include "rts/threaded_backend.hpp"
#include "seq/integrator.hpp"
#include "util/units.hpp"

namespace scalemd {

// ---------------------------------------------------------------------------
// Runtime state structs
// ---------------------------------------------------------------------------

/// Home-patch runtime state: the atoms it owns plus step bookkeeping.
struct ParallelSim::PatchRt {
  std::vector<int> atoms;  ///< global atom ids
  std::vector<Vec3> pos, vel, frc;
  std::vector<double> mass;
  int step = 0;               ///< next advance index within the cycle
  int contrib_expected = 0;   ///< PEs (incl. home) that send force contributions
  int contrib_received = 0;
  /// Proxy ids in the order their contributions arrived this round. Only
  /// recorded under the injected arrival-order defect (see ParallelOptions::
  /// debug_fold_arrival_order); empty otherwise.
  std::vector<int> arrival;
  /// Full-electrostatics runs: per-slab PME force shares for the current
  /// force round, assigned whole by on_pme_force and folded after the
  /// compute contributions in slab order.
  std::vector<std::vector<Vec3>> pme_frc;

  int natoms() const { return static_cast<int>(atoms.size()); }
};

/// Proxy-patch state for one (patch, pe): the compute objects on that PE
/// that read the patch, plus one private force buffer (scratch slot) per
/// compute. The home patch folds every slot of every proxy in global
/// compute-id order (patch_contribs_) once all contributions are in, so
/// the sum is independent of the order the computes actually executed in —
/// message faults, retries, placement changes and real thread timing
/// reorder execution but not the physics.
struct ParallelSim::ProxyRt {
  int patch = 0;
  int pe = 0;
  std::vector<int> computes;
  int pending = 0;  ///< computes not yet finished this step
  std::vector<std::vector<Vec3>> scratch;  ///< per-compute, parallel to `computes`
};

/// Per-compute runtime state.
struct ParallelSim::ComputeRt {
  std::vector<int> deps;  ///< current patch dependencies (bonded deps can
                          ///< change after atom migration)
  int deps_pending = 0;
  WorkCounters work;      ///< live-measured work (numeric mode)
};

/// Runtime state of one parallel-PME slab object. Every buffer is per-round
/// transient: the PME pipeline is a per-step barrier (all patches deposit
/// atoms before any slab spreads; all patches wait on every slab's force
/// share before advancing), so by the time any step-(s+1) message can reach
/// a slab its step-s state has been fully consumed — one set of buffers
/// suffices, with no per-step keying.
struct ParallelSim::PmeSlabRt {
  int step = 0;             ///< local step currently assembling
  int atoms_pending = 0;    ///< patch deposits yet to arrive this round
  int fwd_pending = 0;      ///< forward transpose blocks yet to arrive
  int bwd_pending = 0;      ///< backward transpose blocks yet to arrive
  double recip_energy = 0.0;  ///< phase-2 reciprocal partial of this round
  // Numeric mode only: per-patch position deposits, the assembled
  // global-order snapshot, and the two grid chunks (plane / column roles).
  std::vector<std::vector<Vec3>> patch_pos;
  std::vector<Vec3> all_pos;
  std::vector<std::complex<double>> planes, columns;
};

/// Coordinated in-memory checkpoint: everything needed to replay from a
/// quiesced cycle boundary. Placement (patch_home/compute_pe) is captured
/// too, so a restore rewinds any load balancing done since, and evacuation
/// always starts from a self-consistent snapshot.
struct ParallelSim::Checkpoint {
  double taken_at = 0.0;  ///< virtual time of the snapshot
  std::vector<PatchRt> patches;
  std::vector<std::pair<int, int>> atom_loc;
  std::vector<std::vector<int>> compute_deps;
  std::vector<int> patch_home;
  std::vector<int> compute_pe;
  std::vector<int> slab_pe;  ///< PME slab placement (empty when PME is off)
  std::vector<double> reduction_totals;
  std::vector<EnergyTerms> potential_per_step;
  std::vector<double> step_completion;
  std::vector<double> step_last_advance;
  std::vector<int> steps_done_counter;
  int global_steps = 0;
  Rng noise_rng{0};
};

// ---------------------------------------------------------------------------
// Workload
// ---------------------------------------------------------------------------

namespace {

/// Probe pass: run the unsplit non-bonded kernels once to measure real
/// per-object costs, so grain-size splitting works from measurements.
MeasuredCosts probe_costs(const Molecule& mol, const Decomposition& d,
                          const MachineModel& machine, const NonbondedOptions& nb) {
  ComputePlanOptions probe_opts;
  probe_opts.split_self = false;
  probe_opts.split_face_pairs = false;
  probe_opts.migratable_intra_bonded = false;
  const ComputePlan probe(d, mol, machine, probe_opts);
  const WorkCache w(mol, d, probe, nb);
  MeasuredCosts mc;
  mc.self.assign(static_cast<std::size_t>(d.patch_count()), 0.0);
  for (std::size_t i = 0; i < probe.computes().size(); ++i) {
    const ComputeDesc& desc = probe.computes()[i];
    const double cost = work_cost(w.per_compute(i), machine);
    if (desc.kind == ComputeKind::kSelf) {
      mc.self[static_cast<std::size_t>(desc.patches[0])] = cost;
    } else if (desc.kind == ComputeKind::kPair) {
      mc.pair[{desc.patches[0], desc.patches[1]}] = cost;
    }
  }
  return mc;
}

}  // namespace

Workload::Workload(const Molecule& molecule, const MachineModel& machine,
                   const NonbondedOptions& nonbonded_opts,
                   const ComputePlanOptions& plan_opts)
    : mol(&molecule),
      nonbonded(nonbonded_opts),
      decomp(molecule, nonbonded_opts.cutoff),
      measured(probe_costs(molecule, decomp, machine, nonbonded_opts)),
      plan(decomp, molecule, machine, plan_opts, &measured),
      work(molecule, decomp, plan, nonbonded_opts) {}

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

ParallelSim::ParallelSim(const Workload& workload, const ParallelOptions& opts)
    : wl_(&workload), opts_(opts), mol_(workload.mol) {
  if (opts_.numeric) {
    excl_ = ExclusionTable::build(*mol_);
    charges_.reserve(static_cast<std::size_t>(mol_->atom_count()));
    for (const Atom& a : mol_->atoms()) {
      charges_.push_back(a.charge);
      lj_types_.push_back(a.lj_type);
    }
    nb_ctx_ = std::make_unique<NonbondedContext>(mol_->params, excl_, charges_,
                                                 lj_types_, wl_->nonbonded);
    tiled_ws_.resize(static_cast<std::size_t>(opts_.num_pes));
    if (wl_->nonbonded.kernel == NonbondedKernel::kTiledThreads) {
      const int t = wl_->nonbonded.threads > 0 ? wl_->nonbonded.threads
                                               : ThreadPool::default_threads();
      nb_pool_ = std::make_unique<ThreadPool>(t);
    }
  }

  if (opts_.backend == BackendKind::kThreaded) {
    // The threaded backend runs tasks for real: only numeric mode has real
    // work to run, and the layers built on DES timer semantics (fault
    // injection, reliable delivery, checkpoint/restart) stay DES-only.
    assert(opts_.numeric && "threaded backend requires numeric mode");
    assert(opts_.fault.empty() && !opts_.reliable &&
           opts_.checkpoint_every == 0 &&
           "fault/recovery layers require the simulated backend");
    assert(wl_->nonbonded.kernel != NonbondedKernel::kTiledThreads &&
           "tiled-threads kernel would nest thread pools; use kTiled");
    exec_ = std::make_unique<ThreadedBackend>(opts_.num_pes, opts_.machine,
                                              opts_.threads);
  } else if (opts_.backend == BackendKind::kProcess) {
    // The process backend also executes for real, in forked worker
    // processes. Modeled fault plans and reliable delivery stay DES-only,
    // but checkpointing IS supported: failures here are real worker deaths
    // (SIGKILL, crash, hang), and recovery replays from an on-disk
    // checkpoint.
    assert(opts_.numeric && "process backend requires numeric mode");
    assert(opts_.fault.empty() && !opts_.reliable &&
           "fault modeling and reliable delivery require the simulated backend");
    assert(wl_->nonbonded.kernel != NonbondedKernel::kTiledThreads &&
           "tiled-threads kernel would nest thread pools; use kTiled");
    auto proc = std::make_unique<ProcessBackend>(opts_.num_pes, opts_.machine,
                                                 opts_.process);
    proc_ = proc.get();
    exec_ = std::move(proc);
  } else {
    auto des = std::make_unique<Simulator>(opts_.num_pes, opts_.machine);
    des_ = des.get();
    exec_ = std::move(des);
    if (!opts_.fault.empty()) des_->set_fault_plan(opts_.fault);
  }
  EntryRegistry& reg = exec_->entries();
  e_advance_ = reg.add("Patch::integrate", WorkCategory::kIntegration);
  e_coords_ = reg.add("Proxy::recvCoordinates", WorkCategory::kComm);
  e_forces_ = reg.add("Patch::recvForces", WorkCategory::kComm);
  e_self_ = reg.add("ComputeNonbondedSelf::doWork", WorkCategory::kNonbonded);
  e_pair_ = reg.add("ComputeNonbondedPair::doWork", WorkCategory::kNonbonded);
  e_bonded_intra_ = reg.add("ComputeBondedIntra::doWork", WorkCategory::kBonded);
  e_bonded_inter_ = reg.add("ComputeBondedInter::doWork", WorkCategory::kBonded);
  e_reduction_ = reg.add("Reduction::combine", WorkCategory::kComm);
  e_migrate_ = reg.add("Migrate::recv", WorkCategory::kComm);
  e_checkpoint_ = reg.add("Checkpoint::store", WorkCategory::kComm);
  if (wl_->nonbonded.full_elec.enabled) {
    // Full electrostatics: S slab objects carry the reciprocal solve. The
    // entries exist on every backend (the process wire needs their ids
    // before setup_process_wire registers decoders).
    assert(full_elec_error(wl_->nonbonded.full_elec) == nullptr &&
           "invalid full-electrostatics options");
    pme_plan_ = std::make_unique<PmeSlabPlan>(
        mol_->box, to_pme_options(wl_->nonbonded.full_elec),
        std::max(1, opts_.pme.slabs));
    e_pme_atoms_ = reg.add("PmeSlab::recvAtoms", WorkCategory::kNonbonded);
    e_pme_tr_fwd_ =
        reg.add("PmeSlab::recvTransposeFwd", WorkCategory::kNonbonded);
    e_pme_tr_bwd_ =
        reg.add("PmeSlab::recvTransposeBwd", WorkCategory::kNonbonded);
    e_pme_force_ = reg.add("Patch::recvPmeForces", WorkCategory::kComm);
  }
  if (opts_.reliable) {
    assert(des_ != nullptr);
    reliable_ = std::make_unique<ReliableComm>(*des_, opts_.reliable_opts);
  }
  if (proc_ != nullptr) setup_process_wire();

  // PME slabs are load-balancer objects too: their task records use ids
  // just past the migratable computes (see load_balance).
  db_ = std::make_unique<LoadDatabase>(
      static_cast<std::size_t>(wl_->plan.migratable_count()) +
          (pme_plan_ != nullptr ? static_cast<std::size_t>(pme_plan_->slabs())
                                : 0),
      opts_.num_pes);
  sinks_.add(db_.get());
  exec_->set_sink(&sinks_);

  // Patch runtime state from the decomposition.
  const auto& patch_atoms = wl_->decomp.patch_atoms();
  patches_.resize(patch_atoms.size());
  atom_loc_.resize(static_cast<std::size_t>(mol_->atom_count()));
  for (std::size_t p = 0; p < patch_atoms.size(); ++p) {
    PatchRt& pr = patches_[p];
    pr.atoms = patch_atoms[p];
    if (opts_.numeric) {
      pr.pos.reserve(pr.atoms.size());
      pr.vel.reserve(pr.atoms.size());
      pr.mass.reserve(pr.atoms.size());
      for (int a : pr.atoms) {
        pr.pos.push_back(mol_->positions()[static_cast<std::size_t>(a)]);
        pr.vel.push_back(mol_->velocities()[static_cast<std::size_t>(a)]);
        pr.mass.push_back(mol_->atoms()[static_cast<std::size_t>(a)].mass);
      }
      pr.frc.assign(pr.atoms.size(), Vec3{});
    }
    for (std::size_t i = 0; i < pr.atoms.size(); ++i) {
      atom_loc_[static_cast<std::size_t>(pr.atoms[i])] = {static_cast<int>(p),
                                                          static_cast<int>(i)};
    }
  }
  active_patches_ = static_cast<int>(patches_.size());

  // Compute runtime state.
  computes_.resize(wl_->plan.computes().size());
  for (std::size_t i = 0; i < computes_.size(); ++i) {
    computes_[i].deps = wl_->plan.computes()[i].patches;
  }

  if (pme_plan_ != nullptr) {
    pme_slabs_.resize(static_cast<std::size_t>(pme_plan_->slabs()));
    pme_place_slabs();
  }

  build_initial_placement();
  rebuild_dataflow();
  rebuild_reducer();
}

ParallelSim::~ParallelSim() = default;

void ParallelSim::build_initial_placement() {
  // Stage 1 of the paper's load balancing: recursive coordinate bisection of
  // patches, then computes placed on the home PE of their base patch. A
  // caller that already has the RCB result (the serve topology cache shares
  // one across identical-topology jobs) passes it in instead.
  if (opts_.initial_patch_home != nullptr &&
      opts_.initial_patch_home->size() ==
          static_cast<std::size_t>(wl_->decomp.patch_count())) {
    patch_home_ = *opts_.initial_patch_home;
  } else {
    patch_home_ = rcb_patch_map(wl_->decomp.patch_centers(),
                                wl_->decomp.patch_weights(), opts_.num_pes);
  }
  compute_pe_.resize(wl_->plan.computes().size());
  for (std::size_t i = 0; i < compute_pe_.size(); ++i) {
    compute_pe_[i] =
        patch_home_[static_cast<std::size_t>(wl_->plan.computes()[i].base_patch)];
  }
}

void ParallelSim::rebuild_reducer() {
  // Per-step energy reduction: one contribution per patch, from its home PE.
  // Rebuilt whenever patch homes change (evacuation): the tree spans the
  // contributing PEs. A rebuild also discards any partially filled round,
  // which is exactly what checkpoint restart needs.
  std::vector<int> contributor_pes;
  contributor_pes.reserve(patches_.size());
  for (std::size_t p = 0; p < patches_.size(); ++p) {
    contributor_pes.push_back(patch_home_[p]);
  }
  reducer_ = std::make_unique<Reducer>(
      contributor_pes, e_reduction_, [this](int round, double total) {
        if (static_cast<std::size_t>(round) >= reduction_totals_.size()) {
          reduction_totals_.resize(static_cast<std::size_t>(round) + 1, 0.0);
        }
        reduction_totals_[static_cast<std::size_t>(round)] = total;
      });
  if (reliable_) reducer_->set_reliable(reliable_.get());
  if (proc_ != nullptr) reducer_->set_wire(true);
}

void ParallelSim::rsend(ExecContext& ctx, int dest, TaskMsg msg) {
  if (reliable_) {
    reliable_->send(ctx, dest, std::move(msg));
  } else {
    ctx.send(dest, std::move(msg));
  }
}

void ParallelSim::rebuild_dataflow() {
  proxies_.clear();
  patch_proxy_ids_.assign(patches_.size(), {});

  auto proxy_for = [&](int patch, int pe) -> ProxyRt& {
    for (int id : patch_proxy_ids_[static_cast<std::size_t>(patch)]) {
      if (proxies_[static_cast<std::size_t>(id)].pe == pe) {
        return proxies_[static_cast<std::size_t>(id)];
      }
    }
    patch_proxy_ids_[static_cast<std::size_t>(patch)].push_back(
        static_cast<int>(proxies_.size()));
    proxies_.push_back(ProxyRt{patch, pe, {}, 0, {}});
    return proxies_.back();
  };

  for (std::size_t i = 0; i < computes_.size(); ++i) {
    for (int patch : computes_[i].deps) {
      proxy_for(patch, compute_pe_[i]).computes.push_back(static_cast<int>(i));
    }
    computes_[i].deps_pending = static_cast<int>(computes_[i].deps.size());
  }

  patch_contribs_.assign(patches_.size(), {});
  for (std::size_t p = 0; p < patches_.size(); ++p) {
    patches_[p].contrib_expected =
        static_cast<int>(patch_proxy_ids_[p].size());
    // Full electrostatics: the patch also waits for one force share from
    // every PME slab each round.
    if (pme_plan_ != nullptr) {
      patches_[p].contrib_expected += pme_plan_->slabs();
    }
    patches_[p].contrib_received = 0;
    if (opts_.numeric) {
      // Canonical fold order for the patch's force: every contributing
      // (proxy, slot) pair sorted by compute id. Within one proxy the
      // slots are already ascending (computes registered in id order), so
      // sorting by the slot's compute id gives one global order that no
      // placement or schedule can change.
      std::vector<std::pair<int, std::pair<int, int>>> order;
      for (int id : patch_proxy_ids_[p]) {
        ProxyRt& proxy = proxies_[static_cast<std::size_t>(id)];
        proxy.scratch.assign(proxy.computes.size(),
                             std::vector<Vec3>(patches_[p].atoms.size()));
        for (std::size_t k = 0; k < proxy.computes.size(); ++k) {
          order.push_back({proxy.computes[k], {id, static_cast<int>(k)}});
        }
      }
      std::sort(order.begin(), order.end());
      patch_contribs_[p].reserve(order.size());
      for (const auto& o : order) patch_contribs_[p].push_back(o.second);
    }
  }
}

double ParallelSim::noisy(double cost) {
  const double sigma = opts_.machine.task_noise;
  if (sigma <= 0.0) return cost;
  return cost * std::max(0.2, 1.0 + sigma * noise_rng_.normal());
}

int ParallelSim::proxy_index(int patch, int pe) const {
  for (int id : patch_proxy_ids_[static_cast<std::size_t>(patch)]) {
    if (proxies_[static_cast<std::size_t>(id)].pe == pe) return id;
  }
  return -1;
}

// ---------------------------------------------------------------------------
// Step dataflow
// ---------------------------------------------------------------------------

void ParallelSim::publish_coords(ExecContext& ctx, int patch) {
  PatchRt& pr = patches_[static_cast<std::size_t>(patch)];
  const int home = patch_home_[static_cast<std::size_t>(patch)];
  const std::size_t bytes = static_cast<std::size_t>(opts_.msg_header_bytes) +
                            static_cast<std::size_t>(pr.natoms()) *
                                static_cast<std::size_t>(opts_.bytes_per_atom_coord);

  // Home-side proxy (if any computes run here) is serviced directly.
  std::vector<int> remote;
  for (int id : patch_proxy_ids_[static_cast<std::size_t>(patch)]) {
    const int pe = proxies_[static_cast<std::size_t>(id)].pe;
    if (pe == home) {
      on_recv_coords(ctx, patch, pe);
    } else {
      remote.push_back(pe);
    }
  }
  multicast(
      ctx, remote, bytes, opts_.optimized_multicast,
      [this, patch, home, &pr](int pe) {
        TaskMsg msg;
        msg.entry = e_coords_;
        msg.priority = -1;
        // Proxies in another worker process cannot read the home replica;
        // ship the step index and the coordinates themselves.
        if (proc_ != nullptr && proc_->owner_of(pe) != proc_->owner_of(home)) {
          msg.has_wire = true;
          msg.wire.ints = {patch, pr.step};
          msg.wire.reals.reserve(pr.pos.size() * 3);
          for (const Vec3& v : pr.pos) {
            msg.wire.reals.push_back(v.x);
            msg.wire.reals.push_back(v.y);
            msg.wire.reals.push_back(v.z);
          }
        }
        msg.fn = [this, patch, pe](ExecContext& c) {
          c.charge_pack(
              static_cast<double>(
                  static_cast<std::size_t>(opts_.msg_header_bytes) +
                  static_cast<std::size_t>(
                      patches_[static_cast<std::size_t>(patch)].natoms()) *
                      static_cast<std::size_t>(opts_.bytes_per_atom_coord)) *
              c.machine().unpack_byte_cost);
          on_recv_coords(c, patch, pe);
        };
        return msg;
      },
      reliable_.get());

  // Full electrostatics: deposit this patch's positions on every PME slab
  // (with PME on, contrib_expected >= slabs > 0, so the empty-patch special
  // case below stays dormant and even an empty patch is gated on the slab
  // force shares).
  if (pme_plan_ != nullptr) publish_pme_atoms(ctx, patch);

  // A patch no compute reads (e.g. an empty cube) must still advance.
  if (pr.contrib_expected == 0) {
    on_contribution(ctx, patch, -1);
  }
}

void ParallelSim::on_recv_coords(ExecContext& ctx, int patch, int pe) {
  ProxyRt& proxy = proxies_[static_cast<std::size_t>(proxy_index(patch, pe))];
  proxy.pending = static_cast<int>(proxy.computes.size());
  if (opts_.numeric) {
    for (auto& s : proxy.scratch) std::fill(s.begin(), s.end(), Vec3{});
  }
  for (int c : proxy.computes) {
    if (--computes_[static_cast<std::size_t>(c)].deps_pending == 0) {
      computes_[static_cast<std::size_t>(c)].deps_pending =
          static_cast<int>(computes_[static_cast<std::size_t>(c)].deps.size());
      const ComputeDesc& desc = wl_->plan.computes()[static_cast<std::size_t>(c)];
      TaskMsg msg;
      msg.entry = desc.kind == ComputeKind::kSelf   ? e_self_
                  : desc.kind == ComputeKind::kPair ? e_pair_
                  : desc.migratable                 ? e_bonded_intra_
                                                    : e_bonded_inter_;
      const int mi = wl_->plan.migratable_index()[static_cast<std::size_t>(c)];
      msg.object = mi >= 0 ? static_cast<std::uint64_t>(mi) + 1 : 0;
      msg.fn = [this, c](ExecContext& cc) { run_compute(cc, c); };
      ctx.send(pe, std::move(msg));
    }
  }
}

void ParallelSim::run_compute(ExecContext& ctx, int compute) {
  const ComputeDesc& desc = wl_->plan.computes()[static_cast<std::size_t>(compute)];
  ComputeRt& rt = computes_[static_cast<std::size_t>(compute)];
  const int pe = ctx.pe();

  if (opts_.numeric) {
    WorkCounters w;
    EnergyTerms e;
    const int step_global = step_base_ + patches_[static_cast<std::size_t>(
                                             desc.patches[0])].step;
    // This compute's private force buffer for `patch` (its slot in the
    // proxy's scratch); accumulation into the shared buffer happens in
    // canonical slot order at complete_patch_on_pe.
    auto scratch_of = [&](int patch) -> std::vector<Vec3>& {
      ProxyRt& proxy =
          proxies_[static_cast<std::size_t>(proxy_index(patch, pe))];
      for (std::size_t k = 0; k < proxy.computes.size(); ++k) {
        if (proxy.computes[k] == compute) return proxy.scratch[k];
      }
      assert(false && "compute not registered on its proxy");
      return proxy.scratch[0];
    };
    switch (desc.kind) {
      case ComputeKind::kSelf: {
        PatchRt& pa = patches_[static_cast<std::size_t>(desc.patches[0])];
        std::vector<Vec3>& fa = scratch_of(desc.patches[0]);
        const std::size_t n = pa.atoms.size();
        const auto b = static_cast<std::size_t>(std::lround(desc.frac_begin * n));
        const auto en = static_cast<std::size_t>(std::lround(desc.frac_end * n));
        switch (wl_->nonbonded.kernel) {
          case NonbondedKernel::kScalar:
            e = nonbonded_self_range(*nb_ctx_, pa.atoms, pa.pos, fa, b, en, w);
            break;
          case NonbondedKernel::kTiled:
            e = nonbonded_self_range_tiled(*nb_ctx_, pa.atoms, pa.pos, fa, b,
                                           en, w,
                                           tiled_ws_[static_cast<std::size_t>(pe)]);
            break;
          case NonbondedKernel::kTiledThreads:
            e = nonbonded_self_range_tiled_mt(*nb_ctx_, pa.atoms, pa.pos, fa,
                                              b, en, w, tiled_mt_ws_, *nb_pool_);
            break;
        }
        break;
      }
      case ComputeKind::kPair: {
        PatchRt& pa = patches_[static_cast<std::size_t>(desc.patches[0])];
        PatchRt& pb = patches_[static_cast<std::size_t>(desc.patches[1])];
        std::vector<Vec3>& fa = scratch_of(desc.patches[0]);
        std::vector<Vec3>& fb = scratch_of(desc.patches[1]);
        const std::size_t n = pa.atoms.size();
        const auto b = static_cast<std::size_t>(std::lround(desc.frac_begin * n));
        const auto en = static_cast<std::size_t>(std::lround(desc.frac_end * n));
        switch (wl_->nonbonded.kernel) {
          case NonbondedKernel::kScalar:
            e = nonbonded_ab_range(*nb_ctx_, pa.atoms, pa.pos, fa, pb.atoms,
                                   pb.pos, fb, b, en, w);
            break;
          case NonbondedKernel::kTiled:
            e = nonbonded_ab_range_tiled(*nb_ctx_, pa.atoms, pa.pos, fa,
                                         pb.atoms, pb.pos, fb, b, en, w,
                                         tiled_ws_[static_cast<std::size_t>(pe)]);
            break;
          case NonbondedKernel::kTiledThreads:
            e = nonbonded_ab_range_tiled_mt(*nb_ctx_, pa.atoms, pa.pos, fa,
                                            pb.atoms, pb.pos, fb, b, en, w,
                                            tiled_mt_ws_, *nb_pool_);
            break;
        }
        break;
      }
      default: {
        // Bonded kinds: fetch coordinates by atom location, scatter forces
        // into this compute's scratch slots of the owning patches' proxies.
        auto pos_of = [&](int atom) -> const Vec3& {
          const auto [p, idx] = atom_loc_[static_cast<std::size_t>(atom)];
          return patches_[static_cast<std::size_t>(p)].pos[static_cast<std::size_t>(idx)];
        };
        auto frc_of = [&](int atom) -> Vec3& {
          const auto [p, idx] = atom_loc_[static_cast<std::size_t>(atom)];
          return scratch_of(p)[static_cast<std::size_t>(idx)];
        };
        for (int t : desc.terms) {
          switch (desc.kind) {
            case ComputeKind::kBonds: {
              const Bond& term = mol_->bonds()[static_cast<std::size_t>(t)];
              e.bond += bond_energy_force(pos_of(term.a), pos_of(term.b),
                                          mol_->params.bond(term.param),
                                          frc_of(term.a), frc_of(term.b));
              break;
            }
            case ComputeKind::kAngles: {
              const Angle& term = mol_->angles()[static_cast<std::size_t>(t)];
              e.angle += angle_energy_force(
                  pos_of(term.a), pos_of(term.b), pos_of(term.c),
                  mol_->params.angle(term.param), frc_of(term.a), frc_of(term.b),
                  frc_of(term.c));
              break;
            }
            case ComputeKind::kDihedrals: {
              const Dihedral& term = mol_->dihedrals()[static_cast<std::size_t>(t)];
              e.dihedral += dihedral_energy_force(
                  pos_of(term.a), pos_of(term.b), pos_of(term.c), pos_of(term.d),
                  mol_->params.dihedral(term.param), frc_of(term.a), frc_of(term.b),
                  frc_of(term.c), frc_of(term.d));
              break;
            }
            default: {
              const Improper& term = mol_->impropers()[static_cast<std::size_t>(t)];
              e.improper += improper_energy_force(
                  pos_of(term.a), pos_of(term.b), pos_of(term.c), pos_of(term.d),
                  mol_->params.improper(term.param), frc_of(term.a), frc_of(term.b),
                  frc_of(term.c), frc_of(term.d));
              break;
            }
          }
        }
        w.bonded_terms += desc.terms.size();
        break;
      }
    }
    rt.work = w;
    // Potential energy goes into this compute's private (compute, step)
    // slot by assignment — no shared accumulator to race on or to
    // double-count under fault replay. attempt_cycle folds the slots in
    // compute-id order once the cycle has quiesced.
    const int local_step = step_global - step_base_;
    if (local_step >= 0 && local_step <= cycle_target_) {
      potential_scratch_[static_cast<std::size_t>(compute) *
                             static_cast<std::size_t>(cycle_target_ + 1) +
                         static_cast<std::size_t>(local_step)] = e;
    }
    if (ctx.models_cost()) ctx.charge(noisy(work_cost(w, ctx.machine())));
  } else {
    ctx.charge(noisy(
        work_cost(wl_->work.per_compute(static_cast<std::size_t>(compute)),
                  ctx.machine())));
  }

  for (int patch : rt.deps) {
    ProxyRt& proxy = proxies_[static_cast<std::size_t>(proxy_index(patch, pe))];
    if (--proxy.pending == 0) {
      complete_patch_on_pe(ctx, patch, pe);
    }
  }
}

void ParallelSim::complete_patch_on_pe(ExecContext& ctx, int patch, int pe) {
  // All of this PE's computes reading `patch` are done; their scratch
  // slots stay put (advance() folds every slot of every proxy in global
  // compute-id order) and the home patch just gets the completion signal.
  // Under the threaded backend the mailbox handoff of that signal is also
  // what makes the slot writes visible to the home PE's worker.
  const int home = patch_home_[static_cast<std::size_t>(patch)];
  const int pxy = proxy_index(patch, pe);
  if (pe == home) {
    on_contribution(ctx, patch, pxy);
    return;
  }
  const std::size_t bytes = static_cast<std::size_t>(opts_.msg_header_bytes) +
                            static_cast<std::size_t>(
                                patches_[static_cast<std::size_t>(patch)].natoms()) *
                                static_cast<std::size_t>(opts_.bytes_per_atom_force);
  TaskMsg msg;
  msg.entry = e_forces_;
  msg.priority = -2;
  msg.bytes = bytes;
  // Crossing a worker boundary: the home process cannot read this worker's
  // scratch slots, so ship every slot of this proxy (flattened in slot
  // order; advance() still folds them in canonical compute-id order).
  if (proc_ != nullptr && proc_->owner_of(pe) != proc_->owner_of(home)) {
    const ProxyRt& proxy = proxies_[static_cast<std::size_t>(pxy)];
    msg.has_wire = true;
    msg.wire.ints = {patch, pxy};
    std::size_t total = 0;
    for (const auto& s : proxy.scratch) total += s.size() * 3;
    msg.wire.reals.reserve(total);
    for (const auto& s : proxy.scratch) {
      for (const Vec3& v : s) {
        msg.wire.reals.push_back(v.x);
        msg.wire.reals.push_back(v.y);
        msg.wire.reals.push_back(v.z);
      }
    }
  }
  msg.fn = [this, patch, pxy, bytes](ExecContext& c) {
    c.charge_pack(static_cast<double>(bytes) * c.machine().unpack_byte_cost);
    on_contribution(c, patch, pxy);
  };
  // The sender also pays to pack the outgoing force message.
  ctx.charge_pack(static_cast<double>(bytes) * ctx.machine().pack_byte_cost);
  rsend(ctx, home, std::move(msg));
}

void ParallelSim::on_contribution(ExecContext& ctx, int patch, int from_proxy) {
  PatchRt& pr = patches_[static_cast<std::size_t>(patch)];
  if (opts_.debug_fold_arrival_order && des_ != nullptr && from_proxy >= 0) {
    // Injected-defect bookkeeping only; see advance(). on_contribution runs
    // on the home PE exclusively, so this append is unsynchronized-safe.
    pr.arrival.push_back(from_proxy);
  }
  ++pr.contrib_received;
  if (pr.contrib_received < pr.contrib_expected) return;
  pr.contrib_received = 0;
  TaskMsg msg;
  msg.entry = e_advance_;
  msg.priority = -3;
  msg.fn = [this, patch](ExecContext& c) { advance(c, patch); };
  // on_contribution always runs on the home PE, so this send is local and
  // cannot be faulted; rsend keeps the routing uniform anyway.
  rsend(ctx, patch_home_[static_cast<std::size_t>(patch)], std::move(msg));
}

void ParallelSim::advance(ExecContext& ctx, int patch) {
  PatchRt& pr = patches_[static_cast<std::size_t>(patch)];
  const int s = pr.step;
  const int global = step_base_ + s;
  if (ctx.models_cost()) {
    ctx.charge(noisy(static_cast<double>(pr.natoms()) * ctx.machine().integrate_cost));
  }

  const double dt = opts_.dt_fs / units::kAkmaTimeFs;
  double reduction_value = 1.0;
  if (opts_.numeric) {
    std::fill(pr.frc.begin(), pr.frc.end(), Vec3{});
    const auto& contribs = patch_contribs_[static_cast<std::size_t>(patch)];
    if (opts_.debug_fold_arrival_order && des_ != nullptr) {
      // INJECTED DEFECT (ParallelOptions::debug_fold_arrival_order): fold in
      // message-ARRIVAL order instead of canonical compute-id order, so the
      // floating-point sum depends on the schedule. The scenario fuzzer's
      // self-test must detect and shrink this.
      for (const int arrived : pr.arrival) {
        for (const auto& [proxy_id, slot] : contribs) {
          if (proxy_id != arrived) continue;
          const std::vector<Vec3>& src =
              proxies_[static_cast<std::size_t>(proxy_id)]
                  .scratch[static_cast<std::size_t>(slot)];
          for (std::size_t i = 0; i < pr.frc.size(); ++i) pr.frc[i] += src[i];
        }
      }
      pr.arrival.clear();
    } else {
      // Canonical force accumulation: sum every contributing scratch slot in
      // global compute-id order (patch_contribs_), independent of message
      // arrival order, execution order, object placement and backend.
      for (const auto& [proxy_id, slot] : contribs) {
        const std::vector<Vec3>& src =
            proxies_[static_cast<std::size_t>(proxy_id)]
                .scratch[static_cast<std::size_t>(slot)];
        for (std::size_t i = 0; i < pr.frc.size(); ++i) pr.frc[i] += src[i];
      }
    }
    if (pme_plan_ != nullptr) {
      // PME slab force shares fold after the compute contributions, in slab
      // order — part of the same canonical order as the compute-id fold
      // above, so placement and schedule still cannot change a bit.
      for (const std::vector<Vec3>& blk : pr.pme_frc) {
        assert(blk.size() == pr.frc.size() && "missing PME force share");
        for (std::size_t i = 0; i < pr.frc.size(); ++i) pr.frc[i] += blk[i];
      }
    }
  }
  if (opts_.numeric) {
    const double kick_scale = s == static_cast<int>(cycle_target_) ? 0.5
                              : s == 0                             ? 0.5
                                                                   : 1.0;
    for (std::size_t i = 0; i < pr.vel.size(); ++i) {
      pr.vel[i] += pr.frc[i] * (kick_scale * dt / pr.mass[i]);
    }
    reduction_value = kinetic_energy(pr.vel, pr.mass);
  }

  if (s < cycle_target_) {
    if (opts_.numeric) {
      for (std::size_t i = 0; i < pr.pos.size(); ++i) pr.pos[i] += pr.vel[i] * dt;
    }
    pr.step = s + 1;
    publish_coords(ctx, patch);
  }

  reducer_->contribute(ctx, patch, global, reduction_value);

  {
    std::lock_guard<std::mutex> lock(progress_mu_);
    ++steps_done_counter_[static_cast<std::size_t>(global)];
    step_last_advance_[static_cast<std::size_t>(global)] =
        std::max(step_last_advance_[static_cast<std::size_t>(global)], ctx.now());
    if (steps_done_counter_[static_cast<std::size_t>(global)] == active_patches_) {
      step_completion_[static_cast<std::size_t>(global)] = ctx.now();
    }
  }
}

// ---------------------------------------------------------------------------
// Parallel PME pipeline
// ---------------------------------------------------------------------------
//
// Full-electrostatics runs add S slab objects to the machine, each a
// first-class message-driven object with a home PE, placeable and migratable
// like any compute. One force round runs a five-hop pipeline:
//
//   patches --atoms--> slabs   every patch deposits its positions on every
//       slab (spreading is z-local but atoms are not sorted by z, so each
//       slab needs the whole system). On the last deposit the slab spreads
//       charge onto its z-planes in global atom order and 2D-FFTs them.
//   slabs --fwd transpose--> slabs   S blocks re-lay the grid from z-planes
//       into y-row columns; the column owner z-FFTs each line, applies the
//       influence function (accumulating its reciprocal-energy partial in
//       fixed order), inverse z-FFTs, and
//   slabs --bwd transpose--> slabs   returns the blocks to the plane owners,
//       which inverse 2D-FFT, gather each atom's force share from their
//       planes, add their (slab mod S)-strided share of the exclusion
//       corrections and Ewald self energy, and
//   slabs --forces--> patches   one force share per patch; the patch folds
//       the S shares in slab order after the compute contributions.
//
// Determinism: every slab computes a pure function of the step's positions,
// every transpose block covers a disjoint grid region (insertion order
// cannot matter), and every fold is in a fixed order — so trajectories are
// bitwise identical across PE counts, placements, LB strategies and
// backends. The slab count partitions the sums, so S *is* part of the
// numerics contract and stays fixed across the differential matrix.
//
// The pipeline is a per-step barrier both ways (all patches feed all slabs,
// all patches then wait on all slabs), so one set of per-slab buffers
// suffices: no step-(s+1) message can reach a slab before its step-s state
// has been fully consumed.

void ParallelSim::pme_place_slabs() {
  const int s_count = pme_plan_->slabs();
  slab_pe_.resize(static_cast<std::size_t>(s_count));
  const int dedicated = std::min(opts_.pme.dedicated_ranks, opts_.num_pes);
  for (int s = 0; s < s_count; ++s) {
    if (dedicated > 0) {
      // Dedicated-PME-ranks mode (the trade-off NAMD weighs for its
      // reciprocal work): slabs pinned round-robin onto the last
      // `dedicated` PEs and excluded from load balancing.
      slab_pe_[static_cast<std::size_t>(s)] =
          opts_.num_pes - dedicated + (s % dedicated);
    } else {
      slab_pe_[static_cast<std::size_t>(s)] = s % opts_.num_pes;
    }
  }
}

double ParallelSim::pme_phase_cost(int slab, int phase) const {
  const MachineModel& m = opts_.machine;
  const PmeOptions& o = pme_plan_->options();
  const double stencil_work =
      static_cast<double>(mol_->atom_count()) *
      std::pow(static_cast<double>(o.order), 3.0) /
      static_cast<double>(pme_plan_->slabs());
  const double lx = std::log2(static_cast<double>(o.grid_x));
  const double ly = std::log2(static_cast<double>(o.grid_y));
  const double lz = std::log2(static_cast<double>(o.grid_z));
  const double plane_fft =
      static_cast<double>(pme_plan_->plane_points(slab)) * (lx + ly) *
      m.fft_point_cost;
  switch (phase) {
    case 0:  // spread + forward 2D FFT
      return stencil_work * m.pme_spread_cost + plane_fft;
    case 1:  // z FFT + influence multiply + inverse z FFT
      return static_cast<double>(pme_plan_->column_points(slab)) *
             (2.0 * lz + 1.0) * m.fft_point_cost;
    default:  // inverse 2D FFT + gather
      return plane_fft + stencil_work * m.pme_spread_cost;
  }
}

void ParallelSim::publish_pme_atoms(ExecContext& ctx, int patch) {
  PatchRt& pr = patches_[static_cast<std::size_t>(patch)];
  const int home = patch_home_[static_cast<std::size_t>(patch)];
  const int step = pr.step;
  const std::size_t bytes = static_cast<std::size_t>(opts_.msg_header_bytes) +
                            static_cast<std::size_t>(pr.natoms()) *
                                static_cast<std::size_t>(opts_.bytes_per_atom_coord);
  const std::uint64_t obj_base =
      static_cast<std::uint64_t>(wl_->plan.migratable_count()) + 1;
  for (int s = 0; s < pme_plan_->slabs(); ++s) {
    const int pe = slab_pe_[static_cast<std::size_t>(s)];
    TaskMsg msg;
    msg.entry = e_pme_atoms_;
    msg.priority = -1;
    msg.bytes = bytes;
    msg.object = obj_base + static_cast<std::uint64_t>(s);
    // A slab in another worker process cannot read the home replica; ship
    // the positions themselves. In-process slabs copy from the replica at
    // handler time, which is safe because the patch cannot advance past
    // this step until the slab's force share comes back.
    if (proc_ != nullptr && proc_->owner_of(pe) != proc_->owner_of(home)) {
      msg.has_wire = true;
      msg.wire.ints = {s, patch, step};
      msg.wire.reals.reserve(pr.pos.size() * 3);
      for (const Vec3& v : pr.pos) {
        msg.wire.reals.push_back(v.x);
        msg.wire.reals.push_back(v.y);
        msg.wire.reals.push_back(v.z);
      }
    }
    msg.fn = [this, s, patch, step, bytes](ExecContext& c) {
      c.charge_pack(static_cast<double>(bytes) * c.machine().unpack_byte_cost);
      on_pme_atoms(c, s, patch, step, nullptr);
    };
    if (pe != home) {
      ctx.charge_pack(static_cast<double>(bytes) * ctx.machine().pack_byte_cost);
    }
    rsend(ctx, pe, std::move(msg));
  }
}

void ParallelSim::on_pme_atoms(ExecContext& ctx, int slab, int patch, int step,
                               const std::vector<double>* wire_pos) {
  PmeSlabRt& rt = pme_slabs_[static_cast<std::size_t>(slab)];
  assert(step == rt.step && "PME deposit for a round the slab is not in");
  (void)step;
  if (opts_.numeric) {
    std::vector<Vec3>& buf = rt.patch_pos[static_cast<std::size_t>(patch)];
    if (wire_pos != nullptr) {
      buf.resize(wire_pos->size() / 3);
      for (std::size_t i = 0; i < buf.size(); ++i) {
        buf[i] = {(*wire_pos)[3 * i], (*wire_pos)[3 * i + 1],
                  (*wire_pos)[3 * i + 2]};
      }
    } else {
      buf = patches_[static_cast<std::size_t>(patch)].pos;
    }
  }
  if (--rt.atoms_pending > 0) return;
  rt.atoms_pending = static_cast<int>(patches_.size());
  pme_spread_and_transpose(ctx, slab);
}

void ParallelSim::pme_spread_and_transpose(ExecContext& ctx, int slab) {
  PmeSlabRt& rt = pme_slabs_[static_cast<std::size_t>(slab)];
  if (ctx.models_cost()) ctx.charge(noisy(pme_phase_cost(slab, 0)));
  if (opts_.numeric) {
    // Assemble the positions in global atom order — the order the
    // sequential Pme spreads in, so the grid values match it bitwise.
    rt.all_pos.resize(static_cast<std::size_t>(mol_->atom_count()));
    for (std::size_t p = 0; p < patches_.size(); ++p) {
      const std::vector<int>& atoms = patches_[p].atoms;
      for (std::size_t i = 0; i < atoms.size(); ++i) {
        rt.all_pos[static_cast<std::size_t>(atoms[i])] = rt.patch_pos[p][i];
      }
    }
    std::fill(rt.planes.begin(), rt.planes.end(), std::complex<double>{});
    pme_plan_->spread(slab, rt.all_pos, charges_, rt.planes);
    pme_plan_->plane_fft(slab, rt.planes, /*inverse=*/false);
  }
  const std::uint64_t obj_base =
      static_cast<std::uint64_t>(wl_->plan.migratable_count()) + 1;
  for (int dst = 0; dst < pme_plan_->slabs(); ++dst) {
    const int pe = slab_pe_[static_cast<std::size_t>(dst)];
    const std::size_t bytes =
        static_cast<std::size_t>(opts_.msg_header_bytes) +
        pme_plan_->block_doubles(slab, dst) * sizeof(double);
    TaskMsg msg;
    msg.entry = e_pme_tr_fwd_;
    msg.priority = -1;
    msg.bytes = bytes;
    msg.object = obj_base + static_cast<std::uint64_t>(dst);
    std::vector<double> block;
    if (opts_.numeric) block = pme_plan_->extract_fwd(slab, dst, rt.planes);
    if (proc_ != nullptr &&
        proc_->owner_of(pe) !=
            proc_->owner_of(slab_pe_[static_cast<std::size_t>(slab)])) {
      msg.has_wire = true;
      msg.wire.ints = {dst, slab};
      msg.wire.reals = block;
    }
    msg.fn = [this, dst, slab, bytes,
              block = std::move(block)](ExecContext& c) {
      c.charge_pack(static_cast<double>(bytes) * c.machine().unpack_byte_cost);
      on_pme_fwd(c, dst, slab, block);
    };
    if (pe != ctx.pe()) {
      ctx.charge_pack(static_cast<double>(bytes) * ctx.machine().pack_byte_cost);
    }
    rsend(ctx, pe, std::move(msg));
  }
}

void ParallelSim::on_pme_fwd(ExecContext& ctx, int slab, int src,
                             const std::vector<double>& block) {
  PmeSlabRt& rt = pme_slabs_[static_cast<std::size_t>(slab)];
  if (opts_.numeric) pme_plan_->insert_fwd(src, slab, block, rt.columns);
  if (--rt.fwd_pending > 0) return;
  rt.fwd_pending = pme_plan_->slabs();
  pme_convolve_and_return(ctx, slab);
}

void ParallelSim::pme_convolve_and_return(ExecContext& ctx, int slab) {
  PmeSlabRt& rt = pme_slabs_[static_cast<std::size_t>(slab)];
  if (ctx.models_cost()) ctx.charge(noisy(pme_phase_cost(slab, 1)));
  if (opts_.numeric) rt.recip_energy = pme_plan_->convolve(slab, rt.columns);
  const std::uint64_t obj_base =
      static_cast<std::uint64_t>(wl_->plan.migratable_count()) + 1;
  for (int dst = 0; dst < pme_plan_->slabs(); ++dst) {
    const int pe = slab_pe_[static_cast<std::size_t>(dst)];
    // The backward block dst <- slab covers the same grid region as the
    // forward block dst -> slab, so it has the same size.
    const std::size_t bytes =
        static_cast<std::size_t>(opts_.msg_header_bytes) +
        pme_plan_->block_doubles(dst, slab) * sizeof(double);
    TaskMsg msg;
    msg.entry = e_pme_tr_bwd_;
    msg.priority = -1;
    msg.bytes = bytes;
    msg.object = obj_base + static_cast<std::uint64_t>(dst);
    std::vector<double> block;
    if (opts_.numeric) block = pme_plan_->extract_bwd(slab, dst, rt.columns);
    if (proc_ != nullptr &&
        proc_->owner_of(pe) !=
            proc_->owner_of(slab_pe_[static_cast<std::size_t>(slab)])) {
      msg.has_wire = true;
      msg.wire.ints = {dst, slab};
      msg.wire.reals = block;
    }
    msg.fn = [this, dst, slab, bytes,
              block = std::move(block)](ExecContext& c) {
      c.charge_pack(static_cast<double>(bytes) * c.machine().unpack_byte_cost);
      on_pme_bwd(c, dst, slab, block);
    };
    if (pe != ctx.pe()) {
      ctx.charge_pack(static_cast<double>(bytes) * ctx.machine().pack_byte_cost);
    }
    rsend(ctx, pe, std::move(msg));
  }
}

void ParallelSim::on_pme_bwd(ExecContext& ctx, int slab, int src,
                             const std::vector<double>& block) {
  PmeSlabRt& rt = pme_slabs_[static_cast<std::size_t>(slab)];
  if (opts_.numeric) pme_plan_->insert_bwd(src, slab, block, rt.planes);
  if (--rt.bwd_pending > 0) return;
  rt.bwd_pending = pme_plan_->slabs();
  pme_gather_and_send(ctx, slab);
}

void ParallelSim::pme_gather_and_send(ExecContext& ctx, int slab) {
  PmeSlabRt& rt = pme_slabs_[static_cast<std::size_t>(slab)];
  if (ctx.models_cost()) ctx.charge(noisy(pme_phase_cost(slab, 2)));
  std::vector<Vec3> all_frc;
  if (opts_.numeric) {
    pme_plan_->plane_fft(slab, rt.planes, /*inverse=*/true);
    all_frc.assign(static_cast<std::size_t>(mol_->atom_count()), Vec3{});
    pme_plan_->gather(slab, rt.all_pos, charges_, rt.planes, all_frc);
    // This slab's deterministic share of the terms the grid sum does not
    // carry: the strided self energy and exclusion corrections (their
    // forces land in all_frc by global id, riding the same force shares).
    const double alpha = wl_->nonbonded.full_elec.alpha;
    double e = rt.recip_energy;
    e += ewald_self_energy_strided(alpha, charges_, slab, pme_plan_->slabs());
    e += full_elec_exclusion_corrections(excl_, mol_->params, alpha, charges_,
                                         rt.all_pos, all_frc, slab,
                                         pme_plan_->slabs());
    // Assignment, not += — fault replay of the round stays idempotent.
    pme_scratch_[static_cast<std::size_t>(slab) *
                     static_cast<std::size_t>(cycle_target_ + 1) +
                 static_cast<std::size_t>(rt.step)] = e;
  }
  const int step = rt.step;
  for (std::size_t p = 0; p < patches_.size(); ++p) {
    const int patch = static_cast<int>(p);
    const int home = patch_home_[p];
    const std::size_t bytes =
        static_cast<std::size_t>(opts_.msg_header_bytes) +
        patches_[p].atoms.size() *
            static_cast<std::size_t>(opts_.bytes_per_atom_force);
    std::vector<Vec3> frc;
    if (opts_.numeric) {
      frc.reserve(patches_[p].atoms.size());
      for (int a : patches_[p].atoms) {
        frc.push_back(all_frc[static_cast<std::size_t>(a)]);
      }
    }
    TaskMsg msg;
    msg.entry = e_pme_force_;
    msg.priority = -2;
    msg.bytes = bytes;
    if (proc_ != nullptr &&
        proc_->owner_of(home) !=
            proc_->owner_of(slab_pe_[static_cast<std::size_t>(slab)])) {
      msg.has_wire = true;
      msg.wire.ints = {patch, slab, step};
      msg.wire.reals.reserve(frc.size() * 3);
      for (const Vec3& v : frc) {
        msg.wire.reals.push_back(v.x);
        msg.wire.reals.push_back(v.y);
        msg.wire.reals.push_back(v.z);
      }
    }
    msg.fn = [this, patch, slab, bytes,
              frc = std::move(frc)](ExecContext& c) mutable {
      c.charge_pack(static_cast<double>(bytes) * c.machine().unpack_byte_cost);
      on_pme_force(c, patch, slab, std::move(frc));
    };
    if (home != ctx.pe()) {
      ctx.charge_pack(static_cast<double>(bytes) * ctx.machine().pack_byte_cost);
    }
    rsend(ctx, home, std::move(msg));
  }
  // Round complete: rearm for the next step. The per-step barrier
  // guarantees no next-round message has arrived yet, and the grid chunks
  // need no zeroing (spread zeroes planes first; every transpose insertion
  // fully overwrites its region).
  rt.step += 1;
  rt.recip_energy = 0.0;
}

void ParallelSim::on_pme_force(ExecContext& ctx, int patch, int slab,
                               std::vector<Vec3> frc) {
  if (opts_.numeric) {
    PatchRt& pr = patches_[static_cast<std::size_t>(patch)];
    assert(frc.size() == pr.atoms.size());
    pr.pme_frc[static_cast<std::size_t>(slab)] = std::move(frc);
  }
  on_contribution(ctx, patch, -1);
}

// ---------------------------------------------------------------------------
// Cycle and benchmark control
// ---------------------------------------------------------------------------

void ParallelSim::attempt_cycle(int steps) {
  assert(steps >= 1);
  cycle_target_ = steps;
  step_base_ = static_cast<int>(step_completion_.size());
  step_completion_.resize(static_cast<std::size_t>(step_base_ + steps + 1), 0.0);
  step_last_advance_.resize(static_cast<std::size_t>(step_base_ + steps + 1), 0.0);
  steps_done_counter_.resize(static_cast<std::size_t>(step_base_ + steps + 1), 0);
  if (opts_.numeric) {
    // One slot per (compute, local step); a cycle of T steps runs T + 1
    // force rounds (bootstrap step 0 through the closing half-kick at T).
    potential_scratch_.assign(
        computes_.size() * static_cast<std::size_t>(steps + 1), EnergyTerms{});
  }
  if (pme_plan_ != nullptr) {
    // Reset every slab for the cycle. A replayed cycle (fault recovery)
    // resets the same way, and the per-(slab, step) energy slots below are
    // written by assignment, so replay stays idempotent.
    const int s_count = pme_plan_->slabs();
    if (opts_.numeric) {
      pme_scratch_.assign(static_cast<std::size_t>(s_count) *
                              static_cast<std::size_t>(steps + 1),
                          0.0);
    }
    for (int s = 0; s < s_count; ++s) {
      PmeSlabRt& rt = pme_slabs_[static_cast<std::size_t>(s)];
      rt.step = 0;
      rt.atoms_pending = static_cast<int>(patches_.size());
      rt.fwd_pending = s_count;
      rt.bwd_pending = s_count;
      rt.recip_energy = 0.0;
      if (opts_.numeric) {
        rt.patch_pos.assign(patches_.size(), {});
        rt.planes.assign(pme_plan_->plane_points(s), {});
        rt.columns.assign(pme_plan_->column_points(s), {});
      }
    }
  }

  const double t0 = exec_->time();
  for (std::size_t p = 0; p < patches_.size(); ++p) {
    PatchRt& pr = patches_[p];
    pr.step = 0;
    pr.contrib_received = 0;
    pr.arrival.clear();
    if (opts_.numeric) std::fill(pr.frc.begin(), pr.frc.end(), Vec3{});
    if (opts_.numeric && pme_plan_ != nullptr) {
      pr.pme_frc.assign(pme_slabs_.size(), {});
    }
    TaskMsg msg;
    msg.entry = e_advance_;
    msg.priority = -3;
    const int patch = static_cast<int>(p);
    msg.fn = [this, patch](ExecContext& c) { publish_coords(c, patch); };
    exec_->inject(patch_home_[p], std::move(msg), t0);
  }
  exec_->run();
  // The machine always drains, faults or not: messages to dead PEs are
  // discarded, retry timers abandon after max_attempts, and nothing blocks.
  assert(exec_->idle());
  global_steps_ += steps;

  if (proc_ != nullptr && proc_->last_run_failed()) {
    // A worker died mid-epoch: no state merged back, so there is nothing
    // meaningful to fold or migrate. Leave the zeroed progress counters in
    // place — run_cycle's recovery loop detects the incomplete cycle and
    // restores from the on-disk checkpoint, which rewinds everything this
    // attempt touched (global_steps_ included).
    return;
  }

  if (opts_.numeric) {
    // Fold the per-(compute, step) potential slots in compute-id order.
    // Assignment (not +=) keeps a fault-replayed cycle idempotent.
    potential_per_step_.resize(static_cast<std::size_t>(step_base_ + steps + 1),
                               EnergyTerms{});
    for (int s = 0; s <= steps; ++s) {
      EnergyTerms sum;
      for (std::size_t c = 0; c < computes_.size(); ++c) {
        sum += potential_scratch_[c * static_cast<std::size_t>(steps + 1) +
                                  static_cast<std::size_t>(s)];
      }
      if (pme_plan_ != nullptr) {
        // Reciprocal-sum partials (plus each slab's share of the self and
        // exclusion corrections) fold after the compute terms, in slab
        // order — the canonical position of PME in the energy sum.
        for (std::size_t sl = 0; sl < pme_slabs_.size(); ++sl) {
          sum.elec += pme_scratch_[sl * static_cast<std::size_t>(steps + 1) +
                                   static_cast<std::size_t>(s)];
        }
      }
      potential_per_step_[static_cast<std::size_t>(step_base_ + s)] = sum;
    }
    migrate_atoms();
  }
}

bool ParallelSim::last_cycle_complete() const {
  if (steps_done_counter_.empty()) return true;
  return steps_done_counter_.back() == active_patches_;
}

void ParallelSim::run_cycle(int steps) {
  assert(steps >= 1);
  const bool resilient = opts_.checkpoint_every > 0;
  if (resilient) {
    if (!have_checkpoint() ||
        static_cast<int>(cycles_since_ckpt_.size()) >= opts_.checkpoint_every) {
      take_checkpoint();
    }
    cycles_since_ckpt_.push_back(steps);
  }
  // A cycle has truly finished only when every patch completed every step
  // AND every reduction round landed. The two can diverge: a PE that dies
  // after its patches' final advance but before the reduction tree drained
  // through it leaves last_cycle_complete() true with the last round's
  // total silently missing (found by scalemd-fuzz; see EXPERIMENTS.md).
  const auto recovered = [this]() {
    return last_cycle_complete() &&
           reduction_totals_.size() == step_completion_.size();
  };
  attempt_cycle(steps);
  if (resilient && !recovered()) {
    // Work was lost (typically a PE failure mid-cycle). Restore the last
    // coordinated checkpoint, evacuate the dead PEs, and replay every cycle
    // recorded since the snapshot. A replayed cycle can itself be hit by a
    // later scheduled failure, so loop — with a cap so a hostile plan (all
    // PEs dying) terminates; an incomplete final cycle is then left for the
    // invariant layer to flag.
    constexpr int kMaxRestarts = 8;
    int tries = 0;
    while (!recovered() && tries < kMaxRestarts) {
      ++tries;
      restore_checkpoint();
      for (int cycle_steps : cycles_since_ckpt_) {
        attempt_cycle(cycle_steps);
        if (!recovered()) break;
      }
    }
  }
  if (cycle_observer_) cycle_observer_(*this, steps);
}

double ParallelSim::step_completion_at(int s) const {
  if (s < 0 || static_cast<std::size_t>(s) >= step_completion_.size()) return 0.0;
  return step_completion_[static_cast<std::size_t>(s)];
}

double ParallelSim::seconds_per_step_tail(int steps) const {
  // Clamp instead of asserting: callers probing before any cycle ran (or
  // asking for a longer tail than was recorded) get a defined 0.0 /
  // whole-history answer rather than UB.
  const std::size_t n = step_completion_.size();
  if (n < 2) return 0.0;
  std::size_t span = steps < 1 ? 1 : static_cast<std::size_t>(steps);
  span = std::min(span, n - 1);
  const double t1 = step_completion_[n - 1];
  const double t0 = step_completion_[n - 1 - span];
  return (t1 - t0) / static_cast<double>(span);
}

double ParallelSim::run_benchmark(int measure_steps, int timed_steps) {
  run_cycle(measure_steps);
  load_balance(/*refine_only=*/false);
  run_cycle(measure_steps);
  load_balance(/*refine_only=*/true);
  run_cycle(timed_steps);
  return seconds_per_step_tail(timed_steps);
}

// ---------------------------------------------------------------------------
// Checkpoint / restart / evacuation
// ---------------------------------------------------------------------------

void ParallelSim::snapshot_to(Checkpoint& c) const {
  c.taken_at = exec_->time();
  c.patches = patches_;
  c.atom_loc = atom_loc_;
  c.compute_deps.resize(computes_.size());
  for (std::size_t i = 0; i < computes_.size(); ++i) {
    c.compute_deps[i] = computes_[i].deps;
  }
  c.patch_home = patch_home_;
  c.compute_pe = compute_pe_;
  c.slab_pe = slab_pe_;
  c.reduction_totals = reduction_totals_;
  c.potential_per_step = potential_per_step_;
  c.step_completion = step_completion_;
  c.step_last_advance = step_last_advance_;
  c.steps_done_counter = steps_done_counter_;
  c.global_steps = global_steps_;
  c.noise_rng = noise_rng_;
}

void ParallelSim::take_checkpoint() {
  assert(exec_->idle());
  if (proc_ != nullptr) {
    // Process backend: the checkpoint goes to disk through the wire layer
    // (one kCheckpoint frame), and the in-memory copy is dropped — restore
    // must survive on what actually hit the file, exactly like a recovery
    // after a real crash would.
    Checkpoint c;
    snapshot_to(c);
    const int fd = ::open(opts_.checkpoint_path.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0 ||
        !wire::write_frame(fd, wire::FrameType::kCheckpoint, encode_checkpoint(c))) {
      std::fprintf(stderr, "[scalemd] cannot write checkpoint to %s\n",
                   opts_.checkpoint_path.c_str());
      std::abort();
    }
    ::close(fd);
    ckpt_.reset();
    ckpt_on_disk_ = true;
    cycles_since_ckpt_.clear();
    ++checkpoints_taken_;
    sinks_.on_fault({FaultKind::kCheckpoint, -1, -1, c.taken_at, 0.0});
    return;
  }
  assert(des_ != nullptr && "checkpointing requires the DES or process backend");
  if (!ckpt_) ckpt_ = std::make_unique<Checkpoint>();
  snapshot_to(*ckpt_);
  cycles_since_ckpt_.clear();
  ++checkpoints_taken_;
  des_->record_fault({FaultKind::kCheckpoint, -1, -1, ckpt_->taken_at, 0.0});

  // Model the coordinated snapshot's cost: each live PE spends time
  // serializing its resident patch state (this is the overhead the audit
  // reports for fault-free runs with checkpointing on).
  std::vector<double> bytes_on_pe(static_cast<std::size_t>(opts_.num_pes), 0.0);
  for (std::size_t p = 0; p < patches_.size(); ++p) {
    bytes_on_pe[static_cast<std::size_t>(patch_home_[p])] +=
        96.0 * static_cast<double>(patches_[p].natoms());
  }
  const double t0 = des_->time();
  for (int pe = 0; pe < opts_.num_pes; ++pe) {
    if (des_->pe_failed(pe)) continue;
    const double cost =
        bytes_on_pe[static_cast<std::size_t>(pe)] * opts_.machine.pack_byte_cost;
    TaskMsg msg;
    msg.entry = e_checkpoint_;
    msg.fn = [cost](ExecContext& cc) { cc.charge(cost); };
    des_->inject(pe, std::move(msg), t0);
  }
  des_->run();
  assert(des_->idle());
}

void ParallelSim::restore_from(const Checkpoint& c) {
  const double now = exec_->time();
  const double lost = now - c.taken_at;
  restart_lost_time_ += lost;
  ++restarts_;

  apply_checkpoint(c);

  // The clock is NOT rewound: the lost interval is the real cost of redoing
  // work, and is what restart_latency() reports.
  sinks_.on_fault({FaultKind::kRestart, -1, -1, now, lost});
}

void ParallelSim::apply_checkpoint(const Checkpoint& c) {
  patches_ = c.patches;
  atom_loc_ = c.atom_loc;
  for (std::size_t i = 0; i < computes_.size(); ++i) {
    computes_[i].deps = c.compute_deps[i];
  }
  patch_home_ = c.patch_home;
  compute_pe_ = c.compute_pe;
  slab_pe_ = c.slab_pe;
  reduction_totals_ = c.reduction_totals;
  potential_per_step_ = c.potential_per_step;
  step_completion_ = c.step_completion;
  step_last_advance_ = c.step_last_advance;
  steps_done_counter_ = c.steps_done_counter;
  global_steps_ = c.global_steps;
  noise_rng_ = c.noise_rng;

  // Un-acked pre-restart sends must not be resurrected by stale retries;
  // replayed sends get fresh sequence ids so dedup cannot misfire either.
  if (reliable_) reliable_->clear_pending();

  const std::vector<int> dead = exec_->failed_pes();
  if (!dead.empty()) {
    evacuate_failed_pes(dead);
  } else {
    // No failure — the stall came from unrecovered message loss. Replaying
    // from the snapshot redraws the per-message fault decisions, so a
    // retry has an independent chance of a clean pass.
    rebuild_reducer();
    rebuild_dataflow();
  }
}

void ParallelSim::restore_checkpoint() {
  assert(have_checkpoint());
  if (proc_ != nullptr) {
    const int fd = ::open(opts_.checkpoint_path.c_str(), O_RDONLY);
    wire::FrameType type{};
    std::vector<std::uint8_t> payload;
    const wire::WireError err =
        fd < 0 ? wire::WireError::kIo : wire::read_frame(fd, type, payload);
    if (fd >= 0) ::close(fd);
    if (err != wire::WireError::kOk || type != wire::FrameType::kCheckpoint) {
      std::fprintf(stderr, "[scalemd] cannot restore checkpoint from %s: %s\n",
                   opts_.checkpoint_path.c_str(), wire::wire_error_name(err));
      std::abort();
    }
    Checkpoint c;
    decode_checkpoint(payload, c);
    restore_from(c);
    return;
  }
  assert(ckpt_ && des_ != nullptr);
  restore_from(*ckpt_);
}

std::vector<std::uint8_t> ParallelSim::export_state() const {
  assert(exec_->idle() && "export_state needs a quiesced machine");
  Checkpoint c;
  snapshot_to(c);
  return encode_checkpoint(c);
}

void ParallelSim::import_state(const std::vector<std::uint8_t>& blob) {
  assert(exec_->idle() && "import_state needs a quiesced machine");
  Checkpoint c;
  decode_checkpoint(blob, c);
  apply_checkpoint(c);
}

// ---------------------------------------------------------------------------
// Process-backend wire plumbing
// ---------------------------------------------------------------------------

namespace {

[[noreturn]] void wire_state_error(const char* what) {
  std::fprintf(stderr, "[scalemd] process wire: %s\n", what);
  std::abort();
}

void encode_vec3s(wire::Encoder& e, const std::vector<Vec3>& v) {
  for (const Vec3& x : v) {
    e.f64(x.x);
    e.f64(x.y);
    e.f64(x.z);
  }
}

bool decode_vec3s(wire::Decoder& d, std::vector<Vec3>& v) {
  for (Vec3& x : v) {
    if (!d.f64(x.x) || !d.f64(x.y) || !d.f64(x.z)) return false;
  }
  return true;
}

void encode_terms(wire::Encoder& e, const EnergyTerms& t) {
  e.f64(t.lj);
  e.f64(t.elec);
  e.f64(t.bond);
  e.f64(t.angle);
  e.f64(t.dihedral);
  e.f64(t.improper);
}

bool decode_terms(wire::Decoder& d, EnergyTerms& t) {
  return d.f64(t.lj) && d.f64(t.elec) && d.f64(t.bond) && d.f64(t.angle) &&
         d.f64(t.dihedral) && d.f64(t.improper);
}

}  // namespace

void ParallelSim::setup_process_wire() {
  // Coordinates crossing a worker boundary: apply the shipped positions and
  // step index to the receiving worker's patch replica, then run the normal
  // receive path. ints = [patch, step], reals = positions.
  proc_->register_decoder(e_coords_, [this](const WirePayload& w) -> TaskFn {
    return [this, w](ExecContext& c) {
      if (w.ints.size() != 2) wire_state_error("bad coords header");
      const int patch = static_cast<int>(w.ints[0]);
      if (patch < 0 || static_cast<std::size_t>(patch) >= patches_.size()) {
        wire_state_error("coords patch out of range");
      }
      PatchRt& pr = patches_[static_cast<std::size_t>(patch)];
      if (w.reals.size() != pr.pos.size() * 3) {
        wire_state_error("coords payload size mismatch");
      }
      pr.step = static_cast<int>(w.ints[1]);
      for (std::size_t i = 0; i < pr.pos.size(); ++i) {
        pr.pos[i] = {w.reals[3 * i], w.reals[3 * i + 1], w.reals[3 * i + 2]};
      }
      c.charge_pack(
          static_cast<double>(
              static_cast<std::size_t>(opts_.msg_header_bytes) +
              pr.pos.size() *
                  static_cast<std::size_t>(opts_.bytes_per_atom_coord)) *
          c.machine().unpack_byte_cost);
      on_recv_coords(c, patch, c.pe());
    };
  });

  // Force contributions arriving at the home worker: copy every scratch
  // slot of the contributing proxy into the local replica, then signal the
  // contribution. ints = [patch, proxy index], reals = slots flattened.
  proc_->register_decoder(e_forces_, [this](const WirePayload& w) -> TaskFn {
    return [this, w](ExecContext& c) {
      if (w.ints.size() != 2) wire_state_error("bad forces header");
      const int patch = static_cast<int>(w.ints[0]);
      const int pxy = static_cast<int>(w.ints[1]);
      if (pxy < 0 || static_cast<std::size_t>(pxy) >= proxies_.size() ||
          proxies_[static_cast<std::size_t>(pxy)].patch != patch) {
        wire_state_error("forces proxy out of range");
      }
      ProxyRt& proxy = proxies_[static_cast<std::size_t>(pxy)];
      std::size_t need = 0;
      for (const auto& s : proxy.scratch) need += s.size() * 3;
      if (w.reals.size() != need) {
        wire_state_error("forces payload size mismatch");
      }
      std::size_t off = 0;
      for (auto& s : proxy.scratch) {
        for (Vec3& v : s) {
          v = {w.reals[off], w.reals[off + 1], w.reals[off + 2]};
          off += 3;
        }
      }
      const std::size_t bytes =
          static_cast<std::size_t>(opts_.msg_header_bytes) +
          patches_[static_cast<std::size_t>(patch)].pos.size() *
              static_cast<std::size_t>(opts_.bytes_per_atom_force);
      c.charge_pack(static_cast<double>(bytes) * c.machine().unpack_byte_cost);
      on_contribution(c, patch, pxy);
    };
  });

  // Reduction partial sums climbing the tree. ints = [parent rank, round,
  // forwarded, n, ids...], reals = the n values (raw IEEE bits).
  proc_->register_decoder(e_reduction_, [this](const WirePayload& w) -> TaskFn {
    return [this, w](ExecContext& c) {
      if (w.ints.size() < 4) wire_state_error("bad reduction header");
      const int parent_rank = static_cast<int>(w.ints[0]);
      const int round = static_cast<int>(w.ints[1]);
      const int forwarded = static_cast<int>(w.ints[2]);
      const std::size_t n = static_cast<std::size_t>(w.ints[3]);
      if (w.ints.size() != 4 + n || w.reals.size() != n) {
        wire_state_error("reduction payload size mismatch");
      }
      std::vector<std::pair<int, double>> parts;
      parts.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        parts.push_back({static_cast<int>(w.ints[4 + i]), w.reals[i]});
      }
      c.charge(1e-6);  // combine cost (parity with the in-process closure)
      reducer_->deliver(c, parent_rank, round, std::move(parts), forwarded);
    };
  });

  // PME frames (full-electrostatics runs only; the entries are registered
  // before this point whenever pme_plan_ exists, so registering the
  // decoders unconditionally on pme_plan_ is safe).
  if (pme_plan_ != nullptr) {
    // Atom deposit crossing a worker boundary: the slab's worker cannot
    // read the patch replica, so positions ride the wire and land in the
    // slab's own per-patch buffer (never the replica — that belongs to the
    // coordinate path). ints = [slab, patch, step], reals = positions.
    proc_->register_decoder(e_pme_atoms_, [this](const WirePayload& w) -> TaskFn {
      return [this, w](ExecContext& c) {
        if (w.ints.size() != 3) wire_state_error("bad pme atoms header");
        const int slab = static_cast<int>(w.ints[0]);
        const int patch = static_cast<int>(w.ints[1]);
        if (slab < 0 || static_cast<std::size_t>(slab) >= pme_slabs_.size() ||
            patch < 0 || static_cast<std::size_t>(patch) >= patches_.size()) {
          wire_state_error("pme atoms target out of range");
        }
        if (w.reals.size() !=
            patches_[static_cast<std::size_t>(patch)].atoms.size() * 3) {
          wire_state_error("pme atoms payload size mismatch");
        }
        c.charge_pack(
            static_cast<double>(
                static_cast<std::size_t>(opts_.msg_header_bytes) +
                patches_[static_cast<std::size_t>(patch)].atoms.size() *
                    static_cast<std::size_t>(opts_.bytes_per_atom_coord)) *
            c.machine().unpack_byte_cost);
        on_pme_atoms(c, slab, patch, static_cast<int>(w.ints[2]), &w.reals);
      };
    });

    // Transpose blocks. ints = [dst slab, src slab], reals = the block.
    const auto transpose_decoder = [this](bool forward) {
      return [this, forward](const WirePayload& w) -> TaskFn {
        return [this, forward, w](ExecContext& c) {
          if (w.ints.size() != 2) wire_state_error("bad pme transpose header");
          const int dst = static_cast<int>(w.ints[0]);
          const int src = static_cast<int>(w.ints[1]);
          if (dst < 0 || static_cast<std::size_t>(dst) >= pme_slabs_.size() ||
              src < 0 || static_cast<std::size_t>(src) >= pme_slabs_.size()) {
            wire_state_error("pme transpose slab out of range");
          }
          const std::size_t doubles = forward
                                          ? pme_plan_->block_doubles(src, dst)
                                          : pme_plan_->block_doubles(dst, src);
          if (w.reals.size() != doubles) {
            wire_state_error("pme transpose block size mismatch");
          }
          c.charge_pack(
              static_cast<double>(
                  static_cast<std::size_t>(opts_.msg_header_bytes) +
                  doubles * sizeof(double)) *
              c.machine().unpack_byte_cost);
          if (forward) {
            on_pme_fwd(c, dst, src, w.reals);
          } else {
            on_pme_bwd(c, dst, src, w.reals);
          }
        };
      };
    };
    proc_->register_decoder(e_pme_tr_fwd_, transpose_decoder(true));
    proc_->register_decoder(e_pme_tr_bwd_, transpose_decoder(false));

    // Force shares back to the patch home. ints = [patch, slab, step],
    // reals = the per-atom force block.
    proc_->register_decoder(e_pme_force_, [this](const WirePayload& w) -> TaskFn {
      return [this, w](ExecContext& c) {
        if (w.ints.size() != 3) wire_state_error("bad pme force header");
        const int patch = static_cast<int>(w.ints[0]);
        const int slab = static_cast<int>(w.ints[1]);
        if (patch < 0 || static_cast<std::size_t>(patch) >= patches_.size() ||
            slab < 0 || static_cast<std::size_t>(slab) >= pme_slabs_.size()) {
          wire_state_error("pme force target out of range");
        }
        const std::size_t natoms =
            patches_[static_cast<std::size_t>(patch)].atoms.size();
        if (w.reals.size() != natoms * 3) {
          wire_state_error("pme force payload size mismatch");
        }
        std::vector<Vec3> frc(natoms);
        for (std::size_t i = 0; i < natoms; ++i) {
          frc[i] = {w.reals[3 * i], w.reals[3 * i + 1], w.reals[3 * i + 2]};
        }
        c.charge_pack(
            static_cast<double>(
                static_cast<std::size_t>(opts_.msg_header_bytes) +
                natoms * static_cast<std::size_t>(opts_.bytes_per_atom_force)) *
            c.machine().unpack_byte_cost);
        on_pme_force(c, patch, slab, std::move(frc));
      };
    });
  }

  proc_->set_state_hooks(
      [this](int worker, int workers) {
        (void)workers;
        return flush_worker_state(worker, proc_->workers());
      },
      [this](int worker, const std::vector<std::uint8_t>& blob) {
        merge_worker_state(worker, blob);
      });
}

std::vector<std::uint8_t> ParallelSim::flush_worker_state(int worker,
                                                          int workers) const {
  (void)workers;
  wire::Encoder e;

  // Owned patches: position/velocity/force/step, mutated by advance() on
  // the home PE (always local to this worker).
  std::uint64_t owned_patches = 0;
  for (std::size_t p = 0; p < patches_.size(); ++p) {
    if (proc_->owner_of(patch_home_[p]) == worker) ++owned_patches;
  }
  e.u64(owned_patches);
  for (std::size_t p = 0; p < patches_.size(); ++p) {
    if (proc_->owner_of(patch_home_[p]) != worker) continue;
    const PatchRt& pr = patches_[p];
    e.i64(static_cast<std::int64_t>(p));
    e.u64(pr.pos.size());
    e.i64(pr.step);
    encode_vec3s(e, pr.pos);
    encode_vec3s(e, pr.vel);
    encode_vec3s(e, pr.frc);
  }

  // Potential-energy scratch rows of the computes this worker ran.
  const std::size_t row = static_cast<std::size_t>(cycle_target_ + 1);
  std::uint64_t owned_computes = 0;
  for (std::size_t i = 0; i < computes_.size(); ++i) {
    if (proc_->owner_of(compute_pe_[i]) == worker) ++owned_computes;
  }
  e.u64(owned_computes);
  for (std::size_t i = 0; i < computes_.size(); ++i) {
    if (proc_->owner_of(compute_pe_[i]) != worker) continue;
    e.i64(static_cast<std::int64_t>(i));
    for (std::size_t s = 0; s < row; ++s) {
      encode_terms(e, potential_scratch_[i * row + s]);
    }
  }

  // Per-step progress over this cycle's range: the counter delta this
  // worker contributed (the range was zeroed before the fork, so the local
  // value IS the delta) and the latest advance time it saw.
  for (int s = 0; s <= cycle_target_; ++s) {
    const std::size_t g = static_cast<std::size_t>(step_base_ + s);
    e.i64(steps_done_counter_[g]);
    e.f64(step_last_advance_[g]);
  }

  // Reduction totals land at the tree root; only its worker reports them.
  if (proc_->owner_of(reducer_->root_pe()) == worker) {
    const std::int64_t have =
        static_cast<std::int64_t>(reduction_totals_.size()) - step_base_;
    const std::uint64_t n = static_cast<std::uint64_t>(std::clamp<std::int64_t>(
        have, 0, cycle_target_ + 1));
    e.u8(1);
    e.u64(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      e.f64(reduction_totals_[static_cast<std::size_t>(step_base_) + i]);
    }
  } else {
    e.u8(0);
  }

  // PME energy rows of the slabs homed on this worker (forces already
  // arrived at the patch workers through the wire; the per-(slab, step)
  // energy partials live only on the slab's own worker).
  if (pme_plan_ != nullptr) {
    std::uint64_t owned_slabs = 0;
    for (std::size_t s = 0; s < slab_pe_.size(); ++s) {
      if (proc_->owner_of(slab_pe_[s]) == worker) ++owned_slabs;
    }
    e.u64(owned_slabs);
    for (std::size_t s = 0; s < slab_pe_.size(); ++s) {
      if (proc_->owner_of(slab_pe_[s]) != worker) continue;
      e.i64(static_cast<std::int64_t>(s));
      for (std::size_t st = 0; st < row; ++st) {
        e.f64(pme_scratch_[s * row + st]);
      }
    }
  }
  return e.take();
}

void ParallelSim::merge_worker_state(int worker, const std::vector<std::uint8_t>& blob) {
  (void)worker;
  wire::Decoder d(blob);

  std::uint64_t owned_patches = 0;
  if (!d.u64(owned_patches)) wire_state_error("truncated state blob");
  for (std::uint64_t k = 0; k < owned_patches; ++k) {
    std::int64_t p = 0, step = 0;
    std::uint64_t natoms = 0;
    if (!d.i64(p) || !d.u64(natoms) || !d.i64(step) || p < 0 ||
        static_cast<std::size_t>(p) >= patches_.size()) {
      wire_state_error("bad patch record");
    }
    PatchRt& pr = patches_[static_cast<std::size_t>(p)];
    if (natoms != pr.pos.size()) wire_state_error("patch size mismatch");
    pr.step = static_cast<int>(step);
    if (!decode_vec3s(d, pr.pos) || !decode_vec3s(d, pr.vel) ||
        !decode_vec3s(d, pr.frc)) {
      wire_state_error("truncated patch record");
    }
  }

  const std::size_t row = static_cast<std::size_t>(cycle_target_ + 1);
  std::uint64_t owned_computes = 0;
  if (!d.u64(owned_computes)) wire_state_error("truncated state blob");
  for (std::uint64_t k = 0; k < owned_computes; ++k) {
    std::int64_t i = 0;
    if (!d.i64(i) || i < 0 || static_cast<std::size_t>(i) >= computes_.size()) {
      wire_state_error("bad compute record");
    }
    for (std::size_t s = 0; s < row; ++s) {
      if (!decode_terms(d, potential_scratch_[static_cast<std::size_t>(i) * row + s])) {
        wire_state_error("truncated compute record");
      }
    }
  }

  for (int s = 0; s <= cycle_target_; ++s) {
    const std::size_t g = static_cast<std::size_t>(step_base_ + s);
    std::int64_t delta = 0;
    double last = 0.0;
    if (!d.i64(delta) || !d.f64(last)) wire_state_error("truncated progress");
    steps_done_counter_[g] += static_cast<int>(delta);
    step_last_advance_[g] = std::max(step_last_advance_[g], last);
    if (steps_done_counter_[g] == active_patches_) {
      step_completion_[g] = step_last_advance_[g];
    }
  }

  std::uint8_t has_reduction = 0;
  if (!d.u8(has_reduction)) wire_state_error("truncated state blob");
  if (has_reduction != 0) {
    std::uint64_t n = 0;
    if (!d.count(n, 8)) wire_state_error("bad reduction count");
    const std::size_t need = static_cast<std::size_t>(step_base_) + n;
    if (reduction_totals_.size() < need) reduction_totals_.resize(need, 0.0);
    for (std::uint64_t i = 0; i < n; ++i) {
      if (!d.f64(reduction_totals_[static_cast<std::size_t>(step_base_) + i])) {
        wire_state_error("truncated reduction totals");
      }
    }
  }
  if (pme_plan_ != nullptr) {
    std::uint64_t owned_slabs = 0;
    if (!d.u64(owned_slabs)) wire_state_error("truncated state blob");
    for (std::uint64_t k = 0; k < owned_slabs; ++k) {
      std::int64_t s = 0;
      if (!d.i64(s) || s < 0 ||
          static_cast<std::size_t>(s) >= pme_slabs_.size()) {
        wire_state_error("bad pme slab record");
      }
      for (std::size_t st = 0; st < row; ++st) {
        if (!d.f64(pme_scratch_[static_cast<std::size_t>(s) * row + st])) {
          wire_state_error("truncated pme slab record");
        }
      }
    }
  }
  if (!d.done()) wire_state_error("trailing bytes in state blob");
}

std::vector<std::uint8_t> ParallelSim::encode_checkpoint(const Checkpoint& c) const {
  wire::Encoder e;
  e.f64(c.taken_at);
  e.u64(c.patches.size());
  for (const PatchRt& pr : c.patches) {
    e.u64(pr.atoms.size());
    for (int a : pr.atoms) e.i64(a);
    encode_vec3s(e, pr.pos);
    encode_vec3s(e, pr.vel);
    encode_vec3s(e, pr.frc);
    for (double m : pr.mass) e.f64(m);
    e.i64(pr.step);
  }
  e.u64(c.atom_loc.size());
  for (const auto& [p, i] : c.atom_loc) {
    e.i64(p);
    e.i64(i);
  }
  e.u64(c.compute_deps.size());
  for (const auto& deps : c.compute_deps) {
    e.u64(deps.size());
    for (int p : deps) e.i64(p);
  }
  e.u64(c.patch_home.size());
  for (int pe : c.patch_home) e.i64(pe);
  e.u64(c.compute_pe.size());
  for (int pe : c.compute_pe) e.i64(pe);
  e.u64(c.reduction_totals.size());
  for (double v : c.reduction_totals) e.f64(v);
  e.u64(c.potential_per_step.size());
  for (const EnergyTerms& t : c.potential_per_step) encode_terms(e, t);
  e.u64(c.step_completion.size());
  for (double v : c.step_completion) e.f64(v);
  e.u64(c.step_last_advance.size());
  for (double v : c.step_last_advance) e.f64(v);
  e.u64(c.steps_done_counter.size());
  for (int v : c.steps_done_counter) e.i64(v);
  e.i64(c.global_steps);
  const Rng::State rs = c.noise_rng.state();
  for (std::uint64_t s : rs.s) e.u64(s);
  e.u64(rs.seed);
  e.u8(rs.has_cached_normal ? 1 : 0);
  e.f64(rs.cached_normal);
  e.u64(c.slab_pe.size());
  for (int pe : c.slab_pe) e.i64(pe);
  return e.take();
}

void ParallelSim::decode_checkpoint(const std::vector<std::uint8_t>& blob,
                                    Checkpoint& c) const {
  wire::Decoder d(blob);
  std::uint64_t n = 0;
  if (!d.f64(c.taken_at) || !d.u64(n) || n != patches_.size()) {
    wire_state_error("checkpoint patch count mismatch");
  }
  c.patches.resize(static_cast<std::size_t>(n));
  for (PatchRt& pr : c.patches) {
    std::uint64_t natoms = 0;
    if (!d.count(natoms, 8)) wire_state_error("bad checkpoint patch");
    pr.atoms.resize(static_cast<std::size_t>(natoms));
    for (int& a : pr.atoms) {
      std::int64_t v = 0;
      if (!d.i64(v)) wire_state_error("bad checkpoint patch atoms");
      a = static_cast<int>(v);
    }
    pr.pos.resize(static_cast<std::size_t>(natoms));
    pr.vel.resize(static_cast<std::size_t>(natoms));
    pr.frc.resize(static_cast<std::size_t>(natoms));
    pr.mass.resize(static_cast<std::size_t>(natoms));
    if (!decode_vec3s(d, pr.pos) || !decode_vec3s(d, pr.vel) ||
        !decode_vec3s(d, pr.frc)) {
      wire_state_error("bad checkpoint patch state");
    }
    for (double& m : pr.mass) {
      if (!d.f64(m)) wire_state_error("bad checkpoint patch mass");
    }
    std::int64_t step = 0;
    if (!d.i64(step)) wire_state_error("bad checkpoint patch step");
    pr.step = static_cast<int>(step);
  }
  if (!d.u64(n) || n != atom_loc_.size()) {
    wire_state_error("checkpoint atom count mismatch");
  }
  c.atom_loc.resize(static_cast<std::size_t>(n));
  for (auto& [p, i] : c.atom_loc) {
    std::int64_t pp = 0, ii = 0;
    if (!d.i64(pp) || !d.i64(ii)) wire_state_error("bad checkpoint atom_loc");
    p = static_cast<int>(pp);
    i = static_cast<int>(ii);
  }
  if (!d.u64(n) || n != computes_.size()) {
    wire_state_error("checkpoint compute count mismatch");
  }
  c.compute_deps.resize(static_cast<std::size_t>(n));
  for (auto& deps : c.compute_deps) {
    std::uint64_t nd = 0;
    if (!d.count(nd, 8)) wire_state_error("bad checkpoint deps");
    deps.resize(static_cast<std::size_t>(nd));
    for (int& p : deps) {
      std::int64_t v = 0;
      if (!d.i64(v)) wire_state_error("bad checkpoint deps");
      p = static_cast<int>(v);
    }
  }
  auto read_ints = [&](std::vector<int>& out, const char* what) {
    std::uint64_t m = 0;
    if (!d.count(m, 8)) wire_state_error(what);
    out.resize(static_cast<std::size_t>(m));
    for (int& v : out) {
      std::int64_t x = 0;
      if (!d.i64(x)) wire_state_error(what);
      v = static_cast<int>(x);
    }
  };
  auto read_doubles = [&](std::vector<double>& out, const char* what) {
    std::uint64_t m = 0;
    if (!d.count(m, 8)) wire_state_error(what);
    out.resize(static_cast<std::size_t>(m));
    for (double& v : out) {
      if (!d.f64(v)) wire_state_error(what);
    }
  };
  read_ints(c.patch_home, "bad checkpoint patch_home");
  read_ints(c.compute_pe, "bad checkpoint compute_pe");
  if (c.patch_home.size() != patches_.size() ||
      c.compute_pe.size() != computes_.size()) {
    wire_state_error("checkpoint placement size mismatch");
  }
  read_doubles(c.reduction_totals, "bad checkpoint reduction totals");
  std::uint64_t np = 0;
  if (!d.count(np, 6 * 8)) wire_state_error("bad checkpoint potential");
  c.potential_per_step.resize(static_cast<std::size_t>(np));
  for (EnergyTerms& t : c.potential_per_step) {
    if (!decode_terms(d, t)) wire_state_error("bad checkpoint potential");
  }
  read_doubles(c.step_completion, "bad checkpoint step completion");
  read_doubles(c.step_last_advance, "bad checkpoint step last advance");
  read_ints(c.steps_done_counter, "bad checkpoint step counters");
  std::int64_t gs = 0;
  if (!d.i64(gs)) wire_state_error("bad checkpoint global steps");
  c.global_steps = static_cast<int>(gs);
  Rng::State rs{};
  for (std::uint64_t& s : rs.s) {
    if (!d.u64(s)) wire_state_error("bad checkpoint rng");
  }
  std::uint8_t cached = 0;
  if (!d.u64(rs.seed) || !d.u8(cached) || !d.f64(rs.cached_normal)) {
    wire_state_error("bad checkpoint rng");
  }
  rs.has_cached_normal = cached != 0;
  c.noise_rng.set_state(rs);
  read_ints(c.slab_pe, "bad checkpoint slab_pe");
  if (c.slab_pe.size() != slab_pe_.size()) {
    wire_state_error("checkpoint slab count mismatch");
  }
  if (!d.done()) wire_state_error("trailing bytes in checkpoint");
}

void ParallelSim::evacuate_failed_pes(const std::vector<int>& dead) {
  std::vector<char> is_dead(static_cast<std::size_t>(opts_.num_pes), 0);
  for (int pe : dead) is_dead[static_cast<std::size_t>(pe)] = 1;
  const std::vector<double> busy = exec_->busy_times();

  // 1. Re-home orphaned patches: prefer the live PE already running the
  //    most computes that read the patch (fewest new proxies), tie-break
  //    on lighter historical load, then PE id — deterministic.
  for (std::size_t p = 0; p < patches_.size(); ++p) {
    if (!is_dead[static_cast<std::size_t>(patch_home_[p])]) continue;
    std::vector<int> affinity(static_cast<std::size_t>(opts_.num_pes), 0);
    for (std::size_t i = 0; i < computes_.size(); ++i) {
      const auto pe = static_cast<std::size_t>(compute_pe_[i]);
      if (is_dead[pe]) continue;
      for (int dep : computes_[i].deps) {
        if (dep == static_cast<int>(p)) ++affinity[pe];
      }
    }
    int best = -1;
    for (int pe = 0; pe < opts_.num_pes; ++pe) {
      const auto u = static_cast<std::size_t>(pe);
      if (is_dead[u]) continue;
      const bool better =
          best < 0 || affinity[u] > affinity[static_cast<std::size_t>(best)] ||
          (affinity[u] == affinity[static_cast<std::size_t>(best)] &&
           busy[u] < busy[static_cast<std::size_t>(best)]);
      if (better) best = pe;
    }
    assert(best >= 0 && "all PEs failed — nothing to evacuate onto");
    patch_home_[p] = best;
  }

  // 1b. PME slabs on dead PEs are re-homed round-robin over the survivors.
  //     Deterministic, and nothing moves with them: slab state is per-cycle
  //     transient and every replay rebuilds it from scratch.
  if (pme_plan_ != nullptr) {
    std::vector<int> live;
    for (int pe = 0; pe < opts_.num_pes; ++pe) {
      if (!is_dead[static_cast<std::size_t>(pe)]) live.push_back(pe);
    }
    for (std::size_t s = 0; s < slab_pe_.size(); ++s) {
      if (is_dead[static_cast<std::size_t>(slab_pe_[s])]) {
        slab_pe_[s] = live[s % live.size()];
      }
    }
  }

  // 2. Non-migratable computes are pinned to their base patch's home,
  //    which step 1 just guaranteed is live.
  for (std::size_t i = 0; i < computes_.size(); ++i) {
    if (wl_->plan.migratable_index()[i] >= 0) continue;
    compute_pe_[i] = patch_home_[static_cast<std::size_t>(
        wl_->plan.computes()[i].base_patch)];
  }

  // 3. Migratable computes go through the LB evacuation strategy (greedy
  //    proxy-aware placement + refine over the survivors).
  LbProblem problem;
  problem.num_pes = opts_.num_pes;
  problem.patch_home = patch_home_;
  problem.background = db_->background();
  std::vector<int> object_compute;
  LbAssignment start;
  for (std::size_t i = 0; i < computes_.size(); ++i) {
    if (wl_->plan.migratable_index()[i] < 0) continue;
    LbObject o;
    o.load = db_->object_load(
        static_cast<std::uint32_t>(wl_->plan.migratable_index()[i]));
    o.current_pe = compute_pe_[i];
    o.patch_a = computes_[i].deps.empty() ? -1 : computes_[i].deps[0];
    o.patch_b = computes_[i].deps.size() > 1 ? computes_[i].deps[1] : -1;
    problem.objects.push_back(o);
    start.push_back(compute_pe_[i]);
    object_compute.push_back(static_cast<int>(i));
  }
  const LbAssignment map = evacuate_map(problem, start, dead);
  int moved = 0;
  for (std::size_t j = 0; j < map.size(); ++j) {
    const auto i = static_cast<std::size_t>(object_compute[j]);
    if (compute_pe_[i] != map[j]) ++moved;
    compute_pe_[i] = map[j];
  }

  for (int pe : dead) {
    sinks_.on_fault({FaultKind::kEvacuation, pe, -1, exec_->time(),
                     static_cast<double>(moved)});
  }

  // Patch homes changed: the reduction tree spans different PEs now.
  rebuild_reducer();
  rebuild_dataflow();
}

// ---------------------------------------------------------------------------
// Load balancing
// ---------------------------------------------------------------------------

void ParallelSim::load_balance(bool refine_only) {
  if (opts_.lb.kind == LbStrategyKind::kNone) {
    db_->reset();
    return;
  }

  // Graceful degradation: if PEs have failed, first make sure nothing is
  // homed on them (idempotent when already evacuated), and remember to
  // keep the strategy's output off them below. The DES machine fails PEs
  // per its fault plan, the process backend when a worker dies; the
  // threaded backend has none to report.
  const std::vector<int> dead = exec_->failed_pes();
  if (!dead.empty() &&
      static_cast<std::size_t>(dead.size()) < static_cast<std::size_t>(opts_.num_pes)) {
    evacuate_failed_pes(dead);
  }

  // Build the strategy input from the measurement database.
  LbProblem problem;
  problem.num_pes = opts_.num_pes;
  problem.patch_home = patch_home_;
  problem.background = db_->background();
  std::vector<int> object_compute;  // migratable index -> compute id
  object_compute.reserve(static_cast<std::size_t>(wl_->plan.migratable_count()));
  for (std::size_t i = 0; i < computes_.size(); ++i) {
    const int mi = wl_->plan.migratable_index()[i];
    if (mi < 0) continue;
    LbObject o;
    o.load = db_->object_load(static_cast<std::uint32_t>(mi));
    o.current_pe = compute_pe_[i];
    o.patch_a = computes_[i].deps.empty() ? -1 : computes_[i].deps[0];
    o.patch_b = computes_[i].deps.size() > 1 ? computes_[i].deps[1] : -1;
    problem.objects.push_back(o);
    object_compute.push_back(static_cast<int>(i));
  }
  // PME slabs are ordinary migratable objects (patch-less: every strategy
  // treats patch_a = -1 as "no communication affinity"), priced from the
  // same measurement database via their task records. Dedicated-ranks mode
  // pins them instead. object_compute encodes slab s as -1 - s.
  if (pme_plan_ != nullptr && opts_.pme.dedicated_ranks <= 0) {
    for (int s = 0; s < pme_plan_->slabs(); ++s) {
      LbObject o;
      o.load = db_->object_load(static_cast<std::uint32_t>(
          wl_->plan.migratable_count() + s));
      o.current_pe = slab_pe_[static_cast<std::size_t>(s)];
      problem.objects.push_back(o);
      object_compute.push_back(-1 - s);
    }
  }

  LbAssignment map;
  switch (opts_.lb.kind) {
    case LbStrategyKind::kRandom:
      map = random_map(problem);
      break;
    case LbStrategyKind::kGreedyNoComm:
      map = greedy_nocomm_map(problem);
      break;
    case LbStrategyKind::kGreedy:
      map = greedy_comm_map(problem, opts_.lb.greedy_overload);
      break;
    case LbStrategyKind::kGreedyRefine:
      map = refine_only
                ? refine_map(problem, identity_map(problem), opts_.lb.refine_overload)
                : refine_map(problem, greedy_comm_map(problem, opts_.lb.greedy_overload),
                             opts_.lb.refine_overload);
      break;
    case LbStrategyKind::kDiffusion:
      map = diffusion_map(problem);
      break;
    case LbStrategyKind::kNone:
      return;
  }

  // The strategies are failure-blind; route anything they put on a dead PE
  // back onto the survivors.
  if (!dead.empty() &&
      static_cast<std::size_t>(dead.size()) < static_cast<std::size_t>(opts_.num_pes)) {
    map = evacuate_map(problem, map, dead, opts_.lb.refine_overload);
  }

  // Apply the new mapping; model each migration as a message carrying the
  // object's state from its old PE to its new one. The process backend
  // skips the modeled traffic (migration happens in the parent between
  // epochs; these bookkeeping messages have no wire form to cross workers).
  const double t0 = exec_->time();
  for (std::size_t j = 0; j < map.size(); ++j) {
    const int compute = object_compute[j];
    int old_pe;
    const int new_pe = map[j];
    if (compute < 0) {
      const auto slab = static_cast<std::size_t>(-1 - compute);
      old_pe = slab_pe_[slab];
      if (old_pe == new_pe) continue;
      slab_pe_[slab] = new_pe;
    } else {
      old_pe = compute_pe_[static_cast<std::size_t>(compute)];
      if (old_pe == new_pe) continue;
      compute_pe_[static_cast<std::size_t>(compute)] = new_pe;
    }
    if (proc_ != nullptr) continue;
    TaskMsg msg;
    msg.entry = e_migrate_;
    msg.fn = [this, new_pe](ExecContext& c) {
      TaskMsg arrive;
      arrive.entry = e_migrate_;
      arrive.bytes = 1024;
      arrive.fn = [](ExecContext& cc) { cc.charge(2e-6); };
      c.send(new_pe, std::move(arrive));
    };
    exec_->inject(old_pe, std::move(msg), t0);
  }
  if (proc_ == nullptr) exec_->run();
  rebuild_dataflow();
  db_->reset();
}

// ---------------------------------------------------------------------------
// Atom migration (numeric mode, cycle boundaries)
// ---------------------------------------------------------------------------

void ParallelSim::migrate_atoms() {
  const CellGrid& grid = wl_->decomp.grid();
  // Collect movers per source patch: (atom index, destination patch).
  std::vector<std::vector<std::pair<int, int>>> movers(patches_.size());
  bool any = false;
  for (std::size_t p = 0; p < patches_.size(); ++p) {
    PatchRt& pr = patches_[p];
    for (std::size_t i = 0; i < pr.atoms.size(); ++i) {
      const int dst = grid.cell_of(pr.pos[i]);
      if (dst != static_cast<int>(p)) {
        movers[p].push_back({static_cast<int>(i), dst});
        any = true;
      }
    }
  }
  if (any) {
    // Apply moves: copy atom state to destinations, compact sources.
    std::map<std::pair<int, int>, int> traffic;  // (src pe, dst pe) -> atoms
    for (std::size_t p = 0; p < patches_.size(); ++p) {
      if (movers[p].empty()) continue;
      PatchRt& src = patches_[p];
      std::vector<char> moved(src.atoms.size(), 0);
      for (const auto& [idx, dst] : movers[p]) {
        PatchRt& d = patches_[static_cast<std::size_t>(dst)];
        d.atoms.push_back(src.atoms[static_cast<std::size_t>(idx)]);
        d.pos.push_back(src.pos[static_cast<std::size_t>(idx)]);
        d.vel.push_back(src.vel[static_cast<std::size_t>(idx)]);
        d.mass.push_back(src.mass[static_cast<std::size_t>(idx)]);
        d.frc.push_back(src.frc[static_cast<std::size_t>(idx)]);
        moved[static_cast<std::size_t>(idx)] = 1;
        const int src_pe = patch_home_[p];
        const int dst_pe = patch_home_[static_cast<std::size_t>(dst)];
        if (src_pe != dst_pe) ++traffic[{src_pe, dst_pe}];
      }
      // Compact the source arrays.
      std::size_t w = 0;
      for (std::size_t i = 0; i < src.atoms.size(); ++i) {
        if (moved[i]) continue;
        src.atoms[w] = src.atoms[i];
        src.pos[w] = src.pos[i];
        src.vel[w] = src.vel[i];
        src.mass[w] = src.mass[i];
        src.frc[w] = src.frc[i];
        ++w;
      }
      src.atoms.resize(w);
      src.pos.resize(w);
      src.vel.resize(w);
      src.mass.resize(w);
      src.frc.resize(w);
    }
    // Refresh atom locations.
    for (std::size_t p = 0; p < patches_.size(); ++p) {
      for (std::size_t i = 0; i < patches_[p].atoms.size(); ++i) {
        atom_loc_[static_cast<std::size_t>(patches_[p].atoms[i])] = {
            static_cast<int>(p), static_cast<int>(i)};
      }
    }
    // Refresh bonded compute dependencies (term atoms may have changed
    // patches; self/pair computes reference patches directly).
    for (std::size_t i = 0; i < computes_.size(); ++i) {
      const ComputeDesc& desc = wl_->plan.computes()[i];
      if (is_nonbonded(desc.kind)) continue;
      std::vector<int> deps;
      auto add_dep = [&](int atom) {
        const int p = atom_loc_[static_cast<std::size_t>(atom)].first;
        if (std::find(deps.begin(), deps.end(), p) == deps.end()) deps.push_back(p);
      };
      for (int t : desc.terms) {
        switch (desc.kind) {
          case ComputeKind::kBonds: {
            const Bond& term = mol_->bonds()[static_cast<std::size_t>(t)];
            add_dep(term.a);
            add_dep(term.b);
            break;
          }
          case ComputeKind::kAngles: {
            const Angle& term = mol_->angles()[static_cast<std::size_t>(t)];
            add_dep(term.a);
            add_dep(term.b);
            add_dep(term.c);
            break;
          }
          case ComputeKind::kDihedrals: {
            const Dihedral& term = mol_->dihedrals()[static_cast<std::size_t>(t)];
            add_dep(term.a);
            add_dep(term.b);
            add_dep(term.c);
            add_dep(term.d);
            break;
          }
          default: {
            const Improper& term = mol_->impropers()[static_cast<std::size_t>(t)];
            add_dep(term.a);
            add_dep(term.b);
            add_dep(term.c);
            add_dep(term.d);
            break;
          }
        }
      }
      std::sort(deps.begin(), deps.end());
      computes_[i].deps = std::move(deps);
    }
    // Model the migration traffic: one batched message per (src, dst) PE
    // pair, sized by the number of atoms moved. Skipped under the process
    // backend (atoms move in the parent; the modeled messages have no wire
    // form to cross workers).
    if (proc_ == nullptr) {
      const double t0 = exec_->time();
      for (const auto& [edge, count] : traffic) {
        const auto [src_pe, dst_pe] = edge;
        const std::size_t bytes = 32 + 96 * static_cast<std::size_t>(count);
        TaskMsg msg;
        msg.entry = e_migrate_;
        msg.fn = [this, dst_pe = dst_pe, bytes](ExecContext& c) {
          TaskMsg arrive;
          arrive.entry = e_migrate_;
          arrive.bytes = bytes;
          arrive.fn = [bytes](ExecContext& cc) {
            cc.charge_pack(static_cast<double>(bytes) * cc.machine().unpack_byte_cost);
          };
          c.send(dst_pe, std::move(arrive));
        };
        exec_->inject(src_pe, std::move(msg), t0);
      }
      exec_->run();
    }
  }
  rebuild_dataflow();
}

// ---------------------------------------------------------------------------
// Results access
// ---------------------------------------------------------------------------

void ParallelSim::attach_sink(TraceSink* sink) { sinks_.add(sink); }

void ParallelSim::detach_sink(const TraceSink* sink) { sinks_.remove(sink); }

double ParallelSim::ideal_nonbonded_seconds() const {
  double s = 0.0;
  for (std::size_t i = 0; i < computes_.size(); ++i) {
    if (is_nonbonded(wl_->plan.computes()[i].kind)) {
      s += work_cost(wl_->work.per_compute(i), opts_.machine);
    }
  }
  return s;
}

double ParallelSim::ideal_bonded_seconds() const {
  double s = 0.0;
  for (std::size_t i = 0; i < computes_.size(); ++i) {
    if (!is_nonbonded(wl_->plan.computes()[i].kind)) {
      s += work_cost(wl_->work.per_compute(i), opts_.machine);
    }
  }
  return s;
}

double ParallelSim::ideal_integration_seconds() const {
  return static_cast<double>(mol_->atom_count()) * opts_.machine.integrate_cost;
}

int ParallelSim::patch_count() const { return static_cast<int>(patches_.size()); }

int ParallelSim::proxy_count() const {
  int count = 0;
  for (const ProxyRt& p : proxies_) {
    count += p.pe != patch_home_[static_cast<std::size_t>(p.patch)];
  }
  return count;
}

int ParallelSim::max_proxies_per_patch() const {
  int best = 0;
  for (std::size_t p = 0; p < patches_.size(); ++p) {
    int count = 0;
    for (int id : patch_proxy_ids_[p]) {
      count += proxies_[static_cast<std::size_t>(id)].pe != patch_home_[p];
    }
    best = std::max(best, count);
  }
  return best;
}

std::vector<Vec3> ParallelSim::gather_positions() const {
  std::vector<Vec3> out(static_cast<std::size_t>(mol_->atom_count()));
  for (const PatchRt& p : patches_) {
    for (std::size_t i = 0; i < p.atoms.size(); ++i) {
      out[static_cast<std::size_t>(p.atoms[i])] = p.pos[i];
    }
  }
  return out;
}

std::vector<Vec3> ParallelSim::gather_velocities() const {
  std::vector<Vec3> out(static_cast<std::size_t>(mol_->atom_count()));
  for (const PatchRt& p : patches_) {
    for (std::size_t i = 0; i < p.atoms.size(); ++i) {
      out[static_cast<std::size_t>(p.atoms[i])] = p.vel[i];
    }
  }
  return out;
}

std::vector<Vec3> ParallelSim::gather_forces() const {
  std::vector<Vec3> out(static_cast<std::size_t>(mol_->atom_count()));
  for (const PatchRt& p : patches_) {
    for (std::size_t i = 0; i < p.atoms.size(); ++i) {
      out[static_cast<std::size_t>(p.atoms[i])] = p.frc[i];
    }
  }
  return out;
}

EnergyTerms ParallelSim::potential_terms_at_step(int s) const {
  if (s < 0 || static_cast<std::size_t>(s) >= potential_per_step_.size()) {
    return EnergyTerms{};
  }
  return potential_per_step_[static_cast<std::size_t>(s)];
}

double ParallelSim::potential_at_step(int s) const {
  return potential_terms_at_step(s).total();
}

}  // namespace scalemd
