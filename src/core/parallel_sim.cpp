#include "core/parallel_sim.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <cmath>

#include "ff/bonded.hpp"
#include "lb/diffusion.hpp"
#include "lb/evacuate.hpp"
#include "lb/greedy.hpp"
#include "lb/naive.hpp"
#include "lb/problem.hpp"
#include "lb/rcb.hpp"
#include "lb/refine.hpp"
#include "rts/multicast.hpp"
#include "rts/threaded_backend.hpp"
#include "seq/integrator.hpp"
#include "util/units.hpp"

namespace scalemd {

// ---------------------------------------------------------------------------
// Runtime state structs
// ---------------------------------------------------------------------------

/// Home-patch runtime state: the atoms it owns plus step bookkeeping.
struct ParallelSim::PatchRt {
  std::vector<int> atoms;  ///< global atom ids
  std::vector<Vec3> pos, vel, frc;
  std::vector<double> mass;
  int step = 0;               ///< next advance index within the cycle
  int contrib_expected = 0;   ///< PEs (incl. home) that send force contributions
  int contrib_received = 0;
  /// Proxy ids in the order their contributions arrived this round. Only
  /// recorded under the injected arrival-order defect (see ParallelOptions::
  /// debug_fold_arrival_order); empty otherwise.
  std::vector<int> arrival;

  int natoms() const { return static_cast<int>(atoms.size()); }
};

/// Proxy-patch state for one (patch, pe): the compute objects on that PE
/// that read the patch, plus one private force buffer (scratch slot) per
/// compute. The home patch folds every slot of every proxy in global
/// compute-id order (patch_contribs_) once all contributions are in, so
/// the sum is independent of the order the computes actually executed in —
/// message faults, retries, placement changes and real thread timing
/// reorder execution but not the physics.
struct ParallelSim::ProxyRt {
  int patch = 0;
  int pe = 0;
  std::vector<int> computes;
  int pending = 0;  ///< computes not yet finished this step
  std::vector<std::vector<Vec3>> scratch;  ///< per-compute, parallel to `computes`
};

/// Per-compute runtime state.
struct ParallelSim::ComputeRt {
  std::vector<int> deps;  ///< current patch dependencies (bonded deps can
                          ///< change after atom migration)
  int deps_pending = 0;
  WorkCounters work;      ///< live-measured work (numeric mode)
};

/// Coordinated in-memory checkpoint: everything needed to replay from a
/// quiesced cycle boundary. Placement (patch_home/compute_pe) is captured
/// too, so a restore rewinds any load balancing done since, and evacuation
/// always starts from a self-consistent snapshot.
struct ParallelSim::Checkpoint {
  double taken_at = 0.0;  ///< virtual time of the snapshot
  std::vector<PatchRt> patches;
  std::vector<std::pair<int, int>> atom_loc;
  std::vector<std::vector<int>> compute_deps;
  std::vector<int> patch_home;
  std::vector<int> compute_pe;
  std::vector<double> reduction_totals;
  std::vector<EnergyTerms> potential_per_step;
  std::vector<double> step_completion;
  std::vector<int> steps_done_counter;
  int global_steps = 0;
  Rng noise_rng{0};
};

// ---------------------------------------------------------------------------
// Workload
// ---------------------------------------------------------------------------

namespace {

/// Probe pass: run the unsplit non-bonded kernels once to measure real
/// per-object costs, so grain-size splitting works from measurements.
MeasuredCosts probe_costs(const Molecule& mol, const Decomposition& d,
                          const MachineModel& machine, const NonbondedOptions& nb) {
  ComputePlanOptions probe_opts;
  probe_opts.split_self = false;
  probe_opts.split_face_pairs = false;
  probe_opts.migratable_intra_bonded = false;
  const ComputePlan probe(d, mol, machine, probe_opts);
  const WorkCache w(mol, d, probe, nb);
  MeasuredCosts mc;
  mc.self.assign(static_cast<std::size_t>(d.patch_count()), 0.0);
  for (std::size_t i = 0; i < probe.computes().size(); ++i) {
    const ComputeDesc& desc = probe.computes()[i];
    const double cost = work_cost(w.per_compute(i), machine);
    if (desc.kind == ComputeKind::kSelf) {
      mc.self[static_cast<std::size_t>(desc.patches[0])] = cost;
    } else if (desc.kind == ComputeKind::kPair) {
      mc.pair[{desc.patches[0], desc.patches[1]}] = cost;
    }
  }
  return mc;
}

}  // namespace

Workload::Workload(const Molecule& molecule, const MachineModel& machine,
                   const NonbondedOptions& nonbonded_opts,
                   const ComputePlanOptions& plan_opts)
    : mol(&molecule),
      nonbonded(nonbonded_opts),
      decomp(molecule, nonbonded_opts.cutoff),
      measured(probe_costs(molecule, decomp, machine, nonbonded_opts)),
      plan(decomp, molecule, machine, plan_opts, &measured),
      work(molecule, decomp, plan, nonbonded_opts) {}

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

ParallelSim::ParallelSim(const Workload& workload, const ParallelOptions& opts)
    : wl_(&workload), opts_(opts), mol_(workload.mol) {
  if (opts_.numeric) {
    excl_ = ExclusionTable::build(*mol_);
    charges_.reserve(static_cast<std::size_t>(mol_->atom_count()));
    for (const Atom& a : mol_->atoms()) {
      charges_.push_back(a.charge);
      lj_types_.push_back(a.lj_type);
    }
    nb_ctx_ = std::make_unique<NonbondedContext>(mol_->params, excl_, charges_,
                                                 lj_types_, wl_->nonbonded);
    tiled_ws_.resize(static_cast<std::size_t>(opts_.num_pes));
    if (wl_->nonbonded.kernel == NonbondedKernel::kTiledThreads) {
      const int t = wl_->nonbonded.threads > 0 ? wl_->nonbonded.threads
                                               : ThreadPool::default_threads();
      nb_pool_ = std::make_unique<ThreadPool>(t);
    }
  }

  if (opts_.backend == BackendKind::kThreaded) {
    // The threaded backend runs tasks for real: only numeric mode has real
    // work to run, and the layers built on DES timer semantics (fault
    // injection, reliable delivery, checkpoint/restart) stay DES-only.
    assert(opts_.numeric && "threaded backend requires numeric mode");
    assert(opts_.fault.empty() && !opts_.reliable &&
           opts_.checkpoint_every == 0 &&
           "fault/recovery layers require the simulated backend");
    assert(wl_->nonbonded.kernel != NonbondedKernel::kTiledThreads &&
           "tiled-threads kernel would nest thread pools; use kTiled");
    exec_ = std::make_unique<ThreadedBackend>(opts_.num_pes, opts_.machine,
                                              opts_.threads);
  } else {
    auto des = std::make_unique<Simulator>(opts_.num_pes, opts_.machine);
    des_ = des.get();
    exec_ = std::move(des);
    if (!opts_.fault.empty()) des_->set_fault_plan(opts_.fault);
  }
  EntryRegistry& reg = exec_->entries();
  e_advance_ = reg.add("Patch::integrate", WorkCategory::kIntegration);
  e_coords_ = reg.add("Proxy::recvCoordinates", WorkCategory::kComm);
  e_forces_ = reg.add("Patch::recvForces", WorkCategory::kComm);
  e_self_ = reg.add("ComputeNonbondedSelf::doWork", WorkCategory::kNonbonded);
  e_pair_ = reg.add("ComputeNonbondedPair::doWork", WorkCategory::kNonbonded);
  e_bonded_intra_ = reg.add("ComputeBondedIntra::doWork", WorkCategory::kBonded);
  e_bonded_inter_ = reg.add("ComputeBondedInter::doWork", WorkCategory::kBonded);
  e_reduction_ = reg.add("Reduction::combine", WorkCategory::kComm);
  e_migrate_ = reg.add("Migrate::recv", WorkCategory::kComm);
  e_checkpoint_ = reg.add("Checkpoint::store", WorkCategory::kComm);
  if (opts_.reliable) {
    assert(des_ != nullptr);
    reliable_ = std::make_unique<ReliableComm>(*des_, opts_.reliable_opts);
  }

  db_ = std::make_unique<LoadDatabase>(
      static_cast<std::size_t>(wl_->plan.migratable_count()), opts_.num_pes);
  sinks_.add(db_.get());
  exec_->set_sink(&sinks_);

  // Patch runtime state from the decomposition.
  const auto& patch_atoms = wl_->decomp.patch_atoms();
  patches_.resize(patch_atoms.size());
  atom_loc_.resize(static_cast<std::size_t>(mol_->atom_count()));
  for (std::size_t p = 0; p < patch_atoms.size(); ++p) {
    PatchRt& pr = patches_[p];
    pr.atoms = patch_atoms[p];
    if (opts_.numeric) {
      pr.pos.reserve(pr.atoms.size());
      pr.vel.reserve(pr.atoms.size());
      pr.mass.reserve(pr.atoms.size());
      for (int a : pr.atoms) {
        pr.pos.push_back(mol_->positions()[static_cast<std::size_t>(a)]);
        pr.vel.push_back(mol_->velocities()[static_cast<std::size_t>(a)]);
        pr.mass.push_back(mol_->atoms()[static_cast<std::size_t>(a)].mass);
      }
      pr.frc.assign(pr.atoms.size(), Vec3{});
    }
    for (std::size_t i = 0; i < pr.atoms.size(); ++i) {
      atom_loc_[static_cast<std::size_t>(pr.atoms[i])] = {static_cast<int>(p),
                                                          static_cast<int>(i)};
    }
  }
  active_patches_ = static_cast<int>(patches_.size());

  // Compute runtime state.
  computes_.resize(wl_->plan.computes().size());
  for (std::size_t i = 0; i < computes_.size(); ++i) {
    computes_[i].deps = wl_->plan.computes()[i].patches;
  }

  build_initial_placement();
  rebuild_dataflow();
  rebuild_reducer();
}

ParallelSim::~ParallelSim() = default;

void ParallelSim::build_initial_placement() {
  // Stage 1 of the paper's load balancing: recursive coordinate bisection of
  // patches, then computes placed on the home PE of their base patch.
  patch_home_ = rcb_patch_map(wl_->decomp.patch_centers(), wl_->decomp.patch_weights(),
                              opts_.num_pes);
  compute_pe_.resize(wl_->plan.computes().size());
  for (std::size_t i = 0; i < compute_pe_.size(); ++i) {
    compute_pe_[i] =
        patch_home_[static_cast<std::size_t>(wl_->plan.computes()[i].base_patch)];
  }
}

void ParallelSim::rebuild_reducer() {
  // Per-step energy reduction: one contribution per patch, from its home PE.
  // Rebuilt whenever patch homes change (evacuation): the tree spans the
  // contributing PEs. A rebuild also discards any partially filled round,
  // which is exactly what checkpoint restart needs.
  std::vector<int> contributor_pes;
  contributor_pes.reserve(patches_.size());
  for (std::size_t p = 0; p < patches_.size(); ++p) {
    contributor_pes.push_back(patch_home_[p]);
  }
  reducer_ = std::make_unique<Reducer>(
      contributor_pes, e_reduction_, [this](int round, double total) {
        if (static_cast<std::size_t>(round) >= reduction_totals_.size()) {
          reduction_totals_.resize(static_cast<std::size_t>(round) + 1, 0.0);
        }
        reduction_totals_[static_cast<std::size_t>(round)] = total;
      });
  if (reliable_) reducer_->set_reliable(reliable_.get());
}

void ParallelSim::rsend(ExecContext& ctx, int dest, TaskMsg msg) {
  if (reliable_) {
    reliable_->send(ctx, dest, std::move(msg));
  } else {
    ctx.send(dest, std::move(msg));
  }
}

void ParallelSim::rebuild_dataflow() {
  proxies_.clear();
  patch_proxy_ids_.assign(patches_.size(), {});

  auto proxy_for = [&](int patch, int pe) -> ProxyRt& {
    for (int id : patch_proxy_ids_[static_cast<std::size_t>(patch)]) {
      if (proxies_[static_cast<std::size_t>(id)].pe == pe) {
        return proxies_[static_cast<std::size_t>(id)];
      }
    }
    patch_proxy_ids_[static_cast<std::size_t>(patch)].push_back(
        static_cast<int>(proxies_.size()));
    proxies_.push_back(ProxyRt{patch, pe, {}, 0, {}});
    return proxies_.back();
  };

  for (std::size_t i = 0; i < computes_.size(); ++i) {
    for (int patch : computes_[i].deps) {
      proxy_for(patch, compute_pe_[i]).computes.push_back(static_cast<int>(i));
    }
    computes_[i].deps_pending = static_cast<int>(computes_[i].deps.size());
  }

  patch_contribs_.assign(patches_.size(), {});
  for (std::size_t p = 0; p < patches_.size(); ++p) {
    patches_[p].contrib_expected =
        static_cast<int>(patch_proxy_ids_[p].size());
    patches_[p].contrib_received = 0;
    if (opts_.numeric) {
      // Canonical fold order for the patch's force: every contributing
      // (proxy, slot) pair sorted by compute id. Within one proxy the
      // slots are already ascending (computes registered in id order), so
      // sorting by the slot's compute id gives one global order that no
      // placement or schedule can change.
      std::vector<std::pair<int, std::pair<int, int>>> order;
      for (int id : patch_proxy_ids_[p]) {
        ProxyRt& proxy = proxies_[static_cast<std::size_t>(id)];
        proxy.scratch.assign(proxy.computes.size(),
                             std::vector<Vec3>(patches_[p].atoms.size()));
        for (std::size_t k = 0; k < proxy.computes.size(); ++k) {
          order.push_back({proxy.computes[k], {id, static_cast<int>(k)}});
        }
      }
      std::sort(order.begin(), order.end());
      patch_contribs_[p].reserve(order.size());
      for (const auto& o : order) patch_contribs_[p].push_back(o.second);
    }
  }
}

double ParallelSim::noisy(double cost) {
  const double sigma = opts_.machine.task_noise;
  if (sigma <= 0.0) return cost;
  return cost * std::max(0.2, 1.0 + sigma * noise_rng_.normal());
}

int ParallelSim::proxy_index(int patch, int pe) const {
  for (int id : patch_proxy_ids_[static_cast<std::size_t>(patch)]) {
    if (proxies_[static_cast<std::size_t>(id)].pe == pe) return id;
  }
  return -1;
}

// ---------------------------------------------------------------------------
// Step dataflow
// ---------------------------------------------------------------------------

void ParallelSim::publish_coords(ExecContext& ctx, int patch) {
  PatchRt& pr = patches_[static_cast<std::size_t>(patch)];
  const int home = patch_home_[static_cast<std::size_t>(patch)];
  const std::size_t bytes = static_cast<std::size_t>(opts_.msg_header_bytes) +
                            static_cast<std::size_t>(pr.natoms()) *
                                static_cast<std::size_t>(opts_.bytes_per_atom_coord);

  // Home-side proxy (if any computes run here) is serviced directly.
  std::vector<int> remote;
  for (int id : patch_proxy_ids_[static_cast<std::size_t>(patch)]) {
    const int pe = proxies_[static_cast<std::size_t>(id)].pe;
    if (pe == home) {
      on_recv_coords(ctx, patch, pe);
    } else {
      remote.push_back(pe);
    }
  }
  multicast(
      ctx, remote, bytes, opts_.optimized_multicast,
      [this, patch](int pe) {
        TaskMsg msg;
        msg.entry = e_coords_;
        msg.priority = -1;
        msg.fn = [this, patch, pe](ExecContext& c) {
          c.charge_pack(
              static_cast<double>(
                  static_cast<std::size_t>(opts_.msg_header_bytes) +
                  static_cast<std::size_t>(
                      patches_[static_cast<std::size_t>(patch)].natoms()) *
                      static_cast<std::size_t>(opts_.bytes_per_atom_coord)) *
              c.machine().unpack_byte_cost);
          on_recv_coords(c, patch, pe);
        };
        return msg;
      },
      reliable_.get());

  // A patch no compute reads (e.g. an empty cube) must still advance.
  if (pr.contrib_expected == 0) {
    on_contribution(ctx, patch, -1);
  }
}

void ParallelSim::on_recv_coords(ExecContext& ctx, int patch, int pe) {
  ProxyRt& proxy = proxies_[static_cast<std::size_t>(proxy_index(patch, pe))];
  proxy.pending = static_cast<int>(proxy.computes.size());
  if (opts_.numeric) {
    for (auto& s : proxy.scratch) std::fill(s.begin(), s.end(), Vec3{});
  }
  for (int c : proxy.computes) {
    if (--computes_[static_cast<std::size_t>(c)].deps_pending == 0) {
      computes_[static_cast<std::size_t>(c)].deps_pending =
          static_cast<int>(computes_[static_cast<std::size_t>(c)].deps.size());
      const ComputeDesc& desc = wl_->plan.computes()[static_cast<std::size_t>(c)];
      TaskMsg msg;
      msg.entry = desc.kind == ComputeKind::kSelf   ? e_self_
                  : desc.kind == ComputeKind::kPair ? e_pair_
                  : desc.migratable                 ? e_bonded_intra_
                                                    : e_bonded_inter_;
      const int mi = wl_->plan.migratable_index()[static_cast<std::size_t>(c)];
      msg.object = mi >= 0 ? static_cast<std::uint64_t>(mi) + 1 : 0;
      msg.fn = [this, c](ExecContext& cc) { run_compute(cc, c); };
      ctx.send(pe, std::move(msg));
    }
  }
}

void ParallelSim::run_compute(ExecContext& ctx, int compute) {
  const ComputeDesc& desc = wl_->plan.computes()[static_cast<std::size_t>(compute)];
  ComputeRt& rt = computes_[static_cast<std::size_t>(compute)];
  const int pe = ctx.pe();

  if (opts_.numeric) {
    WorkCounters w;
    EnergyTerms e;
    const int step_global = step_base_ + patches_[static_cast<std::size_t>(
                                             desc.patches[0])].step;
    // This compute's private force buffer for `patch` (its slot in the
    // proxy's scratch); accumulation into the shared buffer happens in
    // canonical slot order at complete_patch_on_pe.
    auto scratch_of = [&](int patch) -> std::vector<Vec3>& {
      ProxyRt& proxy =
          proxies_[static_cast<std::size_t>(proxy_index(patch, pe))];
      for (std::size_t k = 0; k < proxy.computes.size(); ++k) {
        if (proxy.computes[k] == compute) return proxy.scratch[k];
      }
      assert(false && "compute not registered on its proxy");
      return proxy.scratch[0];
    };
    switch (desc.kind) {
      case ComputeKind::kSelf: {
        PatchRt& pa = patches_[static_cast<std::size_t>(desc.patches[0])];
        std::vector<Vec3>& fa = scratch_of(desc.patches[0]);
        const std::size_t n = pa.atoms.size();
        const auto b = static_cast<std::size_t>(std::lround(desc.frac_begin * n));
        const auto en = static_cast<std::size_t>(std::lround(desc.frac_end * n));
        switch (wl_->nonbonded.kernel) {
          case NonbondedKernel::kScalar:
            e = nonbonded_self_range(*nb_ctx_, pa.atoms, pa.pos, fa, b, en, w);
            break;
          case NonbondedKernel::kTiled:
            e = nonbonded_self_range_tiled(*nb_ctx_, pa.atoms, pa.pos, fa, b,
                                           en, w,
                                           tiled_ws_[static_cast<std::size_t>(pe)]);
            break;
          case NonbondedKernel::kTiledThreads:
            e = nonbonded_self_range_tiled_mt(*nb_ctx_, pa.atoms, pa.pos, fa,
                                              b, en, w, tiled_mt_ws_, *nb_pool_);
            break;
        }
        break;
      }
      case ComputeKind::kPair: {
        PatchRt& pa = patches_[static_cast<std::size_t>(desc.patches[0])];
        PatchRt& pb = patches_[static_cast<std::size_t>(desc.patches[1])];
        std::vector<Vec3>& fa = scratch_of(desc.patches[0]);
        std::vector<Vec3>& fb = scratch_of(desc.patches[1]);
        const std::size_t n = pa.atoms.size();
        const auto b = static_cast<std::size_t>(std::lround(desc.frac_begin * n));
        const auto en = static_cast<std::size_t>(std::lround(desc.frac_end * n));
        switch (wl_->nonbonded.kernel) {
          case NonbondedKernel::kScalar:
            e = nonbonded_ab_range(*nb_ctx_, pa.atoms, pa.pos, fa, pb.atoms,
                                   pb.pos, fb, b, en, w);
            break;
          case NonbondedKernel::kTiled:
            e = nonbonded_ab_range_tiled(*nb_ctx_, pa.atoms, pa.pos, fa,
                                         pb.atoms, pb.pos, fb, b, en, w,
                                         tiled_ws_[static_cast<std::size_t>(pe)]);
            break;
          case NonbondedKernel::kTiledThreads:
            e = nonbonded_ab_range_tiled_mt(*nb_ctx_, pa.atoms, pa.pos, fa,
                                            pb.atoms, pb.pos, fb, b, en, w,
                                            tiled_mt_ws_, *nb_pool_);
            break;
        }
        break;
      }
      default: {
        // Bonded kinds: fetch coordinates by atom location, scatter forces
        // into this compute's scratch slots of the owning patches' proxies.
        auto pos_of = [&](int atom) -> const Vec3& {
          const auto [p, idx] = atom_loc_[static_cast<std::size_t>(atom)];
          return patches_[static_cast<std::size_t>(p)].pos[static_cast<std::size_t>(idx)];
        };
        auto frc_of = [&](int atom) -> Vec3& {
          const auto [p, idx] = atom_loc_[static_cast<std::size_t>(atom)];
          return scratch_of(p)[static_cast<std::size_t>(idx)];
        };
        for (int t : desc.terms) {
          switch (desc.kind) {
            case ComputeKind::kBonds: {
              const Bond& term = mol_->bonds()[static_cast<std::size_t>(t)];
              e.bond += bond_energy_force(pos_of(term.a), pos_of(term.b),
                                          mol_->params.bond(term.param),
                                          frc_of(term.a), frc_of(term.b));
              break;
            }
            case ComputeKind::kAngles: {
              const Angle& term = mol_->angles()[static_cast<std::size_t>(t)];
              e.angle += angle_energy_force(
                  pos_of(term.a), pos_of(term.b), pos_of(term.c),
                  mol_->params.angle(term.param), frc_of(term.a), frc_of(term.b),
                  frc_of(term.c));
              break;
            }
            case ComputeKind::kDihedrals: {
              const Dihedral& term = mol_->dihedrals()[static_cast<std::size_t>(t)];
              e.dihedral += dihedral_energy_force(
                  pos_of(term.a), pos_of(term.b), pos_of(term.c), pos_of(term.d),
                  mol_->params.dihedral(term.param), frc_of(term.a), frc_of(term.b),
                  frc_of(term.c), frc_of(term.d));
              break;
            }
            default: {
              const Improper& term = mol_->impropers()[static_cast<std::size_t>(t)];
              e.improper += improper_energy_force(
                  pos_of(term.a), pos_of(term.b), pos_of(term.c), pos_of(term.d),
                  mol_->params.improper(term.param), frc_of(term.a), frc_of(term.b),
                  frc_of(term.c), frc_of(term.d));
              break;
            }
          }
        }
        w.bonded_terms += desc.terms.size();
        break;
      }
    }
    rt.work = w;
    // Potential energy goes into this compute's private (compute, step)
    // slot by assignment — no shared accumulator to race on or to
    // double-count under fault replay. attempt_cycle folds the slots in
    // compute-id order once the cycle has quiesced.
    const int local_step = step_global - step_base_;
    if (local_step >= 0 && local_step <= cycle_target_) {
      potential_scratch_[static_cast<std::size_t>(compute) *
                             static_cast<std::size_t>(cycle_target_ + 1) +
                         static_cast<std::size_t>(local_step)] = e;
    }
    if (ctx.models_cost()) ctx.charge(noisy(work_cost(w, ctx.machine())));
  } else {
    ctx.charge(noisy(
        work_cost(wl_->work.per_compute(static_cast<std::size_t>(compute)),
                  ctx.machine())));
  }

  for (int patch : rt.deps) {
    ProxyRt& proxy = proxies_[static_cast<std::size_t>(proxy_index(patch, pe))];
    if (--proxy.pending == 0) {
      complete_patch_on_pe(ctx, patch, pe);
    }
  }
}

void ParallelSim::complete_patch_on_pe(ExecContext& ctx, int patch, int pe) {
  // All of this PE's computes reading `patch` are done; their scratch
  // slots stay put (advance() folds every slot of every proxy in global
  // compute-id order) and the home patch just gets the completion signal.
  // Under the threaded backend the mailbox handoff of that signal is also
  // what makes the slot writes visible to the home PE's worker.
  const int home = patch_home_[static_cast<std::size_t>(patch)];
  const int pxy = proxy_index(patch, pe);
  if (pe == home) {
    on_contribution(ctx, patch, pxy);
    return;
  }
  const std::size_t bytes = static_cast<std::size_t>(opts_.msg_header_bytes) +
                            static_cast<std::size_t>(
                                patches_[static_cast<std::size_t>(patch)].natoms()) *
                                static_cast<std::size_t>(opts_.bytes_per_atom_force);
  TaskMsg msg;
  msg.entry = e_forces_;
  msg.priority = -2;
  msg.bytes = bytes;
  msg.fn = [this, patch, pxy, bytes](ExecContext& c) {
    c.charge_pack(static_cast<double>(bytes) * c.machine().unpack_byte_cost);
    on_contribution(c, patch, pxy);
  };
  // The sender also pays to pack the outgoing force message.
  ctx.charge_pack(static_cast<double>(bytes) * ctx.machine().pack_byte_cost);
  rsend(ctx, home, std::move(msg));
}

void ParallelSim::on_contribution(ExecContext& ctx, int patch, int from_proxy) {
  PatchRt& pr = patches_[static_cast<std::size_t>(patch)];
  if (opts_.debug_fold_arrival_order && des_ != nullptr && from_proxy >= 0) {
    // Injected-defect bookkeeping only; see advance(). on_contribution runs
    // on the home PE exclusively, so this append is unsynchronized-safe.
    pr.arrival.push_back(from_proxy);
  }
  ++pr.contrib_received;
  if (pr.contrib_received < pr.contrib_expected) return;
  pr.contrib_received = 0;
  TaskMsg msg;
  msg.entry = e_advance_;
  msg.priority = -3;
  msg.fn = [this, patch](ExecContext& c) { advance(c, patch); };
  // on_contribution always runs on the home PE, so this send is local and
  // cannot be faulted; rsend keeps the routing uniform anyway.
  rsend(ctx, patch_home_[static_cast<std::size_t>(patch)], std::move(msg));
}

void ParallelSim::advance(ExecContext& ctx, int patch) {
  PatchRt& pr = patches_[static_cast<std::size_t>(patch)];
  const int s = pr.step;
  const int global = step_base_ + s;
  if (ctx.models_cost()) {
    ctx.charge(noisy(static_cast<double>(pr.natoms()) * ctx.machine().integrate_cost));
  }

  const double dt = opts_.dt_fs / units::kAkmaTimeFs;
  double reduction_value = 1.0;
  if (opts_.numeric) {
    std::fill(pr.frc.begin(), pr.frc.end(), Vec3{});
    const auto& contribs = patch_contribs_[static_cast<std::size_t>(patch)];
    if (opts_.debug_fold_arrival_order && des_ != nullptr) {
      // INJECTED DEFECT (ParallelOptions::debug_fold_arrival_order): fold in
      // message-ARRIVAL order instead of canonical compute-id order, so the
      // floating-point sum depends on the schedule. The scenario fuzzer's
      // self-test must detect and shrink this.
      for (const int arrived : pr.arrival) {
        for (const auto& [proxy_id, slot] : contribs) {
          if (proxy_id != arrived) continue;
          const std::vector<Vec3>& src =
              proxies_[static_cast<std::size_t>(proxy_id)]
                  .scratch[static_cast<std::size_t>(slot)];
          for (std::size_t i = 0; i < pr.frc.size(); ++i) pr.frc[i] += src[i];
        }
      }
      pr.arrival.clear();
    } else {
      // Canonical force accumulation: sum every contributing scratch slot in
      // global compute-id order (patch_contribs_), independent of message
      // arrival order, execution order, object placement and backend.
      for (const auto& [proxy_id, slot] : contribs) {
        const std::vector<Vec3>& src =
            proxies_[static_cast<std::size_t>(proxy_id)]
                .scratch[static_cast<std::size_t>(slot)];
        for (std::size_t i = 0; i < pr.frc.size(); ++i) pr.frc[i] += src[i];
      }
    }
  }
  if (opts_.numeric) {
    const double kick_scale = s == static_cast<int>(cycle_target_) ? 0.5
                              : s == 0                             ? 0.5
                                                                   : 1.0;
    for (std::size_t i = 0; i < pr.vel.size(); ++i) {
      pr.vel[i] += pr.frc[i] * (kick_scale * dt / pr.mass[i]);
    }
    reduction_value = kinetic_energy(pr.vel, pr.mass);
  }

  if (s < cycle_target_) {
    if (opts_.numeric) {
      for (std::size_t i = 0; i < pr.pos.size(); ++i) pr.pos[i] += pr.vel[i] * dt;
    }
    pr.step = s + 1;
    publish_coords(ctx, patch);
  }

  reducer_->contribute(ctx, patch, global, reduction_value);

  {
    std::lock_guard<std::mutex> lock(progress_mu_);
    ++steps_done_counter_[static_cast<std::size_t>(global)];
    if (steps_done_counter_[static_cast<std::size_t>(global)] == active_patches_) {
      step_completion_[static_cast<std::size_t>(global)] = ctx.now();
    }
  }
}

// ---------------------------------------------------------------------------
// Cycle and benchmark control
// ---------------------------------------------------------------------------

void ParallelSim::attempt_cycle(int steps) {
  assert(steps >= 1);
  cycle_target_ = steps;
  step_base_ = static_cast<int>(step_completion_.size());
  step_completion_.resize(static_cast<std::size_t>(step_base_ + steps + 1), 0.0);
  steps_done_counter_.resize(static_cast<std::size_t>(step_base_ + steps + 1), 0);
  if (opts_.numeric) {
    // One slot per (compute, local step); a cycle of T steps runs T + 1
    // force rounds (bootstrap step 0 through the closing half-kick at T).
    potential_scratch_.assign(
        computes_.size() * static_cast<std::size_t>(steps + 1), EnergyTerms{});
  }

  const double t0 = exec_->time();
  for (std::size_t p = 0; p < patches_.size(); ++p) {
    PatchRt& pr = patches_[p];
    pr.step = 0;
    pr.contrib_received = 0;
    pr.arrival.clear();
    if (opts_.numeric) std::fill(pr.frc.begin(), pr.frc.end(), Vec3{});
    TaskMsg msg;
    msg.entry = e_advance_;
    msg.priority = -3;
    const int patch = static_cast<int>(p);
    msg.fn = [this, patch](ExecContext& c) { publish_coords(c, patch); };
    exec_->inject(patch_home_[p], std::move(msg), t0);
  }
  exec_->run();
  // The machine always drains, faults or not: messages to dead PEs are
  // discarded, retry timers abandon after max_attempts, and nothing blocks.
  assert(exec_->idle());
  global_steps_ += steps;

  if (opts_.numeric) {
    // Fold the per-(compute, step) potential slots in compute-id order.
    // Assignment (not +=) keeps a fault-replayed cycle idempotent.
    potential_per_step_.resize(static_cast<std::size_t>(step_base_ + steps + 1),
                               EnergyTerms{});
    for (int s = 0; s <= steps; ++s) {
      EnergyTerms sum;
      for (std::size_t c = 0; c < computes_.size(); ++c) {
        sum += potential_scratch_[c * static_cast<std::size_t>(steps + 1) +
                                  static_cast<std::size_t>(s)];
      }
      potential_per_step_[static_cast<std::size_t>(step_base_ + s)] = sum;
    }
    migrate_atoms();
  }
}

bool ParallelSim::last_cycle_complete() const {
  if (steps_done_counter_.empty()) return true;
  return steps_done_counter_.back() == active_patches_;
}

void ParallelSim::run_cycle(int steps) {
  assert(steps >= 1);
  const bool resilient = opts_.checkpoint_every > 0;
  if (resilient) {
    if (!ckpt_ ||
        static_cast<int>(cycles_since_ckpt_.size()) >= opts_.checkpoint_every) {
      take_checkpoint();
    }
    cycles_since_ckpt_.push_back(steps);
  }
  // A cycle has truly finished only when every patch completed every step
  // AND every reduction round landed. The two can diverge: a PE that dies
  // after its patches' final advance but before the reduction tree drained
  // through it leaves last_cycle_complete() true with the last round's
  // total silently missing (found by scalemd-fuzz; see EXPERIMENTS.md).
  const auto recovered = [this]() {
    return last_cycle_complete() &&
           reduction_totals_.size() == step_completion_.size();
  };
  attempt_cycle(steps);
  if (resilient && !recovered()) {
    // Work was lost (typically a PE failure mid-cycle). Restore the last
    // coordinated checkpoint, evacuate the dead PEs, and replay every cycle
    // recorded since the snapshot. A replayed cycle can itself be hit by a
    // later scheduled failure, so loop — with a cap so a hostile plan (all
    // PEs dying) terminates; an incomplete final cycle is then left for the
    // invariant layer to flag.
    constexpr int kMaxRestarts = 8;
    int tries = 0;
    while (!recovered() && tries < kMaxRestarts) {
      ++tries;
      restore_checkpoint();
      for (int cycle_steps : cycles_since_ckpt_) {
        attempt_cycle(cycle_steps);
        if (!recovered()) break;
      }
    }
  }
  if (cycle_observer_) cycle_observer_(*this, steps);
}

double ParallelSim::step_completion_at(int s) const {
  if (s < 0 || static_cast<std::size_t>(s) >= step_completion_.size()) return 0.0;
  return step_completion_[static_cast<std::size_t>(s)];
}

double ParallelSim::seconds_per_step_tail(int steps) const {
  // Clamp instead of asserting: callers probing before any cycle ran (or
  // asking for a longer tail than was recorded) get a defined 0.0 /
  // whole-history answer rather than UB.
  const std::size_t n = step_completion_.size();
  if (n < 2) return 0.0;
  std::size_t span = steps < 1 ? 1 : static_cast<std::size_t>(steps);
  span = std::min(span, n - 1);
  const double t1 = step_completion_[n - 1];
  const double t0 = step_completion_[n - 1 - span];
  return (t1 - t0) / static_cast<double>(span);
}

double ParallelSim::run_benchmark(int measure_steps, int timed_steps) {
  run_cycle(measure_steps);
  load_balance(/*refine_only=*/false);
  run_cycle(measure_steps);
  load_balance(/*refine_only=*/true);
  run_cycle(timed_steps);
  return seconds_per_step_tail(timed_steps);
}

// ---------------------------------------------------------------------------
// Checkpoint / restart / evacuation
// ---------------------------------------------------------------------------

void ParallelSim::take_checkpoint() {
  assert(des_ != nullptr && "checkpointing is DES-only");
  assert(des_->idle());
  if (!ckpt_) ckpt_ = std::make_unique<Checkpoint>();
  Checkpoint& c = *ckpt_;
  c.taken_at = des_->time();
  c.patches = patches_;
  c.atom_loc = atom_loc_;
  c.compute_deps.resize(computes_.size());
  for (std::size_t i = 0; i < computes_.size(); ++i) {
    c.compute_deps[i] = computes_[i].deps;
  }
  c.patch_home = patch_home_;
  c.compute_pe = compute_pe_;
  c.reduction_totals = reduction_totals_;
  c.potential_per_step = potential_per_step_;
  c.step_completion = step_completion_;
  c.steps_done_counter = steps_done_counter_;
  c.global_steps = global_steps_;
  c.noise_rng = noise_rng_;
  cycles_since_ckpt_.clear();
  ++checkpoints_taken_;
  des_->record_fault({FaultKind::kCheckpoint, -1, -1, c.taken_at, 0.0});

  // Model the coordinated snapshot's cost: each live PE spends time
  // serializing its resident patch state (this is the overhead the audit
  // reports for fault-free runs with checkpointing on).
  std::vector<double> bytes_on_pe(static_cast<std::size_t>(opts_.num_pes), 0.0);
  for (std::size_t p = 0; p < patches_.size(); ++p) {
    bytes_on_pe[static_cast<std::size_t>(patch_home_[p])] +=
        96.0 * static_cast<double>(patches_[p].natoms());
  }
  const double t0 = des_->time();
  for (int pe = 0; pe < opts_.num_pes; ++pe) {
    if (des_->pe_failed(pe)) continue;
    const double cost =
        bytes_on_pe[static_cast<std::size_t>(pe)] * opts_.machine.pack_byte_cost;
    TaskMsg msg;
    msg.entry = e_checkpoint_;
    msg.fn = [cost](ExecContext& cc) { cc.charge(cost); };
    des_->inject(pe, std::move(msg), t0);
  }
  des_->run();
  assert(des_->idle());
}

void ParallelSim::restore_checkpoint() {
  assert(ckpt_ && des_ != nullptr);
  const Checkpoint& c = *ckpt_;
  const double now = des_->time();
  const double lost = now - c.taken_at;
  restart_lost_time_ += lost;
  ++restarts_;

  patches_ = c.patches;
  atom_loc_ = c.atom_loc;
  for (std::size_t i = 0; i < computes_.size(); ++i) {
    computes_[i].deps = c.compute_deps[i];
  }
  patch_home_ = c.patch_home;
  compute_pe_ = c.compute_pe;
  reduction_totals_ = c.reduction_totals;
  potential_per_step_ = c.potential_per_step;
  step_completion_ = c.step_completion;
  steps_done_counter_ = c.steps_done_counter;
  global_steps_ = c.global_steps;
  noise_rng_ = c.noise_rng;

  // Un-acked pre-restart sends must not be resurrected by stale retries;
  // replayed sends get fresh sequence ids so dedup cannot misfire either.
  if (reliable_) reliable_->clear_pending();

  // The virtual clock is NOT rewound: the lost interval models the real
  // cost of redoing work, and is what restart_latency() reports.
  des_->record_fault({FaultKind::kRestart, -1, -1, now, lost});

  const std::vector<int> dead = des_->failed_pes();
  if (!dead.empty()) {
    evacuate_failed_pes(dead);
  } else {
    // No failure — the stall came from unrecovered message loss. Replaying
    // from the snapshot redraws the per-message fault decisions, so a
    // retry has an independent chance of a clean pass.
    rebuild_reducer();
    rebuild_dataflow();
  }
}

void ParallelSim::evacuate_failed_pes(const std::vector<int>& dead) {
  std::vector<char> is_dead(static_cast<std::size_t>(opts_.num_pes), 0);
  for (int pe : dead) is_dead[static_cast<std::size_t>(pe)] = 1;
  const std::vector<double> busy = exec_->busy_times();

  // 1. Re-home orphaned patches: prefer the live PE already running the
  //    most computes that read the patch (fewest new proxies), tie-break
  //    on lighter historical load, then PE id — deterministic.
  for (std::size_t p = 0; p < patches_.size(); ++p) {
    if (!is_dead[static_cast<std::size_t>(patch_home_[p])]) continue;
    std::vector<int> affinity(static_cast<std::size_t>(opts_.num_pes), 0);
    for (std::size_t i = 0; i < computes_.size(); ++i) {
      const auto pe = static_cast<std::size_t>(compute_pe_[i]);
      if (is_dead[pe]) continue;
      for (int dep : computes_[i].deps) {
        if (dep == static_cast<int>(p)) ++affinity[pe];
      }
    }
    int best = -1;
    for (int pe = 0; pe < opts_.num_pes; ++pe) {
      const auto u = static_cast<std::size_t>(pe);
      if (is_dead[u]) continue;
      const bool better =
          best < 0 || affinity[u] > affinity[static_cast<std::size_t>(best)] ||
          (affinity[u] == affinity[static_cast<std::size_t>(best)] &&
           busy[u] < busy[static_cast<std::size_t>(best)]);
      if (better) best = pe;
    }
    assert(best >= 0 && "all PEs failed — nothing to evacuate onto");
    patch_home_[p] = best;
  }

  // 2. Non-migratable computes are pinned to their base patch's home,
  //    which step 1 just guaranteed is live.
  for (std::size_t i = 0; i < computes_.size(); ++i) {
    if (wl_->plan.migratable_index()[i] >= 0) continue;
    compute_pe_[i] = patch_home_[static_cast<std::size_t>(
        wl_->plan.computes()[i].base_patch)];
  }

  // 3. Migratable computes go through the LB evacuation strategy (greedy
  //    proxy-aware placement + refine over the survivors).
  LbProblem problem;
  problem.num_pes = opts_.num_pes;
  problem.patch_home = patch_home_;
  problem.background = db_->background();
  std::vector<int> object_compute;
  LbAssignment start;
  for (std::size_t i = 0; i < computes_.size(); ++i) {
    if (wl_->plan.migratable_index()[i] < 0) continue;
    LbObject o;
    o.load = db_->object_load(
        static_cast<std::uint32_t>(wl_->plan.migratable_index()[i]));
    o.current_pe = compute_pe_[i];
    o.patch_a = computes_[i].deps.empty() ? -1 : computes_[i].deps[0];
    o.patch_b = computes_[i].deps.size() > 1 ? computes_[i].deps[1] : -1;
    problem.objects.push_back(o);
    start.push_back(compute_pe_[i]);
    object_compute.push_back(static_cast<int>(i));
  }
  const LbAssignment map = evacuate_map(problem, start, dead);
  int moved = 0;
  for (std::size_t j = 0; j < map.size(); ++j) {
    const auto i = static_cast<std::size_t>(object_compute[j]);
    if (compute_pe_[i] != map[j]) ++moved;
    compute_pe_[i] = map[j];
  }

  for (int pe : dead) {
    if (des_ != nullptr) {
      des_->record_fault({FaultKind::kEvacuation, pe, -1, des_->time(),
                          static_cast<double>(moved)});
    }
  }

  // Patch homes changed: the reduction tree spans different PEs now.
  rebuild_reducer();
  rebuild_dataflow();
}

// ---------------------------------------------------------------------------
// Load balancing
// ---------------------------------------------------------------------------

void ParallelSim::load_balance(bool refine_only) {
  if (opts_.lb.kind == LbStrategyKind::kNone) {
    db_->reset();
    return;
  }

  // Graceful degradation: if PEs have failed, first make sure nothing is
  // homed on them (idempotent when already evacuated), and remember to
  // keep the strategy's output off them below. Only the DES machine can
  // fail PEs; the threaded backend has none to report.
  const std::vector<int> dead =
      des_ != nullptr ? des_->failed_pes() : std::vector<int>{};
  if (!dead.empty() &&
      static_cast<std::size_t>(dead.size()) < static_cast<std::size_t>(opts_.num_pes)) {
    evacuate_failed_pes(dead);
  }

  // Build the strategy input from the measurement database.
  LbProblem problem;
  problem.num_pes = opts_.num_pes;
  problem.patch_home = patch_home_;
  problem.background = db_->background();
  std::vector<int> object_compute;  // migratable index -> compute id
  object_compute.reserve(static_cast<std::size_t>(wl_->plan.migratable_count()));
  for (std::size_t i = 0; i < computes_.size(); ++i) {
    const int mi = wl_->plan.migratable_index()[i];
    if (mi < 0) continue;
    LbObject o;
    o.load = db_->object_load(static_cast<std::uint32_t>(mi));
    o.current_pe = compute_pe_[i];
    o.patch_a = computes_[i].deps.empty() ? -1 : computes_[i].deps[0];
    o.patch_b = computes_[i].deps.size() > 1 ? computes_[i].deps[1] : -1;
    problem.objects.push_back(o);
    object_compute.push_back(static_cast<int>(i));
  }

  LbAssignment map;
  switch (opts_.lb.kind) {
    case LbStrategyKind::kRandom:
      map = random_map(problem);
      break;
    case LbStrategyKind::kGreedyNoComm:
      map = greedy_nocomm_map(problem);
      break;
    case LbStrategyKind::kGreedy:
      map = greedy_comm_map(problem, opts_.lb.greedy_overload);
      break;
    case LbStrategyKind::kGreedyRefine:
      map = refine_only
                ? refine_map(problem, identity_map(problem), opts_.lb.refine_overload)
                : refine_map(problem, greedy_comm_map(problem, opts_.lb.greedy_overload),
                             opts_.lb.refine_overload);
      break;
    case LbStrategyKind::kDiffusion:
      map = diffusion_map(problem);
      break;
    case LbStrategyKind::kNone:
      return;
  }

  // The strategies are failure-blind; route anything they put on a dead PE
  // back onto the survivors.
  if (!dead.empty() &&
      static_cast<std::size_t>(dead.size()) < static_cast<std::size_t>(opts_.num_pes)) {
    map = evacuate_map(problem, map, dead, opts_.lb.refine_overload);
  }

  // Apply the new mapping; model each migration as a message carrying the
  // object's state from its old PE to its new one.
  const double t0 = exec_->time();
  for (std::size_t j = 0; j < map.size(); ++j) {
    const int compute = object_compute[j];
    const int old_pe = compute_pe_[static_cast<std::size_t>(compute)];
    const int new_pe = map[j];
    if (old_pe == new_pe) continue;
    compute_pe_[static_cast<std::size_t>(compute)] = new_pe;
    TaskMsg msg;
    msg.entry = e_migrate_;
    msg.fn = [this, new_pe](ExecContext& c) {
      TaskMsg arrive;
      arrive.entry = e_migrate_;
      arrive.bytes = 1024;
      arrive.fn = [](ExecContext& cc) { cc.charge(2e-6); };
      c.send(new_pe, std::move(arrive));
    };
    exec_->inject(old_pe, std::move(msg), t0);
  }
  exec_->run();
  rebuild_dataflow();
  db_->reset();
}

// ---------------------------------------------------------------------------
// Atom migration (numeric mode, cycle boundaries)
// ---------------------------------------------------------------------------

void ParallelSim::migrate_atoms() {
  const CellGrid& grid = wl_->decomp.grid();
  // Collect movers per source patch: (atom index, destination patch).
  std::vector<std::vector<std::pair<int, int>>> movers(patches_.size());
  bool any = false;
  for (std::size_t p = 0; p < patches_.size(); ++p) {
    PatchRt& pr = patches_[p];
    for (std::size_t i = 0; i < pr.atoms.size(); ++i) {
      const int dst = grid.cell_of(pr.pos[i]);
      if (dst != static_cast<int>(p)) {
        movers[p].push_back({static_cast<int>(i), dst});
        any = true;
      }
    }
  }
  if (any) {
    // Apply moves: copy atom state to destinations, compact sources.
    std::map<std::pair<int, int>, int> traffic;  // (src pe, dst pe) -> atoms
    for (std::size_t p = 0; p < patches_.size(); ++p) {
      if (movers[p].empty()) continue;
      PatchRt& src = patches_[p];
      std::vector<char> moved(src.atoms.size(), 0);
      for (const auto& [idx, dst] : movers[p]) {
        PatchRt& d = patches_[static_cast<std::size_t>(dst)];
        d.atoms.push_back(src.atoms[static_cast<std::size_t>(idx)]);
        d.pos.push_back(src.pos[static_cast<std::size_t>(idx)]);
        d.vel.push_back(src.vel[static_cast<std::size_t>(idx)]);
        d.mass.push_back(src.mass[static_cast<std::size_t>(idx)]);
        d.frc.push_back(src.frc[static_cast<std::size_t>(idx)]);
        moved[static_cast<std::size_t>(idx)] = 1;
        const int src_pe = patch_home_[p];
        const int dst_pe = patch_home_[static_cast<std::size_t>(dst)];
        if (src_pe != dst_pe) ++traffic[{src_pe, dst_pe}];
      }
      // Compact the source arrays.
      std::size_t w = 0;
      for (std::size_t i = 0; i < src.atoms.size(); ++i) {
        if (moved[i]) continue;
        src.atoms[w] = src.atoms[i];
        src.pos[w] = src.pos[i];
        src.vel[w] = src.vel[i];
        src.mass[w] = src.mass[i];
        src.frc[w] = src.frc[i];
        ++w;
      }
      src.atoms.resize(w);
      src.pos.resize(w);
      src.vel.resize(w);
      src.mass.resize(w);
      src.frc.resize(w);
    }
    // Refresh atom locations.
    for (std::size_t p = 0; p < patches_.size(); ++p) {
      for (std::size_t i = 0; i < patches_[p].atoms.size(); ++i) {
        atom_loc_[static_cast<std::size_t>(patches_[p].atoms[i])] = {
            static_cast<int>(p), static_cast<int>(i)};
      }
    }
    // Refresh bonded compute dependencies (term atoms may have changed
    // patches; self/pair computes reference patches directly).
    for (std::size_t i = 0; i < computes_.size(); ++i) {
      const ComputeDesc& desc = wl_->plan.computes()[i];
      if (is_nonbonded(desc.kind)) continue;
      std::vector<int> deps;
      auto add_dep = [&](int atom) {
        const int p = atom_loc_[static_cast<std::size_t>(atom)].first;
        if (std::find(deps.begin(), deps.end(), p) == deps.end()) deps.push_back(p);
      };
      for (int t : desc.terms) {
        switch (desc.kind) {
          case ComputeKind::kBonds: {
            const Bond& term = mol_->bonds()[static_cast<std::size_t>(t)];
            add_dep(term.a);
            add_dep(term.b);
            break;
          }
          case ComputeKind::kAngles: {
            const Angle& term = mol_->angles()[static_cast<std::size_t>(t)];
            add_dep(term.a);
            add_dep(term.b);
            add_dep(term.c);
            break;
          }
          case ComputeKind::kDihedrals: {
            const Dihedral& term = mol_->dihedrals()[static_cast<std::size_t>(t)];
            add_dep(term.a);
            add_dep(term.b);
            add_dep(term.c);
            add_dep(term.d);
            break;
          }
          default: {
            const Improper& term = mol_->impropers()[static_cast<std::size_t>(t)];
            add_dep(term.a);
            add_dep(term.b);
            add_dep(term.c);
            add_dep(term.d);
            break;
          }
        }
      }
      std::sort(deps.begin(), deps.end());
      computes_[i].deps = std::move(deps);
    }
    // Model the migration traffic: one batched message per (src, dst) PE
    // pair, sized by the number of atoms moved.
    const double t0 = exec_->time();
    for (const auto& [edge, count] : traffic) {
      const auto [src_pe, dst_pe] = edge;
      const std::size_t bytes = 32 + 96 * static_cast<std::size_t>(count);
      TaskMsg msg;
      msg.entry = e_migrate_;
      msg.fn = [this, dst_pe = dst_pe, bytes](ExecContext& c) {
        TaskMsg arrive;
        arrive.entry = e_migrate_;
        arrive.bytes = bytes;
        arrive.fn = [bytes](ExecContext& cc) {
          cc.charge_pack(static_cast<double>(bytes) * cc.machine().unpack_byte_cost);
        };
        c.send(dst_pe, std::move(arrive));
      };
      exec_->inject(src_pe, std::move(msg), t0);
    }
    exec_->run();
  }
  rebuild_dataflow();
}

// ---------------------------------------------------------------------------
// Results access
// ---------------------------------------------------------------------------

void ParallelSim::attach_sink(TraceSink* sink) { sinks_.add(sink); }

void ParallelSim::detach_sink(const TraceSink* sink) { sinks_.remove(sink); }

double ParallelSim::ideal_nonbonded_seconds() const {
  double s = 0.0;
  for (std::size_t i = 0; i < computes_.size(); ++i) {
    if (is_nonbonded(wl_->plan.computes()[i].kind)) {
      s += work_cost(wl_->work.per_compute(i), opts_.machine);
    }
  }
  return s;
}

double ParallelSim::ideal_bonded_seconds() const {
  double s = 0.0;
  for (std::size_t i = 0; i < computes_.size(); ++i) {
    if (!is_nonbonded(wl_->plan.computes()[i].kind)) {
      s += work_cost(wl_->work.per_compute(i), opts_.machine);
    }
  }
  return s;
}

double ParallelSim::ideal_integration_seconds() const {
  return static_cast<double>(mol_->atom_count()) * opts_.machine.integrate_cost;
}

int ParallelSim::patch_count() const { return static_cast<int>(patches_.size()); }

int ParallelSim::proxy_count() const {
  int count = 0;
  for (const ProxyRt& p : proxies_) {
    count += p.pe != patch_home_[static_cast<std::size_t>(p.patch)];
  }
  return count;
}

int ParallelSim::max_proxies_per_patch() const {
  int best = 0;
  for (std::size_t p = 0; p < patches_.size(); ++p) {
    int count = 0;
    for (int id : patch_proxy_ids_[p]) {
      count += proxies_[static_cast<std::size_t>(id)].pe != patch_home_[p];
    }
    best = std::max(best, count);
  }
  return best;
}

std::vector<Vec3> ParallelSim::gather_positions() const {
  std::vector<Vec3> out(static_cast<std::size_t>(mol_->atom_count()));
  for (const PatchRt& p : patches_) {
    for (std::size_t i = 0; i < p.atoms.size(); ++i) {
      out[static_cast<std::size_t>(p.atoms[i])] = p.pos[i];
    }
  }
  return out;
}

std::vector<Vec3> ParallelSim::gather_velocities() const {
  std::vector<Vec3> out(static_cast<std::size_t>(mol_->atom_count()));
  for (const PatchRt& p : patches_) {
    for (std::size_t i = 0; i < p.atoms.size(); ++i) {
      out[static_cast<std::size_t>(p.atoms[i])] = p.vel[i];
    }
  }
  return out;
}

std::vector<Vec3> ParallelSim::gather_forces() const {
  std::vector<Vec3> out(static_cast<std::size_t>(mol_->atom_count()));
  for (const PatchRt& p : patches_) {
    for (std::size_t i = 0; i < p.atoms.size(); ++i) {
      out[static_cast<std::size_t>(p.atoms[i])] = p.frc[i];
    }
  }
  return out;
}

EnergyTerms ParallelSim::potential_terms_at_step(int s) const {
  if (s < 0 || static_cast<std::size_t>(s) >= potential_per_step_.size()) {
    return EnergyTerms{};
  }
  return potential_per_step_[static_cast<std::size_t>(s)];
}

double ParallelSim::potential_at_step(int s) const {
  return potential_terms_at_step(s).total();
}

}  // namespace scalemd
