#pragma once

#include "core/parallel_sim.hpp"

namespace scalemd {

/// Reference implementations of the parallelization schemes the paper's
/// section 3 argues are not scalable, run on the same DES machine model for
/// an apples-to-apples comparison with the hybrid decomposition:
///
/// * atom decomposition (replicated data, CHARMM/AMBER style): every PE owns
///   N/P atoms and computes 1/P of the interactions, but each step requires
///   a machine-wide coordinate broadcast and force allreduce of the full
///   O(N) arrays — communication grows with log P and never shrinks with P;
/// * force decomposition (Plimpton style): PEs own blocks of the force
///   matrix; per-step communication is O(N/sqrt(P)) via row/column
///   collectives — better, but still non-scalable.
///
/// Both are given *perfectly balanced* compute (W/P per PE), which favors
/// them; they still lose to the hybrid scheme at scale, which is the point.

/// Seconds per step of the replicated-data scheme at `pes` processors.
double atom_decomposition_step(const Workload& workload, int pes,
                               const MachineModel& machine);

/// Seconds per step of the force-decomposition scheme at `pes` processors.
double force_decomposition_step(const Workload& workload, int pes,
                                const MachineModel& machine);

}  // namespace scalemd
