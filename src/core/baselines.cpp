#include "core/baselines.hpp"

#include <cmath>
#include <memory>
#include <vector>

#include "util/random.hpp"

namespace scalemd {

namespace {

/// Round-structured collective on the DES: every PE sends one message of
/// bytes(round) to partner(pe, round) each round and advances when its own
/// round message arrives. `on_done(pe)` fires after the last round.
class CollectiveRunner {
 public:
  CollectiveRunner(Simulator& sim, EntryId entry, int rounds,
                   std::function<int(int pe, int round)> partner,
                   std::function<std::size_t(int round)> bytes,
                   std::function<void(ExecContext&, int pe)> on_done)
      : sim_(sim),
        entry_(entry),
        rounds_(rounds),
        partner_(std::move(partner)),
        bytes_(std::move(bytes)),
        on_done_(std::move(on_done)),
        round_(static_cast<std::size_t>(sim.num_pes()), 0) {}

  /// Starts the collective on `pe` from within a running task.
  void start(ExecContext& ctx, int pe) { send_round(ctx, pe); }

 private:
  void send_round(ExecContext& ctx, int pe) {
    if (round_[static_cast<std::size_t>(pe)] >= rounds_) {
      on_done_(ctx, pe);
      return;
    }
    const int r = round_[static_cast<std::size_t>(pe)];
    const std::size_t nbytes = bytes_(r);
    TaskMsg msg;
    msg.entry = entry_;
    msg.bytes = nbytes;
    msg.fn = [this, nbytes](ExecContext& c) {
      // Receiving PE processes the round payload and advances.
      c.charge_pack(static_cast<double>(nbytes) * c.machine().unpack_byte_cost);
      ++round_[static_cast<std::size_t>(c.pe())];
      send_round(c, c.pe());
    };
    ctx.charge_pack(static_cast<double>(nbytes) * ctx.machine().pack_byte_cost);
    ctx.send(partner_(pe, r), std::move(msg));
  }

  Simulator& sim_;
  EntryId entry_;
  int rounds_;
  std::function<int(int, int)> partner_;
  std::function<std::size_t(int)> bytes_;
  std::function<void(ExecContext&, int)> on_done_;
  std::vector<int> round_;
};

/// Largest factor r <= sqrt(p) so the force matrix folds into an r x (p/r)
/// grid.
int near_square_rows(int p) {
  int r = static_cast<int>(std::sqrt(static_cast<double>(p)));
  while (r > 1 && p % r != 0) --r;
  return std::max(1, r);
}

}  // namespace

double atom_decomposition_step(const Workload& workload, int pes,
                               const MachineModel& machine) {
  Simulator sim(pes, machine);
  const EntryId e_compute = sim.entries().add("AtomDecomp::compute",
                                              WorkCategory::kNonbonded);
  const EntryId e_coll = sim.entries().add("AtomDecomp::allreduce",
                                           WorkCategory::kComm);
  const double total_work = work_cost(workload.work.total(), machine);
  const std::size_t n = static_cast<std::size_t>(workload.mol->atom_count());
  const int rounds = pes > 1 ? static_cast<int>(std::ceil(std::log2(pes))) : 0;

  // Two machine-wide phases per step over the full replicated arrays:
  // coordinate broadcast and force allreduce. Each modeled as log2(P)
  // Bruck-style doubling rounds carrying the whole 24N-byte array.
  CollectiveRunner collective(
      sim, e_coll, 2 * rounds,
      [pes, rounds](int pe, int r) {
        const int stride = 1 << (rounds > 0 ? r % rounds : 0);
        return (pe + stride) % pes;
      },
      [n](int) { return 32 + 24 * n; }, [](ExecContext&, int) {});

  for (int pe = 0; pe < pes; ++pe) {
    TaskMsg msg;
    msg.entry = e_compute;
    msg.fn = [&, pe](ExecContext& ctx) {
      ctx.charge(total_work / pes);
      if (pes > 1) collective.start(ctx, pe);
    };
    sim.inject(pe, std::move(msg));
  }
  sim.run();
  return sim.time();
}

double force_decomposition_step(const Workload& workload, int pes,
                                const MachineModel& machine) {
  Simulator sim(pes, machine);
  const EntryId e_compute = sim.entries().add("ForceDecomp::compute",
                                              WorkCategory::kNonbonded);
  const EntryId e_row = sim.entries().add("ForceDecomp::rowAllgather",
                                          WorkCategory::kComm);
  const double total_work = work_cost(workload.work.total(), machine);
  const std::size_t n = static_cast<std::size_t>(workload.mol->atom_count());

  const int rows = near_square_rows(pes);
  const int cols = pes / rows;
  const std::size_t block_bytes = 32 + 24 * n / static_cast<std::size_t>(pes);

  // Force-matrix blocks have uneven pair density under a cutoff (atoms are
  // index-ordered, so blocks map to spatial regions); Plimpton [12] reports
  // this as force decomposition's key imbalance. Modeled as a deterministic
  // lognormal per-block factor with mean ~1.
  Rng imbalance_rng(0xF0DC + static_cast<std::uint64_t>(pes));
  std::vector<double> block_factor(static_cast<std::size_t>(pes));
  // Bigger blocks average out density variation, so the spread grows with
  // the partition: ~25% relative deviation at 2048 blocks.
  const double sigma = 0.25 * std::sqrt(static_cast<double>(pes) / 2048.0);
  for (auto& f : block_factor) {
    f = std::exp(sigma * imbalance_rng.normal() - 0.5 * sigma * sigma);
  }

  // Ring allgather of coordinates within each row (cols-1 rounds) followed
  // by a ring reduce-scatter of forces within each column (rows-1 rounds);
  // each round carries one N/P-atom block.
  const int rounds = (cols - 1) + (rows - 1);
  CollectiveRunner collective(
      sim, e_row, rounds,
      [rows, cols](int pe, int r) {
        const int row = pe / cols;
        const int col = pe % cols;
        if (r < cols - 1) {
          return row * cols + (col + 1) % cols;  // ring within the row
        }
        return ((row + 1) % rows) * cols + col;  // ring within the column
      },
      [block_bytes](int) { return block_bytes; }, [](ExecContext&, int) {});

  for (int pe = 0; pe < pes; ++pe) {
    TaskMsg msg;
    msg.entry = e_compute;
    msg.fn = [&, pe](ExecContext& ctx) {
      ctx.charge(total_work / pes * block_factor[static_cast<std::size_t>(pe)]);
      if (rounds > 0) collective.start(ctx, pe);
    };
    sim.inject(pe, std::move(msg));
  }
  sim.run();
  return sim.time();
}

}  // namespace scalemd
