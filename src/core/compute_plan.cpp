#include "core/compute_plan.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>

namespace scalemd {

namespace {

/// Estimated fraction of tested pairs that land inside the cutoff, by
/// geometric relation of the two patches. Rough constants are fine: they
/// only guide split counts; the load balancer handles residual variance.
constexpr double kInFracSelf = 0.45;
constexpr double kInFracFace = 0.15;

/// Splits the triangular self-interaction loop over [0, n) into `pieces`
/// outer-atom ranges with approximately equal pair counts, returned as
/// fraction boundaries.
std::vector<double> triangular_cuts(int n, int pieces) {
  std::vector<double> cuts{0.0};
  const double total = 0.5 * n * (n - 1);
  double acc = 0.0;
  int piece = 1;
  for (int i = 0; i < n && piece < pieces; ++i) {
    acc += n - 1 - i;
    if (acc >= total * piece / pieces) {
      cuts.push_back(static_cast<double>(i + 1) / n);
      ++piece;
    }
  }
  cuts.push_back(1.0);
  return cuts;
}

}  // namespace

ComputePlan::ComputePlan(const Decomposition& decomp, const Molecule& mol,
                         const MachineModel& machine, const ComputePlanOptions& opts,
                         const MeasuredCosts* measured)
    : opts_(opts) {
  build_nonbonded(decomp, machine, measured);
  build_bonded(decomp, mol);
}

void ComputePlan::add(ComputeDesc desc) {
  migratable_index_.push_back(desc.migratable ? migratable_count_++ : -1);
  computes_.push_back(std::move(desc));
}

void ComputePlan::build_nonbonded(const Decomposition& d, const MachineModel& m,
                                  const MeasuredCosts* measured) {
  const auto& atoms = d.patch_atoms();
  const CellGrid& grid = d.grid();

  // Self computes, split by atom count (the "several compute objects to
  // calculate the within-cube non-bonded atom pairs").
  for (int p = 0; p < grid.cell_count(); ++p) {
    const int n = static_cast<int>(atoms[static_cast<std::size_t>(p)].size());
    if (n == 0) continue;
    const double est_cost =
        measured != nullptr
            ? measured->self[static_cast<std::size_t>(p)]
            : 0.5 * n * (n - 1) * (m.pair_test_cost + kInFracSelf * m.pair_cost);
    int pieces = 1;
    if (opts_.split_self && opts_.target_grain > 0.0) {
      pieces = std::clamp(static_cast<int>(std::ceil(est_cost / opts_.target_grain)),
                          1, std::max(1, n / 8));
    }
    const std::vector<double> cuts = triangular_cuts(n, pieces);
    for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
      ComputeDesc desc;
      desc.kind = ComputeKind::kSelf;
      desc.patches = {p};
      desc.base_patch = p;
      desc.frac_begin = cuts[i];
      desc.frac_end = cuts[i + 1];
      desc.migratable = true;
      add(std::move(desc));
    }
  }

  // Pair computes: one per unordered neighbor pair; face-adjacent pairs may
  // be split into outer-atom stripes of the first patch.
  for (const auto& [a, b] : grid.neighbor_pairs()) {
    const int na = static_cast<int>(atoms[static_cast<std::size_t>(a)].size());
    const int nb = static_cast<int>(atoms[static_cast<std::size_t>(b)].size());
    if (na == 0 || nb == 0) continue;

    // Downstream base: per-axis minimum of the two patch coordinates.
    const Int3 ca = grid.coords(a);
    const Int3 cb = grid.coords(b);
    const int base = grid.index(
        {std::min(ca.x, cb.x), std::min(ca.y, cb.y), std::min(ca.z, cb.z)});

    int pieces = 1;
    if (opts_.split_face_pairs && opts_.target_grain > 0.0) {
      // With measured costs, split any oversized pair compute (when the
      // patch edge is close to the cutoff, edge-adjacent pairs can be as
      // heavy as face-adjacent ones); the estimate fallback splits only
      // face pairs, as the paper describes. Outer-range stripes of a pair
      // compute carry uneven pair counts, so aim below the target.
      double est_cost = 0.0;
      if (measured != nullptr) {
        const auto it = measured->pair.find({a, b});
        est_cost = it != measured->pair.end() ? it->second : 0.0;
      } else if (grid.share_face(a, b)) {
        est_cost = static_cast<double>(na) * nb *
                   (m.pair_test_cost + kInFracFace * m.pair_cost);
      }
      pieces = std::clamp(
          static_cast<int>(std::ceil(est_cost / (0.6 * opts_.target_grain))), 1,
          std::max(1, na / 8));
    }
    for (int i = 0; i < pieces; ++i) {
      ComputeDesc desc;
      desc.kind = ComputeKind::kPair;
      desc.patches = {a, b};
      desc.base_patch = base;
      desc.frac_begin = static_cast<double>(i) / pieces;
      desc.frac_end = static_cast<double>(i + 1) / pieces;
      desc.migratable = true;
      add(std::move(desc));
    }
  }
}

void ComputePlan::build_bonded(const Decomposition& d, const Molecule& mol) {
  const CellGrid& grid = d.grid();
  const auto& atom_patch = d.atom_patch();

  // Terms per (base patch, kind), separated intra/inter; patch-dependency
  // sets accumulated alongside.
  struct Bucket {
    std::vector<int> terms;
    std::vector<int> deps;
  };
  std::map<std::pair<int, int>, Bucket> intra;  // (patch, kind) -> terms
  std::map<std::pair<int, int>, Bucket> inter;

  auto classify = [&](int kind, int term_index, std::initializer_list<int> term_atoms) {
    int base_x = 1 << 30, base_y = 1 << 30, base_z = 1 << 30;
    bool same = true;
    int first = -1;
    for (int a : term_atoms) {
      const int p = atom_patch[static_cast<std::size_t>(a)];
      if (first < 0) first = p;
      same = same && p == first;
      const Int3 c = grid.coords(p);
      base_x = std::min(base_x, c.x);
      base_y = std::min(base_y, c.y);
      base_z = std::min(base_z, c.z);
    }
    if (same && opts_.migratable_intra_bonded) {
      Bucket& bucket = intra[{first, kind}];
      bucket.terms.push_back(term_index);
      bucket.deps = {first};
      return;
    }
    const int base = grid.index({base_x, base_y, base_z});
    Bucket& bucket = inter[{base, kind}];
    bucket.terms.push_back(term_index);
    for (int a : term_atoms) {
      const int p = atom_patch[static_cast<std::size_t>(a)];
      if (std::find(bucket.deps.begin(), bucket.deps.end(), p) == bucket.deps.end()) {
        bucket.deps.push_back(p);
      }
    }
  };

  for (std::size_t i = 0; i < mol.bonds().size(); ++i) {
    const Bond& t = mol.bonds()[i];
    classify(0, static_cast<int>(i), {t.a, t.b});
  }
  for (std::size_t i = 0; i < mol.angles().size(); ++i) {
    const Angle& t = mol.angles()[i];
    classify(1, static_cast<int>(i), {t.a, t.b, t.c});
  }
  for (std::size_t i = 0; i < mol.dihedrals().size(); ++i) {
    const Dihedral& t = mol.dihedrals()[i];
    classify(2, static_cast<int>(i), {t.a, t.b, t.c, t.d});
  }
  for (std::size_t i = 0; i < mol.impropers().size(); ++i) {
    const Improper& t = mol.impropers()[i];
    classify(3, static_cast<int>(i), {t.a, t.b, t.c, t.d});
  }

  constexpr std::array<ComputeKind, 4> kKinds{ComputeKind::kBonds, ComputeKind::kAngles,
                                              ComputeKind::kDihedrals,
                                              ComputeKind::kImpropers};
  for (auto& [key, bucket] : intra) {
    ComputeDesc desc;
    desc.kind = kKinds[static_cast<std::size_t>(key.second)];
    desc.patches = bucket.deps;
    desc.base_patch = key.first;
    desc.terms = std::move(bucket.terms);
    desc.migratable = true;  // communicates exactly like a self compute
    add(std::move(desc));
  }
  for (auto& [key, bucket] : inter) {
    ComputeDesc desc;
    desc.kind = kKinds[static_cast<std::size_t>(key.second)];
    std::sort(bucket.deps.begin(), bucket.deps.end());
    desc.patches = std::move(bucket.deps);
    desc.base_patch = key.first;
    desc.terms = std::move(bucket.terms);
    desc.migratable = false;
    add(std::move(desc));
  }
}

}  // namespace scalemd
