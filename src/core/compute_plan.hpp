#pragma once

#include <map>
#include <vector>

#include "core/decomposition.hpp"
#include "des/machine.hpp"

namespace scalemd {

/// Kind of a compute object (the paper's "several varieties of compute
/// objects, responsible for computing the different types of forces").
enum class ComputeKind : std::uint8_t {
  kSelf,       ///< non-bonded pairs within one patch (possibly a split piece)
  kPair,       ///< non-bonded pairs between two neighboring patches
  kBonds,      ///< 2-body bonded terms
  kAngles,     ///< 3-body terms
  kDihedrals,  ///< 4-body torsions
  kImpropers,  ///< 4-body impropers
};

/// True for the non-bonded kinds.
constexpr bool is_nonbonded(ComputeKind k) {
  return k == ComputeKind::kSelf || k == ComputeKind::kPair;
}

/// Static description of one compute object.
struct ComputeDesc {
  ComputeKind kind = ComputeKind::kSelf;
  /// Patches whose coordinates this object needs (and to which it
  /// contributes forces). Size 1 for self/intra-bonded, 2 for pair, up to 8
  /// for inter-patch bonded objects.
  std::vector<int> patches;
  /// Placement anchor: the per-axis-minimum ("downstream base") patch. The
  /// initial static placement puts the object on this patch's home PE,
  /// which bounds every patch's proxy count by 7 (paper section 3.2).
  int base_patch = 0;
  /// Grain-size-control split range, as fractions of the outer-loop atoms
  /// of patches[0] (fractions survive atom migration). [0,1) means unsplit.
  double frac_begin = 0.0;
  double frac_end = 1.0;
  /// Bonded kinds: indices into the corresponding Molecule term array.
  std::vector<int> terms;
  /// Whether the load balancer may move this object. Non-bonded objects and
  /// (optionally, section 4.2.2) intra-patch bonded objects are migratable;
  /// inter-patch bonded objects are not.
  bool migratable = true;
};

/// Grain-size and decomposition controls (the paper's optimizations as
/// switches so the ablation benches can stage them).
struct ComputePlanOptions {
  /// Split within-patch self computes by outer-atom ranges (first grainsize
  /// fix in section 4.2.1).
  bool split_self = true;
  /// Split face-adjacent pair computes (the Figure 1 -> Figure 2 fix).
  bool split_face_pairs = true;
  /// Make intra-patch bonded work separate, migratable objects
  /// (section 4.2.2). When false, bonded work stays fused with the
  /// non-migratable inter objects.
  bool migratable_intra_bonded = true;
  /// Target grain in virtual seconds. The paper recommends ~5 ms average;
  /// NAMD's post-split distribution (Figure 2) tops out near 15-20 ms, which
  /// an 8 ms target reproduces.
  double target_grain = 12e-3;
};

/// Measured costs of the *unsplit* non-bonded objects, used to drive
/// grain-size splitting with real numbers instead of geometric estimates
/// (essential when the patch edge barely exceeds the cutoff and nearly all
/// tested pairs fall inside it, as in the bR benchmark).
struct MeasuredCosts {
  std::vector<double> self;                     ///< per patch, seconds
  std::map<std::pair<int, int>, double> pair;   ///< per neighbor pair, seconds
};

/// Builds the hybrid force/spatial decomposition: one or more self computes
/// per patch, pair computes for all 26-neighbor relations (each pair once),
/// and bonded computes with the paper's upstream-ownership rule. Splitting
/// follows ComputePlanOptions; split counts use `measured` costs when given
/// (the two-pass path Workload uses), falling back to geometric estimates.
class ComputePlan {
 public:
  ComputePlan(const Decomposition& decomp, const Molecule& mol,
              const MachineModel& machine, const ComputePlanOptions& opts,
              const MeasuredCosts* measured = nullptr);

  const std::vector<ComputeDesc>& computes() const { return computes_; }
  const ComputePlanOptions& options() const { return opts_; }

  /// Number of migratable objects (they get load-database slots).
  int migratable_count() const { return migratable_count_; }

  /// Index of each compute in the migratable numbering, or -1.
  const std::vector<int>& migratable_index() const { return migratable_index_; }

 private:
  void add(ComputeDesc desc);
  void build_nonbonded(const Decomposition& d, const MachineModel& m,
                       const MeasuredCosts* measured);
  void build_bonded(const Decomposition& d, const Molecule& mol);

  ComputePlanOptions opts_;
  std::vector<ComputeDesc> computes_;
  std::vector<int> migratable_index_;
  int migratable_count_ = 0;
};

}  // namespace scalemd
