#pragma once

#include <string>
#include <vector>

#include "core/parallel_sim.hpp"

namespace scalemd {

/// One row of a paper-style scaling table.
struct ScalingRow {
  int pes = 1;
  double seconds_per_step = 0.0;
  double speedup = 0.0;
  double gflops = 0.0;
};

/// Configuration of one scaling study (one table of the paper).
struct BenchmarkConfig {
  MachineModel machine = MachineModel::asci_red();
  std::vector<int> pe_counts;
  int measure_steps = 3;  ///< steps per measurement cycle before each LB
  int timed_steps = 5;    ///< steps in the timed cycle
  LbPolicy lb;
  bool optimized_multicast = true;
  /// Speedup normalization: the first row's speedup is defined to equal this
  /// (1 normally; 2 for BC1 which cannot run on one node; 4 for the T3E).
  double speedup_base = 1.0;
};

/// Estimated hardware floating-point operations per simulated step, using
/// 1999-kernel operation counts (see EXPERIMENTS.md): the source of the
/// GFLOPS column, mirroring the paper's "instruction counters of the
/// Origin 2000" methodology.
double estimate_flops_per_step(const WorkCounters& total);

/// Runs the full benchmark protocol (measure, LB, measure, refine, timed
/// cycle) at every processor count in the config. The workload's kernels run
/// once (in its constructor); the sweep itself is pure DES.
std::vector<ScalingRow> run_scaling(const Workload& workload,
                                    const BenchmarkConfig& config);

/// Renders rows in the paper's table format.
std::string render_scaling(const std::vector<ScalingRow>& rows, bool gflops_column);

/// Convenience: the standard processor ladder used by the ASCI-Red tables,
/// clipped to [min_pes, max_pes].
std::vector<int> asci_ladder(int min_pes, int max_pes);

/// Reads a positive scale factor from the environment variable
/// SCALEMD_BENCH_SCALE (default 1.0). The bench binaries use it to shrink
/// the benchmark systems for quick smoke runs.
double bench_scale_from_env();

}  // namespace scalemd
