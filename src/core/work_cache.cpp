#include "core/work_cache.hpp"

#include <cmath>

#include "ff/bonded.hpp"

namespace scalemd {

WorkCache::WorkCache(const Molecule& mol, const Decomposition& decomp,
                     const ComputePlan& plan, const NonbondedOptions& nb) {
  const ExclusionTable excl = ExclusionTable::build(mol);
  std::vector<double> charges;
  std::vector<int> types;
  charges.reserve(static_cast<std::size_t>(mol.atom_count()));
  for (const Atom& a : mol.atoms()) {
    charges.push_back(a.charge);
    types.push_back(a.lj_type);
  }
  const NonbondedContext ctx(mol.params, excl, charges, types, nb);

  // Patch-local gathered coordinates; throwaway force buffers.
  const auto& patch_atoms = decomp.patch_atoms();
  std::vector<std::vector<Vec3>> ppos(patch_atoms.size());
  std::vector<std::vector<Vec3>> pfrc(patch_atoms.size());
  for (std::size_t p = 0; p < patch_atoms.size(); ++p) {
    ppos[p].reserve(patch_atoms[p].size());
    for (int a : patch_atoms[p]) {
      ppos[p].push_back(mol.positions()[static_cast<std::size_t>(a)]);
    }
    pfrc[p].assign(patch_atoms[p].size(), Vec3{});
  }
  std::vector<Vec3> gfrc(static_cast<std::size_t>(mol.atom_count()));

  work_.reserve(plan.computes().size());
  for (const ComputeDesc& c : plan.computes()) {
    WorkCounters w;
    switch (c.kind) {
      case ComputeKind::kSelf: {
        const auto p = static_cast<std::size_t>(c.patches[0]);
        const std::size_t n = patch_atoms[p].size();
        const auto b = static_cast<std::size_t>(std::lround(c.frac_begin * n));
        const auto e = static_cast<std::size_t>(std::lround(c.frac_end * n));
        energy_ +=
            nonbonded_self_range(ctx, patch_atoms[p], ppos[p], pfrc[p], b, e, w);
        break;
      }
      case ComputeKind::kPair: {
        const auto pa = static_cast<std::size_t>(c.patches[0]);
        const auto pb = static_cast<std::size_t>(c.patches[1]);
        const std::size_t n = patch_atoms[pa].size();
        const auto b = static_cast<std::size_t>(std::lround(c.frac_begin * n));
        const auto e = static_cast<std::size_t>(std::lround(c.frac_end * n));
        energy_ += nonbonded_ab_range(ctx, patch_atoms[pa], ppos[pa], pfrc[pa],
                                      patch_atoms[pb], ppos[pb], pfrc[pb], b, e, w);
        break;
      }
      case ComputeKind::kBonds:
        for (int t : c.terms) {
          const Bond& term = mol.bonds()[static_cast<std::size_t>(t)];
          energy_.bond += bond_energy_force(
              mol.positions()[static_cast<std::size_t>(term.a)],
              mol.positions()[static_cast<std::size_t>(term.b)],
              mol.params.bond(term.param), gfrc[static_cast<std::size_t>(term.a)],
              gfrc[static_cast<std::size_t>(term.b)]);
        }
        w.bonded_terms += c.terms.size();
        break;
      case ComputeKind::kAngles:
        for (int t : c.terms) {
          const Angle& term = mol.angles()[static_cast<std::size_t>(t)];
          energy_.angle += angle_energy_force(
              mol.positions()[static_cast<std::size_t>(term.a)],
              mol.positions()[static_cast<std::size_t>(term.b)],
              mol.positions()[static_cast<std::size_t>(term.c)],
              mol.params.angle(term.param), gfrc[static_cast<std::size_t>(term.a)],
              gfrc[static_cast<std::size_t>(term.b)],
              gfrc[static_cast<std::size_t>(term.c)]);
        }
        w.bonded_terms += c.terms.size();
        break;
      case ComputeKind::kDihedrals:
        for (int t : c.terms) {
          const Dihedral& term = mol.dihedrals()[static_cast<std::size_t>(t)];
          energy_.dihedral += dihedral_energy_force(
              mol.positions()[static_cast<std::size_t>(term.a)],
              mol.positions()[static_cast<std::size_t>(term.b)],
              mol.positions()[static_cast<std::size_t>(term.c)],
              mol.positions()[static_cast<std::size_t>(term.d)],
              mol.params.dihedral(term.param), gfrc[static_cast<std::size_t>(term.a)],
              gfrc[static_cast<std::size_t>(term.b)],
              gfrc[static_cast<std::size_t>(term.c)],
              gfrc[static_cast<std::size_t>(term.d)]);
        }
        w.bonded_terms += c.terms.size();
        break;
      case ComputeKind::kImpropers:
        for (int t : c.terms) {
          const Improper& term = mol.impropers()[static_cast<std::size_t>(t)];
          energy_.improper += improper_energy_force(
              mol.positions()[static_cast<std::size_t>(term.a)],
              mol.positions()[static_cast<std::size_t>(term.b)],
              mol.positions()[static_cast<std::size_t>(term.c)],
              mol.positions()[static_cast<std::size_t>(term.d)],
              mol.params.improper(term.param), gfrc[static_cast<std::size_t>(term.a)],
              gfrc[static_cast<std::size_t>(term.b)],
              gfrc[static_cast<std::size_t>(term.c)],
              gfrc[static_cast<std::size_t>(term.d)]);
        }
        w.bonded_terms += c.terms.size();
        break;
    }
    total_ += w;
    work_.push_back(w);
  }
  total_.atoms_integrated += static_cast<std::uint64_t>(mol.atom_count());
}

WorkCounters WorkCache::total() const { return total_; }

double work_cost(const WorkCounters& w, const MachineModel& m) {
  return static_cast<double>(w.pairs_computed) * m.pair_cost +
         static_cast<double>(w.pairs_tested - w.pairs_computed) * m.pair_test_cost +
         static_cast<double>(w.bonded_terms) * m.bonded_cost +
         static_cast<double>(w.atoms_integrated) * m.integrate_cost;
}

}  // namespace scalemd
