#pragma once

#include <vector>

#include "core/compute_plan.hpp"
#include "core/decomposition.hpp"
#include "ff/nonbonded.hpp"
#include "topo/exclusions.hpp"

namespace scalemd {

/// Real per-compute-object work counters, obtained by running every compute
/// object's kernel once at the molecule's initial coordinates (one
/// sequential-step-equivalent of real force math). The DES charges task
/// costs from these counts — the "principle of persistence" made literal:
/// object loads measured once persist across the simulated steps. Shared by
/// every ParallelSim over the same workload, so a 12-point processor sweep
/// pays for the kernels only once.
class WorkCache {
 public:
  WorkCache(const Molecule& mol, const Decomposition& decomp,
            const ComputePlan& plan, const NonbondedOptions& nb);

  const WorkCounters& per_compute(std::size_t i) const { return work_[i]; }
  const std::vector<WorkCounters>& all() const { return work_; }

  /// Sum over all computes plus one integration pass.
  WorkCounters total() const;

  /// Total potential energy at the initial coordinates (a free by-product,
  /// used by tests to cross-check against the sequential engine).
  const EnergyTerms& energy() const { return energy_; }

 private:
  std::vector<WorkCounters> work_;
  WorkCounters total_;
  EnergyTerms energy_;
};

/// Virtual-seconds cost of a task that performed `w` under machine `m`.
double work_cost(const WorkCounters& w, const MachineModel& m);

}  // namespace scalemd
