#pragma once

#include <vector>

#include "seq/cell_list.hpp"
#include "topo/molecule.hpp"

namespace scalemd {

/// The paper's spatial decomposition: the box is divided into cubes
/// ("patches") whose edges are slightly larger than the cutoff radius, so
/// atoms interact only with the 26 neighboring cubes. For the benchmark
/// presets the patch edge comes from Molecule::suggested_patch_size,
/// reproducing the published grids (7x7x5 = 245 for ApoA-I, etc.).
class Decomposition {
 public:
  /// `min_patch` of 0 uses max(molecule.suggested_patch_size, cutoff).
  Decomposition(const Molecule& mol, double cutoff, double min_patch = 0.0);

  const CellGrid& grid() const { return grid_; }
  int patch_count() const { return grid_.cell_count(); }

  /// Initial atom-to-patch assignment (by position).
  const std::vector<std::vector<int>>& patch_atoms() const { return patch_atoms_; }

  /// Patch of each atom under the initial assignment.
  const std::vector<int>& atom_patch() const { return atom_patch_; }

  /// Atom counts, used as RCB weights.
  std::vector<double> patch_weights() const;

  /// Geometric centers, used as RCB coordinates.
  std::vector<Vec3> patch_centers() const;

 private:
  CellGrid grid_;
  std::vector<std::vector<int>> patch_atoms_;
  std::vector<int> atom_patch_;
};

}  // namespace scalemd
