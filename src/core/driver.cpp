#include "core/driver.hpp"

#include <cstdlib>

#include "util/table.hpp"

namespace scalemd {

double estimate_flops_per_step(const WorkCounters& total) {
  // Per-operation FLOP estimates for a 1999-era cutoff MD kernel: ~75 FLOPs
  // per pair inside the cutoff (distance, switching, LJ, shifted
  // electrostatics, accumulation), ~1 per rejected distance test (NAMD's
  // pairlists amortize most tests), ~500 per bonded term, ~50 per atom per
  // integration. With the apoa1_like counts this reproduces the paper's
  // conservative GFLOPS scale (0.046 vs the paper's 0.048 on one ASCI-Red
  // PE; 0.107 vs 0.112 on one Origin 2000 PE).
  return 75.0 * static_cast<double>(total.pairs_computed) +
         1.0 * static_cast<double>(total.pairs_tested - total.pairs_computed) +
         500.0 * static_cast<double>(total.bonded_terms) +
         50.0 * static_cast<double>(total.atoms_integrated);
}

std::vector<ScalingRow> run_scaling(const Workload& workload,
                                    const BenchmarkConfig& config) {
  std::vector<ScalingRow> rows;
  const double flops = estimate_flops_per_step(workload.work.total());
  double base_time = 0.0;
  for (int pes : config.pe_counts) {
    ParallelOptions opts;
    opts.num_pes = pes;
    opts.machine = config.machine;
    opts.lb = config.lb;
    opts.optimized_multicast = config.optimized_multicast;
    ParallelSim sim(workload, opts);
    const double t = sim.run_benchmark(config.measure_steps, config.timed_steps);
    if (rows.empty()) base_time = t;
    ScalingRow row;
    row.pes = pes;
    row.seconds_per_step = t;
    row.speedup = config.speedup_base * base_time / t;
    row.gflops = flops / t * 1e-9;
    rows.push_back(row);
  }
  return rows;
}

std::string render_scaling(const std::vector<ScalingRow>& rows, bool gflops_column) {
  std::vector<std::string> header{"Processors", "Time (s/step)", "Speedup"};
  if (gflops_column) header.push_back("GFLOPS");
  Table t(std::move(header));
  for (const ScalingRow& r : rows) {
    std::vector<std::string> row{std::to_string(r.pes),
                                 fmt_sig(r.seconds_per_step, 3),
                                 fmt_sig(r.speedup, r.speedup < 10 ? 2 : 3)};
    if (gflops_column) row.push_back(fmt_sig(r.gflops, 3));
    t.add_row(std::move(row));
  }
  return t.render();
}

std::vector<int> asci_ladder(int min_pes, int max_pes) {
  const int ladder[] = {1, 2, 4, 8, 32, 64, 128, 256, 512, 768, 1024, 1536, 2048};
  std::vector<int> out;
  for (int p : ladder) {
    if (p >= min_pes && p <= max_pes) out.push_back(p);
  }
  return out;
}

double bench_scale_from_env() {
  const char* s = std::getenv("SCALEMD_BENCH_SCALE");
  if (s == nullptr) return 1.0;
  const double v = std::atof(s);
  return v > 0.0 ? v : 1.0;
}

}  // namespace scalemd
