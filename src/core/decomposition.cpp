#include "core/decomposition.hpp"

#include <algorithm>

namespace scalemd {

namespace {

double patch_edge(const Molecule& mol, double cutoff, double min_patch) {
  if (min_patch > 0.0) return std::max(min_patch, cutoff);
  return std::max(mol.suggested_patch_size, cutoff);
}

}  // namespace

Decomposition::Decomposition(const Molecule& mol, double cutoff, double min_patch)
    : grid_(mol.box, patch_edge(mol, cutoff, min_patch)) {
  patch_atoms_.resize(static_cast<std::size_t>(grid_.cell_count()));
  atom_patch_.resize(static_cast<std::size_t>(mol.atom_count()));
  const auto& pos = mol.positions();
  for (int a = 0; a < mol.atom_count(); ++a) {
    const int p = grid_.cell_of(pos[static_cast<std::size_t>(a)]);
    patch_atoms_[static_cast<std::size_t>(p)].push_back(a);
    atom_patch_[static_cast<std::size_t>(a)] = p;
  }
}

std::vector<double> Decomposition::patch_weights() const {
  std::vector<double> w;
  w.reserve(patch_atoms_.size());
  for (const auto& atoms : patch_atoms_) w.push_back(static_cast<double>(atoms.size()));
  return w;
}

std::vector<Vec3> Decomposition::patch_centers() const {
  std::vector<Vec3> c;
  c.reserve(patch_atoms_.size());
  for (int p = 0; p < grid_.cell_count(); ++p) c.push_back(grid_.cell_center(p));
  return c;
}

}  // namespace scalemd
