#pragma once

#include <cassert>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "core/compute_plan.hpp"
#include "core/decomposition.hpp"
#include "core/work_cache.hpp"
#include "des/fault.hpp"
#include "des/simulator.hpp"
#include "ewald/pme_slab.hpp"
#include "ff/nonbonded.hpp"
#include "ff/nonbonded_tiled.hpp"
#include "lb/database.hpp"
#include "rts/process_backend.hpp"
#include "rts/reduction.hpp"
#include "rts/reliable.hpp"
#include "topo/exclusions.hpp"
#include "util/random.hpp"

namespace scalemd {

/// Which strategy drives object remapping (ablation-friendly).
enum class LbStrategyKind {
  kNone,          ///< keep the static initial placement
  kRandom,        ///< random placement (floor baseline)
  kGreedyNoComm,  ///< greedy by load only, communication-blind
  kGreedy,        ///< the paper's proxy-aware greedy
  kGreedyRefine,  ///< greedy followed by refinement (the paper's default)
  kDiffusion,     ///< distributed neighbor-diffusion strategy
};

struct LbPolicy {
  LbStrategyKind kind = LbStrategyKind::kGreedyRefine;
  double greedy_overload = 1.10;
  double refine_overload = 1.03;
};

/// A workload bundles everything about the molecular system that is
/// independent of the processor count: decomposition, compute plan and the
/// measured per-object work. Build once, sweep ParallelSim over P.
struct Workload {
  Workload(const Molecule& molecule, const MachineModel& machine,
           const NonbondedOptions& nonbonded = {},
           const ComputePlanOptions& plan_opts = {});

  const Molecule* mol;
  NonbondedOptions nonbonded;
  Decomposition decomp;
  /// Unsplit per-object costs from a probe kernel pass; drives splitting.
  MeasuredCosts measured;
  ComputePlan plan;
  WorkCache work;
};

/// Placement knobs for the parallel PME slab objects. Active only when the
/// workload's NonbondedOptions::full_elec is enabled; the grid geometry and
/// spline order come from there so the parallel path can never drift from
/// the sequential reference physics.
struct ParallelPmeOptions {
  /// Number of PME slab objects. The slab count partitions the gather, the
  /// reciprocal-energy sum and the exclusion-correction work, so it is part
  /// of the numerics contract: hold it fixed while sweeping PE counts, LB
  /// strategies and backends and trajectories stay bitwise identical.
  int slabs = 4;
  /// 0 (default): slabs start round-robin across all PEs and migrate under
  /// load balancing like any other object. > 0: slabs are pinned round-robin
  /// onto the last `dedicated_ranks` PEs and excluded from LB — the
  /// dedicated-PME-ranks ablation (see EXPERIMENTS.md).
  int dedicated_ranks = 0;
};

struct ParallelOptions {
  int num_pes = 1;
  MachineModel machine = MachineModel::asci_red();
  /// Which machine runs the message-driven runtime: the discrete-event
  /// model (kSimulated, the default) or real worker threads (kThreaded).
  /// The threaded backend requires numeric mode and excludes the DES-only
  /// layers (faults, reliable delivery, checkpointing).
  BackendKind backend = BackendKind::kSimulated;
  /// Worker threads for the threaded backend (0 = one per hardware thread,
  /// clamped to num_pes). Ignored by the simulated backend.
  int threads = 0;
  /// Process-backend knobs (worker count, heartbeat, chaos kill). Ignored
  /// by the other backends. The process backend requires numeric mode like
  /// the threaded one, but DOES support checkpoint_every: checkpoints are
  /// serialized to checkpoint_path through the wire layer, and a worker
  /// killed mid-cycle triggers a real restore-and-replay.
  ProcessOptions process;
  /// On-disk checkpoint file for the process backend.
  std::string checkpoint_path = "scalemd_checkpoint.bin";
  /// Optional precomputed initial patch placement (one home PE per patch).
  /// When set (and sized to the workload's patch count), the constructor
  /// adopts it instead of re-running RCB — the serve layer's topology cache
  /// shares one RCB result across identical-topology jobs. The vector must
  /// be what rcb_patch_map would produce for this workload and PE count;
  /// anything else still runs (placement never changes trajectories) but
  /// forfeits the paper's locality-seeded starting point.
  std::shared_ptr<const std::vector<int>> initial_patch_home;
  LbPolicy lb;
  /// Parallel PME slab placement (used when the workload enables full_elec).
  ParallelPmeOptions pme;
  /// Use the single-packing multicast of section 4.2.3.
  bool optimized_multicast = true;
  /// Execute real force math and integration (tests / short runs). When
  /// false, task costs come from the WorkCache and no numerics run.
  bool numeric = false;
  double dt_fs = 1.0;
  /// Message sizing.
  int bytes_per_atom_coord = 24;
  int bytes_per_atom_force = 24;
  int msg_header_bytes = 32;

  // --- resilience ------------------------------------------------------
  /// Chaos schedule for the simulated machine (empty = fault-free).
  FaultPlan fault;
  /// Route runtime messages through the reliable-delivery layer
  /// (dedup + ack/timeout retry). Pass-through when the plan is empty.
  bool reliable = false;
  ReliableOptions reliable_opts;
  /// Coordinated in-memory checkpoint every N run_cycle calls (0 = off).
  /// With a valid checkpoint, a cycle stalled by a PE failure triggers
  /// restore + evacuation + replay instead of a hung run.
  int checkpoint_every = 0;

  // --- defect injection (fuzzer self-test only) ------------------------
  /// HIDDEN: fold each patch's force contributions in message-ARRIVAL order
  /// instead of canonical compute-id order (simulated backend only, where
  /// arrival order is deterministic). This re-introduces — on purpose — the
  /// exact ordering bug the canonical fold exists to prevent: trajectories
  /// then depend on the message schedule, so the cross-backend and
  /// chaos-equality oracles must flag it. `scalemd-fuzz --self-test` flips
  /// this flag to prove the fuzzing harness still catches and shrinks it.
  /// Never set it anywhere else.
  bool debug_fold_arrival_order = false;
};

/// The parallel NAMD reproduction: home patches, proxy patches and compute
/// objects wired into the discrete-event machine, with measurement-based
/// load balancing. One instance = one machine configuration (P processors of
/// one MachineModel) running one workload.
class ParallelSim {
 public:
  ParallelSim(const Workload& workload, const ParallelOptions& opts);
  ~ParallelSim();

  /// Runs the paper's benchmark protocol: a measurement cycle under the
  /// static initial placement, the full LB (strategy per options), a second
  /// measurement cycle, a refine-only LB, then a timed cycle. Returns
  /// steady-state seconds per step of the timed cycle.
  double run_benchmark(int measure_steps = 3, int timed_steps = 5);

  /// Runs one pipelined cycle of `steps` timesteps and quiesces. In numeric
  /// mode, atoms that left their patch cube migrate afterwards.
  void run_cycle(int steps);

  /// Applies the configured strategy (greedy and/or refine) using loads
  /// measured since the last call; models object-migration messages.
  void load_balance(bool refine_only = false);

  // --- results & instrumentation -------------------------------------
  /// The execution machine, whichever kind is active.
  ExecBackend& backend() { return *exec_; }
  const ExecBackend& backend() const { return *exec_; }

  /// The DES machine. Only valid with the simulated backend (asserts);
  /// backend-agnostic callers should use backend() instead.
  Simulator& sim() {
    assert(des_ != nullptr && "sim() requires the simulated backend");
    return *des_;
  }
  const Simulator& sim() const {
    assert(des_ != nullptr && "sim() requires the simulated backend");
    return *des_;
  }

  /// Completion time of each global step so far, in the backend's clock
  /// (virtual seconds simulated, wall-clock seconds threaded).
  const std::vector<double>& step_completion() const { return step_completion_; }

  /// step_completion()[s], or 0.0 when `s` is out of range — never UB.
  double step_completion_at(int s) const;

  /// Steady-state s/step over the last `steps` completed steps
  /// (difference of completion times, excluding the cycle's bootstrap step).
  /// Out-of-range requests clamp: fewer than two recorded steps give 0.0,
  /// and `steps` is clamped to the recorded span.
  double seconds_per_step_tail(int steps) const;

  /// Attaches an additional trace sink (event log, summary, ...). Detach
  /// any sink whose lifetime ends before this ParallelSim's.
  void attach_sink(TraceSink* sink);
  void detach_sink(const TraceSink* sink);

  /// Called at the end of every run_cycle(), after the machine has quiesced
  /// and (in numeric mode) atoms have migrated, with the completed cycle's
  /// step count. The validation subsystem (check::InvariantChecker) attaches
  /// through this hook; replaces any previous observer.
  using CycleObserver = std::function<void(const ParallelSim&, int steps)>;
  void set_cycle_observer(CycleObserver obs) { cycle_observer_ = std::move(obs); }

  /// Ideal per-step times by category from the work cache (for audits and
  /// speedup denominators).
  double ideal_nonbonded_seconds() const;
  double ideal_bonded_seconds() const;
  double ideal_integration_seconds() const;

  // --- state access for tests ----------------------------------------
  const std::vector<int>& patch_home() const { return patch_home_; }
  const std::vector<int>& compute_pe() const { return compute_pe_; }
  int proxy_count() const;
  /// Max remote PEs any single patch's coordinates are multicast to.
  int max_proxies_per_patch() const;

  /// Numeric mode: state gathered by global atom id.
  std::vector<Vec3> gather_positions() const;
  std::vector<Vec3> gather_velocities() const;
  std::vector<Vec3> gather_forces() const;

  /// Numeric mode: potential energy accumulated by computes at step s
  /// (global step index). Folded in canonical compute-id order at cycle
  /// end, so the value is bitwise identical across backends, placements
  /// and thread counts. Out-of-range steps give zero terms.
  EnergyTerms potential_terms_at_step(int s) const;
  double potential_at_step(int s) const;
  /// Reduction results per round (numeric: sum over patches of local
  /// kinetic energy; frozen: patch count).
  const std::vector<double>& reduction_results() const { return reduction_totals_; }

  int total_steps() const { return global_steps_; }
  const LoadDatabase& load_database() const { return *db_; }
  const ParallelOptions& options() const { return opts_; }
  const Molecule& molecule() const { return *mol_; }
  int patch_count() const;

  // --- resilience ------------------------------------------------------
  /// True when every patch finished the last run_cycle's final step. A
  /// false value after run_cycle means work was lost to faults and not
  /// recovered (no checkpoint, or the restart cap was hit); the invariant
  /// checker uses this to tell "stalled by fault" from a runtime bug.
  bool last_cycle_complete() const;

  /// Serialized coordinated checkpoint of the current state — the same blob
  /// the process backend writes to disk (wire-encoded, raw IEEE bits).
  /// Requires a quiesced machine (between run_cycle calls). The serve layer
  /// preempts jobs with this: export, destroy the sim, later import into a
  /// fresh ParallelSim built from the same workload and options.
  std::vector<std::uint8_t> export_state() const;
  /// Adopts a blob produced by export_state() on a compatible ParallelSim
  /// (same workload, same patch/compute structure — validated strictly) and
  /// rebuilds the dataflow and reducer around the restored placement.
  /// Unlike a fault restore, this counts no restart and charges no lost
  /// time: resuming from an imported checkpoint continues the run exactly
  /// where the exporting sim stopped, bitwise.
  void import_state(const std::vector<std::uint8_t>& blob);

  int checkpoints_taken() const { return checkpoints_taken_; }
  int restarts() const { return restarts_; }
  /// Virtual seconds of lost work re-executed across all restarts (the
  /// restart latency the audit reports).
  double restart_latency() const { return restart_lost_time_; }
  /// Reliable-delivery layer, if enabled (nullptr otherwise).
  const ReliableComm* reliable() const { return reliable_.get(); }

  /// True when the workload runs full electrostatics and this sim therefore
  /// hosts parallel PME slab objects.
  bool pme_enabled() const { return pme_plan_ != nullptr; }
  /// Home PE of every PME slab object (empty when PME is off).
  const std::vector<int>& slab_pe() const { return slab_pe_; }

 private:
  struct PatchRt;
  struct ProxyRt;
  struct ComputeRt;
  struct PmeSlabRt;
  struct Checkpoint;

  void build_initial_placement();
  void rebuild_dataflow();
  void rebuild_reducer();
  void publish_coords(ExecContext& ctx, int patch);
  void on_recv_coords(ExecContext& ctx, int patch, int pe);
  void run_compute(ExecContext& ctx, int compute);
  void complete_patch_on_pe(ExecContext& ctx, int patch, int pe);
  /// `from_proxy` is the contributing proxy's index (only consumed by the
  /// injected arrival-order defect; -1 for contribution-less patches).
  void on_contribution(ExecContext& ctx, int patch, int from_proxy);
  void advance(ExecContext& ctx, int patch);
  void migrate_atoms();
  // --- parallel PME pipeline (see the "Parallel PME" section in the .cpp) --
  /// Initial slab placement: round-robin over all PEs, or pinned onto the
  /// last `pme.dedicated_ranks` PEs.
  void pme_place_slabs();
  /// Patch-side: one atoms message per slab, sent alongside the coordinate
  /// multicast every force round.
  void publish_pme_atoms(ExecContext& ctx, int patch);
  /// Slab phase 1 trigger: buffers the patch's positions (`wire_pos` when
  /// the message crossed a worker boundary, else read from the replica);
  /// when all patches deposited, spreads + 2D FFTs + sends forward blocks.
  void on_pme_atoms(ExecContext& ctx, int slab, int patch, int step,
                    const std::vector<double>* wire_pos);
  void pme_spread_and_transpose(ExecContext& ctx, int slab);
  /// Slab phase 2: collects forward transpose blocks; when all S arrived,
  /// z-FFT + influence convolution (energy partial) + inverse z-FFT, then
  /// sends backward blocks.
  void on_pme_fwd(ExecContext& ctx, int slab, int src,
                  const std::vector<double>& block);
  void pme_convolve_and_return(ExecContext& ctx, int slab);
  /// Slab phase 3: collects backward blocks; when all S arrived, inverse
  /// 2D FFT + force gather + this slab's exclusion-correction and
  /// self-energy shares, then one force message per patch.
  void on_pme_bwd(ExecContext& ctx, int slab, int src,
                  const std::vector<double>& block);
  void pme_gather_and_send(ExecContext& ctx, int slab);
  /// Patch-side: adopts one slab's force share; counts as a contribution.
  void on_pme_force(ExecContext& ctx, int patch, int slab,
                    std::vector<Vec3> frc);
  /// Modeled DES cost of one slab task phase (identical in numeric and
  /// frozen mode, so frozen-mode benchmarks price PME realistically).
  double pme_phase_cost(int slab, int phase) const;
  int proxy_index(int patch, int pe) const;
  /// Applies the machine's multiplicative task-time noise to a cost.
  double noisy(double cost);
  /// Routes through the reliable layer when enabled, else a raw send.
  void rsend(ExecContext& ctx, int dest, TaskMsg msg);
  /// One quiesced cycle attempt (the pre-resilience run_cycle body).
  void attempt_cycle(int steps);
  void take_checkpoint();
  void restore_checkpoint();
  /// Adopts a decoded checkpoint: state copy + reducer/dataflow rebuild
  /// (evacuating failed PEs when there are any). Shared by the fault
  /// restore path (which additionally books restart accounting) and
  /// import_state (which must not).
  void apply_checkpoint(const Checkpoint& c);
  /// True when a checkpoint exists to restore from (in memory for the DES
  /// backend, on disk for the process backend).
  bool have_checkpoint() const { return ckpt_ != nullptr || ckpt_on_disk_; }
  void snapshot_to(Checkpoint& c) const;
  void restore_from(const Checkpoint& c);
  std::vector<std::uint8_t> encode_checkpoint(const Checkpoint& c) const;
  /// Strict decode; any inconsistency with the current workload is a hard
  /// error (aborts) — restoring a half-garbled checkpoint would corrupt
  /// the run silently.
  void decode_checkpoint(const std::vector<std::uint8_t>& blob, Checkpoint& c) const;
  /// Process-backend wire plumbing: per-entry decoders for the messages
  /// that cross worker boundaries, plus the end-of-run state flush/merge.
  void setup_process_wire();
  std::vector<std::uint8_t> flush_worker_state(int worker, int workers) const;
  void merge_worker_state(int worker, const std::vector<std::uint8_t>& blob);
  /// Re-homes a failed PE's patches and computes onto survivors and
  /// rebuilds the reducer and the dataflow. Records kEvacuation.
  void evacuate_failed_pes(const std::vector<int>& dead);

  const Workload* wl_;
  ParallelOptions opts_;
  const Molecule* mol_;
  ExclusionTable excl_;                 // numeric mode
  std::vector<double> charges_;
  std::vector<int> lj_types_;
  std::unique_ptr<NonbondedContext> nb_ctx_;
  // Tiled-kernel scratch (numeric mode, Workload::nonbonded.kernel !=
  // scalar). One workspace per PE: under the threaded backend each PE's
  // worker runs kernels concurrently, and the scratch must not be shared.
  std::vector<TiledWorkspace> tiled_ws_;
  TiledThreadWorkspace tiled_mt_ws_;
  std::unique_ptr<ThreadPool> nb_pool_;

  std::unique_ptr<ExecBackend> exec_;
  Simulator* des_ = nullptr;  ///< exec_ downcast when simulated, else null
  ProcessBackend* proc_ = nullptr;  ///< exec_ downcast when process, else null
  MultiSink sinks_;
  std::unique_ptr<LoadDatabase> db_;

  // Entry ids.
  EntryId e_advance_, e_coords_, e_forces_, e_self_, e_pair_, e_bonded_intra_,
      e_bonded_inter_, e_reduction_, e_migrate_, e_checkpoint_;
  // Parallel PME entries (registered only when the workload enables
  // full_elec; see the "Parallel PME" section in the .cpp).
  EntryId e_pme_atoms_{}, e_pme_tr_fwd_{}, e_pme_tr_bwd_{}, e_pme_force_{};

  std::vector<PatchRt> patches_;
  std::vector<ProxyRt> proxies_;
  std::vector<std::vector<int>> patch_proxy_ids_;  // patch -> proxy indices
  /// Per patch: every (proxy index, scratch slot) contributing a force
  /// buffer, sorted by the contributing compute's global id. advance()
  /// folds in this order, making the total force independent of placement,
  /// execution order, backend and thread count.
  std::vector<std::vector<std::pair<int, int>>> patch_contribs_;
  std::vector<ComputeRt> computes_;
  std::vector<int> patch_home_;
  std::vector<int> compute_pe_;
  std::vector<std::pair<int, int>> atom_loc_;  // global atom -> (patch, index)

  std::unique_ptr<Reducer> reducer_;
  std::vector<double> reduction_totals_;
  CycleObserver cycle_observer_;
  Rng noise_rng_{0xC0FFEE};

  int cycle_target_ = 0;       // per-cycle steps
  int global_steps_ = 0;       // completed steps across cycles
  int step_base_ = 0;          // global index of the current cycle's step 0
  std::vector<int> steps_done_counter_;
  std::vector<double> step_completion_;
  /// Latest advance() completion seen per global step. Under the process
  /// backend each worker only sees its own patches' advances, so workers
  /// flush (counter delta, latest advance time) per step and the parent
  /// reconstructs step_completion_ as the max once the summed counter
  /// reaches active_patches_.
  std::vector<double> step_last_advance_;
  /// Guards the cross-patch step bookkeeping above: under the threaded
  /// backend, advance() for different patches runs on different workers.
  std::mutex progress_mu_;
  /// Per-(compute, local step) potential terms for the running cycle,
  /// indexed compute * (cycle_target_ + 1) + step. Disjoint slots (no
  /// sharing), written by assignment (idempotent under fault replay),
  /// folded into potential_per_step_ in compute-id order at cycle end.
  std::vector<EnergyTerms> potential_scratch_;
  std::vector<EnergyTerms> potential_per_step_;
  int active_patches_ = 0;

  // --- parallel PME state (null / empty when full_elec is off) ---------
  std::unique_ptr<PmeSlabPlan> pme_plan_;
  std::vector<PmeSlabRt> pme_slabs_;
  std::vector<int> slab_pe_;  ///< home PE of each slab (an LB object)
  /// Per-(slab, local step) reciprocal + correction + self energy partial,
  /// indexed slab * (cycle_target_ + 1) + step; written by assignment,
  /// folded into potential_per_step_.elec in slab order at cycle end.
  std::vector<double> pme_scratch_;

  // Resilience state.
  std::unique_ptr<ReliableComm> reliable_;
  std::unique_ptr<Checkpoint> ckpt_;
  bool ckpt_on_disk_ = false;  ///< process backend: checkpoint lives on disk
  std::vector<int> cycles_since_ckpt_;  // step counts of cycles to replay
  int checkpoints_taken_ = 0;
  int restarts_ = 0;
  double restart_lost_time_ = 0.0;
};

}  // namespace scalemd
