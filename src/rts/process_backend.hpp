#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "des/machine.hpp"
#include "des/trace_sink.hpp"
#include "rts/exec_backend.hpp"
#include "rts/wire.hpp"

namespace scalemd {

/// Tuning and chaos knobs for the process backend.
struct ProcessOptions {
  /// Worker processes to fork per run (clamped to [1, num_pes]).
  int workers = 2;
  /// Heartbeat ping interval in milliseconds. <= 0 reads
  /// SCALEMD_PROCESS_HEARTBEAT_MS from the environment (default 500).
  int heartbeat_ms = 0;
  /// Consecutive missed heartbeats before a worker is suspected / declared
  /// dead. A dead worker is SIGKILLed and its PEs marked failed.
  int suspect_after = 4;
  int dead_after = 20;
  /// Chaos injection: SIGKILL worker `kill_worker` once `kill_after_frames`
  /// cross-worker frames have been routed (0 = immediately after fork).
  /// One-shot — the trigger clears after firing, so the recovery replay of
  /// the same cycle runs clean. -1 disables.
  int kill_worker = -1;
  std::uint64_t kill_after_frames = 0;
};

/// Heartbeat failure detector (alive -> suspect -> dead by consecutive
/// missed pings), kept as a pure state machine so it unit-tests without a
/// process tree. The supervisor drives it: on_tick(w) when a ping interval
/// expires with no reply, on_pong(w) when one arrives.
class HeartbeatDetector {
 public:
  enum class State { kAlive, kSuspect, kDead };

  HeartbeatDetector(int peers, int suspect_after, int dead_after);

  /// A reply arrived: a suspect peer recovers to alive. Dead is terminal —
  /// a pong from a peer already declared dead is ignored (the supervisor
  /// has already killed it).
  void on_pong(int peer);
  /// A ping interval elapsed without a reply; returns the new state.
  State on_tick(int peer);
  State state(int peer) const { return peers_[static_cast<std::size_t>(peer)].state; }
  int misses(int peer) const { return peers_[static_cast<std::size_t>(peer)].misses; }

 private:
  struct Peer {
    int misses = 0;
    State state = State::kAlive;
  };
  std::vector<Peer> peers_;
  int suspect_after_;
  int dead_after_;
};

/// Rebuilds a TaskFn from a message's WirePayload at the receiving worker.
using TaskDecoder = std::function<TaskFn(const WirePayload&)>;

/// Out-of-process ExecBackend: every run() forks `workers` OS processes,
/// each hosting the PEs with pe % workers == worker and draining them in
/// the same (priority, FIFO) mailbox order as the other backends. fork()
/// preserves the parent's address space, so tasks whose sender and receiver
/// share a worker run their closures unchanged; messages that cross workers
/// are serialized through the wire layer (versioned, checksummed frames
/// over Unix-domain socketpairs, star-routed through the parent) and
/// reconstructed by per-entry decoders. At quiescence each worker flushes
/// its mutated state back to the parent (kFlush/kState), which merges it in
/// worker order — so the parent's post-run state is deterministic and
/// bitwise equal to the single-address-space backends.
///
/// Failure is real: a worker killed mid-run (SIGKILL, crash, or a hang
/// caught by the heartbeat detector) fails the epoch. The parent reaps
/// everything, marks the dead worker's PEs permanently failed
/// (failed_pes()), discards the epoch's messages in the accounting, and
/// returns with the run incomplete — the caller's checkpoint/restore/
/// evacuate machinery (ParallelSim::run_cycle) does the rest.
class ProcessBackend final : public ExecBackend {
 public:
  ProcessBackend(int num_pes, const MachineModel& machine,
                 ProcessOptions opts = {});
  ~ProcessBackend() override;

  int num_pes() const override { return num_pes_; }
  const MachineModel& machine() const override { return machine_; }
  EntryRegistry& entries() override { return entries_; }
  const EntryRegistry& entries() const override { return entries_; }
  void set_sink(TraceSink* sink) override { sink_ = sink; }

  /// `time` is ignored: injected messages are ready at the next run().
  void inject(int pe, TaskMsg msg, double time = 0.0) override;

  /// Forks the workers, drains to distributed quiescence, merges worker
  /// state and reaps. On a worker death the epoch fails instead (see
  /// last_run_failed()); already-merged state from previous runs is
  /// untouched.
  void run() override;

  bool idle() const override { return pending_.empty(); }
  double time() const override { return horizon_; }
  std::vector<double> busy_times() const override { return busy_; }
  std::uint64_t tasks_executed() const override { return executed_; }
  const MessageAccounting& accounting() const override { return acct_; }
  bool wall_clock() const override { return true; }
  BackendKind kind() const override { return BackendKind::kProcess; }
  std::vector<int> failed_pes() const override {
    return {dead_pes_.begin(), dead_pes_.end()};
  }

  /// Registers the wire decoder for an entry. Any cross-worker send whose
  /// entry has no decoder (or whose message lacks a wire payload) is a
  /// programming error and aborts the worker.
  void register_decoder(EntryId entry, TaskDecoder dec);

  /// Application-state externalization: `flush` runs inside each worker at
  /// quiescence and returns the worker's mutated-state blob; `merge` runs
  /// in the parent once per worker, in worker-index order.
  void set_state_hooks(
      std::function<std::vector<std::uint8_t>(int worker, int workers)> flush,
      std::function<void(int worker, const std::vector<std::uint8_t>&)> merge);

  int workers() const { return workers_; }
  int owner_of(int pe) const { return pe % workers_; }
  bool pe_failed(int pe) const { return dead_pes_.count(pe) != 0; }
  /// True when the most recent run() was aborted by a worker failure.
  bool last_run_failed() const { return last_run_failed_; }
  /// Cross-worker task frames routed by the parent, across all runs.
  std::uint64_t frames_routed() const { return frames_routed_; }
  const ProcessOptions& options() const { return opts_; }

 private:
  class WorkerContext;
  struct Supervisor;
  struct WorkerState;

  void worker_main(int worker, int fd, double t0) /* _exit()s, never returns */;
  void fail_epoch(Supervisor& sup, int dead_worker, const char* why);
  void merge_worker_blob(int worker, const std::vector<std::uint8_t>& blob);
  double elapsed() const;

  int num_pes_;
  int workers_;
  MachineModel machine_;
  ProcessOptions opts_;
  EntryRegistry entries_;
  TraceSink* sink_ = nullptr;
  std::map<EntryId, TaskDecoder> decoders_;
  std::function<std::vector<std::uint8_t>(int, int)> flush_hook_;
  std::function<void(int, const std::vector<std::uint8_t>&)> merge_hook_;

  std::vector<std::pair<int, TaskMsg>> pending_;  ///< injected, pre-fork
  std::set<int> dead_pes_;
  bool last_run_failed_ = false;
  bool kill_fired_ = false;
  std::uint64_t frames_routed_ = 0;

  double horizon_ = 0.0;
  std::vector<double> busy_;
  std::uint64_t executed_ = 0;
  MessageAccounting acct_;
  std::int64_t epoch_start_ns_;
};

}  // namespace scalemd
