#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "des/machine.hpp"
#include "des/trace_sink.hpp"

namespace scalemd {

class ExecContext;

/// The body of an entry-method invocation. It runs to completion
/// (non-preemptive, Charm++-style) and reports its cost by calling
/// ExecContext::charge with the virtual seconds consumed (ignored by
/// backends that measure real time instead of modeling it).
using TaskFn = std::function<void(ExecContext&)>;

/// Serializable argument pack of an entry-method invocation. Closures
/// (TaskFn) cannot cross an address-space boundary, so backends that route
/// messages between OS processes (ProcessBackend) ship this instead and
/// reconstruct the closure at the destination via a per-entry registered
/// decoder. Doubles travel as raw IEEE-754 bits: bitwise trajectory
/// equality survives the wire.
struct WirePayload {
  std::vector<std::int64_t> ints;
  std::vector<double> reals;
};

/// A message carrying an entry-method invocation to a virtual processor.
struct TaskMsg {
  EntryId entry = 0;
  std::uint64_t object = 0;  ///< target object id, for load measurement
  int priority = 0;          ///< lower runs first among available messages
  std::size_t bytes = 0;     ///< payload size for the network model
  TaskFn fn;
  /// Wire form of the invocation, attached by senders only when the active
  /// backend may have to cross a process boundary (has_wire == true).
  /// Single-address-space backends ignore it and run `fn` directly.
  WirePayload wire;
  bool has_wire = false;
};

/// Names and audit categories of entry methods. The registry is what makes
/// summary profiles readable ("dozens of entry methods" vs thousands of
/// functions, as the paper argues).
class EntryRegistry {
 public:
  EntryId add(std::string name, WorkCategory category);
  const std::string& name(EntryId id) const { return names_[static_cast<std::size_t>(id)]; }
  WorkCategory category(EntryId id) const {
    return categories_[static_cast<std::size_t>(id)];
  }
  int count() const { return static_cast<int>(names_.size()); }

 private:
  std::vector<std::string> names_;
  std::vector<WorkCategory> categories_;
};

/// End-of-run message accounting: where every message handed to the machine
/// ended up. The conservation identity
///   offered + duplicated ==
///       dropped_fault + discarded_dead_pe + executed + pending()
/// holds at every instant; at a clean quiesce pending() is zero, and any
/// nonzero dropped/discarded terms are attributable to the fault engine.
/// This is what lets the invariant checker distinguish "dropped by fault"
/// from "still queued at termination".
struct MessageAccounting {
  std::uint64_t offered = 0;           ///< deliver attempts (sends + injects)
  std::uint64_t duplicated = 0;        ///< extra arrivals forged by duplication
  std::uint64_t dropped_fault = 0;     ///< vanished on the wire (fault engine)
  std::uint64_t discarded_dead_pe = 0; ///< addressed to / queued on a failed PE
  std::uint64_t executed = 0;          ///< ran to completion
  std::uint64_t pending_network = 0;   ///< arrival events not yet processed
  std::uint64_t pending_ready = 0;     ///< queued on a PE, not yet executed

  std::uint64_t pending() const { return pending_network + pending_ready; }
  bool conserved() const {
    return offered + duplicated == dropped_fault + discarded_dead_pe +
                                       executed + pending_network + pending_ready;
  }
};

/// Which ExecBackend implementation drives ParallelSim.
enum class BackendKind {
  kSimulated,  ///< discrete-event model of the machine (src/des/)
  kThreaded,   ///< real execution on shared-memory worker threads (src/rts/)
  kProcess,    ///< real execution on forked worker processes (src/rts/)
};

const char* backend_name(BackendKind k);
/// Parses "sim"/"simulated", "threads"/"threaded" and "process". Returns
/// false (and leaves `out` untouched) on anything else.
bool backend_from_name(const char* name, BackendKind& out);

/// Handle given to a running task: lets it consume CPU time and send
/// messages. Valid only during the task's execution. Implementations: the
/// DES context (virtual clock, LogGP network model) and the threaded
/// context (real wall clock, in-memory mailboxes).
class ExecContext {
 public:
  virtual ~ExecContext() = default;

  /// PE executing the task.
  int pe() const { return pe_; }
  /// Time at which the task started (virtual or wall-clock seconds,
  /// depending on the backend).
  double start() const { return start_; }
  /// Current time (start + charged so far).
  double now() const { return start_ + charged_; }
  /// Seconds charged so far by this task.
  double charged() const { return charged_; }

  virtual const MachineModel& machine() const = 0;

  /// True when charge() advances a modeled clock (the DES backend). The
  /// threaded backend measures wall-clock time instead, so callers must
  /// skip cost modeling — in particular anything drawing from a shared
  /// noise RNG, which would otherwise make runs depend on thread count.
  virtual bool models_cost() const { return true; }

  /// Consumes `seconds` of CPU time at the current point in the task.
  void charge(double seconds) { charged_ += seconds; }

  /// Adds to the pack-cost attribution (for the audit's overhead column);
  /// also charges the time.
  void charge_pack(double seconds) {
    charged_ += seconds;
    pack_cost_ += seconds;
  }

  double recv_cost() const { return recv_cost_; }
  double pack_cost() const { return pack_cost_; }
  double send_cost() const { return send_cost_; }

  /// Sends `msg` to `dest` at the current point in the task.
  virtual void send(int dest, TaskMsg msg) = 0;

  /// Schedules `msg` to run on this PE `delay` seconds from now without
  /// charging the task (a timer). Backends without a virtual clock deliver
  /// it as soon as possible instead.
  virtual void post(TaskMsg msg, double delay) = 0;

 protected:
  ExecContext(int pe, double start) : pe_(pe), start_(start) {}

  int pe_;
  double start_;
  double charged_ = 0.0;
  double recv_cost_ = 0.0;
  double pack_cost_ = 0.0;
  double send_cost_ = 0.0;
};

/// The execution seam of ParallelSim: a machine that accepts prioritized
/// messages addressed to virtual PEs and drains them to quiescence, either
/// by discrete-event simulation (Simulator — modeled virtual time) or by
/// actually running the tasks on worker threads (ThreadedBackend —
/// measured wall-clock time). Times reported through this interface are in
/// the backend's own clock; wall_clock() says which one that is.
class ExecBackend {
 public:
  virtual ~ExecBackend() = default;

  virtual int num_pes() const = 0;
  virtual const MachineModel& machine() const = 0;
  virtual EntryRegistry& entries() = 0;
  virtual const EntryRegistry& entries() const = 0;

  /// Attaches an instrumentation sink (may be null to disable).
  virtual void set_sink(TraceSink* sink) = 0;

  /// Injects a message ready to run on `pe` (no send-side cost charged; use
  /// for bootstrap messages). `time` is the absolute virtual arrival time
  /// for simulated backends; real backends ignore it.
  virtual void inject(int pe, TaskMsg msg, double time = 0.0) = 0;

  /// Processes messages until none remain (quiescence).
  virtual void run() = 0;

  /// True if no undelivered or unprocessed messages remain.
  virtual bool idle() const = 0;

  /// Time of the latest completion so far, in this backend's clock.
  virtual double time() const = 0;

  /// Per-PE busy (executing) seconds so far.
  virtual std::vector<double> busy_times() const = 0;

  /// Number of tasks executed so far (all PEs).
  virtual std::uint64_t tasks_executed() const = 0;

  /// Message accounting so far (see MessageAccounting).
  virtual const MessageAccounting& accounting() const = 0;

  /// True when this backend's times are measured wall-clock seconds rather
  /// than modeled virtual seconds (labels in traces and audits).
  virtual bool wall_clock() const = 0;

  virtual BackendKind kind() const = 0;

  /// PEs this backend considers permanently failed (ascending). The DES
  /// machine fails PEs per its fault plan; the process backend marks a
  /// crashed worker's PEs dead; the threaded backend has none.
  virtual std::vector<int> failed_pes() const { return {}; }
};

}  // namespace scalemd
