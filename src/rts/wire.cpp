#include "rts/wire.hpp"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace scalemd {
namespace wire {

const char* wire_error_name(WireError e) {
  switch (e) {
    case WireError::kOk:
      return "ok";
    case WireError::kTruncated:
      return "truncated";
    case WireError::kBadMagic:
      return "bad-magic";
    case WireError::kBadVersion:
      return "bad-version";
    case WireError::kBadType:
      return "bad-type";
    case WireError::kOversized:
      return "oversized";
    case WireError::kBadChecksum:
      return "bad-checksum";
    case WireError::kMalformed:
      return "malformed";
    case WireError::kIo:
      return "io";
  }
  return "?";
}

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t len) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

namespace {

void put_u16(std::vector<std::uint8_t>& b, std::uint16_t v) {
  b.push_back(static_cast<std::uint8_t>(v));
  b.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& b, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& b, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

bool known_type(std::uint32_t t) {
  return t >= static_cast<std::uint32_t>(FrameType::kTask) &&
         t <= static_cast<std::uint32_t>(FrameType::kCheckpoint);
}

}  // namespace

std::vector<std::uint8_t> encode_frame(FrameType type,
                                       const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize + payload.size() + kTrailerSize);
  put_u32(out, kMagic);
  put_u16(out, kVersionMajor);
  put_u16(out, kVersionMinor);
  put_u32(out, static_cast<std::uint32_t>(type));
  put_u64(out, payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
  put_u64(out, fnv1a64(payload.data(), payload.size()));
  return out;
}

WireError decode_frame(const std::uint8_t* data, std::size_t len,
                       FrameType& type, std::vector<std::uint8_t>& payload,
                       std::size_t& consumed) {
  // Validate as much of the header as is present, so corruption in an
  // incomplete prefix is still reported as the hard error it is rather
  // than "feed me more bytes".
  if (len >= 4 && get_u32(data) != kMagic) return WireError::kBadMagic;
  if (len >= 6 && get_u16(data + 4) != kVersionMajor) return WireError::kBadVersion;
  if (len >= 12 && !known_type(get_u32(data + 8))) return WireError::kBadType;
  if (len >= kHeaderSize && get_u64(data + 12) > kMaxPayload) {
    return WireError::kOversized;
  }
  if (len < kHeaderSize) return WireError::kTruncated;
  const std::uint64_t plen = get_u64(data + 12);
  const std::size_t total = kHeaderSize + static_cast<std::size_t>(plen) + kTrailerSize;
  if (len < total) return WireError::kTruncated;
  const std::uint8_t* body = data + kHeaderSize;
  const std::uint64_t want = get_u64(body + plen);
  if (fnv1a64(body, static_cast<std::size_t>(plen)) != want) {
    return WireError::kBadChecksum;
  }
  type = static_cast<FrameType>(get_u32(data + 8));
  payload.assign(body, body + plen);
  consumed = total;
  return WireError::kOk;
}

void FrameReader::feed(const std::uint8_t* data, std::size_t n) {
  // Compact lazily: drop consumed bytes once they dominate the buffer.
  if (off_ > 4096 && off_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(off_));
    off_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

WireError FrameReader::next(FrameType& type, std::vector<std::uint8_t>& payload) {
  std::size_t consumed = 0;
  const WireError e =
      decode_frame(buf_.data() + off_, buf_.size() - off_, type, payload, consumed);
  if (e == WireError::kOk) off_ += consumed;
  return e;
}

// --- payload encoding ------------------------------------------------------

void Encoder::u32(std::uint32_t v) { put_u32(buf_, v); }
void Encoder::u64(std::uint64_t v) { put_u64(buf_, v); }

void Encoder::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void Encoder::blob(const std::vector<std::uint8_t>& b) {
  u64(b.size());
  buf_.insert(buf_.end(), b.begin(), b.end());
}

bool Decoder::take(void* out, std::size_t n) {
  if (!ok_ || len_ - pos_ < n) {
    ok_ = false;
    return false;
  }
  std::memcpy(out, data_ + pos_, n);
  pos_ += n;
  return true;
}

bool Decoder::u8(std::uint8_t& v) { return take(&v, 1); }

bool Decoder::u32(std::uint32_t& v) {
  std::uint8_t raw[4];
  if (!take(raw, 4)) return false;
  v = get_u32(raw);
  return true;
}

bool Decoder::u64(std::uint64_t& v) {
  std::uint8_t raw[8];
  if (!take(raw, 8)) return false;
  v = get_u64(raw);
  return true;
}

bool Decoder::i64(std::int64_t& v) {
  std::uint64_t u = 0;
  if (!u64(u)) return false;
  v = static_cast<std::int64_t>(u);
  return true;
}

bool Decoder::f64(double& v) {
  std::uint64_t bits = 0;
  if (!u64(bits)) return false;
  std::memcpy(&v, &bits, sizeof v);
  return true;
}

bool Decoder::count(std::uint64_t& n, std::size_t elem_size) {
  if (!u64(n)) return false;
  if (elem_size != 0 && n > remaining() / elem_size) {
    ok_ = false;
    return false;
  }
  return true;
}

bool Decoder::blob(std::vector<std::uint8_t>& b) {
  std::uint64_t n = 0;
  if (!count(n, 1)) return false;
  b.assign(data_ + pos_, data_ + pos_ + n);
  pos_ += static_cast<std::size_t>(n);
  return true;
}

// --- fd I/O ----------------------------------------------------------------

namespace {

/// Blocks until fd is ready for `events`, riding out EINTR.
bool wait_fd(int fd, short events) {
  for (;;) {
    struct pollfd p{fd, events, 0};
    const int r = poll(&p, 1, -1);
    if (r > 0) return true;
    if (r < 0 && errno != EINTR) return false;
  }
}

}  // namespace

bool write_all(int fd, const std::uint8_t* buf, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    // send with MSG_NOSIGNAL so a SIGKILLed peer yields EPIPE, not a
    // process-killing SIGPIPE; checkpoint files fall back to write().
    ssize_t w = send(fd, buf + done, n - done, MSG_NOSIGNAL);
    if (w < 0 && errno == ENOTSOCK) w = write(fd, buf + done, n - done);
    if (w > 0) {
      done += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!wait_fd(fd, POLLOUT)) return false;
      continue;
    }
    return false;
  }
  return true;
}

bool read_exact(int fd, std::uint8_t* buf, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t r = read(fd, buf + done, n - done);
    if (r > 0) {
      done += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) return false;  // EOF
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!wait_fd(fd, POLLIN)) return false;
      continue;
    }
    return false;
  }
  return true;
}

bool write_frame(int fd, FrameType type, const std::vector<std::uint8_t>& payload) {
  return write_all(fd, encode_frame(type, payload));
}

WireError read_frame(int fd, FrameType& type, std::vector<std::uint8_t>& payload) {
  std::uint8_t header[kHeaderSize];
  if (!read_exact(fd, header, kHeaderSize)) return WireError::kIo;
  if (get_u32(header) != kMagic) return WireError::kBadMagic;
  if (get_u16(header + 4) != kVersionMajor) return WireError::kBadVersion;
  if (!known_type(get_u32(header + 8))) return WireError::kBadType;
  const std::uint64_t plen = get_u64(header + 12);
  if (plen > kMaxPayload) return WireError::kOversized;
  std::vector<std::uint8_t> body(static_cast<std::size_t>(plen) + kTrailerSize);
  if (!read_exact(fd, body.data(), body.size())) return WireError::kIo;
  const std::uint64_t want = get_u64(body.data() + plen);
  if (fnv1a64(body.data(), static_cast<std::size_t>(plen)) != want) {
    return WireError::kBadChecksum;
  }
  type = static_cast<FrameType>(get_u32(header + 8));
  body.resize(static_cast<std::size_t>(plen));
  payload = std::move(body);
  return WireError::kOk;
}

}  // namespace wire
}  // namespace scalemd
