#include "rts/reliable.hpp"

#include <utility>

namespace scalemd {

ReliableComm::ReliableComm(Simulator& sim, ReliableOptions opts)
    : sim_(&sim),
      opts_(opts),
      ack_entry_(sim.entries().add("rel.ack", WorkCategory::kComm)),
      timer_entry_(sim.entries().add("rel.timer", WorkCategory::kComm)),
      pending_(static_cast<std::size_t>(sim.num_pes())),
      delivered_(static_cast<std::size_t>(sim.num_pes())) {}

double ReliableComm::initial_timeout(std::size_t bytes) const {
  if (opts_.ack_timeout > 0.0) return opts_.ack_timeout;
  // Auto: a generous multiple of the round-trip estimate so a fault-free
  // send (or one merely queued behind other work) is never retried.
  const MachineModel& m = sim_->machine();
  return 10.0 * (m.latency + m.send_overhead + m.recv_overhead) +
         4.0 * static_cast<double>(bytes + opts_.ack_bytes) * m.byte_time +
         1e-4;
}

void ReliableComm::clear_pending() {
  for (auto& per_pe : pending_) per_pe.clear();
}

void ReliableComm::send(ExecContext& ctx, int dest, TaskMsg msg) {
  if (dest == ctx.pe() || !armed()) {
    ctx.send(dest, std::move(msg));
    return;
  }
  const std::uint64_t id = next_id_++;
  const int src = ctx.pe();
  TaskMsg wrapped;
  wrapped.entry = msg.entry;
  wrapped.object = msg.object;
  wrapped.priority = msg.priority;
  wrapped.bytes = msg.bytes + 16;  // id + protocol header on the wire
  TaskFn payload = std::move(msg.fn);
  wrapped.fn = [this, id, src, payload = std::move(payload)](ExecContext& c) {
    auto& seen = delivered_[static_cast<std::size_t>(c.pe())];
    if (!seen.insert(id).second) {
      // Already executed: suppress, but re-ack (the first ack may have
      // been the casualty that caused this retry).
      ++stats_.duplicates_suppressed;
      sim_->record_fault(
          {FaultKind::kDupSuppressed, c.pe(), src, c.now(), 0.0});
      send_ack(c, src, id);
      return;
    }
    send_ack(c, src, id);
    payload(c);
  };

  Pending pend;
  pend.dest = dest;
  pend.msg = wrapped;  // keep a copy for retries
  pend.attempts = 1;
  pend.timeout = initial_timeout(wrapped.bytes);
  const double delay = pend.timeout;
  pending_[static_cast<std::size_t>(src)].emplace(id, std::move(pend));
  ++stats_.reliable_sends;

  ctx.send(dest, std::move(wrapped));
  arm_timer(ctx, id, delay);
}

void ReliableComm::send_ack(ExecContext& ctx, int to_pe, std::uint64_t id) {
  TaskMsg ack;
  ack.entry = ack_entry_;
  ack.bytes = opts_.ack_bytes;
  ack.priority = -1;  // acks are latency-critical (they stop retries)
  ack.fn = [this, id](ExecContext& c) {
    pending_[static_cast<std::size_t>(c.pe())].erase(id);
  };
  ++stats_.acks_sent;
  ctx.send(to_pe, std::move(ack));
}

void ReliableComm::arm_timer(ExecContext& ctx, std::uint64_t id, double delay) {
  TaskMsg timer;
  timer.entry = timer_entry_;
  timer.fn = [this, id](ExecContext& c) { on_timer(c, id); };
  ctx.post(std::move(timer), delay);
}

void ReliableComm::on_timer(ExecContext& ctx, std::uint64_t id) {
  auto& pend = pending_[static_cast<std::size_t>(ctx.pe())];
  const auto it = pend.find(id);
  if (it == pend.end()) return;  // acked (or cleared by restart) — done
  Pending& p = it->second;
  if (sim_->pe_failed(p.dest) || p.attempts >= opts_.max_attempts) {
    ++stats_.abandoned;
    // Classify: the receiver-side dedup set tells us whether the payload
    // actually executed (only the acks were lost) or never arrived at all.
    if (sim_->pe_failed(p.dest)) {
      ++stats_.abandoned_dead_pe;
    } else if (delivered_[static_cast<std::size_t>(p.dest)].count(id) != 0) {
      ++stats_.abandoned_delivered;
    } else {
      ++stats_.abandoned_lost;
    }
    sim_->record_fault({FaultKind::kMessageLost, p.dest, ctx.pe(),
                            ctx.now(), static_cast<double>(p.attempts)});
    pend.erase(it);
    return;
  }
  ++p.attempts;
  ++stats_.retries;
  sim_->record_fault({FaultKind::kRetry, p.dest, ctx.pe(), ctx.now(),
                          static_cast<double>(p.attempts)});
  TaskMsg copy = p.msg;
  p.timeout *= opts_.backoff;
  const double delay = p.timeout;
  ctx.send(p.dest, std::move(copy));
  arm_timer(ctx, id, delay);
}

}  // namespace scalemd
