#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <queue>
#include <vector>

#include "des/machine.hpp"
#include "des/trace_sink.hpp"
#include "rts/exec_backend.hpp"
#include "util/thread_pool.hpp"

namespace scalemd {

/// Real shared-memory ExecBackend: virtual PEs are mapped onto ThreadPool
/// workers (worker = pe % workers), each draining a prioritized per-PE
/// mailbox — one mutex-protected queue per PE, no global lock — in the same
/// (priority, FIFO-by-seq) order as the DES scheduler. run() executes tasks
/// for real, timing them with the wall clock: TaskRecords carry measured
/// seconds, so an attached LoadDatabase accumulates *measured* object loads
/// and the greedy/refine balancers place work by how long it actually took
/// on this machine — the paper's measurement-based LB closed over real
/// execution.
///
/// Every PE's tasks run on one fixed worker thread, serialized (the
/// Charm++ model), so per-PE runtime state needs no locking. Cross-PE data
/// handoffs synchronize through the mailbox mutexes: the send
/// happens-before the receive. Timers (post) fire as soon as possible:
/// virtual delays have no wall-clock meaning here, and the layers that rely
/// on timer semantics (reliable delivery, fault injection) are DES-only.
class ThreadedBackend final : public ExecBackend {
 public:
  /// `threads` == 0 picks ThreadPool::default_threads(). The worker count
  /// is clamped to [1, num_pes] — more workers than PEs would just idle.
  ThreadedBackend(int num_pes, const MachineModel& machine, int threads = 0);
  ~ThreadedBackend() override;

  int num_pes() const override { return static_cast<int>(pes_.size()); }
  const MachineModel& machine() const override { return machine_; }
  EntryRegistry& entries() override { return entries_; }
  const EntryRegistry& entries() const override { return entries_; }
  void set_sink(TraceSink* sink) override { sink_ = sink; }

  /// `time` is ignored: injected messages are ready immediately.
  void inject(int pe, TaskMsg msg, double time = 0.0) override;

  /// Drains every mailbox to quiescence on the worker threads; returns once
  /// no task is queued or running anywhere.
  void run() override;

  bool idle() const override;

  /// Wall-clock seconds since construction, as of the last quiesce.
  double time() const override { return horizon_; }

  /// Measured busy (executing) wall-clock seconds per PE.
  std::vector<double> busy_times() const override;

  std::uint64_t tasks_executed() const override;
  const MessageAccounting& accounting() const override;

  bool wall_clock() const override { return true; }
  BackendKind kind() const override { return BackendKind::kThreaded; }

  /// Actual worker-thread count after clamping.
  int workers() const { return static_cast<int>(workers_.size()); }

 private:
  class Context;

  struct Ready {
    int priority = 0;
    std::uint64_t seq = 0;
    TaskMsg msg;
    int src_pe = 0;
    bool remote = false;
    double sent_at = 0.0;
  };
  struct ReadyOrder {
    bool operator()(const Ready& a, const Ready& b) const {
      if (a.priority != b.priority) return a.priority > b.priority;  // min-heap
      return a.seq > b.seq;                                          // FIFO ties
    }
  };
  /// One PE: its mailbox plus state owned by the PE's fixed worker thread.
  struct Pe {
    std::mutex mu;
    std::priority_queue<Ready, std::vector<Ready>, ReadyOrder> box;
    double busy_sum = 0.0;  ///< written only by the owning worker
  };
  /// One worker thread's wakeup channel: `gen` is bumped (under `mu`) on
  /// every enqueue to one of the worker's PEs and at global quiescence.
  struct Worker {
    std::mutex mu;
    std::condition_variable cv;
    std::uint64_t gen = 0;
  };

  void enqueue(int src_pe, int dst_pe, TaskMsg msg, double sent_at, bool remote);
  void drain_worker(int w);
  /// Quiescence watchdog: a worker that has waited `watchdog_ms_` with
  /// in-flight work but no global progress dumps per-PE mailbox depths and
  /// aborts — a lost-wakeup or deadlock bug becomes a diagnostic instead of
  /// a hung test run. Tuned by SCALEMD_THREADED_WATCHDOG_MS (0 disables).
  [[noreturn]] void dump_stall_and_abort(int w);
  /// Pops and executes until `pe`'s mailbox is empty; true if any task ran.
  bool drain_pe(int pe);
  void wake_all();
  double elapsed() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
  }

  MachineModel machine_;
  EntryRegistry entries_;
  TraceSink* sink_ = nullptr;
  std::mutex sink_mu_;  ///< serializes sink callbacks (sinks aren't thread-safe)
  std::vector<std::unique_ptr<Pe>> pes_;
  std::vector<std::unique_ptr<Worker>> workers_;
  ThreadPool pool_;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::int64_t> in_flight_{0};  ///< queued + currently executing
  std::atomic<std::uint64_t> offered_{0};
  std::atomic<std::uint64_t> executed_{0};
  int watchdog_ms_ = 120000;
  double horizon_ = 0.0;
  mutable MessageAccounting acct_;  ///< materialized from the atomics on read
};

}  // namespace scalemd
