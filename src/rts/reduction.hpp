#pragma once

#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "rts/exec_backend.hpp"

namespace scalemd {

class ReliableComm;

/// Repeated tree reduction of doubles across PEs, Charm++-style: every round
/// (timestep), each contributor deposits a value from within a task; when a
/// PE has all its local contributions for a round it sends its partial sum
/// one hop up a binary tree over the participating PEs; the root invokes the
/// round callback as a task. Models the per-step energy reduction NAMD
/// performs, including its message costs and latency.
class Reducer {
 public:
  /// `pe_of_contributor[i]` is the (fixed) PE contributor i reports from.
  /// `entry` labels the internal reduction tasks for tracing; `callback` runs
  /// at the tree root with (round, total).
  Reducer(std::vector<int> pe_of_contributor, EntryId entry,
          std::function<void(int round, double total)> callback);

  /// Deposits contributor `id`'s value for `round`; must be called from a
  /// task running on the contributor's PE. The total delivered to the root
  /// is the sum over contributions *in ascending id order*, regardless of
  /// arrival order — bitwise identical across backends and thread counts
  /// even though floating-point addition doesn't associate.
  void contribute(ExecContext& ctx, int id, int round, double value);

  /// PE hosting the reduction root.
  int root_pe() const { return active_pes_.empty() ? 0 : active_pes_[0]; }

  /// Routes the tree's upward partial-sum messages through the reliable
  /// layer (nullptr = raw sends). Contributions themselves are local calls.
  void set_reliable(ReliableComm* reliable) { reliable_ = reliable; }

  /// Attaches a WirePayload to every upward message so the process backend
  /// can route it across workers: ints = [parent rank, round, forwarded
  /// count, n, contributor ids...], reals = the n values.
  void set_wire(bool on) { wire_ = on; }

  /// Wire entry point: re-injects a decoded upward message at `rank`.
  /// Equivalent to the closure the sender would have run in-process.
  void deliver(ExecContext& ctx, int rank, int round,
               std::vector<std::pair<int, double>> parts, int count) {
    absorb(ctx, rank, round, std::move(parts), count);
  }

  /// Discards every partially filled round on every tree node. Checkpoint
  /// restart uses this: replayed contributions must start from a clean
  /// slate or the counts would double.
  void clear_pending();

 private:
  struct NodeRound {
    int received = 0;
    /// (contributor id, value) pairs gathered so far. Carrying the pairs up
    /// the tree (instead of a running double) costs nothing in the model —
    /// the modeled payload stays one scalar plus header — and lets the root
    /// sum in canonical id order.
    std::vector<std::pair<int, double>> parts;
  };

  /// Handles contributions arriving at `rank` in the tree (local deposit or
  /// child message); forwards up or completes.
  void absorb(ExecContext& ctx, int rank, int round,
              std::vector<std::pair<int, double>> parts, int count);

  int rank_of_pe(int pe) const;

  std::vector<int> active_pes_;            ///< participating PEs, tree order
  std::unordered_map<int, int> pe_rank_;   ///< pe -> rank
  std::vector<int> local_expected_;        ///< contributions expected per rank
  std::vector<int> subtree_expected_;      ///< total expected in subtree
  std::vector<std::unordered_map<int, NodeRound>> state_;  ///< per rank, per round
  EntryId entry_;
  std::function<void(int, double)> callback_;
  ReliableComm* reliable_ = nullptr;
  bool wire_ = false;
};

}  // namespace scalemd
