#include "rts/reduction.hpp"

#include <algorithm>
#include <cassert>

#include "rts/reliable.hpp"

namespace scalemd {

Reducer::Reducer(std::vector<int> pe_of_contributor, EntryId entry,
                 std::function<void(int round, double total)> callback)
    : entry_(entry), callback_(std::move(callback)) {
  // Participating PEs in ascending order; rank in this list defines the
  // binary reduction tree (parent(r) = (r-1)/2).
  std::vector<int> pes = pe_of_contributor;
  std::sort(pes.begin(), pes.end());
  pes.erase(std::unique(pes.begin(), pes.end()), pes.end());
  active_pes_ = pes;
  for (std::size_t r = 0; r < pes.size(); ++r) pe_rank_[pes[r]] = static_cast<int>(r);

  local_expected_.assign(active_pes_.size(), 0);
  for (int pe : pe_of_contributor) ++local_expected_[static_cast<std::size_t>(pe_rank_[pe])];

  // Subtree totals: local + children, computed bottom-up.
  subtree_expected_ = local_expected_;
  for (int r = static_cast<int>(active_pes_.size()) - 1; r >= 1; --r) {
    subtree_expected_[static_cast<std::size_t>((r - 1) / 2)] +=
        subtree_expected_[static_cast<std::size_t>(r)];
  }
  state_.resize(active_pes_.size());
}

int Reducer::rank_of_pe(int pe) const {
  const auto it = pe_rank_.find(pe);
  assert(it != pe_rank_.end());
  return it->second;
}

void Reducer::contribute(ExecContext& ctx, int id, int round, double value) {
  absorb(ctx, rank_of_pe(ctx.pe()), round, {{id, value}}, 1);
}

void Reducer::absorb(ExecContext& ctx, int rank, int round,
                     std::vector<std::pair<int, double>> parts, int count) {
  NodeRound& nr = state_[static_cast<std::size_t>(rank)][round];
  nr.received += count;
  nr.parts.insert(nr.parts.end(), parts.begin(), parts.end());
  if (nr.received < subtree_expected_[static_cast<std::size_t>(rank)]) return;

  std::vector<std::pair<int, double>> all = std::move(nr.parts);
  const int forwarded = nr.received;
  state_[static_cast<std::size_t>(rank)].erase(round);

  if (rank == 0) {
    // Canonical order: sort by contributor id, then sum left to right. The
    // arrival order depends on the schedule (and, under the threaded
    // backend, on real thread timing); the sorted order never does.
    std::sort(all.begin(), all.end(),
              [](const std::pair<int, double>& a, const std::pair<int, double>& b) {
                return a.first < b.first;
              });
    double total = 0.0;
    for (const auto& p : all) total += p.second;
    if (callback_) callback_(round, total);
    return;
  }
  const int parent_rank = (rank - 1) / 2;
  const int parent_pe = active_pes_[static_cast<std::size_t>(parent_rank)];
  TaskMsg msg;
  msg.entry = entry_;
  msg.bytes = 32;  // modeled payload: one scalar + header (pairs are bookkeeping)
  msg.priority = -1;  // reductions are latency-critical
  if (wire_) {
    msg.has_wire = true;
    msg.wire.ints.reserve(4 + all.size());
    msg.wire.ints.push_back(parent_rank);
    msg.wire.ints.push_back(round);
    msg.wire.ints.push_back(forwarded);
    msg.wire.ints.push_back(static_cast<std::int64_t>(all.size()));
    msg.wire.reals.reserve(all.size());
    for (const auto& p : all) {
      msg.wire.ints.push_back(p.first);
      msg.wire.reals.push_back(p.second);
    }
  }
  msg.fn = [this, parent_rank, round, all = std::move(all),
            forwarded](ExecContext& c) mutable {
    c.charge(1e-6);  // combine cost
    absorb(c, parent_rank, round, std::move(all), forwarded);
  };
  if (reliable_ != nullptr) {
    reliable_->send(ctx, parent_pe, std::move(msg));
  } else {
    ctx.send(parent_pe, std::move(msg));
  }
}

void Reducer::clear_pending() {
  for (auto& rounds : state_) rounds.clear();
}

}  // namespace scalemd
