#include "rts/reduction.hpp"

#include <algorithm>
#include <cassert>

#include "rts/reliable.hpp"

namespace scalemd {

Reducer::Reducer(std::vector<int> pe_of_contributor, EntryId entry,
                 std::function<void(int round, double total)> callback)
    : entry_(entry), callback_(std::move(callback)) {
  // Participating PEs in ascending order; rank in this list defines the
  // binary reduction tree (parent(r) = (r-1)/2).
  std::vector<int> pes = pe_of_contributor;
  std::sort(pes.begin(), pes.end());
  pes.erase(std::unique(pes.begin(), pes.end()), pes.end());
  active_pes_ = pes;
  for (std::size_t r = 0; r < pes.size(); ++r) pe_rank_[pes[r]] = static_cast<int>(r);

  local_expected_.assign(active_pes_.size(), 0);
  for (int pe : pe_of_contributor) ++local_expected_[static_cast<std::size_t>(pe_rank_[pe])];

  // Subtree totals: local + children, computed bottom-up.
  subtree_expected_ = local_expected_;
  for (int r = static_cast<int>(active_pes_.size()) - 1; r >= 1; --r) {
    subtree_expected_[static_cast<std::size_t>((r - 1) / 2)] +=
        subtree_expected_[static_cast<std::size_t>(r)];
  }
  state_.resize(active_pes_.size());
}

int Reducer::rank_of_pe(int pe) const {
  const auto it = pe_rank_.find(pe);
  assert(it != pe_rank_.end());
  return it->second;
}

void Reducer::contribute(ExecContext& ctx, int /*id*/, int round, double value) {
  absorb(ctx, rank_of_pe(ctx.pe()), round, value, 1);
}

void Reducer::absorb(ExecContext& ctx, int rank, int round, double value,
                     int count) {
  NodeRound& nr = state_[static_cast<std::size_t>(rank)][round];
  nr.received += count;
  nr.sum += value;
  if (nr.received < subtree_expected_[static_cast<std::size_t>(rank)]) return;

  const double total = nr.sum;
  const int forwarded = nr.received;
  state_[static_cast<std::size_t>(rank)].erase(round);

  if (rank == 0) {
    if (callback_) callback_(round, total);
    return;
  }
  const int parent_rank = (rank - 1) / 2;
  const int parent_pe = active_pes_[static_cast<std::size_t>(parent_rank)];
  TaskMsg msg;
  msg.entry = entry_;
  msg.bytes = 32;
  msg.priority = -1;  // reductions are latency-critical
  msg.fn = [this, parent_rank, round, total, forwarded](ExecContext& c) {
    c.charge(1e-6);  // combine cost
    absorb(c, parent_rank, round, total, forwarded);
  };
  if (reliable_ != nullptr) {
    reliable_->send(ctx, parent_pe, std::move(msg));
  } else {
    ctx.send(parent_pe, std::move(msg));
  }
}

void Reducer::clear_pending() {
  for (auto& rounds : state_) rounds.clear();
}

}  // namespace scalemd
