#include "rts/process_backend.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <queue>
#include <utility>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

namespace scalemd {

namespace {

int resolve_heartbeat_ms(int configured) {
  if (configured > 0) return configured;
  if (const char* env = std::getenv("SCALEMD_PROCESS_HEARTBEAT_MS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 500;
}

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

// ---------------------------------------------------------------------------
// HeartbeatDetector
// ---------------------------------------------------------------------------

HeartbeatDetector::HeartbeatDetector(int peers, int suspect_after, int dead_after)
    : peers_(static_cast<std::size_t>(peers)),
      suspect_after_(std::max(1, suspect_after)),
      dead_after_(std::max(suspect_after, dead_after)) {}

void HeartbeatDetector::on_pong(int peer) {
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  if (p.state == State::kDead) return;  // terminal: already being killed
  p.misses = 0;
  p.state = State::kAlive;
}

HeartbeatDetector::State HeartbeatDetector::on_tick(int peer) {
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  if (p.state == State::kDead) return p.state;
  ++p.misses;
  if (p.misses >= dead_after_) {
    p.state = State::kDead;
  } else if (p.misses >= suspect_after_) {
    p.state = State::kSuspect;
  }
  return p.state;
}

// ---------------------------------------------------------------------------
// Wire forms
// ---------------------------------------------------------------------------

namespace {

/// Serialized TaskMsg routed between workers (kTask frames).
struct TaskFrame {
  int dest_pe = 0;
  int src_pe = 0;
  EntryId entry = 0;
  std::uint64_t object = 0;
  std::int64_t priority = 0;
  std::uint64_t bytes = 0;
  double sent_at = 0.0;
  WirePayload wire;
};

std::vector<std::uint8_t> encode_task(const TaskFrame& t) {
  wire::Encoder e;
  e.i64(t.dest_pe);
  e.i64(t.src_pe);
  e.i64(t.entry);
  e.u64(t.object);
  e.i64(t.priority);
  e.u64(t.bytes);
  e.f64(t.sent_at);
  e.u64(t.wire.ints.size());
  for (std::int64_t v : t.wire.ints) e.i64(v);
  e.u64(t.wire.reals.size());
  for (double v : t.wire.reals) e.f64(v);
  return e.take();
}

bool decode_task(const std::vector<std::uint8_t>& payload, TaskFrame& t) {
  wire::Decoder d(payload);
  std::int64_t dest = 0, src = 0, entry = 0;
  d.i64(dest);
  d.i64(src);
  d.i64(entry);
  d.u64(t.object);
  d.i64(t.priority);
  d.u64(t.bytes);
  d.f64(t.sent_at);
  std::uint64_t n = 0;
  if (!d.count(n, 8)) return false;
  t.wire.ints.resize(static_cast<std::size_t>(n));
  for (auto& v : t.wire.ints) d.i64(v);
  if (!d.count(n, 8)) return false;
  t.wire.reals.resize(static_cast<std::size_t>(n));
  for (auto& v : t.wire.reals) d.f64(v);
  if (!d.done()) return false;
  t.dest_pe = static_cast<int>(dest);
  t.src_pe = static_cast<int>(src);
  t.entry = static_cast<EntryId>(entry);
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Worker-side runtime
// ---------------------------------------------------------------------------

/// Everything one forked worker needs: per-owned-PE mailboxes draining in
/// (priority, FIFO) order, buffered instrumentation records, and the frame
/// plumbing to the parent.
struct ProcessBackend::WorkerState {
  ProcessBackend* backend = nullptr;
  int worker = 0;
  int fd = -1;
  double t0 = 0.0;       ///< parent clock at run start
  double forked_at = 0.0;

  struct Ready {
    int priority = 0;
    std::uint64_t seq = 0;
    TaskMsg msg;
  };
  struct ReadyOrder {
    bool operator()(const Ready& a, const Ready& b) const {
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.seq > b.seq;
    }
  };
  std::vector<std::priority_queue<Ready, std::vector<Ready>, ReadyOrder>> boxes;
  std::uint64_t seq = 0;
  std::int64_t queued = 0;

  std::uint64_t offered = 0;   ///< sends + posts originated by this worker
  std::uint64_t executed = 0;
  std::uint64_t received = 0;  ///< task frames delivered by the parent
  std::vector<double> busy;
  std::vector<TaskRecord> task_records;
  std::vector<MsgRecord> msg_records;
  wire::FrameReader reader;

  double now() const { return t0 + (steady_seconds() - forked_at); }

  void enqueue(int src_pe, int dst_pe, TaskMsg msg, double sent_at) {
    msg_records.push_back(
        {src_pe, dst_pe, msg.entry, msg.bytes, sent_at, now()});
    Ready r;
    r.priority = msg.priority;
    r.seq = seq++;
    r.msg = std::move(msg);
    boxes[static_cast<std::size_t>(dst_pe)].push(std::move(r));
    ++queued;
  }

  void send_from(int src_pe, int dst_pe, TaskMsg msg, double sent_at) {
    ++offered;
    if (backend->owner_of(dst_pe) == worker) {
      enqueue(src_pe, dst_pe, std::move(msg), sent_at);
      return;
    }
    if (!msg.has_wire ||
        backend->decoders_.find(msg.entry) == backend->decoders_.end()) {
      std::fprintf(stderr,
                   "[scalemd] process worker %d: entry '%s' crosses a worker "
                   "boundary without a wire form/decoder\n",
                   worker, backend->entries_.name(msg.entry).c_str());
      _exit(3);
    }
    TaskFrame t;
    t.dest_pe = dst_pe;
    t.src_pe = src_pe;
    t.entry = msg.entry;
    t.object = msg.object;
    t.priority = msg.priority;
    t.bytes = msg.bytes;
    t.sent_at = sent_at;
    t.wire = std::move(msg.wire);
    if (!wire::write_frame(fd, wire::FrameType::kTask, encode_task(t))) {
      _exit(1);  // parent gone
    }
  }
};

/// Wall-clock worker context: charges are advisory, sends route locally or
/// over the wire, post() delivers as soon as possible on the same PE.
class ProcessBackend::WorkerContext final : public ExecContext {
 public:
  WorkerContext(WorkerState* ws, int pe, double start)
      : ExecContext(pe, start), ws_(ws) {}

  const MachineModel& machine() const override { return ws_->backend->machine_; }
  bool models_cost() const override { return false; }

  void send(int dest, TaskMsg msg) override {
    ws_->send_from(pe_, dest, std::move(msg), now());
  }

  void post(TaskMsg msg, double /*delay*/) override {
    ++ws_->offered;
    ws_->enqueue(pe_, pe_, std::move(msg), now());
  }

 private:
  WorkerState* ws_;
};

void ProcessBackend::worker_main(int worker, int fd, double t0) {
  WorkerState ws;
  ws.backend = this;
  ws.worker = worker;
  ws.fd = fd;
  ws.t0 = t0;
  ws.forked_at = steady_seconds();
  ws.boxes.resize(static_cast<std::size_t>(num_pes_));
  ws.busy.assign(static_cast<std::size_t>(num_pes_), 0.0);

  // Seed this worker's share of the injected bootstrap messages. The fork
  // copied pending_, so the closures (and everything they capture) are
  // valid here.
  for (auto& [pe, msg] : pending_) {
    if (owner_of(pe) != worker) continue;
    WorkerState::Ready r;
    r.priority = msg.priority;
    r.seq = ws.seq++;
    r.msg = std::move(msg);
    ws.boxes[static_cast<std::size_t>(pe)].push(std::move(r));
    ++ws.queued;
  }
  pending_.clear();

  auto handle_frame = [&](wire::FrameType type,
                          const std::vector<std::uint8_t>& payload) {
    switch (type) {
      case wire::FrameType::kTask: {
        TaskFrame t;
        if (!decode_task(payload, t)) {
          std::fprintf(stderr, "[scalemd] process worker %d: %s task frame\n",
                       worker, wire::wire_error_name(wire::WireError::kMalformed));
          _exit(2);
        }
        ++ws.received;
        const auto it = decoders_.find(t.entry);
        if (it == decoders_.end()) _exit(2);
        TaskMsg msg;
        msg.entry = t.entry;
        msg.object = t.object;
        msg.priority = static_cast<int>(t.priority);
        msg.bytes = static_cast<std::size_t>(t.bytes);
        msg.fn = it->second(t.wire);
        ws.enqueue(t.src_pe, t.dest_pe, std::move(msg), t.sent_at);
        break;
      }
      case wire::FrameType::kPing:
        if (!wire::write_frame(fd, wire::FrameType::kPong, {})) _exit(1);
        break;
      case wire::FrameType::kFlush: {
        wire::Encoder e;
        e.u64(ws.offered);
        e.u64(ws.executed);
        std::uint32_t owned = 0;
        for (int pe = worker; pe < num_pes_; pe += workers_) ++owned;
        e.u32(owned);
        for (int pe = worker; pe < num_pes_; pe += workers_) {
          e.u32(static_cast<std::uint32_t>(pe));
          e.f64(ws.busy[static_cast<std::size_t>(pe)]);
        }
        e.u64(ws.task_records.size());
        for (const TaskRecord& r : ws.task_records) {
          e.i64(r.pe);
          e.i64(r.entry);
          e.u64(r.object);
          e.f64(r.start);
          e.f64(r.duration);
        }
        e.u64(ws.msg_records.size());
        for (const MsgRecord& r : ws.msg_records) {
          e.i64(r.src_pe);
          e.i64(r.dst_pe);
          e.i64(r.entry);
          e.u64(r.bytes);
          e.f64(r.send_time);
          e.f64(r.recv_time);
        }
        e.blob(flush_hook_ ? flush_hook_(worker, workers_)
                           : std::vector<std::uint8_t>{});
        if (!wire::write_frame(fd, wire::FrameType::kState, e.take())) _exit(1);
        break;
      }
      case wire::FrameType::kExit:
        _exit(0);
      default:
        _exit(2);
    }
  };

  // Pulls whatever bytes are available (optionally blocking for the first)
  // and dispatches complete frames. _exit(1) on a vanished parent.
  auto pump = [&](bool wait) {
    if (wait) {
      for (;;) {
        struct pollfd p{fd, POLLIN, 0};
        const int r = poll(&p, 1, -1);
        if (r > 0) break;
        if (r < 0 && errno != EINTR) _exit(1);
      }
    }
    for (;;) {
      std::uint8_t buf[65536];
      const ssize_t r = recv(fd, buf, sizeof buf, MSG_DONTWAIT);
      if (r > 0) {
        ws.reader.feed(buf, static_cast<std::size_t>(r));
        if (static_cast<std::size_t>(r) < sizeof buf) break;
        continue;
      }
      if (r == 0) _exit(1);
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      _exit(1);
    }
    for (;;) {
      wire::FrameType type;
      std::vector<std::uint8_t> payload;
      const wire::WireError err = ws.reader.next(type, payload);
      if (err == wire::WireError::kTruncated) break;
      if (err != wire::WireError::kOk) {
        std::fprintf(stderr, "[scalemd] process worker %d: %s frame\n", worker,
                     wire::wire_error_name(err));
        _exit(2);
      }
      handle_frame(type, payload);
    }
  };

  std::uint64_t last_idle_report = ~0ull;
  for (;;) {
    // Drain every owned mailbox; tasks executed here can enqueue locally or
    // send across the wire. Pump between tasks so pings are answered even
    // during long drains.
    bool did = true;
    while (did) {
      did = false;
      for (int pe = worker; pe < num_pes_; pe += workers_) {
        auto& box = ws.boxes[static_cast<std::size_t>(pe)];
        while (!box.empty()) {
          WorkerState::Ready r =
              std::move(const_cast<WorkerState::Ready&>(box.top()));
          box.pop();
          --ws.queued;
          const double start = ws.now();
          WorkerContext ctx(&ws, pe, start);
          r.msg.fn(ctx);
          const double duration = ws.now() - start;
          ws.busy[static_cast<std::size_t>(pe)] += duration;
          ++ws.executed;
          ws.task_records.push_back(
              {pe, r.msg.entry, r.msg.object, start, duration, 0.0, 0.0, 0.0});
          did = true;
          pump(/*wait=*/false);
        }
      }
    }
    // Quiesced locally: tell the parent how many frames we have consumed,
    // then block for more work (or the flush/exit sequence).
    if (ws.received != last_idle_report || last_idle_report == ~0ull) {
      wire::Encoder e;
      e.u64(ws.received);
      if (!wire::write_frame(fd, wire::FrameType::kIdle, e.take())) _exit(1);
      last_idle_report = ws.received;
    }
    pump(/*wait=*/ws.queued == 0);
  }
}

// ---------------------------------------------------------------------------
// Parent-side supervisor
// ---------------------------------------------------------------------------

struct ProcessBackend::Supervisor {
  struct W {
    pid_t pid = -1;
    int fd = -1;
    wire::FrameReader reader;
    std::vector<std::uint8_t> outq;
    std::size_t outq_off = 0;
    std::uint64_t delivered = 0;  ///< task frames queued toward this worker
    std::uint64_t idle_received = 0;
    bool idle = false;
    bool pong_pending = false;
    bool state_received = false;
    std::vector<std::uint8_t> state;
  };
  std::vector<W> ws;
  bool flushing = false;

  void queue(int w, wire::FrameType type, const std::vector<std::uint8_t>& payload) {
    const std::vector<std::uint8_t> frame = wire::encode_frame(type, payload);
    ws[static_cast<std::size_t>(w)].outq.insert(
        ws[static_cast<std::size_t>(w)].outq.end(), frame.begin(), frame.end());
  }
};

ProcessBackend::ProcessBackend(int num_pes, const MachineModel& machine,
                               ProcessOptions opts)
    : num_pes_(num_pes),
      workers_(std::clamp(opts.workers, 1, num_pes)),
      machine_(machine),
      opts_(opts),
      busy_(static_cast<std::size_t>(num_pes), 0.0) {
  assert(num_pes > 0);
  opts_.workers = workers_;
  epoch_start_ns_ = std::chrono::steady_clock::now().time_since_epoch().count();
}

ProcessBackend::~ProcessBackend() = default;

double ProcessBackend::elapsed() const {
  return static_cast<double>(
             std::chrono::steady_clock::now().time_since_epoch().count() -
             epoch_start_ns_) *
         1e-9;
}

void ProcessBackend::register_decoder(EntryId entry, TaskDecoder dec) {
  decoders_[entry] = std::move(dec);
}

void ProcessBackend::set_state_hooks(
    std::function<std::vector<std::uint8_t>(int, int)> flush,
    std::function<void(int, const std::vector<std::uint8_t>&)> merge) {
  flush_hook_ = std::move(flush);
  merge_hook_ = std::move(merge);
}

void ProcessBackend::inject(int pe, TaskMsg msg, double /*time*/) {
  assert(pe >= 0 && pe < num_pes_);
  ++acct_.offered;
  if (dead_pes_.count(pe) != 0) {
    ++acct_.discarded_dead_pe;
    return;
  }
  pending_.emplace_back(pe, std::move(msg));
}

void ProcessBackend::merge_worker_blob(int worker,
                                       const std::vector<std::uint8_t>& blob) {
  wire::Decoder d(blob);
  std::uint64_t offered = 0, executed = 0;
  d.u64(offered);
  d.u64(executed);
  std::uint32_t owned = 0;
  d.u32(owned);
  for (std::uint32_t i = 0; i < owned && d.ok(); ++i) {
    std::uint32_t pe = 0;
    double busy = 0.0;
    d.u32(pe);
    d.f64(busy);
    if (pe < busy_.size()) busy_[pe] += busy;
  }
  std::uint64_t n = 0;
  d.count(n, 5 * 8);
  for (std::uint64_t i = 0; i < n && d.ok(); ++i) {
    std::int64_t pe = 0, entry = 0;
    TaskRecord r;
    d.i64(pe);
    d.i64(entry);
    d.u64(r.object);
    d.f64(r.start);
    d.f64(r.duration);
    r.pe = static_cast<int>(pe);
    r.entry = static_cast<EntryId>(entry);
    if (sink_ != nullptr && d.ok()) sink_->on_task(r);
  }
  d.count(n, 6 * 8);
  for (std::uint64_t i = 0; i < n && d.ok(); ++i) {
    std::int64_t src = 0, dst = 0, entry = 0;
    std::uint64_t bytes = 0;
    MsgRecord r;
    d.i64(src);
    d.i64(dst);
    d.i64(entry);
    d.u64(bytes);
    d.f64(r.send_time);
    d.f64(r.recv_time);
    r.src_pe = static_cast<int>(src);
    r.dst_pe = static_cast<int>(dst);
    r.entry = static_cast<EntryId>(entry);
    r.bytes = static_cast<std::size_t>(bytes);
    if (sink_ != nullptr && d.ok()) sink_->on_message(r);
  }
  std::vector<std::uint8_t> app;
  d.blob(app);
  if (!d.done()) {
    std::fprintf(stderr, "[scalemd] process backend: malformed state blob from worker %d\n",
                 worker);
    std::abort();
  }
  acct_.offered += offered;
  acct_.executed += executed;
  executed_ += executed;
  if (merge_hook_) merge_hook_(worker, app);
}

void ProcessBackend::fail_epoch(Supervisor& sup, int dead_worker, const char* why) {
  last_run_failed_ = true;
  std::fprintf(stderr, "[scalemd] process backend: worker %d failed (%s)\n",
               dead_worker, why);
  for (int pe = dead_worker; pe < num_pes_; pe += workers_) {
    if (dead_pes_.insert(pe).second && sink_ != nullptr) {
      sink_->on_fault({FaultKind::kPeFailure, pe, -1, elapsed(), 0.0});
    }
  }
  for (auto& w : sup.ws) {
    if (w.pid > 0) {
      kill(w.pid, SIGKILL);
      int status = 0;
      while (waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
      }
      w.pid = -1;
    }
    if (w.fd >= 0) {
      close(w.fd);
      w.fd = -1;
    }
  }
  // Nothing from this epoch merges; the epoch's injected messages are
  // discarded against the dead PE so the conservation identity holds.
  acct_.discarded_dead_pe += pending_.size();
  pending_.clear();
  horizon_ = elapsed();
}

void ProcessBackend::run() {
  last_run_failed_ = false;
  if (pending_.empty()) return;

  const double t0 = elapsed();
  Supervisor sup;
  sup.ws.resize(static_cast<std::size_t>(workers_));

  // Create every socketpair before the first fork, so each child can close
  // all ends it does not own.
  std::vector<std::array<int, 2>> pairs(static_cast<std::size_t>(workers_));
  for (int w = 0; w < workers_; ++w) {
    if (socketpair(AF_UNIX, SOCK_STREAM, 0, pairs[static_cast<std::size_t>(w)].data()) != 0) {
      std::perror("[scalemd] socketpair");
      std::abort();
    }
  }
  for (int w = 0; w < workers_; ++w) {
    const pid_t pid = fork();
    if (pid < 0) {
      std::perror("[scalemd] fork");
      std::abort();
    }
    if (pid == 0) {
      for (int o = 0; o < workers_; ++o) {
        close(pairs[static_cast<std::size_t>(o)][0]);
        if (o != w) close(pairs[static_cast<std::size_t>(o)][1]);
      }
      worker_main(w, pairs[static_cast<std::size_t>(w)][1], t0);
      _exit(0);  // unreachable
    }
    sup.ws[static_cast<std::size_t>(w)].pid = pid;
  }
  for (int w = 0; w < workers_; ++w) {
    close(pairs[static_cast<std::size_t>(w)][1]);
    const int fd = pairs[static_cast<std::size_t>(w)][0];
    fcntl(fd, F_SETFL, fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
    sup.ws[static_cast<std::size_t>(w)].fd = fd;
  }

  auto chaos_check = [&]() {
    if (kill_fired_ || opts_.kill_worker < 0 || opts_.kill_worker >= workers_) {
      return;
    }
    if (frames_routed_ >= opts_.kill_after_frames) {
      kill_fired_ = true;
      kill(sup.ws[static_cast<std::size_t>(opts_.kill_worker)].pid, SIGKILL);
    }
  };
  chaos_check();  // kill_after_frames == 0: die right out of the gate

  const int hb_ms = resolve_heartbeat_ms(opts_.heartbeat_ms);
  HeartbeatDetector det(workers_, opts_.suspect_after, opts_.dead_after);
  double last_tick = steady_seconds();

  int failed_worker = -1;
  const char* fail_why = nullptr;

  auto route_task = [&](const std::vector<std::uint8_t>& payload) -> bool {
    wire::Decoder d(payload);
    std::int64_t dest = 0;
    if (!d.i64(dest) || dest < 0 || dest >= num_pes_) return false;
    ++frames_routed_;
    chaos_check();
    if (dead_pes_.count(static_cast<int>(dest)) != 0) {
      ++acct_.discarded_dead_pe;
      return true;
    }
    const int w = owner_of(static_cast<int>(dest));
    sup.queue(w, wire::FrameType::kTask, payload);
    ++sup.ws[static_cast<std::size_t>(w)].delivered;
    sup.ws[static_cast<std::size_t>(w)].idle = false;
    return true;
  };

  while (failed_worker < 0) {
    std::vector<struct pollfd> pfds(static_cast<std::size_t>(workers_));
    for (int w = 0; w < workers_; ++w) {
      auto& ww = sup.ws[static_cast<std::size_t>(w)];
      pfds[static_cast<std::size_t>(w)] = {
          ww.fd, static_cast<short>(POLLIN | (ww.outq.size() > ww.outq_off ? POLLOUT : 0)),
          0};
    }
    const int r = poll(pfds.data(), pfds.size(), hb_ms);
    if (r < 0 && errno != EINTR) {
      failed_worker = 0;
      fail_why = "poll";
      break;
    }

    for (int w = 0; w < workers_ && failed_worker < 0; ++w) {
      auto& ww = sup.ws[static_cast<std::size_t>(w)];
      const short ev = pfds[static_cast<std::size_t>(w)].revents;
      if (ev & (POLLIN | POLLHUP | POLLERR)) {
        for (;;) {
          std::uint8_t buf[65536];
          const ssize_t n = recv(ww.fd, buf, sizeof buf, MSG_DONTWAIT);
          if (n > 0) {
            ww.reader.feed(buf, static_cast<std::size_t>(n));
            if (static_cast<std::size_t>(n) < sizeof buf) break;
            continue;
          }
          if (n == 0) {
            failed_worker = w;
            fail_why = "connection closed";
            break;
          }
          if (errno == EINTR) continue;
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          failed_worker = w;
          fail_why = "read error";
          break;
        }
        while (failed_worker < 0) {
          wire::FrameType type;
          std::vector<std::uint8_t> payload;
          const wire::WireError err = ww.reader.next(type, payload);
          if (err == wire::WireError::kTruncated) break;
          if (err != wire::WireError::kOk) {
            failed_worker = w;
            fail_why = wire::wire_error_name(err);
            break;
          }
          switch (type) {
            case wire::FrameType::kTask:
              if (!route_task(payload)) {
                failed_worker = w;
                fail_why = "malformed task frame";
              }
              break;
            case wire::FrameType::kIdle: {
              wire::Decoder d(payload);
              std::uint64_t received = 0;
              if (!d.u64(received)) {
                failed_worker = w;
                fail_why = "malformed idle frame";
                break;
              }
              ww.idle = true;
              ww.idle_received = received;
              break;
            }
            case wire::FrameType::kPong:
              ww.pong_pending = false;
              det.on_pong(w);
              break;
            case wire::FrameType::kState:
              ww.state = std::move(payload);
              ww.state_received = true;
              break;
            default:
              failed_worker = w;
              fail_why = "unexpected frame type";
              break;
          }
        }
      }
      if (failed_worker >= 0) break;
      if ((ev & POLLOUT) || ww.outq.size() > ww.outq_off) {
        while (ww.outq_off < ww.outq.size()) {
          const ssize_t n = send(ww.fd, ww.outq.data() + ww.outq_off,
                                 ww.outq.size() - ww.outq_off, MSG_NOSIGNAL);
          if (n > 0) {
            ww.outq_off += static_cast<std::size_t>(n);
            continue;
          }
          if (n < 0 && errno == EINTR) continue;
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          failed_worker = w;
          fail_why = "write error";
          break;
        }
        if (ww.outq_off == ww.outq.size()) {
          ww.outq.clear();
          ww.outq_off = 0;
        }
      }
    }
    if (failed_worker >= 0) break;

    // Heartbeat: one tick per interval. A worker that missed enough
    // consecutive pings is declared dead and killed — this is what catches
    // a hung (rather than crashed) worker.
    const double now = steady_seconds();
    if (now - last_tick >= static_cast<double>(hb_ms) / 1000.0) {
      last_tick = now;
      for (int w = 0; w < workers_ && failed_worker < 0; ++w) {
        auto& ww = sup.ws[static_cast<std::size_t>(w)];
        if (ww.pong_pending) {
          if (det.on_tick(w) == HeartbeatDetector::State::kDead) {
            kill(ww.pid, SIGKILL);
            failed_worker = w;
            fail_why = "heartbeat lost";
          }
        } else {
          ww.pong_pending = true;
          sup.queue(w, wire::FrameType::kPing, {});
        }
      }
      if (failed_worker >= 0) break;
    }

    if (!sup.flushing) {
      // Distributed quiescence: every worker has reported idle after
      // consuming everything we routed to it, and nothing is queued on our
      // side. Per-socket FIFO makes the counts sound: an idle report that
      // matches our delivery count proves the worker saw every frame we
      // ever sent before it went idle.
      bool quiescent = true;
      for (const auto& ww : sup.ws) {
        if (!ww.idle || ww.idle_received != ww.delivered ||
            ww.outq.size() > ww.outq_off) {
          quiescent = false;
          break;
        }
      }
      if (quiescent) {
        sup.flushing = true;
        for (int w = 0; w < workers_; ++w) {
          sup.queue(w, wire::FrameType::kFlush, {});
        }
      }
    } else {
      bool all = true;
      for (const auto& ww : sup.ws) all = all && ww.state_received;
      if (all) break;
    }
  }

  if (failed_worker >= 0) {
    fail_epoch(sup, failed_worker, fail_why != nullptr ? fail_why : "unknown");
    return;
  }

  // Clean shutdown: exit every worker, reap, then merge in worker order so
  // the parent's merged state is deterministic.
  for (int w = 0; w < workers_; ++w) {
    auto& ww = sup.ws[static_cast<std::size_t>(w)];
    std::vector<std::uint8_t> tail(ww.outq.begin() + static_cast<std::ptrdiff_t>(ww.outq_off),
                                   ww.outq.end());
    const std::vector<std::uint8_t> exit_frame =
        wire::encode_frame(wire::FrameType::kExit, {});
    tail.insert(tail.end(), exit_frame.begin(), exit_frame.end());
    if (!wire::write_all(ww.fd, tail)) {
      fail_epoch(sup, w, "write error at exit");
      return;
    }
    ww.outq.clear();
    ww.outq_off = 0;
  }
  for (auto& ww : sup.ws) {
    int status = 0;
    while (waitpid(ww.pid, &status, 0) < 0 && errno == EINTR) {
    }
    ww.pid = -1;
    close(ww.fd);
    ww.fd = -1;
  }
  pending_.clear();
  for (int w = 0; w < workers_; ++w) {
    merge_worker_blob(w, sup.ws[static_cast<std::size_t>(w)].state);
  }
  horizon_ = elapsed();
}

}  // namespace scalemd
