#include "rts/exec_backend.hpp"

#include <cstring>

namespace scalemd {

EntryId EntryRegistry::add(std::string name, WorkCategory category) {
  names_.push_back(std::move(name));
  categories_.push_back(category);
  return static_cast<EntryId>(names_.size()) - 1;
}

const char* backend_name(BackendKind k) {
  switch (k) {
    case BackendKind::kSimulated:
      return "sim";
    case BackendKind::kThreaded:
      return "threads";
    case BackendKind::kProcess:
      return "process";
  }
  return "?";
}

bool backend_from_name(const char* name, BackendKind& out) {
  if (std::strcmp(name, "sim") == 0 || std::strcmp(name, "simulated") == 0) {
    out = BackendKind::kSimulated;
    return true;
  }
  if (std::strcmp(name, "threads") == 0 || std::strcmp(name, "threaded") == 0) {
    out = BackendKind::kThreaded;
    return true;
  }
  if (std::strcmp(name, "process") == 0) {
    out = BackendKind::kProcess;
    return true;
  }
  return false;
}

}  // namespace scalemd
