#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace scalemd {
namespace wire {

/// Frame types of the process-backend wire protocol (parent <-> worker) and
/// the on-disk checkpoint container. Values are part of the wire format.
enum class FrameType : std::uint32_t {
  kTask = 1,        ///< serialized TaskMsg routed between workers
  kIdle = 2,        ///< worker -> parent: drained; payload = frames received
  kPing = 3,        ///< parent -> worker heartbeat probe
  kPong = 4,        ///< worker -> parent heartbeat reply
  kFlush = 5,       ///< parent -> worker: serialize and report state
  kState = 6,       ///< worker -> parent: end-of-run state blob
  kExit = 7,        ///< parent -> worker: terminate cleanly
  kCheckpoint = 8,  ///< on-disk coordinated checkpoint blob
};

/// Named decode outcomes. Every malformed input maps to one of these —
/// never UB, never an unbounded allocation (the 2000-iter mutation fuzz in
/// tests/test_wire.cpp holds the layer to that).
enum class WireError {
  kOk = 0,
  kTruncated,    ///< fewer bytes than the header/payload/checksum need
  kBadMagic,     ///< leading magic mismatch (stream out of sync)
  kBadVersion,   ///< unknown major version
  kBadType,      ///< frame type outside the known range
  kOversized,    ///< declared payload length above kMaxPayload
  kBadChecksum,  ///< payload checksum mismatch (corruption)
  kMalformed,    ///< payload structure inconsistent with its own counts
  kIo,           ///< read/write syscall failed (not EINTR/EAGAIN)
};

const char* wire_error_name(WireError e);

inline constexpr std::uint32_t kMagic = 0x57444D53u;  // "SMDW" little-endian
inline constexpr std::uint16_t kVersionMajor = 1;
inline constexpr std::uint16_t kVersionMinor = 0;
/// Header: magic u32, major u16, minor u16, type u32, payload length u64.
inline constexpr std::size_t kHeaderSize = 4 + 2 + 2 + 4 + 8;
/// Trailer: FNV-1a-64 checksum over the payload bytes.
inline constexpr std::size_t kTrailerSize = 8;
/// Hard cap on a declared payload length: a corrupt length field must not
/// turn into a multi-gigabyte allocation.
inline constexpr std::uint64_t kMaxPayload = 1ull << 30;

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t len);

/// Builds a complete frame (header + payload + checksum).
std::vector<std::uint8_t> encode_frame(FrameType type,
                                       const std::vector<std::uint8_t>& payload);

/// Decodes one frame from data[0..len). On kOk, fills type/payload and sets
/// `consumed` to the frame's total size. kTruncated means the prefix is
/// consistent but incomplete (feed more bytes); everything else is a hard
/// protocol error.
WireError decode_frame(const std::uint8_t* data, std::size_t len,
                       FrameType& type, std::vector<std::uint8_t>& payload,
                       std::size_t& consumed);

/// Incremental frame extraction over a byte stream (the parent's
/// non-blocking sockets deliver arbitrary chunks).
class FrameReader {
 public:
  void feed(const std::uint8_t* data, std::size_t n);
  /// kOk: one frame extracted into type/payload. kTruncated: need more
  /// bytes (not an error on a live stream). Anything else: the stream is
  /// corrupt and cannot be resynchronized.
  WireError next(FrameType& type, std::vector<std::uint8_t>& payload);

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t off_ = 0;
};

// --- payload encoding ------------------------------------------------------

/// Append-only little-endian payload builder. Doubles cross the wire as raw
/// IEEE-754 bits, so trajectories stay bitwise identical across the process
/// boundary.
class Encoder {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void blob(const std::vector<std::uint8_t>& b);

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked payload reader: every accessor fails (and latches the
/// error) instead of reading past the end, and element counts are validated
/// against the bytes actually remaining before any allocation.
class Decoder {
 public:
  Decoder(const std::uint8_t* data, std::size_t len) : data_(data), len_(len) {}
  explicit Decoder(const std::vector<std::uint8_t>& b)
      : Decoder(b.data(), b.size()) {}

  bool u8(std::uint8_t& v);
  bool u32(std::uint32_t& v);
  bool u64(std::uint64_t& v);
  bool i64(std::int64_t& v);
  bool f64(double& v);
  bool blob(std::vector<std::uint8_t>& b);
  /// Reads an element count and validates count * elem_size against the
  /// remaining bytes, so a corrupt count cannot drive a huge resize.
  bool count(std::uint64_t& n, std::size_t elem_size);

  bool ok() const { return ok_; }
  /// True when the payload was consumed exactly (trailing garbage is a
  /// malformed payload, not a success).
  bool done() const { return ok_ && pos_ == len_; }
  std::size_t remaining() const { return len_ - pos_; }

 private:
  bool take(void* out, std::size_t n);

  const std::uint8_t* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// --- fd I/O ----------------------------------------------------------------

/// Writes all of buf, retrying on EINTR and waiting out EAGAIN; uses
/// MSG_NOSIGNAL on sockets (plain write on files) so a dead peer yields
/// EPIPE instead of SIGPIPE. False on any hard error.
bool write_all(int fd, const std::uint8_t* buf, std::size_t n);
inline bool write_all(int fd, const std::vector<std::uint8_t>& b) {
  return write_all(fd, b.data(), b.size());
}

/// Reads exactly n bytes, retrying on EINTR and blocking through EAGAIN.
/// False on EOF or hard error.
bool read_exact(int fd, std::uint8_t* buf, std::size_t n);

/// Writes one framed payload to fd / reads one back (checkpoint files and
/// the blocking worker side of the socketpair).
bool write_frame(int fd, FrameType type, const std::vector<std::uint8_t>& payload);
WireError read_frame(int fd, FrameType& type, std::vector<std::uint8_t>& payload);

}  // namespace wire
}  // namespace scalemd
