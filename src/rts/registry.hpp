#pragma once

#include <cstdint>
#include <vector>

namespace scalemd {

/// Location directory for migratable objects (chares): maps object ids to
/// the virtual processor currently hosting them. In real Charm++ location
/// management is distributed with caching; here a single in-process
/// directory is exact and free, while migration *costs* are modeled by the
/// load balancer when it moves objects (see lb/ and core/parallel_sim).
class ChareDirectory {
 public:
  using ObjId = std::uint32_t;

  /// Registers a new object on `pe`; returns its id.
  ObjId add(int pe) {
    location_.push_back(pe);
    return static_cast<ObjId>(location_.size()) - 1;
  }

  int pe_of(ObjId id) const { return location_[id]; }
  void migrate(ObjId id, int new_pe) { location_[id] = new_pe; }
  std::size_t count() const { return location_.size(); }

  const std::vector<int>& locations() const { return location_; }

 private:
  std::vector<int> location_;
};

}  // namespace scalemd
