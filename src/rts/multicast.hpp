#pragma once

#include <functional>
#include <span>

#include "des/simulator.hpp"

namespace scalemd {

class ReliableComm;

/// Sends the same logical payload to every PE in `dest_pes` from within a
/// running task. This is the operation optimized in paper section 4.2.3:
///
/// * naive (optimized = false): each destination pays a full message
///   allocation + packing cost (bytes * pack_byte_cost) plus send overhead —
///   the behavior that made integration consume "more than half of the time
///   ... sending 20-30 identical messages";
/// * optimized (optimized = true): one packing/allocation for the whole
///   multicast, then only per-destination send overhead.
///
/// `make_task` builds the task message for each destination PE.
///
/// When `reliable` is non-null, every branch of the multicast goes through
/// the reliable-delivery layer (dedup + ack/timeout retry) instead of a raw
/// send; on a fault-free machine the layer is pass-through, so the two
/// paths cost the same.
void multicast(ExecContext& ctx, std::span<const int> dest_pes, std::size_t bytes,
               bool optimized, const std::function<TaskMsg(int pe)>& make_task,
               ReliableComm* reliable = nullptr);

}  // namespace scalemd
