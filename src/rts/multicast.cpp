#include "rts/multicast.hpp"

#include "rts/reliable.hpp"

namespace scalemd {

void multicast(ExecContext& ctx, std::span<const int> dest_pes, std::size_t bytes,
               bool optimized, const std::function<TaskMsg(int pe)>& make_task,
               ReliableComm* reliable) {
  const double pack = static_cast<double>(bytes) * ctx.machine().pack_byte_cost;
  if (optimized && !dest_pes.empty()) {
    ctx.charge_pack(pack);
  }
  for (int pe : dest_pes) {
    if (!optimized) ctx.charge_pack(pack);
    TaskMsg msg = make_task(pe);
    msg.bytes = bytes;
    if (reliable != nullptr) {
      reliable->send(ctx, pe, std::move(msg));
    } else {
      ctx.send(pe, std::move(msg));
    }
  }
}

}  // namespace scalemd
