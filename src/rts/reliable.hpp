#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "des/simulator.hpp"

namespace scalemd {

/// Knobs of the reliable-delivery layer (see ReliableComm).
struct ReliableOptions {
  /// Seconds to wait for an ack before the first retry. <= 0 means "auto":
  /// derived per message from the machine model (a generous multiple of the
  /// round-trip estimate, so fault-free sends never time out spuriously).
  double ack_timeout = 0.0;
  double backoff = 2.0;        ///< timeout multiplier after each retry
  int max_attempts = 6;        ///< total send attempts before giving up
  std::size_t ack_bytes = 16;  ///< wire size of an ack message
};

/// Counters of what the reliable layer did (folded into the resilience
/// audit next to the injected-fault counters).
struct ReliableStats {
  std::uint64_t reliable_sends = 0;         ///< first-attempt sends
  std::uint64_t retries = 0;                ///< timeout-driven resends
  std::uint64_t duplicates_suppressed = 0;  ///< dedup filtered an arrival
  std::uint64_t acks_sent = 0;
  std::uint64_t abandoned = 0;  ///< gave up (sum of the three below)
  /// Why each abandonment happened — the invariant layer treats them very
  /// differently. Destination dead: expected under PE failure. Delivered:
  /// the payload executed but every ack was lost — benign (dedup already
  /// protected against the retries). Lost: a live PE never got the payload
  /// in max_attempts tries; unless a restart replays it, work is missing.
  std::uint64_t abandoned_dead_pe = 0;
  std::uint64_t abandoned_delivered = 0;
  std::uint64_t abandoned_lost = 0;
};

/// Sequence-numbered, idempotent message delivery over the unreliable
/// simulated network: every reliable send carries a globally unique id; the
/// receiver suppresses ids it has already delivered (so duplicated or
/// retried messages execute exactly once) and acks every arrival; the
/// sender retries on an ack timeout with exponential backoff, and abandons
/// the send once the destination PE is known dead or `max_attempts` is
/// exhausted (recorded as a lost message for the invariant layer to audit).
///
/// The layer arms itself only when the simulator has a non-empty FaultPlan:
/// on a fault-free machine ReliableComm::send degrades to a plain
/// ExecContext::send with no wrapper, no acks and no timers, so fault-free
/// event traces are bit-identical with the layer enabled or absent.
///
/// One instance serves all PEs (the DES runs in one address space); it must
/// outlive the simulation run. Retry timers use ExecContext::post, which is
/// exempt from message faults, so a pending send can never be stranded.
class ReliableComm {
 public:
  ReliableComm(Simulator& sim, ReliableOptions opts = {});

  /// Sends `msg` to `dest` with exactly-once delivery (see class docs).
  /// Same-PE sends bypass the protocol: local delivery cannot be faulted.
  void send(ExecContext& ctx, int dest, TaskMsg msg);

  /// True when sends are actually wrapped (non-empty fault plan).
  bool armed() const { return !sim_->fault_plan().empty(); }

  const ReliableStats& stats() const { return stats_; }

  /// Drops all sender-side pending state (un-acked sends and their timers
  /// become no-ops). Used by checkpoint restart: replayed sends get fresh
  /// ids, so stale retries must not resurrect pre-restart messages.
  void clear_pending();

 private:
  struct Pending {
    int dest = 0;
    TaskMsg msg;          ///< the wrapped message, resent verbatim
    int attempts = 1;
    double timeout = 0.0; ///< current backoff interval
  };

  void send_ack(ExecContext& ctx, int to_pe, std::uint64_t id);
  void arm_timer(ExecContext& ctx, std::uint64_t id, double delay);
  void on_timer(ExecContext& ctx, std::uint64_t id);
  double initial_timeout(std::size_t bytes) const;

  Simulator* sim_;
  ReliableOptions opts_;
  EntryId ack_entry_;
  EntryId timer_entry_;
  std::uint64_t next_id_ = 1;  ///< never reused, even across restarts
  /// Per source PE: un-acked reliable sends by id.
  std::vector<std::unordered_map<std::uint64_t, Pending>> pending_;
  /// Per destination PE: ids already delivered (dedup filter).
  std::vector<std::unordered_set<std::uint64_t>> delivered_;
  ReliableStats stats_;
};

}  // namespace scalemd
