#include "rts/threaded_backend.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace scalemd {

namespace {

int resolve_workers(int num_pes, int threads) {
  const int want = threads > 0 ? threads : ThreadPool::default_threads();
  return std::clamp(want, 1, num_pes);
}

int resolve_watchdog_ms() {
  if (const char* env = std::getenv("SCALEMD_THREADED_WATCHDOG_MS")) {
    return std::atoi(env);  // 0 or negative disables
  }
  return 120000;
}

}  // namespace

/// Wall-clock ExecContext: start() is the measured task start, charges are
/// advisory (models_cost() == false), sends enqueue into mailboxes with no
/// modeled network cost, and post() delivers as soon as possible.
class ThreadedBackend::Context final : public ExecContext {
 public:
  Context(ThreadedBackend* backend, int pe, double start)
      : ExecContext(pe, start), backend_(backend) {}

  const MachineModel& machine() const override { return backend_->machine_; }
  bool models_cost() const override { return false; }

  void send(int dest, TaskMsg msg) override {
    backend_->enqueue(pe_, dest, std::move(msg), now(), dest != pe_);
  }

  void post(TaskMsg msg, double /*delay*/) override {
    backend_->enqueue(pe_, pe_, std::move(msg), now(), /*remote=*/false);
  }

 private:
  ThreadedBackend* backend_;
};

ThreadedBackend::ThreadedBackend(int num_pes, const MachineModel& machine,
                                 int threads)
    : machine_(machine),
      pool_(resolve_workers(num_pes, threads)),
      watchdog_ms_(resolve_watchdog_ms()),
      epoch_(std::chrono::steady_clock::now()) {
  assert(num_pes > 0);
  pes_.reserve(static_cast<std::size_t>(num_pes));
  for (int p = 0; p < num_pes; ++p) pes_.push_back(std::make_unique<Pe>());
  workers_.reserve(static_cast<std::size_t>(pool_.size()));
  for (int w = 0; w < pool_.size(); ++w) {
    workers_.push_back(std::make_unique<Worker>());
  }
}

ThreadedBackend::~ThreadedBackend() = default;

void ThreadedBackend::enqueue(int src_pe, int dst_pe, TaskMsg msg,
                              double sent_at, bool remote) {
  assert(dst_pe >= 0 && dst_pe < num_pes());
  offered_.fetch_add(1, std::memory_order_relaxed);
  // Counted before the push and decremented only after the task body has
  // finished, so in_flight_ == 0 means quiescence: nothing queued, nothing
  // executing, and (since only tasks and the pre-run caller send) nothing
  // that could still produce work.
  in_flight_.fetch_add(1, std::memory_order_acq_rel);

  Ready r;
  r.priority = msg.priority;
  r.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  r.src_pe = src_pe;
  r.remote = remote;
  r.sent_at = sent_at;
  const EntryId entry = msg.entry;
  const std::size_t bytes = msg.bytes;
  r.msg = std::move(msg);

  Pe& pe = *pes_[static_cast<std::size_t>(dst_pe)];
  {
    std::lock_guard<std::mutex> lock(pe.mu);
    pe.box.push(std::move(r));
  }
  if (sink_ != nullptr) {
    const double at = elapsed();
    std::lock_guard<std::mutex> lock(sink_mu_);
    sink_->on_message({src_pe, dst_pe, entry, bytes, sent_at, at});
  }
  Worker& w = *workers_[static_cast<std::size_t>(dst_pe) %
                        static_cast<std::size_t>(workers())];
  {
    std::lock_guard<std::mutex> lock(w.mu);
    ++w.gen;
  }
  w.cv.notify_one();
}

void ThreadedBackend::inject(int pe, TaskMsg msg, double /*time*/) {
  enqueue(pe, pe, std::move(msg), elapsed(), /*remote=*/false);
}

void ThreadedBackend::run() {
  if (in_flight_.load(std::memory_order_acquire) == 0) return;
  pool_.run(static_cast<std::size_t>(workers()),
            [this](std::size_t t, int) { drain_worker(static_cast<int>(t)); });
  horizon_ = elapsed();
  assert(in_flight_.load(std::memory_order_acquire) == 0);
}

bool ThreadedBackend::drain_pe(int pe_id) {
  Pe& pe = *pes_[static_cast<std::size_t>(pe_id)];
  bool did = false;
  for (;;) {
    Ready r;
    {
      std::lock_guard<std::mutex> lock(pe.mu);
      if (pe.box.empty()) break;
      r = std::move(const_cast<Ready&>(pe.box.top()));
      pe.box.pop();
    }
    const double start = elapsed();
    Context ctx(this, pe_id, start);
    r.msg.fn(ctx);
    const double duration = elapsed() - start;
    pe.busy_sum += duration;
    executed_.fetch_add(1, std::memory_order_relaxed);
    if (sink_ != nullptr) {
      // Wall-clock records: duration is measured; the modeled recv/pack/send
      // attributions have no measured counterpart and are reported as zero.
      std::lock_guard<std::mutex> lock(sink_mu_);
      sink_->on_task(
          {pe_id, r.msg.entry, r.msg.object, start, duration, 0.0, 0.0, 0.0});
    }
    if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) wake_all();
    did = true;
  }
  return did;
}

void ThreadedBackend::drain_worker(int w) {
  Worker& me = *workers_[static_cast<std::size_t>(w)];
  const int n = num_pes();
  const int stride = workers();
  for (;;) {
    // Sample the generation *before* scanning: an enqueue that lands after
    // the scan bumps gen past `seen`, so the wait below returns immediately
    // instead of losing the wakeup.
    std::uint64_t seen;
    {
      std::lock_guard<std::mutex> lock(me.mu);
      seen = me.gen;
    }
    bool did = false;
    for (int pe = w; pe < n; pe += stride) {
      did = drain_pe(pe) || did;
    }
    if (did) continue;  // executed tasks may have enqueued onto our PEs
    if (in_flight_.load(std::memory_order_acquire) == 0) return;
    std::unique_lock<std::mutex> lock(me.mu);
    const auto pred = [&] {
      return me.gen != seen ||
             in_flight_.load(std::memory_order_acquire) == 0;
    };
    if (watchdog_ms_ <= 0) {
      me.cv.wait(lock, pred);
    } else {
      // Watchdog wait: slice the blocking wait so a worker stuck with
      // in-flight work but no global progress turns into a diagnostic
      // abort instead of a silent hang. Progress anywhere (another
      // worker executing tasks) resets the stall clock.
      auto stalled_since = std::chrono::steady_clock::now();
      std::uint64_t last_executed = executed_.load(std::memory_order_acquire);
      const auto slice =
          std::chrono::milliseconds(std::min(watchdog_ms_, 1000));
      while (!me.cv.wait_for(lock, slice, pred)) {
        const std::uint64_t ex = executed_.load(std::memory_order_acquire);
        const auto now = std::chrono::steady_clock::now();
        if (ex != last_executed) {
          last_executed = ex;
          stalled_since = now;
          continue;
        }
        if (now - stalled_since >= std::chrono::milliseconds(watchdog_ms_)) {
          lock.unlock();
          dump_stall_and_abort(w);
        }
      }
    }
    if (in_flight_.load(std::memory_order_acquire) == 0 && me.gen == seen) {
      return;
    }
  }
}

void ThreadedBackend::dump_stall_and_abort(int w) {
  std::fprintf(stderr,
               "[scalemd] threaded backend watchdog: worker %d stalled %d ms "
               "with %lld task(s) in flight and no progress\n",
               w, watchdog_ms_,
               static_cast<long long>(in_flight_.load(std::memory_order_acquire)));
  for (std::size_t p = 0; p < pes_.size(); ++p) {
    Pe& pe = *pes_[p];
    // try_lock: the stalled (or crashed) owner may hold the mutex; "busy"
    // is itself a diagnostic.
    if (pe.mu.try_lock()) {
      const std::size_t depth = pe.box.size();
      pe.mu.unlock();
      if (depth > 0) {
        std::fprintf(stderr, "[scalemd]   pe %zu: %zu queued\n", p, depth);
      }
    } else {
      std::fprintf(stderr, "[scalemd]   pe %zu: mailbox busy (mutex held)\n", p);
    }
  }
  std::abort();
}

void ThreadedBackend::wake_all() {
  // Called when in_flight_ hits zero: bump every worker's generation so
  // waiting predicates trip, then notify. Each worker re-scans, finds
  // nothing, sees in_flight_ == 0 and exits.
  for (auto& w : workers_) {
    {
      std::lock_guard<std::mutex> lock(w->mu);
      ++w->gen;
    }
    w->cv.notify_all();
  }
}

bool ThreadedBackend::idle() const {
  return in_flight_.load(std::memory_order_acquire) == 0;
}

std::vector<double> ThreadedBackend::busy_times() const {
  std::vector<double> out;
  out.reserve(pes_.size());
  for (const auto& pe : pes_) out.push_back(pe->busy_sum);
  return out;
}

std::uint64_t ThreadedBackend::tasks_executed() const {
  return executed_.load(std::memory_order_acquire);
}

const MessageAccounting& ThreadedBackend::accounting() const {
  acct_.offered = offered_.load(std::memory_order_acquire);
  acct_.executed = executed_.load(std::memory_order_acquire);
  const std::int64_t pending = in_flight_.load(std::memory_order_acquire);
  acct_.pending_ready =
      pending > 0 ? static_cast<std::uint64_t>(pending) : 0;
  acct_.pending_network = 0;
  return acct_;
}

}  // namespace scalemd
