#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/scenario.hpp"

namespace scalemd {

/// One simulation job submitted to the serve layer: a scenario (reusing the
/// fuzz text schema for the topology preset + engine/kernel/LB config + step
/// budget) plus scheduling metadata. `replicas` > 1 asks the expander to fan
/// the job out into that many independent trajectories with derived seeds.
struct JobSpec {
  std::string name;
  ScenarioSpec scenario;
  int priority = 0;   ///< higher runs first; ties broken FIFO
  int replicas = 1;   ///< expand_batch fans out to this many jobs
};

/// A parsed batch file: an ordered list of jobs. Order is meaningful — it is
/// the FIFO tiebreak within a priority class.
struct BatchSpec {
  std::vector<JobSpec> jobs;
};

/// Located batch-file parse/validation error. Unlike FaultPlanParseError this
/// carries the *job* context too: a batch file holds many jobs, and "line 37:
/// 'dt' needs a numeric femtoseconds" is useless without knowing which job
/// block line 37 sits in. job_index is -1 for errors outside any job block.
struct BatchParseError {
  std::string file;
  int line = 0;        ///< 1-based (whole-file errors anchor to line 1)
  int job_index = -1;  ///< 0-based position of the enclosing job block
  std::string job_name;
  std::string reason;

  /// "file:line: [job N 'name': ]reason" — grep/editor friendly.
  std::string render() const;
};

/// "" when `job` is servable; otherwise the first broken rule. Stricter than
/// validate_scenario: serve jobs run fault-free on the DES backend (faults,
/// checkpoint cadence, process/serve axes and nested-pool kernels are the
/// harness's business, not a job's), and need a non-empty name.
std::string validate_job(const JobSpec& job);

/// Parses the batch schema:
///
///   job <name>
///     priority <int>     # optional, default 0
///     replicas <int>     # optional, default 1
///     <scenario directives...>   # seed/system/box/.../cycles/steps
///   end
///
/// Blank lines and # comments are free. Every error carries file:line plus
/// the enclosing job's index and name. `batch` is untouched on failure.
bool parse_batch(const std::string& text, const std::string& file,
                 BatchSpec& batch, BatchParseError& error);

/// Inverse of parse_batch; parse(serialize(b)) == b bit-for-bit.
std::string serialize_batch(const BatchSpec& batch);

/// Expands replicas: a job with replicas == N becomes N jobs named
/// "name#k" (k in [0, N)), each with replicas = 1 and the same priority.
/// Replica 0 keeps the base seed; replica k > 0 simulates with
/// Rng::derive(base seed, k), so replicas are independent streams yet the
/// whole sweep is reproducible from the one spec.
std::vector<JobSpec> expand_batch(const BatchSpec& batch);

}  // namespace scalemd
