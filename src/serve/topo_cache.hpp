#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "core/parallel_sim.hpp"
#include "fuzz/scenario.hpp"

namespace scalemd {

/// Shared derived-topology artifact cache for the serve layer. Building a
/// Workload is the expensive, job-independent part of a run: generating the
/// molecule, the patch decomposition, exclusion structures, the tile lists
/// and the probe-kernel cost pass. A sweep's replicas differ only in their
/// velocity seeds downstream of that, so every job with the same topology
/// key shares one immutable Workload — and, per (key, num_pes), one RCB
/// initial placement fed to ParallelOptions::initial_patch_home.
///
/// Entries are immutable after construction and held by shared_ptr, so jobs
/// on different ThreadPool workers can simulate off the same entry
/// concurrently. Construction happens under the cache lock: the first job of
/// a sweep pays the build once instead of every worker racing to build the
/// same topology.
class TopologyCache {
 public:
  /// FNV-1a over the topology-determining scenario fields (system kind,
  /// seed, box *bits*, chain beads, kernel). Fields that only shape the run
  /// (pes, lb, dt, cycles, steps, priorities) are deliberately excluded.
  static std::uint64_t topology_key(const ScenarioSpec& spec);

  struct Entry {
    Molecule mol;
    NonbondedOptions nonbonded;
    /// Built against `mol` after it reaches its final address; Workload
    /// stores a pointer to the molecule, so Entry is never copied or moved.
    std::unique_ptr<Workload> workload;
  };

  /// The cache's one lookup: returns the entry for `spec`'s topology,
  /// building it on miss. `hit` (optional) reports which happened.
  std::shared_ptr<const Entry> acquire(const ScenarioSpec& spec,
                                       bool* hit = nullptr);

  /// Initial RCB placement for (spec topology, num_pes), cached the same
  /// way; plug the result into ParallelOptions::initial_patch_home.
  std::shared_ptr<const std::vector<int>> acquire_placement(
      const ScenarioSpec& spec, int num_pes, bool* hit = nullptr);

  // Lifetime hit/miss counters across both artifact kinds.
  std::uint64_t hits() const;
  std::uint64_t misses() const;

 private:
  mutable std::mutex mu_;
  std::map<std::uint64_t, std::shared_ptr<const Entry>> entries_;
  std::map<std::pair<std::uint64_t, int>,
           std::shared_ptr<const std::vector<int>>>
      placements_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace scalemd
