#include "serve/topo_cache.hpp"

#include <algorithm>
#include <cstring>

#include "gen/test_systems.hpp"
#include "lb/rcb.hpp"

namespace scalemd {

namespace {

void fnv1a(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 0x100000001b3ull;
  }
}

std::uint64_t double_bits(double d) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

}  // namespace

std::uint64_t TopologyCache::topology_key(const ScenarioSpec& spec) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  fnv1a(h, static_cast<std::uint64_t>(spec.kind));
  fnv1a(h, spec.seed);
  fnv1a(h, double_bits(spec.box));
  fnv1a(h, static_cast<std::uint64_t>(spec.chain_beads));
  fnv1a(h, static_cast<std::uint64_t>(spec.kernel));
  return h;
}

std::shared_ptr<const TopologyCache::Entry> TopologyCache::acquire(
    const ScenarioSpec& spec, bool* hit) {
  const std::uint64_t key = topology_key(spec);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++hits_;
    if (hit) *hit = true;
    return it->second;
  }
  ++misses_;
  if (hit) *hit = false;

  auto entry = std::make_shared<Entry>();
  TestSystemOptions sys;
  sys.kind = spec.kind;
  sys.box = {spec.box, spec.box, spec.box};
  sys.chain_beads = spec.chain_beads;
  sys.temperature = 300.0;
  sys.seed = spec.seed;
  entry->mol = make_test_system(sys);

  entry->nonbonded.kernel = spec.kernel;
  const double patch = entry->mol.suggested_patch_size;
  entry->nonbonded.cutoff = std::clamp(patch - 1.0, 3.5, 6.5);
  entry->nonbonded.switch_dist = entry->nonbonded.cutoff - 1.0;
  entry->workload = std::make_unique<Workload>(
      entry->mol, MachineModel::asci_red(), entry->nonbonded);

  entries_.emplace(key, entry);
  return entry;
}

std::shared_ptr<const std::vector<int>> TopologyCache::acquire_placement(
    const ScenarioSpec& spec, int num_pes, bool* hit) {
  std::shared_ptr<const Entry> entry = acquire(spec);
  const std::pair<std::uint64_t, int> key{topology_key(spec), num_pes};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = placements_.find(key);
  if (it != placements_.end()) {
    ++hits_;
    if (hit) *hit = true;
    return it->second;
  }
  ++misses_;
  if (hit) *hit = false;
  const Decomposition& decomp = entry->workload->decomp;
  auto placement = std::make_shared<const std::vector<int>>(rcb_patch_map(
      decomp.patch_centers(), decomp.patch_weights(), num_pes));
  placements_.emplace(key, placement);
  return placement;
}

std::uint64_t TopologyCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t TopologyCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

}  // namespace scalemd
