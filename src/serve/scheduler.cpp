#include "serve/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <stdexcept>

#include "util/random.hpp"
#include "util/thread_pool.hpp"

namespace scalemd {

double WallTickSource::now() {
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(t).count();
}

const char* job_event_kind_name(JobEventKind kind) {
  switch (kind) {
    case JobEventKind::kSubmitted: return "submitted";
    case JobEventKind::kStarted:   return "started";
    case JobEventKind::kSlice:     return "slice";
    case JobEventKind::kPreempted: return "preempted";
    case JobEventKind::kResumed:   return "resumed";
    case JobEventKind::kCompleted: return "completed";
  }
  return "unknown";
}

namespace {

ParallelOptions job_options(const ScenarioSpec& s) {
  ParallelOptions o;
  o.num_pes = s.num_pes;
  o.numeric = true;
  o.dt_fs = s.dt_fs;
  o.lb.kind = s.lb;
  return o;
}

}  // namespace

struct BatchScheduler::Pending {
  JobSpec spec;
  JobResult result;

  // Topology artifacts (acquired lazily on first start). `own_cache` stands
  // in for the shared cache when options disable sharing, so the build path
  // is one piece of code either way.
  std::shared_ptr<const TopologyCache::Entry> entry;
  std::shared_ptr<const std::vector<int>> placement;
  std::unique_ptr<TopologyCache> own_cache;

  std::unique_ptr<ParallelSim> sim;      ///< non-null = resident this round
  std::vector<std::uint8_t> saved;       ///< checkpoint blob while evicted
  bool started = false;
  bool done = false;
  /// True once a cycle has run in the *current* sim instance — LB needs a
  /// populated load database, so it is re-armed from scratch after every
  /// restore. Placement never changes trajectories, so skipping LB on the
  /// first post-restore cycle cannot break bitwise equality with a solo run.
  bool lb_armed = false;
  int cycles_done = 0;
  int consecutive = 0;   ///< slices since last (re)start, for preempt_every
  int queue_round = 0;   ///< round this job last became waiting (FIFO/aging)
};

BatchScheduler::BatchScheduler(const ServeOptions& opts)
    : opts_(opts), ticks_(opts.ticks) {
  if (ticks_ == nullptr) {
    owned_ticks_ = std::make_unique<VirtualTickSource>();
    ticks_ = owned_ticks_.get();
  }
  opts_.workers = std::max(1, opts_.workers);
  opts_.slice_cycles = std::max(1, opts_.slice_cycles);
}

BatchScheduler::~BatchScheduler() = default;

void BatchScheduler::emit(JobEventKind kind, int job, int round,
                          int cycles_done) {
  JobEvent e;
  e.kind = kind;
  e.job = job;
  e.name = jobs_[static_cast<std::size_t>(job)].spec.name;
  e.round = round;
  e.at = ticks_->now();
  e.cycles_done = cycles_done;
  events_.push_back(e);
  if (progress_) progress_(events_.back());
}

int BatchScheduler::submit(const JobSpec& job) {
  const std::string bad = validate_job(job);
  if (!bad.empty()) {
    throw std::invalid_argument("job '" + job.name + "': " + bad);
  }
  const int index = static_cast<int>(jobs_.size());
  Pending p;
  p.spec = job;
  p.result.name = job.name;
  p.result.job = index;
  p.result.priority = job.priority;
  jobs_.push_back(std::move(p));
  emit(JobEventKind::kSubmitted, index, -1, 0);
  return index;
}

void BatchScheduler::submit_batch(const BatchSpec& batch) {
  for (const JobSpec& job : expand_batch(batch)) submit(job);
}

void BatchScheduler::set_progress(std::function<void(const JobEvent&)> p) {
  progress_ = std::move(p);
}

ServeReport BatchScheduler::run() {
  const double t0 = ticks_->now();
  Rng rng(Rng::derive(opts_.seed, "serve-schedule"));
  ThreadPool pool(opts_.workers);
  ServeReport report;

  const auto preempt = [&](int j, int round) {
    Pending& p = jobs_[static_cast<std::size_t>(j)];
    p.saved = p.sim->export_state();
    p.sim.reset();
    p.consecutive = 0;
    p.queue_round = round;
    ++p.result.preemptions;
    emit(JobEventKind::kPreempted, j, round, p.cycles_done);
  };

  const auto start_or_resume = [&](int j, int round) {
    Pending& p = jobs_[static_cast<std::size_t>(j)];
    if (!p.entry) {
      TopologyCache* c = &cache_;
      if (!opts_.use_cache) {
        p.own_cache = std::make_unique<TopologyCache>();
        c = p.own_cache.get();
      }
      bool hit = false;
      p.entry = c->acquire(p.spec.scenario, &hit);
      p.placement =
          c->acquire_placement(p.spec.scenario, p.spec.scenario.num_pes);
      p.result.cache_hit = hit;
    }
    ParallelOptions o = job_options(p.spec.scenario);
    o.initial_patch_home = p.placement;
    p.sim = std::make_unique<ParallelSim>(*p.entry->workload, o);
    p.lb_armed = false;
    if (!p.saved.empty()) {
      p.sim->import_state(p.saved);
      p.saved.clear();
      emit(JobEventKind::kResumed, j, round, p.cycles_done);
    } else {
      p.started = true;
      emit(JobEventKind::kStarted, j, round, 0);
    }
  };

  int done_count = 0;
  for (const Pending& p : jobs_) {
    if (p.done) ++done_count;  // completed in an earlier run()
  }

  int round = 0;
  while (done_count < static_cast<int>(jobs_.size())) {
    // 1. Quantum expiry and chaos preemption, in submit order. Decisions
    //    depend only on the round state and the seeded Rng — never on time.
    for (int j = 0; j < static_cast<int>(jobs_.size()); ++j) {
      Pending& p = jobs_[static_cast<std::size_t>(j)];
      if (!p.sim) continue;
      const bool force =
          opts_.preempt_every > 0 && p.consecutive >= opts_.preempt_every;
      const bool coin = !force && opts_.preempt_prob > 0.0 &&
                        rng.uniform() < opts_.preempt_prob;
      if (force || coin) preempt(j, round);
    }

    // 2. Pick the `workers` best jobs: effective priority (base + aging per
    //    round waited), resident-first among equals (cheap continuation),
    //    then FIFO by enqueue round and submit order.
    std::vector<int> eligible;
    for (int j = 0; j < static_cast<int>(jobs_.size()); ++j) {
      if (!jobs_[static_cast<std::size_t>(j)].done) eligible.push_back(j);
    }
    std::sort(eligible.begin(), eligible.end(), [&](int a, int b) {
      const Pending& pa = jobs_[static_cast<std::size_t>(a)];
      const Pending& pb = jobs_[static_cast<std::size_t>(b)];
      const int ea = pa.spec.priority +
                     (pa.sim ? 0 : opts_.aging * (round - pa.queue_round));
      const int eb = pb.spec.priority +
                     (pb.sim ? 0 : opts_.aging * (round - pb.queue_round));
      if (ea != eb) return ea > eb;
      const int ra = pa.sim ? 0 : 1, rb = pb.sim ? 0 : 1;
      if (ra != rb) return ra < rb;
      if (pa.queue_round != pb.queue_round) {
        return pa.queue_round < pb.queue_round;
      }
      return a < b;
    });
    if (static_cast<int>(eligible.size()) > opts_.workers) {
      eligible.resize(static_cast<std::size_t>(opts_.workers));
    }
    const std::vector<int>& selected = eligible;

    // 3. Evict residents that lost their slot; seat the winners.
    for (int j = 0; j < static_cast<int>(jobs_.size()); ++j) {
      Pending& p = jobs_[static_cast<std::size_t>(j)];
      if (p.sim && std::find(selected.begin(), selected.end(), j) ==
                       selected.end()) {
        preempt(j, round);
      }
    }
    for (int j : selected) {
      if (!jobs_[static_cast<std::size_t>(j)].sim) start_or_resume(j, round);
    }

    // 4. One slice per resident, concurrently. Each task owns its job's
    //    state exclusively; results are applied in deterministic (selected)
    //    order below, so pool scheduling cannot leak into the outcome.
    pool.run(selected.size(), [&](std::size_t task, int /*worker*/) {
      Pending& p = jobs_[static_cast<std::size_t>(selected[task])];
      const ScenarioSpec& s = p.spec.scenario;
      for (int k = 0; k < opts_.slice_cycles && p.cycles_done < s.cycles;
           ++k) {
        if (p.lb_armed && s.lb != LbStrategyKind::kNone) p.sim->load_balance();
        p.sim->run_cycle(s.steps);
        p.lb_armed = true;
        ++p.cycles_done;
      }
      ++p.consecutive;
    });

    for (int j : selected) {
      Pending& p = jobs_[static_cast<std::size_t>(j)];
      emit(JobEventKind::kSlice, j, round, p.cycles_done);
      if (p.cycles_done >= p.spec.scenario.cycles) {
        p.result.complete = p.sim->last_cycle_complete();
        p.result.cycles = p.cycles_done;
        p.result.steps = p.cycles_done * p.spec.scenario.steps;
        p.result.positions = p.sim->gather_positions();
        p.result.velocities = p.sim->gather_velocities();
        p.result.completion_round = round;
        p.result.completion_seq =
            static_cast<int>(report.completion_order.size());
        report.completion_order.push_back(j);
        p.sim.reset();
        p.entry.reset();
        p.placement.reset();
        p.own_cache.reset();
        p.done = true;
        ++done_count;
        emit(JobEventKind::kCompleted, j, round, p.cycles_done);
      }
    }
    ++round;
  }

  report.rounds = round;
  report.cache_hits = cache_.hits();
  report.cache_misses = cache_.misses();
  for (Pending& p : jobs_) {
    report.total_steps += p.result.steps;
    report.results.push_back(p.result);
  }
  report.wall_seconds = ticks_->now() - t0;
  return report;
}

JobResult run_job_alone(const JobSpec& job, TopologyCache* cache) {
  TopologyCache local;
  TopologyCache& c = cache ? *cache : local;
  bool hit = false;
  const std::shared_ptr<const TopologyCache::Entry> entry =
      c.acquire(job.scenario, &hit);
  const std::shared_ptr<const std::vector<int>> placement =
      c.acquire_placement(job.scenario, job.scenario.num_pes);

  ParallelOptions o = job_options(job.scenario);
  o.initial_patch_home = placement;
  ParallelSim sim(*entry->workload, o);
  for (int cyc = 0; cyc < job.scenario.cycles; ++cyc) {
    if (cyc > 0 && job.scenario.lb != LbStrategyKind::kNone) {
      sim.load_balance();
    }
    sim.run_cycle(job.scenario.steps);
  }

  JobResult r;
  r.name = job.name;
  r.priority = job.priority;
  r.complete = sim.last_cycle_complete();
  r.cycles = job.scenario.cycles;
  r.steps = job.scenario.cycles * job.scenario.steps;
  r.cache_hit = hit;
  r.positions = sim.gather_positions();
  r.velocities = sim.gather_velocities();
  return r;
}

}  // namespace scalemd
