#include "serve/job.hpp"

#include <sstream>

#include "util/random.hpp"

namespace scalemd {

std::string BatchParseError::render() const {
  std::string out = file + ":" + std::to_string(line) + ": ";
  if (job_index >= 0) {
    out += "job " + std::to_string(job_index);
    if (!job_name.empty()) out += " '" + job_name + "'";
    out += ": ";
  }
  out += reason;
  return out;
}

std::string validate_job(const JobSpec& job) {
  if (job.name.empty()) return "job needs a name";
  if (job.priority < -100 || job.priority > 100) {
    return "priority must be in [-100, 100]";
  }
  if (job.replicas < 1 || job.replicas > 64) {
    return "replicas must be in [1, 64]";
  }
  const std::string bad = validate_scenario(job.scenario);
  if (!bad.empty()) return bad;
  // Serve jobs are plain fault-free simulations on the DES backend; the
  // fault/chaos axes belong to the fuzz harness and the serve axes to the
  // batch level, so a job carrying them is almost certainly a mistake.
  if (job.scenario.has_faults()) return "serve jobs must be fault-free";
  if (job.scenario.checkpoint_every != 0) {
    return "serve jobs may not set checkpoint (the scheduler owns preemption)";
  }
  if (job.scenario.process_workers != 0) {
    return "serve jobs may not set process-workers";
  }
  if (job.scenario.serve_jobs != 0 || job.scenario.serve_preempt_every != 0 ||
      job.scenario.serve_workers != 1) {
    return "serve axes belong to the batch, not a job";
  }
  if (job.scenario.inject_defect) return "serve jobs may not inject defects";
  return "";
}

bool parse_batch(const std::string& text, const std::string& file,
                 BatchSpec& batch, BatchParseError& error) {
  BatchSpec out;
  std::istringstream stream(text);
  std::string raw;
  int lineno = 0;
  bool in_job = false;
  JobSpec cur;

  const auto fail = [&](int line, std::string reason) {
    error.file = file;
    error.line = line < 1 ? 1 : line;  // whole-file errors anchor to line 1
    error.job_index = in_job ? static_cast<int>(out.jobs.size()) : -1;
    error.job_name = in_job ? cur.name : std::string();
    error.reason = std::move(reason);
    return false;
  };

  while (std::getline(stream, raw)) {
    ++lineno;
    std::string stripped = raw;
    const std::size_t hash = stripped.find('#');
    if (hash != std::string::npos) stripped.erase(hash);
    std::istringstream line(stripped);
    std::string key;
    if (!(line >> key)) continue;

    if (key == "job") {
      if (in_job) return fail(lineno, "nested 'job' (missing 'end'?)");
      std::string name;
      if (!(line >> name)) return fail(lineno, "'job' needs a name");
      in_job = true;
      cur = JobSpec{};
      cur.name = name;
      cur.scenario.lb = LbStrategyKind::kNone;  // schema default
      continue;
    }
    if (key == "end") {
      if (!in_job) return fail(lineno, "'end' outside a job block");
      const std::string bad = validate_job(cur);
      if (!bad.empty()) return fail(lineno, bad);
      in_job = false;  // after fail() so the error still names the job
      out.jobs.push_back(cur);
      continue;
    }
    if (!in_job) {
      return fail(lineno, "directive '" + key + "' outside a job block");
    }
    if (key == "priority" || key == "replicas") {
      int v = 0;
      if (!(line >> v)) {
        return fail(lineno, "'" + key + "' needs an integer");
      }
      (key == "priority" ? cur.priority : cur.replicas) = v;
      continue;
    }
    // Everything else is a scenario directive, applied via the shared
    // single-directive core so job bodies and lone scenario files stay one
    // schema. The wrapper's job is the context the core cannot know: which
    // job block the bad line sits in.
    std::string reason;
    switch (apply_scenario_directive(raw, cur.scenario, reason)) {
      case DirectiveStatus::kApplied:
        break;
      case DirectiveStatus::kBadValue:
        return fail(lineno, reason);
      case DirectiveStatus::kUnknownKey:
        return fail(lineno, "unknown directive '" + reason + "'");
    }
  }

  if (in_job) return fail(lineno, "unterminated job block (missing 'end')");
  if (out.jobs.empty()) return fail(lineno, "batch has no jobs");
  batch = out;
  return true;
}

std::string serialize_batch(const BatchSpec& batch) {
  std::string out;
  for (const JobSpec& job : batch.jobs) {
    out += "job " + job.name + "\n";
    if (job.priority != 0) {
      out += "priority " + std::to_string(job.priority) + "\n";
    }
    if (job.replicas != 1) {
      out += "replicas " + std::to_string(job.replicas) + "\n";
    }
    out += serialize_scenario(job.scenario);
    out += "end\n";
  }
  return out;
}

std::vector<JobSpec> expand_batch(const BatchSpec& batch) {
  std::vector<JobSpec> out;
  for (const JobSpec& job : batch.jobs) {
    for (int k = 0; k < job.replicas; ++k) {
      JobSpec r = job;
      r.replicas = 1;
      if (job.replicas > 1) {
        r.name = job.name + "#" + std::to_string(k);
        if (k > 0) {
          r.scenario.seed =
              Rng::derive(job.scenario.seed, static_cast<std::uint64_t>(k));
        }
      }
      out.push_back(std::move(r));
    }
  }
  return out;
}

}  // namespace scalemd
