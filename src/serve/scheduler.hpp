#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/parallel_sim.hpp"
#include "serve/job.hpp"
#include "serve/topo_cache.hpp"
#include "util/vec3.hpp"

namespace scalemd {

/// Timestamp source for the serve layer. Scheduling decisions NEVER read it —
/// they depend only on the round counter and the scheduler's seeded Rng — so
/// swapping the wall clock for the virtual one changes event timestamps and
/// nothing else. That is what makes the scheduler testable: under the virtual
/// source a whole batch run is bit-reproducible, interleaving included.
class TickSource {
 public:
  virtual ~TickSource() = default;
  virtual double now() = 0;
};

/// Deterministic tick source: every read advances time by a fixed quantum.
class VirtualTickSource : public TickSource {
 public:
  explicit VirtualTickSource(double quantum = 1.0) : quantum_(quantum) {}
  double now() override { return quantum_ * static_cast<double>(reads_++); }

 private:
  double quantum_;
  std::uint64_t reads_ = 0;
};

/// Wall-clock tick source for the CLI and benchmarks.
class WallTickSource : public TickSource {
 public:
  double now() override;
};

struct ServeOptions {
  /// Concurrent job slots; slices of the resident jobs run on a ThreadPool
  /// of this size (serve jobs use the DES backend, so each slot is one
  /// independent single-threaded simulation).
  int workers = 2;
  /// run_cycle calls per scheduling slice — the preemption granularity.
  int slice_cycles = 1;
  /// Force-preempt a job after this many consecutive slices (0 = never).
  /// Preemption goes through the checkpoint machinery: export_state, tear
  /// the sim down, import_state into a fresh sim when rescheduled.
  int preempt_every = 0;
  /// Additionally preempt each resident job with this probability per round,
  /// drawn from the scheduler's own Rng (seeded below) in job-index order.
  double preempt_prob = 0.0;
  /// Seed for every scheduling decision the scheduler randomizes.
  std::uint64_t seed = 1;
  /// Priority boost per round spent waiting. Any value >= 1 guarantees no
  /// starvation: a waiting job's effective priority eventually exceeds any
  /// fixed priority. 0 restores strict priority (starvation possible).
  int aging = 1;
  /// Share Workload/placement artifacts across same-topology jobs.
  bool use_cache = true;
  /// Timestamp source; nullptr = scheduler-owned VirtualTickSource.
  TickSource* ticks = nullptr;
};

enum class JobEventKind {
  kSubmitted,
  kStarted,    ///< first slice granted
  kSlice,      ///< a slice of cycles completed
  kPreempted,  ///< checkpointed and evicted
  kResumed,    ///< restored from checkpoint into a fresh sim
  kCompleted,
};

const char* job_event_kind_name(JobEventKind kind);

/// One progress record; the stream of these (and the optional callback) is
/// how a caller watches a batch run.
struct JobEvent {
  JobEventKind kind = JobEventKind::kSubmitted;
  int job = -1;             ///< submit index
  std::string name;
  int round = -1;           ///< scheduling round (-1 for kSubmitted)
  double at = 0.0;          ///< TickSource timestamp
  int cycles_done = 0;      ///< job progress at emission
};

struct JobResult {
  std::string name;
  int job = -1;          ///< submit index
  int priority = 0;
  bool complete = false;
  int cycles = 0;        ///< cycles actually run
  int steps = 0;         ///< timesteps actually run
  int preemptions = 0;   ///< checkpoint/evict/resume round-trips
  bool cache_hit = false;  ///< topology artifacts came from the shared cache
  int completion_round = -1;
  int completion_seq = -1;  ///< position in the batch completion order
  /// Final per-atom state, gathered by global atom id — directly comparable
  /// (bitwise) against a solo run of the same JobSpec.
  std::vector<Vec3> positions;
  std::vector<Vec3> velocities;
};

struct ServeReport {
  std::vector<JobResult> results;    ///< submit order
  std::vector<int> completion_order; ///< submit indices, completion order
  int rounds = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::int64_t total_steps = 0;      ///< sum over jobs
  double wall_seconds = 0.0;         ///< TickSource span of run()
};

/// Priority + round-robin batch scheduler over the checkpoint machinery.
///
/// Each round it (1) force-preempts resident jobs that exhausted their slice
/// quantum and coin-flip preempts per preempt_prob, (2) picks the
/// `workers` best jobs by effective priority — base priority plus
/// aging x rounds-waited, ties broken resident-first then FIFO by enqueue
/// round and submit order, (3) preempts deselected residents through
/// export_state, restores newly selected jobs through import_state, and
/// (4) runs one slice of every resident job concurrently on the ThreadPool,
/// applying results in submit order afterwards so the run is deterministic.
///
/// Determinism contract: with a fixed options.seed and the (default)
/// virtual tick source, the whole run — job interleaving, preemption points,
/// completion order, every trajectory byte — is reproducible. Trajectories
/// are additionally *schedule-independent*: preempted or not, cached or not,
/// 1 worker or 8, every job ends bitwise identical to run_job_alone on the
/// same spec (the canonical-fold property extended to the serve layer).
class BatchScheduler {
 public:
  explicit BatchScheduler(const ServeOptions& opts);
  ~BatchScheduler();

  /// Enqueues one job. Throws std::invalid_argument with validate_job's
  /// reason when the job is not servable. Returns the submit index.
  int submit(const JobSpec& job);
  /// expand_batch + submit for every resulting job.
  void submit_batch(const BatchSpec& batch);

  /// Progress callback, invoked on the calling thread for every event
  /// emitted during run() (and for kSubmitted at submit time).
  void set_progress(std::function<void(const JobEvent&)> progress);

  /// Runs every submitted job to completion and reports. Jobs submitted
  /// after a run() enter the next run().
  ServeReport run();

  const std::vector<JobEvent>& events() const { return events_; }
  TopologyCache& cache() { return cache_; }

 private:
  struct Pending;  // per-job scheduling state (scheduler.cpp)

  void emit(JobEventKind kind, int job, int round, int cycles_done);

  ServeOptions opts_;
  std::unique_ptr<TickSource> owned_ticks_;
  TickSource* ticks_;
  TopologyCache cache_;
  std::vector<Pending> jobs_;
  std::vector<JobEvent> events_;
  std::function<void(const JobEvent&)> progress_;
};

/// Serial reference: runs one job start-to-finish with no scheduler in the
/// loop (fresh sim, no preemption). Uses `cache` for topology artifacts when
/// given, else builds them locally. The serve differential oracles compare
/// BatchScheduler output against this bitwise.
JobResult run_job_alone(const JobSpec& job, TopologyCache* cache = nullptr);

}  // namespace scalemd
