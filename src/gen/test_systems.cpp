#include "gen/test_systems.hpp"

#include <algorithm>
#include <cmath>

#include "gen/chain.hpp"
#include "gen/membrane.hpp"
#include "gen/placement.hpp"
#include "gen/stdff.hpp"
#include "gen/water_box.hpp"
#include "util/random.hpp"

namespace scalemd {

const char* test_system_kind_name(TestSystemKind kind) {
  switch (kind) {
    case TestSystemKind::kWaterBox:      return "water-box";
    case TestSystemKind::kSolvatedChain: return "solvated-chain";
    case TestSystemKind::kMembranePatch: return "membrane-patch";
  }
  return "unknown";
}

Molecule make_test_system(const TestSystemOptions& opt) {
  Molecule mol;
  mol.name = test_system_kind_name(opt.kind);
  mol.box = {std::max(opt.box.x, 8.0), std::max(opt.box.y, 8.0),
             std::max(opt.box.z, 8.0)};
  const double min_dim = std::min({mol.box.x, mol.box.y, mol.box.z});
  // Two patches per dimension at minimum, so the parallel machine always has
  // inter-patch traffic to exercise.
  mol.suggested_patch_size = min_dim / 2.0;

  const StdFF ff = StdFF::install(mol.params);
  PlacementGrid grid(mol.box, 2.2);
  Rng rng(Rng::derive(opt.seed, "placement"));

  const Vec3 c = mol.box * 0.5;
  switch (opt.kind) {
    case TestSystemKind::kWaterBox:
      break;  // water fill below is the whole system
    case TestSystemKind::kSolvatedChain: {
      ChainOptions chain;
      chain.beads = std::max(4, opt.chain_beads);
      chain.lo = {2, 2, 2};
      chain.hi = {mol.box.x - 2, mol.box.y - 2, mol.box.z - 2};
      add_chain(mol, ff, grid, chain, rng);
      break;
    }
    case TestSystemKind::kMembranePatch: {
      // A few short-tailed lipids spanning the box midplane.
      LipidOptions lipid;
      lipid.tail_len = 2;
      lipid.tails = 1;
      const double radius =
          std::max(3.0, std::min(mol.box.x, mol.box.y) / 2.0 - 2.0);
      add_bilayer_disc(mol, ff, grid, c, radius, 3.2, 2.0, lipid, rng);
      break;
    }
  }

  // Dissolved salt for the full-electrostatics scenarios: alternate +1/-1 so
  // any prefix kept by a clash-limited placement stays as close to neutral
  // as possible, and the full set is exactly net-neutral.
  for (int i = 0; i < std::max(0, opt.ion_pairs); ++i) {
    add_ion(mol, ff, grid, +1.0, rng);
    add_ion(mol, ff, grid, -1.0, rng);
  }

  // Solvate whatever the kind placed (or fill the empty box): the lattice
  // filler skips clashing sites, so the cap just needs to exceed the box
  // capacity at liquid density.
  const double volume = mol.box.x * mol.box.y * mol.box.z;
  const int max_waters = static_cast<int>(volume / 25.0) + 8;
  fill_water(mol, ff, grid, {0, 0, 0}, mol.box, max_waters, rng);

  mol.validate();
  if (opt.temperature > 0.0) {
    mol.assign_velocities(opt.temperature, Rng::derive(opt.seed, "velocities"));
  }
  return mol;
}

}  // namespace scalemd
