#pragma once

#include "gen/placement.hpp"
#include "gen/stdff.hpp"
#include "topo/molecule.hpp"
#include "util/random.hpp"

namespace scalemd {

/// Parameters for the protein-like bead-chain builder.
struct ChainOptions {
  int beads = 100;          ///< backbone bead count
  int side_every = 3;       ///< attach a side bead to every k-th backbone bead
  double charge_mag = 0.15; ///< alternating +/- backbone partial charge
  Vec3 lo;                  ///< walk region lower corner (inclusive)
  Vec3 hi;                  ///< walk region upper corner (exclusive)
};

/// Grows a self-avoiding backbone walk inside [lo, hi) with exact 1.53 A
/// bonds and 111-degree bend angles whose torsion drifts randomly, attaching
/// side beads with improper terms. Adds bonds, angles, dihedrals and
/// impropers along the chain (the bonded topology the paper's bonded compute
/// objects operate on). Returns the number of atoms added.
int add_chain(Molecule& mol, const StdFF& ff, PlacementGrid& grid,
              const ChainOptions& opt, Rng& rng);

}  // namespace scalemd
