#include "gen/stdff.hpp"

#include <cmath>

namespace scalemd {

StdFF StdFF::install(ParameterTable& pt) {
  constexpr double kDeg = M_PI / 180.0;
  StdFF ff;
  // TIP3P-like water.
  ff.lj_ow = pt.add_lj_type(0.1521, 1.7682);
  ff.lj_hw = pt.add_lj_type(0.0460, 0.2245);
  // Generic heavy beads.
  ff.lj_c = pt.add_lj_type(0.1100, 2.0000);
  ff.lj_n = pt.add_lj_type(0.2000, 1.8500);
  ff.lj_s = pt.add_lj_type(0.0800, 2.1000);
  ff.lj_head = pt.add_lj_type(0.2500, 2.2000);
  ff.lj_ion = pt.add_lj_type(0.0469, 1.3638);

  ff.b_oh = pt.add_bond_param(450.0, geom::kWaterOH);
  ff.b_cc = pt.add_bond_param(222.5, geom::kChainBond);
  ff.b_cs = pt.add_bond_param(222.5, geom::kSideBond);
  ff.b_tail = pt.add_bond_param(222.5, geom::kChainBond);
  ff.b_head = pt.add_bond_param(200.0, geom::kChainBond);

  ff.a_hoh = pt.add_angle_param(55.0, geom::kWaterAngleDeg * kDeg);
  ff.a_ccc = pt.add_angle_param(58.35, geom::kChainAngleDeg * kDeg);
  ff.a_tail = pt.add_angle_param(58.35, geom::kChainAngleDeg * kDeg);

  ff.d_cccc = pt.add_dihedral_param(0.2, 3, 0.0);
  ff.d_tail = pt.add_dihedral_param(0.16, 3, 0.0);

  ff.i_branch = pt.add_improper_param(1.0, 35.26 * kDeg);

  pt.finalize();
  return ff;
}

}  // namespace scalemd
