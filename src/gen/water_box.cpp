#include "gen/water_box.hpp"

#include <cmath>

namespace scalemd {

int add_water(Molecule& mol, const StdFF& ff, PlacementGrid& grid, const Vec3& o_pos,
              Rng& rng) {
  constexpr double kDeg = M_PI / 180.0;
  const double half = 0.5 * geom::kWaterAngleDeg * kDeg;

  // Random orthonormal frame (u, v) for the H-O-H plane.
  const Vec3 u = rng.unit_vector();
  Vec3 v = cross(u, rng.unit_vector());
  while (norm2(v) < 1e-6) v = cross(u, rng.unit_vector());
  v = normalized(v);

  const Vec3 h1 = o_pos + (u * std::cos(half) + v * std::sin(half)) * geom::kWaterOH;
  const Vec3 h2 = o_pos + (u * std::cos(half) - v * std::sin(half)) * geom::kWaterOH;

  const int o = mol.add_atom({15.9994, -0.834, ff.lj_ow}, o_pos);
  const int ha = mol.add_atom({1.008, 0.417, ff.lj_hw}, h1);
  const int hb = mol.add_atom({1.008, 0.417, ff.lj_hw}, h2);
  mol.add_bond(o, ha, ff.b_oh);
  mol.add_bond(o, hb, ff.b_oh);
  mol.add_angle(ha, o, hb, ff.a_hoh);
  grid.add(o_pos);
  return o;
}

int fill_water(Molecule& mol, const StdFF& ff, PlacementGrid& grid, const Vec3& lo,
               const Vec3& hi, int max_waters, Rng& rng) {
  // 3.107 A lattice spacing reproduces 0.0334 molecules/A^3 (~1 g/cm^3).
  constexpr double kSpacing = 3.107;
  // Keep hydrogens (O-H bond ~1 A) inside the box even after jitter.
  constexpr double kEdge = 1.4;
  int added = 0;
  for (double z = lo.z + kEdge; z + kEdge < hi.z && added < max_waters;
       z += kSpacing) {
    for (double y = lo.y + kEdge; y + kEdge < hi.y && added < max_waters;
         y += kSpacing) {
      for (double x = lo.x + kEdge; x + kEdge < hi.x && added < max_waters;
           x += kSpacing) {
        Vec3 p{x + rng.uniform(-0.3, 0.3), y + rng.uniform(-0.3, 0.3),
               z + rng.uniform(-0.3, 0.3)};
        if (!grid.is_free(p)) continue;
        add_water(mol, ff, grid, p, rng);
        ++added;
      }
    }
  }
  return added;
}

int add_ion(Molecule& mol, const StdFF& ff, PlacementGrid& grid, double charge,
            Rng& rng) {
  for (int attempt = 0; attempt < 4096; ++attempt) {
    const Vec3 p = rng.point_in_box(mol.box);
    if (!grid.is_free(p)) continue;
    grid.add(p);
    return mol.add_atom({22.99, charge, ff.lj_ion}, p);
  }
  return -1;
}

Molecule make_water_box(const Vec3& box, std::uint64_t seed) {
  Molecule mol;
  mol.name = "water-box";
  mol.box = box;
  const StdFF ff = StdFF::install(mol.params);
  PlacementGrid grid(box, 2.4);
  Rng rng(seed);
  fill_water(mol, ff, grid, {0, 0, 0}, box, 1 << 30, rng);
  mol.validate();
  return mol;
}

}  // namespace scalemd
