#pragma once

#include <vector>

#include "util/vec3.hpp"

namespace scalemd {

/// Spatial hash grid used by the generators to reject atom placements that
/// would clash with already-placed atoms. Cell size equals the query radius
/// so a clash test only inspects 27 cells.
class PlacementGrid {
 public:
  /// `box` is the full system box; `min_dist` the clash radius in angstroms.
  PlacementGrid(const Vec3& box, double min_dist);

  /// True if no recorded point lies within min_dist of `p`.
  bool is_free(const Vec3& p) const;

  /// Squared distance from `p` to the nearest recorded point within the
  /// surrounding 27 cells, or min_dist^2 if none is that close. Used by the
  /// chain builder to pick the least-bad step when every candidate clashes.
  double min_dist2(const Vec3& p) const;

  /// Records `p` as occupied. `p` must be inside the box.
  void add(const Vec3& p);

  std::size_t size() const { return count_; }

 private:
  int cell_index(const Vec3& p) const;

  Vec3 box_;
  double min_dist2_;
  double inv_cell_;
  int nx_, ny_, nz_;
  std::vector<std::vector<Vec3>> cells_;
  std::size_t count_ = 0;
};

}  // namespace scalemd
