#include "gen/presets.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "gen/chain.hpp"
#include "gen/membrane.hpp"
#include "gen/placement.hpp"
#include "gen/stdff.hpp"
#include "gen/water_box.hpp"

namespace scalemd {

namespace {

/// Tops the system up to exactly `target` atoms: whole waters while three or
/// more atoms remain, then charge-alternating ions for the remainder.
void fill_to_target(Molecule& mol, const StdFF& ff, PlacementGrid& grid, int target,
                    Rng& rng) {
  const int lattice_waters = (target - mol.atom_count()) / 3;
  fill_water(mol, ff, grid, {0, 0, 0}, mol.box, lattice_waters, rng);

  // The lattice may fall short where protein/lipid fragments block sites;
  // top up with random insertions.
  int attempts = 0;
  while (target - mol.atom_count() >= 3 && attempts < 2'000'000) {
    ++attempts;
    const Vec3 p = rng.point_in_box(mol.box);
    if (p.x < 1.2 || p.y < 1.2 || p.z < 1.2 || p.x > mol.box.x - 1.2 ||
        p.y > mol.box.y - 1.2 || p.z > mol.box.z - 1.2) {  // keep O-H inside

      continue;
    }
    if (!grid.is_free(p)) continue;
    add_water(mol, ff, grid, p, rng);
  }

  double charge = 1.0;
  while (mol.atom_count() < target) {
    if (add_ion(mol, ff, grid, charge, rng) < 0) {
      throw std::runtime_error("preset: could not place ion to reach target count");
    }
    charge = -charge;
  }
  if (mol.atom_count() != target) {
    throw std::runtime_error("preset: overshot target atom count");
  }
}

/// Places `count` protein-like chains of `beads` beads each inside [lo, hi).
void add_chains(Molecule& mol, const StdFF& ff, PlacementGrid& grid, int count,
                int beads, const Vec3& lo, const Vec3& hi, Rng& rng) {
  ChainOptions opt;
  opt.beads = beads;
  opt.lo = lo;
  opt.hi = hi;
  for (int i = 0; i < count; ++i) add_chain(mol, ff, grid, opt, rng);
}

}  // namespace

Molecule apoa1_like(std::uint64_t seed) { return apoa1_like_scaled(1.0, seed); }

Molecule apoa1_like_scaled(double factor, std::uint64_t seed) {
  Molecule mol;
  mol.name = factor == 1.0 ? "apoa1-like" : "apoa1-like-scaled";
  mol.box = Vec3{108, 108, 78} * factor;
  // 108 / 15.42 = 7.00..., 78 / 15.42 = 5.05...: a 7 x 7 x 5 = 245-patch
  // grid at the paper's 12 A cutoff, matching the published decomposition.
  mol.suggested_patch_size = 15.42;
  const StdFF ff = StdFF::install(mol.params);
  PlacementGrid grid(mol.box, 2.2);
  Rng rng(seed);

  const Vec3 c = mol.box * 0.5;
  const double disc_r = 38.0 * factor;

  // Lipid disc (the high-density-lipoprotein particle core).
  add_bilayer_disc(mol, ff, grid, c, disc_r, 8.0, 17.0, LipidOptions{}, rng);

  // Protein belt: chains confined to four boxes ringing the disc edge.
  const double belt = 14.0 * factor;
  const double beads_scale = factor * factor * factor;
  const int belt_beads = std::max(20, static_cast<int>(700 * beads_scale));
  add_chains(mol, ff, grid, 2, belt_beads,
             {c.x - disc_r - belt, c.y - disc_r - belt, c.z - 12},
             {c.x + disc_r + belt, c.y - disc_r + belt, c.z + 12}, rng);
  add_chains(mol, ff, grid, 2, belt_beads,
             {c.x - disc_r - belt, c.y + disc_r - belt, c.z - 12},
             {c.x + disc_r + belt, c.y + disc_r + belt, c.z + 12}, rng);
  add_chains(mol, ff, grid, 2, belt_beads,
             {c.x - disc_r - belt, c.y - disc_r, c.z - 12},
             {c.x - disc_r + belt, c.y + disc_r, c.z + 12}, rng);
  add_chains(mol, ff, grid, 2, belt_beads,
             {c.x + disc_r - belt, c.y - disc_r, c.z - 12},
             {c.x + disc_r + belt, c.y + disc_r, c.z + 12}, rng);

  const int target =
      factor == 1.0
          ? 92'224
          : std::max(mol.atom_count() + 30,
                     static_cast<int>(92'224 * factor * factor * factor));
  fill_to_target(mol, ff, grid, target, rng);
  mol.validate();
  return mol;
}

Molecule bc1_like(std::uint64_t seed) {
  Molecule mol;
  mol.name = "bc1-like";
  mol.box = {123.2, 105.6, 158.4};
  // 17.6 A patches give 7 x 6 x 9 = 378 patches as published for BC1.
  mol.suggested_patch_size = 17.6;
  const StdFF ff = StdFF::install(mol.params);
  PlacementGrid grid(mol.box, 2.2);
  Rng rng(seed);

  const Vec3 c = mol.box * 0.5;

  // Membrane slab spanning most of the box cross-section.
  add_bilayer_disc(mol, ff, grid, c, 50.0, 8.0, 17.0, LipidOptions{}, rng);

  // Large trans-membrane protein complex: chains through and above/below the
  // membrane midplane.
  add_chains(mol, ff, grid, 4, 900, {c.x - 30, c.y - 30, c.z - 45},
             {c.x + 30, c.y + 30, c.z + 45}, rng);
  add_chains(mol, ff, grid, 3, 700, {c.x - 45, c.y - 45, c.z + 20},
             {c.x + 45, c.y + 45, c.z + 70}, rng);
  add_chains(mol, ff, grid, 3, 700, {c.x - 45, c.y - 45, c.z - 70},
             {c.x + 45, c.y + 45, c.z - 20}, rng);

  fill_to_target(mol, ff, grid, 206'617, rng);
  mol.validate();
  return mol;
}

Molecule br_like(std::uint64_t seed) {
  Molecule mol;
  mol.name = "br-like";
  mol.box = {38, 50.5, 38};
  // 12.6 A patches give 3 x 4 x 3 = 36 patches as published for bR.
  mol.suggested_patch_size = 12.6;
  const StdFF ff = StdFF::install(mol.params);
  PlacementGrid grid(mol.box, 2.2);
  Rng rng(seed);

  // Protein-only system: seven trans-membrane-like helical chains worth of
  // beads wandering the box.
  add_chains(mol, ff, grid, 7, 420, {2, 2, 2},
             {mol.box.x - 2, mol.box.y - 2, mol.box.z - 2}, rng);

  // Top up with structural waters/ions to the exact published count.
  fill_to_target(mol, ff, grid, 3'762, rng);
  mol.validate();
  return mol;
}

Molecule small_solvated_chain(int n_target, std::uint64_t seed) {
  Molecule mol;
  mol.name = "small-solvated-chain";
  const double side = std::cbrt(static_cast<double>(n_target) / 0.1);
  mol.box = {side, side, side};
  const StdFF ff = StdFF::install(mol.params);
  PlacementGrid grid(mol.box, 2.2);
  Rng rng(seed);

  const int beads = std::max(10, n_target / 10);
  add_chains(mol, ff, grid, 1, beads, {2, 2, 2},
             {mol.box.x - 2, mol.box.y - 2, mol.box.z - 2}, rng);
  fill_to_target(mol, ff, grid, n_target, rng);
  mol.validate();
  return mol;
}

}  // namespace scalemd
