#include "gen/membrane.hpp"

#include <cmath>

namespace scalemd {

namespace {

constexpr double kDeg = M_PI / 180.0;

}  // namespace

int add_lipid(Molecule& mol, const StdFF& ff, PlacementGrid& grid,
              const Vec3& head_pos, const Vec3& dir, const LipidOptions& opt,
              Rng& rng) {
  if (!grid.is_free(head_pos)) return 0;
  const int first = mol.atom_count();

  // Zwitterionic head: choline-like (+) then phosphate-like (-) bead.
  const int h1 = mol.add_atom({86.0, 0.8, ff.lj_head}, head_pos);
  grid.add(head_pos);
  const Vec3 h2_pos = head_pos + dir * geom::kChainBond;
  const int h2 = mol.add_atom({94.0, -0.8, ff.lj_head}, h2_pos);
  mol.add_bond(h1, h2, ff.b_head);

  // Zigzag tails: per-bond axial advance a and alternating lateral offset b
  // reproduce exact bond lengths and the tail bend angle.
  const double half = 0.5 * geom::kChainAngleDeg * kDeg;
  const double axial = geom::kChainBond * std::sin(half);
  const double lateral = geom::kChainBond * std::cos(half);

  const Vec3 trial = std::fabs(dir.x) < 0.9 ? Vec3{1, 0, 0} : Vec3{0, 1, 0};
  for (int t = 0; t < opt.tails; ++t) {
    // Each tail gets its own zigzag plane and a small base offset.
    const Vec3 u = normalized(cross(dir, rotate(trial, dir, rng.uniform(0, 2 * M_PI))));
    const Vec3 base = h2_pos + u * (t == 0 ? 0.8 : -0.8);
    int prev = h2, prev2 = h1, prev3 = -1;
    for (int i = 0; i < opt.tail_len; ++i) {
      const Vec3 p = base + dir * (axial * (i + 1)) + u * ((i % 2 == 0) ? lateral : 0.0);
      const int cur = mol.add_atom({14.027, 0.0, ff.lj_c}, p);
      mol.add_bond(prev, cur, ff.b_tail);
      if (prev2 >= 0) mol.add_angle(prev2, prev, cur, ff.a_tail);
      if (prev3 >= 0) mol.add_dihedral(prev3, prev2, prev, cur, ff.d_tail);
      if (i % 3 == 0) grid.add(p);  // sparse occupancy marking along the tail
      prev3 = prev2;
      prev2 = prev;
      prev = cur;
    }
  }
  return mol.atom_count() - first;
}

int add_bilayer_disc(Molecule& mol, const StdFF& ff, PlacementGrid& grid,
                     const Vec3& center, double radius, double spacing,
                     double leaflet_offset, const LipidOptions& opt, Rng& rng) {
  const int first = mol.atom_count();
  for (double y = center.y - radius; y <= center.y + radius; y += spacing) {
    for (double x = center.x - radius; x <= center.x + radius; x += spacing) {
      const double dx = x - center.x;
      const double dy = y - center.y;
      if (dx * dx + dy * dy > radius * radius) continue;
      const Vec3 jitter{rng.uniform(-0.4, 0.4), rng.uniform(-0.4, 0.4), 0.0};
      // Upper leaflet: head up high, tail pointing down toward the midplane.
      add_lipid(mol, ff, grid, Vec3{x, y, center.z + leaflet_offset} + jitter,
                {0, 0, -1}, opt, rng);
      // Lower leaflet.
      add_lipid(mol, ff, grid, Vec3{x, y, center.z - leaflet_offset} + jitter,
                {0, 0, 1}, opt, rng);
    }
  }
  return mol.atom_count() - first;
}

}  // namespace scalemd
