#pragma once

#include "topo/parameters.hpp"

namespace scalemd {

/// The standard parameter set shared by all synthetic generators. Installing
/// it into a ParameterTable returns the ids the builders reference, so that
/// systems composed from several builders share one consistent table.
/// Values are CHARMM-like (TIP3P water, aliphatic carbons) but simplified;
/// see DESIGN.md section 3 on substitutions.
struct StdFF {
  // Lennard-Jones atom types.
  int lj_ow = 0;   ///< water oxygen
  int lj_hw = 0;   ///< water hydrogen
  int lj_c = 0;    ///< aliphatic/backbone carbon bead
  int lj_n = 0;    ///< nitrogen-like bead
  int lj_s = 0;    ///< side-chain bead
  int lj_head = 0; ///< lipid head-group bead
  int lj_ion = 0;  ///< monovalent ion

  // Bond parameters.
  int b_oh = 0;    ///< water O-H
  int b_cc = 0;    ///< chain backbone
  int b_cs = 0;    ///< backbone-to-side-chain
  int b_tail = 0;  ///< lipid tail
  int b_head = 0;  ///< lipid head

  // Angle parameters.
  int a_hoh = 0;   ///< water H-O-H
  int a_ccc = 0;   ///< chain backbone bend
  int a_tail = 0;  ///< lipid tail bend

  // Dihedral parameters.
  int d_cccc = 0;  ///< chain backbone torsion
  int d_tail = 0;  ///< lipid tail torsion

  // Improper parameters.
  int i_branch = 0;  ///< keeps side-chain branches near the backbone plane

  /// Registers every type/parameter into `pt` and finalizes it.
  static StdFF install(ParameterTable& pt);
};

namespace geom {
// Placement geometry shared between builders and their parameters, so bond
// r0 values match generated coordinates and the initial configuration is
// near a potential-energy minimum.
inline constexpr double kWaterOH = 0.9572;        ///< A
inline constexpr double kWaterAngleDeg = 104.52;  ///< degrees
inline constexpr double kChainBond = 1.53;        ///< A
inline constexpr double kChainAngleDeg = 111.0;   ///< degrees
inline constexpr double kSideBond = 1.53;         ///< A
}  // namespace geom

}  // namespace scalemd
