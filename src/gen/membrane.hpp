#pragma once

#include "gen/placement.hpp"
#include "gen/stdff.hpp"
#include "topo/molecule.hpp"
#include "util/random.hpp"

namespace scalemd {

/// Parameters for the lipid-like molecule builder.
struct LipidOptions {
  int tail_len = 12;  ///< beads per tail
  int tails = 2;      ///< tails per lipid
};

/// Adds one lipid: a zwitterionic two-bead head group at `head_pos` with
/// `tails` zigzag bead tails extending along `dir` (a unit vector, typically
/// +z or -z). Returns the number of atoms added, or 0 if the head position
/// clashes.
int add_lipid(Molecule& mol, const StdFF& ff, PlacementGrid& grid,
              const Vec3& head_pos, const Vec3& dir, const LipidOptions& opt,
              Rng& rng);

/// Adds a bilayer disc of lipids centered at `center`: heads on two leaflet
/// planes at center.z +/- leaflet_offset, tails pointing inward, arranged on
/// a jittered hexagonal-ish lattice of the given `spacing` within `radius`
/// of the disc axis. Returns the number of atoms added.
int add_bilayer_disc(Molecule& mol, const StdFF& ff, PlacementGrid& grid,
                     const Vec3& center, double radius, double spacing,
                     double leaflet_offset, const LipidOptions& opt, Rng& rng);

}  // namespace scalemd
