#include "gen/chain.hpp"

#include <cmath>

namespace scalemd {

namespace {

constexpr double kDeg = M_PI / 180.0;
/// Exterior angle of the walk; consecutive bonds then meet at kChainAngleDeg.
const double kBend = (180.0 - geom::kChainAngleDeg) * kDeg;

/// Any unit vector perpendicular to d.
Vec3 perpendicular(const Vec3& d) {
  const Vec3 trial = std::fabs(d.x) < 0.9 ? Vec3{1, 0, 0} : Vec3{0, 1, 0};
  return normalized(cross(d, trial));
}

bool inside(const Vec3& p, const Vec3& lo, const Vec3& hi, double margin) {
  return p.x >= lo.x + margin && p.x < hi.x - margin && p.y >= lo.y + margin &&
         p.y < hi.y - margin && p.z >= lo.z + margin && p.z < hi.z - margin;
}

}  // namespace

int add_chain(Molecule& mol, const StdFF& ff, PlacementGrid& grid,
              const ChainOptions& opt, Rng& rng) {
  const Vec3 center = (opt.lo + opt.hi) * 0.5;
  const int first = mol.atom_count();

  // Find a clash-free starting point.
  Vec3 pos = center;
  for (int attempt = 0; attempt < 4096; ++attempt) {
    const Vec3 p{rng.uniform(opt.lo.x + 2, opt.hi.x - 2),
                 rng.uniform(opt.lo.y + 2, opt.hi.y - 2),
                 rng.uniform(opt.lo.z + 2, opt.hi.z - 2)};
    if (grid.is_free(p)) {
      pos = p;
      break;
    }
  }

  Vec3 dir = rng.unit_vector();
  int prev = -1;         // previous backbone atom index
  int prev2 = -1, prev3 = -1;
  double sign = 1.0;     // alternating backbone partial charge

  for (int i = 0; i < opt.beads; ++i) {
    // Heavy backbone bead; alternate C-like and N-like for charge variety.
    const bool is_n = (i % 4 == 1);
    const int cur = mol.add_atom(
        {is_n ? 14.007 : 12.011, sign * opt.charge_mag, is_n ? ff.lj_n : ff.lj_c},
        pos);
    sign = -sign;

    if (prev >= 0) mol.add_bond(prev, cur, ff.b_cc);
    if (prev2 >= 0) mol.add_angle(prev2, prev, cur, ff.a_ccc);
    if (prev3 >= 0) mol.add_dihedral(prev3, prev2, prev, cur, ff.d_cccc);

    // Side bead with an improper keeping it near the local backbone frame.
    // Placed before `pos` is registered in the grid: the bead necessarily
    // sits within the clash radius of its own backbone atom.
    if (opt.side_every > 0 && i % opt.side_every == 1 && prev >= 0) {
      // Branch off at the backbone bend angle (like a next backbone step
      // with its own azimuth): a perpendicular branch would sit exactly
      // sqrt(2) bond lengths from `prev`, inside the clash radius.
      const Vec3 axis = rotate(perpendicular(dir), dir, rng.uniform(0, 2 * M_PI));
      const Vec3 side_dir = rotate(dir, axis, kBend);
      const Vec3 side_pos = pos + side_dir * geom::kSideBond;
      if (inside(side_pos, opt.lo, opt.hi, 0.5) && grid.is_free(side_pos)) {
        const int s = mol.add_atom({12.011, 0.0, ff.lj_s}, side_pos);
        grid.add(side_pos);
        mol.add_bond(cur, s, ff.b_cs);
        mol.add_angle(prev, cur, s, ff.a_ccc);
        // Out-of-plane restraint for the branch relative to the backbone.
        if (prev2 >= 0) mol.add_improper(s, prev2, prev, cur, ff.i_branch);
      }
    }
    grid.add(pos);

    // Advance the walk: bend `dir` by the fixed exterior angle around a
    // random perpendicular axis; retry a few azimuths for self-avoidance.
    Vec3 next_pos;
    Vec3 next_dir = dir;
    double best_clearance = -1.0;
    for (int attempt = 0; attempt < 16; ++attempt) {
      const Vec3 axis = rotate(perpendicular(dir), dir, rng.uniform(0, 2 * M_PI));
      const Vec3 cand_dir = rotate(dir, axis, kBend);
      const Vec3 cand = pos + cand_dir * geom::kChainBond;
      if (!inside(cand, opt.lo, opt.hi, 1.0)) continue;
      const double clearance = grid.min_dist2(cand);
      if (clearance > best_clearance) {
        best_clearance = clearance;
        next_dir = cand_dir;
        next_pos = cand;
      }
      if (grid.is_free(cand)) break;  // clash-free step found
    }
    if (best_clearance < 1.0) {
      // Walk hit a wall or a badly crowded pocket (sub-angstrom contacts
      // blow up the potential): also probe center-seeking directions and
      // keep the overall least-crowded step.
      for (int attempt = 0; attempt < 8; ++attempt) {
        const Vec3 d = normalized(normalized(center - pos) * 2.0 + rng.unit_vector());
        const Vec3 cand = pos + d * geom::kChainBond;
        const double clearance = grid.min_dist2(cand);
        if (clearance > best_clearance) {
          best_clearance = clearance;
          next_dir = d;
          next_pos = cand;
        }
      }
    }

    prev3 = prev2;
    prev2 = prev;
    prev = cur;
    pos = next_pos;
    // Renormalize: repeated Rodrigues rotations accumulate ~1e-8 of norm
    // drift over a few dozen steps, which would leak into bond lengths.
    dir = normalized(next_dir);
  }

  return mol.atom_count() - first;
}

}  // namespace scalemd
