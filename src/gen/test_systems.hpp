#pragma once

#include <cstdint>

#include "topo/molecule.hpp"

namespace scalemd {

/// Families of miniature synthetic systems for randomized testing. Each is a
/// shrunken cousin of one preset composition (see presets.hpp): pure water,
/// a solvated bead chain, or a small bilayer patch in water.
enum class TestSystemKind {
  kWaterBox,
  kSolvatedChain,
  kMembranePatch,
};

/// Knobs for make_test_system. Every field participates in the scenario
/// fuzzer's search space, so defaults are deliberately tiny: a complete
/// system builds in well under a millisecond.
struct TestSystemOptions {
  TestSystemKind kind = TestSystemKind::kWaterBox;
  /// Box edges in Angstrom. The fuzzer jitters these in [10, 18]; the
  /// builder clamps anything below 8 A up to 8 A so water always fits.
  Vec3 box{12.0, 12.0, 12.0};
  /// Backbone beads of the chain (kSolvatedChain only).
  int chain_beads = 24;
  /// Dissolved salt: adds `ion_pairs` +1 ions and `ion_pairs` -1 ions at
  /// clash-free jittered sites before solvating, keeping the box net-neutral.
  /// This is the charged preset driving the full-electrostatics (PME) paths.
  int ion_pairs = 0;
  /// Maxwell-Boltzmann temperature in Kelvin; <= 0 leaves velocities zero.
  double temperature = 300.0;
  std::uint64_t seed = 1;
};

/// Builds a small validated system of the requested kind. Deterministic in
/// `opt` alone: geometry draws from Rng::derive(seed, "placement") and
/// velocities from Rng::derive(seed, "velocities"), so the same options
/// replay bit-identically regardless of caller RNG state.
Molecule make_test_system(const TestSystemOptions& opt);

const char* test_system_kind_name(TestSystemKind kind);

}  // namespace scalemd
