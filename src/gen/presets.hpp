#pragma once

#include <cstdint>

#include "topo/molecule.hpp"

namespace scalemd {

/// Synthetic stand-ins for the paper's benchmark systems (see DESIGN.md,
/// substitution 2). Each preset reproduces the published atom count exactly,
/// the approximate density and spatial composition (protein / lipid / water),
/// and — via Molecule::suggested_patch_size — the published patch grid at a
/// 12 A cutoff.

/// ApoA-I-class system: 92,224 atoms, lipid bilayer disc wrapped by
/// protein-like belt chains, solvated in water; 7 x 7 x 5 = 245 patches.
Molecule apoa1_like(std::uint64_t seed = 1);

/// BC1-class system: 206,617 atoms, large membrane-protein assembly in
/// water; 7 x 6 x 9 = 378 patches.
Molecule bc1_like(std::uint64_t seed = 2);

/// bR-class system: 3,762 atoms, protein-only (in vacuo, as was typical for
/// small 1990s benchmarks); 3 x 4 x 3 = 36 patches.
Molecule br_like(std::uint64_t seed = 3);

/// A small, fast system for tests and the quickstart example: a solvated
/// short chain, ~n_target atoms (default a few thousand).
Molecule small_solvated_chain(int n_target = 3000, std::uint64_t seed = 7);

/// Scaled-down ApoA-I-like system with the same composition recipe but a
/// box shrunk by `factor` in each dimension. Used by tests and by benches
/// honoring the SCALEMD_BENCH_SCALE environment variable.
Molecule apoa1_like_scaled(double factor, std::uint64_t seed = 1);

}  // namespace scalemd
