#include "gen/placement.hpp"

#include <algorithm>
#include <cmath>

namespace scalemd {

PlacementGrid::PlacementGrid(const Vec3& box, double min_dist)
    : box_(box), min_dist2_(min_dist * min_dist), inv_cell_(1.0 / min_dist) {
  nx_ = std::max(1, static_cast<int>(box.x * inv_cell_));
  ny_ = std::max(1, static_cast<int>(box.y * inv_cell_));
  nz_ = std::max(1, static_cast<int>(box.z * inv_cell_));
  cells_.resize(static_cast<std::size_t>(nx_) * ny_ * nz_);
}

int PlacementGrid::cell_index(const Vec3& p) const {
  const int ix = std::clamp(static_cast<int>(p.x * inv_cell_), 0, nx_ - 1);
  const int iy = std::clamp(static_cast<int>(p.y * inv_cell_), 0, ny_ - 1);
  const int iz = std::clamp(static_cast<int>(p.z * inv_cell_), 0, nz_ - 1);
  return (iz * ny_ + iy) * nx_ + ix;
}

double PlacementGrid::min_dist2(const Vec3& p) const {
  const int ix = std::clamp(static_cast<int>(p.x * inv_cell_), 0, nx_ - 1);
  const int iy = std::clamp(static_cast<int>(p.y * inv_cell_), 0, ny_ - 1);
  const int iz = std::clamp(static_cast<int>(p.z * inv_cell_), 0, nz_ - 1);
  double best = min_dist2_;
  for (int dz = -1; dz <= 1; ++dz) {
    const int z = iz + dz;
    if (z < 0 || z >= nz_) continue;
    for (int dy = -1; dy <= 1; ++dy) {
      const int y = iy + dy;
      if (y < 0 || y >= ny_) continue;
      for (int dx = -1; dx <= 1; ++dx) {
        const int x = ix + dx;
        if (x < 0 || x >= nx_) continue;
        const auto& cell = cells_[(static_cast<std::size_t>(z) * ny_ + y) * nx_ + x];
        for (const Vec3& q : cell) best = std::min(best, norm2(p - q));
      }
    }
  }
  return best;
}

bool PlacementGrid::is_free(const Vec3& p) const {
  const int ix = std::clamp(static_cast<int>(p.x * inv_cell_), 0, nx_ - 1);
  const int iy = std::clamp(static_cast<int>(p.y * inv_cell_), 0, ny_ - 1);
  const int iz = std::clamp(static_cast<int>(p.z * inv_cell_), 0, nz_ - 1);
  for (int dz = -1; dz <= 1; ++dz) {
    const int z = iz + dz;
    if (z < 0 || z >= nz_) continue;
    for (int dy = -1; dy <= 1; ++dy) {
      const int y = iy + dy;
      if (y < 0 || y >= ny_) continue;
      for (int dx = -1; dx <= 1; ++dx) {
        const int x = ix + dx;
        if (x < 0 || x >= nx_) continue;
        const auto& cell = cells_[(static_cast<std::size_t>(z) * ny_ + y) * nx_ + x];
        for (const Vec3& q : cell) {
          if (norm2(p - q) < min_dist2_) return false;
        }
      }
    }
  }
  return true;
}

void PlacementGrid::add(const Vec3& p) {
  cells_[static_cast<std::size_t>(cell_index(p))].push_back(p);
  ++count_;
}

}  // namespace scalemd
