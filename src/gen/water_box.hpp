#pragma once

#include <cstdint>

#include "gen/placement.hpp"
#include "gen/stdff.hpp"
#include "topo/molecule.hpp"
#include "util/random.hpp"

namespace scalemd {

/// Adds one TIP3P-like water (O + 2 H, bonds and angle) with the oxygen at
/// `o_pos` and a random orientation drawn from `rng`. Records only the oxygen
/// in `grid` (hydrogens sit well inside the clash radius). Returns the oxygen
/// atom index.
int add_water(Molecule& mol, const StdFF& ff, PlacementGrid& grid, const Vec3& o_pos,
              Rng& rng);

/// Fills the axis-aligned region [lo, hi) with waters on a jittered cubic
/// lattice (spacing ~3.1 A, matching liquid-water density), skipping sites
/// whose oxygen would clash with `grid`. Stops after `max_waters` molecules.
/// Returns the number of waters added.
int fill_water(Molecule& mol, const StdFF& ff, PlacementGrid& grid, const Vec3& lo,
               const Vec3& hi, int max_waters, Rng& rng);

/// Adds a single monovalent ion (used by the presets to hit exact benchmark
/// atom counts); `charge` should be +1 or -1. Returns the atom index, or -1
/// if no clash-free position was found.
int add_ion(Molecule& mol, const StdFF& ff, PlacementGrid& grid, double charge,
            Rng& rng);

/// Builds a standalone water-box system of the given box size, filled with
/// water at liquid density. Velocities are zero; callers wanting dynamics
/// should call assign_velocities.
Molecule make_water_box(const Vec3& box, std::uint64_t seed);

}  // namespace scalemd
