#include "topo/exclusions.hpp"

#include <algorithm>

#include "topo/molecule.hpp"

namespace scalemd {

namespace {

/// Builds a CSR structure from per-atom sorted partner lists.
void to_csr(const std::vector<std::vector<int>>& rows,
            std::vector<std::uint32_t>& off, std::vector<int>& data) {
  off.resize(rows.size() + 1);
  off[0] = 0;
  std::size_t total = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    total += rows[i].size();
    off[i + 1] = static_cast<std::uint32_t>(total);
  }
  data.reserve(total);
  for (const auto& r : rows) data.insert(data.end(), r.begin(), r.end());
}

}  // namespace

ExclusionTable ExclusionTable::build(const Molecule& mol) {
  const int n = mol.atom_count();
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  for (const auto& b : mol.bonds()) {
    adj[static_cast<std::size_t>(b.a)].push_back(b.b);
    adj[static_cast<std::size_t>(b.b)].push_back(b.a);
  }

  std::vector<std::vector<int>> full(static_cast<std::size_t>(n));
  std::vector<std::vector<int>> mod(static_cast<std::size_t>(n));

  // Depth-limited BFS from every atom. depth[] doubles as a visited marker,
  // reset lazily via the touched list to keep the build O(atoms * degree^3).
  std::vector<int> depth(static_cast<std::size_t>(n), -1);
  std::vector<int> touched;
  std::vector<int> frontier, next;
  for (int src = 0; src < n; ++src) {
    frontier.assign(1, src);
    depth[static_cast<std::size_t>(src)] = 0;
    touched.assign(1, src);
    for (int d = 1; d <= 3; ++d) {
      next.clear();
      for (int u : frontier) {
        for (int v : adj[static_cast<std::size_t>(u)]) {
          if (depth[static_cast<std::size_t>(v)] >= 0) continue;
          depth[static_cast<std::size_t>(v)] = d;
          touched.push_back(v);
          next.push_back(v);
        }
      }
      frontier.swap(next);
    }
    for (int v : touched) {
      const int d = depth[static_cast<std::size_t>(v)];
      depth[static_cast<std::size_t>(v)] = -1;
      if (v == src) continue;
      if (d <= 2) {
        full[static_cast<std::size_t>(src)].push_back(v);
      } else {
        mod[static_cast<std::size_t>(src)].push_back(v);
      }
    }
  }

  for (auto& r : full) std::sort(r.begin(), r.end());
  for (auto& r : mod) std::sort(r.begin(), r.end());

  ExclusionTable t;
  to_csr(full, t.full_off_, t.full_);
  to_csr(mod, t.mod_off_, t.mod_);
  return t;
}

ExclusionKind ExclusionTable::check(int i, int j) const {
  if (i == j) return ExclusionKind::kFull;
  const auto f = excluded(i);
  if (std::binary_search(f.begin(), f.end(), j)) return ExclusionKind::kFull;
  const auto m = modified(i);
  if (std::binary_search(m.begin(), m.end(), j)) return ExclusionKind::kModified14;
  return ExclusionKind::kNone;
}

std::span<const int> ExclusionTable::excluded(int i) const {
  const auto lo = full_off_[static_cast<std::size_t>(i)];
  const auto hi = full_off_[static_cast<std::size_t>(i) + 1];
  return {full_.data() + lo, hi - lo};
}

std::span<const int> ExclusionTable::modified(int i) const {
  const auto lo = mod_off_[static_cast<std::size_t>(i)];
  const auto hi = mod_off_[static_cast<std::size_t>(i) + 1];
  return {mod_.data() + lo, hi - lo};
}

}  // namespace scalemd
