#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topo/parameters.hpp"
#include "util/vec3.hpp"

namespace scalemd {

/// Static per-atom properties. Positions/velocities live in parallel arrays
/// on Molecule so the hot kernels can work on contiguous data.
struct Atom {
  double mass = 0.0;    ///< amu
  double charge = 0.0;  ///< e
  int lj_type = 0;      ///< index into ParameterTable LJ types
};

/// 2-body bonded term; `param` indexes ParameterTable::bond.
struct Bond {
  int a = 0, b = 0;
  int param = 0;
};

/// 3-body angle term centered on atom b.
struct Angle {
  int a = 0, b = 0, c = 0;
  int param = 0;
};

/// 4-body dihedral term over the chain a-b-c-d.
struct Dihedral {
  int a = 0, b = 0, c = 0, d = 0;
  int param = 0;
};

/// 4-body improper term keeping a out of the b-c-d plane.
struct Improper {
  int a = 0, b = 0, c = 0, d = 0;
  int param = 0;
};

/// A complete molecular system: atoms with coordinates and velocities,
/// bonded topology, force-field parameters and the enclosing simulation box.
/// The box is non-periodic (see DESIGN.md); generators place all atoms
/// strictly inside it.
class Molecule {
 public:
  /// Human-readable system name (e.g. "apoa1-like"), used in bench output.
  std::string name = "unnamed";

  /// Axis-aligned box extent in angstroms; atoms live in [0, box).
  Vec3 box;

  /// Minimum patch (cube) edge the spatial decomposition should use for this
  /// system, in angstroms. Zero means "derive from the cutoff". The
  /// benchmark presets set this to reproduce the paper's patch grids
  /// (e.g. 7x7x5 = 245 patches for the ApoA-I-class system).
  double suggested_patch_size = 0.0;

  ParameterTable params;

  /// Adds an atom at `pos` with zero velocity; returns its index.
  int add_atom(const Atom& a, const Vec3& pos);

  void add_bond(int a, int b, int param);
  void add_angle(int a, int b, int c, int param);
  void add_dihedral(int a, int b, int c, int d, int param);
  void add_improper(int a, int b, int c, int d, int param);

  int atom_count() const { return static_cast<int>(atoms_.size()); }

  const std::vector<Atom>& atoms() const { return atoms_; }
  const std::vector<Vec3>& positions() const { return positions_; }
  std::vector<Vec3>& positions() { return positions_; }
  const std::vector<Vec3>& velocities() const { return velocities_; }
  std::vector<Vec3>& velocities() { return velocities_; }

  const std::vector<Bond>& bonds() const { return bonds_; }
  const std::vector<Angle>& angles() const { return angles_; }
  const std::vector<Dihedral>& dihedrals() const { return dihedrals_; }
  const std::vector<Improper>& impropers() const { return impropers_; }

  /// Appends all atoms and bonded terms of `other`, translating its
  /// coordinates by `offset`. The two systems must share the same
  /// ParameterTable contents; the caller is responsible for constructing
  /// both against identical parameter indices (the generators do this).
  void merge(const Molecule& other, const Vec3& offset);

  /// Assigns Maxwell-Boltzmann velocities at temperature `kelvin` using
  /// `seed`; removes net momentum so the system does not drift.
  void assign_velocities(double kelvin, std::uint64_t seed);

  /// Verifies every bonded-term atom index and parameter index is in range
  /// and every atom lies inside the box; throws std::runtime_error on the
  /// first violation. Generators call this before returning a system.
  void validate() const;

  /// Total mass in amu.
  double total_mass() const;

 private:
  std::vector<Atom> atoms_;
  std::vector<Vec3> positions_;
  std::vector<Vec3> velocities_;
  std::vector<Bond> bonds_;
  std::vector<Angle> angles_;
  std::vector<Dihedral> dihedrals_;
  std::vector<Improper> impropers_;
};

}  // namespace scalemd
