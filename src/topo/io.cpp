#include "topo/io.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

namespace scalemd {

namespace {

constexpr const char* kMagic = "scalemd-molecule 1";

/// Crude element guess from atomic mass, for XYZ viewers only.
const char* element_for_mass(double mass) {
  if (mass < 2.0) return "H";
  if (mass < 13.5) return "C";
  if (mass < 15.5) return "N";
  if (mass < 17.5) return "O";
  if (mass < 24.0) return "Na";
  if (mass < 33.0) return "P";
  return "C";
}

/// Whitespace-token scanner over the input stream that counts newlines, so
/// every error can name the exact line it happened on. All number parsing
/// validates the complete token (no "1.5garbage") and rejects non-finite
/// values — a molecule file never legitimately contains inf or nan.
class Reader {
 public:
  Reader(std::istream& is, std::string source)
      : is_(is), source_(std::move(source)) {}

  [[noreturn]] void fail(const std::string& reason) const {
    throw MoleculeParseError(source_, line_, reason);
  }

  int line() const { return line_; }

  /// Reads the rest of the current line (for the free-form name field).
  std::string rest_of_line() {
    std::string text;
    std::getline(is_, text);
    ++line_;
    if (!text.empty() && text.front() == ' ') text.erase(0, 1);
    return text;
  }

  /// Requires the literal header line `expected` next.
  void expect_line(const std::string& expected, const char* what) {
    std::string text;
    if (!std::getline(is_, text)) fail(std::string("missing ") + what);
    if (!text.empty() && text.back() == '\r') text.pop_back();
    if (text != expected) fail(std::string("bad ") + what);
    ++line_;
  }

  /// Requires the keyword `key` as the next token.
  void expect_key(const char* key) {
    std::string tok;
    if (!next_token(tok)) fail(std::string("expected '") + key + "', got end of input");
    if (tok != key) fail(std::string("expected '") + key + "', got '" + tok + "'");
  }

  double expect_double(const char* what) {
    std::string tok;
    if (!next_token(tok)) {
      fail(std::string("truncated input: expected ") + what);
    }
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size() || tok.empty() || errno == ERANGE ||
        !std::isfinite(v)) {
      fail(std::string("expected a finite number for ") + what + ", got '" + tok + "'");
    }
    return v;
  }

  long expect_integer(const char* what, long min_value, long max_value) {
    std::string tok;
    if (!next_token(tok)) {
      fail(std::string("truncated input: expected ") + what);
    }
    errno = 0;
    char* end = nullptr;
    const long v = std::strtol(tok.c_str(), &end, 10);
    if (end != tok.c_str() + tok.size() || tok.empty() || errno == ERANGE) {
      fail(std::string("expected an integer for ") + what + ", got '" + tok + "'");
    }
    if (v < min_value || v > max_value) {
      fail(std::string(what) + " " + tok + " out of range [" +
           std::to_string(min_value) + ", " + std::to_string(max_value) + "]");
    }
    return v;
  }

  std::size_t expect_count(const char* section) {
    expect_key(section);
    return static_cast<std::size_t>(expect_integer(
        (std::string(section) + " count").c_str(), 0,
        std::numeric_limits<long>::max()));
  }

 private:
  /// Next whitespace-delimited token; false at end of input.
  bool next_token(std::string& tok) {
    tok.clear();
    int c = is_.get();
    while (c != EOF && (c == ' ' || c == '\t' || c == '\n' || c == '\r')) {
      if (c == '\n') ++line_;
      c = is_.get();
    }
    if (c == EOF) return false;
    while (c != EOF && c != ' ' && c != '\t' && c != '\n' && c != '\r') {
      tok += static_cast<char>(c);
      c = is_.get();
    }
    if (c == '\n') ++line_;
    return true;
  }

  std::istream& is_;
  std::string source_;
  int line_ = 1;
};

}  // namespace

MoleculeParseError::MoleculeParseError(const std::string& source, int line,
                                       const std::string& reason)
    : std::runtime_error(source + ":" + std::to_string(line) + ": " + reason),
      source_(source),
      line_(line) {}

void save_molecule(const Molecule& mol, std::ostream& os) {
  os << kMagic << '\n';
  os << std::setprecision(17);
  os << "name " << mol.name << '\n';
  os << "box " << mol.box.x << ' ' << mol.box.y << ' ' << mol.box.z << '\n';
  os << "patchsize " << mol.suggested_patch_size << '\n';
  os << "scale14 " << mol.params.scale14 << '\n';

  os << "ljtypes " << mol.params.lj_type_count() << '\n';
  for (std::size_t i = 0; i < mol.params.lj_type_count(); ++i) {
    const LJType& t = mol.params.lj_type(static_cast<int>(i));
    os << t.epsilon << ' ' << t.rmin_half << '\n';
  }
  os << "bondparams " << mol.params.bond_param_count() << '\n';
  for (std::size_t i = 0; i < mol.params.bond_param_count(); ++i) {
    const BondParam& p = mol.params.bond(static_cast<int>(i));
    os << p.k << ' ' << p.r0 << '\n';
  }
  os << "angleparams " << mol.params.angle_param_count() << '\n';
  for (std::size_t i = 0; i < mol.params.angle_param_count(); ++i) {
    const AngleParam& p = mol.params.angle(static_cast<int>(i));
    os << p.k << ' ' << p.theta0 << '\n';
  }
  os << "dihedralparams " << mol.params.dihedral_param_count() << '\n';
  for (std::size_t i = 0; i < mol.params.dihedral_param_count(); ++i) {
    const DihedralParam& p = mol.params.dihedral(static_cast<int>(i));
    os << p.k << ' ' << p.n << ' ' << p.delta << '\n';
  }
  os << "improperparams " << mol.params.improper_param_count() << '\n';
  for (std::size_t i = 0; i < mol.params.improper_param_count(); ++i) {
    const ImproperParam& p = mol.params.improper(static_cast<int>(i));
    os << p.k << ' ' << p.psi0 << '\n';
  }

  os << "atoms " << mol.atom_count() << '\n';
  for (int i = 0; i < mol.atom_count(); ++i) {
    const Atom& a = mol.atoms()[static_cast<std::size_t>(i)];
    const Vec3& x = mol.positions()[static_cast<std::size_t>(i)];
    const Vec3& v = mol.velocities()[static_cast<std::size_t>(i)];
    os << a.mass << ' ' << a.charge << ' ' << a.lj_type << ' ' << x.x << ' ' << x.y
       << ' ' << x.z << ' ' << v.x << ' ' << v.y << ' ' << v.z << '\n';
  }
  os << "bonds " << mol.bonds().size() << '\n';
  for (const Bond& t : mol.bonds()) {
    os << t.a << ' ' << t.b << ' ' << t.param << '\n';
  }
  os << "angles " << mol.angles().size() << '\n';
  for (const Angle& t : mol.angles()) {
    os << t.a << ' ' << t.b << ' ' << t.c << ' ' << t.param << '\n';
  }
  os << "dihedrals " << mol.dihedrals().size() << '\n';
  for (const Dihedral& t : mol.dihedrals()) {
    os << t.a << ' ' << t.b << ' ' << t.c << ' ' << t.d << ' ' << t.param << '\n';
  }
  os << "impropers " << mol.impropers().size() << '\n';
  for (const Improper& t : mol.impropers()) {
    os << t.a << ' ' << t.b << ' ' << t.c << ' ' << t.d << ' ' << t.param << '\n';
  }
  os << "end\n";
}

void save_molecule(const Molecule& mol, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_molecule: cannot open " + path);
  save_molecule(mol, os);
}

Molecule load_molecule(std::istream& is, const std::string& source_name) {
  Reader r(is, source_name);
  r.expect_line(kMagic, "magic (want \"scalemd-molecule 1\")");

  Molecule mol;
  r.expect_key("name");
  mol.name = r.rest_of_line();
  r.expect_key("box");
  mol.box.x = r.expect_double("box x");
  mol.box.y = r.expect_double("box y");
  mol.box.z = r.expect_double("box z");
  if (mol.box.x <= 0.0 || mol.box.y <= 0.0 || mol.box.z <= 0.0) {
    r.fail("box extents must be positive");
  }
  r.expect_key("patchsize");
  mol.suggested_patch_size = r.expect_double("patchsize");
  if (mol.suggested_patch_size < 0.0) r.fail("patchsize must be >= 0");
  r.expect_key("scale14");
  mol.params.scale14 = r.expect_double("scale14");

  const std::size_t nlj = r.expect_count("ljtypes");
  for (std::size_t i = 0; i < nlj; ++i) {
    const double eps = r.expect_double("ljtype epsilon");
    const double rmin = r.expect_double("ljtype rmin_half");
    mol.params.add_lj_type(eps, rmin);
  }
  const std::size_t nbp = r.expect_count("bondparams");
  for (std::size_t i = 0; i < nbp; ++i) {
    const double k = r.expect_double("bond k");
    const double r0 = r.expect_double("bond r0");
    mol.params.add_bond_param(k, r0);
  }
  const std::size_t nap = r.expect_count("angleparams");
  for (std::size_t i = 0; i < nap; ++i) {
    const double k = r.expect_double("angle k");
    const double t0 = r.expect_double("angle theta0");
    mol.params.add_angle_param(k, t0);
  }
  const std::size_t ndp = r.expect_count("dihedralparams");
  for (std::size_t i = 0; i < ndp; ++i) {
    const double k = r.expect_double("dihedral k");
    const int n = static_cast<int>(r.expect_integer("dihedral n", 0, 1 << 20));
    const double delta = r.expect_double("dihedral delta");
    mol.params.add_dihedral_param(k, n, delta);
  }
  const std::size_t nip = r.expect_count("improperparams");
  for (std::size_t i = 0; i < nip; ++i) {
    const double k = r.expect_double("improper k");
    const double psi0 = r.expect_double("improper psi0");
    mol.params.add_improper_param(k, psi0);
  }
  mol.params.finalize();

  const std::size_t natoms = r.expect_count("atoms");
  const long max_atom = static_cast<long>(natoms) - 1;
  for (std::size_t i = 0; i < natoms; ++i) {
    Atom a;
    Vec3 x, v;
    a.mass = r.expect_double("atom mass");
    if (a.mass <= 0.0) r.fail("atom mass must be positive");
    a.charge = r.expect_double("atom charge");
    a.lj_type = static_cast<int>(r.expect_integer(
        "atom lj_type", 0, static_cast<long>(nlj) - 1));
    x.x = r.expect_double("atom x");
    x.y = r.expect_double("atom y");
    x.z = r.expect_double("atom z");
    v.x = r.expect_double("atom vx");
    v.y = r.expect_double("atom vy");
    v.z = r.expect_double("atom vz");
    const int idx = mol.add_atom(a, x);
    mol.velocities()[static_cast<std::size_t>(idx)] = v;
  }
  const std::size_t nb = r.expect_count("bonds");
  const long max_param_b = static_cast<long>(nbp) - 1;
  for (std::size_t i = 0; i < nb; ++i) {
    const int a = static_cast<int>(r.expect_integer("bond atom a", 0, max_atom));
    const int b = static_cast<int>(r.expect_integer("bond atom b", 0, max_atom));
    const int p = static_cast<int>(r.expect_integer("bond param", 0, max_param_b));
    mol.add_bond(a, b, p);
  }
  const std::size_t na = r.expect_count("angles");
  const long max_param_a = static_cast<long>(nap) - 1;
  for (std::size_t i = 0; i < na; ++i) {
    const int a = static_cast<int>(r.expect_integer("angle atom a", 0, max_atom));
    const int b = static_cast<int>(r.expect_integer("angle atom b", 0, max_atom));
    const int c = static_cast<int>(r.expect_integer("angle atom c", 0, max_atom));
    const int p = static_cast<int>(r.expect_integer("angle param", 0, max_param_a));
    mol.add_angle(a, b, c, p);
  }
  const std::size_t nd = r.expect_count("dihedrals");
  const long max_param_d = static_cast<long>(ndp) - 1;
  for (std::size_t i = 0; i < nd; ++i) {
    const int a = static_cast<int>(r.expect_integer("dihedral atom a", 0, max_atom));
    const int b = static_cast<int>(r.expect_integer("dihedral atom b", 0, max_atom));
    const int c = static_cast<int>(r.expect_integer("dihedral atom c", 0, max_atom));
    const int d = static_cast<int>(r.expect_integer("dihedral atom d", 0, max_atom));
    const int p = static_cast<int>(r.expect_integer("dihedral param", 0, max_param_d));
    mol.add_dihedral(a, b, c, d, p);
  }
  const std::size_t ni = r.expect_count("impropers");
  const long max_param_i = static_cast<long>(nip) - 1;
  for (std::size_t i = 0; i < ni; ++i) {
    const int a = static_cast<int>(r.expect_integer("improper atom a", 0, max_atom));
    const int b = static_cast<int>(r.expect_integer("improper atom b", 0, max_atom));
    const int c = static_cast<int>(r.expect_integer("improper atom c", 0, max_atom));
    const int d = static_cast<int>(r.expect_integer("improper atom d", 0, max_atom));
    const int p = static_cast<int>(r.expect_integer("improper param", 0, max_param_i));
    mol.add_improper(a, b, c, d, p);
  }
  r.expect_key("end");

  // Semantic checks the per-token scanner cannot express (self bonds, atoms
  // outside the box, ...): surface them as parse errors at the end marker's
  // line rather than a bare runtime_error.
  try {
    mol.validate();
  } catch (const std::runtime_error& e) {
    r.fail(e.what());
  }
  return mol;
}

Molecule load_molecule(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_molecule: cannot open " + path);
  return load_molecule(is, path);
}

void write_xyz(const Molecule& mol, std::ostream& os, const std::string& comment) {
  os << mol.atom_count() << '\n' << comment << '\n';
  os << std::setprecision(8);
  for (int i = 0; i < mol.atom_count(); ++i) {
    const Vec3& x = mol.positions()[static_cast<std::size_t>(i)];
    os << element_for_mass(mol.atoms()[static_cast<std::size_t>(i)].mass) << ' '
       << x.x << ' ' << x.y << ' ' << x.z << '\n';
  }
}

}  // namespace scalemd
