#include "topo/io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace scalemd {

namespace {

constexpr const char* kMagic = "scalemd-molecule 1";

void fail(const std::string& what) {
  throw std::runtime_error("load_molecule: " + what);
}

std::size_t read_count(std::istream& is, const char* section) {
  std::string key;
  std::size_t n = 0;
  if (!(is >> key >> n) || key != section) {
    fail(std::string("expected section '") + section + "'");
  }
  return n;
}

/// Crude element guess from atomic mass, for XYZ viewers only.
const char* element_for_mass(double mass) {
  if (mass < 2.0) return "H";
  if (mass < 13.5) return "C";
  if (mass < 15.5) return "N";
  if (mass < 17.5) return "O";
  if (mass < 24.0) return "Na";
  if (mass < 33.0) return "P";
  return "C";
}

}  // namespace

void save_molecule(const Molecule& mol, std::ostream& os) {
  os << kMagic << '\n';
  os << std::setprecision(17);
  os << "name " << mol.name << '\n';
  os << "box " << mol.box.x << ' ' << mol.box.y << ' ' << mol.box.z << '\n';
  os << "patchsize " << mol.suggested_patch_size << '\n';
  os << "scale14 " << mol.params.scale14 << '\n';

  os << "ljtypes " << mol.params.lj_type_count() << '\n';
  for (std::size_t i = 0; i < mol.params.lj_type_count(); ++i) {
    const LJType& t = mol.params.lj_type(static_cast<int>(i));
    os << t.epsilon << ' ' << t.rmin_half << '\n';
  }
  os << "bondparams " << mol.params.bond_param_count() << '\n';
  for (std::size_t i = 0; i < mol.params.bond_param_count(); ++i) {
    const BondParam& p = mol.params.bond(static_cast<int>(i));
    os << p.k << ' ' << p.r0 << '\n';
  }
  os << "angleparams " << mol.params.angle_param_count() << '\n';
  for (std::size_t i = 0; i < mol.params.angle_param_count(); ++i) {
    const AngleParam& p = mol.params.angle(static_cast<int>(i));
    os << p.k << ' ' << p.theta0 << '\n';
  }
  os << "dihedralparams " << mol.params.dihedral_param_count() << '\n';
  for (std::size_t i = 0; i < mol.params.dihedral_param_count(); ++i) {
    const DihedralParam& p = mol.params.dihedral(static_cast<int>(i));
    os << p.k << ' ' << p.n << ' ' << p.delta << '\n';
  }
  os << "improperparams " << mol.params.improper_param_count() << '\n';
  for (std::size_t i = 0; i < mol.params.improper_param_count(); ++i) {
    const ImproperParam& p = mol.params.improper(static_cast<int>(i));
    os << p.k << ' ' << p.psi0 << '\n';
  }

  os << "atoms " << mol.atom_count() << '\n';
  for (int i = 0; i < mol.atom_count(); ++i) {
    const Atom& a = mol.atoms()[static_cast<std::size_t>(i)];
    const Vec3& x = mol.positions()[static_cast<std::size_t>(i)];
    const Vec3& v = mol.velocities()[static_cast<std::size_t>(i)];
    os << a.mass << ' ' << a.charge << ' ' << a.lj_type << ' ' << x.x << ' ' << x.y
       << ' ' << x.z << ' ' << v.x << ' ' << v.y << ' ' << v.z << '\n';
  }
  os << "bonds " << mol.bonds().size() << '\n';
  for (const Bond& t : mol.bonds()) {
    os << t.a << ' ' << t.b << ' ' << t.param << '\n';
  }
  os << "angles " << mol.angles().size() << '\n';
  for (const Angle& t : mol.angles()) {
    os << t.a << ' ' << t.b << ' ' << t.c << ' ' << t.param << '\n';
  }
  os << "dihedrals " << mol.dihedrals().size() << '\n';
  for (const Dihedral& t : mol.dihedrals()) {
    os << t.a << ' ' << t.b << ' ' << t.c << ' ' << t.d << ' ' << t.param << '\n';
  }
  os << "impropers " << mol.impropers().size() << '\n';
  for (const Improper& t : mol.impropers()) {
    os << t.a << ' ' << t.b << ' ' << t.c << ' ' << t.d << ' ' << t.param << '\n';
  }
  os << "end\n";
}

void save_molecule(const Molecule& mol, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_molecule: cannot open " + path);
  save_molecule(mol, os);
}

Molecule load_molecule(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kMagic) fail("bad magic");

  Molecule mol;
  std::string key;
  if (!(is >> key) || key != "name") fail("expected name");
  std::getline(is, mol.name);
  if (!mol.name.empty() && mol.name.front() == ' ') mol.name.erase(0, 1);
  if (!(is >> key >> mol.box.x >> mol.box.y >> mol.box.z) || key != "box") {
    fail("expected box");
  }
  if (!(is >> key >> mol.suggested_patch_size) || key != "patchsize") {
    fail("expected patchsize");
  }
  if (!(is >> key >> mol.params.scale14) || key != "scale14") {
    fail("expected scale14");
  }

  const std::size_t nlj = read_count(is, "ljtypes");
  for (std::size_t i = 0; i < nlj; ++i) {
    double eps = 0, rmin = 0;
    if (!(is >> eps >> rmin)) fail("truncated ljtypes");
    mol.params.add_lj_type(eps, rmin);
  }
  const std::size_t nbp = read_count(is, "bondparams");
  for (std::size_t i = 0; i < nbp; ++i) {
    double k = 0, r0 = 0;
    if (!(is >> k >> r0)) fail("truncated bondparams");
    mol.params.add_bond_param(k, r0);
  }
  const std::size_t nap = read_count(is, "angleparams");
  for (std::size_t i = 0; i < nap; ++i) {
    double k = 0, t0 = 0;
    if (!(is >> k >> t0)) fail("truncated angleparams");
    mol.params.add_angle_param(k, t0);
  }
  const std::size_t ndp = read_count(is, "dihedralparams");
  for (std::size_t i = 0; i < ndp; ++i) {
    double k = 0, delta = 0;
    int n = 0;
    if (!(is >> k >> n >> delta)) fail("truncated dihedralparams");
    mol.params.add_dihedral_param(k, n, delta);
  }
  const std::size_t nip = read_count(is, "improperparams");
  for (std::size_t i = 0; i < nip; ++i) {
    double k = 0, psi0 = 0;
    if (!(is >> k >> psi0)) fail("truncated improperparams");
    mol.params.add_improper_param(k, psi0);
  }
  mol.params.finalize();

  const std::size_t natoms = read_count(is, "atoms");
  for (std::size_t i = 0; i < natoms; ++i) {
    Atom a;
    Vec3 x, v;
    if (!(is >> a.mass >> a.charge >> a.lj_type >> x.x >> x.y >> x.z >> v.x >> v.y >>
          v.z)) {
      fail("truncated atoms");
    }
    const int idx = mol.add_atom(a, x);
    mol.velocities()[static_cast<std::size_t>(idx)] = v;
  }
  const std::size_t nb = read_count(is, "bonds");
  for (std::size_t i = 0; i < nb; ++i) {
    int a = 0, b = 0, p = 0;
    if (!(is >> a >> b >> p)) fail("truncated bonds");
    mol.add_bond(a, b, p);
  }
  const std::size_t na = read_count(is, "angles");
  for (std::size_t i = 0; i < na; ++i) {
    int a = 0, b = 0, c = 0, p = 0;
    if (!(is >> a >> b >> c >> p)) fail("truncated angles");
    mol.add_angle(a, b, c, p);
  }
  const std::size_t nd = read_count(is, "dihedrals");
  for (std::size_t i = 0; i < nd; ++i) {
    int a = 0, b = 0, c = 0, d = 0, p = 0;
    if (!(is >> a >> b >> c >> d >> p)) fail("truncated dihedrals");
    mol.add_dihedral(a, b, c, d, p);
  }
  const std::size_t ni = read_count(is, "impropers");
  for (std::size_t i = 0; i < ni; ++i) {
    int a = 0, b = 0, c = 0, d = 0, p = 0;
    if (!(is >> a >> b >> c >> d >> p)) fail("truncated impropers");
    mol.add_improper(a, b, c, d, p);
  }
  if (!(is >> key) || key != "end") fail("missing end marker");

  mol.validate();
  return mol;
}

Molecule load_molecule(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_molecule: cannot open " + path);
  return load_molecule(is);
}

void write_xyz(const Molecule& mol, std::ostream& os, const std::string& comment) {
  os << mol.atom_count() << '\n' << comment << '\n';
  os << std::setprecision(8);
  for (int i = 0; i < mol.atom_count(); ++i) {
    const Vec3& x = mol.positions()[static_cast<std::size_t>(i)];
    os << element_for_mass(mol.atoms()[static_cast<std::size_t>(i)].mass) << ' '
       << x.x << ' ' << x.y << ' ' << x.z << '\n';
  }
}

}  // namespace scalemd
