#include "topo/parameters.hpp"

#include <cmath>

namespace scalemd {

int ParameterTable::add_lj_type(double epsilon, double rmin_half) {
  lj_types_.push_back({epsilon, rmin_half});
  finalized_ = false;
  return static_cast<int>(lj_types_.size()) - 1;
}

int ParameterTable::add_bond_param(double k, double r0) {
  bonds_.push_back({k, r0});
  return static_cast<int>(bonds_.size()) - 1;
}

int ParameterTable::add_angle_param(double k, double theta0) {
  angles_.push_back({k, theta0});
  return static_cast<int>(angles_.size()) - 1;
}

int ParameterTable::add_dihedral_param(double k, int n, double delta) {
  dihedrals_.push_back({k, n, delta});
  return static_cast<int>(dihedrals_.size()) - 1;
}

int ParameterTable::add_improper_param(double k, double psi0) {
  impropers_.push_back({k, psi0});
  return static_cast<int>(impropers_.size()) - 1;
}

void ParameterTable::finalize() {
  if (finalized_) return;
  const std::size_t n = lj_types_.size();
  lj_pairs_.assign(n * n, {});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double eps = std::sqrt(lj_types_[i].epsilon * lj_types_[j].epsilon);
      const double rmin = lj_types_[i].rmin_half + lj_types_[j].rmin_half;
      const double r6 = std::pow(rmin, 6);
      lj_pairs_[i * n + j] = {eps * r6 * r6, 2.0 * eps * r6};
    }
  }
  finalized_ = true;
}

}  // namespace scalemd
