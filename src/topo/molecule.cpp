#include "topo/molecule.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/random.hpp"
#include "util/units.hpp"

namespace scalemd {

int Molecule::add_atom(const Atom& a, const Vec3& pos) {
  atoms_.push_back(a);
  positions_.push_back(pos);
  velocities_.push_back({});
  return static_cast<int>(atoms_.size()) - 1;
}

void Molecule::add_bond(int a, int b, int param) { bonds_.push_back({a, b, param}); }

void Molecule::add_angle(int a, int b, int c, int param) {
  angles_.push_back({a, b, c, param});
}

void Molecule::add_dihedral(int a, int b, int c, int d, int param) {
  dihedrals_.push_back({a, b, c, d, param});
}

void Molecule::add_improper(int a, int b, int c, int d, int param) {
  impropers_.push_back({a, b, c, d, param});
}

void Molecule::merge(const Molecule& other, const Vec3& offset) {
  const int base = atom_count();
  atoms_.insert(atoms_.end(), other.atoms_.begin(), other.atoms_.end());
  for (std::size_t i = 0; i < other.positions_.size(); ++i) {
    positions_.push_back(other.positions_[i] + offset);
    velocities_.push_back(other.velocities_[i]);
  }
  for (Bond t : other.bonds_) {
    t.a += base;
    t.b += base;
    bonds_.push_back(t);
  }
  for (Angle t : other.angles_) {
    t.a += base;
    t.b += base;
    t.c += base;
    angles_.push_back(t);
  }
  for (Dihedral t : other.dihedrals_) {
    t.a += base;
    t.b += base;
    t.c += base;
    t.d += base;
    dihedrals_.push_back(t);
  }
  for (Improper t : other.impropers_) {
    t.a += base;
    t.b += base;
    t.c += base;
    t.d += base;
    impropers_.push_back(t);
  }
}

void Molecule::assign_velocities(double kelvin, std::uint64_t seed) {
  Rng rng(seed);
  Vec3 momentum;
  for (std::size_t i = 0; i < atoms_.size(); ++i) {
    // In AKMA units KE = (1/2) m v^2 directly; <v_x^2> = kB*T/m.
    const double sigma = std::sqrt(units::kBoltzmann * kelvin / atoms_[i].mass);
    velocities_[i] = {rng.normal(0.0, sigma), rng.normal(0.0, sigma),
                      rng.normal(0.0, sigma)};
    momentum += velocities_[i] * atoms_[i].mass;
  }
  if (atoms_.empty()) return;
  const Vec3 drift = momentum / total_mass();
  for (auto& v : velocities_) v -= drift;
}

namespace {

void check_index(int idx, int n, const char* what) {
  if (idx < 0 || idx >= n) {
    std::ostringstream os;
    os << "Molecule::validate: " << what << " index " << idx << " out of range [0,"
       << n << ")";
    throw std::runtime_error(os.str());
  }
}

}  // namespace

void Molecule::validate() const {
  const int n = atom_count();
  const int nb = static_cast<int>(params.bond_param_count());
  const int na = static_cast<int>(params.angle_param_count());
  const int nd = static_cast<int>(params.dihedral_param_count());
  const int ni = static_cast<int>(params.improper_param_count());
  const int nt = static_cast<int>(params.lj_type_count());
  for (const auto& a : atoms_) {
    check_index(a.lj_type, nt, "lj_type");
    if (a.mass <= 0.0) throw std::runtime_error("Molecule::validate: mass <= 0");
  }
  for (const auto& t : bonds_) {
    check_index(t.a, n, "bond atom");
    check_index(t.b, n, "bond atom");
    check_index(t.param, nb, "bond param");
    if (t.a == t.b) throw std::runtime_error("Molecule::validate: self bond");
  }
  for (const auto& t : angles_) {
    check_index(t.a, n, "angle atom");
    check_index(t.b, n, "angle atom");
    check_index(t.c, n, "angle atom");
    check_index(t.param, na, "angle param");
  }
  for (const auto& t : dihedrals_) {
    check_index(t.a, n, "dihedral atom");
    check_index(t.b, n, "dihedral atom");
    check_index(t.c, n, "dihedral atom");
    check_index(t.d, n, "dihedral atom");
    check_index(t.param, nd, "dihedral param");
  }
  for (const auto& t : impropers_) {
    check_index(t.a, n, "improper atom");
    check_index(t.b, n, "improper atom");
    check_index(t.c, n, "improper atom");
    check_index(t.d, n, "improper atom");
    check_index(t.param, ni, "improper param");
  }
  for (const auto& p : positions_) {
    if (p.x < 0 || p.y < 0 || p.z < 0 || p.x >= box.x || p.y >= box.y ||
        p.z >= box.z) {
      std::ostringstream os;
      os << "Molecule::validate: atom outside box " << p << " box " << box;
      throw std::runtime_error(os.str());
    }
  }
}

double Molecule::total_mass() const {
  double m = 0.0;
  for (const auto& a : atoms_) m += a.mass;
  return m;
}

}  // namespace scalemd
