#pragma once

#include <iosfwd>
#include <string>

#include "topo/molecule.hpp"

namespace scalemd {

/// Writes the complete system — force-field parameters, atoms with
/// coordinates and velocities, and all bonded topology — in scalemd's
/// line-oriented text format (version header "scalemd-molecule 1").
void save_molecule(const Molecule& mol, std::ostream& os);
void save_molecule(const Molecule& mol, const std::string& path);

/// Reads a system written by save_molecule. Throws std::runtime_error on
/// malformed input (bad magic, truncated sections, index errors are caught
/// by the final validate()).
Molecule load_molecule(std::istream& is);
Molecule load_molecule(const std::string& path);

/// Writes coordinates in XYZ format (element guessed from mass) for quick
/// inspection in standard viewers.
void write_xyz(const Molecule& mol, std::ostream& os,
               const std::string& comment = "");

}  // namespace scalemd
