#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "topo/molecule.hpp"

namespace scalemd {

/// Thrown by load_molecule on malformed input. The message is always
/// "<source>:<line>: <reason>" — source is the file path (or "<stream>" for
/// the stream overload), line is 1-based. Derives from std::runtime_error
/// so pre-existing catch sites keep working.
class MoleculeParseError : public std::runtime_error {
 public:
  MoleculeParseError(const std::string& source, int line,
                     const std::string& reason);

  const std::string& source() const { return source_; }
  int line() const { return line_; }

 private:
  std::string source_;
  int line_ = 0;
};

/// Writes the complete system — force-field parameters, atoms with
/// coordinates and velocities, and all bonded topology — in scalemd's
/// line-oriented text format (version header "scalemd-molecule 1").
void save_molecule(const Molecule& mol, std::ostream& os);
void save_molecule(const Molecule& mol, const std::string& path);

/// Reads a system written by save_molecule. Throws MoleculeParseError with
/// a "<source>:<line>:" location on any malformed input — bad magic, wrong
/// or truncated sections, non-numeric or non-finite values, out-of-range
/// atom/parameter indices — never crashes or invokes UB on garbage.
/// `source_name` labels errors from the stream overload.
Molecule load_molecule(std::istream& is,
                       const std::string& source_name = "<stream>");
Molecule load_molecule(const std::string& path);

/// Writes coordinates in XYZ format (element guessed from mass) for quick
/// inspection in standard viewers.
void write_xyz(const Molecule& mol, std::ostream& os,
               const std::string& comment = "");

}  // namespace scalemd
