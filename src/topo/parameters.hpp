#pragma once

#include <cstddef>
#include <vector>

namespace scalemd {

/// Harmonic bond: E = k (r - r0)^2   (CHARMM convention, no 1/2).
struct BondParam {
  double k = 0.0;   ///< kcal/(mol A^2)
  double r0 = 0.0;  ///< A
};

/// Harmonic angle: E = k (theta - theta0)^2.
struct AngleParam {
  double k = 0.0;       ///< kcal/(mol rad^2)
  double theta0 = 0.0;  ///< rad
};

/// Cosine dihedral: E = k (1 + cos(n*phi - delta)).
struct DihedralParam {
  double k = 0.0;      ///< kcal/mol
  int n = 1;           ///< multiplicity >= 1
  double delta = 0.0;  ///< rad
};

/// Harmonic improper: E = k (psi - psi0)^2.
struct ImproperParam {
  double k = 0.0;     ///< kcal/(mol rad^2)
  double psi0 = 0.0;  ///< rad
};

/// Per-atom-type Lennard-Jones well depth and half Rmin (CHARMM convention:
/// the pair minimum is at rmin_half_i + rmin_half_j).
struct LJType {
  double epsilon = 0.0;    ///< kcal/mol (stored positive)
  double rmin_half = 0.0;  ///< A
};

/// Pre-mixed Lennard-Jones pair coefficients in the A/B form:
/// E = A/r^12 - B/r^6 with A = eps*rmin^12, B = 2*eps*rmin^6.
struct LJPair {
  double a = 0.0;
  double b = 0.0;
};

/// Force-field parameter container. Types are added during system
/// construction; `finalize()` builds the mixed Lennard-Jones pair table that
/// the non-bonded kernels index by (type_i, type_j).
class ParameterTable {
 public:
  int add_lj_type(double epsilon, double rmin_half);
  int add_bond_param(double k, double r0);
  int add_angle_param(double k, double theta0);
  int add_dihedral_param(double k, int n, double delta);
  int add_improper_param(double k, double psi0);

  /// Builds the mixed LJ table (CHARMM combination: eps_ij =
  /// sqrt(eps_i*eps_j), rmin_ij = rmin_half_i + rmin_half_j). Must be called
  /// after all LJ types are added and before pair lookups. Idempotent.
  void finalize();

  std::size_t lj_type_count() const { return lj_types_.size(); }
  const LJType& lj_type(int t) const { return lj_types_[static_cast<std::size_t>(t)]; }

  /// Mixed pair coefficients; requires finalize().
  const LJPair& lj_pair(int ti, int tj) const {
    return lj_pairs_[static_cast<std::size_t>(ti) * lj_types_.size() +
                     static_cast<std::size_t>(tj)];
  }

  /// Row of the mixed pair table for type `ti`, indexed by the partner type;
  /// requires finalize(). The tiled kernels keep one row pointer per outer
  /// atom so the inner loop does a single indexed load per pair.
  const LJPair* lj_pair_row(int ti) const {
    return lj_pairs_.data() + static_cast<std::size_t>(ti) * lj_types_.size();
  }

  const BondParam& bond(int i) const { return bonds_[static_cast<std::size_t>(i)]; }
  const AngleParam& angle(int i) const { return angles_[static_cast<std::size_t>(i)]; }
  const DihedralParam& dihedral(int i) const {
    return dihedrals_[static_cast<std::size_t>(i)];
  }
  const ImproperParam& improper(int i) const {
    return impropers_[static_cast<std::size_t>(i)];
  }

  std::size_t bond_param_count() const { return bonds_.size(); }
  std::size_t angle_param_count() const { return angles_.size(); }
  std::size_t dihedral_param_count() const { return dihedrals_.size(); }
  std::size_t improper_param_count() const { return impropers_.size(); }

  /// Scale applied to both electrostatic and LJ interactions between 1-4
  /// (three bonds apart) pairs. AMBER-style simplification of CHARMM's
  /// special 1-4 parameters; see DESIGN.md.
  double scale14 = 0.5;

 private:
  std::vector<LJType> lj_types_;
  std::vector<LJPair> lj_pairs_;
  std::vector<BondParam> bonds_;
  std::vector<AngleParam> angles_;
  std::vector<DihedralParam> dihedrals_;
  std::vector<ImproperParam> impropers_;
  bool finalized_ = false;
};

}  // namespace scalemd
