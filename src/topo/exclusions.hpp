#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace scalemd {

class Molecule;

/// Non-bonded exclusion classification for an atom pair.
enum class ExclusionKind : std::uint8_t {
  kNone,        ///< fully interacting pair
  kFull,        ///< excluded: connected by 1 or 2 bonds (1-2 / 1-3)
  kModified14,  ///< scaled: connected by exactly 3 bonds (1-4)
};

/// Symmetric per-atom exclusion lists derived from the bond graph, stored in
/// CSR layout for cache-friendly lookup inside the pairwise kernels. The
/// paper notes excluded pairs "must be detected as a part of the normal
/// pairwise force computation"; `check()` is that detection.
class ExclusionTable {
 public:
  /// Builds the table by breadth-first search to depth 3 over `mol`'s bond
  /// graph. Pairs reachable within 2 bonds are kFull; pairs reachable at
  /// exactly 3 bonds (and not closer) are kModified14.
  static ExclusionTable build(const Molecule& mol);

  /// Classification of the (i, j) pair. i may equal j (returns kFull,
  /// matching the convention that self-interaction is never computed).
  ExclusionKind check(int i, int j) const;

  /// Sorted fully-excluded partners of atom i.
  std::span<const int> excluded(int i) const;
  /// Sorted 1-4 partners of atom i.
  std::span<const int> modified(int i) const;

  int atom_count() const { return static_cast<int>(full_off_.size()) - 1; }

  /// Total directed (i -> j) full-exclusion entries; each undirected pair
  /// counts twice.
  std::size_t full_entry_count() const { return full_.size(); }
  std::size_t modified_entry_count() const { return mod_.size(); }

 private:
  std::vector<std::uint32_t> full_off_;
  std::vector<int> full_;
  std::vector<std::uint32_t> mod_off_;
  std::vector<int> mod_;
};

}  // namespace scalemd
