#include "ewald/ewald.hpp"

#include <cassert>
#include <cmath>
#include <vector>

#include "util/units.hpp"

namespace scalemd {

EwaldSum::EwaldSum(const Vec3& box, const EwaldOptions& opts)
    : box_(box), opts_(opts) {
  assert(box.x > 0 && box.y > 0 && box.z > 0);
  assert(opts.alpha > 0 && opts.r_cut > 0 && opts.k_max >= 1);
}

double EwaldSum::real_space(std::span<const Vec3> pos, std::span<const double> q,
                            std::span<Vec3> f) const {
  const double rc2 = opts_.r_cut * opts_.r_cut;
  const double a = opts_.alpha;
  const double two_over_sqrt_pi = 2.0 / std::sqrt(M_PI);
  double energy = 0.0;
  for (std::size_t i = 0; i < pos.size(); ++i) {
    for (std::size_t j = i + 1; j < pos.size(); ++j) {
      // Minimum image in the orthorhombic box.
      Vec3 dr = pos[i] - pos[j];
      dr.x -= box_.x * std::round(dr.x / box_.x);
      dr.y -= box_.y * std::round(dr.y / box_.y);
      dr.z -= box_.z * std::round(dr.z / box_.z);
      const double r2 = norm2(dr);
      if (r2 >= rc2 || r2 == 0.0) continue;
      const double r = std::sqrt(r2);
      const double qq = units::kCoulomb * q[i] * q[j];
      const double erfc_ar = std::erfc(a * r);
      energy += qq * erfc_ar / r;
      // dE/dr = -qq [ erfc(ar)/r^2 + 2a/sqrt(pi) exp(-a^2 r^2)/r ]
      const double de_dr =
          -qq * (erfc_ar / r2 + two_over_sqrt_pi * a * std::exp(-a * a * r2) / r);
      const Vec3 fi = dr * (-de_dr / r);
      f[i] += fi;
      f[j] -= fi;
    }
  }
  return energy;
}

double EwaldSum::reciprocal(std::span<const Vec3> pos, std::span<const double> q,
                            std::span<Vec3> f) const {
  const double volume = box_.x * box_.y * box_.z;
  const double a = opts_.alpha;
  const int kmax = opts_.k_max;
  const double kmax2 = static_cast<double>(kmax) * kmax;

  double energy = 0.0;
  // Half-space of k vectors (kz > 0, or kz == 0 and ky > 0, or ...) counted
  // twice via the factor below; k = 0 excluded.
  for (int kx = -kmax; kx <= kmax; ++kx) {
    for (int ky = -kmax; ky <= kmax; ++ky) {
      for (int kz = 0; kz <= kmax; ++kz) {
        if (kz == 0 && (ky < 0 || (ky == 0 && kx <= 0))) continue;
        const double n2 = static_cast<double>(kx) * kx +
                          static_cast<double>(ky) * ky +
                          static_cast<double>(kz) * kz;
        if (n2 > kmax2) continue;  // spherical cutoff in index space
        const Vec3 k{2.0 * M_PI * kx / box_.x, 2.0 * M_PI * ky / box_.y,
                     2.0 * M_PI * kz / box_.z};
        const double k2 = norm2(k);

        // Structure factor S(k) = sum_i q_i exp(i k.r_i).
        double sre = 0.0, sim = 0.0;
        for (std::size_t i = 0; i < pos.size(); ++i) {
          const double phase = dot(k, pos[i]);
          sre += q[i] * std::cos(phase);
          sim += q[i] * std::sin(phase);
        }
        const double s2 = sre * sre + sim * sim;
        const double factor = units::kCoulomb * (4.0 * M_PI / volume) *
                              std::exp(-k2 / (4.0 * a * a)) / k2;
        energy += factor * s2;  // x2 half-space, /2 double counting

        // F_i = 2 * factor * q_i * [ sin(k.r_i) Re S - cos(k.r_i) Im S ] * k
        for (std::size_t i = 0; i < pos.size(); ++i) {
          const double phase = dot(k, pos[i]);
          const double coeff = 2.0 * factor * q[i] *
                               (std::sin(phase) * sre - std::cos(phase) * sim);
          f[i] += k * coeff;
        }
      }
    }
  }
  return energy;
}

double EwaldSum::self_energy(std::span<const double> q) const {
  double q2 = 0.0;
  for (double qi : q) q2 += qi * qi;
  return -units::kCoulomb * opts_.alpha / std::sqrt(M_PI) * q2;
}

ElecResult EwaldSum::energy_forces(std::span<const Vec3> pos,
                                   std::span<const double> q,
                                   std::span<Vec3> f) const {
  ElecResult r;
  r.real = real_space(pos, q, f);
  r.reciprocal = reciprocal(pos, q, f);
  r.self = self_energy(q);
  return r;
}

}  // namespace scalemd
