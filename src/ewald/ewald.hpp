#pragma once

#include <span>

#include "util/vec3.hpp"

namespace scalemd {

/// Parameters of an Ewald decomposition for a periodic orthorhombic box.
/// The paper's benchmarks are cutoff-only, but it stresses that full
/// electrostatics "may be calculated via an efficient combination of global
/// grid-based and cutoff atom-based components" — this module is that
/// grid-based component, provided as the natural extension substrate.
struct EwaldOptions {
  double alpha = 0.35;   ///< splitting parameter, 1/A
  double r_cut = 9.0;    ///< real-space cutoff, A
  int k_max = 8;         ///< reciprocal-space cutoff (max |k index| per axis)
};

/// Energy/force result of an electrostatic evaluation (kcal/mol, kcal/mol/A).
struct ElecResult {
  double real = 0.0;        ///< short-range erfc part
  double reciprocal = 0.0;  ///< k-space part
  double self = 0.0;        ///< self-interaction correction (negative)
  double total() const { return real + reciprocal + self; }
};

/// Classic Ewald summation: the O(N^2 + N K^3) reference implementation,
/// exact up to the alpha/r_cut/k_max truncation. Serves as the correctness
/// oracle for the PME fast path and as a usable long-range solver for small
/// periodic systems. The cell must be (near-)neutral for the energy to be
/// well defined.
class EwaldSum {
 public:
  EwaldSum(const Vec3& box, const EwaldOptions& opts);

  /// Computes the full Ewald energy and accumulates forces into `f`
  /// (minimum-image convention in real space).
  ElecResult energy_forces(std::span<const Vec3> pos, std::span<const double> q,
                           std::span<Vec3> f) const;

  /// Real-space component only (erfc-screened pairs within r_cut).
  double real_space(std::span<const Vec3> pos, std::span<const double> q,
                    std::span<Vec3> f) const;

  /// Reciprocal-space component only (structure-factor sum over k vectors).
  double reciprocal(std::span<const Vec3> pos, std::span<const double> q,
                    std::span<Vec3> f) const;

  /// Self-energy correction: -alpha/sqrt(pi) * C * sum q_i^2.
  double self_energy(std::span<const double> q) const;

  const EwaldOptions& options() const { return opts_; }

 private:
  Vec3 box_;
  EwaldOptions opts_;
};

}  // namespace scalemd
