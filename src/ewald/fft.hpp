#pragma once

#include <complex>
#include <vector>

namespace scalemd {

/// In-place iterative radix-2 Cooley-Tukey FFT. `data.size()` must be a
/// power of two. `inverse` applies the conjugate transform *without* the
/// 1/N normalization (callers normalize once, as PME's convolution does).
void fft(std::vector<std::complex<double>>& data, bool inverse);

/// 3D FFT over a dense row-major nx*ny*nz grid (each dimension a power of
/// two): transforms along x, then y, then z. Used by the PME reciprocal
/// convolution.
void fft3d(std::vector<std::complex<double>>& grid, int nx, int ny, int nz,
           bool inverse);

/// True if n is a power of two (and positive).
constexpr bool is_pow2(int n) { return n > 0 && (n & (n - 1)) == 0; }

}  // namespace scalemd
