#pragma once

#include <complex>
#include <span>
#include <vector>

#include "ewald/ewald.hpp"
#include "util/vec3.hpp"

namespace scalemd {

/// Smooth particle-mesh Ewald options. Grid dimensions must be powers of
/// two (the in-house FFT is radix-2); `order` is the cardinal B-spline
/// interpolation order (4 = the standard choice).
struct PmeOptions {
  double alpha = 0.35;  ///< same splitting parameter as the real-space part
  int grid_x = 32;
  int grid_y = 32;
  int grid_z = 32;
  int order = 4;
};

/// Smooth particle-mesh Ewald (Essmann et al. 1995): the O(N log N)
/// grid-based reciprocal-space solver — the "global grid-based component"
/// the paper's full-electrostatics discussion refers to, and reference [14]
/// [16]'s subject. Charges are spread onto a periodic grid with cardinal
/// B-splines, convolved with the Ewald influence function via FFT, and
/// forces come from analytic B-spline derivatives. Pair it with
/// EwaldSum::real_space (same alpha) and EwaldSum::self_energy for the full
/// electrostatic energy.
class Pme {
 public:
  Pme(const Vec3& box, const PmeOptions& opts);

  /// Reciprocal-space energy; forces accumulated into `f`.
  double reciprocal(std::span<const Vec3> pos, std::span<const double> q,
                    std::span<Vec3> f) const;

  const PmeOptions& options() const { return opts_; }

 private:
  Vec3 box_;
  PmeOptions opts_;
  std::vector<double> bmod_x_, bmod_y_, bmod_z_;
};

/// Cardinal B-spline values M_order(u - j) and derivatives for the `order`
/// grid points an atom at fractional offset u in [0,1) touches. Exposed for
/// tests (partition of unity, derivative consistency).
void bspline_weights(double u, int order, std::span<double> w, std::span<double> dw);

/// |b(m)|^2 Euler exponential-spline modulus for one grid dimension of size
/// `n`. Shared by the sequential Pme and the slab-decomposed parallel
/// pipeline (PmeSlabPlan), which must agree bit-for-bit on the influence
/// function.
std::vector<double> pme_bspline_moduli(int n, int order);

}  // namespace scalemd
