#include "ewald/pme.hpp"

#include <cassert>
#include <cmath>

#include "ewald/fft.hpp"
#include "util/units.hpp"

namespace scalemd {

void bspline_weights(double u, int order, std::span<double> w,
                     std::span<double> dw) {
  assert(order >= 2);
  assert(w.size() == static_cast<std::size_t>(order));
  assert(dw.size() == static_cast<std::size_t>(order));
  // m[k] = M_q(u + k) for the current order q, built by recursion from
  // M_2(t) = t on [0,1], 2 - t on [1,2].
  std::vector<double> m(static_cast<std::size_t>(order), 0.0);
  std::vector<double> d(static_cast<std::size_t>(order), 0.0);
  m[0] = u;
  if (order > 1) m[1] = 1.0 - u;
  if (order == 2) {
    d[0] = 1.0;
    d[1] = -1.0;
  }
  for (int q = 3; q <= order; ++q) {
    for (int k = q - 1; k >= 0; --k) {
      const double t = u + k;
      const double a = (k <= q - 2) ? m[static_cast<std::size_t>(k)] : 0.0;
      const double b = (k >= 1) ? m[static_cast<std::size_t>(k - 1)] : 0.0;
      if (q == order) d[static_cast<std::size_t>(k)] = a - b;
      m[static_cast<std::size_t>(k)] =
          (t * a + (static_cast<double>(q) - t) * b) / (q - 1);
    }
  }
  // Reorder so w[j] belongs to grid point floor(x) - order + 1 + j.
  for (int j = 0; j < order; ++j) {
    w[static_cast<std::size_t>(j)] = m[static_cast<std::size_t>(order - 1 - j)];
    dw[static_cast<std::size_t>(j)] = d[static_cast<std::size_t>(order - 1 - j)];
  }
}

std::vector<double> pme_bspline_moduli(int n, int order) {
  // |b(m)|^2 = 1 / |sum_{l=0}^{order-2} M_order(l+1) e^{2 pi i m l / n}|^2.
  std::vector<double> m_at_int(static_cast<std::size_t>(order) - 1, 0.0);
  {
    std::vector<double> w(static_cast<std::size_t>(order));
    std::vector<double> dw(static_cast<std::size_t>(order));
    bspline_weights(0.0, order, w, dw);  // w[j] = M_order(order - 1 - j)
    // M_order at integers 1..order-1: w[order - 1 - l] holds M_order(l).
    for (int l = 1; l <= order - 1; ++l) {
      m_at_int[static_cast<std::size_t>(l - 1)] =
          w[static_cast<std::size_t>(order - 1 - l)];
    }
  }
  std::vector<double> mod(static_cast<std::size_t>(n), 0.0);
  for (int m = 0; m < n; ++m) {
    double re = 0.0, im = 0.0;
    for (int l = 0; l <= order - 2; ++l) {
      const double phase = 2.0 * M_PI * m * l / n;
      re += m_at_int[static_cast<std::size_t>(l)] * std::cos(phase);
      im += m_at_int[static_cast<std::size_t>(l)] * std::sin(phase);
    }
    mod[static_cast<std::size_t>(m)] = re * re + im * im;
  }
  // Patch near-zero denominators (can occur at the Nyquist frequency) with
  // the average of the neighbors, the standard fix.
  for (int m = 0; m < n; ++m) {
    if (mod[static_cast<std::size_t>(m)] < 1e-10) {
      const double left = mod[static_cast<std::size_t>((m + n - 1) % n)];
      const double right = mod[static_cast<std::size_t>((m + 1) % n)];
      mod[static_cast<std::size_t>(m)] = 0.5 * (left + right);
    }
  }
  return mod;
}

Pme::Pme(const Vec3& box, const PmeOptions& opts) : box_(box), opts_(opts) {
  assert(is_pow2(opts.grid_x) && is_pow2(opts.grid_y) && is_pow2(opts.grid_z));
  assert(opts.order >= 2 && opts.order <= 8);
  bmod_x_ = pme_bspline_moduli(opts.grid_x, opts.order);
  bmod_y_ = pme_bspline_moduli(opts.grid_y, opts.order);
  bmod_z_ = pme_bspline_moduli(opts.grid_z, opts.order);
}

double Pme::reciprocal(std::span<const Vec3> pos, std::span<const double> q,
                       std::span<Vec3> f) const {
  const int kx = opts_.grid_x, ky = opts_.grid_y, kz = opts_.grid_z;
  const int p = opts_.order;
  const std::size_t ngrid = static_cast<std::size_t>(kx) * ky * kz;
  std::vector<std::complex<double>> grid(ngrid, {0.0, 0.0});
  auto at = [&](int x, int y, int z) -> std::complex<double>& {
    return grid[(static_cast<std::size_t>(z) * ky + y) * kx + x];
  };

  // --- Spread charges with B-spline weights -----------------------------
  struct Spread {
    int base_x, base_y, base_z;
    std::vector<double> wx, wy, wz, dx, dy, dz;
  };
  std::vector<Spread> spreads(pos.size());
  auto frac = [](double x, double len, int n) {
    double g = x / len * n;
    g -= std::floor(g / n) * n;  // wrap into [0, n)
    return g;
  };
  for (std::size_t i = 0; i < pos.size(); ++i) {
    Spread& s = spreads[i];
    const double gx = frac(pos[i].x, box_.x, kx);
    const double gy = frac(pos[i].y, box_.y, ky);
    const double gz = frac(pos[i].z, box_.z, kz);
    s.base_x = static_cast<int>(std::floor(gx)) - p + 1;
    s.base_y = static_cast<int>(std::floor(gy)) - p + 1;
    s.base_z = static_cast<int>(std::floor(gz)) - p + 1;
    s.wx.resize(static_cast<std::size_t>(p));
    s.wy.resize(static_cast<std::size_t>(p));
    s.wz.resize(static_cast<std::size_t>(p));
    s.dx.resize(static_cast<std::size_t>(p));
    s.dy.resize(static_cast<std::size_t>(p));
    s.dz.resize(static_cast<std::size_t>(p));
    bspline_weights(gx - std::floor(gx), p, s.wx, s.dx);
    bspline_weights(gy - std::floor(gy), p, s.wy, s.dy);
    bspline_weights(gz - std::floor(gz), p, s.wz, s.dz);
    for (int a = 0; a < p; ++a) {
      const int zi = ((s.base_z + a) % kz + kz) % kz;
      for (int b = 0; b < p; ++b) {
        const int yi = ((s.base_y + b) % ky + ky) % ky;
        const double wzy = q[i] * s.wz[static_cast<std::size_t>(a)] *
                           s.wy[static_cast<std::size_t>(b)];
        for (int c = 0; c < p; ++c) {
          const int xi = ((s.base_x + c) % kx + kx) % kx;
          at(xi, yi, zi) += wzy * s.wx[static_cast<std::size_t>(c)];
        }
      }
    }
  }

  // --- Convolution with the Ewald influence function --------------------
  fft3d(grid, kx, ky, kz, /*inverse=*/false);
  const double volume = box_.x * box_.y * box_.z;
  const double a2inv = 1.0 / (4.0 * opts_.alpha * opts_.alpha);
  double energy = 0.0;
  for (int mz = 0; mz < kz; ++mz) {
    const int sz = mz <= kz / 2 ? mz : mz - kz;
    for (int my = 0; my < ky; ++my) {
      const int sy = my <= ky / 2 ? my : my - ky;
      for (int mx = 0; mx < kx; ++mx) {
        const int sx = mx <= kx / 2 ? mx : mx - kx;
        std::complex<double>& g = at(mx, my, mz);
        if (sx == 0 && sy == 0 && sz == 0) {
          g = 0.0;
          continue;
        }
        const Vec3 k{2.0 * M_PI * sx / box_.x, 2.0 * M_PI * sy / box_.y,
                     2.0 * M_PI * sz / box_.z};
        const double k2 = norm2(k);
        const double bsq = bmod_x_[static_cast<std::size_t>(mx)] *
                           bmod_y_[static_cast<std::size_t>(my)] *
                           bmod_z_[static_cast<std::size_t>(mz)];
        const double influence = units::kCoulomb * (4.0 * M_PI / volume) *
                                 std::exp(-k2 * a2inv) / (k2 * bsq);
        energy += 0.5 * influence * std::norm(g);
        g *= influence;
      }
    }
  }
  // Adjoint transform for dE/dQ(r) = Re[sum_k I(k) F(k) e^{+ikr}]: the
  // *unnormalized* inverse FFT (no 1/N — that factor belongs to signal
  // reconstruction, not to this gradient).
  fft3d(grid, kx, ky, kz, /*inverse=*/true);

  // --- Gather forces from the potential grid ----------------------------
  for (std::size_t i = 0; i < pos.size(); ++i) {
    const Spread& s = spreads[i];
    Vec3 grad;  // d(energy)/d(r_i)
    for (int a = 0; a < p; ++a) {
      const int zi = ((s.base_z + a) % kz + kz) % kz;
      for (int b = 0; b < p; ++b) {
        const int yi = ((s.base_y + b) % ky + ky) % ky;
        for (int c = 0; c < p; ++c) {
          const int xi = ((s.base_x + c) % kx + kx) % kx;
          const double phi = at(xi, yi, zi).real();
          const double wa = s.wz[static_cast<std::size_t>(a)];
          const double wb = s.wy[static_cast<std::size_t>(b)];
          const double wc = s.wx[static_cast<std::size_t>(c)];
          grad.x += phi * s.dx[static_cast<std::size_t>(c)] * wb * wa * (kx / box_.x);
          grad.y += phi * wc * s.dy[static_cast<std::size_t>(b)] * wa * (ky / box_.y);
          grad.z += phi * wc * wb * s.dz[static_cast<std::size_t>(a)] * (kz / box_.z);
        }
      }
    }
    f[i] -= grad * q[i];
  }
  return energy;
}

}  // namespace scalemd
