#pragma once

#include <complex>
#include <span>
#include <vector>

#include "ewald/pme.hpp"
#include "util/vec3.hpp"

namespace scalemd {

/// Geometry and per-slab math for the slab-decomposed parallel PME pipeline.
///
/// The 3D reciprocal solve is split over S slab objects. Each slab plays two
/// roles within one pipeline round:
///
///   plane role  - slab i owns the contiguous z-plane range
///                 [z_begin(i), z_end(i)): charge spreading, the x/y 2D FFTs
///                 and, on the way back, the inverse y/x FFTs plus force
///                 gathering;
///   column role - slab i owns the y-row range [y_begin(i), y_end(i)) at full
///                 z extent: the z FFT, the influence-function convolution
///                 (producing this slab's reciprocal-energy partial) and the
///                 inverse z FFT.
///
/// Between the roles the grid is re-laid out by all-to-all transpose blocks
/// (extract_fwd/insert_fwd forward, extract_bwd/insert_bwd backward). Every
/// block covers a disjoint grid region, so blocks may be inserted in any
/// arrival order without changing a single bit.
///
/// Every routine is a deterministic pure function of its inputs: with the
/// same slab count, two runs produce bitwise-identical grids, energy
/// partials and force shares regardless of which PE a slab is placed on or
/// how the transpose messages interleave. The slab count S *is* part of the
/// numerics contract (it partitions the gather, the reciprocal-energy sum
/// and the exclusion-correction work), which is why the differential tests
/// hold S fixed while sweeping PE counts, LB strategies and backends.
///
/// Atom arrays (`pos`, `q`, `f`) are indexed by global atom id, the same
/// order the sequential Pme uses; the forward half of the pipeline (spread,
/// x/y/z FFTs, influence) therefore reproduces the sequential grid values
/// bit-for-bit, and only the partitioned sums (energy, gather, corrections)
/// differ from sequential by summation order.
class PmeSlabPlan {
 public:
  PmeSlabPlan(const Vec3& box, const PmeOptions& opts, int slabs);

  int slabs() const { return slabs_; }
  const PmeOptions& options() const { return opts_; }

  /// Plane-role ownership: contiguous z-plane range of slab i.
  int z_begin(int slab) const;
  int z_end(int slab) const;
  /// Column-role ownership: contiguous y-row range of slab i.
  int y_begin(int slab) const;
  int y_end(int slab) const;

  /// Complex points in slab i's plane chunk: (z_end - z_begin) * ky * kx,
  /// laid out (z - z_begin, y, x) with x contiguous.
  std::size_t plane_points(int slab) const;
  /// Complex points in slab i's column chunk: (y_end - y_begin) * kx * kz,
  /// laid out (y - y_begin, x, z) with z contiguous.
  std::size_t column_points(int slab) const;
  /// Doubles (2 per complex) in the transpose block from plane slab `src`
  /// to column slab `dst` (forward) — the backward block dst -> src has the
  /// same size.
  std::size_t block_doubles(int src, int dst) const;

  /// Spreads every atom's charge onto the grid points falling inside slab
  /// i's z-planes, accumulating into `planes` (zeroed by the caller) in
  /// global atom order.
  void spread(int slab, std::span<const Vec3> pos, std::span<const double> q,
              std::span<std::complex<double>> planes) const;

  /// 2D FFT of every owned z-plane: rows along x then columns along y
  /// (forward), unwound y then x (inverse, unnormalized like fft()).
  void plane_fft(int slab, std::span<std::complex<double>> planes,
                 bool inverse) const;

  /// Forward transpose block: (z in src's planes) x (y in dst's rows) x
  /// (all x), flattened z-major as [re, im] pairs.
  std::vector<double> extract_fwd(int src, int dst,
                                  std::span<const std::complex<double>> planes) const;
  void insert_fwd(int src, int dst, std::span<const double> block,
                  std::span<std::complex<double>> columns) const;

  /// Column role: z FFT of every owned (y, x) line, influence-function
  /// multiply (zeroing k = 0), inverse z FFT. Returns this slab's
  /// reciprocal-energy partial, accumulated in fixed (y, x, z) order.
  double convolve(int slab, std::span<std::complex<double>> columns) const;

  /// Backward transpose block: same (z, y, x) region as the forward block
  /// dst -> src, read out of `columns`.
  std::vector<double> extract_bwd(int src, int dst,
                                  std::span<const std::complex<double>> columns) const;
  void insert_bwd(int src, int dst, std::span<const double> block,
                  std::span<std::complex<double>> planes) const;

  /// Accumulates each atom's force share from slab i's z-planes of the
  /// convolved potential grid: f[i] -= q[i] * grad_i, stencil points outside
  /// the slab left for their owners. Summed over slabs in slab order this
  /// reproduces the sequential gather up to summation order.
  void gather(int slab, std::span<const Vec3> pos, std::span<const double> q,
              std::span<const std::complex<double>> planes,
              std::span<Vec3> f) const;

 private:
  Vec3 box_;
  PmeOptions opts_;
  int slabs_;
  std::vector<double> bmod_x_, bmod_y_, bmod_z_;
};

}  // namespace scalemd
