#include "ewald/fft.hpp"

#include <cassert>
#include <cmath>

namespace scalemd {

void fft(std::vector<std::complex<double>>& data, bool inverse) {
  const std::size_t n = data.size();
  assert(is_pow2(static_cast<int>(n)));
  if (n <= 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  // Butterfly passes.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

void fft3d(std::vector<std::complex<double>>& grid, int nx, int ny, int nz,
           bool inverse) {
  assert(is_pow2(nx) && is_pow2(ny) && is_pow2(nz));
  assert(grid.size() == static_cast<std::size_t>(nx) * ny * nz);
  auto at = [&](int x, int y, int z) -> std::complex<double>& {
    return grid[(static_cast<std::size_t>(z) * ny + y) * nx + x];
  };

  std::vector<std::complex<double>> line;
  // Along x.
  line.resize(static_cast<std::size_t>(nx));
  for (int z = 0; z < nz; ++z) {
    for (int y = 0; y < ny; ++y) {
      for (int x = 0; x < nx; ++x) line[static_cast<std::size_t>(x)] = at(x, y, z);
      fft(line, inverse);
      for (int x = 0; x < nx; ++x) at(x, y, z) = line[static_cast<std::size_t>(x)];
    }
  }
  // Along y.
  line.resize(static_cast<std::size_t>(ny));
  for (int z = 0; z < nz; ++z) {
    for (int x = 0; x < nx; ++x) {
      for (int y = 0; y < ny; ++y) line[static_cast<std::size_t>(y)] = at(x, y, z);
      fft(line, inverse);
      for (int y = 0; y < ny; ++y) at(x, y, z) = line[static_cast<std::size_t>(y)];
    }
  }
  // Along z.
  line.resize(static_cast<std::size_t>(nz));
  for (int y = 0; y < ny; ++y) {
    for (int x = 0; x < nx; ++x) {
      for (int z = 0; z < nz; ++z) line[static_cast<std::size_t>(z)] = at(x, y, z);
      fft(line, inverse);
      for (int z = 0; z < nz; ++z) at(x, y, z) = line[static_cast<std::size_t>(z)];
    }
  }
}

}  // namespace scalemd
