#include "ewald/full_elec.hpp"

#include <cmath>

#include "util/units.hpp"

namespace scalemd {

PmeOptions to_pme_options(const FullElecOptions& fe) {
  PmeOptions p;
  p.alpha = fe.alpha;
  p.grid_x = fe.grid_x;
  p.grid_y = fe.grid_y;
  p.grid_z = fe.grid_z;
  p.order = fe.order;
  return p;
}

double ewald_self_energy_strided(double alpha, std::span<const double> q,
                                 int rem, int stride) {
  double q2 = 0.0;
  for (std::size_t i = static_cast<std::size_t>(rem); i < q.size();
       i += static_cast<std::size_t>(stride)) {
    q2 += q[i] * q[i];
  }
  return -units::kCoulomb * alpha / std::sqrt(M_PI) * q2;
}

namespace {

/// One erf-complement correction pair: E = coeff * qq * erf(alpha r) / r.
/// coeff = -1 (full exclusion) or scale14 - 1 (modified 1-4). Overlapping
/// atoms (r -> 0) take the finite limit 2 alpha/sqrt(pi) with zero force so a
/// degenerate geometry cannot produce NaN forces.
inline double corr_pair(double alpha, double alpha_spi, double coeff, double qq,
                        const Vec3& dr, Vec3& fi, Vec3& fj) {
  const double r2 = norm2(dr);
  if (r2 < 1e-12) return coeff * qq * 2.0 * alpha_spi;
  const double inv_r2 = 1.0 / r2;
  const double inv_r = std::sqrt(inv_r2);
  const double t = std::erf(alpha * r2 * inv_r);
  const double dt_dr2 = alpha_spi * std::exp(-alpha * alpha * r2) * inv_r;
  const double de_dr2 = coeff * qq * (-0.5 * inv_r * inv_r2 * t + inv_r * dt_dr2);
  const Vec3 fpair = dr * (-2.0 * de_dr2);
  fi += fpair;
  fj -= fpair;
  return coeff * qq * inv_r * t;
}

}  // namespace

double full_elec_exclusion_corrections(const ExclusionTable& excl,
                                       const ParameterTable& params, double alpha,
                                       std::span<const double> q,
                                       std::span<const Vec3> pos, std::span<Vec3> f,
                                       int rem, int stride) {
  const double alpha_spi = alpha / std::sqrt(M_PI);
  const double mod_coeff = params.scale14 - 1.0;
  const int n = excl.atom_count();
  double energy = 0.0;
  for (int gi = rem; gi < n; gi += stride) {
    const auto si = static_cast<std::size_t>(gi);
    for (int gj : excl.excluded(gi)) {
      if (gj <= gi) continue;  // symmetric lists: count each pair once
      const auto sj = static_cast<std::size_t>(gj);
      const double qq = units::kCoulomb * q[si] * q[sj];
      energy += corr_pair(alpha, alpha_spi, -1.0, qq, pos[si] - pos[sj], f[si],
                          f[sj]);
    }
    for (int gj : excl.modified(gi)) {
      if (gj <= gi) continue;
      const auto sj = static_cast<std::size_t>(gj);
      const double qq = units::kCoulomb * q[si] * q[sj];
      energy += corr_pair(alpha, alpha_spi, mod_coeff, qq, pos[si] - pos[sj],
                          f[si], f[sj]);
    }
  }
  return energy;
}

}  // namespace scalemd
