#pragma once

#include <span>

#include "ewald/pme.hpp"
#include "ff/nonbonded.hpp"
#include "topo/exclusions.hpp"
#include "topo/parameters.hpp"
#include "util/vec3.hpp"

namespace scalemd {

/// Maps the engine-facing knob onto the PME solver's options. Callers must
/// have validated `fe` (full_elec_error == nullptr).
PmeOptions to_pme_options(const FullElecOptions& fe);

/// Ewald self-energy correction restricted to atoms with
/// id % stride == rem: -C alpha/sqrt(pi) * sum q_i^2. The (rem, stride)
/// partition lets the parallel PME slabs split the sum deterministically;
/// (0, 1) is the whole-system sequential form.
double ewald_self_energy_strided(double alpha, std::span<const double> q,
                                 int rem, int stride);

/// Exclusion corrections for the full-electrostatics decomposition. The
/// reciprocal (grid) sum implicitly includes *every* pair, so pairs the
/// short-range kernels excluded or scaled need the smooth erf complement
/// removed: fully excluded pairs get -qq erf(alpha r)/r, modified 1-4 pairs
/// get (scale14 - 1) qq erf(alpha r)/r. Iterates pairs (gi, gj), gj > gi,
/// with gi ascending and restricted to gi % stride == rem (the same
/// deterministic partition as the self energy); forces are accumulated into
/// `f` (indexed by global id, not zeroed). Returns the energy contribution.
double full_elec_exclusion_corrections(const ExclusionTable& excl,
                                       const ParameterTable& params, double alpha,
                                       std::span<const double> q,
                                       std::span<const Vec3> pos, std::span<Vec3> f,
                                       int rem, int stride);

}  // namespace scalemd
