#include "ewald/pme_slab.hpp"

#include <cassert>
#include <cmath>

#include "ewald/fft.hpp"
#include "util/units.hpp"

namespace scalemd {

namespace {

/// Balanced contiguous partition of [0, n) into `parts` ranges.
int range_begin(int n, int parts, int i) {
  return static_cast<int>((static_cast<long long>(n) * i) / parts);
}

/// Per-atom spreading stencil, identical to the sequential Pme's.
struct Stencil {
  int base_x, base_y, base_z;
  std::vector<double> wx, wy, wz, dx, dy, dz;
};

double frac_coord(double x, double len, int n) {
  double g = x / len * n;
  g -= std::floor(g / n) * n;  // wrap into [0, n)
  return g;
}

Stencil make_stencil(const Vec3& pos, const Vec3& box, const PmeOptions& o) {
  Stencil s;
  const int p = o.order;
  const double gx = frac_coord(pos.x, box.x, o.grid_x);
  const double gy = frac_coord(pos.y, box.y, o.grid_y);
  const double gz = frac_coord(pos.z, box.z, o.grid_z);
  s.base_x = static_cast<int>(std::floor(gx)) - p + 1;
  s.base_y = static_cast<int>(std::floor(gy)) - p + 1;
  s.base_z = static_cast<int>(std::floor(gz)) - p + 1;
  s.wx.resize(static_cast<std::size_t>(p));
  s.wy.resize(static_cast<std::size_t>(p));
  s.wz.resize(static_cast<std::size_t>(p));
  s.dx.resize(static_cast<std::size_t>(p));
  s.dy.resize(static_cast<std::size_t>(p));
  s.dz.resize(static_cast<std::size_t>(p));
  bspline_weights(gx - std::floor(gx), p, s.wx, s.dx);
  bspline_weights(gy - std::floor(gy), p, s.wy, s.dy);
  bspline_weights(gz - std::floor(gz), p, s.wz, s.dz);
  return s;
}

}  // namespace

PmeSlabPlan::PmeSlabPlan(const Vec3& box, const PmeOptions& opts, int slabs)
    : box_(box), opts_(opts), slabs_(slabs) {
  assert(slabs >= 1);
  assert(is_pow2(opts.grid_x) && is_pow2(opts.grid_y) && is_pow2(opts.grid_z));
  assert(opts.order >= 2 && opts.order <= 8);
  bmod_x_ = pme_bspline_moduli(opts.grid_x, opts.order);
  bmod_y_ = pme_bspline_moduli(opts.grid_y, opts.order);
  bmod_z_ = pme_bspline_moduli(opts.grid_z, opts.order);
}

int PmeSlabPlan::z_begin(int slab) const {
  return range_begin(opts_.grid_z, slabs_, slab);
}
int PmeSlabPlan::z_end(int slab) const {
  return range_begin(opts_.grid_z, slabs_, slab + 1);
}
int PmeSlabPlan::y_begin(int slab) const {
  return range_begin(opts_.grid_y, slabs_, slab);
}
int PmeSlabPlan::y_end(int slab) const {
  return range_begin(opts_.grid_y, slabs_, slab + 1);
}

std::size_t PmeSlabPlan::plane_points(int slab) const {
  return static_cast<std::size_t>(z_end(slab) - z_begin(slab)) *
         static_cast<std::size_t>(opts_.grid_y) *
         static_cast<std::size_t>(opts_.grid_x);
}

std::size_t PmeSlabPlan::column_points(int slab) const {
  return static_cast<std::size_t>(y_end(slab) - y_begin(slab)) *
         static_cast<std::size_t>(opts_.grid_x) *
         static_cast<std::size_t>(opts_.grid_z);
}

std::size_t PmeSlabPlan::block_doubles(int src, int dst) const {
  return 2 * static_cast<std::size_t>(z_end(src) - z_begin(src)) *
         static_cast<std::size_t>(y_end(dst) - y_begin(dst)) *
         static_cast<std::size_t>(opts_.grid_x);
}

void PmeSlabPlan::spread(int slab, std::span<const Vec3> pos,
                         std::span<const double> q,
                         std::span<std::complex<double>> planes) const {
  assert(planes.size() == plane_points(slab));
  const int kx = opts_.grid_x, ky = opts_.grid_y, kz = opts_.grid_z;
  const int p = opts_.order;
  const int z0 = z_begin(slab), z1 = z_end(slab);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    const Stencil s = make_stencil(pos[i], box_, opts_);
    for (int a = 0; a < p; ++a) {
      const int zi = ((s.base_z + a) % kz + kz) % kz;
      if (zi < z0 || zi >= z1) continue;
      const std::size_t zoff =
          static_cast<std::size_t>(zi - z0) * static_cast<std::size_t>(ky) *
          static_cast<std::size_t>(kx);
      for (int b = 0; b < p; ++b) {
        const int yi = ((s.base_y + b) % ky + ky) % ky;
        const double wzy = q[i] * s.wz[static_cast<std::size_t>(a)] *
                           s.wy[static_cast<std::size_t>(b)];
        for (int c = 0; c < p; ++c) {
          const int xi = ((s.base_x + c) % kx + kx) % kx;
          planes[zoff + static_cast<std::size_t>(yi) * kx + xi] +=
              wzy * s.wx[static_cast<std::size_t>(c)];
        }
      }
    }
  }
}

void PmeSlabPlan::plane_fft(int slab, std::span<std::complex<double>> planes,
                            bool inverse) const {
  assert(planes.size() == plane_points(slab));
  const int kx = opts_.grid_x, ky = opts_.grid_y;
  const int nz = z_end(slab) - z_begin(slab);
  auto at = [&](int x, int y, int zl) -> std::complex<double>& {
    return planes[(static_cast<std::size_t>(zl) * ky + y) * kx + x];
  };
  std::vector<std::complex<double>> line;
  auto pass_x = [&] {
    line.resize(static_cast<std::size_t>(kx));
    for (int zl = 0; zl < nz; ++zl) {
      for (int y = 0; y < ky; ++y) {
        for (int x = 0; x < kx; ++x) line[static_cast<std::size_t>(x)] = at(x, y, zl);
        fft(line, inverse);
        for (int x = 0; x < kx; ++x) at(x, y, zl) = line[static_cast<std::size_t>(x)];
      }
    }
  };
  auto pass_y = [&] {
    line.resize(static_cast<std::size_t>(ky));
    for (int zl = 0; zl < nz; ++zl) {
      for (int x = 0; x < kx; ++x) {
        for (int y = 0; y < ky; ++y) line[static_cast<std::size_t>(y)] = at(x, y, zl);
        fft(line, inverse);
        for (int y = 0; y < ky; ++y) at(x, y, zl) = line[static_cast<std::size_t>(y)];
      }
    }
  };
  // Forward x-then-y matches the sequential fft3d's pass order bit-for-bit;
  // the inverse unwinds y-then-x.
  if (inverse) {
    pass_y();
    pass_x();
  } else {
    pass_x();
    pass_y();
  }
}

std::vector<double> PmeSlabPlan::extract_fwd(
    int src, int dst, std::span<const std::complex<double>> planes) const {
  assert(planes.size() == plane_points(src));
  const int kx = opts_.grid_x, ky = opts_.grid_y;
  const int z0 = z_begin(src), z1 = z_end(src);
  const int y0 = y_begin(dst), y1 = y_end(dst);
  std::vector<double> block;
  block.reserve(block_doubles(src, dst));
  for (int z = z0; z < z1; ++z) {
    for (int y = y0; y < y1; ++y) {
      const std::size_t off =
          (static_cast<std::size_t>(z - z0) * ky + y) * static_cast<std::size_t>(kx);
      for (int x = 0; x < kx; ++x) {
        block.push_back(planes[off + static_cast<std::size_t>(x)].real());
        block.push_back(planes[off + static_cast<std::size_t>(x)].imag());
      }
    }
  }
  return block;
}

void PmeSlabPlan::insert_fwd(int src, int dst, std::span<const double> block,
                             std::span<std::complex<double>> columns) const {
  assert(columns.size() == column_points(dst));
  assert(block.size() == block_doubles(src, dst));
  const int kx = opts_.grid_x, kz = opts_.grid_z;
  const int z0 = z_begin(src), z1 = z_end(src);
  const int y0 = y_begin(dst), y1 = y_end(dst);
  std::size_t k = 0;
  for (int z = z0; z < z1; ++z) {
    for (int y = y0; y < y1; ++y) {
      for (int x = 0; x < kx; ++x) {
        columns[(static_cast<std::size_t>(y - y0) * kx + x) * kz +
                static_cast<std::size_t>(z)] = {block[k], block[k + 1]};
        k += 2;
      }
    }
  }
}

double PmeSlabPlan::convolve(int slab,
                             std::span<std::complex<double>> columns) const {
  assert(columns.size() == column_points(slab));
  const int kx = opts_.grid_x, ky = opts_.grid_y, kz = opts_.grid_z;
  const int y0 = y_begin(slab), y1 = y_end(slab);
  const double volume = box_.x * box_.y * box_.z;
  const double a2inv = 1.0 / (4.0 * opts_.alpha * opts_.alpha);
  double energy = 0.0;
  std::vector<std::complex<double>> line(static_cast<std::size_t>(kz));
  for (int my = y0; my < y1; ++my) {
    const int sy = my <= ky / 2 ? my : my - ky;
    for (int mx = 0; mx < kx; ++mx) {
      const int sx = mx <= kx / 2 ? mx : mx - kx;
      const std::size_t off =
          (static_cast<std::size_t>(my - y0) * kx + mx) * static_cast<std::size_t>(kz);
      for (int z = 0; z < kz; ++z) line[static_cast<std::size_t>(z)] = columns[off + z];
      fft(line, /*inverse=*/false);
      for (int mz = 0; mz < kz; ++mz) {
        const int sz = mz <= kz / 2 ? mz : mz - kz;
        std::complex<double>& g = line[static_cast<std::size_t>(mz)];
        if (sx == 0 && sy == 0 && sz == 0) {
          g = 0.0;
          continue;
        }
        const Vec3 k{2.0 * M_PI * sx / box_.x, 2.0 * M_PI * sy / box_.y,
                     2.0 * M_PI * sz / box_.z};
        const double k2 = norm2(k);
        const double bsq = bmod_x_[static_cast<std::size_t>(mx)] *
                           bmod_y_[static_cast<std::size_t>(my)] *
                           bmod_z_[static_cast<std::size_t>(mz)];
        const double influence = units::kCoulomb * (4.0 * M_PI / volume) *
                                 std::exp(-k2 * a2inv) / (k2 * bsq);
        energy += 0.5 * influence * std::norm(g);
        g *= influence;
      }
      fft(line, /*inverse=*/true);
      for (int z = 0; z < kz; ++z) columns[off + z] = line[static_cast<std::size_t>(z)];
    }
  }
  return energy;
}

std::vector<double> PmeSlabPlan::extract_bwd(
    int src, int dst, std::span<const std::complex<double>> columns) const {
  assert(columns.size() == column_points(src));
  const int kx = opts_.grid_x, kz = opts_.grid_z;
  const int z0 = z_begin(dst), z1 = z_end(dst);
  const int y0 = y_begin(src), y1 = y_end(src);
  std::vector<double> block;
  block.reserve(block_doubles(dst, src));
  for (int z = z0; z < z1; ++z) {
    for (int y = y0; y < y1; ++y) {
      for (int x = 0; x < kx; ++x) {
        const std::complex<double>& c =
            columns[(static_cast<std::size_t>(y - y0) * kx + x) * kz +
                    static_cast<std::size_t>(z)];
        block.push_back(c.real());
        block.push_back(c.imag());
      }
    }
  }
  return block;
}

void PmeSlabPlan::insert_bwd(int src, int dst, std::span<const double> block,
                             std::span<std::complex<double>> planes) const {
  assert(planes.size() == plane_points(dst));
  assert(block.size() == block_doubles(dst, src));
  const int kx = opts_.grid_x, ky = opts_.grid_y;
  const int z0 = z_begin(dst), z1 = z_end(dst);
  const int y0 = y_begin(src), y1 = y_end(src);
  std::size_t k = 0;
  for (int z = z0; z < z1; ++z) {
    for (int y = y0; y < y1; ++y) {
      for (int x = 0; x < kx; ++x) {
        planes[(static_cast<std::size_t>(z - z0) * ky + y) * kx +
               static_cast<std::size_t>(x)] = {block[k], block[k + 1]};
        k += 2;
      }
    }
  }
}

void PmeSlabPlan::gather(int slab, std::span<const Vec3> pos,
                         std::span<const double> q,
                         std::span<const std::complex<double>> planes,
                         std::span<Vec3> f) const {
  assert(planes.size() == plane_points(slab));
  const int kx = opts_.grid_x, ky = opts_.grid_y, kz = opts_.grid_z;
  const int p = opts_.order;
  const int z0 = z_begin(slab), z1 = z_end(slab);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    const Stencil s = make_stencil(pos[i], box_, opts_);
    Vec3 grad;
    bool touched = false;
    for (int a = 0; a < p; ++a) {
      const int zi = ((s.base_z + a) % kz + kz) % kz;
      if (zi < z0 || zi >= z1) continue;
      touched = true;
      const std::size_t zoff =
          static_cast<std::size_t>(zi - z0) * static_cast<std::size_t>(ky) *
          static_cast<std::size_t>(kx);
      for (int b = 0; b < p; ++b) {
        const int yi = ((s.base_y + b) % ky + ky) % ky;
        for (int c = 0; c < p; ++c) {
          const int xi = ((s.base_x + c) % kx + kx) % kx;
          const double phi =
              planes[zoff + static_cast<std::size_t>(yi) * kx + xi].real();
          const double wa = s.wz[static_cast<std::size_t>(a)];
          const double wb = s.wy[static_cast<std::size_t>(b)];
          const double wc = s.wx[static_cast<std::size_t>(c)];
          grad.x += phi * s.dx[static_cast<std::size_t>(c)] * wb * wa * (kx / box_.x);
          grad.y += phi * wc * s.dy[static_cast<std::size_t>(b)] * wa * (ky / box_.y);
          grad.z += phi * wc * wb * s.dz[static_cast<std::size_t>(a)] * (kz / box_.z);
        }
      }
    }
    if (touched) f[i] -= grad * q[i];
  }
}

}  // namespace scalemd
