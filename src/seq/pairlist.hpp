#pragma once

#include <span>
#include <vector>

#include "seq/cell_list.hpp"
#include "util/vec3.hpp"

namespace scalemd {

/// Verlet neighbor list with a skin: pairs within cutoff + skin are cached
/// at build time and reused until any atom has moved more than skin/2 —
/// the standard amortization NAMD relies on (and the reason our machine
/// model charges rejected distance tests so little; see EXPERIMENTS.md).
class VerletList {
 public:
  VerletList(const Vec3& box, double cutoff, double skin);

  /// Rebuilds the list at the given positions.
  void build(std::span<const Vec3> pos);

  /// True if some atom has moved more than skin/2 since the last build (or
  /// if no build has happened, or the atom count changed).
  bool needs_rebuild(std::span<const Vec3> pos) const;

  /// Cached neighbors j > i of atom i (within cutoff + skin at build time).
  std::span<const int> neighbors(int i) const {
    const auto lo = offsets_[static_cast<std::size_t>(i)];
    const auto hi = offsets_[static_cast<std::size_t>(i) + 1];
    return {pairs_.data() + lo, hi - lo};
  }

  std::size_t pair_count() const { return pairs_.size(); }
  int builds() const { return builds_; }

 private:
  Vec3 box_;
  double cutoff_;
  double skin_;
  CellGrid grid_;
  std::vector<std::uint32_t> offsets_;
  std::vector<int> pairs_;
  std::vector<Vec3> ref_pos_;
  int builds_ = 0;
};

}  // namespace scalemd
