#include "seq/engine.hpp"

#include <algorithm>

namespace scalemd {

SequentialEngine::SequentialEngine(const Molecule& mol, const EngineOptions& opts)
    : mol_(mol),
      opts_(opts),
      excl_(ExclusionTable::build(mol)),
      grid_(mol.box, std::max(opts.nonbonded.cutoff,
                              mol.suggested_patch_size > 0.0 ? mol.suggested_patch_size
                                                             : opts.nonbonded.cutoff)),
      integrator_(opts.dt_fs),
      forces_(static_cast<std::size_t>(mol.atom_count())) {
  mol_.params.finalize();
  charges_.reserve(forces_.size());
  lj_types_.reserve(forces_.size());
  masses_.reserve(forces_.size());
  for (const auto& a : mol_.atoms()) {
    charges_.push_back(a.charge);
    lj_types_.push_back(a.lj_type);
    masses_.push_back(a.mass);
  }
  compute_forces();
}

EnergyTerms SequentialEngine::evaluate_nonbonded(std::span<Vec3> out) {
  EnergyTerms energy;
  const NonbondedContext ctx(mol_.params, excl_, charges_, lj_types_,
                             opts_.nonbonded);
  const auto& pos = mol_.positions();

  if (opts_.use_pairlist) {
    if (pairlist_ == nullptr) {
      pairlist_ = std::make_unique<VerletList>(mol_.box, opts_.nonbonded.cutoff,
                                               opts_.pairlist_skin);
    }
    if (pairlist_->needs_rebuild(pos)) pairlist_->build(pos);
    for (int i = 0; i < mol_.atom_count(); ++i) {
      const auto si = static_cast<std::size_t>(i);
      for (int j : pairlist_->neighbors(i)) {
        const auto sj = static_cast<std::size_t>(j);
        nonbonded_pair_eval(ctx, i, j, pos[si], pos[sj], out[si], out[sj], energy,
                            work_);
      }
    }
    return energy;
  }

  const CellList cells(grid_, pos);
  const int nc = grid_.cell_count();

  // Gather per-cell coordinate/force scratch (kernels operate on local
  // arrays, exactly as patch-local computes do in the parallel core).
  std::vector<std::vector<Vec3>> cpos(static_cast<std::size_t>(nc));
  std::vector<std::vector<Vec3>> cfrc(static_cast<std::size_t>(nc));
  for (int c = 0; c < nc; ++c) {
    const auto atoms = cells.atoms_in(c);
    auto& cp = cpos[static_cast<std::size_t>(c)];
    cp.reserve(atoms.size());
    for (int a : atoms) cp.push_back(pos[static_cast<std::size_t>(a)]);
    cfrc[static_cast<std::size_t>(c)].assign(atoms.size(), Vec3{});
  }

  for (int c = 0; c < nc; ++c) {
    energy += nonbonded_self(ctx, cells.atoms_in(c), cpos[static_cast<std::size_t>(c)],
                             cfrc[static_cast<std::size_t>(c)], work_);
  }
  for (const auto& [a, b] : grid_.neighbor_pairs()) {
    energy += nonbonded_ab(ctx, cells.atoms_in(a), cpos[static_cast<std::size_t>(a)],
                           cfrc[static_cast<std::size_t>(a)], cells.atoms_in(b),
                           cpos[static_cast<std::size_t>(b)],
                           cfrc[static_cast<std::size_t>(b)], work_);
  }

  for (int c = 0; c < nc; ++c) {
    const auto atoms = cells.atoms_in(c);
    const auto& cf = cfrc[static_cast<std::size_t>(c)];
    for (std::size_t i = 0; i < atoms.size(); ++i) {
      out[static_cast<std::size_t>(atoms[i])] += cf[i];
    }
  }
  return energy;
}

EnergyTerms SequentialEngine::evaluate_bonded(std::span<Vec3> out) {
  EnergyTerms energy;
  const auto& pos = mol_.positions();
  energy += evaluate_bonds(mol_.params, mol_.bonds(), pos, out, work_);
  energy += evaluate_angles(mol_.params, mol_.angles(), pos, out, work_);
  energy += evaluate_dihedrals(mol_.params, mol_.dihedrals(), pos, out, work_);
  energy += evaluate_impropers(mol_.params, mol_.impropers(), pos, out, work_);
  return energy;
}

void SequentialEngine::compute_forces() {
  energy_ = {};
  work_ = {};
  std::fill(forces_.begin(), forces_.end(), Vec3{});
  energy_ += evaluate_nonbonded(forces_);
  energy_ += evaluate_bonded(forces_);
}

void SequentialEngine::step() {
  integrator_.half_kick(forces_, masses_, mol_.velocities());
  integrator_.drift(mol_.velocities(), mol_.positions());
  compute_forces();
  work_.atoms_integrated += static_cast<std::uint64_t>(mol_.atom_count());
  integrator_.half_kick(forces_, masses_, mol_.velocities());
}

void SequentialEngine::run(int n) {
  for (int i = 0; i < n; ++i) step();
}

double SequentialEngine::kinetic() const {
  return kinetic_energy(mol_.velocities(), masses_);
}

}  // namespace scalemd
