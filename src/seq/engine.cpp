#include "seq/engine.hpp"

#include <algorithm>
#include <cassert>

#include "ewald/full_elec.hpp"

namespace scalemd {

SequentialEngine::SequentialEngine(const Molecule& mol, const EngineOptions& opts)
    : mol_(mol),
      opts_(opts),
      excl_(ExclusionTable::build(mol)),
      grid_(mol.box, std::max(opts.nonbonded.cutoff,
                              mol.suggested_patch_size > 0.0 ? mol.suggested_patch_size
                                                             : opts.nonbonded.cutoff)),
      integrator_(opts.dt_fs),
      forces_(static_cast<std::size_t>(mol.atom_count())) {
  mol_.params.finalize();
  charges_.reserve(forces_.size());
  lj_types_.reserve(forces_.size());
  masses_.reserve(forces_.size());
  for (const auto& a : mol_.atoms()) {
    charges_.push_back(a.charge);
    lj_types_.push_back(a.lj_type);
    masses_.push_back(a.mass);
  }
  if (opts_.nonbonded.full_elec.enabled) {
    assert(full_elec_error(opts_.nonbonded.full_elec) == nullptr);
    pme_ = std::make_unique<Pme>(mol_.box, to_pme_options(opts_.nonbonded.full_elec));
  }
  compute_forces();
}

ThreadPool& SequentialEngine::pool() {
  if (pool_ == nullptr) {
    const int t = opts_.nonbonded.threads > 0 ? opts_.nonbonded.threads
                                              : ThreadPool::default_threads();
    pool_ = std::make_unique<ThreadPool>(t);
  }
  return *pool_;
}

EnergyTerms SequentialEngine::evaluate_nonbonded(std::span<Vec3> out) {
  const NonbondedContext ctx(mol_.params, excl_, charges_, lj_types_,
                             opts_.nonbonded);
  const bool threaded = opts_.nonbonded.kernel == NonbondedKernel::kTiledThreads;

  if (opts_.use_pairlist) {
    if (pairlist_ == nullptr) {
      pairlist_ = std::make_unique<VerletList>(mol_.box, opts_.nonbonded.cutoff,
                                               opts_.pairlist_skin);
    }
    if (pairlist_->needs_rebuild(mol_.positions())) pairlist_->build(mol_.positions());
    if (opts_.nonbonded.kernel != NonbondedKernel::kScalar) refresh_pairlist_codes();
    EnergyTerms e = threaded ? eval_pairlist_mt(ctx, out) : eval_pairlist(ctx, out);
    e.elec += evaluate_reciprocal(out);
    return e;
  }
  EnergyTerms e = threaded ? eval_cells_mt(ctx, out) : eval_cells(ctx, out);
  e.elec += evaluate_reciprocal(out);
  return e;
}

double SequentialEngine::evaluate_reciprocal(std::span<Vec3> out) {
  if (pme_ == nullptr) return 0.0;
  // The long-range remainder of the Ewald split: grid-based reciprocal sum
  // over all atoms, the constant self-energy, and the erf complement for
  // pairs the short-range kernels excluded or scaled. Folded into the elec
  // energy term so trajectory formats stay unchanged.
  const double alpha = opts_.nonbonded.full_elec.alpha;
  double e = pme_->reciprocal(mol_.positions(), charges_, out);
  e += ewald_self_energy_strided(alpha, charges_, 0, 1);
  e += full_elec_exclusion_corrections(excl_, mol_.params, alpha, charges_,
                                       mol_.positions(), out, 0, 1);
  return e;
}

EnergyTerms SequentialEngine::eval_cells(const NonbondedContext& ctx,
                                         std::span<Vec3> out) {
  EnergyTerms energy;
  const auto& pos = mol_.positions();
  const CellList cells(grid_, pos);
  const int nc = grid_.cell_count();
  const bool tiled = opts_.nonbonded.kernel == NonbondedKernel::kTiled;

  // Gather per-cell coordinate/force scratch (kernels operate on local
  // arrays, exactly as patch-local computes do in the parallel core).
  std::vector<std::vector<Vec3>> cpos(static_cast<std::size_t>(nc));
  std::vector<std::vector<Vec3>> cfrc(static_cast<std::size_t>(nc));
  for (int c = 0; c < nc; ++c) {
    const auto atoms = cells.atoms_in(c);
    auto& cp = cpos[static_cast<std::size_t>(c)];
    cp.reserve(atoms.size());
    for (int a : atoms) cp.push_back(pos[static_cast<std::size_t>(a)]);
    cfrc[static_cast<std::size_t>(c)].assign(atoms.size(), Vec3{});
  }

  for (int c = 0; c < nc; ++c) {
    const auto sc = static_cast<std::size_t>(c);
    energy += tiled ? nonbonded_self_tiled(ctx, cells.atoms_in(c), cpos[sc], cfrc[sc],
                                           work_, tiled_ws_)
                    : nonbonded_self(ctx, cells.atoms_in(c), cpos[sc], cfrc[sc], work_);
  }
  for (const auto& [a, b] : grid_.neighbor_pairs()) {
    const auto sa = static_cast<std::size_t>(a);
    const auto sb = static_cast<std::size_t>(b);
    energy += tiled ? nonbonded_ab_tiled(ctx, cells.atoms_in(a), cpos[sa], cfrc[sa],
                                         cells.atoms_in(b), cpos[sb], cfrc[sb], work_,
                                         tiled_ws_)
                    : nonbonded_ab(ctx, cells.atoms_in(a), cpos[sa], cfrc[sa],
                                   cells.atoms_in(b), cpos[sb], cfrc[sb], work_);
  }

  for (int c = 0; c < nc; ++c) {
    const auto atoms = cells.atoms_in(c);
    const auto& cf = cfrc[static_cast<std::size_t>(c)];
    for (std::size_t i = 0; i < atoms.size(); ++i) {
      out[static_cast<std::size_t>(atoms[i])] += cf[i];
    }
  }
  return energy;
}

EnergyTerms SequentialEngine::eval_cells_mt(const NonbondedContext& ctx,
                                            std::span<Vec3> out) {
  const auto& pos = mol_.positions();
  const CellList cells(grid_, pos);
  const int nc = grid_.cell_count();
  ThreadPool& tp = pool();

  std::vector<std::vector<Vec3>> cpos(static_cast<std::size_t>(nc));
  for (int c = 0; c < nc; ++c) {
    const auto atoms = cells.atoms_in(c);
    auto& cp = cpos[static_cast<std::size_t>(c)];
    cp.reserve(atoms.size());
    for (int a : atoms) cp.push_back(pos[static_cast<std::size_t>(a)]);
  }

  nb_workers_.resize(static_cast<std::size_t>(tp.size()));
  for (auto& w : nb_workers_) {
    w.cell_frc.resize(static_cast<std::size_t>(nc));
    for (int c = 0; c < nc; ++c) {
      w.cell_frc[static_cast<std::size_t>(c)].assign(cells.atoms_in(c).size(), Vec3{});
    }
    w.work = {};
  }

  // Tasks: one per self compute, then one per neighbor-pair compute. The
  // static schedule plus per-worker buffers keeps the reduction
  // deterministic for a fixed thread count.
  const auto pairs = grid_.neighbor_pairs();
  const std::size_t ntasks = static_cast<std::size_t>(nc) + pairs.size();
  task_energy_.assign(ntasks, EnergyTerms{});
  tp.run(ntasks, [&](std::size_t t, int worker) {
    NbWorker& w = nb_workers_[static_cast<std::size_t>(worker)];
    if (t < static_cast<std::size_t>(nc)) {
      const int c = static_cast<int>(t);
      task_energy_[t] =
          nonbonded_self_tiled(ctx, cells.atoms_in(c), cpos[t],
                               w.cell_frc[t], w.work, w.ws);
    } else {
      const auto& [a, b] = pairs[t - static_cast<std::size_t>(nc)];
      const auto sa = static_cast<std::size_t>(a);
      const auto sb = static_cast<std::size_t>(b);
      task_energy_[t] =
          nonbonded_ab_tiled(ctx, cells.atoms_in(a), cpos[sa], w.cell_frc[sa],
                             cells.atoms_in(b), cpos[sb], w.cell_frc[sb], w.work,
                             w.ws);
    }
  });

  EnergyTerms energy;
  for (const EnergyTerms& e : task_energy_) energy += e;
  for (const auto& w : nb_workers_) {
    work_ += w.work;
    for (int c = 0; c < nc; ++c) {
      const auto atoms = cells.atoms_in(c);
      const auto& cf = w.cell_frc[static_cast<std::size_t>(c)];
      for (std::size_t i = 0; i < atoms.size(); ++i) {
        out[static_cast<std::size_t>(atoms[i])] += cf[i];
      }
    }
  }
  return energy;
}

void SequentialEngine::refresh_pairlist_codes() {
  if (codes_builds_ == pairlist_->builds()) return;
  codes_builds_ = pairlist_->builds();
  const int n = mol_.atom_count();
  code_off_.assign(static_cast<std::size_t>(n) + 1, 0);
  codes_.clear();
  codes_.reserve(pairlist_->pair_count());
  for (int i = 0; i < n; ++i) {
    for (int j : pairlist_->neighbors(i)) {
      codes_.push_back(static_cast<std::uint8_t>(excl_.check(i, j)));
    }
    code_off_[static_cast<std::size_t>(i) + 1] =
        static_cast<std::uint32_t>(codes_.size());
  }
}

EnergyTerms SequentialEngine::eval_pairlist(const NonbondedContext& ctx,
                                            std::span<Vec3> out) {
  EnergyTerms energy;
  const auto& pos = mol_.positions();
  const int n = mol_.atom_count();
  if (opts_.nonbonded.kernel == NonbondedKernel::kScalar) {
    for (int i = 0; i < n; ++i) {
      const auto si = static_cast<std::size_t>(i);
      for (int j : pairlist_->neighbors(i)) {
        const auto sj = static_cast<std::size_t>(j);
        nonbonded_pair_eval(ctx, i, j, pos[si], pos[sj], out[si], out[sj], energy,
                            work_);
      }
    }
    return energy;
  }
  for (int i = 0; i < n; ++i) {
    const auto nbrs = pairlist_->neighbors(i);
    const auto off = code_off_[static_cast<std::size_t>(i)];
    energy += nonbonded_neighbors_tiled(
        ctx, i, pos, nbrs, {codes_.data() + off, nbrs.size()}, out, work_, tiled_ws_);
  }
  return energy;
}

EnergyTerms SequentialEngine::eval_pairlist_mt(const NonbondedContext& ctx,
                                               std::span<Vec3> out) {
  const auto& pos = mol_.positions();
  const auto n = static_cast<std::size_t>(mol_.atom_count());
  ThreadPool& tp = pool();

  // Outer-atom chunks are the task unit (paper section 4.2.1's grain-size
  // unit); per-worker global force buffers absorb the scattered j-forces.
  constexpr std::size_t kChunkAtoms = 256;
  const std::size_t nchunks = (n + kChunkAtoms - 1) / kChunkAtoms;
  nb_workers_.resize(static_cast<std::size_t>(tp.size()));
  for (auto& w : nb_workers_) {
    w.frc.assign(n, Vec3{});
    w.work = {};
  }
  task_energy_.assign(nchunks, EnergyTerms{});
  tp.run(nchunks, [&](std::size_t t, int worker) {
    NbWorker& w = nb_workers_[static_cast<std::size_t>(worker)];
    const std::size_t lo = t * kChunkAtoms;
    const std::size_t hi = std::min(n, lo + kChunkAtoms);
    EnergyTerms e;
    for (std::size_t i = lo; i < hi; ++i) {
      const auto nbrs = pairlist_->neighbors(static_cast<int>(i));
      const auto off = code_off_[i];
      e += nonbonded_neighbors_tiled(ctx, static_cast<int>(i), pos, nbrs,
                                     {codes_.data() + off, nbrs.size()}, w.frc,
                                     w.work, w.ws);
    }
    task_energy_[t] = e;
  });

  EnergyTerms energy;
  for (const EnergyTerms& e : task_energy_) energy += e;
  for (const auto& w : nb_workers_) {
    work_ += w.work;
    for (std::size_t i = 0; i < n; ++i) out[i] += w.frc[i];
  }
  return energy;
}

EnergyTerms SequentialEngine::evaluate_bonded(std::span<Vec3> out) {
  EnergyTerms energy;
  const auto& pos = mol_.positions();
  energy += evaluate_bonds(mol_.params, mol_.bonds(), pos, out, work_);
  energy += evaluate_angles(mol_.params, mol_.angles(), pos, out, work_);
  energy += evaluate_dihedrals(mol_.params, mol_.dihedrals(), pos, out, work_);
  energy += evaluate_impropers(mol_.params, mol_.impropers(), pos, out, work_);
  return energy;
}

void SequentialEngine::compute_forces() {
  energy_ = {};
  work_ = {};
  std::fill(forces_.begin(), forces_.end(), Vec3{});
  energy_ += evaluate_nonbonded(forces_);
  energy_ += evaluate_bonded(forces_);
}

void SequentialEngine::step() {
  integrator_.half_kick(forces_, masses_, mol_.velocities());
  integrator_.drift(mol_.velocities(), mol_.positions());
  compute_forces();
  work_.atoms_integrated += static_cast<std::uint64_t>(mol_.atom_count());
  integrator_.half_kick(forces_, masses_, mol_.velocities());
  ++steps_done_;
  if (observer_) observer_(*this, steps_done_);
}

void SequentialEngine::run(int n) {
  for (int i = 0; i < n; ++i) step();
}

double SequentialEngine::kinetic() const {
  return kinetic_energy(mol_.velocities(), masses_);
}

}  // namespace scalemd
