#pragma once

#include <span>
#include <utility>
#include <vector>

#include "util/vec3.hpp"

namespace scalemd {

/// Integer cell coordinates.
struct Int3 {
  int x = 0, y = 0, z = 0;
  friend bool operator==(const Int3&, const Int3&) = default;
};

/// Uniform grid of cells (the paper's "cubes") covering a box. Cell edges
/// are >= min_cell in every dimension, so atoms in one cell interact only
/// with the 26 surrounding cells when min_cell >= the cutoff. Shared by the
/// sequential cell-list evaluator and the parallel patch decomposition.
class CellGrid {
 public:
  /// Splits `box` into floor(box/min_cell) cells per dimension (at least 1).
  CellGrid(const Vec3& box, double min_cell);

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  int cell_count() const { return nx_ * ny_ * nz_; }

  /// Linear index of the cell containing `p` (clamped into the grid, so
  /// atoms that drift slightly outside the box remain owned by edge cells).
  int cell_of(const Vec3& p) const;

  Int3 coords(int index) const;
  int index(const Int3& c) const { return (c.z * ny_ + c.y) * nx_ + c.x; }
  bool in_grid(const Int3& c) const {
    return c.x >= 0 && c.x < nx_ && c.y >= 0 && c.y < ny_ && c.z >= 0 && c.z < nz_;
  }

  /// Geometric center of a cell, used by recursive-bisection placement.
  Vec3 cell_center(int index) const;

  /// Every unordered pair of distinct neighboring cells (sharing a face,
  /// edge or corner), each listed exactly once with first < second.
  std::vector<std::pair<int, int>> neighbor_pairs() const;

  /// The paper's *upstream* neighbors of `c`: the (at most 7) in-grid cells
  /// at coordinates >= c along every axis, excluding c itself.
  std::vector<int> upstream_neighbors(int index) const;

  /// True if the two cells (which must be neighbors) share a face — the
  /// distinction Figure 1's bimodal grain-size distribution hinges on.
  bool share_face(int a, int b) const;

 private:
  Vec3 box_;
  double inv_cx_, inv_cy_, inv_cz_;
  int nx_, ny_, nz_;
};

/// CSR assignment of atoms to cells, rebuilt per force evaluation by the
/// sequential engine.
class CellList {
 public:
  CellList(const CellGrid& grid, std::span<const Vec3> pos);

  /// Atom indices (into `pos` as passed to the constructor) in cell `c`.
  std::span<const int> atoms_in(int c) const;

 private:
  std::vector<std::uint32_t> offsets_;
  std::vector<int> atoms_;
};

}  // namespace scalemd
