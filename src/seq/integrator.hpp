#pragma once

#include <span>

#include "util/vec3.hpp"

namespace scalemd {

/// Velocity-Verlet integrator pieces operating on flat arrays, shared by the
/// sequential engine and the parallel patches (each patch integrates the
/// atoms it owns — the paper's "integration is carried out only by the
/// patches").
class VelocityVerlet {
 public:
  /// `dt_fs` is the timestep in femtoseconds (the paper's simulations use
  /// 1 fs); internally converted to AKMA time units.
  explicit VelocityVerlet(double dt_fs);

  double dt_fs() const { return dt_fs_; }

  /// v += (f/m) * dt/2 for each atom.
  void half_kick(std::span<const Vec3> f, std::span<const double> mass,
                 std::span<Vec3> v) const;

  /// x += v * dt for each atom.
  void drift(std::span<const Vec3> v, std::span<Vec3> x) const;

 private:
  double dt_fs_;
  double dt_;  ///< AKMA time units
};

/// Kinetic energy (kcal/mol) of the given atoms.
double kinetic_energy(std::span<const Vec3> v, std::span<const double> mass);

/// Instantaneous temperature in kelvin for `dof` degrees of freedom
/// (typically 3N - 3 after momentum removal).
double temperature(double kinetic, std::size_t dof);

}  // namespace scalemd
