#pragma once

#include <span>
#include <vector>

#include "topo/molecule.hpp"

namespace scalemd {

/// SHAKE/RATTLE holonomic bond-length constraints (the "rigid bonds" option
/// of production MD codes, which lets water use 2 fs timesteps). Constrains
/// each listed bond to its force-field rest length.
class BondConstraints {
 public:
  struct Options;

  /// Constrains every bond of `mol` whose parameter rest length is positive.
  /// The molecule is only read at construction (topology + rest lengths).
  explicit BondConstraints(const Molecule& mol);
  BondConstraints(const Molecule& mol, const Options& opts);

  std::size_t constraint_count() const { return bonds_.size(); }

  /// SHAKE: iteratively adjusts `pos` so every constrained bond has its rest
  /// length, with displacements weighted by inverse masses, using `ref` as
  /// the constraint-direction reference (the positions before the drift,
  /// where constraints held). Also applies the corresponding velocity
  /// correction (dr/dt) when `vel` is non-empty. Returns iterations used,
  /// or -1 if it failed to converge.
  int shake(std::span<const Vec3> ref, std::span<Vec3> pos, std::span<Vec3> vel,
            std::span<const double> inv_mass, double dt) const;

  /// RATTLE velocity stage: projects out the velocity component along each
  /// constrained bond so d/dt |r_ab|^2 = 0. Returns iterations used, or -1.
  int rattle(std::span<const Vec3> pos, std::span<Vec3> vel,
             std::span<const double> inv_mass) const;

  /// Largest relative constraint violation |r^2 - d^2| / d^2 over all
  /// constrained bonds at the given positions.
  double max_violation(std::span<const Vec3> pos) const;

 private:
  struct Constraint {
    int a, b;
    double d2;  ///< target squared length
  };
  std::vector<Constraint> bonds_;
  double tolerance_;
  int max_iterations_;
};

/// Convergence controls for BondConstraints.
struct BondConstraints::Options {
  double tolerance = 1e-10;  ///< relative squared-length tolerance
  int max_iterations = 500;
};

}  // namespace scalemd
