#include "seq/integrator.hpp"

#include <cassert>

#include "util/units.hpp"

namespace scalemd {

VelocityVerlet::VelocityVerlet(double dt_fs)
    : dt_fs_(dt_fs), dt_(dt_fs / units::kAkmaTimeFs) {}

void VelocityVerlet::half_kick(std::span<const Vec3> f, std::span<const double> mass,
                               std::span<Vec3> v) const {
  assert(f.size() == v.size() && mass.size() == v.size());
  const double h = 0.5 * dt_;
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] += f[i] * (h / mass[i]);
  }
}

void VelocityVerlet::drift(std::span<const Vec3> v, std::span<Vec3> x) const {
  assert(v.size() == x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] += v[i] * dt_;
  }
}

double kinetic_energy(std::span<const Vec3> v, std::span<const double> mass) {
  double ke = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    ke += 0.5 * mass[i] * norm2(v[i]);
  }
  return ke;
}

double temperature(double kinetic, std::size_t dof) {
  if (dof == 0) return 0.0;
  return 2.0 * kinetic / (static_cast<double>(dof) * units::kBoltzmann);
}

}  // namespace scalemd
