#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "ewald/pme.hpp"
#include "ff/bonded.hpp"
#include "ff/nonbonded.hpp"
#include "ff/nonbonded_tiled.hpp"
#include "seq/cell_list.hpp"
#include "seq/integrator.hpp"
#include "seq/pairlist.hpp"
#include "topo/exclusions.hpp"
#include "topo/molecule.hpp"

namespace scalemd {

/// Sequential engine configuration.
struct EngineOptions {
  NonbondedOptions nonbonded;
  double dt_fs = 1.0;
  /// Evaluate non-bonded forces through a skinned Verlet list (rebuilt
  /// automatically when atoms move beyond skin/2) instead of fresh cell
  /// sweeps every step. Identical forces, amortized neighbor search.
  bool use_pairlist = false;
  double pairlist_skin = 1.5;  ///< A
};

/// Reference single-threaded MD engine: cell-list non-bonded evaluation plus
/// full bonded-term evaluation, integrated with velocity Verlet. Serves
/// three roles in the reproduction: the correctness oracle for the parallel
/// decomposition (forces must match), the "ideal time" source for the
/// performance audit (Table 1), and the work-count calibrator for the DES
/// machine models.
class SequentialEngine {
 public:
  /// Copies the molecule's dynamic state; the engine evolves its own copy.
  SequentialEngine(const Molecule& mol, const EngineOptions& opts);

  /// Evaluates all forces and energies at the current positions. Called by
  /// step(); exposed for force-comparison tests. Resets work counters first.
  void compute_forces();

  /// Split evaluation for multiple-timestepping integrators: accumulates
  /// only the non-bonded (slow) or only the bonded (fast) forces into `out`
  /// at the current positions, returning that component's energy and adding
  /// to the engine's work counters.
  EnergyTerms evaluate_nonbonded(std::span<Vec3> out);
  EnergyTerms evaluate_bonded(std::span<Vec3> out);

  /// Advances one velocity-Verlet step (assumes forces are current; the
  /// constructor primes them).
  void step();

  /// Runs `n` steps.
  void run(int n);

  /// Called after every completed step() with the engine and the 1-based
  /// count of steps taken so far, when forces/energies/velocities are all
  /// consistent at the new positions. The validation subsystem
  /// (check::InvariantChecker) attaches through this hook; replaces any
  /// previous observer (empty function detaches).
  using StepObserver = std::function<void(const SequentialEngine&, int step)>;
  void set_step_observer(StepObserver obs) { observer_ = std::move(obs); }

  /// Number of step() calls completed since construction.
  int steps_done() const { return steps_done_; }

  const Molecule& molecule() const { return mol_; }
  std::span<const Vec3> positions() const { return mol_.positions(); }
  /// Mutable coordinate access for the minimizer and external integrators;
  /// callers must invoke compute_forces() after editing positions.
  std::span<Vec3> mutable_positions() { return mol_.positions(); }
  std::span<Vec3> mutable_velocities() { return mol_.velocities(); }
  std::span<const double> masses() const { return masses_; }
  std::span<const Vec3> velocities() const { return mol_.velocities(); }
  std::span<const Vec3> forces() const { return forces_; }

  /// Potential-energy components of the last force evaluation.
  const EnergyTerms& potential() const { return energy_; }
  double kinetic() const;
  double total_energy() const { return potential().total() + kinetic(); }

  /// Work performed by the last force evaluation (pairs, bonded terms).
  const WorkCounters& work() const { return work_; }

  const CellGrid& grid() const { return grid_; }
  const ExclusionTable& exclusions() const { return excl_; }
  const EngineOptions& options() const { return opts_; }

 private:
  /// Non-bonded evaluation paths: {cell sweep, Verlet pairlist} x
  /// {serial scalar-or-tiled, thread-pool tiled}. All four produce
  /// identical WorkCounters and matching forces/energies.
  EnergyTerms eval_cells(const NonbondedContext& ctx, std::span<Vec3> out);
  EnergyTerms eval_cells_mt(const NonbondedContext& ctx, std::span<Vec3> out);
  EnergyTerms eval_pairlist(const NonbondedContext& ctx, std::span<Vec3> out);
  EnergyTerms eval_pairlist_mt(const NonbondedContext& ctx, std::span<Vec3> out);
  /// Full-electrostatics long-range remainder (PME reciprocal + self energy
  /// + exclusion corrections); 0 when full_elec is off. Forces into `out`.
  double evaluate_reciprocal(std::span<Vec3> out);
  void refresh_pairlist_codes();
  ThreadPool& pool();

  Molecule mol_;
  EngineOptions opts_;
  ExclusionTable excl_;
  std::vector<double> charges_;
  std::vector<int> lj_types_;
  std::vector<double> masses_;
  CellGrid grid_;
  VelocityVerlet integrator_;
  std::unique_ptr<VerletList> pairlist_;  // present when options request it
  std::unique_ptr<Pme> pme_;  // present when options.nonbonded.full_elec is on
  std::vector<Vec3> forces_;
  EnergyTerms energy_;
  WorkCounters work_;
  StepObserver observer_;
  int steps_done_ = 0;

  // --- tiled-kernel machinery (created on demand) ---------------------
  TiledWorkspace tiled_ws_;
  std::unique_ptr<ThreadPool> pool_;
  /// Per-pool-worker state for NonbondedKernel::kTiledThreads.
  struct NbWorker {
    TiledWorkspace ws;
    std::vector<std::vector<Vec3>> cell_frc;  // cell path: per-cell buffers
    std::vector<Vec3> frc;                    // pairlist path: global buffer
    WorkCounters work;
  };
  std::vector<NbWorker> nb_workers_;
  std::vector<EnergyTerms> task_energy_;
  /// Exclusion codes parallel to the Verlet list (CSR), rebuilt per
  /// pairlist build — the "bitmask once per pairlist build" path.
  std::vector<std::uint32_t> code_off_;
  std::vector<std::uint8_t> codes_;
  int codes_builds_ = -1;
};

}  // namespace scalemd
