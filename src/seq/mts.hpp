#pragma once

#include "seq/engine.hpp"

namespace scalemd {

/// Multiple-timestepping options: fast (bonded) forces integrate every
/// `dt_fast_fs`; slow (non-bonded) forces are applied as impulses every
/// `slow_every` fast steps.
struct MtsOptions {
  NonbondedOptions nonbonded;
  double dt_fast_fs = 1.0;
  int slow_every = 4;
};

/// Impulse (r-RESPA / Verlet-I) multiple-timestepping integrator, the
/// technique the paper invokes for combining cutoff forces with less
/// frequent long-range work ("particularly when combined with multiple
/// timestepping methods"). Bonded forces — the stiff, cheap part — advance
/// with the inner timestep; the expensive non-bonded forces are evaluated
/// once per outer step and applied as half-impulses around the inner loop.
/// For slow_every == 1 this reduces exactly to velocity Verlet.
class MtsEngine {
 public:
  MtsEngine(const Molecule& mol, const MtsOptions& opts);

  /// Advances one outer step (slow_every inner steps).
  void step();
  void run(int outer_steps);

  double kinetic() const;
  /// Potential at the last force evaluation (slow + fast components).
  double potential() const { return slow_energy_.total() + fast_energy_.total(); }
  double total_energy() const { return potential() + kinetic(); }

  /// Non-bonded force evaluations performed (the savings metric: one per
  /// outer step instead of one per inner step).
  int slow_evaluations() const { return slow_evals_; }

  const SequentialEngine& engine() const { return engine_; }

 private:
  void refresh_slow();
  void refresh_fast();

  MtsOptions opts_;
  SequentialEngine engine_;  ///< owns positions/velocities; used as force provider
  VelocityVerlet inner_;
  std::vector<Vec3> slow_forces_;
  std::vector<Vec3> fast_forces_;
  EnergyTerms slow_energy_;
  EnergyTerms fast_energy_;
  int slow_evals_ = 0;
};

}  // namespace scalemd
