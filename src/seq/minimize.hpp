#pragma once

namespace scalemd {

class SequentialEngine;

/// Result of a minimization run.
struct MinimizeResult {
  int steps = 0;            ///< steps actually taken
  double initial_energy = 0.0;
  double final_energy = 0.0;
  double max_force = 0.0;   ///< largest per-atom force magnitude at the end
};

/// Adaptive steepest-descent energy minimization with per-atom displacement
/// capping. Relaxes the synthetic initial configurations (which contain
/// occasional clashes) before dynamics, in the same role as NAMD's
/// `minimize` command. Stops early once the largest per-atom force drops
/// below `force_tol` (kcal/mol/A).
MinimizeResult minimize(SequentialEngine& engine, int max_steps,
                        double max_disp = 0.2, double force_tol = 10.0);

}  // namespace scalemd
