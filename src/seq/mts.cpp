#include "seq/mts.hpp"

#include <algorithm>

namespace scalemd {

MtsEngine::MtsEngine(const Molecule& mol, const MtsOptions& opts)
    : opts_(opts),
      engine_(mol, EngineOptions{opts.nonbonded, opts.dt_fast_fs}),
      inner_(opts.dt_fast_fs),
      slow_forces_(static_cast<std::size_t>(mol.atom_count())),
      fast_forces_(static_cast<std::size_t>(mol.atom_count())) {
  refresh_slow();
  refresh_fast();
}

void MtsEngine::refresh_slow() {
  std::fill(slow_forces_.begin(), slow_forces_.end(), Vec3{});
  slow_energy_ = engine_.evaluate_nonbonded(slow_forces_);
  ++slow_evals_;
}

void MtsEngine::refresh_fast() {
  std::fill(fast_forces_.begin(), fast_forces_.end(), Vec3{});
  fast_energy_ = engine_.evaluate_bonded(fast_forces_);
}

void MtsEngine::step() {
  const auto masses = engine_.masses();
  auto vel = engine_.mutable_velocities();

  // Outer half-impulse of the slow (non-bonded) forces. The impulse spans
  // slow_every inner steps, so each half-kick is scaled accordingly.
  const double outer_scale = static_cast<double>(opts_.slow_every);
  for (int k = 0; k < opts_.slow_every; ++k) {
    if (k == 0) {
      // v += F_slow * (n * dt/2) / m : apply through a scaled half kick.
      std::vector<Vec3> scaled(slow_forces_.size());
      for (std::size_t i = 0; i < scaled.size(); ++i) {
        scaled[i] = slow_forces_[i] * outer_scale;
      }
      inner_.half_kick(scaled, masses, vel);
    }
    // Inner velocity Verlet with fast (bonded) forces only.
    inner_.half_kick(fast_forces_, masses, vel);
    inner_.drift(vel, engine_.mutable_positions());
    refresh_fast();
    inner_.half_kick(fast_forces_, masses, vel);
    if (k == opts_.slow_every - 1) {
      refresh_slow();
      std::vector<Vec3> scaled(slow_forces_.size());
      for (std::size_t i = 0; i < scaled.size(); ++i) {
        scaled[i] = slow_forces_[i] * outer_scale;
      }
      inner_.half_kick(scaled, masses, vel);
    }
  }
}

void MtsEngine::run(int outer_steps) {
  for (int i = 0; i < outer_steps; ++i) step();
}

double MtsEngine::kinetic() const {
  return kinetic_energy(engine_.velocities(), engine_.masses());
}

}  // namespace scalemd
