#include "seq/minimize.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "seq/engine.hpp"

namespace scalemd {

MinimizeResult minimize(SequentialEngine& engine, int max_steps, double max_disp,
                        double force_tol) {
  MinimizeResult res;
  res.initial_energy = engine.potential().total();
  double energy = res.initial_energy;
  double alpha = 1e-4;

  const std::size_t n = engine.positions().size();
  std::vector<Vec3> saved(n);

  for (res.steps = 0; res.steps < max_steps; ++res.steps) {
    const auto forces = engine.forces();
    res.max_force = 0.0;
    for (const Vec3& f : forces) res.max_force = std::max(res.max_force, norm(f));
    if (res.max_force < force_tol) break;

    auto pos = engine.mutable_positions();
    std::copy(pos.begin(), pos.end(), saved.begin());
    for (std::size_t i = 0; i < n; ++i) {
      Vec3 step = forces[i] * alpha;
      const double len = norm(step);
      if (len > max_disp) step *= max_disp / len;
      pos[i] += step;
    }
    engine.compute_forces();
    const double new_energy = engine.potential().total();
    if (new_energy < energy) {
      energy = new_energy;
      alpha *= 1.2;
    } else {
      // Reject the step and shrink.
      std::copy(saved.begin(), saved.end(), engine.mutable_positions().begin());
      engine.compute_forces();
      alpha *= 0.5;
      if (alpha < 1e-12) break;
    }
  }
  res.final_energy = engine.potential().total();
  const auto forces = engine.forces();
  res.max_force = 0.0;
  for (const Vec3& f : forces) res.max_force = std::max(res.max_force, norm(f));
  return res;
}

}  // namespace scalemd
