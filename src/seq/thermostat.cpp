#include "seq/thermostat.hpp"

#include <cmath>

#include "seq/integrator.hpp"

namespace scalemd {

Thermostat::Thermostat(Kind kind, double target_kelvin, double tau_fs)
    : kind_(kind), target_(target_kelvin), tau_fs_(tau_fs) {}

double Thermostat::apply(std::span<Vec3> velocities, std::span<const double> masses,
                         double dt_fs, std::size_t dof) const {
  const double ke = kinetic_energy(velocities, masses);
  const double t = temperature(ke, dof);
  if (t <= 0.0) return t;

  double lambda = 1.0;
  switch (kind_) {
    case Kind::kRescale:
      lambda = std::sqrt(target_ / t);
      break;
    case Kind::kBerendsen:
      lambda = std::sqrt(1.0 + dt_fs / tau_fs_ * (target_ / t - 1.0));
      break;
  }
  for (Vec3& v : velocities) v *= lambda;
  return t;
}

}  // namespace scalemd
