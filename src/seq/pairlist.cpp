#include "seq/pairlist.hpp"

#include <algorithm>

namespace scalemd {

VerletList::VerletList(const Vec3& box, double cutoff, double skin)
    : box_(box), cutoff_(cutoff), skin_(skin), grid_(box, cutoff + skin) {}

void VerletList::build(std::span<const Vec3> pos) {
  const double range2 = (cutoff_ + skin_) * (cutoff_ + skin_);
  const CellList cells(grid_, pos);

  std::vector<std::vector<int>> nbrs(pos.size());
  auto scan = [&](std::span<const int> a, std::span<const int> b, bool self) {
    for (std::size_t x = 0; x < a.size(); ++x) {
      const int i = a[x];
      for (std::size_t y = self ? x + 1 : 0; y < b.size(); ++y) {
        const int j = b[y];
        if (norm2(pos[static_cast<std::size_t>(i)] -
                  pos[static_cast<std::size_t>(j)]) < range2) {
          nbrs[static_cast<std::size_t>(std::min(i, j))].push_back(std::max(i, j));
        }
      }
    }
  };
  for (int c = 0; c < grid_.cell_count(); ++c) {
    scan(cells.atoms_in(c), cells.atoms_in(c), true);
  }
  for (const auto& [a, b] : grid_.neighbor_pairs()) {
    scan(cells.atoms_in(a), cells.atoms_in(b), false);
  }

  offsets_.assign(pos.size() + 1, 0);
  std::size_t total = 0;
  for (std::size_t i = 0; i < pos.size(); ++i) {
    total += nbrs[i].size();
    offsets_[i + 1] = static_cast<std::uint32_t>(total);
  }
  pairs_.clear();
  pairs_.reserve(total);
  for (auto& n : nbrs) {
    std::sort(n.begin(), n.end());
    pairs_.insert(pairs_.end(), n.begin(), n.end());
  }

  ref_pos_.assign(pos.begin(), pos.end());
  ++builds_;
}

bool VerletList::needs_rebuild(std::span<const Vec3> pos) const {
  if (ref_pos_.size() != pos.size()) return true;
  const double limit2 = 0.25 * skin_ * skin_;
  for (std::size_t i = 0; i < pos.size(); ++i) {
    if (norm2(pos[i] - ref_pos_[i]) > limit2) return true;
  }
  return false;
}

}  // namespace scalemd
