#pragma once

#include <span>

#include "util/vec3.hpp"

namespace scalemd {

/// Temperature-control schemes for equilibration runs. NVE production runs
/// (everything the paper benchmarks) do not use one; the generators produce
/// unequilibrated configurations, and a short thermostatted run settles them.
class Thermostat {
 public:
  enum class Kind {
    kRescale,    ///< hard rescale of velocities to the target temperature
    kBerendsen,  ///< weak coupling with time constant tau
  };

  /// `tau_fs` only applies to kBerendsen.
  Thermostat(Kind kind, double target_kelvin, double tau_fs = 100.0);

  /// Adjusts velocities toward the target temperature. `dt_fs` is the step
  /// just taken (Berendsen coupling strength); `dof` the degrees of freedom
  /// (typically 3N - 3 after momentum removal). Returns the temperature
  /// *before* the adjustment.
  double apply(std::span<Vec3> velocities, std::span<const double> masses,
               double dt_fs, std::size_t dof) const;

  double target() const { return target_; }

 private:
  Kind kind_;
  double target_;
  double tau_fs_;
};

}  // namespace scalemd
