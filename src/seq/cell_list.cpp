#include "seq/cell_list.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace scalemd {

CellGrid::CellGrid(const Vec3& box, double min_cell) : box_(box) {
  assert(min_cell > 0.0);
  // Epsilon guards the exact-multiple case (e.g. 105.6 / 17.6 == 6) against
  // round-down from floating-point representation error.
  nx_ = std::max(1, static_cast<int>(box.x / min_cell + 1e-9));
  ny_ = std::max(1, static_cast<int>(box.y / min_cell + 1e-9));
  nz_ = std::max(1, static_cast<int>(box.z / min_cell + 1e-9));
  inv_cx_ = nx_ / box.x;
  inv_cy_ = ny_ / box.y;
  inv_cz_ = nz_ / box.z;
}

int CellGrid::cell_of(const Vec3& p) const {
  const int ix = std::clamp(static_cast<int>(p.x * inv_cx_), 0, nx_ - 1);
  const int iy = std::clamp(static_cast<int>(p.y * inv_cy_), 0, ny_ - 1);
  const int iz = std::clamp(static_cast<int>(p.z * inv_cz_), 0, nz_ - 1);
  return index({ix, iy, iz});
}

Int3 CellGrid::coords(int index) const {
  const int x = index % nx_;
  const int y = (index / nx_) % ny_;
  const int z = index / (nx_ * ny_);
  return {x, y, z};
}

Vec3 CellGrid::cell_center(int index) const {
  const Int3 c = coords(index);
  return {(c.x + 0.5) / inv_cx_, (c.y + 0.5) / inv_cy_, (c.z + 0.5) / inv_cz_};
}

std::vector<std::pair<int, int>> CellGrid::neighbor_pairs() const {
  std::vector<std::pair<int, int>> pairs;
  for (int z = 0; z < nz_; ++z) {
    for (int y = 0; y < ny_; ++y) {
      for (int x = 0; x < nx_; ++x) {
        const int a = index({x, y, z});
        for (int dz = -1; dz <= 1; ++dz) {
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
              if (dx == 0 && dy == 0 && dz == 0) continue;
              const Int3 n{x + dx, y + dy, z + dz};
              if (!in_grid(n)) continue;
              const int b = index(n);
              if (a < b) pairs.emplace_back(a, b);
            }
          }
        }
      }
    }
  }
  return pairs;
}

std::vector<int> CellGrid::upstream_neighbors(int idx) const {
  const Int3 c = coords(idx);
  std::vector<int> out;
  out.reserve(7);
  for (int dz = 0; dz <= 1; ++dz) {
    for (int dy = 0; dy <= 1; ++dy) {
      for (int dx = 0; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0 && dz == 0) continue;
        const Int3 n{c.x + dx, c.y + dy, c.z + dz};
        if (in_grid(n)) out.push_back(index(n));
      }
    }
  }
  return out;
}

bool CellGrid::share_face(int a, int b) const {
  const Int3 ca = coords(a);
  const Int3 cb = coords(b);
  const int dx = std::abs(ca.x - cb.x);
  const int dy = std::abs(ca.y - cb.y);
  const int dz = std::abs(ca.z - cb.z);
  return dx + dy + dz == 1;
}

CellList::CellList(const CellGrid& grid, std::span<const Vec3> pos) {
  const int nc = grid.cell_count();
  std::vector<std::uint32_t> counts(static_cast<std::size_t>(nc) + 1, 0);
  std::vector<int> cell_of(pos.size());
  for (std::size_t i = 0; i < pos.size(); ++i) {
    cell_of[i] = grid.cell_of(pos[i]);
    ++counts[static_cast<std::size_t>(cell_of[i]) + 1];
  }
  for (int c = 0; c < nc; ++c) counts[c + 1] += counts[c];
  offsets_ = counts;
  atoms_.resize(pos.size());
  for (std::size_t i = 0; i < pos.size(); ++i) {
    atoms_[counts[static_cast<std::size_t>(cell_of[i])]++] = static_cast<int>(i);
  }
}

std::span<const int> CellList::atoms_in(int c) const {
  const auto lo = offsets_[static_cast<std::size_t>(c)];
  const auto hi = offsets_[static_cast<std::size_t>(c) + 1];
  return {atoms_.data() + lo, hi - lo};
}

}  // namespace scalemd
