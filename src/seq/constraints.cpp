#include "seq/constraints.hpp"

#include <cmath>

namespace scalemd {

BondConstraints::BondConstraints(const Molecule& mol)
    : BondConstraints(mol, Options{}) {}

BondConstraints::BondConstraints(const Molecule& mol, const Options& opts)
    : tolerance_(opts.tolerance), max_iterations_(opts.max_iterations) {
  for (const Bond& b : mol.bonds()) {
    const double r0 = mol.params.bond(b.param).r0;
    if (r0 > 0.0) bonds_.push_back({b.a, b.b, r0 * r0});
  }
}

int BondConstraints::shake(std::span<const Vec3> ref, std::span<Vec3> pos,
                           std::span<Vec3> vel, std::span<const double> inv_mass,
                           double dt) const {
  for (int iter = 0; iter < max_iterations_; ++iter) {
    bool converged = true;
    for (const Constraint& c : bonds_) {
      const auto a = static_cast<std::size_t>(c.a);
      const auto b = static_cast<std::size_t>(c.b);
      const Vec3 r = pos[a] - pos[b];
      const double diff = norm2(r) - c.d2;
      if (std::fabs(diff) <= tolerance_ * c.d2) continue;
      converged = false;
      // Standard SHAKE update along the pre-drift bond vector.
      const Vec3 s = ref[a] - ref[b];
      const double denom = 2.0 * dot(s, r) * (inv_mass[a] + inv_mass[b]);
      if (std::fabs(denom) < 1e-12) continue;  // pathological geometry
      const double g = diff / denom;
      pos[a] -= s * (g * inv_mass[a]);
      pos[b] += s * (g * inv_mass[b]);
      if (!vel.empty() && dt > 0.0) {
        vel[a] -= s * (g * inv_mass[a] / dt);
        vel[b] += s * (g * inv_mass[b] / dt);
      }
    }
    if (converged) return iter;
  }
  return -1;
}

int BondConstraints::rattle(std::span<const Vec3> pos, std::span<Vec3> vel,
                            std::span<const double> inv_mass) const {
  for (int iter = 0; iter < max_iterations_; ++iter) {
    bool converged = true;
    for (const Constraint& c : bonds_) {
      const auto a = static_cast<std::size_t>(c.a);
      const auto b = static_cast<std::size_t>(c.b);
      const Vec3 r = pos[a] - pos[b];
      const Vec3 dv = vel[a] - vel[b];
      const double rv = dot(r, dv);
      if (std::fabs(rv) <= tolerance_ * c.d2) continue;
      converged = false;
      const double k = rv / (c.d2 * (inv_mass[a] + inv_mass[b]));
      vel[a] -= r * (k * inv_mass[a]);
      vel[b] += r * (k * inv_mass[b]);
    }
    if (converged) return iter;
  }
  return -1;
}

double BondConstraints::max_violation(std::span<const Vec3> pos) const {
  double worst = 0.0;
  for (const Constraint& c : bonds_) {
    const double r2 = norm2(pos[static_cast<std::size_t>(c.a)] -
                            pos[static_cast<std::size_t>(c.b)]);
    worst = std::max(worst, std::fabs(r2 - c.d2) / c.d2);
  }
  return worst;
}

}  // namespace scalemd
