// Example: a tour of the measurement-based load-balancing pipeline on a
// mid-sized system — watch the imbalance fall through the paper's three
// stages: static initial placement (RCB + base-patch computes), the
// proxy-aware greedy pass, and the refinement pass.

#include <cstdio>

#include "core/driver.hpp"
#include "gen/presets.hpp"
#include "trace/summary.hpp"
#include "util/stats.hpp"

namespace {

/// Runs a measurement cycle and reports (ms/step, max/avg load).
std::pair<double, double> probe(scalemd::ParallelSim& sim, int pes) {
  using namespace scalemd;
  SummaryProfile prof(sim.sim().entries(), pes);
  sim.attach_sink(&prof);
  sim.run_cycle(4);
  sim.detach_sink(&prof);
  return {sim.seconds_per_step_tail(3) * 1e3, imbalance_ratio(prof.busy_times())};
}

}  // namespace

int main() {
  using namespace scalemd;
  const Molecule mol = apoa1_like();
  const Workload wl(mol, MachineModel::asci_red());
  constexpr int kPes = 256;

  ParallelOptions opts;
  opts.num_pes = kPes;
  opts.machine = MachineModel::asci_red();
  ParallelSim sim(wl, opts);

  std::printf("%s on %d PEs: %zu compute objects over %d patches\n\n",
              mol.name.c_str(), kPes, wl.plan.computes().size(),
              wl.decomp.patch_count());

  auto [t0, imb0] = probe(sim, kPes);
  std::printf("stage 1, static placement (RCB):      %7.1f ms/step, "
              "max/avg load %.2f\n", t0, imb0);

  sim.load_balance(/*refine_only=*/false);
  auto [t1, imb1] = probe(sim, kPes);
  std::printf("stage 2, greedy + refine:             %7.1f ms/step, "
              "max/avg load %.2f\n", t1, imb1);

  sim.load_balance(/*refine_only=*/true);
  auto [t2, imb2] = probe(sim, kPes);
  std::printf("stage 3, refine with real comm load:  %7.1f ms/step, "
              "max/avg load %.2f\n", t2, imb2);

  std::printf("\nproxies: %d (max %d per patch); the initial placement bounds "
              "the per-patch proxy count by 7 before balancing.\n",
              sim.proxy_count(), sim.max_proxies_per_patch());
  return 0;
}
