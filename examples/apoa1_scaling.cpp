// Example: the paper's headline experiment at laptop scale. Builds the
// ApoA-I-class benchmark system, runs the full parallel pipeline (spatial
// decomposition, hybrid compute objects, measurement-based load balancing)
// on a few processor counts of the simulated ASCI-Red, and prints the
// scaling curve plus a performance audit of the largest run.

#include <cstdio>

#include "core/driver.hpp"
#include "gen/presets.hpp"
#include "trace/audit.hpp"

int main() {
  using namespace scalemd;

  std::printf("building the ApoA-I-class system...\n");
  const Molecule mol = apoa1_like();
  std::printf("  %d atoms in a %.0f x %.0f x %.0f A box\n", mol.atom_count(),
              mol.box.x, mol.box.y, mol.box.z);

  std::printf("planning the decomposition (includes one real kernel pass)...\n");
  const Workload wl(mol, MachineModel::asci_red());
  std::printf("  %d patches (%d x %d x %d), %zu compute objects (%d migratable)\n\n",
              wl.decomp.patch_count(), wl.decomp.grid().nx(), wl.decomp.grid().ny(),
              wl.decomp.grid().nz(), wl.plan.computes().size(),
              wl.plan.migratable_count());

  BenchmarkConfig cfg;
  cfg.machine = MachineModel::asci_red();
  cfg.pe_counts = {1, 16, 64, 256, 1024};
  const auto rows = run_scaling(wl, cfg);
  std::printf("%s\n", render_scaling(rows, true).c_str());

  // A closer look at the 1024-PE run: where does the time go?
  constexpr int kPes = 1024;
  constexpr int kSteps = 5;
  ParallelOptions opts;
  opts.num_pes = kPes;
  opts.machine = cfg.machine;
  ParallelSim sim(wl, opts);
  sim.run_cycle(3);
  sim.load_balance(false);
  sim.run_cycle(3);
  sim.load_balance(true);
  SummaryProfile prof(sim.sim().entries(), kPes);
  sim.attach_sink(&prof);
  const double t0 = sim.sim().time();
  sim.run_cycle(kSteps);

  const AuditRow ideal = ideal_audit(sim.ideal_nonbonded_seconds() * (kSteps + 1),
                                     sim.ideal_bonded_seconds() * (kSteps + 1),
                                     sim.ideal_integration_seconds() * (kSteps + 1),
                                     kPes, kSteps + 1);
  const AuditRow actual =
      actual_audit(prof, sim.sim().time() - t0, kPes, kSteps + 1);
  std::printf("audit of the %d-PE run:\n%s\n", kPes,
              render_audit(ideal, actual).c_str());

  std::printf("entry-method summary profile (the paper's level-2 "
              "instrumentation):\n%s", prof.render().c_str());
  return 0;
}
