// Example: the three instrumentation levels the paper describes, on one
// small run — per-step times, the per-entry summary profile, and a full
// Projections-style event trace rendered as an ASCII timeline.

#include <cstdio>

#include "core/driver.hpp"
#include "gen/presets.hpp"
#include "trace/summary.hpp"
#include "trace/timeline.hpp"

int main() {
  using namespace scalemd;
  const Molecule mol = br_like();  // small and quick
  const Workload wl(mol, MachineModel::asci_red());

  constexpr int kPes = 16;
  ParallelOptions opts;
  opts.num_pes = kPes;
  opts.machine = MachineModel::asci_red();
  ParallelSim sim(wl, opts);

  SummaryProfile prof(sim.sim().entries(), kPes);
  EventLog log;
  sim.attach_sink(&prof);
  sim.attach_sink(&log);

  sim.run_cycle(3);
  sim.load_balance(false);
  sim.run_cycle(3);

  // Level 1: raw step times.
  std::printf("level 1 - step times (%s, %d atoms, %d PEs):\n", mol.name.c_str(),
              mol.atom_count(), kPes);
  const auto& done = sim.step_completion();
  for (std::size_t s = 1; s < done.size(); ++s) {
    if (done[s] > done[s - 1]) {
      std::printf("  step %2zu: %.2f ms\n", s, (done[s] - done[s - 1]) * 1e3);
    }
  }

  // Level 2: summary profile.
  std::printf("\nlevel 2 - entry-method summary:\n%s", prof.render().c_str());

  // Level 3: full trace, rendered as a timeline of the last two steps.
  TimelineOptions view;
  view.t0 = done[done.size() - 3];
  view.t1 = done.back();
  view.first_pe = 0;
  view.num_pes = kPes;
  view.width = 90;
  std::printf("\nlevel 3 - timeline of the last two steps:\n%s",
              render_timeline(log, sim.sim().entries(), view).c_str());
  return 0;
}
