// Example: the paper's full-electrostatics picture — "these forces may be
// calculated via an efficient combination of global grid-based and cutoff
// atom-based components ... particularly when combined with multiple
// timestepping methods". This walkthrough runs the grid-based component
// (smooth PME, with the classic Ewald sum as the exactness reference) on a
// periodic salt-water-like box, then shows the multiple-timestepping
// amortization on the cutoff engine.

#include <cstdio>
#include <vector>

#include "ewald/ewald.hpp"
#include "ewald/pme.hpp"
#include "gen/water_box.hpp"
#include "seq/mts.hpp"
#include "util/random.hpp"
#include "util/units.hpp"

int main() {
  using namespace scalemd;

  // --- Part 1: PME vs classic Ewald on a periodic ionic box -------------
  Rng rng(42);
  const Vec3 box{24, 24, 24};
  std::vector<Vec3> pos;
  std::vector<double> q;
  for (int i = 0; i < 200; ++i) {
    pos.push_back(rng.point_in_box(box));
    q.push_back(i % 2 == 0 ? 1.0 : -1.0);
  }

  EwaldOptions eo;
  eo.alpha = 0.4;
  eo.r_cut = 9.0;
  eo.k_max = 12;
  const EwaldSum ewald(box, eo);
  std::vector<Vec3> f_ref(pos.size());
  const ElecResult ref = ewald.energy_forces(pos, q, f_ref);
  std::printf("classic Ewald:  real %10.3f  reciprocal %10.3f  self %10.3f"
              "  total %10.3f kcal/mol\n", ref.real, ref.reciprocal, ref.self,
              ref.total());

  PmeOptions po;
  po.alpha = 0.4;
  po.grid_x = po.grid_y = po.grid_z = 32;
  po.order = 4;
  const Pme pme(box, po);
  std::vector<Vec3> f_pme(pos.size());
  const double real = ewald.real_space(pos, q, f_pme);
  const double recip = pme.reciprocal(pos, q, f_pme);
  const double self = ewald.self_energy(q);
  std::printf("PME pipeline:   real %10.3f  reciprocal %10.3f  self %10.3f"
              "  total %10.3f kcal/mol\n", real, recip, self, real + recip + self);

  double max_df = 0.0, max_f = 0.0;
  for (std::size_t i = 0; i < pos.size(); ++i) {
    max_df = std::max(max_df, norm(f_pme[i] - f_ref[i]));
    max_f = std::max(max_f, norm(f_ref[i]));
  }
  std::printf("force agreement: max |dF| = %.2e (max |F| = %.2f) on a %d^3 "
              "grid, order %d\n\n", max_df, max_f, po.grid_x, po.order);

  // --- Part 2: multiple timestepping on the cutoff engine ---------------
  Molecule mol = make_water_box({16, 16, 16}, 5);
  mol.assign_velocities(250.0, 7);
  for (int ratio : {1, 2, 4}) {
    MtsOptions mo;
    mo.nonbonded.cutoff = 7.0;
    mo.nonbonded.switch_dist = 6.0;
    mo.dt_fast_fs = 0.5;
    mo.slow_every = ratio;
    MtsEngine mts(mol, mo);
    const double e0 = mts.total_energy();
    const int outer = 40 / ratio;  // same simulated time for every ratio
    mts.run(outer);
    std::printf("MTS ratio %d: %2d non-bonded evaluations for 20 fs, "
                "energy drift %+.3f kcal/mol\n", ratio,
                mts.slow_evaluations() - 1, mts.total_energy() - e0);
  }
  return 0;
}
