// Quickstart: build a small solvated system, run a short NVE simulation with
// the sequential engine, and print an energy log — the "hello world" of the
// scalemd library. See examples/apoa1_scaling.cpp for the parallel path.
//
// Usage: quickstart [--kernel scalar|tiled|tiled+threads] [--threads N]
//                   [--check]
//
// --check attaches the physics-invariant checker (src/check/) to the run and
// reports any violated invariant (energy drift, net force/momentum, ...).

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "check/invariants.hpp"
#include "ff/nonbonded_tiled.hpp"
#include "gen/presets.hpp"
#include "seq/engine.hpp"
#include "seq/minimize.hpp"

int main(int argc, char** argv) {
  using namespace scalemd;

  NonbondedKernel kernel = NonbondedKernel::kScalar;
  int threads = 0;  // 0 = let the engine pick
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--kernel") == 0 && i + 1 < argc) {
      if (!kernel_from_name(argv[++i], kernel)) {
        std::fprintf(stderr, "unknown kernel '%s' (want scalar|tiled|tiled+threads)\n",
                     argv[i]);
        return 1;
      }
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--kernel scalar|tiled|tiled+threads] [--threads N]"
                   " [--check]\n",
                   argv[0]);
      return 1;
    }
  }

  // A ~3000-atom solvated chain (deterministic for a given seed).
  Molecule mol = small_solvated_chain(3000, /*seed=*/7);
  mol.assign_velocities(300.0, /*seed=*/42);
  std::printf("system: %s, %d atoms, box %.1f x %.1f x %.1f A\n", mol.name.c_str(),
              mol.atom_count(), mol.box.x, mol.box.y, mol.box.z);
  std::printf("topology: %zu bonds, %zu angles, %zu dihedrals, %zu impropers\n",
              mol.bonds().size(), mol.angles().size(), mol.dihedrals().size(),
              mol.impropers().size());

  EngineOptions opts;
  opts.nonbonded.cutoff = 10.0;
  opts.nonbonded.switch_dist = 8.5;
  opts.nonbonded.kernel = kernel;
  opts.nonbonded.threads = threads;
  opts.dt_fs = 0.5;
  std::printf("non-bonded kernel: %s\n", kernel_name(kernel));
  SequentialEngine engine(mol, opts);

  // Relax the synthetic starting structure before dynamics.
  const MinimizeResult min = minimize(engine, 300);
  std::printf("minimized %d steps: %.3g -> %.3g kcal/mol (max |F| %.1f)\n",
              min.steps, min.initial_energy, min.final_energy, min.max_force);

  InvariantChecker checker;
  if (check) checker.attach(engine);

  std::printf("\n%6s %14s %14s %14s\n", "step", "potential", "kinetic", "total");
  for (int block = 0; block <= 10; ++block) {
    std::printf("%6d %14.3f %14.3f %14.3f\n", block * 5, engine.potential().total(),
                engine.kinetic(), engine.total_energy());
    if (block < 10) engine.run(5);
  }

  std::printf("\nlast-step work: %llu pairs tested, %llu pairs inside cutoff\n",
              static_cast<unsigned long long>(engine.work().pairs_tested),
              static_cast<unsigned long long>(engine.work().pairs_computed));
  if (check) {
    std::printf("invariants: %llu checks",
                static_cast<unsigned long long>(checker.checks_run()));
    if (checker.ok()) {
      std::printf(", all passed\n");
    } else {
      std::printf(", %zu VIOLATIONS\n%s", checker.log().size(),
                  checker.log().render().c_str());
      return 1;
    }
  }
  return 0;
}
