// Quickstart: build a small solvated system, run a short NVE simulation with
// the sequential engine, and print an energy log — the "hello world" of the
// scalemd library. See examples/apoa1_scaling.cpp for the parallel path.
//
// Usage: quickstart [--kernel scalar|tiled|tiled+threads] [--threads N]
//                   [--check]
//        quickstart --backend=sim|threads|process [--pes N] [--threads N]
//                   [--workers N] [--full-elec] [--check]
//        quickstart --backend=process --kill-worker W [--kill-after N]
//                   [--checkpoint-every N] [--checkpoint-path FILE] [--check]
//        quickstart --pes N [--fault-seed S | --fault-plan FILE]
//                   [--checkpoint-every N] [--check]
//
// --check attaches the physics-invariant checker (src/check/) to the run and
// reports any violated invariant (energy drift, net force/momentum, ...).
//
// The --backend form runs the waterbox preset through the parallel runtime
// on the chosen execution backend: `sim` replays the discrete-event machine
// model (virtual time), `threads` maps the PEs onto real worker threads
// (wall-clock time, --threads N workers, 0 = all hardware threads), and
// `process` forks --workers N real OS processes that host the PEs and talk
// over checksummed wire frames (src/rts/wire.*). All backends produce
// bitwise-identical trajectories — that equivalence is pinned by
// tests/test_backend_diff.cpp and tests/test_process_backend.cpp.
//
// --full-elec switches the backend demo to a charged salty-water preset and
// arms full electrostatics: erfc-screened direct space plus the parallel
// PME reciprocal solve (slab objects exchanging transpose messages in the
// runtime; see tests/test_pme_parallel.cpp for the bitwise contract).
//
// With --backend=process, --kill-worker W SIGKILLs worker W mid-run (after
// --kill-after N routed frames) to demonstrate real crash recovery: the
// heartbeat detector declares the worker dead, its PEs are evacuated, and
// the run restarts from the last on-disk checkpoint (--checkpoint-every N
// cycles, written to --checkpoint-path). The recovered trajectory is
// bitwise identical to a fault-free run.
//
// The second form runs the waterbox preset on the simulated parallel machine
// with the fault-tolerant runtime armed: --fault-seed S injects the generic
// seeded chaos mix (drops, duplicates, latency spikes), --fault-plan FILE
// loads an explicit schedule (see EXPERIMENTS.md for the schema, including
// scheduled PE failures), and --checkpoint-every N takes a coordinated
// checkpoint every N cycles (default 1) so a killed PE triggers
// restore + evacuation + replay instead of a hung run. The run prints the
// recovery-metrics table and exits non-zero on any invariant violation or
// unrecovered cycle.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "check/invariants.hpp"
#include "core/parallel_sim.hpp"
#include "des/fault.hpp"
#include "ff/nonbonded_tiled.hpp"
#include "gen/presets.hpp"
#include "gen/test_systems.hpp"
#include "gen/water_box.hpp"
#include "seq/engine.hpp"
#include "seq/minimize.hpp"
#include "trace/audit.hpp"

namespace {

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [--kernel scalar|tiled|tiled+threads] [--threads N]"
               " [--check]\n"
               "       %s --backend=sim|threads|process [--pes N] [--threads N]"
               " [--workers N] [--full-elec] [--check]\n"
               "       %s --backend=process --kill-worker W [--kill-after N]"
               " [--checkpoint-every N] [--checkpoint-path FILE] [--check]\n"
               "       %s --pes N [--fault-seed S | --fault-plan FILE]"
               " [--checkpoint-every N] [--check]\n",
               prog, prog, prog, prog);
  return 1;
}

/// Process-backend knobs for the backend demo; inert on sim/threads.
struct ProcessDemo {
  int workers = 2;
  int kill_worker = -1;           ///< >= 0 arms the one-shot SIGKILL
  std::uint64_t kill_after = 10;  ///< routed frames before the kill fires
  int checkpoint_every = 0;       ///< cycles between disk checkpoints
  std::string checkpoint_path;
};

/// The backend demo: waterbox on the parallel runtime — DES, real threads,
/// or forked worker processes (optionally with a chaos kill + recovery).
int run_parallel(scalemd::BackendKind backend, int pes, int threads,
                 const ProcessDemo& proc, bool full_elec, bool check) {
  using namespace scalemd;

  Molecule mol;
  if (full_elec) {
    // Net-neutral salty water: bare +-1 ions make the reciprocal sum earn
    // its keep. Same preset as the "waterbox_ions" golden.
    TestSystemOptions sys;
    sys.kind = TestSystemKind::kWaterBox;
    sys.box = {16.0, 16.0, 16.0};
    sys.ion_pairs = 4;
    sys.temperature = 300.0;
    sys.seed = 11;
    mol = make_test_system(sys);
    mol.suggested_patch_size = 8.0;
  } else {
    mol = make_water_box({16.0, 16.0, 16.0}, /*seed=*/11);
    mol.assign_velocities(300.0, /*seed=*/101);
    mol.suggested_patch_size = 8.0;
  }
  NonbondedOptions nb;
  nb.cutoff = 6.5;
  nb.switch_dist = 5.5;
  if (full_elec) {
    nb.full_elec.enabled = true;
    nb.full_elec.alpha = 0.46;  // erfc(alpha * cutoff) ~ 1e-2 of the screen
    nb.full_elec.grid_x = nb.full_elec.grid_y = nb.full_elec.grid_z = 16;
    nb.full_elec.order = 4;
  }

  const Workload workload(mol, MachineModel::asci_red(), nb);
  ParallelOptions opts;
  opts.num_pes = pes;
  opts.numeric = true;
  opts.dt_fs = 1.0;
  opts.backend = backend;
  opts.threads = threads;
  opts.lb.kind = LbStrategyKind::kGreedyRefine;
  if (backend == BackendKind::kProcess) {
    opts.process.workers = proc.workers;
    opts.process.kill_worker = proc.kill_worker;
    opts.process.kill_after_frames = proc.kill_after;
    opts.checkpoint_every = proc.checkpoint_every;
    opts.checkpoint_path = proc.checkpoint_path;
  }
  ParallelSim sim(workload, opts);
  std::printf("system: %s, %d atoms on %d PEs, backend %s\n",
              full_elec ? "waterbox+ions" : "waterbox", mol.atom_count(), pes,
              backend_name(backend));
  if (full_elec) {
    std::printf("full electrostatics: PME %dx%dx%d order %d, %d slab "
                "object(s) in the runtime\n",
                nb.full_elec.grid_x, nb.full_elec.grid_y, nb.full_elec.grid_z,
                nb.full_elec.order, opts.pme.slabs);
  }
  if (backend == BackendKind::kProcess) {
    std::printf("workers: %d forked processes", proc.workers);
    if (proc.kill_worker >= 0) {
      std::printf(", SIGKILL worker %d after %llu frames, checkpoint every "
                  "%d cycle(s) -> %s",
                  proc.kill_worker,
                  static_cast<unsigned long long>(proc.kill_after),
                  proc.checkpoint_every, proc.checkpoint_path.c_str());
    }
    std::printf("\n");
  }

  InvariantOptions iopts;
  iopts.check_energy = false;  // a handful of steps; drift bound is for runs
  if (full_elec) {
    // PME mesh interpolation breaks exact force antisymmetry at the
    // interpolation-error scale; rounding-level bounds would fire on
    // correct physics (same rationale as the fuzz harness).
    iopts.net_force_rel = 1e-3;
    iopts.momentum_rel = 1e-2;
  }
  InvariantChecker checker(iopts);
  if (check) checker.attach(sim);

  constexpr int kCycles = 3;
  constexpr int kSteps = 2;
  for (int c = 0; c < kCycles; ++c) {
    if (c > 0) sim.load_balance();  // greedy once, then refine
    sim.run_cycle(kSteps);
  }

  std::printf("%s time: %.6f s for %d steps (%.3f ms/step tail)\n",
              sim.backend().wall_clock() ? "wall-clock" : "virtual",
              sim.backend().time(), sim.total_steps(),
              sim.seconds_per_step_tail(kSteps) * 1e3);

  bool ok = true;
  if (backend == BackendKind::kProcess) {
    std::printf("recovery: %d checkpoint(s) taken, %d restart(s)\n",
                sim.checkpoints_taken(), sim.restarts());
    if (!sim.last_cycle_complete()) {
      std::printf("UNRECOVERED: the last cycle did not complete\n");
      ok = false;
    } else if (proc.kill_worker >= 0 && sim.restarts() == 0) {
      std::printf("NOTE: the kill never fired (run too short for %llu "
                  "frames?)\n",
                  static_cast<unsigned long long>(proc.kill_after));
      ok = false;
    }
  }

  if (check) {
    std::printf("invariants: %llu checks",
                static_cast<unsigned long long>(checker.checks_run()));
    if (checker.ok()) {
      std::printf(", all passed\n");
    } else {
      std::printf(", %zu VIOLATIONS\n%s", checker.log().size(),
                  checker.log().render().c_str());
      ok = false;
    }
  }
  return ok ? 0 : 1;
}

/// The chaos demo: waterbox on the simulated machine, resilient runtime on.
int run_chaos(int pes, const scalemd::FaultPlan& plan, int checkpoint_every,
              bool check) {
  using namespace scalemd;

  Molecule mol = make_water_box({16.0, 16.0, 16.0}, /*seed=*/11);
  mol.assign_velocities(300.0, /*seed=*/101);
  mol.suggested_patch_size = 8.0;
  NonbondedOptions nb;
  nb.cutoff = 6.5;
  nb.switch_dist = 5.5;
  std::printf("system: waterbox, %d atoms on %d simulated PEs\n",
              mol.atom_count(), pes);
  std::printf("fault plan: seed %llu, drop %.3f, dup %.3f, delay %.3f, "
              "%zu slowdowns, %zu failures\n",
              static_cast<unsigned long long>(plan.seed), plan.drop_prob,
              plan.dup_prob, plan.delay_prob, plan.slowdowns.size(),
              plan.failures.size());

  const Workload workload(mol, MachineModel::asci_red(), nb);
  ParallelOptions opts;
  opts.num_pes = pes;
  opts.numeric = true;
  opts.dt_fs = 1.0;
  opts.fault = plan;
  opts.reliable = true;
  opts.checkpoint_every = checkpoint_every;
  ParallelSim sim(workload, opts);

  InvariantOptions iopts;
  iopts.check_energy = false;  // a handful of steps; drift bound is for runs
  InvariantChecker checker(iopts);
  if (check) checker.attach(sim);

  constexpr int kCycles = 3;
  constexpr int kSteps = 2;
  for (int c = 0; c < kCycles; ++c) sim.run_cycle(kSteps);

  const ResilienceStats rs = resilience_stats(
      sim.sim().fault_stats(),
      sim.reliable() != nullptr ? &sim.reliable()->stats() : nullptr,
      sim.checkpoints_taken(), sim.restarts(), sim.restart_latency());
  std::printf("\n%s", render_resilience(rs).c_str());
  std::printf("virtual time: %.6f s for %d steps\n", sim.sim().time(),
              sim.total_steps());

  bool ok = true;
  if (!sim.last_cycle_complete()) {
    std::printf("UNRECOVERED: the last cycle did not complete (work lost to "
                "faults; no checkpoint or restart cap hit)\n");
    ok = false;
  }
  if (check) {
    std::printf("invariants: %llu checks",
                static_cast<unsigned long long>(checker.checks_run()));
    if (checker.ok()) {
      std::printf(", all passed\n");
    } else {
      std::printf(", %zu VIOLATIONS\n%s", checker.log().size(),
                  checker.log().render().c_str());
      ok = false;
    }
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scalemd;

  NonbondedKernel kernel = NonbondedKernel::kScalar;
  int threads = 0;  // 0 = let the engine pick
  bool check = false;
  int pes = 0;  // > 0 selects the parallel chaos demo
  int checkpoint_every = 1;
  bool have_plan = false;
  bool have_backend = false;
  BackendKind backend = BackendKind::kSimulated;
  FaultPlan plan;
  ProcessDemo proc;
  bool have_ckpt_path = false;
  bool full_elec = false;
  for (int i = 1; i < argc; ++i) {
    // --backend takes either "--backend=threads" or "--backend threads".
    const char* backend_arg = nullptr;
    if (std::strncmp(argv[i], "--backend=", 10) == 0) {
      backend_arg = argv[i] + 10;
    } else if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc) {
      backend_arg = argv[++i];
    }
    if (backend_arg != nullptr) {
      if (!backend_from_name(backend_arg, backend)) {
        std::fprintf(stderr, "unknown backend '%s' (want sim|threads)\n",
                     backend_arg);
        return 1;
      }
      have_backend = true;
      continue;
    }
    if (std::strcmp(argv[i], "--kernel") == 0 && i + 1 < argc) {
      if (!kernel_from_name(argv[++i], kernel)) {
        std::fprintf(stderr, "unknown kernel '%s' (want scalar|tiled|tiled+threads)\n",
                     argv[i]);
        return 1;
      }
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--full-elec") == 0) {
      full_elec = true;
    } else if (std::strcmp(argv[i], "--pes") == 0 && i + 1 < argc) {
      pes = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--fault-seed") == 0 && i + 1 < argc) {
      plan = FaultPlan::chaos(
          static_cast<std::uint64_t>(std::strtoull(argv[++i], nullptr, 10)));
      have_plan = true;
    } else if (std::strcmp(argv[i], "--fault-plan") == 0 && i + 1 < argc) {
      FaultPlanParseError err;
      if (!parse_fault_plan(argv[++i], plan, err)) {
        std::fprintf(stderr, "error: %s\n", err.render().c_str());
        return 1;
      }
      have_plan = true;
    } else if (std::strcmp(argv[i], "--checkpoint-every") == 0 && i + 1 < argc) {
      checkpoint_every = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      proc.workers = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--kill-worker") == 0 && i + 1 < argc) {
      proc.kill_worker = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--kill-after") == 0 && i + 1 < argc) {
      proc.kill_after =
          static_cast<std::uint64_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--checkpoint-path") == 0 && i + 1 < argc) {
      proc.checkpoint_path = argv[++i];
      have_ckpt_path = true;
    } else {
      return usage(argv[0]);
    }
  }

  if (proc.kill_worker >= 0 &&
      (!have_backend || backend != BackendKind::kProcess)) {
    std::fprintf(stderr,
                 "--kill-worker needs --backend=process (it SIGKILLs a real "
                 "forked worker)\n");
    return 1;
  }
  if (have_backend) {
    if (have_plan) {
      std::fprintf(stderr,
                   "--backend and fault injection are mutually exclusive: the "
                   "resilient runtime runs on the simulated machine\n");
      return 1;
    }
    if (backend == BackendKind::kProcess &&
        (proc.kill_worker >= 0 || have_ckpt_path)) {
      // Crash recovery needs a checkpoint to restart from; default to one
      // per cycle at a predictable path.
      proc.checkpoint_every = checkpoint_every > 0 ? checkpoint_every : 1;
      if (!have_ckpt_path) proc.checkpoint_path = "quickstart.ckpt";
    }
    return run_parallel(backend, pes > 0 ? pes : 8, threads, proc, full_elec,
                        check);
  }
  if (full_elec) {
    std::fprintf(stderr,
                 "--full-elec needs --backend=... (it demos the parallel PME "
                 "pipeline)\n");
    return 1;
  }
  if (pes > 0 || have_plan) {
    if (pes <= 0) pes = 8;
    return run_chaos(pes, plan, checkpoint_every, check);
  }

  // A ~3000-atom solvated chain (deterministic for a given seed).
  Molecule mol = small_solvated_chain(3000, /*seed=*/7);
  mol.assign_velocities(300.0, /*seed=*/42);
  std::printf("system: %s, %d atoms, box %.1f x %.1f x %.1f A\n", mol.name.c_str(),
              mol.atom_count(), mol.box.x, mol.box.y, mol.box.z);
  std::printf("topology: %zu bonds, %zu angles, %zu dihedrals, %zu impropers\n",
              mol.bonds().size(), mol.angles().size(), mol.dihedrals().size(),
              mol.impropers().size());

  EngineOptions opts;
  opts.nonbonded.cutoff = 10.0;
  opts.nonbonded.switch_dist = 8.5;
  opts.nonbonded.kernel = kernel;
  opts.nonbonded.threads = threads;
  opts.dt_fs = 0.5;
  std::printf("non-bonded kernel: %s\n", kernel_name(kernel));
  SequentialEngine engine(mol, opts);

  // Relax the synthetic starting structure before dynamics.
  const MinimizeResult min = minimize(engine, 300);
  std::printf("minimized %d steps: %.3g -> %.3g kcal/mol (max |F| %.1f)\n",
              min.steps, min.initial_energy, min.final_energy, min.max_force);

  InvariantChecker checker;
  if (check) checker.attach(engine);

  std::printf("\n%6s %14s %14s %14s\n", "step", "potential", "kinetic", "total");
  for (int block = 0; block <= 10; ++block) {
    std::printf("%6d %14.3f %14.3f %14.3f\n", block * 5, engine.potential().total(),
                engine.kinetic(), engine.total_energy());
    if (block < 10) engine.run(5);
  }

  std::printf("\nlast-step work: %llu pairs tested, %llu pairs inside cutoff\n",
              static_cast<unsigned long long>(engine.work().pairs_tested),
              static_cast<unsigned long long>(engine.work().pairs_computed));
  if (check) {
    std::printf("invariants: %llu checks",
                static_cast<unsigned long long>(checker.checks_run()));
    if (checker.ok()) {
      std::printf(", all passed\n");
    } else {
      std::printf(", %zu VIOLATIONS\n%s", checker.log().size(),
                  checker.log().render().c_str());
      return 1;
    }
  }
  return 0;
}
