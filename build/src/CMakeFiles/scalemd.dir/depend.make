# Empty dependencies file for scalemd.
# This may be replaced when dependencies are built.
