
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baselines.cpp" "src/CMakeFiles/scalemd.dir/core/baselines.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/core/baselines.cpp.o.d"
  "/root/repo/src/core/compute_plan.cpp" "src/CMakeFiles/scalemd.dir/core/compute_plan.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/core/compute_plan.cpp.o.d"
  "/root/repo/src/core/decomposition.cpp" "src/CMakeFiles/scalemd.dir/core/decomposition.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/core/decomposition.cpp.o.d"
  "/root/repo/src/core/driver.cpp" "src/CMakeFiles/scalemd.dir/core/driver.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/core/driver.cpp.o.d"
  "/root/repo/src/core/parallel_sim.cpp" "src/CMakeFiles/scalemd.dir/core/parallel_sim.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/core/parallel_sim.cpp.o.d"
  "/root/repo/src/core/work_cache.cpp" "src/CMakeFiles/scalemd.dir/core/work_cache.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/core/work_cache.cpp.o.d"
  "/root/repo/src/des/machine.cpp" "src/CMakeFiles/scalemd.dir/des/machine.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/des/machine.cpp.o.d"
  "/root/repo/src/des/simulator.cpp" "src/CMakeFiles/scalemd.dir/des/simulator.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/des/simulator.cpp.o.d"
  "/root/repo/src/ewald/ewald.cpp" "src/CMakeFiles/scalemd.dir/ewald/ewald.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/ewald/ewald.cpp.o.d"
  "/root/repo/src/ewald/fft.cpp" "src/CMakeFiles/scalemd.dir/ewald/fft.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/ewald/fft.cpp.o.d"
  "/root/repo/src/ewald/pme.cpp" "src/CMakeFiles/scalemd.dir/ewald/pme.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/ewald/pme.cpp.o.d"
  "/root/repo/src/ff/bonded.cpp" "src/CMakeFiles/scalemd.dir/ff/bonded.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/ff/bonded.cpp.o.d"
  "/root/repo/src/ff/nonbonded.cpp" "src/CMakeFiles/scalemd.dir/ff/nonbonded.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/ff/nonbonded.cpp.o.d"
  "/root/repo/src/ff/switching.cpp" "src/CMakeFiles/scalemd.dir/ff/switching.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/ff/switching.cpp.o.d"
  "/root/repo/src/gen/chain.cpp" "src/CMakeFiles/scalemd.dir/gen/chain.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/gen/chain.cpp.o.d"
  "/root/repo/src/gen/membrane.cpp" "src/CMakeFiles/scalemd.dir/gen/membrane.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/gen/membrane.cpp.o.d"
  "/root/repo/src/gen/placement.cpp" "src/CMakeFiles/scalemd.dir/gen/placement.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/gen/placement.cpp.o.d"
  "/root/repo/src/gen/presets.cpp" "src/CMakeFiles/scalemd.dir/gen/presets.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/gen/presets.cpp.o.d"
  "/root/repo/src/gen/stdff.cpp" "src/CMakeFiles/scalemd.dir/gen/stdff.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/gen/stdff.cpp.o.d"
  "/root/repo/src/gen/water_box.cpp" "src/CMakeFiles/scalemd.dir/gen/water_box.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/gen/water_box.cpp.o.d"
  "/root/repo/src/lb/database.cpp" "src/CMakeFiles/scalemd.dir/lb/database.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/lb/database.cpp.o.d"
  "/root/repo/src/lb/diffusion.cpp" "src/CMakeFiles/scalemd.dir/lb/diffusion.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/lb/diffusion.cpp.o.d"
  "/root/repo/src/lb/greedy.cpp" "src/CMakeFiles/scalemd.dir/lb/greedy.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/lb/greedy.cpp.o.d"
  "/root/repo/src/lb/naive.cpp" "src/CMakeFiles/scalemd.dir/lb/naive.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/lb/naive.cpp.o.d"
  "/root/repo/src/lb/problem.cpp" "src/CMakeFiles/scalemd.dir/lb/problem.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/lb/problem.cpp.o.d"
  "/root/repo/src/lb/rcb.cpp" "src/CMakeFiles/scalemd.dir/lb/rcb.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/lb/rcb.cpp.o.d"
  "/root/repo/src/lb/refine.cpp" "src/CMakeFiles/scalemd.dir/lb/refine.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/lb/refine.cpp.o.d"
  "/root/repo/src/rts/multicast.cpp" "src/CMakeFiles/scalemd.dir/rts/multicast.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/rts/multicast.cpp.o.d"
  "/root/repo/src/rts/reduction.cpp" "src/CMakeFiles/scalemd.dir/rts/reduction.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/rts/reduction.cpp.o.d"
  "/root/repo/src/seq/cell_list.cpp" "src/CMakeFiles/scalemd.dir/seq/cell_list.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/seq/cell_list.cpp.o.d"
  "/root/repo/src/seq/constraints.cpp" "src/CMakeFiles/scalemd.dir/seq/constraints.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/seq/constraints.cpp.o.d"
  "/root/repo/src/seq/engine.cpp" "src/CMakeFiles/scalemd.dir/seq/engine.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/seq/engine.cpp.o.d"
  "/root/repo/src/seq/integrator.cpp" "src/CMakeFiles/scalemd.dir/seq/integrator.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/seq/integrator.cpp.o.d"
  "/root/repo/src/seq/minimize.cpp" "src/CMakeFiles/scalemd.dir/seq/minimize.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/seq/minimize.cpp.o.d"
  "/root/repo/src/seq/mts.cpp" "src/CMakeFiles/scalemd.dir/seq/mts.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/seq/mts.cpp.o.d"
  "/root/repo/src/seq/pairlist.cpp" "src/CMakeFiles/scalemd.dir/seq/pairlist.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/seq/pairlist.cpp.o.d"
  "/root/repo/src/seq/thermostat.cpp" "src/CMakeFiles/scalemd.dir/seq/thermostat.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/seq/thermostat.cpp.o.d"
  "/root/repo/src/topo/exclusions.cpp" "src/CMakeFiles/scalemd.dir/topo/exclusions.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/topo/exclusions.cpp.o.d"
  "/root/repo/src/topo/io.cpp" "src/CMakeFiles/scalemd.dir/topo/io.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/topo/io.cpp.o.d"
  "/root/repo/src/topo/molecule.cpp" "src/CMakeFiles/scalemd.dir/topo/molecule.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/topo/molecule.cpp.o.d"
  "/root/repo/src/topo/parameters.cpp" "src/CMakeFiles/scalemd.dir/topo/parameters.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/topo/parameters.cpp.o.d"
  "/root/repo/src/trace/audit.cpp" "src/CMakeFiles/scalemd.dir/trace/audit.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/trace/audit.cpp.o.d"
  "/root/repo/src/trace/event_log.cpp" "src/CMakeFiles/scalemd.dir/trace/event_log.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/trace/event_log.cpp.o.d"
  "/root/repo/src/trace/grainsize.cpp" "src/CMakeFiles/scalemd.dir/trace/grainsize.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/trace/grainsize.cpp.o.d"
  "/root/repo/src/trace/summary.cpp" "src/CMakeFiles/scalemd.dir/trace/summary.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/trace/summary.cpp.o.d"
  "/root/repo/src/trace/timeline.cpp" "src/CMakeFiles/scalemd.dir/trace/timeline.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/trace/timeline.cpp.o.d"
  "/root/repo/src/util/histogram.cpp" "src/CMakeFiles/scalemd.dir/util/histogram.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/util/histogram.cpp.o.d"
  "/root/repo/src/util/random.cpp" "src/CMakeFiles/scalemd.dir/util/random.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/util/random.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/scalemd.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/scalemd.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/scalemd.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
