file(REMOVE_RECURSE
  "libscalemd.a"
)
