# Empty dependencies file for full_electrostatics.
# This may be replaced when dependencies are built.
