file(REMOVE_RECURSE
  "CMakeFiles/full_electrostatics.dir/full_electrostatics.cpp.o"
  "CMakeFiles/full_electrostatics.dir/full_electrostatics.cpp.o.d"
  "full_electrostatics"
  "full_electrostatics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_electrostatics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
