# Empty compiler generated dependencies file for apoa1_scaling.
# This may be replaced when dependencies are built.
