file(REMOVE_RECURSE
  "CMakeFiles/apoa1_scaling.dir/apoa1_scaling.cpp.o"
  "CMakeFiles/apoa1_scaling.dir/apoa1_scaling.cpp.o.d"
  "apoa1_scaling"
  "apoa1_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apoa1_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
