file(REMOVE_RECURSE
  "CMakeFiles/load_balance_tour.dir/load_balance_tour.cpp.o"
  "CMakeFiles/load_balance_tour.dir/load_balance_tour.cpp.o.d"
  "load_balance_tour"
  "load_balance_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/load_balance_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
