# Empty compiler generated dependencies file for load_balance_tour.
# This may be replaced when dependencies are built.
