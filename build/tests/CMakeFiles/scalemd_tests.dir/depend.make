# Empty dependencies file for scalemd_tests.
# This may be replaced when dependencies are built.
