
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_calibration.cpp" "tests/CMakeFiles/scalemd_tests.dir/test_calibration.cpp.o" "gcc" "tests/CMakeFiles/scalemd_tests.dir/test_calibration.cpp.o.d"
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/scalemd_tests.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/scalemd_tests.dir/test_core.cpp.o.d"
  "/root/repo/tests/test_des.cpp" "tests/CMakeFiles/scalemd_tests.dir/test_des.cpp.o" "gcc" "tests/CMakeFiles/scalemd_tests.dir/test_des.cpp.o.d"
  "/root/repo/tests/test_des_properties.cpp" "tests/CMakeFiles/scalemd_tests.dir/test_des_properties.cpp.o" "gcc" "tests/CMakeFiles/scalemd_tests.dir/test_des_properties.cpp.o.d"
  "/root/repo/tests/test_driver.cpp" "tests/CMakeFiles/scalemd_tests.dir/test_driver.cpp.o" "gcc" "tests/CMakeFiles/scalemd_tests.dir/test_driver.cpp.o.d"
  "/root/repo/tests/test_ewald.cpp" "tests/CMakeFiles/scalemd_tests.dir/test_ewald.cpp.o" "gcc" "tests/CMakeFiles/scalemd_tests.dir/test_ewald.cpp.o.d"
  "/root/repo/tests/test_features.cpp" "tests/CMakeFiles/scalemd_tests.dir/test_features.cpp.o" "gcc" "tests/CMakeFiles/scalemd_tests.dir/test_features.cpp.o.d"
  "/root/repo/tests/test_features2.cpp" "tests/CMakeFiles/scalemd_tests.dir/test_features2.cpp.o" "gcc" "tests/CMakeFiles/scalemd_tests.dir/test_features2.cpp.o.d"
  "/root/repo/tests/test_ff.cpp" "tests/CMakeFiles/scalemd_tests.dir/test_ff.cpp.o" "gcc" "tests/CMakeFiles/scalemd_tests.dir/test_ff.cpp.o.d"
  "/root/repo/tests/test_gen.cpp" "tests/CMakeFiles/scalemd_tests.dir/test_gen.cpp.o" "gcc" "tests/CMakeFiles/scalemd_tests.dir/test_gen.cpp.o.d"
  "/root/repo/tests/test_lb.cpp" "tests/CMakeFiles/scalemd_tests.dir/test_lb.cpp.o" "gcc" "tests/CMakeFiles/scalemd_tests.dir/test_lb.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/scalemd_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/scalemd_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_rts.cpp" "tests/CMakeFiles/scalemd_tests.dir/test_rts.cpp.o" "gcc" "tests/CMakeFiles/scalemd_tests.dir/test_rts.cpp.o.d"
  "/root/repo/tests/test_seq.cpp" "tests/CMakeFiles/scalemd_tests.dir/test_seq.cpp.o" "gcc" "tests/CMakeFiles/scalemd_tests.dir/test_seq.cpp.o.d"
  "/root/repo/tests/test_topo.cpp" "tests/CMakeFiles/scalemd_tests.dir/test_topo.cpp.o" "gcc" "tests/CMakeFiles/scalemd_tests.dir/test_topo.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/scalemd_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/scalemd_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/scalemd_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/scalemd_tests.dir/test_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/scalemd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
