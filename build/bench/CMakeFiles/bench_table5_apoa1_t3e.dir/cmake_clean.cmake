file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_apoa1_t3e.dir/bench_table5_apoa1_t3e.cpp.o"
  "CMakeFiles/bench_table5_apoa1_t3e.dir/bench_table5_apoa1_t3e.cpp.o.d"
  "bench_table5_apoa1_t3e"
  "bench_table5_apoa1_t3e.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_apoa1_t3e.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
