# Empty dependencies file for bench_table5_apoa1_t3e.
# This may be replaced when dependencies are built.
