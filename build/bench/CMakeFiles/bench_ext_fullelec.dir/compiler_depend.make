# Empty compiler generated dependencies file for bench_ext_fullelec.
# This may be replaced when dependencies are built.
