file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_fullelec.dir/bench_ext_fullelec.cpp.o"
  "CMakeFiles/bench_ext_fullelec.dir/bench_ext_fullelec.cpp.o.d"
  "bench_ext_fullelec"
  "bench_ext_fullelec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_fullelec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
