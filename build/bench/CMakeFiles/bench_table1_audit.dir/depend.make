# Empty dependencies file for bench_table1_audit.
# This may be replaced when dependencies are built.
