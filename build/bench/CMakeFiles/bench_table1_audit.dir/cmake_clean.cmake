file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_audit.dir/bench_table1_audit.cpp.o"
  "CMakeFiles/bench_table1_audit.dir/bench_table1_audit.cpp.o.d"
  "bench_table1_audit"
  "bench_table1_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
