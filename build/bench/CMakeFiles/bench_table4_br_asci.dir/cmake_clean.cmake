file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_br_asci.dir/bench_table4_br_asci.cpp.o"
  "CMakeFiles/bench_table4_br_asci.dir/bench_table4_br_asci.cpp.o.d"
  "bench_table4_br_asci"
  "bench_table4_br_asci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_br_asci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
