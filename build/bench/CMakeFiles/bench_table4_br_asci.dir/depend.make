# Empty dependencies file for bench_table4_br_asci.
# This may be replaced when dependencies are built.
