# Empty compiler generated dependencies file for bench_fig34_timeline.
# This may be replaced when dependencies are built.
