file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_apoa1_asci.dir/bench_table2_apoa1_asci.cpp.o"
  "CMakeFiles/bench_table2_apoa1_asci.dir/bench_table2_apoa1_asci.cpp.o.d"
  "bench_table2_apoa1_asci"
  "bench_table2_apoa1_asci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_apoa1_asci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
