# Empty dependencies file for bench_table2_apoa1_asci.
# This may be replaced when dependencies are built.
