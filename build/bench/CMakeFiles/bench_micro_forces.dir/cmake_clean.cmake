file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_forces.dir/bench_micro_forces.cpp.o"
  "CMakeFiles/bench_micro_forces.dir/bench_micro_forces.cpp.o.d"
  "bench_micro_forces"
  "bench_micro_forces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_forces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
