# Empty dependencies file for bench_micro_forces.
# This may be replaced when dependencies are built.
