# Empty dependencies file for bench_table3_bc1_asci.
# This may be replaced when dependencies are built.
