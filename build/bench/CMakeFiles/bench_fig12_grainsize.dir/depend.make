# Empty dependencies file for bench_fig12_grainsize.
# This may be replaced when dependencies are built.
