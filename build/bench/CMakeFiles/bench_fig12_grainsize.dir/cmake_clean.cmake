file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_grainsize.dir/bench_fig12_grainsize.cpp.o"
  "CMakeFiles/bench_fig12_grainsize.dir/bench_fig12_grainsize.cpp.o.d"
  "bench_fig12_grainsize"
  "bench_fig12_grainsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_grainsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
