# Empty compiler generated dependencies file for bench_table6_apoa1_o2k.
# This may be replaced when dependencies are built.
