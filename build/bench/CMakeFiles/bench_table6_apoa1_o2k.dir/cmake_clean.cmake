file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_apoa1_o2k.dir/bench_table6_apoa1_o2k.cpp.o"
  "CMakeFiles/bench_table6_apoa1_o2k.dir/bench_table6_apoa1_o2k.cpp.o.d"
  "bench_table6_apoa1_o2k"
  "bench_table6_apoa1_o2k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_apoa1_o2k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
