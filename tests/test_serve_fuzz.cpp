// Mutation-fuzz tests for the batch-spec parser (serve/job). Contract under
// test: parse_batch either fills a BatchSpec whose every job passes
// validate_job, or fails with a fully located BatchParseError — file, a
// 1-based line, a non-empty reason, and (inside a job block) the job's index
// and name. It never crashes, never invokes UB (this suite runs under
// ASan/UBSan in CI) and never lets a non-finite value through validation.

#include <gtest/gtest.h>

#include <string>

#include "serve/job.hpp"
#include "util/random.hpp"

namespace scalemd {
namespace {

BatchSpec sample_batch() {
  BatchSpec batch;
  for (int j = 0; j < 3; ++j) {
    JobSpec job;
    job.name = "job" + std::to_string(j);
    job.priority = j;
    job.replicas = j == 1 ? 2 : 1;
    job.scenario.seed = 40 + static_cast<std::uint64_t>(j);
    job.scenario.box = 10.0 + j;
    job.scenario.num_pes = 2 + 2 * (j % 2);
    job.scenario.lb =
        j == 2 ? LbStrategyKind::kGreedyRefine : LbStrategyKind::kNone;
    job.scenario.kernel =
        j == 0 ? NonbondedKernel::kScalar : NonbondedKernel::kTiled;
    job.scenario.dt_fs = 0.5 + 0.25 * j;
    job.scenario.cycles = 2;
    job.scenario.steps = 2 + j;
    batch.jobs.push_back(job);
  }
  return batch;
}

/// The property every input must satisfy: parse into a batch of valid jobs,
/// or fail with a located, job-attributed error. Returns true when parsed.
bool parses_cleanly_or_fails_located(const std::string& text) {
  BatchSpec batch;
  BatchParseError err;
  if (parse_batch(text, "fuzz", batch, err)) {
    EXPECT_FALSE(batch.jobs.empty());
    for (const JobSpec& job : batch.jobs) {
      EXPECT_EQ(validate_job(job), "") << "parsed job '" << job.name
                                       << "' fails validation";
    }
    return true;
  }
  EXPECT_EQ(err.file, "fuzz");
  EXPECT_GE(err.line, 1);
  EXPECT_FALSE(err.reason.empty());
  const std::string location = "fuzz:" + std::to_string(err.line) + ": ";
  EXPECT_EQ(err.render().rfind(location, 0), 0u)
      << "'" << err.render() << "' does not start with its location";
  if (err.job_index >= 0) {
    EXPECT_NE(err.render().find("job " + std::to_string(err.job_index)),
              std::string::npos)
        << err.render();
  }
  return false;
}

TEST(ServeFuzzTest, RoundTripStillParses) {
  EXPECT_TRUE(parses_cleanly_or_fails_located(serialize_batch(sample_batch())));
}

TEST(ServeFuzzTest, RejectsEmptyInputWithLocation) {
  EXPECT_FALSE(parses_cleanly_or_fails_located(""));
}

TEST(ServeFuzzTest, EveryPrefixParsesOrFailsCleanly) {
  const std::string good = serialize_batch(sample_batch());
  int parsed = 0, rejected = 0;
  for (std::size_t len = 0; len < good.size(); ++len) {
    const std::string prefix = good.substr(0, len);
    if (parses_cleanly_or_fails_located(prefix)) {
      // Only prefixes ending exactly at a job boundary may parse: anything
      // cut inside a block must report an unterminated/invalid job instead.
      // (The final newline may itself be cut off — "...\nend" still closes.)
      const bool at_boundary =
          (prefix.size() >= 4 &&
           prefix.compare(prefix.size() - 4, 4, "end\n") == 0) ||
          (prefix.size() >= 4 &&
           prefix.compare(prefix.size() - 4, 4, "\nend") == 0);
      EXPECT_TRUE(at_boundary)
          << "prefix of length " << len << " parsed but does not end a job";
      ++parsed;
    } else {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, static_cast<int>(good.size()) / 2);
  EXPECT_GT(parsed, 0) << "job-boundary prefixes are valid batches";
}

TEST(ServeFuzzTest, RejectsNonFiniteValues) {
  for (const char* bad : {"nan", "-nan", "inf", "-inf"}) {
    for (const char* key : {"box", "dt", "seed"}) {
      const std::string text = std::string("job a\n") + key + " " + bad +
                               "\ncycles 1\nend\n";
      EXPECT_FALSE(parses_cleanly_or_fails_located(text))
          << key << " " << bad << " must not survive validation";
    }
  }
}

// ---------------------------------------------------------------------------
// Mutation fuzzing: random corruptions of a valid serialization, stacked so
// they compound. Same operator set the topology-reader fuzz uses: truncate,
// corrupt a byte, hostile token swap, delete a line, duplicate a line.
// ---------------------------------------------------------------------------

std::string mutate(const std::string& good, Rng& rng) {
  std::string text = good;
  const int op = static_cast<int>(rng.uniform(0.0, 5.0));
  const auto pick_pos = [&](std::size_t size) {
    return static_cast<std::size_t>(rng.uniform(0.0, static_cast<double>(size)));
  };
  switch (op) {
    case 0:  // truncate
      text.resize(pick_pos(text.size()));
      break;
    case 1: {  // corrupt one byte
      if (!text.empty()) {
        text[pick_pos(text.size())] =
            static_cast<char>(rng.uniform(1.0, 127.0));
      }
      break;
    }
    case 2: {  // swap a whitespace-delimited token for a hostile one
      static const char* kHostile[] = {"nan", "inf", "-1", "1e999", "garbage",
                                       "999999999999999999999", "end", ""};
      const std::size_t start = pick_pos(text.size());
      const std::size_t tok_begin = text.find_first_not_of(" \n", start);
      if (tok_begin == std::string::npos) break;
      std::size_t tok_end = text.find_first_of(" \n", tok_begin);
      if (tok_end == std::string::npos) tok_end = text.size();
      text.replace(tok_begin, tok_end - tok_begin,
                   kHostile[static_cast<std::size_t>(rng.uniform(0.0, 8.0))]);
      break;
    }
    case 3: {  // delete one full line
      const std::size_t start = pick_pos(text.size());
      const std::size_t line_begin = text.rfind('\n', start);
      const std::size_t begin =
          line_begin == std::string::npos ? 0 : line_begin + 1;
      std::size_t end = text.find('\n', begin);
      end = end == std::string::npos ? text.size() : end + 1;
      text.erase(begin, end - begin);
      break;
    }
    default: {  // duplicate one full line
      const std::size_t start = pick_pos(text.size());
      const std::size_t line_begin = text.rfind('\n', start);
      const std::size_t begin =
          line_begin == std::string::npos ? 0 : line_begin + 1;
      std::size_t end = text.find('\n', begin);
      end = end == std::string::npos ? text.size() : end + 1;
      text.insert(begin, text.substr(begin, end - begin));
      break;
    }
  }
  return text;
}

TEST(ServeFuzzTest, MutatedInputsNeverCrashOrEscapeTheContract) {
  const std::string good = serialize_batch(sample_batch());
  Rng rng(20260807);
  int parsed = 0, rejected = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    std::string text = good;
    const int rounds = 1 + static_cast<int>(rng.uniform(0.0, 3.0));
    for (int r = 0; r < rounds; ++r) text = mutate(text, rng);
    if (parses_cleanly_or_fails_located(text)) {
      ++parsed;
    } else {
      ++rejected;
    }
  }
  // The operators must exercise the error paths, and some corruptions (e.g.
  // a duplicated "cycles" line) legitimately still parse.
  EXPECT_GT(rejected, 100) << "fuzzer produced too few malformed inputs";
  EXPECT_GT(parsed + rejected, 0);
}

}  // namespace
}  // namespace scalemd
