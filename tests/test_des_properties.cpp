// Parameterized invariants of the discrete-event machine: causality,
// conservation of tasks, determinism, and link-serialization monotonicity,
// over randomized workloads.

#include <gtest/gtest.h>

#include <vector>

#include "core/parallel_sim.hpp"
#include "des/machine.hpp"
#include "des/simulator.hpp"
#include "gen/presets.hpp"
#include "trace/event_log.hpp"
#include "util/random.hpp"

namespace scalemd {
namespace {

struct DesCase {
  int pes;
  int seeds;  // rng seed; name kept short for the param printer
};

class DesProperty : public ::testing::TestWithParam<DesCase> {};

/// Random workload: `n` root tasks, each possibly spawning children on
/// random PEs up to depth 3. Records every task and message.
struct RandomRun {
  struct Collector : TraceSink {
    std::vector<TaskRecord> tasks;
    std::vector<MsgRecord> msgs;
    void on_task(const TaskRecord& r) override { tasks.push_back(r); }
    void on_message(const MsgRecord& r) override { msgs.push_back(r); }
  };

  explicit RandomRun(const DesCase& c) : sim(c.pes, MachineModel::asci_red()) {
    sim.set_sink(&collector);
    Rng rng(static_cast<std::uint64_t>(c.seeds));
    // Deterministic spawn decisions captured up front (handlers must not
    // consume shared RNG in execution order for this test's purposes —
    // determinism of the schedule is what we're testing).
    const int roots = 20;
    spawn_seed = rng.next_u64();
    for (int i = 0; i < roots; ++i) {
      const int pe = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(c.pes)));
      const double t = rng.uniform(0.0, 1e-3);
      sim.inject(pe, make_task(2, i), t);
    }
    sim.run();
  }

  TaskMsg make_task(int depth, int id) {
    TaskMsg msg;
    msg.priority = id % 3;
    msg.bytes = 64 + static_cast<std::size_t>(id % 5) * 512;
    msg.fn = [this, depth, id](ExecContext& ctx) {
      ctx.charge(1e-5 + 1e-6 * (id % 7));
      if (depth > 0) {
        // Deterministic pseudo-random fanout derived from (depth, id).
        const std::uint64_t h = spawn_seed ^ (static_cast<std::uint64_t>(depth) << 32) ^
                                static_cast<std::uint64_t>(id) * 0x9e3779b97f4a7c15ull;
        const int fanout = static_cast<int>(h % 3);
        for (int k = 0; k < fanout; ++k) {
          const int dest = static_cast<int>((h >> (8 * (k + 1))) %
                                            static_cast<std::uint64_t>(sim.num_pes()));
          ctx.send(dest, make_task(depth - 1, id * 3 + k + 1));
        }
      }
    };
    return msg;
  }

  Simulator sim;
  Collector collector;
  std::uint64_t spawn_seed = 0;
};

TEST_P(DesProperty, TasksNeverOverlapOnAPe) {
  RandomRun run(GetParam());
  // Sort by (pe, start) and check back-to-back execution windows.
  auto tasks = run.collector.tasks;
  std::sort(tasks.begin(), tasks.end(), [](const TaskRecord& a, const TaskRecord& b) {
    return a.pe != b.pe ? a.pe < b.pe : a.start < b.start;
  });
  for (std::size_t i = 1; i < tasks.size(); ++i) {
    if (tasks[i].pe != tasks[i - 1].pe) continue;
    EXPECT_GE(tasks[i].start, tasks[i - 1].start + tasks[i - 1].duration - 1e-12)
        << "overlap on pe " << tasks[i].pe;
  }
}

TEST_P(DesProperty, MessagesRespectCausality) {
  RandomRun run(GetParam());
  for (const MsgRecord& m : run.collector.msgs) {
    EXPECT_GE(m.recv_time, m.send_time - 1e-12);
  }
}

TEST_P(DesProperty, EveryMessageBecomesExactlyOneTask) {
  RandomRun run(GetParam());
  EXPECT_EQ(run.collector.tasks.size(), run.collector.msgs.size());
  EXPECT_EQ(run.sim.tasks_executed(), run.collector.tasks.size());
  EXPECT_TRUE(run.sim.idle());
}

TEST_P(DesProperty, DeterministicAcrossRuns) {
  RandomRun a(GetParam());
  RandomRun b(GetParam());
  ASSERT_EQ(a.collector.tasks.size(), b.collector.tasks.size());
  for (std::size_t i = 0; i < a.collector.tasks.size(); ++i) {
    EXPECT_EQ(a.collector.tasks[i].pe, b.collector.tasks[i].pe);
    EXPECT_DOUBLE_EQ(a.collector.tasks[i].start, b.collector.tasks[i].start);
    EXPECT_DOUBLE_EQ(a.collector.tasks[i].duration, b.collector.tasks[i].duration);
  }
  EXPECT_DOUBLE_EQ(a.sim.time(), b.sim.time());
}

TEST_P(DesProperty, BusyTimeNeverExceedsSpan) {
  RandomRun run(GetParam());
  for (double busy : run.sim.busy_times()) {
    EXPECT_LE(busy, run.sim.time() + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomWorkloads, DesProperty,
                         ::testing::Values(DesCase{1, 1}, DesCase{2, 2},
                                           DesCase{4, 3}, DesCase{8, 4},
                                           DesCase{32, 5}, DesCase{64, 6}));

TEST(DesDeterminismTest, ParallelSimTraceAndLbAssignmentAreBitwiseIdentical) {
  // The whole parallel stack — patch placement, multicast, task-time noise
  // (fixed-seed RNG), reductions, measurement-based LB — must replay
  // bit-for-bit from the same configuration: two runs, identical event
  // traces and identical final object assignments.
  Molecule m = small_solvated_chain(900, 43);
  m.suggested_patch_size = 8.0;
  const Workload wl(m, MachineModel::asci_red(), {});

  auto run_once = [&](EventLog& log, std::vector<int>& compute_pe,
                      std::vector<int>& patch_home) {
    ParallelOptions opts;
    opts.num_pes = 8;
    ParallelSim sim(wl, opts);
    sim.attach_sink(&log);
    sim.run_cycle(3);
    sim.load_balance();
    sim.run_cycle(3);
    sim.detach_sink(&log);
    compute_pe = sim.compute_pe();
    patch_home = sim.patch_home();
  };

  EventLog la, lb;
  std::vector<int> ca, cb, pa, pb;
  run_once(la, ca, pa);
  run_once(lb, cb, pb);

  EXPECT_EQ(ca, cb) << "load balancer produced different compute placements";
  EXPECT_EQ(pa, pb);

  ASSERT_EQ(la.tasks().size(), lb.tasks().size());
  ASSERT_GT(la.tasks().size(), 0u);
  for (std::size_t i = 0; i < la.tasks().size(); ++i) {
    const TaskRecord& a = la.tasks()[i];
    const TaskRecord& b = lb.tasks()[i];
    EXPECT_EQ(a.pe, b.pe) << "task " << i;
    EXPECT_EQ(a.entry, b.entry) << "task " << i;
    EXPECT_EQ(a.object, b.object) << "task " << i;
    // EXPECT_EQ on doubles is exact equality — bitwise determinism.
    EXPECT_EQ(a.start, b.start) << "task " << i;
    EXPECT_EQ(a.duration, b.duration) << "task " << i;
    EXPECT_EQ(a.recv_cost, b.recv_cost) << "task " << i;
    EXPECT_EQ(a.pack_cost, b.pack_cost) << "task " << i;
    EXPECT_EQ(a.send_cost, b.send_cost) << "task " << i;
  }
  ASSERT_EQ(la.messages().size(), lb.messages().size());
  ASSERT_GT(la.messages().size(), 0u);
  for (std::size_t i = 0; i < la.messages().size(); ++i) {
    const MsgRecord& a = la.messages()[i];
    const MsgRecord& b = lb.messages()[i];
    EXPECT_EQ(a.src_pe, b.src_pe) << "msg " << i;
    EXPECT_EQ(a.dst_pe, b.dst_pe) << "msg " << i;
    EXPECT_EQ(a.entry, b.entry) << "msg " << i;
    EXPECT_EQ(a.bytes, b.bytes) << "msg " << i;
    EXPECT_EQ(a.send_time, b.send_time) << "msg " << i;
    EXPECT_EQ(a.recv_time, b.recv_time) << "msg " << i;
  }
}

TEST(DesNicTest, LinkSerializationDelaysBurst) {
  // Ten 100 KB messages from one PE to ten receivers: the sender's outgoing
  // link must serialize them, so the last arrival is ~10 transfer times out.
  MachineModel m;
  m.send_overhead = 0.0;
  m.recv_overhead = 0.0;
  m.latency = 0.0;
  m.byte_time = 1e-8;  // 100 KB -> 1 ms
  m.pack_byte_cost = 0.0;
  m.local_overhead = 0.0;
  Simulator sim(11, m);
  std::vector<double> arrivals(11, -1.0);
  sim.inject(0, {.fn = [&](ExecContext& ctx) {
                   for (int pe = 1; pe <= 10; ++pe) {
                     ctx.send(pe, {.bytes = 100000, .fn = [&arrivals, pe](ExecContext& c) {
                                     arrivals[static_cast<std::size_t>(pe)] = c.start();
                                   }});
                   }
                 }});
  sim.run();
  EXPECT_NEAR(arrivals[1], 1e-3, 1e-6);
  EXPECT_NEAR(arrivals[10], 10e-3, 1e-5);
}

TEST(DesNicTest, IncomingLinkSerializesConvergecast) {
  // Ten senders hitting one receiver at once: the receiver's incoming link
  // spaces the deliveries by one transfer each.
  MachineModel m;
  m.send_overhead = 0.0;
  m.recv_overhead = 0.0;
  m.latency = 0.0;
  m.byte_time = 1e-8;
  m.pack_byte_cost = 0.0;
  m.local_overhead = 0.0;
  Simulator sim(11, m);
  std::vector<double> arrivals;
  for (int pe = 1; pe <= 10; ++pe) {
    sim.inject(pe, {.fn = [&](ExecContext& ctx) {
                      ctx.send(0, {.bytes = 100000, .fn = [&arrivals](ExecContext& c) {
                                      arrivals.push_back(c.start());
                                    }});
                    }});
  }
  sim.run();
  ASSERT_EQ(arrivals.size(), 10u);
  EXPECT_GE(arrivals.back() - arrivals.front(), 8e-3);
}

}  // namespace
}  // namespace scalemd
