#include <gtest/gtest.h>

#include <vector>

#include "des/machine.hpp"
#include "des/simulator.hpp"

namespace scalemd {
namespace {

/// A machine with trivial communication costs, for arithmetic-exact tests.
MachineModel free_comm_machine() {
  MachineModel m;
  m.name = "test";
  m.send_overhead = 0.0;
  m.recv_overhead = 0.0;
  m.latency = 0.0;
  m.byte_time = 0.0;
  m.pack_byte_cost = 0.0;
  m.local_overhead = 0.0;
  return m;
}

TEST(SimulatorTest, SingleTaskAdvancesClock) {
  Simulator sim(2, free_comm_machine());
  bool ran = false;
  sim.inject(0, {.fn = [&](ExecContext& ctx) {
                   ctx.charge(1.5);
                   ran = true;
                 }});
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_DOUBLE_EQ(sim.time(), 1.5);
  EXPECT_DOUBLE_EQ(sim.pe_busy(0), 1.5);
  EXPECT_DOUBLE_EQ(sim.pe_busy(1), 0.0);
  EXPECT_TRUE(sim.idle());
}

TEST(SimulatorTest, PriorityOrderAmongArrivedMessages) {
  Simulator sim(1, free_comm_machine());
  std::vector<int> order;
  // All three arrive at time 0; the PE should run them by priority.
  for (int prio : {5, 1, 3}) {
    sim.inject(0, {.priority = prio, .fn = [&order, prio](ExecContext& ctx) {
                     ctx.charge(1.0);
                     order.push_back(prio);
                   }});
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 5}));
}

TEST(SimulatorTest, FifoWithinSamePriority) {
  Simulator sim(1, free_comm_machine());
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    sim.inject(0, {.fn = [&order, i](ExecContext& ctx) {
                     ctx.charge(0.1);
                     order.push_back(i);
                   }});
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(SimulatorTest, NonPreemptiveEvenForHigherPriorityArrival) {
  Simulator sim(1, free_comm_machine());
  std::vector<char> order;
  // Long task starts at 0; urgent task arrives at t=1 but must wait.
  sim.inject(0, {.priority = 0, .fn = [&](ExecContext& ctx) {
                   ctx.charge(5.0);
                   order.push_back('a');
                 }});
  sim.inject(0,
             {.priority = -10,
              .fn =
                  [&](ExecContext& ctx) {
                    ctx.charge(1.0);
                    order.push_back('b');
                    EXPECT_DOUBLE_EQ(ctx.start(), 5.0);
                  }},
             /*time=*/1.0);
  sim.run();
  EXPECT_EQ(order, (std::vector<char>{'a', 'b'}));
}

TEST(SimulatorTest, RemoteMessageLatencyAndBandwidth) {
  MachineModel m = free_comm_machine();
  m.send_overhead = 0.5;
  m.latency = 2.0;
  m.byte_time = 0.01;
  m.recv_overhead = 0.25;
  Simulator sim(2, m);
  double recv_start = -1.0;
  sim.inject(0, {.fn = [&](ExecContext& ctx) {
                   ctx.charge(1.0);
                   ctx.send(1, {.bytes = 100, .fn = [&](ExecContext& c2) {
                                  recv_start = c2.start();
                                  c2.charge(0.5);
                                }});
                 }});
  sim.run();
  // Send happens at 1.0 + 0.5 (send overhead); arrival at +2.0 latency
  // + 100 * 0.01 bandwidth = 4.5.
  EXPECT_DOUBLE_EQ(recv_start, 4.5);
  // Receiver task duration includes recv overhead.
  EXPECT_DOUBLE_EQ(sim.pe_busy(1), 0.75);
  EXPECT_EQ(sim.remote_messages(), 1u);
  EXPECT_EQ(sim.remote_bytes(), 100u);
}

TEST(SimulatorTest, LocalSendIsImmediateWithEnqueueCost) {
  MachineModel m = free_comm_machine();
  m.local_overhead = 0.1;
  Simulator sim(1, m);
  double second_start = -1.0;
  sim.inject(0, {.fn = [&](ExecContext& ctx) {
                   ctx.send(0, {.fn = [&](ExecContext& c2) {
                                  second_start = c2.start();
                                  c2.charge(1.0);
                                }});
                   ctx.charge(2.0);
                 }});
  sim.run();
  // The self-send arrives instantly but runs only after the sender's task
  // completes at 0.1 (enqueue) + 2.0 = 2.1.
  EXPECT_DOUBLE_EQ(second_start, 2.1);
  EXPECT_EQ(sim.remote_messages(), 0u);
}

TEST(SimulatorTest, ChargeBeforeSendDelaysDeparture) {
  MachineModel m = free_comm_machine();
  m.latency = 1.0;
  Simulator sim(2, m);
  double recv_start = -1.0;
  sim.inject(0, {.fn = [&](ExecContext& ctx) {
                   ctx.charge(3.0);
                   ctx.send(1, {.fn = [&](ExecContext& c2) { recv_start = c2.start(); }});
                   ctx.charge(10.0);  // work after the send overlaps delivery
                 }});
  sim.run();
  EXPECT_DOUBLE_EQ(recv_start, 4.0);
}

TEST(SimulatorTest, DeterministicScheduling) {
  auto run_once = [] {
    Simulator sim(4, MachineModel::asci_red());
    std::vector<int> order;
    for (int i = 0; i < 8; ++i) {
      sim.inject(i % 4, {.priority = i % 3, .fn = [&order, i](ExecContext& ctx) {
                           ctx.charge(1e-3 * (i + 1));
                           order.push_back(i);
                           if (i < 4) {
                             ctx.send((i + 1) % 4,
                                      {.bytes = 64, .fn = [&order, i](ExecContext& c) {
                                         c.charge(1e-4);
                                         order.push_back(100 + i);
                                       }});
                           }
                         }});
    }
    sim.run();
    return std::pair(order, sim.time());
  };
  const auto [o1, t1] = run_once();
  const auto [o2, t2] = run_once();
  EXPECT_EQ(o1, o2);
  EXPECT_DOUBLE_EQ(t1, t2);
}

TEST(SimulatorTest, TraceSinkReceivesRecords) {
  struct Collector : TraceSink {
    std::vector<TaskRecord> tasks;
    std::vector<MsgRecord> msgs;
    void on_task(const TaskRecord& r) override { tasks.push_back(r); }
    void on_message(const MsgRecord& r) override { msgs.push_back(r); }
  } sink;

  MachineModel m = free_comm_machine();
  m.send_overhead = 0.5;
  m.recv_overhead = 0.25;
  m.latency = 1.0;
  Simulator sim(2, m);
  sim.set_sink(&sink);
  const EntryId e1 = sim.entries().add("producer", WorkCategory::kIntegration);
  const EntryId e2 = sim.entries().add("consumer", WorkCategory::kNonbonded);

  sim.inject(0, {.entry = e1, .object = 42, .fn = [&](ExecContext& ctx) {
                   ctx.charge(2.0);
                   ctx.send(1, {.entry = e2, .bytes = 8, .fn = [](ExecContext& c) {
                                  c.charge(1.0);
                                }});
                 }});
  sim.run();

  ASSERT_EQ(sink.tasks.size(), 2u);
  EXPECT_EQ(sink.tasks[0].entry, e1);
  EXPECT_EQ(sink.tasks[0].object, 42u);
  EXPECT_DOUBLE_EQ(sink.tasks[0].duration, 2.5);  // charge + send overhead
  EXPECT_DOUBLE_EQ(sink.tasks[0].send_cost, 0.5);
  EXPECT_EQ(sink.tasks[1].entry, e2);
  EXPECT_DOUBLE_EQ(sink.tasks[1].recv_cost, 0.25);
  // Two message records: the injected bootstrap and the remote send.
  ASSERT_EQ(sink.msgs.size(), 2u);
  EXPECT_EQ(sink.msgs[1].bytes, 8u);
  EXPECT_DOUBLE_EQ(sink.msgs[1].recv_time, 3.5);
}

TEST(SimulatorTest, RunUntilStopsEarly) {
  Simulator sim(1, free_comm_machine());
  int count = 0;
  for (int i = 0; i < 5; ++i) {
    sim.inject(0, {.fn = [&](ExecContext& ctx) {
                     ctx.charge(1.0);
                     ++count;
                   }},
               static_cast<double>(i) * 10.0);
  }
  sim.run(/*until=*/25.0);
  EXPECT_EQ(count, 3);  // events at t=0, 10, 20
  EXPECT_FALSE(sim.idle());
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_TRUE(sim.idle());
}

TEST(SimulatorTest, ManyPesBusyAccounting) {
  Simulator sim(8, free_comm_machine());
  for (int pe = 0; pe < 8; ++pe) {
    sim.inject(pe, {.fn = [pe](ExecContext& ctx) { ctx.charge(pe + 1.0); }});
  }
  sim.run();
  const auto busy = sim.busy_times();
  for (int pe = 0; pe < 8; ++pe) {
    EXPECT_DOUBLE_EQ(busy[static_cast<std::size_t>(pe)], pe + 1.0);
  }
  EXPECT_DOUBLE_EQ(sim.time(), 8.0);
  EXPECT_EQ(sim.tasks_executed(), 8u);
}

}  // namespace
}  // namespace scalemd
