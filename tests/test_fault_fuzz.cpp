// Property and mutation-fuzz tests for the fault-plan text parser
// (des/fault). Contract under test: parse_fault_plan_text either returns
// true with a fully validated FaultPlan, or returns false with a located
// FaultPlanParseError ("file:line: reason") — it never crashes, never
// invokes UB (the unit suite runs under ASan/UBSan in CI), and never lets
// an out-of-range probability, negative time or unknown directive through.
// Mirrors tests/test_topo_fuzz.cpp, which pins the same contract for the
// topology reader.

#include <gtest/gtest.h>

#include <string>

#include "des/fault.hpp"
#include "util/random.hpp"

namespace scalemd {
namespace {

FaultPlan sample_plan() {
  FaultPlan p;
  p.seed = 42;
  p.drop_prob = 0.02;
  p.dup_prob = 0.01;
  p.delay_prob = 0.05;
  p.delay_max = 2e-4;
  p.slowdowns.push_back({.pe = 3, .factor = 2.5, .from_time = 0.125});
  p.failures.push_back({.pe = 2, .at_time = 0.5});
  p.failures.push_back({.pe = 5, .at_time = 0.75});
  return p;
}

bool plans_equal(const FaultPlan& a, const FaultPlan& b) {
  if (a.seed != b.seed || a.drop_prob != b.drop_prob ||
      a.dup_prob != b.dup_prob || a.delay_prob != b.delay_prob ||
      a.delay_max != b.delay_max || a.slowdowns.size() != b.slowdowns.size() ||
      a.failures.size() != b.failures.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.slowdowns.size(); ++i) {
    if (a.slowdowns[i].pe != b.slowdowns[i].pe ||
        a.slowdowns[i].factor != b.slowdowns[i].factor ||
        a.slowdowns[i].from_time != b.slowdowns[i].from_time) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.failures.size(); ++i) {
    if (a.failures[i].pe != b.failures[i].pe ||
        a.failures[i].at_time != b.failures[i].at_time) {
      return false;
    }
  }
  return true;
}

/// The property every input must satisfy: parse cleanly into a plan whose
/// fields pass the parser's own validation rules, or fail with a located
/// error. Returns true when the input parsed.
bool parses_cleanly_or_fails_located(const std::string& text) {
  FaultPlan plan;
  FaultPlanParseError error;
  if (parse_fault_plan_text(text, "fuzz", plan, error)) {
    // Validation must actually have held: these are the parser's promises.
    EXPECT_GE(plan.drop_prob, 0.0);
    EXPECT_LE(plan.drop_prob, 1.0);
    EXPECT_GE(plan.dup_prob, 0.0);
    EXPECT_LE(plan.dup_prob, 1.0);
    EXPECT_GE(plan.delay_prob, 0.0);
    EXPECT_LE(plan.delay_prob, 1.0);
    EXPECT_GE(plan.delay_max, 0.0);
    for (const PeSlowdown& s : plan.slowdowns) {
      EXPECT_GE(s.pe, 0);
      EXPECT_GE(s.factor, 1.0);
    }
    for (const PeFailure& f : plan.failures) {
      EXPECT_GE(f.pe, 0);
      EXPECT_GE(f.at_time, 0.0);
    }
    return true;
  }
  EXPECT_EQ(error.file, "fuzz");
  EXPECT_GE(error.line, 1) << "text-level parses must locate a line";
  EXPECT_FALSE(error.reason.empty());
  const std::string rendered = error.render();
  const std::string expected_prefix =
      "fuzz:" + std::to_string(error.line) + ": ";
  EXPECT_EQ(rendered.rfind(expected_prefix, 0), 0u)
      << "rendered error '" << rendered << "' does not start with its location";
  return false;
}

TEST(FaultPlanFuzzTest, RenderedPlanRoundTripsExactly) {
  const FaultPlan plan = sample_plan();
  FaultPlan back;
  FaultPlanParseError error;
  ASSERT_TRUE(parse_fault_plan_text(render_fault_plan(plan), "rt", back, error))
      << error.render();
  EXPECT_TRUE(plans_equal(plan, back));
}

TEST(FaultPlanFuzzTest, EmptyPlanRendersEmptyAndParsesBack) {
  EXPECT_EQ(render_fault_plan(FaultPlan{}), "");
  FaultPlan back;
  FaultPlanParseError error;
  ASSERT_TRUE(parse_fault_plan_text("", "rt", back, error));
  EXPECT_TRUE(back.empty());
}

TEST(FaultPlanFuzzTest, EveryPrefixTruncationParsesOrFailsLocated) {
  // The schema is line-oriented with no trailer, so cutting at a line
  // boundary yields a smaller valid plan while cutting mid-directive must
  // fail with the right line number — never crash, never accept a
  // half-validated value.
  const std::string good = render_fault_plan(sample_plan());
  for (std::size_t len = 0; len <= good.size(); ++len) {
    const std::string prefix = good.substr(0, len);
    const bool parsed = parses_cleanly_or_fails_located(prefix);
    // A prefix ending on a line boundary is itself a complete plan.
    if (len == 0 || prefix.back() == '\n') {
      EXPECT_TRUE(parsed) << "line-boundary prefix of length " << len
                          << " should parse";
    }
  }
}

TEST(FaultPlanFuzzTest, RejectsHostileValuesWithLocation) {
  const auto fails_on_line = [](const std::string& text, int line) {
    FaultPlan plan;
    FaultPlanParseError error;
    EXPECT_FALSE(parse_fault_plan_text(text, "fuzz", plan, error)) << text;
    EXPECT_EQ(error.line, line) << text;
  };
  fails_on_line("drop 1.5\n", 1);
  fails_on_line("drop -0.1\n", 1);
  fails_on_line("seed -3\n", 1);
  fails_on_line("drop 0.1\ndup nope\n", 2);
  fails_on_line("delay 0.5\n", 1);           // missing max seconds
  fails_on_line("delay 0.5 -1\n", 1);
  fails_on_line("slowdown 2 0.5\n", 1);      // factor < 1
  fails_on_line("slowdown -1 2\n", 1);
  fails_on_line("fail 1 -2\n", 1);
  fails_on_line("fail -1 2\n", 1);
  fails_on_line("drop 0.1\nbogus 1 2 3\n", 2);
}

TEST(FaultPlanFuzzTest, CommentsAndBlankLinesAreTransparent) {
  FaultPlan plan;
  FaultPlanParseError error;
  ASSERT_TRUE(parse_fault_plan_text(
      "# a chaos mix\n\n  drop 0.25   # heavy loss\n\n# done\n", "c", plan,
      error))
      << error.render();
  EXPECT_EQ(plan.drop_prob, 0.25);
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlanFuzzTest, FailureToParseLeavesCallerPlanUntouched) {
  FaultPlan plan;
  plan.drop_prob = 0.125;  // pre-existing caller state
  FaultPlanParseError error;
  EXPECT_FALSE(parse_fault_plan_text("drop 0.9\ngarbage\n", "f", plan, error));
  EXPECT_EQ(plan.drop_prob, 0.125) << "failed parse must not half-write";
}

// ---------------------------------------------------------------------------
// Mutation fuzzing: random corruptions of a valid serialization. Each input
// must parse or fail with a located error — nothing else.
// ---------------------------------------------------------------------------

std::string mutate(const std::string& good, Rng& rng) {
  std::string text = good;
  const int op = static_cast<int>(rng.uniform_index(5));
  const auto pick_pos = [&](std::size_t size) {
    return static_cast<std::size_t>(rng.uniform_index(size));
  };
  switch (op) {
    case 0:  // truncate anywhere, including mid-directive
      if (!text.empty()) text.resize(pick_pos(text.size()));
      break;
    case 1: {  // corrupt one byte
      if (!text.empty()) {
        text[pick_pos(text.size())] =
            static_cast<char>(1 + rng.uniform_index(126));
      }
      break;
    }
    case 2: {  // swap a whitespace-delimited token for a hostile one
      static const char* kHostile[] = {"nan",  "inf",     "-1", "1e999",
                                       "2",    "garbage", "",   "0.5.5",
                                       "-0.0", "1e-999"};
      if (text.empty()) break;
      const std::size_t start = pick_pos(text.size());
      const std::size_t tok_begin = text.find_first_not_of(" \n", start);
      if (tok_begin == std::string::npos) break;
      std::size_t tok_end = text.find_first_of(" \n", tok_begin);
      if (tok_end == std::string::npos) tok_end = text.size();
      text.replace(tok_begin, tok_end - tok_begin,
                   kHostile[rng.uniform_index(10)]);
      break;
    }
    case 3: {  // delete one full line
      if (text.empty()) break;
      const std::size_t start = pick_pos(text.size());
      const std::size_t line_begin = text.rfind('\n', start);
      const std::size_t begin =
          line_begin == std::string::npos ? 0 : line_begin + 1;
      std::size_t end = text.find('\n', begin);
      end = end == std::string::npos ? text.size() : end + 1;
      text.erase(begin, end - begin);
      break;
    }
    default: {  // duplicate one full line
      if (text.empty()) break;
      const std::size_t start = pick_pos(text.size());
      const std::size_t line_begin = text.rfind('\n', start);
      const std::size_t begin =
          line_begin == std::string::npos ? 0 : line_begin + 1;
      std::size_t end = text.find('\n', begin);
      end = end == std::string::npos ? text.size() : end + 1;
      text.insert(begin, text.substr(begin, end - begin));
      break;
    }
  }
  return text;
}

TEST(FaultPlanFuzzTest, MutatedInputsNeverCrashOrEscapeTheContract) {
  const std::string good = render_fault_plan(sample_plan());
  Rng rng(20260807);
  int parsed = 0, rejected = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    std::string text = good;
    // Stack 1-3 mutations so corruptions compound.
    const int rounds = 1 + static_cast<int>(rng.uniform_index(3));
    for (int r = 0; r < rounds; ++r) text = mutate(text, rng);
    if (parses_cleanly_or_fails_located(text)) {
      ++parsed;
    } else {
      ++rejected;
    }
  }
  // Both outcomes must actually be exercised: line-granular mutations often
  // leave a valid plan, hostile tokens must be refused.
  EXPECT_GT(rejected, 200) << "fuzzer produced too few malformed inputs";
  EXPECT_GT(parsed, 200) << "fuzzer produced too few valid inputs";
}

}  // namespace
}  // namespace scalemd
