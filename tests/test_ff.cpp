#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "ff/bonded.hpp"
#include "ff/nonbonded.hpp"
#include "ff/switching.hpp"
#include "util/random.hpp"
#include "util/units.hpp"

namespace scalemd {
namespace {

/// Checks analytic forces against central finite differences of the energy.
/// `energy` evaluates E at the given positions; `forces` returns the
/// analytic forces at the same positions.
void expect_forces_match_fd(
    std::vector<Vec3> pos, const std::function<double(const std::vector<Vec3>&)>& energy,
    const std::function<std::vector<Vec3>(const std::vector<Vec3>&)>& forces,
    double tol = 1e-6) {
  const double h = 1e-5;
  const std::vector<Vec3> f = forces(pos);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    for (int d = 0; d < 3; ++d) {
      auto moved = pos;
      double* coord = d == 0 ? &moved[i].x : d == 1 ? &moved[i].y : &moved[i].z;
      *coord += h;
      const double ep = energy(moved);
      *coord -= 2 * h;
      const double em = energy(moved);
      const double fd = -(ep - em) / (2 * h);
      const double fa = d == 0 ? f[i].x : d == 1 ? f[i].y : f[i].z;
      EXPECT_NEAR(fa, fd, tol * std::max(1.0, std::fabs(fd)))
          << "atom " << i << " dim " << d;
    }
  }
}

TEST(SwitchingTest, BoundaryValuesAndContinuity) {
  const SwitchFunction s(10.0, 12.0);
  EXPECT_DOUBLE_EQ(s.value(9.0 * 9.0), 1.0);
  EXPECT_DOUBLE_EQ(s.value(10.0 * 10.0), 1.0);
  EXPECT_NEAR(s.value(12.0 * 12.0), 0.0, 1e-14);
  EXPECT_DOUBLE_EQ(s.value(13.0 * 13.0), 0.0);
  // Continuity at both ends.
  EXPECT_NEAR(s.value(100.0 + 1e-9), 1.0, 1e-7);
  EXPECT_NEAR(s.value(144.0 - 1e-9), 0.0, 1e-7);
  // Monotone decreasing inside the window.
  double prev = 1.0;
  for (double r = 10.0; r <= 12.0; r += 0.05) {
    const double v = s.value(r * r);
    EXPECT_LE(v, prev + 1e-12);
    prev = v;
  }
}

TEST(SwitchingTest, DerivativeMatchesFiniteDifference) {
  const SwitchFunction s(10.0, 12.0);
  const double h = 1e-6;
  for (double r2 : {101.0, 110.0, 120.0, 130.0, 143.0}) {
    const double fd = (s.value(r2 + h) - s.value(r2 - h)) / (2 * h);
    EXPECT_NEAR(s.dvalue_dr2(r2), fd, 1e-6) << r2;
  }
}

TEST(SwitchingTest, ElecShiftVanishesAtCutoff) {
  const ElecShift e(12.0);
  EXPECT_NEAR(e.shift_factor(144.0), 0.0, 1e-14);
  EXPECT_NEAR(e.shift_factor(0.0), 1.0, 1e-14);
  const double h = 1e-6;
  for (double r2 : {10.0, 50.0, 100.0, 140.0}) {
    const double fd = (e.shift_factor(r2 + h) - e.shift_factor(r2 - h)) / (2 * h);
    EXPECT_NEAR(e.dshift_factor_dr2(r2), fd, 1e-8) << r2;
  }
}

TEST(BondedTest, BondForceMatchesFiniteDifference) {
  const BondParam p{340.0, 1.09};
  std::vector<Vec3> pos{{0.1, 0.2, -0.1}, {1.0, 0.9, 0.4}};
  expect_forces_match_fd(
      pos,
      [&](const std::vector<Vec3>& x) {
        Vec3 fa, fb;
        return bond_energy_force(x[0], x[1], p, fa, fb);
      },
      [&](const std::vector<Vec3>& x) {
        std::vector<Vec3> f(2);
        bond_energy_force(x[0], x[1], p, f[0], f[1]);
        return f;
      });
}

TEST(BondedTest, BondEnergyZeroAtRest) {
  const BondParam p{340.0, 2.0};
  Vec3 fa, fb;
  const double e = bond_energy_force({0, 0, 0}, {2, 0, 0}, p, fa, fb);
  EXPECT_NEAR(e, 0.0, 1e-12);
  EXPECT_NEAR(norm(fa), 0.0, 1e-9);
}

TEST(BondedTest, AngleForceMatchesFiniteDifference) {
  const AngleParam p{55.0, 104.52 * M_PI / 180.0};
  std::vector<Vec3> pos{{1.0, 0.1, 0.0}, {0.0, 0.0, 0.0}, {-0.3, 0.9, 0.2}};
  expect_forces_match_fd(
      pos,
      [&](const std::vector<Vec3>& x) {
        Vec3 fa, fb, fc;
        return angle_energy_force(x[0], x[1], x[2], p, fa, fb, fc);
      },
      [&](const std::vector<Vec3>& x) {
        std::vector<Vec3> f(3);
        angle_energy_force(x[0], x[1], x[2], p, f[0], f[1], f[2]);
        return f;
      });
}

TEST(BondedTest, AngleForcesSumToZero) {
  const AngleParam p{58.0, 1.9};
  Vec3 fa, fb, fc;
  angle_energy_force({1.2, 0, 0}, {0, 0, 0}, {0.4, 1.4, 0.3}, p, fa, fb, fc);
  const Vec3 sum = fa + fb + fc;
  EXPECT_NEAR(norm(sum), 0.0, 1e-10);
}

TEST(BondedTest, DihedralForceMatchesFiniteDifference) {
  const DihedralParam p{1.4, 3, 0.5};
  std::vector<Vec3> pos{
      {0.0, 0.0, 0.0}, {1.5, 0.1, 0.0}, {2.0, 1.5, 0.2}, {3.4, 1.8, 1.0}};
  expect_forces_match_fd(
      pos,
      [&](const std::vector<Vec3>& x) {
        Vec3 fa, fb, fc, fd;
        return dihedral_energy_force(x[0], x[1], x[2], x[3], p, fa, fb, fc, fd);
      },
      [&](const std::vector<Vec3>& x) {
        std::vector<Vec3> f(4);
        dihedral_energy_force(x[0], x[1], x[2], x[3], p, f[0], f[1], f[2], f[3]);
        return f;
      },
      1e-5);
}

TEST(BondedTest, DihedralForcesSumToZero) {
  const DihedralParam p{0.9, 2, 0.3};
  Vec3 fa, fb, fc, fd;
  dihedral_energy_force({0, 0, 0}, {1.5, 0, 0}, {2.1, 1.4, 0}, {3.0, 1.6, 1.2}, p,
                        fa, fb, fc, fd);
  EXPECT_NEAR(norm(fa + fb + fc + fd), 0.0, 1e-10);
}

TEST(BondedTest, ImproperForceMatchesFiniteDifference) {
  const ImproperParam p{20.0, 0.6};
  std::vector<Vec3> pos{
      {0.2, 0.1, 0.9}, {1.4, 0.0, 0.1}, {2.2, 1.3, 0.0}, {3.1, 1.5, 1.1}};
  expect_forces_match_fd(
      pos,
      [&](const std::vector<Vec3>& x) {
        Vec3 fa, fb, fc, fd;
        return improper_energy_force(x[0], x[1], x[2], x[3], p, fa, fb, fc, fd);
      },
      [&](const std::vector<Vec3>& x) {
        std::vector<Vec3> f(4);
        improper_energy_force(x[0], x[1], x[2], x[3], p, f[0], f[1], f[2], f[3]);
        return f;
      },
      1e-5);
}

/// Two-atom fixture for non-bonded kernel tests.
class NonbondedFixture {
 public:
  NonbondedFixture() {
    type_a_ = params_.add_lj_type(0.15, 1.8);
    type_b_ = params_.add_lj_type(0.08, 1.5);
    params_.finalize();
  }

  /// Builds a context over `n` atoms with alternating types and charges.
  NonbondedContext context(int n, const Molecule& mol) {
    charges_.clear();
    types_.clear();
    for (int i = 0; i < n; ++i) {
      charges_.push_back(i % 2 == 0 ? 0.4 : -0.4);
      types_.push_back(i % 2 == 0 ? type_a_ : type_b_);
    }
    excl_ = ExclusionTable::build(mol);
    return NonbondedContext(params_, excl_, charges_, types_, opts_);
  }

  ParameterTable params_;
  ExclusionTable excl_;
  std::vector<double> charges_;
  std::vector<int> types_;
  NonbondedOptions opts_;
  int type_a_ = 0, type_b_ = 0;
};

Molecule empty_mol(int n) {
  Molecule m;
  m.box = {100, 100, 100};
  const int t = m.params.add_lj_type(0.1, 2.0);
  m.params.finalize();
  for (int i = 0; i < n; ++i) m.add_atom({12.0, 0.0, t}, {50, 50, 50});
  return m;
}

TEST(NonbondedTest, PairForceMatchesFiniteDifference) {
  NonbondedFixture fx;
  const Molecule m = empty_mol(2);
  const NonbondedContext ctx = fx.context(2, m);
  const std::vector<int> ia{0};
  const std::vector<int> ib{1};

  for (double r : {3.5, 6.0, 10.5, 11.5}) {
    std::vector<Vec3> pos{{0, 0, 0}, {r * 0.6, r * 0.64, r * 0.48}};
    // Direction chosen non-axis-aligned; |pos1 - pos0| = r * 1.0007... ~ r.
    expect_forces_match_fd(
        pos,
        [&](const std::vector<Vec3>& x) {
          std::vector<Vec3> fa(1), fb(1);
          WorkCounters w;
          const std::vector<Vec3> pa{x[0]};
          const std::vector<Vec3> pb{x[1]};
          return nonbonded_ab(ctx, ia, pa, fa, ib, pb, fb, w).total();
        },
        [&](const std::vector<Vec3>& x) {
          std::vector<Vec3> fa(1), fb(1);
          WorkCounters w;
          const std::vector<Vec3> pa{x[0]};
          const std::vector<Vec3> pb{x[1]};
          nonbonded_ab(ctx, ia, pa, fa, ib, pb, fb, w);
          return std::vector<Vec3>{fa[0], fb[0]};
        },
        1e-5);
  }
}

TEST(NonbondedTest, EnergyAndForceVanishBeyondCutoff) {
  NonbondedFixture fx;
  const Molecule m = empty_mol(2);
  const NonbondedContext ctx = fx.context(2, m);
  const std::vector<int> ia{0}, ib{1};
  const std::vector<Vec3> pa{{0, 0, 0}};
  const std::vector<Vec3> pb{{12.2, 0, 0}};
  std::vector<Vec3> fa(1), fb(1);
  WorkCounters w;
  const EnergyTerms e = nonbonded_ab(ctx, ia, pa, fa, ib, pb, fb, w);
  EXPECT_DOUBLE_EQ(e.total(), 0.0);
  EXPECT_EQ(norm(fa[0]), 0.0);
  EXPECT_EQ(w.pairs_tested, 1u);
  EXPECT_EQ(w.pairs_computed, 0u);
}

TEST(NonbondedTest, NewtonsThirdLaw) {
  NonbondedFixture fx;
  const Molecule m = empty_mol(2);
  const NonbondedContext ctx = fx.context(2, m);
  const std::vector<int> ia{0}, ib{1};
  const std::vector<Vec3> pa{{1, 2, 3}};
  const std::vector<Vec3> pb{{4, 5, 7}};
  std::vector<Vec3> fa(1), fb(1);
  WorkCounters w;
  nonbonded_ab(ctx, ia, pa, fa, ib, pb, fb, w);
  EXPECT_NEAR(norm(fa[0] + fb[0]), 0.0, 1e-12);
  EXPECT_GT(norm(fa[0]), 0.0);
}

TEST(NonbondedTest, FullExclusionSkipsPair) {
  NonbondedFixture fx;
  Molecule m = empty_mol(2);
  const int bp = m.params.add_bond_param(100, 1.5);
  m.add_bond(0, 1, bp);
  const NonbondedContext ctx = fx.context(2, m);
  const std::vector<int> ia{0}, ib{1};
  const std::vector<Vec3> pa{{0, 0, 0}};
  const std::vector<Vec3> pb{{1.5, 0, 0}};
  std::vector<Vec3> fa(1), fb(1);
  WorkCounters w;
  const EnergyTerms e = nonbonded_ab(ctx, ia, pa, fa, ib, pb, fb, w);
  EXPECT_DOUBLE_EQ(e.total(), 0.0);
  EXPECT_EQ(w.pairs_computed, 0u);
}

TEST(NonbondedTest, Modified14IsScaled) {
  NonbondedFixture fx;
  // Chain 0-1-2-3: pair (0,3) is 1-4.
  Molecule m = empty_mol(4);
  const int bp = m.params.add_bond_param(100, 1.5);
  for (int i = 0; i < 3; ++i) m.add_bond(i, i + 1, bp);
  const NonbondedContext ctx = fx.context(4, m);

  const std::vector<int> ia{0}, ib{3};
  const std::vector<Vec3> pa{{0, 0, 0}};
  const std::vector<Vec3> pb{{4.5, 0, 0}};
  std::vector<Vec3> fa(1), fb(1);
  WorkCounters w;
  const EnergyTerms e14 = nonbonded_ab(ctx, ia, pa, fa, ib, pb, fb, w);

  // The same pair without topology gives the unscaled energy.
  const Molecule m2 = empty_mol(4);
  NonbondedFixture fx2;
  const NonbondedContext ctx2 = fx2.context(4, m2);
  std::vector<Vec3> fa2(1), fb2(1);
  const EnergyTerms efull = nonbonded_ab(ctx2, ia, pa, fa2, ib, pb, fb2, w);

  EXPECT_NEAR(e14.total(), fx.params_.scale14 * efull.total(), 1e-12);
  EXPECT_NEAR(norm(fa[0]), fx.params_.scale14 * norm(fa2[0]), 1e-10);
}

TEST(NonbondedTest, SelfRangePartitionCoversAllPairsOnce) {
  NonbondedFixture fx;
  const Molecule m = empty_mol(20);
  const NonbondedContext ctx = fx.context(20, m);

  Rng rng(5);
  std::vector<int> idx(20);
  std::vector<Vec3> pos(20);
  for (int i = 0; i < 20; ++i) {
    idx[static_cast<std::size_t>(i)] = i;
    pos[static_cast<std::size_t>(i)] = rng.point_in_box({8, 8, 8});
  }

  std::vector<Vec3> f_whole(20);
  WorkCounters w1;
  const EnergyTerms e_whole = nonbonded_self(ctx, idx, pos, f_whole, w1);

  // Partition the outer loop into three ranges; results must add up exactly.
  std::vector<Vec3> f_split(20);
  WorkCounters w2;
  EnergyTerms e_split;
  e_split += nonbonded_self_range(ctx, idx, pos, f_split, 0, 7, w2);
  e_split += nonbonded_self_range(ctx, idx, pos, f_split, 7, 15, w2);
  e_split += nonbonded_self_range(ctx, idx, pos, f_split, 15, 20, w2);

  EXPECT_DOUBLE_EQ(e_whole.total(), e_split.total());
  EXPECT_EQ(w1.pairs_tested, w2.pairs_tested);
  EXPECT_EQ(w1.pairs_tested, 190u);  // C(20,2)
  for (int i = 0; i < 20; ++i) {
    EXPECT_NEAR(norm(f_whole[static_cast<std::size_t>(i)] -
                     f_split[static_cast<std::size_t>(i)]),
                0.0, 1e-12);
  }
}

TEST(NonbondedTest, AbRangePartitionMatchesWhole) {
  NonbondedFixture fx;
  const Molecule m = empty_mol(24);
  const NonbondedContext ctx = fx.context(24, m);

  Rng rng(9);
  std::vector<int> ia, ib;
  std::vector<Vec3> pa, pb;
  for (int i = 0; i < 12; ++i) {
    ia.push_back(i);
    pa.push_back(rng.point_in_box({6, 6, 6}));
    ib.push_back(12 + i);
    pb.push_back(rng.point_in_box({6, 6, 6}) + Vec3{5, 0, 0});
  }

  std::vector<Vec3> fa1(12), fb1(12);
  WorkCounters w1;
  const EnergyTerms e1 = nonbonded_ab(ctx, ia, pa, fa1, ib, pb, fb1, w1);

  std::vector<Vec3> fa2(12), fb2(12);
  WorkCounters w2;
  EnergyTerms e2;
  e2 += nonbonded_ab_range(ctx, ia, pa, fa2, ib, pb, fb2, 0, 5, w2);
  e2 += nonbonded_ab_range(ctx, ia, pa, fa2, ib, pb, fb2, 5, 12, w2);

  EXPECT_DOUBLE_EQ(e1.total(), e2.total());
  EXPECT_EQ(w1.pairs_tested, w2.pairs_tested);
  for (int i = 0; i < 12; ++i) {
    EXPECT_NEAR(norm(fa1[static_cast<std::size_t>(i)] - fa2[static_cast<std::size_t>(i)]), 0.0, 1e-12);
    EXPECT_NEAR(norm(fb1[static_cast<std::size_t>(i)] - fb2[static_cast<std::size_t>(i)]), 0.0, 1e-12);
  }
}

TEST(NonbondedTest, CoulombMatchesPointChargeInsideSwitchRegion) {
  // At short range the shift factor is ~1 and LJ can be made negligible by
  // using tiny epsilon; check E ~ C q1 q2 / r.
  ParameterTable pt;
  const int t = pt.add_lj_type(1e-12, 0.1);
  pt.finalize();
  Molecule m = empty_mol(2);
  const ExclusionTable excl = ExclusionTable::build(m);
  const std::vector<double> q{0.5, -0.3};
  const std::vector<int> types{t, t};
  NonbondedOptions opts;
  const NonbondedContext ctx(pt, excl, q, types, opts);

  const double r = 3.0;
  const std::vector<int> ia{0}, ib{1};
  const std::vector<Vec3> pa{{0, 0, 0}};
  const std::vector<Vec3> pb{{r, 0, 0}};
  std::vector<Vec3> fa(1), fb(1);
  WorkCounters w;
  const EnergyTerms e = nonbonded_ab(ctx, ia, pa, fa, ib, pb, fb, w);
  const double expected =
      units::kCoulomb * 0.5 * -0.3 / r * std::pow(1 - r * r / 144.0, 2);
  EXPECT_NEAR(e.elec, expected, 1e-9);
  EXPECT_NEAR(e.lj, 0.0, 1e-9);
}

}  // namespace
}  // namespace scalemd
