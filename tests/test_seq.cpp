#include <gtest/gtest.h>

#include <cmath>

#include "gen/presets.hpp"
#include "gen/water_box.hpp"
#include "seq/cell_list.hpp"
#include "seq/engine.hpp"
#include "seq/integrator.hpp"
#include "util/units.hpp"

namespace scalemd {
namespace {

TEST(CellGridTest, DimsAndIndexRoundTrip) {
  const CellGrid g({30, 45, 61}, 15.0);
  EXPECT_EQ(g.nx(), 2);
  EXPECT_EQ(g.ny(), 3);
  EXPECT_EQ(g.nz(), 4);
  EXPECT_EQ(g.cell_count(), 24);
  for (int c = 0; c < g.cell_count(); ++c) {
    EXPECT_EQ(g.index(g.coords(c)), c);
  }
}

TEST(CellGridTest, CellOfClampsOutside) {
  const CellGrid g({30, 30, 30}, 15.0);
  EXPECT_EQ(g.cell_of({-5, -5, -5}), g.index({0, 0, 0}));
  EXPECT_EQ(g.cell_of({35, 35, 35}), g.index({1, 1, 1}));
}

TEST(CellGridTest, NeighborPairCount) {
  // 3x3x3 grid: 27 cells; total neighbor pairs = (27*26 - non-adjacent)/2.
  // Count by brute force instead: every pair with max coord delta 1.
  const CellGrid g({45, 45, 45}, 15.0);
  const auto pairs = g.neighbor_pairs();
  std::size_t expected = 0;
  for (int a = 0; a < 27; ++a) {
    for (int b = a + 1; b < 27; ++b) {
      const Int3 ca = g.coords(a);
      const Int3 cb = g.coords(b);
      if (std::abs(ca.x - cb.x) <= 1 && std::abs(ca.y - cb.y) <= 1 &&
          std::abs(ca.z - cb.z) <= 1) {
        ++expected;
      }
    }
  }
  EXPECT_EQ(pairs.size(), expected);
  // Each pair listed once with a < b.
  for (const auto& [a, b] : pairs) EXPECT_LT(a, b);
}

TEST(CellGridTest, InteriorCellHas26Neighbors) {
  const CellGrid g({60, 60, 60}, 15.0);  // 4x4x4
  const int center = g.index({1, 1, 1});
  int count = 0;
  for (const auto& [a, b] : g.neighbor_pairs()) {
    if (a == center || b == center) ++count;
  }
  EXPECT_EQ(count, 26);
}

TEST(CellGridTest, UpstreamNeighborsMatchPaper) {
  const CellGrid g({60, 60, 60}, 15.0);  // 4x4x4
  // Interior cell: exactly 7 upstream neighbors (paper section 3).
  EXPECT_EQ(g.upstream_neighbors(g.index({1, 1, 1})).size(), 7u);
  // Top corner: none.
  EXPECT_EQ(g.upstream_neighbors(g.index({3, 3, 3})).size(), 0u);
  // All upstream coords are >= the cell's own coords.
  const Int3 c{1, 2, 0};
  for (int u : g.upstream_neighbors(g.index(c))) {
    const Int3 cu = g.coords(u);
    EXPECT_GE(cu.x, c.x);
    EXPECT_GE(cu.y, c.y);
    EXPECT_GE(cu.z, c.z);
  }
}

TEST(CellGridTest, ShareFaceDistinguishesFaceFromEdgeCorner) {
  const CellGrid g({60, 60, 60}, 15.0);
  EXPECT_TRUE(g.share_face(g.index({1, 1, 1}), g.index({2, 1, 1})));
  EXPECT_FALSE(g.share_face(g.index({1, 1, 1}), g.index({2, 2, 1})));
  EXPECT_FALSE(g.share_face(g.index({1, 1, 1}), g.index({2, 2, 2})));
}

TEST(CellListTest, EveryAtomAssignedExactlyOnce) {
  const Molecule m = make_water_box({25, 25, 25}, 3);
  const CellGrid g(m.box, 12.0);
  const CellList cl(g, m.positions());
  std::vector<int> seen(static_cast<std::size_t>(m.atom_count()), 0);
  for (int c = 0; c < g.cell_count(); ++c) {
    for (int a : cl.atoms_in(c)) {
      ++seen[static_cast<std::size_t>(a)];
      EXPECT_EQ(g.cell_of(m.positions()[static_cast<std::size_t>(a)]), c);
    }
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(IntegratorTest, FreeParticleDrift) {
  const VelocityVerlet vv(2.0);
  std::vector<Vec3> x{{0, 0, 0}};
  const std::vector<Vec3> v{{1, 2, 3}};
  vv.drift(v, x);
  const double dt = 2.0 / units::kAkmaTimeFs;
  EXPECT_NEAR(x[0].x, dt, 1e-15);
  EXPECT_NEAR(x[0].z, 3 * dt, 1e-15);
}

TEST(IntegratorTest, KineticEnergyAndTemperature) {
  const std::vector<Vec3> v{{1, 0, 0}, {0, 2, 0}};
  const std::vector<double> m{2.0, 3.0};
  const double ke = kinetic_energy(v, m);
  EXPECT_DOUBLE_EQ(ke, 0.5 * 2 * 1 + 0.5 * 3 * 4);
  EXPECT_GT(temperature(ke, 6), 0.0);
  EXPECT_DOUBLE_EQ(temperature(ke, 0), 0.0);
}

TEST(EngineTest, ForcesAreTranslationInvariantSum) {
  // Total force on an isolated system must vanish (Newton's third law over
  // all kernels).
  const Molecule m = small_solvated_chain(600, 21);
  SequentialEngine eng(m, {});
  Vec3 total;
  double magnitude = 0.0;
  for (const Vec3& f : eng.forces()) {
    total += f;
    magnitude += norm(f);
  }
  // Tolerance is relative to the summed force magnitude: clashes in the
  // unequilibrated start produce huge canceling pair forces.
  EXPECT_NEAR(norm(total), 0.0, 1e-11 * magnitude + 1e-9);
}

TEST(EngineTest, EnergyConservationNVE) {
  Molecule m = make_water_box({16, 16, 16}, 5);
  m.assign_velocities(300.0, 99);
  EngineOptions opts;
  opts.nonbonded.cutoff = 7.5;
  opts.nonbonded.switch_dist = 6.0;
  opts.dt_fs = 0.5;
  SequentialEngine eng(m, opts);
  const double e0 = eng.total_energy();
  eng.run(100);
  const double e1 = eng.total_energy();
  // 0.5 fs flexible water: drift should be well under 1% of |E|.
  EXPECT_NEAR(e1, e0, 0.01 * std::max(1.0, std::fabs(e0)));
}

TEST(EngineTest, WaterBoxEnergySane) {
  // The generated box is unequilibrated (random orientations), so we check
  // the potential per water is modest — no catastrophic clashes — and that
  // bonded terms start at their minima (exact placement geometry).
  const Molecule m = make_water_box({20, 20, 20}, 5);
  SequentialEngine eng(m, {});
  const int waters = m.atom_count() / 3;
  const double e_per_water = eng.potential().total() / waters;
  EXPECT_LT(std::fabs(e_per_water), 25.0);
  EXPECT_NEAR(eng.potential().bond, 0.0, 1e-6);
  EXPECT_NEAR(eng.potential().angle, 0.0, 1e-6);
}

TEST(EngineTest, WorkCountersPopulated) {
  const Molecule m = small_solvated_chain(900, 23);
  SequentialEngine eng(m, {});
  const WorkCounters& w = eng.work();
  EXPECT_GT(w.pairs_tested, 0u);
  EXPECT_GT(w.pairs_computed, 0u);
  EXPECT_GE(w.pairs_tested, w.pairs_computed);
  EXPECT_EQ(w.bonded_terms, m.bonds().size() + m.angles().size() +
                                m.dihedrals().size() + m.impropers().size());
}

TEST(EngineTest, StepAdvancesPositions) {
  Molecule m = make_water_box({14, 14, 14}, 8);
  m.assign_velocities(300.0, 1);
  EngineOptions opts;
  opts.nonbonded.cutoff = 6.0;
  opts.nonbonded.switch_dist = 5.0;
  SequentialEngine eng(m, opts);
  const Vec3 before = eng.positions()[0];
  eng.step();
  EXPECT_GT(norm(eng.positions()[0] - before), 0.0);
}

}  // namespace
}  // namespace scalemd
