#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>

#include "check/golden.hpp"
#include "ff/nonbonded_tiled.hpp"

#ifndef SCALEMD_GOLDEN_DIR
#error "SCALEMD_GOLDEN_DIR must point at the checked-in golden references"
#endif

namespace scalemd {
namespace {

// ---------------------------------------------------------------------------
// Format round trip and ULP distance.
// ---------------------------------------------------------------------------

TEST(GoldenFormatTest, TrajectoryRoundTripsBitExactly) {
  const GoldenSpec* spec = find_golden_spec("waterbox");
  ASSERT_NE(spec, nullptr);
  const Trajectory t = record_trajectory(*spec);
  ASSERT_FALSE(t.frames.empty());

  const std::string path = testing::TempDir() + "scalemd_roundtrip.golden";
  write_trajectory(t, path);
  const Trajectory back = read_trajectory(path);
  std::remove(path.c_str());

  CompareOptions bitwise;
  bitwise.mode = CompareMode::kUlp;
  bitwise.max_ulps = 0;
  const CompareResult r = compare_trajectories(back, t, bitwise);
  EXPECT_TRUE(r.match) << r.message;
  EXPECT_EQ(r.worst, 0.0);
}

TEST(GoldenFormatTest, ReadRejectsMissingAndMalformedFiles) {
  EXPECT_THROW(read_trajectory("/nonexistent/path.golden"), std::runtime_error);

  const std::string path = testing::TempDir() + "scalemd_malformed.golden";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("not-a-golden-file 7\n", f);
  std::fclose(f);
  EXPECT_THROW(read_trajectory(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(GoldenFormatTest, UlpDistanceCountsRepresentableSteps) {
  EXPECT_EQ(ulp_distance(1.0, 1.0), 0u);
  EXPECT_EQ(ulp_distance(0.0, -0.0), 0u);
  const double next = std::nextafter(1.0, 2.0);
  EXPECT_EQ(ulp_distance(1.0, next), 1u);
  EXPECT_EQ(ulp_distance(next, 1.0), 1u);
  EXPECT_EQ(ulp_distance(-1.0, std::nextafter(-1.0, -2.0)), 1u);
  EXPECT_GT(ulp_distance(1.0, 2.0), 1000u);
  EXPECT_GT(ulp_distance(-1e-300, 1e-300), 0u);
  EXPECT_EQ(ulp_distance(std::numeric_limits<double>::quiet_NaN(), 1.0),
            std::numeric_limits<std::uint64_t>::max());
}

// ---------------------------------------------------------------------------
// Comparator sensitivity: the acceptance scenario — a single perturbed force
// component must be reported with its frame/field/atom location.
// ---------------------------------------------------------------------------

TEST(GoldenCompareTest, DetectsSinglePerturbedForceComponent) {
  const GoldenSpec* spec = find_golden_spec("waterbox");
  ASSERT_NE(spec, nullptr);
  const Trajectory ref = record_trajectory(*spec);
  Trajectory got = ref;
  got.frames[1].forces[5].y += 1e-4;

  const CompareResult r = compare_trajectories(got, ref, {});
  EXPECT_FALSE(r.match);
  EXPECT_NE(r.message.find("frc"), std::string::npos) << r.message;
  EXPECT_NE(r.message.find("atom 5"), std::string::npos) << r.message;
  EXPECT_GE(r.worst, 1e-4 * 0.99);
}

TEST(GoldenCompareTest, DetectsStructuralMismatches) {
  const GoldenSpec* spec = find_golden_spec("waterbox");
  ASSERT_NE(spec, nullptr);
  const Trajectory ref = record_trajectory(*spec);

  Trajectory wrong_system = ref;
  wrong_system.system = "chain";
  EXPECT_FALSE(compare_trajectories(wrong_system, ref, {}).match);

  Trajectory missing_frame = ref;
  missing_frame.frames.pop_back();
  EXPECT_FALSE(compare_trajectories(missing_frame, ref, {}).match);

  Trajectory wrong_step = ref;
  wrong_step.frames[0].step += 1;
  EXPECT_FALSE(compare_trajectories(wrong_step, ref, {}).match);
}

TEST(GoldenCompareTest, AbsoluteModeUsesUnscaledBound) {
  const GoldenSpec* spec = find_golden_spec("waterbox");
  ASSERT_NE(spec, nullptr);
  const Trajectory ref = record_trajectory(*spec);
  Trajectory got = ref;
  got.frames[0].positions[0].z += 5e-7;

  CompareOptions strict;
  strict.mode = CompareMode::kAbsolute;
  strict.tol = 1e-7;
  EXPECT_FALSE(compare_trajectories(got, ref, strict).match);
  strict.tol = 1e-6;
  EXPECT_TRUE(compare_trajectories(got, ref, strict).match);
}

// ---------------------------------------------------------------------------
// The regression matrix: every kernel x engine-path x thread-count
// combination, on every preset, against the single scalar-generated golden.
// ---------------------------------------------------------------------------

struct GoldenCase {
  const char* spec;
  NonbondedKernel kernel;
  bool pairlist;
  int threads;
};

std::string case_name(const testing::TestParamInfo<GoldenCase>& info) {
  std::string name = std::string(info.param.spec) + "_";
  for (const char* p = kernel_name(info.param.kernel); *p != '\0'; ++p) {
    name += std::isalnum(static_cast<unsigned char>(*p)) ? *p : '_';
  }
  name += info.param.pairlist ? "_verlet" : "_cell";
  if (info.param.threads > 0) {
    name += "_t" + std::to_string(info.param.threads);
  }
  return name;
}

class GoldenRegressionTest : public testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenRegressionTest, MatchesScalarGolden) {
  const GoldenCase& c = GetParam();
  const GoldenSpec* spec = find_golden_spec(c.spec);
  ASSERT_NE(spec, nullptr);

  const Trajectory ref =
      read_trajectory(golden_path(SCALEMD_GOLDEN_DIR, *spec));
  const Trajectory got =
      record_trajectory(*spec, c.kernel, c.pairlist, c.threads);

  const CompareResult r = compare_trajectories(got, ref, {});
  EXPECT_TRUE(r.match) << r.message;
  // Kernel variants only reorder the same pair sums; deviations from the
  // scalar reference stay many orders below the tolerance.
  EXPECT_LT(r.worst, 1e-9) << "worst deviation at " << r.where;
}

constexpr GoldenCase kGoldenMatrix[] = {
    // waterbox: {scalar, tiled, tiled+threads(2), tiled+threads(4)} x
    //           {cell list, Verlet pairlist}
    {"waterbox", NonbondedKernel::kScalar, false, 0},
    {"waterbox", NonbondedKernel::kScalar, true, 0},
    {"waterbox", NonbondedKernel::kTiled, false, 0},
    {"waterbox", NonbondedKernel::kTiled, true, 0},
    {"waterbox", NonbondedKernel::kTiledThreads, false, 2},
    {"waterbox", NonbondedKernel::kTiledThreads, true, 2},
    {"waterbox", NonbondedKernel::kTiledThreads, false, 4},
    {"waterbox", NonbondedKernel::kTiledThreads, true, 4},
    // chain: bonded terms, exclusions and 1-4 scaling in play.
    {"chain", NonbondedKernel::kScalar, false, 0},
    {"chain", NonbondedKernel::kScalar, true, 0},
    {"chain", NonbondedKernel::kTiled, false, 0},
    {"chain", NonbondedKernel::kTiled, true, 0},
    {"chain", NonbondedKernel::kTiledThreads, false, 2},
    {"chain", NonbondedKernel::kTiledThreads, true, 2},
    {"chain", NonbondedKernel::kTiledThreads, false, 4},
    {"chain", NonbondedKernel::kTiledThreads, true, 4},
    // waterbox_ions: full electrostatics — erfc-screened direct space in the
    // kernels plus the sequential PME reciprocal stage.
    {"waterbox_ions", NonbondedKernel::kScalar, false, 0},
    {"waterbox_ions", NonbondedKernel::kScalar, true, 0},
    {"waterbox_ions", NonbondedKernel::kTiled, false, 0},
    {"waterbox_ions", NonbondedKernel::kTiled, true, 0},
    {"waterbox_ions", NonbondedKernel::kTiledThreads, false, 2},
    {"waterbox_ions", NonbondedKernel::kTiledThreads, true, 2},
};

INSTANTIATE_TEST_SUITE_P(AllKernelPathThreadCombos, GoldenRegressionTest,
                         testing::ValuesIn(kGoldenMatrix), case_name);

// ---------------------------------------------------------------------------
// Parallel runtime vs the checked-in golden: both execution backends must
// reproduce the scalar reference to tolerance. The runtime folds forces in
// compute-id order (not the sequential engine's pair order), so the bitwise
// bound of the sequential matrix does not apply — only the relative one.
// The golden's step-0 frame is dropped: the parallel recorder first observes
// state after a cycle completes.
// ---------------------------------------------------------------------------

struct ParallelGoldenCase {
  const char* spec;
  BackendKind backend;
  NonbondedKernel kernel;
};

std::string parallel_case_name(
    const testing::TestParamInfo<ParallelGoldenCase>& info) {
  std::string name = std::string(info.param.spec) + "_";
  name += backend_name(info.param.backend);
  name += info.param.kernel == NonbondedKernel::kScalar ? "_scalar" : "_tiled";
  return name;
}

class ParallelGoldenTest : public testing::TestWithParam<ParallelGoldenCase> {};

TEST_P(ParallelGoldenTest, MatchesScalarGolden) {
  const ParallelGoldenCase& c = GetParam();
  const GoldenSpec* spec = find_golden_spec(c.spec);
  ASSERT_NE(spec, nullptr);

  Trajectory ref = read_trajectory(golden_path(SCALEMD_GOLDEN_DIR, *spec));
  ASSERT_FALSE(ref.frames.empty());
  ref.frames.erase(ref.frames.begin());

  ParallelGoldenOptions p;
  p.num_pes = 4;
  p.backend = c.backend;
  p.threads = c.backend == BackendKind::kThreaded ? 2 : 0;
  p.lb = LbStrategyKind::kGreedyRefine;
  p.kernel = c.kernel;
  const Trajectory got = record_parallel_trajectory(*spec, p);

  const CompareResult r = compare_trajectories(got, ref, {});
  EXPECT_TRUE(r.match) << r.message;
}

constexpr ParallelGoldenCase kParallelGoldenMatrix[] = {
    {"waterbox", BackendKind::kSimulated, NonbondedKernel::kScalar},
    {"waterbox", BackendKind::kSimulated, NonbondedKernel::kTiled},
    {"waterbox", BackendKind::kThreaded, NonbondedKernel::kScalar},
    {"waterbox", BackendKind::kThreaded, NonbondedKernel::kTiled},
    {"chain", BackendKind::kSimulated, NonbondedKernel::kScalar},
    {"chain", BackendKind::kThreaded, NonbondedKernel::kScalar},
    // waterbox_ions drives the parallel-PME pipeline (slab objects, transpose
    // messages, canonical reciprocal fold) against the sequential golden.
    {"waterbox_ions", BackendKind::kSimulated, NonbondedKernel::kScalar},
    {"waterbox_ions", BackendKind::kSimulated, NonbondedKernel::kTiled},
    {"waterbox_ions", BackendKind::kThreaded, NonbondedKernel::kScalar},
};

INSTANTIATE_TEST_SUITE_P(BothBackends, ParallelGoldenTest,
                         testing::ValuesIn(kParallelGoldenMatrix),
                         parallel_case_name);

// The reference configuration must reproduce the checked-in golden
// bit-for-bit on the machine that generated it; across compilers/flags it
// still has to hold to the relative tolerance, which the matrix test above
// asserts. This test pins the regeneration workflow: if it fails after an
// intentional physics change, run `cmake --build build --target regen-golden`
// and commit the diff.
TEST(GoldenRegressionTest, EveryRegisteredSpecHasACheckedInGolden) {
  for (const GoldenSpec& spec : golden_specs()) {
    const Trajectory ref =
        read_trajectory(golden_path(SCALEMD_GOLDEN_DIR, spec));
    EXPECT_EQ(ref.system, spec.name);
    EXPECT_GT(ref.atom_count, 0);
    EXPECT_EQ(ref.frames.size(),
              static_cast<std::size_t>(spec.steps / spec.record_every) + 1);
  }
}

}  // namespace
}  // namespace scalemd
